package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func run(t *testing.T, fn func(*bytes.Buffer)) string {
	t.Helper()
	var buf bytes.Buffer
	fn(&buf)
	return buf.String()
}

// E1 (Fig. 2): the raw Telemetry API payload carries the paper's exact
// context, message id, message text and timestamp.
func TestExperimentFig2(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig2(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{
		`"Context": "x1203c1b0"`,
		`"EventTimestamp": "2022-03-03T01:47:57Z"`,
		`"MessageId": "CrayAlerts.1.0.CabinetLeakDetected"`,
		`"Severity": "Warning"`,
		"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.",
		`"@odata.id": "/redfish/v1/Chassis/Enclosure"`,
		`"MessageArgs"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 missing %q:\n%s", want, out)
		}
	}
}

// E2 (Fig. 3): the Loki push payload has the three stream labels, the ns
// epoch, the trimmed JSON body, and none of the dropped fields.
func TestExperimentFig3(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig3(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{
		`"Context": "x1102c4s0b0"`,
		`"cluster": "perlmutter"`,
		`"data_type": "redfish_event"`,
		`"1646272077000000000"`,
		`{\"Severity\":\"Warning\",\"MessageId\":\"CrayAlerts.1.0.CabinetLeakDetected\"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig3 missing %q:\n%s", want, out)
		}
	}
	for _, banned := range []string{"OriginOfCondition", "MessageArgs", "odata"} {
		if strings.Contains(out, banned) {
			t.Fatalf("fig3 contains dropped field %q:\n%s", banned, out)
		}
	}
}

// E3 (Fig. 4): the event shows in the Grafana log panel.
func TestExperimentFig4(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig4(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"2022-03-03 01:47:57", "x1203c1b0", "CabinetLeakDetected"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 missing %q:\n%s", want, out)
		}
	}
}

// E4 (Fig. 5): the metric steps 0 -> 1 at the event and falls off after
// the 60m window.
func TestExperimentFig5(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig5(b); err != nil {
			t.Fatal(err)
		}
	})
	if !strings.Contains(out, `severity="Warning"`) {
		t.Fatalf("fig5 legend:\n%s", out)
	}
	// CSV rows: within window value 1.
	if !strings.Contains(out, ",1\n") {
		t.Fatalf("fig5 csv has no value-1 samples:\n%s", out)
	}
	// The 70-minute sample is outside the window: no row at that time.
	if strings.Contains(out, "2022-03-03T02:57:57Z") && strings.Contains(out, "02:57:57Z\",1") {
		t.Fatalf("fig5 window leak:\n%s", out)
	}
}

// E5 (Fig. 6): the Slack alert carries the rule name and location.
func TestExperimentFig6(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig6(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"PerlmutterCabinetLeak", "x1203c1b0", "FIRING"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig6 missing %q:\n%s", want, out)
		}
	}
}

// E6 (Fig. 7): the switch event renders with its two stream labels.
func TestExperimentFig7(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig7(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{
		"[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN",
		`app="fabric_manager_monitor"`,
		`cluster="perlmutter"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig7 missing %q:\n%s", want, out)
		}
	}
}

// E7 (Fig. 8): the rule evaluates to a vector carrying the
// pattern-extracted labels.
func TestExperimentFig8(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig8(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{`xname="x1002c1r7b0"`, `state="UNKNOWN"`, `=> 1`} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, out)
		}
	}
}

// E8 (Fig. 9): the offline-switch Slack notification.
func TestExperimentFig9(t *testing.T) {
	out := run(t, func(b *bytes.Buffer) {
		if err := Fig9(b); err != nil {
			t.Fatal(err)
		}
	})
	for _, want := range []string{"SwitchOffline", "x1002c1r7b0", "UNKNOWN"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig9 missing %q:\n%s", want, out)
		}
	}
}

func TestClaimExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("timed experiments")
	}
	var buf bytes.Buffer
	if err := C1(&buf, 0.2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "messages/second") {
		t.Fatalf("c1:\n%s", buf.String())
	}
	buf.Reset()
	if err := C2(&buf, 0.2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "GB/day") {
		t.Fatalf("c2:\n%s", buf.String())
	}
	buf.Reset()
	if err := C3(&buf); err != nil {
		t.Fatal(err)
	}
	// The anti-pattern scheme must show more streams than the paper scheme.
	if !strings.Contains(buf.String(), "anti-pattern") {
		t.Fatalf("c3:\n%s", buf.String())
	}
	buf.Reset()
	if err := C4(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ratio") {
		t.Fatalf("c4:\n%s", buf.String())
	}
	buf.Reset()
	if err := C7(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "simulated time") {
		t.Fatalf("c7:\n%s", buf.String())
	}
}

func TestRunnerDispatch(t *testing.T) {
	var buf bytes.Buffer
	r := Runner{QuickSeconds: 0.1}
	if err := r.Run("fig3", &buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Run("nope", &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestLatencyExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := LatencyJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep LatencyReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("latency_json is not pure JSON: %v\n%s", err, buf.String())
	}
	if len(rep.Scenarios) != 2 || rep.SLOTargetSeconds != 90 {
		t.Fatalf("report = %+v", rep)
	}
	byName := map[string]LatencyScenarioResult{}
	for _, s := range rep.Scenarios {
		byName[s.Scenario] = s
	}
	leak := byName["cabinet_leak"]
	if leak.Events != 3 || leak.P50Seconds < 60 || leak.MaxSeconds > 90 || leak.BurnRate != 0 {
		t.Fatalf("leak scenario = %+v", leak)
	}
	sw := byName["switch_offline"]
	if sw.Events != 1 || sw.MaxSeconds <= 0 || sw.MaxSeconds > 30 {
		t.Fatalf("switch scenario = %+v", sw)
	}

	buf.Reset()
	if err := Latency(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cabinet_leak", "switch_offline", "SLO 95% within 90s"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("latency table missing %q:\n%s", want, buf.String())
		}
	}
}
