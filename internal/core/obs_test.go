package core

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"shastamon/internal/obs"
	"shastamon/internal/ruler"
)

func leakPipeline(t *testing.T) *Pipeline {
	t.Helper()
	leakRule := ruler.Rule{
		Name:   "PerlmutterCabinetLeak",
		Expr:   `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message) > 0`,
		For:    time.Minute,
		Labels: map[string]string{"severity": "critical"},
		Annotations: map[string]string{
			"summary": "Liquid leak detected at {{ $labels.Context }}",
		},
	}
	p, err := New(Options{LogRules: []ruler.Rule{leakRule}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestLeakTraceEndToEnd is the issue's acceptance scenario: injecting a
// cabinet leak yields one trace ID whose stages cover the whole pipeline,
// retrievable via /debug/trace/{id}.
func TestLeakTraceEndToEnd(t *testing.T) {
	p := leakPipeline(t)
	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := p.Tick(leakTime.Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	for _, ts := range []time.Time{leakTime, leakTime.Add(61 * time.Second), leakTime.Add(62 * time.Second)} {
		if err := p.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}

	id := p.Tracer.IDByKey("x1203c1b0")
	if id == "" {
		t.Fatal("no trace minted for the leaking chassis")
	}
	tr, ok := p.Tracer.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained", id)
	}
	wantStages := []string{
		"origin", "kafka.produce", "telemetry.stream",
		"core.forward", "loki.ingest", "ruler.fire", "alertmanager.notify",
	}
	if !tr.HasStages(wantStages...) {
		t.Fatalf("trace %s stages = %v, want all of %v", id, tr.StageNames(), wantStages)
	}

	// The same trace must be served over HTTP at /debug/trace/{id}.
	rec := httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace/%s -> %d", id, rec.Code)
	}
	var got obs.Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != id || !got.HasStages(wantStages...) {
		t.Fatalf("served trace = %+v", got)
	}
}

// TestSelfMetricsScraped asserts the self-monitoring loop: the vmagent
// "shastamon" job scrapes the pipeline's own /metrics endpoint into the
// warehouse TSDB, making shastamon_* series queryable through PromQL.
func TestSelfMetricsScraped(t *testing.T) {
	p := leakPipeline(t)
	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := p.Tick(leakTime.Add(-time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	// The fourth tick matters: within a tick the scrape runs before rule
	// evaluation and alert dispatch, so the fired/notified counters from
	// tick N land in the TSDB at tick N+1.
	for _, ts := range []time.Time{leakTime, leakTime.Add(61 * time.Second),
		leakTime.Add(62 * time.Second), leakTime.Add(63 * time.Second)} {
		if err := p.Tick(ts); err != nil {
			t.Fatal(err)
		}
	}
	ms := leakTime.Add(63 * time.Second).UnixMilli()

	for _, q := range []string{
		`shastamon_hms_events_collected_total`,
		`sum(shastamon_kafka_produced_total)`,
		`shastamon_omni_log_messages_total`,
		`shastamon_ruler_alerts_fired_total{rule="PerlmutterCabinetLeak"}`,
		`shastamon_alertmanager_notifications_total{outcome="sent"}`,
	} {
		vec, err := p.Warehouse.QueryMetrics(q, ms)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		sum := 0.0
		for _, s := range vec {
			sum += s.V
		}
		if sum <= 0 {
			t.Fatalf("%s = %v, want > 0 (vec %+v)", q, sum, vec)
		}
	}

	// The scraped series carry the self-scrape job label.
	vec, err := p.Warehouse.QueryMetrics(`up{job="shastamon"}`, ms)
	if err != nil || len(vec) != 1 || vec[0].V != 1 {
		t.Fatalf(`up{job="shastamon"} = %+v, %v`, vec, err)
	}

	// And the exposition page itself serves the histogram triplet.
	rec := httptest.NewRecorder()
	p.ObsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE shastamon_core_tick_duration_seconds histogram",
		"shastamon_core_tick_duration_seconds_count",
		"shastamon_telemetry_records_streamed_total",
	} {
		if !contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
