package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzWALDecode feeds arbitrary byte prefixes to the record decoder: it
// must never panic, and every input is either a clean parse that
// round-trips the payload, a reported corruption, or a torn frame.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(nil))
	f.Add(EncodeRecord([]byte("hello, wal")))
	f.Add(EncodeRecord(bytes.Repeat([]byte{0xab}, 300)))
	// Torn tail and a flipped payload byte.
	r := EncodeRecord([]byte("torn"))
	f.Add(r[:len(r)-2])
	bad := EncodeRecord([]byte("flip"))
	bad[frameHeader] ^= 0x01
	f.Add(bad)
	// Huge length prefix.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, n, err := DecodeRecord(data)
		switch {
		case err == nil:
			if n < frameHeader || n > len(data) {
				t.Fatalf("consumed %d of %d bytes", n, len(data))
			}
			// A clean parse must round-trip byte-for-byte.
			re := EncodeRecord(payload)
			if !bytes.Equal(re, data[:n]) {
				t.Fatalf("re-encode mismatch: %x vs %x", re, data[:n])
			}
		case errors.Is(err, ErrCorrupt), errors.Is(err, io.ErrUnexpectedEOF):
			// Reported corruption / torn frame: fine.
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	})
}
