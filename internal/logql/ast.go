package logql

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"shastamon/internal/labels"
)

// Expr is any parsed LogQL expression: a log query or a metric query.
type Expr interface {
	fmt.Stringer
	expr()
}

// MetricExpr is an expression producing samples rather than log lines.
type MetricExpr interface {
	Expr
	metricExpr()
}

// LogExpr is a stream selector followed by a pipeline of stages, e.g.
//
//	{data_type="redfish_event"} |= "CabinetLeakDetected" | json
type LogExpr struct {
	Selector labels.Selector
	Stages   []Stage
}

func (*LogExpr) expr() {}

// String renders the expression back to LogQL.
func (e *LogExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Selector.String())
	for _, s := range e.Stages {
		b.WriteByte(' ')
		b.WriteString(s.String())
	}
	return b.String()
}

// RangeOp is a range aggregation function over a log selection.
type RangeOp string

// Range aggregation operations supported.
const (
	OpCountOverTime  RangeOp = "count_over_time"
	OpRate           RangeOp = "rate"
	OpBytesOverTime  RangeOp = "bytes_over_time"
	OpBytesRate      RangeOp = "bytes_rate"
	OpAbsentOverTime RangeOp = "absent_over_time"
	OpSumOverTime    RangeOp = "sum_over_time"
	OpAvgOverTime    RangeOp = "avg_over_time"
	OpMaxOverTime    RangeOp = "max_over_time"
	OpMinOverTime    RangeOp = "min_over_time"
)

// RangeAggExpr is e.g. count_over_time({...} |= "x" [60m]). For the
// *_over_time value functions (sum/avg/max/min) an Unwrap label supplies
// the sample values.
type RangeAggExpr struct {
	Op       RangeOp
	Log      *LogExpr
	Interval time.Duration
	Unwrap   string // label to unwrap for value aggregations; "" otherwise
}

func (*RangeAggExpr) expr()       {}
func (*RangeAggExpr) metricExpr() {}

func (e *RangeAggExpr) String() string {
	unwrap := ""
	if e.Unwrap != "" {
		unwrap = " | unwrap " + e.Unwrap
	}
	return fmt.Sprintf("%s(%s%s [%s])", e.Op, e.Log, unwrap, e.Interval)
}

// VectorAggExpr is e.g. sum(...) by (severity, cluster).
type VectorAggExpr struct {
	Op       string // sum, min, max, avg, count, topk, bottomk
	Param    int    // k for topk/bottomk
	Inner    MetricExpr
	Grouping []string
	Without  bool
}

func (*VectorAggExpr) expr()       {}
func (*VectorAggExpr) metricExpr() {}

func (e *VectorAggExpr) String() string {
	g := ""
	if len(e.Grouping) > 0 || e.Without {
		kw := "by"
		if e.Without {
			kw = "without"
		}
		g = fmt.Sprintf(" %s (%s)", kw, strings.Join(e.Grouping, ", "))
	}
	if e.Param > 0 {
		return fmt.Sprintf("%s(%d, %s)%s", e.Op, e.Param, e.Inner, g)
	}
	return fmt.Sprintf("%s(%s)%s", e.Op, e.Inner, g)
}

// CmpOp is a comparison operator in threshold expressions.
type CmpOp string

// Comparison operators.
const (
	CmpGT  CmpOp = ">"
	CmpGTE CmpOp = ">="
	CmpLT  CmpOp = "<"
	CmpLTE CmpOp = "<="
	CmpEQ  CmpOp = "=="
	CmpNE  CmpOp = "!="
)

func (o CmpOp) apply(a, b float64) bool {
	switch o {
	case CmpGT:
		return a > b
	case CmpGTE:
		return a >= b
	case CmpLT:
		return a < b
	case CmpLTE:
		return a <= b
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	}
	return false
}

// CmpExpr filters the samples of Inner by comparison against a scalar,
// following PromQL filter semantics (non-matching samples drop out). This
// is the shape of every alerting rule expression in the paper.
type CmpExpr struct {
	Inner     MetricExpr
	Op        CmpOp
	Threshold float64
}

func (*CmpExpr) expr()       {}
func (*CmpExpr) metricExpr() {}

func (e *CmpExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.Inner, e.Op, strconv.FormatFloat(e.Threshold, 'g', -1, 64))
}
