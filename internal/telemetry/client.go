package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"shastamon/internal/resilience"
)

// Client talks to a telemetry API server; it plays the role of the
// Python clients in the paper's K3s pods that "read data in different
// Kafka topics via the Telemetry API and send them to either
// VictoriaMetrics or Loki". Requests are retried under an
// exponential-backoff policy on network errors and 5xx responses, so a
// brief API hiccup does not surface as a pipeline stage failure.
type Client struct {
	base   string
	token  string
	client *http.Client
	policy resilience.Policy
}

// NewClient returns a client for the server at base (no trailing slash)
// authenticating with token ("" for servers without auth).
func NewClient(base, token string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: base, token: token, client: httpClient, policy: resilience.Policy{
		MaxAttempts: 3,
		Initial:     10 * time.Millisecond,
		Max:         250 * time.Millisecond,
		Retriable:   retriable,
	}}
}

// SetRetryPolicy overrides the request retry policy (chaos tests tighten
// it; subscriptions inherit it through their client).
func (c *Client) SetRetryPolicy(p resilience.Policy) {
	p.Retriable = retriable
	c.policy = p
}

// statusError marks HTTP-level failures so retries can distinguish 5xx
// (transient) from 4xx (permanent).
type statusError struct{ code int }

func (e statusError) Error() string { return fmt.Sprintf("telemetry: status %d", e.code) }

func retriable(err error) bool {
	var se statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true // network-level errors
}

// do issues one request, retrying transient failures. The body is a byte
// slice — not a Reader — so every attempt can replay it from the start.
func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	var resp *http.Response
	err := resilience.Retry(c.policy, func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return err
		}
		if c.token != "" {
			req.Header.Set("Authorization", "Bearer "+c.token)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		r, err := c.client.Do(req)
		if err != nil {
			return err
		}
		if r.StatusCode >= 500 {
			io.Copy(io.Discard, io.LimitReader(r.Body, 1024))
			r.Body.Close()
			return statusError{code: r.StatusCode}
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

func decodeOrError(resp *http.Response, v interface{}) error {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("telemetry: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	if v == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// Topics lists the broker's topics.
func (c *Client) Topics() ([]string, error) {
	resp, err := c.do(http.MethodGet, "/v1/topics", nil)
	if err != nil {
		return nil, err
	}
	var out []string
	return out, decodeOrError(resp, &out)
}

// Subscription is an open topic subscription.
type Subscription struct {
	ID     string
	client *Client
}

// Subscribe creates a subscription to the topics under the consumer group
// (empty group gets a private group, receiving all messages).
func (c *Client) Subscribe(group string, topics ...string) (*Subscription, error) {
	body, err := json.Marshal(subscribeRequest{Topics: topics, Group: group})
	if err != nil {
		return nil, err
	}
	resp, err := c.do(http.MethodPost, "/v1/subscriptions", body)
	if err != nil {
		return nil, err
	}
	var sr subscribeResponse
	if err := decodeOrError(resp, &sr); err != nil {
		return nil, err
	}
	return &Subscription{ID: sr.ID, client: c}, nil
}

// Poll fetches up to max records, long-polling up to timeout.
func (s *Subscription) Poll(max int, timeout time.Duration) ([]Record, error) {
	q := url.Values{}
	q.Set("max", strconv.Itoa(max))
	q.Set("timeout_ms", strconv.FormatInt(timeout.Milliseconds(), 10))
	resp, err := s.client.do(http.MethodGet, "/v1/stream/"+s.ID+"?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	var out []Record
	return out, decodeOrError(resp, &out)
}

// Close deletes the subscription server-side.
func (s *Subscription) Close() error {
	resp, err := s.client.do(http.MethodDelete, "/v1/subscriptions/"+s.ID, nil)
	if err != nil {
		return err
	}
	return decodeOrError(resp, nil)
}
