// Package frontend implements a Loki-style query frontend for range
// queries: the layer between the HTTP query handlers and the engines
// that real Loki and VictoriaMetrics clusters use to scale reads.
//
// Three mechanisms, composed per request:
//
//   - Time splitting. A range query is cut at split-interval boundaries
//     into step-aligned sub-ranges which evaluate concurrently on a
//     bounded worker pool and merge deterministically — the read-path
//     counterpart of ingest lock striping.
//   - Shard fan-out. When the caller proves the expression merges across
//     disjoint stream partitions (sum of counts, max of maxes), each
//     split additionally fans out over the store's fingerprint shards
//     via a __shard__ selector and the partials merge pointwise.
//   - Results caching. Completed splits land in a byte-budgeted LRU
//     keyed by (engine, query, step, split window), so a dashboard
//     refresh that slides the window forward recomputes only the new
//     tail. Splits overlapping the mutable head window (now minus the
//     freshness bound) are never cached, and retention invalidates
//     entries whose data window it deletes from under them.
//
// The frontend is engine-neutral: requests carry timestamps in the
// engine's native unit (nanoseconds for LogQL, milliseconds for PromQL)
// plus an Eval closure that evaluates one sub-range monolithically, and
// results travel as the neutral Matrix type.
//
// Admission is load-shed, not buffered without bound: each engine gets
// a bounded queue in front of a concurrency limit, and a query arriving
// to a full queue fails fast with stats.ErrQueueFull — the 429 path —
// instead of stacking unbounded latency.
package frontend

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/parallel"
	"shastamon/internal/promtext"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// Defaults for the zero Config.
const (
	// DefaultSplitInterval is the split width. Engines evaluate range
	// queries per step, so narrower splits add no redundant scan work;
	// 5m keeps a one-hour dashboard panel at 12 independently cached
	// sub-ranges.
	DefaultSplitInterval = 5 * time.Minute
	// DefaultCacheBytes bounds the results cache: split results are
	// aggregated matrices, far smaller than the chunks they summarise.
	DefaultCacheBytes = 32 << 20
	// DefaultCacheFreshness is the mutable-head exclusion window: splits
	// ending within this distance of now are recomputed every time, the
	// analogue of Loki's max_cache_freshness.
	DefaultCacheFreshness = time.Minute
	// DefaultMaxQueueDepth bounds how many queries may wait per engine
	// before the frontend starts shedding.
	DefaultMaxQueueDepth = 64
)

// Config sizes the frontend.
type Config struct {
	// SplitInterval is the width of one time split; 0 takes
	// DefaultSplitInterval, negative disables splitting (whole range is
	// one split, still cached as one).
	SplitInterval time.Duration
	// CacheBytes bounds the results cache by approximate result size;
	// 0 takes DefaultCacheBytes, negative disables caching.
	CacheBytes int
	// CacheFreshness is how close to now a split may end and still be
	// cached; 0 takes DefaultCacheFreshness.
	CacheFreshness time.Duration
	// MaxConcurrent bounds concurrently executing range queries per
	// engine; 0 takes max(4, 2×GOMAXPROCS).
	MaxConcurrent int
	// MaxQueueDepth bounds queries waiting for an execution slot per
	// engine; 0 takes DefaultMaxQueueDepth, negative allows none (full
	// concurrency or immediate rejection).
	MaxQueueDepth int
	// NoShardFanout disables the per-shard fan-out even for expressions
	// whose callers prove shard-mergeable.
	NoShardFanout bool
	// Workers bounds the split/shard evaluation pool; 0 = GOMAXPROCS.
	Workers int
	// Now supplies the frontend clock for the freshness cutoff; nil =
	// time.Now. The pipeline injects its simulated clock.
	Now func() time.Time
	// TenantOverrides supplies per-tenant query-concurrency limits; nil
	// leaves every tenant at MaxConcurrent. A tenant's
	// MaxQueryConcurrency, when positive, sizes that tenant's slot pool
	// (still queued behind MaxQueueDepth), so one flooding tenant cannot
	// occupy every execution slot.
	TenantOverrides *tenant.Overrides
}

// Point is one (timestamp, value) sample in engine-native time units.
type Point struct {
	T int64
	V float64
}

// Series is a labelled point sequence.
type Series struct {
	Labels labels.Labels
	Points []Point
}

// Matrix is a range query result. Matrices returned by the frontend may
// alias cached storage and must be treated as immutable by callers.
type Matrix []Series

// Request is one range query. Start/End/Step and Lookback are in the
// engine's native unit; Unit says how long one of those ticks is, so the
// frontend can place the range on the wall clock for freshness and
// retention decisions.
type Request struct {
	// Engine namespaces the cache and selects the admission queue
	// ("logql", "promql").
	Engine string
	// Query is the canonical rendering of the parsed expression — the
	// cache key, so two spellings of one query share entries only if
	// they render identically.
	Query string

	Start, End, Step int64
	// Unit is the duration of one timestamp tick: time.Nanosecond for
	// LogQL, time.Millisecond for PromQL. Zero means nanoseconds.
	Unit time.Duration
	// Lookback is how far before a split's first step the evaluation
	// reads data (the range-aggregation interval or staleness window),
	// in engine units. Retention invalidation uses it to tell which
	// cached splits a deletion horizon reaches.
	Lookback int64

	// NoCache bypasses the results cache for this request (reads and
	// writes); the context flag set by WithoutCache does the same.
	NoCache bool

	// Shards > 1 declares the expression shard-mergeable: each split
	// may evaluate once per store shard (Eval's shard argument runs
	// 0..Shards-1) and the partial vectors merge pointwise with MergeOp
	// ("sum", "min" or "max"). Shards <= 1 evaluates unsharded
	// (shard = -1).
	Shards  int
	MergeOp string

	// Eval evaluates the expression monolithically over [start, end] at
	// the request step. shard is -1 for an unsharded evaluation, else
	// the shard index to restrict to.
	Eval func(ctx context.Context, start, end int64, shard int) (Matrix, error)
}

type bypassKey struct{}

// WithoutCache marks ctx so frontend queries under it skip the results
// cache entirely — logcli's -no-cache and the HTTP nocache parameter.
func WithoutCache(ctx context.Context) context.Context {
	return context.WithValue(ctx, bypassKey{}, true)
}

func cacheBypassed(ctx context.Context) bool {
	v, _ := ctx.Value(bypassKey{}).(bool)
	return v
}

// queue is one (engine, tenant)'s admission gate: a slot semaphore
// bounded by the tenant's concurrency limit (MaxConcurrent by default)
// with a counted wait line bounded by MaxQueueDepth.
type queue struct {
	slots    chan struct{}
	depth    int
	waiting  atomic.Int64
	rejected atomic.Int64
}

// queueKey namespaces admission queues by engine and tenant, so a
// tenant saturating its own slots never blocks another tenant's
// admission.
type queueKey struct {
	engine string
	tenant string
}

// Frontend splits, fans out, caches and admission-controls range
// queries. Build with New; safe for concurrent use.
type Frontend struct {
	cfg     Config
	workers int
	cache   *resultCache

	mu     sync.Mutex
	queues map[queueKey]*queue

	inFlight atomic.Int64

	// metric counters; registered families read them via closures so an
	// unregistered frontend (unit tests) costs only the atomic adds.
	splitsTotal     atomic.Int64
	shardSubqueries atomic.Int64
	rejectedTotal   atomic.Int64
	queueWaitNS     atomic.Int64
}

// New builds a frontend from cfg, applying defaults.
func New(cfg Config) *Frontend {
	if cfg.SplitInterval == 0 {
		cfg.SplitInterval = DefaultSplitInterval
	}
	if cfg.CacheFreshness <= 0 {
		cfg.CacheFreshness = DefaultCacheFreshness
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
		if cfg.MaxConcurrent < 4 {
			cfg.MaxConcurrent = 4
		}
	}
	if cfg.MaxQueueDepth == 0 {
		cfg.MaxQueueDepth = DefaultMaxQueueDepth
	} else if cfg.MaxQueueDepth < 0 {
		cfg.MaxQueueDepth = 0
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f := &Frontend{
		cfg:     cfg,
		workers: parallel.Workers(cfg.Workers),
		queues:  map[queueKey]*queue{},
	}
	if cfg.CacheBytes >= 0 {
		size := cfg.CacheBytes
		if size == 0 {
			size = DefaultCacheBytes
		}
		f.cache = newResultCache(size)
	}
	return f
}

// Config returns the effective (default-applied) configuration.
func (f *Frontend) Config() Config { return f.cfg }

// ShardFanout reports whether shard fan-out is enabled.
func (f *Frontend) ShardFanout() bool { return !f.cfg.NoShardFanout }

// CacheStats snapshots the results cache counters; zeros when caching is
// disabled.
func (f *Frontend) CacheStats() CacheStats { return f.cache.Stats() }

// QueueDepth reports queries currently waiting for an execution slot
// across all engines.
func (f *Frontend) QueueDepth() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for _, q := range f.queues {
		n += q.waiting.Load()
	}
	return n
}

// Rejected reports queries shed because an admission queue was full.
func (f *Frontend) Rejected() int64 { return f.rejectedTotal.Load() }

// RejectedByTenant reports queries shed per tenant, summed across
// engines, sorted by tenant ID.
func (f *Frontend) RejectedByTenant() []TenantRejected {
	f.mu.Lock()
	byTenant := map[string]int64{}
	for key, q := range f.queues {
		byTenant[key.tenant] += q.rejected.Load()
	}
	f.mu.Unlock()
	out := make([]TenantRejected, 0, len(byTenant))
	for id, n := range byTenant {
		if n == 0 {
			continue // counter series appear on first increment, like Loki's
		}
		out = append(out, TenantRejected{Tenant: id, Rejected: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantRejected is one tenant's shed-query count.
type TenantRejected struct {
	Tenant   string
	Rejected int64
}

// Register exposes the frontend metric families on reg.
func (f *Frontend) Register(reg *obs.Registry) {
	reg.GaugeFunc(obs.Namespace+"query_frontend_queue_depth",
		"Range queries waiting for a frontend execution slot.",
		func() float64 { return float64(f.QueueDepth()) })
	reg.Collect(func() []promtext.Family {
		cs := f.CacheStats()
		tenantRejected := promtext.Family{Name: obs.Namespace + "query_frontend_tenant_rejected_total",
			Help: "Range queries shed by the admission queue, by tenant.", Type: "counter"}
		for _, t := range f.RejectedByTenant() {
			tenantRejected = obs.Sample(tenantRejected, float64(t.Rejected), "tenant", t.Tenant)
		}
		return []promtext.Family{
			obs.Fam("counter", obs.Namespace+"query_frontend_splits_total",
				"Range-query time splits produced by the frontend.", float64(f.splitsTotal.Load())),
			obs.Fam("counter", obs.Namespace+"query_frontend_shard_subqueries_total",
				"Per-shard subqueries fanned out by the frontend.", float64(f.shardSubqueries.Load())),
			obs.Fam("counter", obs.Namespace+"query_frontend_queue_rejected_total",
				"Range queries shed because the admission queue was full.", float64(f.rejectedTotal.Load())),
			obs.Fam("counter", obs.Namespace+"query_frontend_queue_wait_seconds_total",
				"Cumulative time range queries spent waiting for admission.",
				time.Duration(f.queueWaitNS.Load()).Seconds()),
			obs.Fam("counter", obs.Namespace+"query_result_cache_hits_total",
				"Results-cache split hits.", float64(cs.Hits)),
			obs.Fam("counter", obs.Namespace+"query_result_cache_misses_total",
				"Results-cache split misses.", float64(cs.Misses)),
			obs.Fam("counter", obs.Namespace+"query_result_cache_evictions_total",
				"Results-cache entries evicted by the byte budget.", float64(cs.Evictions)),
			obs.Fam("gauge", obs.Namespace+"query_result_cache_bytes",
				"Approximate bytes of cached split results.", float64(cs.Bytes)),
			obs.Fam("gauge", obs.Namespace+"query_result_cache_entries",
				"Cached split results resident.", float64(cs.Entries)),
			tenantRejected,
		}
	})
}

func (f *Frontend) queueFor(engine, tid string) *queue {
	f.mu.Lock()
	defer f.mu.Unlock()
	key := queueKey{engine: engine, tenant: tid}
	q, ok := f.queues[key]
	if !ok {
		slots := f.cfg.MaxConcurrent
		if lim := f.cfg.TenantOverrides.For(tid).MaxQueryConcurrency; lim > 0 {
			slots = lim
		}
		q = &queue{slots: make(chan struct{}, slots), depth: f.cfg.MaxQueueDepth}
		f.queues[key] = q
	}
	return q
}

// admit takes an execution slot for (engine, tenant), waiting in its
// bounded queue if all slots are busy. A full queue rejects immediately
// with stats.ErrQueueFull. The returned release must be called when the
// query finishes.
func (f *Frontend) admit(ctx context.Context, engine, tid string) (func(), error) {
	q := f.queueFor(engine, tid)
	release := func() { <-q.slots }
	select {
	case q.slots <- struct{}{}:
		return release, nil
	default:
	}
	// All slots busy: join the wait line unless it is full. The
	// check-then-join is approximate under contention — a racing waiter
	// can briefly overshoot by the number of CPUs — but the bound holds
	// where it matters: a saturated queue never grows without limit.
	if q.waiting.Add(1) > int64(q.depth) {
		q.waiting.Add(-1)
		q.rejected.Add(1)
		f.rejectedTotal.Add(1)
		return nil, fmt.Errorf("frontend: %s %w", engine, stats.ErrQueueFull)
	}
	defer q.waiting.Add(-1)
	select {
	case q.slots <- struct{}{}:
		return release, nil
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// span is one time split: the first and last step timestamps it covers,
// inclusive, in engine units.
type span struct {
	start, end int64
}

// floorDiv is integer division rounding toward negative infinity, so
// bucket assignment stays stable for pre-epoch test timestamps.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// splitSpans cuts the step grid start, start+step, ... (≤ end) at
// absolute split-interval boundaries. Buckets are positioned on the
// absolute timeline — not relative to start — so a refresh that slides
// an aligned window forward lands on the same buckets and re-hits the
// cache (the extension-of-range reuse).
func splitSpans(start, end, step, interval int64) []span {
	if end < start {
		return nil
	}
	gridEnd := start + (end-start)/step*step
	if interval <= 0 {
		return []span{{start, gridEnd}}
	}
	var out []span
	cur := start
	for cur <= gridEnd {
		bucketLast := (floorDiv(cur, interval)+1)*interval - 1
		hi := bucketLast
		if hi > gridEnd {
			hi = gridEnd
		}
		last := cur + (hi-cur)/step*step
		out = append(out, span{cur, last})
		cur = last + step
	}
	return out
}

// unit returns the request's tick duration, defaulting to nanoseconds.
func (r *Request) unit() time.Duration {
	if r.Unit <= 0 {
		return time.Nanosecond
	}
	return r.Unit
}

// QueryRange runs one range query through admission, splitting, the
// results cache and (when requested) shard fan-out. The returned matrix
// is sorted by label string and byte-identical to a monolithic
// evaluation of the same request.
func (f *Frontend) QueryRange(ctx context.Context, req Request) (Matrix, error) {
	if req.Step <= 0 {
		return nil, fmt.Errorf("frontend: step must be positive")
	}
	if req.Eval == nil {
		return nil, fmt.Errorf("frontend: request carries no evaluator")
	}
	sc := stats.FromContext(ctx)
	tid := tenant.ID(ctx)
	t0 := time.Now()
	release, err := f.admit(ctx, req.Engine, tid)
	if err != nil {
		return nil, err
	}
	defer release()
	wait := time.Since(t0)
	f.queueWaitNS.Add(int64(wait))
	sc.SetQueueTime(wait)
	sc.MarkExec()

	unit := req.unit()
	spans := splitSpans(req.Start, req.End, req.Step, int64(f.cfg.SplitInterval/unit))
	if len(spans) == 0 {
		return Matrix{}, nil
	}
	f.splitsTotal.Add(int64(len(spans)))
	for range spans {
		sc.AddSplit()
	}

	useCache := f.cache != nil && !req.NoCache && !cacheBypassed(ctx)
	// cutoff is the newest engine-units timestamp a split may end at and
	// still be cached: anything younger is the mutable head window.
	cutoff := f.cfg.Now().Add(-f.cfg.CacheFreshness).UnixNano() / int64(unit)

	splitStart := time.Now()
	results := make([]Matrix, len(spans))
	var toEval []int
	hits := 0
	for i, sp := range spans {
		if useCache && sp.end <= cutoff {
			if m, bytes, ok := f.cache.get(tid, req.Engine, req.Query, req.Step, sp); ok {
				results[i] = m
				sc.AddResultCacheHit(int64(bytes))
				hits++
				continue
			}
			sc.AddResultCacheMiss()
		}
		toEval = append(toEval, i)
	}

	errs := make([]error, len(toEval))
	parallel.Do(len(toEval), f.workers, &f.inFlight, func(j int) {
		i := toEval[j]
		sp := spans[i]
		m, err := f.evalSplit(ctx, &req, sp)
		if err != nil {
			errs[j] = err
			return
		}
		results[i] = m
		if useCache && sp.end <= cutoff {
			f.cache.put(tid, req.Engine, req.Query, req.Step, sp, unit, req.Lookback, m)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	merged := mergeSplits(results)
	sc.AddSpan("frontend.split", splitStart, time.Now(),
		fmt.Sprintf("%d splits (%d cached), %d shards", len(spans), hits, req.Shards))
	return merged, nil
}

// evalSplit evaluates one time split, fanning out across store shards
// when the request declares the expression shard-mergeable.
func (f *Frontend) evalSplit(ctx context.Context, req *Request, sp span) (Matrix, error) {
	if req.Shards > 1 && req.MergeOp != "" && !f.cfg.NoShardFanout {
		parts := make([]Matrix, req.Shards)
		errs := make([]error, req.Shards)
		f.shardSubqueries.Add(int64(req.Shards))
		parallel.Do(req.Shards, f.workers, &f.inFlight, func(s int) {
			parts[s], errs[s] = req.Eval(ctx, sp.start, sp.end, s)
		})
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return mergeShards(req.MergeOp, parts)
	}
	return req.Eval(ctx, sp.start, sp.end, -1)
}

// mergeSplits concatenates per-split matrices in time order. Splits
// partition the step grid, so per-series points concatenate without
// overlap; series order is by label string, matching the engines'
// monolithic evaluation. Point slices are always freshly allocated —
// cached input matrices are shared and must not be appended to.
func mergeSplits(parts []Matrix) Matrix {
	bySeries := map[string]*Series{}
	var order []string
	total := 0
	for _, m := range parts {
		total += len(m)
	}
	for _, m := range parts {
		for _, s := range m {
			key := s.Labels.String()
			sr, ok := bySeries[key]
			if !ok {
				sr = &Series{Labels: s.Labels}
				bySeries[key] = sr
				order = append(order, key)
			}
			sr.Points = append(sr.Points, s.Points...)
		}
	}
	sort.Strings(order)
	out := make(Matrix, 0, len(order))
	for _, key := range order {
		out = append(out, *bySeries[key])
	}
	return out
}

// mergeShards merges per-shard partial matrices pointwise. Shards
// partition streams, so a series may appear in any subset of shards; a
// merged point exists wherever at least one shard produced one. The
// supported ops (sum of integral counts, min, max) merge exactly, which
// is what keeps sharded results byte-identical to monolithic ones.
func mergeShards(op string, parts []Matrix) (Matrix, error) {
	type seriesAcc struct {
		labels labels.Labels
		byT    map[int64]float64
		order  []int64
	}
	accs := map[string]*seriesAcc{}
	var order []string
	for _, m := range parts {
		for _, s := range m {
			key := s.Labels.String()
			acc, ok := accs[key]
			if !ok {
				acc = &seriesAcc{labels: s.Labels, byT: map[int64]float64{}}
				accs[key] = acc
				order = append(order, key)
			}
			for _, p := range s.Points {
				v, seen := acc.byT[p.T]
				if !seen {
					acc.byT[p.T] = p.V
					acc.order = append(acc.order, p.T)
					continue
				}
				switch op {
				case "sum":
					acc.byT[p.T] = v + p.V
				case "min":
					if p.V < v {
						acc.byT[p.T] = p.V
					}
				case "max":
					if p.V > v {
						acc.byT[p.T] = p.V
					}
				default:
					return nil, fmt.Errorf("frontend: unsupported shard merge op %q", op)
				}
			}
		}
	}
	sort.Strings(order)
	out := make(Matrix, 0, len(order))
	for _, key := range order {
		acc := accs[key]
		sort.Slice(acc.order, func(i, j int) bool { return acc.order[i] < acc.order[j] })
		pts := make([]Point, 0, len(acc.order))
		for _, t := range acc.order {
			pts = append(pts, Point{T: t, V: acc.byT[t]})
		}
		out = append(out, Series{Labels: acc.labels, Points: pts})
	}
	return out, nil
}

// InvalidateBefore drops cached splits whose data window (split start
// minus lookback) reaches before ts — the retention hook. It also raises
// the cache's admission high-water mark so a split evaluated against
// pre-retention data but stored after this call cannot resurface deleted
// data.
func (f *Frontend) InvalidateBefore(ts time.Time) int {
	return f.cache.invalidateBefore(ts.UnixNano())
}
