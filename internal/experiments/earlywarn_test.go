package experiments

import (
	"encoding/json"
	"testing"
)

// TestEarlyWarnDeterministic runs the full predictive-vs-reactive race
// twice and requires byte-identical reports: same alert timeline, same
// latencies, same SLO close-outs. The whole pipeline runs on the
// simulated clock with seeded sensor walks, and the anomaly detector is
// driven purely by sample timestamps — so two runs must agree exactly,
// or the early-warning benchmark is not a benchmark.
func TestEarlyWarnDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full pipeline runs")
	}
	run := func() string {
		t.Helper()
		rep, err := runEarlyWarn()
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("early-warning timelines diverged between identical runs:\n%s\n%s", a, b)
	}
}

// TestEarlyWarnBeatsStaticRule pins the experiment's headline claim so a
// detector regression (or a retuned rule) that erodes the predictive
// lead fails in CI, not in the paper's tables: every cabinet's anomaly
// delivery must precede the physical sensor trip itself, not merely the
// static rule's delayed delivery.
func TestEarlyWarnBeatsStaticRule(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	rep, err := runEarlyWarn()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("scenarios: %+v", rep.Scenarios)
	}
	for _, sc := range rep.Scenarios {
		if sc.AnomalySeconds >= sc.ThresholdCrossSeconds {
			t.Errorf("%s: anomaly alert at %gs did not precede the sensor trip at %gs",
				sc.Cabinet, sc.AnomalySeconds, sc.ThresholdCrossSeconds)
		}
		if sc.LeadSeconds <= 0 {
			t.Errorf("%s: no lead over the static rule: %+v", sc.Cabinet, sc)
		}
	}
	if rep.LeadP50Seconds < 60 {
		t.Errorf("p50 lead %.0fs, want at least a minute of early warning", rep.LeadP50Seconds)
	}
}
