package tsdb

import (
	"fmt"
	"time"
)

// Downsampling supports OMNI's long-horizon retention ("up to two years of
// operational data immediately available"): raw samples older than a
// boundary are replaced by per-window aggregates, preserving queryability
// at a fraction of the storage.

// AggKind selects the per-window aggregate kept by Downsample.
type AggKind int

// Aggregates.
const (
	AggAvg AggKind = iota
	AggMin
	AggMax
	AggLast
)

// Downsample replaces, in every series, the samples older than before
// (ms) with one aggregated sample per resolution window. It returns the
// number of samples eliminated (original minus aggregated). Newer samples
// are untouched.
func (db *DB) Downsample(before int64, resolution time.Duration, kind AggKind) (int, error) {
	if resolution <= 0 {
		return 0, fmt.Errorf("tsdb: resolution must be positive")
	}
	res := resolution.Milliseconds()
	var series []*series
	for _, sh := range db.shards {
		sh.mu.RLock()
		series = append(series, sh.ordered...)
		sh.mu.RUnlock()
	}

	eliminated := 0
	for _, s := range series {
		s.mu.Lock()
		// Find the prefix of samples older than the boundary.
		n := 0
		for n < len(s.data) && s.data[n].T < before {
			n++
		}
		if n < 2 {
			s.mu.Unlock()
			continue
		}
		old := s.data[:n]
		agg := make([]Sample, 0, n/4+1)
		i := 0
		for i < n {
			window := old[i].T - old[i].T%res
			sum, minV, maxV := 0.0, old[i].V, old[i].V
			last := old[i].V
			count := 0
			for i < n && old[i].T-old[i].T%res == window {
				v := old[i].V
				sum += v
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
				last = v
				count++
				i++
			}
			var v float64
			switch kind {
			case AggAvg:
				v = sum / float64(count)
			case AggMin:
				v = minV
			case AggMax:
				v = maxV
			case AggLast:
				v = last
			}
			agg = append(agg, Sample{T: window, V: v})
		}
		if len(agg) < n {
			eliminated += n - len(agg)
			newData := make([]Sample, 0, len(agg)+len(s.data)-n)
			newData = append(newData, agg...)
			newData = append(newData, s.data[n:]...)
			s.data = newData
		}
		s.mu.Unlock()
	}
	return eliminated, nil
}
