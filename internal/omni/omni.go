// Package omni implements the Operations Monitoring and Notification
// Infrastructure: NERSC's data warehouse keeping "up to two years of
// operational data immediately available". It fronts the two stores of
// the dual pipeline — Loki for logs, the TSDB for metrics — with a single
// ingest façade, unified query engines, retention enforcement, and the
// ingest-rate accounting the paper's 400,000 messages/second claim is
// benchmarked against.
package omni

import (
	"context"
	"sync"
	"time"

	"shastamon/internal/eventsearch"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
	"shastamon/internal/promql"
	"shastamon/internal/tsdb"
)

// Config sizes the warehouse.
type Config struct {
	// Retention is how long data is kept; the paper's OMNI keeps two
	// years. Zero keeps everything.
	Retention time.Duration
	// LokiLimits configures the log store.
	LokiLimits loki.Limits
	// IndexEvents additionally feeds ingested log lines into the
	// Elasticsearch-style full-text index (OMNI is "backed by ...
	// Elasticsearch and VictoriaMetrics"). Off by default: the label
	// index is the hot path; full-text costs write-time work.
	IndexEvents bool
	// DownsampleAfter, when positive, replaces metric samples older than
	// this horizon with DownsampleResolution averages during retention
	// enforcement — how a two-year window stays affordable.
	DownsampleAfter      time.Duration
	DownsampleResolution time.Duration // default 5m
}

// Warehouse is the OMNI façade.
type Warehouse struct {
	Logs    *loki.Store
	Metrics *tsdb.DB
	Events  *eventsearch.Index
	LogQL   *logql.Engine
	PromQL  *promql.Engine

	retention       time.Duration
	indexEvents     bool
	downsampleAfter time.Duration
	downsampleRes   time.Duration

	mu          sync.Mutex
	logMessages int64
	logBytes    int64
	samples     int64
	windowStart time.Time
	windowCount int64
}

// New builds an empty warehouse.
func New(cfg Config) *Warehouse {
	if cfg.LokiLimits == (loki.Limits{}) {
		cfg.LokiLimits = loki.DefaultLimits()
	}
	logs := loki.NewStore(cfg.LokiLimits)
	metrics := tsdb.New()
	if cfg.DownsampleResolution <= 0 {
		cfg.DownsampleResolution = 5 * time.Minute
	}
	return &Warehouse{
		Logs:            logs,
		Metrics:         metrics,
		Events:          eventsearch.New(),
		LogQL:           logql.NewEngine(logs),
		PromQL:          promql.NewEngine(metrics),
		retention:       cfg.Retention,
		indexEvents:     cfg.IndexEvents,
		downsampleAfter: cfg.DownsampleAfter,
		downsampleRes:   cfg.DownsampleResolution,
	}
}

// IngestLogs pushes log streams into the log store (and, when
// IndexEvents is on, into the full-text index).
func (w *Warehouse) IngestLogs(batch []loki.PushStream) error {
	err := w.Logs.Push(batch)
	var n, bytes int64
	for _, ps := range batch {
		n += int64(len(ps.Entries))
		for _, e := range ps.Entries {
			bytes += int64(len(e.Line))
		}
		if w.indexEvents {
			fields := ps.Labels.Map()
			for _, e := range ps.Entries {
				w.Events.Add(time.Unix(0, e.Timestamp), fields, e.Line)
			}
		}
	}
	w.mu.Lock()
	w.logMessages += n
	w.logBytes += bytes
	w.windowCount += n
	w.mu.Unlock()
	return err
}

// IngestMetric appends one sample to the metrics store.
func (w *Warehouse) IngestMetric(name string, ls labels.Labels, tsMillis int64, v float64) error {
	err := w.Metrics.AppendMetric(name, ls, tsMillis, v)
	w.mu.Lock()
	w.samples++
	w.windowCount++
	w.mu.Unlock()
	return err
}

// Stats is a warehouse counter snapshot.
type Stats struct {
	LogMessages int64
	LogBytes    int64
	Samples     int64
	LogStore    loki.Stats
	MetricStore tsdb.Stats
}

// Stats returns counters.
func (w *Warehouse) Stats() Stats {
	w.mu.Lock()
	s := Stats{LogMessages: w.logMessages, LogBytes: w.logBytes, Samples: w.samples}
	w.mu.Unlock()
	s.LogStore = w.Logs.Stats()
	s.MetricStore = w.Metrics.Stats()
	return s
}

// RateWindowReset starts an ingest-rate measurement window.
func (w *Warehouse) RateWindowReset(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.windowStart = now
	w.windowCount = 0
}

// RateWindow reports messages/second since the last reset.
func (w *Warehouse) RateWindow(now time.Time) float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	secs := now.Sub(w.windowStart).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(w.windowCount) / secs
}

// EnforceRetention drops data older than the retention horizon relative
// to now and, when configured, downsamples metrics older than the
// downsampling horizon. It returns (log chunks dropped, metric samples
// dropped or folded into aggregates).
func (w *Warehouse) EnforceRetention(now time.Time) (chunks, samples int) {
	if w.downsampleAfter > 0 {
		folded, err := w.Metrics.Downsample(now.Add(-w.downsampleAfter).UnixMilli(), w.downsampleRes, tsdb.AggAvg)
		if err == nil {
			samples += folded
		}
	}
	if w.retention <= 0 {
		return chunks, samples
	}
	cutoff := now.Add(-w.retention)
	chunks = w.Logs.DeleteBefore(cutoff.UnixNano())
	samples += w.Metrics.DeleteBefore(cutoff.UnixMilli())
	if w.indexEvents {
		w.Events.DeleteBefore(cutoff)
	}
	return chunks, samples
}

// RunRetention enforces retention on the interval until ctx is cancelled.
func (w *Warehouse) RunRetention(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			w.EnforceRetention(now)
		}
	}
}
