package tsdb

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shastamon/internal/labels"
	"shastamon/internal/tenant"
	"shastamon/internal/wal"
)

// TestTenantSeriesIsolation: identical label sets appended by different
// tenants stay disjoint series, and reads are tenant-scoped.
func TestTenantSeriesIsolation(t *testing.T) {
	db := NewSharded(2)
	ls := labels.FromStrings("__name__", "node_temp_celsius", "xname", "x1000c0s0b0n0")
	if err := db.AppendTenant("hpc-a", ls, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.AppendTenant("hpc-b", ls, 1000, 2); err != nil {
		t.Fatal(err)
	}
	if err := db.Append(ls, 1000, 3); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Series; got != 3 {
		t.Fatalf("series = %d, want 3", got)
	}
	for id, want := range map[string]float64{"hpc-a": 1, "hpc-b": 2, tenant.DefaultID: 3} {
		got, err := db.SelectContext(tenant.WithID(context.Background(), id), nil, 0, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || len(got[0].Samples) != 1 || got[0].Samples[0].V != want {
			t.Fatalf("tenant %s select = %+v, want one point %v", id, got, want)
		}
		if series := db.SeriesTenant(id, nil); len(series) != 1 {
			t.Fatalf("tenant %s series = %v", id, series)
		}
	}
	got, err := db.SelectContext(tenant.WithID(context.Background(), "nobody"), nil, 0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("unknown tenant sees %d series", len(got))
	}
}

// TestTenantGoldenSingleTenantTSDB pins single-tenant byte-equality:
// default appends get plain fingerprints and unchanged striping.
func TestTenantGoldenSingleTenantTSDB(t *testing.T) {
	db := NewSharded(4)
	for i := 0; i < 32; i++ {
		ls := labels.FromStrings("__name__", "m", "i", fmt.Sprintf("%d", i))
		if err := db.Append(ls, 1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	for _, sh := range db.shards {
		for _, s := range sh.ordered {
			seen++
			if s.tenant != tenant.DefaultID {
				t.Fatalf("default append landed in tenant %q", s.tenant)
			}
			if s.fp != s.labels.Fingerprint() {
				t.Fatalf("default-tenant fp %v != plain %v", s.fp, s.labels.Fingerprint())
			}
			if db.shardFor(s.labels.Fingerprint()) != sh {
				t.Fatalf("series %v striped off its plain-fingerprint shard", s.labels)
			}
		}
	}
	if seen != 32 {
		t.Fatalf("series = %d", seen)
	}
}

// TestTenantMaxSeriesExact: per-tenant series quota (MaxStreams) is
// exact under concurrent appends and scoped to the offending tenant.
func TestTenantMaxSeriesExact(t *testing.T) {
	const quota = 16
	db := NewSharded(4)
	db.SetTenantOverrides(&tenant.Overrides{Defaults: tenant.Limits{MaxStreams: quota}})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < quota; i++ {
				err := db.AppendTenant("flood",
					labels.FromStrings("__name__", "m", "g", fmt.Sprintf("%d", g), "i", fmt.Sprintf("%d", i)), 1000, 1)
				if err != nil && !errors.Is(err, ErrMaxSeries) {
					t.Errorf("unexpected error: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(db.SeriesTenant("flood", nil)); got != quota {
		t.Fatalf("flood series = %d, want exactly %d", got, quota)
	}
	// Quiet tenant unaffected.
	for i := 0; i < quota; i++ {
		if err := db.AppendTenant("quiet", labels.FromStrings("__name__", "m", "i", fmt.Sprintf("%d", i)), 1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.AppendTenant("quiet", labels.FromStrings("__name__", "m", "i", "over"), 1000, 1); !errors.Is(err, ErrMaxSeries) {
		t.Fatalf("quiet tenant over quota: %v", err)
	}
}

// TestDurableTenantRoundTripTSDB: tenant namespaces survive WAL replay
// and checkpoint restore.
func TestDurableTenantRoundTripTSDB(t *testing.T) {
	dir := t.TempDir()
	ls := labels.FromStrings("__name__", "m")

	db1 := NewSharded(2)
	if _, err := db1.EnableDurability(dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}); err != nil {
		t.Fatal(err)
	}
	if err := db1.AppendTenant("hpc-a", ls, 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := db1.Append(ls, 1000, 10); err != nil {
		t.Fatal(err)
	}
	if err := db1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db1.AppendTenant("hpc-a", ls, 2000, 2); err != nil {
		t.Fatal(err)
	}
	if err := db1.AppendTenant("hpc-b", ls, 2000, 20); err != nil {
		t.Fatal(err)
	}
	// Crash: no Shutdown.

	db2 := NewSharded(2)
	info, err := db2.EnableDurability(dir, wal.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Checkpoint || info.Replayed == 0 {
		t.Fatalf("recovery: %+v", info)
	}
	wantPoints := map[string][]float64{
		"hpc-a":          {1, 2},
		"hpc-b":          {20},
		tenant.DefaultID: {10},
	}
	for id, want := range wantPoints {
		got, err := db2.SelectContext(tenant.WithID(context.Background(), id), nil, 0, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || len(got[0].Samples) != len(want) {
			t.Fatalf("tenant %s recovered %+v, want points %v", id, got, want)
		}
		for i, p := range got[0].Samples {
			if p.V != want[i] {
				t.Fatalf("tenant %s point %d = %v, want %v", id, i, p.V, want[i])
			}
		}
	}
	for _, sh := range db2.shards {
		for _, s := range sh.ordered {
			if want := tenant.Fingerprint(s.tenant, s.labels); s.fp != want {
				t.Fatalf("recovered series tenant %q fp %v, want %v", s.tenant, s.fp, want)
			}
		}
	}
}

// TestTenantConcurrentAppendRaceTSDB hammers identical series names from
// two tenants; -race plus value checks catch contamination.
func TestTenantConcurrentAppendRaceTSDB(t *testing.T) {
	db := NewSharded(4)
	const perTenant = 200
	var wg sync.WaitGroup
	for ti, id := range []string{"hpc-a", "hpc-b"} {
		wg.Add(1)
		go func(ti int, id string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				ls := labels.FromStrings("__name__", "m", "s", fmt.Sprintf("%d", i%4))
				if err := db.AppendTenant(id, ls, int64(i+1), float64(ti)); err != nil {
					t.Error(err)
					return
				}
			}
		}(ti, id)
	}
	wg.Wait()
	for ti, id := range []string{"hpc-a", "hpc-b"} {
		got, err := db.SelectContext(tenant.WithID(context.Background(), id), nil, 0, perTenant+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 4 {
			t.Fatalf("tenant %s series = %d, want 4", id, len(got))
		}
		total := 0
		for _, s := range got {
			total += len(s.Samples)
			for _, p := range s.Samples {
				if p.V != float64(ti) {
					t.Fatalf("tenant %s sees foreign value %v", id, p.V)
				}
			}
		}
		if total != perTenant {
			t.Fatalf("tenant %s points = %d, want %d", id, total, perTenant)
		}
	}
}
