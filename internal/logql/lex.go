// Package logql implements the subset of Grafana Loki's LogQL query
// language used throughout the paper: stream selectors, line filters,
// parser stages (json, logfmt, pattern, regexp), label filters, formatting
// stages, range aggregations over log selections (count_over_time, rate,
// bytes_over_time, ...) and vector aggregations (sum by (...), ...), plus
// threshold comparisons used in alerting rules.
//
// The package is split into a hand-written lexer (this file), a recursive
// descent parser (parse.go), pipeline stages (stages.go) and a query
// engine (eval.go).
package logql

import (
	"fmt"
	"strings"
	"time"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokDuration
	tokLBrace    // {
	tokRBrace    // }
	tokLParen    // (
	tokRParen    // )
	tokLBracket  // [
	tokRBracket  // ]
	tokComma     // ,
	tokPipe      // |
	tokPipeExact // |=
	tokPipeMatch // |~
	tokNeq       // !=
	tokNre       // !~
	tokEq        // =
	tokRe        // =~
	tokGt        // >
	tokGte       // >=
	tokLt        // <
	tokLte       // <=
	tokEqEq      // ==
)

var tokNames = map[tokKind]string{
	tokEOF: "EOF", tokIdent: "identifier", tokString: "string",
	tokNumber: "number", tokDuration: "duration",
	tokLBrace: "{", tokRBrace: "}", tokLParen: "(", tokRParen: ")",
	tokLBracket: "[", tokRBracket: "]", tokComma: ",",
	tokPipe: "|", tokPipeExact: "|=", tokPipeMatch: "|~",
	tokNeq: "!=", tokNre: "!~", tokEq: "=", tokRe: "=~",
	tokGt: ">", tokGte: ">=", tokLt: "<", tokLte: "<=", tokEqEq: "==",
}

func (k tokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer tokenises a LogQL expression. Durations are recognised as a number
// immediately followed by a unit letter; plain numbers stay numbers.
type lexer struct {
	input string
	pos   int
	toks  []token
}

func lex(input string) ([]token, error) {
	l := &lexer{input: input}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return fmt.Errorf("logql: lex error at %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch c {
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '|':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '=':
				l.pos++
				return token{tokPipeExact, "|=", start}, nil
			case '~':
				l.pos++
				return token{tokPipeMatch, "|~", start}, nil
			}
		}
		return token{tokPipe, "|", start}, nil
	case '!':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '=':
				l.pos++
				return token{tokNeq, "!=", start}, nil
			case '~':
				l.pos++
				return token{tokNre, "!~", start}, nil
			}
		}
		return token{}, l.errf(start, "unexpected '!'")
	case '=':
		l.pos++
		if l.pos < len(l.input) {
			switch l.input[l.pos] {
			case '~':
				l.pos++
				return token{tokRe, "=~", start}, nil
			case '=':
				l.pos++
				return token{tokEqEq, "==", start}, nil
			}
		}
		return token{tokEq, "=", start}, nil
	case '>':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokGte, ">=", start}, nil
		}
		return token{tokGt, ">", start}, nil
	case '<':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokLte, "<=", start}, nil
		}
		return token{tokLt, "<", start}, nil
	case '"', '\'', '`':
		return l.lexString(c)
	}
	if c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.input) && isDigit(l.input[l.pos+1]) {
		return l.lexNumberOrDuration()
	}
	if isIdentStart(c) {
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return token{tokIdent, l.input[start:l.pos], start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == quote:
			l.pos++
			return token{tokString, b.String(), start}, nil
		case c == '\\' && quote != '`' && l.pos+1 < len(l.input):
			l.pos++
			esc := l.input[l.pos]
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"', '\'', '`':
				b.WriteByte(esc)
			default:
				b.WriteByte('\\')
				b.WriteByte(esc)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func (l *lexer) lexNumberOrDuration() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || l.input[l.pos] == '.') {
		l.pos++
	}
	// A trailing unit letter turns the number into a duration; durations may
	// chain units (e.g. 1h30m).
	if l.pos < len(l.input) && isDurationUnit(l.input[l.pos]) {
		for l.pos < len(l.input) && (isDigit(l.input[l.pos]) || l.input[l.pos] == '.' || isDurationUnit(l.input[l.pos])) {
			l.pos++
		}
		text := l.input[start:l.pos]
		if _, err := parseDuration(text); err != nil {
			return token{}, l.errf(start, "bad duration %q: %v", text, err)
		}
		return token{tokDuration, text, start}, nil
	}
	return token{tokNumber, l.input[start:l.pos], start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || unicode.IsLetter(rune(c)) || isDigit(c) }
func isDurationUnit(c byte) bool {
	switch c {
	case 's', 'm', 'h', 'd', 'w', 'u', 'n':
		return true
	}
	return false
}

// parseDuration extends time.ParseDuration with d (days) and w (weeks)
// units, which PromQL/LogQL allow.
func parseDuration(s string) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	// Expand d and w manually: scan number+unit pairs.
	var total time.Duration
	i := 0
	for i < len(s) {
		j := i
		for j < len(s) && (isDigit(s[j]) || s[j] == '.') {
			j++
		}
		if j == i || j >= len(s) {
			return 0, fmt.Errorf("invalid duration %q", s)
		}
		numStr := s[i:j]
		unitEnd := j + 1
		// time units can be two chars: ms, us, ns
		if unitEnd < len(s) && s[j] != 'd' && s[j] != 'w' && s[unitEnd] == 's' {
			unitEnd++
		}
		unit := s[j:unitEnd]
		var mult time.Duration
		switch unit {
		case "d":
			mult = 24 * time.Hour
		case "w":
			mult = 7 * 24 * time.Hour
		default:
			d, err := time.ParseDuration(numStr + unit)
			if err != nil {
				return 0, err
			}
			total += d
			i = unitEnd
			continue
		}
		var whole float64
		if _, err := fmt.Sscanf(numStr, "%g", &whole); err != nil {
			return 0, fmt.Errorf("invalid duration %q", s)
		}
		total += time.Duration(whole * float64(mult))
		i = unitEnd
	}
	return total, nil
}
