package tsdb

import (
	"encoding/json"
	"net/http"
	"sort"

	"shastamon/internal/promtext"
	"shastamon/internal/tenant"
)

// Handler exposes the VictoriaMetrics-style write and metadata API:
//
//	POST /api/v1/import/prometheus   exposition-format lines (with optional
//	                                 millisecond timestamps) appended to the DB
//	GET  /api/v1/labels
//	GET  /api/v1/label/{name}/values (flat ?name= form)
//
// Query endpoints live on the promql engine (promql.Engine.Handler).
func (db *DB) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/import/prometheus", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		fams, err := promtext.Parse(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tid := tenant.FromRequest(r)
		accepted, rejected := 0, 0
		for _, m := range promtext.Samples(fams) {
			if m.Timestamp == 0 {
				http.Error(w, "samples must carry millisecond timestamps", http.StatusBadRequest)
				return
			}
			if err := db.AppendMetricTenant(tid, m.Name, m.Labels, m.Timestamp, m.Value); err != nil {
				rejected++
				continue
			}
			accepted++
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]int{"accepted": accepted, "rejected": rejected})
	})
	mux.HandleFunc("/api/v1/labels", func(w http.ResponseWriter, r *http.Request) {
		names := map[string]bool{}
		for _, ls := range db.SeriesTenant(tenant.FromRequest(r), nil) {
			for _, l := range ls {
				names[l.Name] = true
			}
		}
		out := make([]string, 0, len(names))
		for n := range names {
			out = append(out, n)
		}
		sort.Strings(out)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"status": "success", "data": out})
	})
	mux.HandleFunc("/api/v1/label_values", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("name")
		if name == "" {
			http.Error(w, "name required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{"status": "success", "data": db.LabelValuesTenant(tenant.FromRequest(r), name)})
	})
	return mux
}
