package servicenow

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
)

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time { c.mu.Lock(); defer c.mu.Unlock(); return c.t }
func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func testInstance() (*Instance, *clock) {
	ck := &clock{t: time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)}
	sn := NewInstance(Config{Now: ck.Now})
	return sn, ck
}

func TestEventValidation(t *testing.T) {
	sn, _ := testInstance()
	if _, err := sn.PostEvent(Event{Node: "x", Severity: 1}); err == nil {
		t.Fatal("missing source/type accepted")
	}
	if _, err := sn.PostEvent(Event{Source: "s", Type: "t", Severity: 9}); err == nil {
		t.Fatal("bad severity accepted")
	}
}

func TestEventCorrelationIntoAlert(t *testing.T) {
	sn, _ := testInstance()
	e := Event{Source: "alertmanager", Node: "x1002c1r7b0", Type: "SwitchOffline", Severity: SeverityCritical, Description: "switch down"}
	a1, err := sn.PostEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sn.PostEvent(e) // duplicate event correlates, no new alert
	if err != nil {
		t.Fatal(err)
	}
	if a1.Number != a2.Number || a2.EventCount != 2 {
		t.Fatalf("%+v %+v", a1, a2)
	}
	if len(sn.Alerts()) != 1 || len(sn.Events()) != 2 {
		t.Fatalf("alerts=%d events=%d", len(sn.Alerts()), len(sn.Events()))
	}
}

func TestIncidentAutoCreationAndPriority(t *testing.T) {
	sn, _ := testInstance()
	// Warning severity: no incident (threshold is Major).
	a, _ := sn.PostEvent(Event{Source: "am", Node: "n1", Type: "Warn", Severity: SeverityWarning})
	if a.Incident != "" {
		t.Fatalf("warning opened incident: %+v", a)
	}
	// Critical: incident opened with priority 1.
	a, _ = sn.PostEvent(Event{Source: "am", Node: "n2", Type: "LeakDetected", Severity: SeverityCritical, Description: "leak at x1203c1b0"})
	if a.Incident == "" {
		t.Fatal("no incident for critical alert")
	}
	incs := sn.Incidents()
	if len(incs) != 1 || incs[0].Priority != 1 || incs[0].State != IncidentNew {
		t.Fatalf("%+v", incs)
	}
	if !strings.Contains(incs[0].ShortDescription, "LeakDetected") {
		t.Fatalf("short description: %q", incs[0].ShortDescription)
	}
	// Escalation: a warning alert that later goes critical opens one.
	a, _ = sn.PostEvent(Event{Source: "am", Node: "n1", Type: "Warn", Severity: SeverityCritical})
	if a.Incident == "" {
		t.Fatal("escalated alert did not open incident")
	}
}

func TestClearEventClosesAlertAndResolvesIncident(t *testing.T) {
	sn, ck := testInstance()
	e := Event{Source: "am", Node: "x1002c1r7b0", Type: "SwitchOffline", Severity: SeverityCritical}
	a, _ := sn.PostEvent(e)
	inc := a.Incident
	ck.Advance(10 * time.Minute)
	e.Severity = SeverityClear
	a, err := sn.PostEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	if a.State != "Closed" {
		t.Fatalf("alert state %q", a.State)
	}
	incs := sn.Incidents()
	if incs[0].Number != inc || incs[0].State != IncidentResolved || incs[0].ResolvedAt.IsZero() {
		t.Fatalf("%+v", incs[0])
	}
	if len(incs[0].WorkNotes) == 0 {
		t.Fatal("no work note on auto-resolve")
	}
}

func TestCMDBBinding(t *testing.T) {
	sn, _ := testInstance()
	sn.LoadCMDB(
		CI{Name: "x1002c1r7b0", Class: "cmdb_ci_netgear", Attributes: map[string]string{"model": "Rosetta"}},
		CI{Name: "x1000c0s0b0n0", Class: "cmdb_ci_computer"},
	)
	if _, ok := sn.CMDBLookup("x1002c1r7b0"); !ok {
		t.Fatal("CI missing")
	}
	a, _ := sn.PostEvent(Event{Source: "am", Node: "x1002c1r7b0", Type: "SwitchOffline", Severity: SeverityCritical})
	if a.CI != "x1002c1r7b0" {
		t.Fatalf("alert not bound to CI: %+v", a)
	}
	incs := sn.Incidents()
	if incs[0].CI != "x1002c1r7b0" {
		t.Fatalf("incident not bound to CI: %+v", incs[0])
	}
	// Unknown node: no CI binding, still works.
	a, _ = sn.PostEvent(Event{Source: "am", Node: "mystery", Type: "X", Severity: SeverityCritical})
	if a.CI != "" {
		t.Fatalf("%+v", a)
	}
}

func TestIncidentLifecycle(t *testing.T) {
	sn, _ := testInstance()
	a, _ := sn.PostEvent(Event{Source: "am", Node: "n", Type: "T", Severity: SeverityCritical})
	num := a.Incident
	if err := sn.UpdateIncident(num, IncidentInProgress, "operator acknowledged"); err != nil {
		t.Fatal(err)
	}
	if err := sn.UpdateIncident(num, IncidentNew, ""); err == nil {
		t.Fatal("backwards transition accepted")
	}
	if err := sn.UpdateIncident(num, IncidentResolved, "leak contained"); err != nil {
		t.Fatal(err)
	}
	if err := sn.UpdateIncident(num, IncidentClosed, ""); err != nil {
		t.Fatal(err)
	}
	if err := sn.UpdateIncident("INC999", IncidentClosed, ""); err == nil {
		t.Fatal("unknown incident accepted")
	}
	if err := sn.UpdateIncident(num, "Bogus", ""); err == nil {
		t.Fatal("unknown state accepted")
	}
	incs := sn.Incidents()
	if incs[0].State != IncidentClosed || len(incs[0].WorkNotes) != 2 {
		t.Fatalf("%+v", incs[0])
	}
}

func TestHTTPEventCollector(t *testing.T) {
	sn, _ := testInstance()
	srv := httptest.NewServer(sn.Handler())
	defer srv.Close()

	notifier := NewNotifier("servicenow", srv.URL, nil)
	if notifier.Name() != "servicenow" {
		t.Fatal("name")
	}
	n := alertmanager.Notification{
		Receiver: "servicenow",
		Status:   alertmanager.StatusFiring,
		Alerts: []alertmanager.Alert{{
			Labels: labels.FromStrings(
				"alertname", "PerlmutterCabinetLeak",
				"severity", "critical",
				"Context", "x1203c1b0",
			),
			Annotations: map[string]string{"summary": "Leak at x1203c1b0"},
			StartsAt:    time.Now(),
		}},
	}
	if err := notifier.Notify(n); err != nil {
		t.Fatal(err)
	}
	alerts := sn.Alerts()
	if len(alerts) != 1 || alerts[0].Node != "x1203c1b0" || alerts[0].Severity != SeverityCritical {
		t.Fatalf("%+v", alerts)
	}
	incs := sn.Incidents()
	if len(incs) != 1 || incs[0].Description != "Leak at x1203c1b0" {
		t.Fatalf("%+v", incs)
	}
}

func TestEventFromAlertMapping(t *testing.T) {
	a := alertmanager.Alert{
		Labels:   labels.FromStrings("alertname", "X", "severity", "warning", "xname", "x1"),
		StartsAt: time.Unix(5, 0),
	}
	e := EventFromAlert(a)
	if e.Node != "x1" || e.Severity != SeverityWarning || e.Type != "X" {
		t.Fatalf("%+v", e)
	}
	// Resolved alert -> clear.
	a.EndsAt = time.Unix(10, 0)
	if EventFromAlert(a).Severity != SeverityClear {
		t.Fatal("resolved not clear")
	}
	// Fallback node labels.
	a2 := alertmanager.Alert{Labels: labels.FromStrings("alertname", "Y", "instance", "http://e/metrics")}
	if EventFromAlert(a2).Node != "http://e/metrics" {
		t.Fatalf("%+v", EventFromAlert(a2))
	}
}
