package obs

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"shastamon/internal/promtext"
)

func TestCounterGaugeGather(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("shastamon_test_total", "events seen")
	g := r.Gauge("shastamon_test_inflight", "in flight")
	r.GaugeFunc("shastamon_test_fn", "computed", func() float64 { return 7 })

	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters are monotonic
	g.Set(10)
	g.Dec()

	fams := r.Gather()
	if got := Value(fams, "shastamon_test_total"); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if got := Value(fams, "shastamon_test_inflight"); got != 9 {
		t.Fatalf("gauge = %v, want 9", got)
	}
	if got := Value(fams, "shastamon_test_fn"); got != 7 {
		t.Fatalf("gauge func = %v, want 7", got)
	}
	if fams[0].Type != "counter" || fams[1].Type != "gauge" {
		t.Fatalf("types = %s/%s", fams[0].Type, fams[1].Type)
	}
}

func TestVectors(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("shastamon_msgs_total", "messages", "topic", "partition")
	cv.With("events", "0").Add(4)
	cv.With("events", "1").Inc()
	cv.With("syslog", "0").Inc()

	fams := r.Gather()
	if got := Value(fams, "shastamon_msgs_total"); got != 6 {
		t.Fatalf("sum = %v, want 6", got)
	}
	if got := Value(fams, "shastamon_msgs_total", "topic", "events"); got != 5 {
		t.Fatalf("topic=events = %v, want 5", got)
	}
	if got := Value(fams, "shastamon_msgs_total", "topic", "events", "partition", "1"); got != 1 {
		t.Fatalf("events/1 = %v, want 1", got)
	}
	// Same child is returned for the same label values.
	if cv.With("events", "0") != cv.With("events", "0") {
		t.Fatal("vector children not memoised")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("shastamon_dur_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	fams := r.Gather()
	want := map[string]float64{"0.1": 2, "1": 3, "10": 4, "+Inf": 5}
	for le, n := range want {
		if got := Value(fams, "shastamon_dur_seconds_bucket", "le", le); got != n {
			t.Fatalf("bucket le=%s = %v, want %v", le, got, n)
		}
	}
	if got := Value(fams, "shastamon_dur_seconds_count"); got != 5 {
		t.Fatalf("count sample = %v", got)
	}
	if got := Value(fams, "shastamon_dur_seconds_sum"); got != 105.65 {
		t.Fatalf("sum sample = %v", got)
	}
}

func TestHistogramVecAndHandler(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("shastamon_q_seconds", "query latency", []float64{1}, "engine")
	hv.With("logql").Observe(0.5)
	hv.With("promql").Observe(2)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE shastamon_q_seconds histogram",
		`shastamon_q_seconds_bucket{engine="logql",le="1"} 1`,
		`shastamon_q_seconds_bucket{engine="promql",le="+Inf"} 1`,
		`shastamon_q_seconds_count{engine="promql"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, body)
		}
	}

	// The page must parse back with promtext.
	fams, err := promtext.Parse(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := Value(fams, "shastamon_q_seconds_sum", "engine", "promql"); got != 2 {
		t.Fatalf("reparsed sum = %v", got)
	}
}

func TestCollectCallback(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.Collect(func() []promtext.Family {
		n++
		return []promtext.Family{{Name: "shastamon_lazy", Type: "gauge",
			Metrics: []promtext.Metric{{Name: "shastamon_lazy", Value: n}}}}
	})
	if got := Value(r.Gather(), "shastamon_lazy"); got != 42 {
		t.Fatalf("collect = %v", got)
	}
	if got := Value(r.Gather(), "shastamon_lazy"); got != 43 {
		t.Fatalf("collect second gather = %v", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate metric name")
		}
	}()
	r := NewRegistry()
	r.Counter("shastamon_x", "")
	r.Counter("shastamon_x", "")
}

// TestConcurrentOps is the -race exercise: many goroutines hammering the
// same counters, gauges, histograms and vector children while another
// gathers.
func TestConcurrentOps(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("shastamon_c", "")
	g := r.Gauge("shastamon_g", "")
	h := r.Histogram("shastamon_h", "", nil)
	cv := r.CounterVec("shastamon_cv", "", "worker")

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / 1000)
				cv.With(id).Inc()
				if i%100 == 0 {
					r.Gather()
				}
			}
		}(w)
	}
	wg.Wait()
	fams := r.Gather()
	if got := Value(fams, "shastamon_c"); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	if got := Value(fams, "shastamon_cv"); got != 8000 {
		t.Fatalf("vec sum = %v, want 8000", got)
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestNilRegistryGather(t *testing.T) {
	var r *Registry
	if r.Gather() != nil {
		t.Fatal("nil registry must gather nothing")
	}
}
