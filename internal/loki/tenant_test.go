package loki

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shastamon/internal/labels"
	"shastamon/internal/tenant"
	"shastamon/internal/wal"
)

func pushAs(t *testing.T, s *Store, id string, ls labels.Labels, entries ...Entry) {
	t.Helper()
	if err := s.PushTenant(id, []PushStream{{Labels: ls, Entries: entries}}); err != nil {
		t.Fatal(err)
	}
}

func selectAs(t *testing.T, s *Store, id string, sel []*labels.Matcher) []SelectedStream {
	t.Helper()
	out, err := s.SelectContext(tenant.WithID(context.Background(), id), sel, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestTenantIsolation: two tenants pushing the same label sets into the
// same store get disjoint streams, and every read path (select, series,
// label values, stats) stays inside the caller's tenant.
func TestTenantIsolation(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("app", "fm", "cluster", "perlmutter")
	pushAs(t, s, "hpc-a", ls, Entry{1e9, "a line"})
	pushAs(t, s, "hpc-b", ls, Entry{1e9, "b line"})
	pushAs(t, s, tenant.DefaultID, ls, Entry{1e9, "default line"})

	if got := s.Stats().Streams; got != 3 {
		t.Fatalf("streams = %d, want 3 (one per tenant)", got)
	}
	for id, want := range map[string]string{"hpc-a": "a line", "hpc-b": "b line", tenant.DefaultID: "default line"} {
		got := selectAs(t, s, id, nil)
		if len(got) != 1 || len(got[0].Entries) != 1 || got[0].Entries[0].Line != want {
			t.Fatalf("tenant %s select = %+v, want one stream with %q", id, got, want)
		}
		if series := s.SeriesTenant(id, nil); len(series) != 1 || !series[0].Equal(ls) {
			t.Fatalf("tenant %s series = %v", id, series)
		}
		if vals := s.LabelValuesTenant(id, "app"); len(vals) != 1 || vals[0] != "fm" {
			t.Fatalf("tenant %s label values = %v", id, vals)
		}
	}
	// An unknown tenant sees an empty store.
	if got := selectAs(t, s, "nobody", nil); len(got) != 0 {
		t.Fatalf("unknown tenant sees %d streams", len(got))
	}

	stats := s.TenantStats()
	if len(stats) != 3 {
		t.Fatalf("tenant stats = %+v", stats)
	}
	for _, ts := range stats {
		if ts.Streams != 1 || ts.Entries != 1 {
			t.Fatalf("tenant %s stats = %+v", ts.Tenant, ts)
		}
	}
}

// TestTenantGoldenSingleTenant pins the golden-equality contract: with
// no org header and no overrides, every stream lands in the default
// tenant with the plain (unseeded) fingerprint — the same stripe, same
// iteration order, same bytes as the pre-tenant store.
func TestTenantGoldenSingleTenant(t *testing.T) {
	s := NewStore(DefaultLimits())
	for i := 0; i < 32; i++ {
		ls := labels.FromStrings("job", "syslog", "stream", fmt.Sprintf("s%02d", i))
		push(t, s, ls, Entry{1e9, "x"})
	}
	seen := 0
	for _, sh := range s.shards {
		for _, st := range sh.ordered {
			seen++
			if st.tenant != tenant.DefaultID {
				t.Fatalf("default push landed in tenant %q", st.tenant)
			}
			if st.fp != st.labels.Fingerprint() {
				t.Fatalf("default-tenant fingerprint %v != plain %v for %v", st.fp, st.labels.Fingerprint(), st.labels)
			}
			if got := s.shardFor(st.labels.Fingerprint()); got != sh {
				t.Fatalf("stream %v striped off its plain-fingerprint shard", st.labels)
			}
		}
	}
	if seen != 32 {
		t.Fatalf("streams = %d", seen)
	}
	// Context-free reads are the default tenant's reads.
	plain, err := s.Select(nil, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if def := selectAs(t, s, tenant.DefaultID, nil); len(plain) != len(def) {
		t.Fatalf("Select (%d streams) != default-tenant SelectContext (%d)", len(plain), len(def))
	}
}

// TestTenantMaxStreamsExact: the per-tenant stream quota is exact under
// concurrency — reserve-then-rollback, like the store-wide limit — and
// one tenant exhausting its quota leaves another tenant's intact.
func TestTenantMaxStreamsExact(t *testing.T) {
	const quota = 16
	lim := DefaultLimits()
	lim.TenantOverrides = &tenant.Overrides{Defaults: tenant.Limits{MaxStreams: quota}}
	s := NewStore(lim)

	var wg sync.WaitGroup
	var rejected int
	var mu sync.Mutex
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < quota; i++ {
				err := s.PushTenant("flood", []PushStream{{
					Labels:  labels.FromStrings("g", fmt.Sprintf("%d", g), "i", fmt.Sprintf("%d", i)),
					Entries: []Entry{{1e9, "x"}},
				}})
				if err != nil {
					if !errors.Is(err, ErrMaxStreams) {
						t.Errorf("unexpected error: %v", err)
					}
					mu.Lock()
					rejected++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := len(selectAs(t, s, "flood", nil)); got != quota {
		t.Fatalf("flood streams = %d, want exactly %d", got, quota)
	}
	if rejected != 8*quota-quota {
		t.Fatalf("rejected = %d, want %d", rejected, 8*quota-quota)
	}
	// The quiet tenant still gets its full quota.
	for i := 0; i < quota; i++ {
		pushAs(t, s, "quiet", labels.FromStrings("i", fmt.Sprintf("%d", i)), Entry{1e9, "x"})
	}
	if err := s.PushTenant("quiet", []PushStream{{
		Labels: labels.FromStrings("i", "over"), Entries: []Entry{{1e9, "x"}},
	}}); !errors.Is(err, ErrMaxStreams) {
		t.Fatalf("quiet tenant over quota: %v", err)
	}
}

// TestTenantRateLimit: the token bucket admits whole batches against an
// injected clock, rejected bytes are accounted, and other tenants are
// untouched.
func TestTenantRateLimit(t *testing.T) {
	lim := DefaultLimits()
	lim.TenantOverrides = &tenant.Overrides{PerTenant: map[string]tenant.Limits{
		"capped": {IngestRateBytes: 100},
	}}
	s := NewStore(lim)
	now := int64(1e9)
	s.nowNS = func() int64 { return now }

	ls := labels.FromStrings("app", "x")
	line80 := make([]byte, 80)
	if err := s.PushTenant("capped", []PushStream{{Labels: ls, Entries: []Entry{{1e9, string(line80)}}}}); err != nil {
		t.Fatalf("batch within burst: %v", err)
	}
	err := s.PushTenant("capped", []PushStream{{Labels: ls, Entries: []Entry{{2e9, string(line80)}}}})
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate batch: %v", err)
	}
	// Uncapped tenants never touch the limiter.
	if err := s.PushTenant(tenant.DefaultID, []PushStream{{Labels: ls, Entries: []Entry{{2e9, string(line80)}}}}); err != nil {
		t.Fatalf("default tenant push: %v", err)
	}
	// One second refills the bucket.
	now += 1e9
	if err := s.PushTenant("capped", []PushStream{{Labels: ls, Entries: []Entry{{3e9, string(line80)}}}}); err != nil {
		t.Fatalf("post-refill batch: %v", err)
	}
	for _, ts := range s.TenantStats() {
		if ts.Tenant == "capped" {
			if ts.RateLimitedBytes != 80 {
				t.Fatalf("rate-limited bytes = %d, want 80", ts.RateLimitedBytes)
			}
			if ts.Entries != 2 {
				t.Fatalf("capped entries = %d, want 2", ts.Entries)
			}
		}
	}
}

func TestReservedTenantLabelRejected(t *testing.T) {
	s := NewStore(DefaultLimits())
	err := s.Push([]PushStream{{
		Labels:  labels.FromStrings(tenant.ReservedLabel, "spoof", "app", "x"),
		Entries: []Entry{{1e9, "x"}},
	}})
	if !errors.Is(err, ErrReservedLabel) {
		t.Fatalf("reserved label push: %v", err)
	}
	if got := s.Stats().Streams; got != 0 {
		t.Fatalf("reserved-label stream created: %d", got)
	}
}

// TestDurableTenantRoundTrip: tenants survive the WAL (crash replay) and
// checkpoint restore; old default-tenant records keep working because
// the tenant rides a reserved label that is absent for the default.
func TestDurableTenantRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ls := labels.FromStrings("app", "fm")

	s1 := NewStore(durableLimits())
	if _, err := s1.EnableDurability(dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}); err != nil {
		t.Fatal(err)
	}
	pushAs(t, s1, "hpc-a", ls, Entry{1e9, "a pre-ckpt"})
	pushAs(t, s1, tenant.DefaultID, ls, Entry{1e9, "default pre-ckpt"})
	if err := s1.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pushAs(t, s1, "hpc-a", ls, Entry{2e9, "a post-ckpt"})
	pushAs(t, s1, "hpc-b", ls, Entry{2e9, "b post-ckpt"})
	// Crash: no Shutdown.

	s2 := NewStore(durableLimits())
	info, err := s2.EnableDurability(dir, wal.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Checkpoint || info.Replayed == 0 {
		t.Fatalf("recovery: %+v", info)
	}
	wantLines := map[string][]string{
		"hpc-a":          {"a pre-ckpt", "a post-ckpt"},
		"hpc-b":          {"b post-ckpt"},
		tenant.DefaultID: {"default pre-ckpt"},
	}
	for id, want := range wantLines {
		got := selectAs(t, s2, id, nil)
		if len(got) != 1 || len(got[0].Entries) != len(want) {
			t.Fatalf("tenant %s recovered %+v, want %v", id, got, want)
		}
		for i, e := range got[0].Entries {
			if e.Line != want[i] {
				t.Fatalf("tenant %s line %d = %q, want %q", id, i, e.Line, want[i])
			}
		}
	}
	// Recovered streams keep their tenant-namespaced fingerprints.
	for _, sh := range s2.shards {
		for _, st := range sh.ordered {
			if want := tenant.Fingerprint(st.tenant, st.labels); st.fp != want {
				t.Fatalf("recovered stream tenant %q fp %v, want %v", st.tenant, st.fp, want)
			}
		}
	}
}

// TestTenantConcurrentPushRace hammers the same label sets from two
// tenants concurrently; -race plus the cross-checks catch striping or
// accounting contamination.
func TestTenantConcurrentPushRace(t *testing.T) {
	s := NewStore(DefaultLimits())
	const perTenant = 200
	var wg sync.WaitGroup
	for _, id := range []string{"hpc-a", "hpc-b"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < perTenant; i++ {
				// Identical label sets across tenants, multiple streams each.
				ls := labels.FromStrings("app", "x", "s", fmt.Sprintf("%d", i%4))
				if err := s.PushTenant(id, []PushStream{{Labels: ls,
					Entries: []Entry{{int64(i+1) * 1e6, id + " line"}}}}); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	for _, id := range []string{"hpc-a", "hpc-b"} {
		got := selectAs(t, s, id, nil)
		if len(got) != 4 {
			t.Fatalf("tenant %s streams = %d, want 4", id, len(got))
		}
		total := 0
		for _, st := range got {
			total += len(st.Entries)
			for _, e := range st.Entries {
				if e.Line != id+" line" {
					t.Fatalf("tenant %s sees foreign line %q", id, e.Line)
				}
			}
		}
		if total != perTenant {
			t.Fatalf("tenant %s entries = %d, want %d", id, total, perTenant)
		}
	}
}
