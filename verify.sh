#!/bin/sh
# Repo verification gate: vet, the race-enabled test suite, and a chaos
# soak — the fault-injection tests repeated and shuffled to shake out
# order dependence in the recovery paths.
# Run before sending a change; CI runs the same commands.
set -eux

cd "$(dirname "$0")"

# Formatting is a gate, not a suggestion: gofmt -l prints offending
# files, so an empty result is the pass condition.
test -z "$(gofmt -l .)"

go vet ./...
go test -race ./...
go test -race -run Chaos -count=2 -shuffle=on ./internal/core/...

# Meta-alert smoke: break ServiceNow via chaos injection and prove the
# pipeline's own breaker-stuck-open / SLO-burn alerts reach the fake
# Slack sink through the normal Alertmanager path.
go test -race -run 'TestMetaAlert' -count=1 ./internal/core/

# Crash-recovery soak: the kill/replay e2e (SIGKILL-image snapshot,
# torn WAL tails, seeded chaos disk faults with the WAL-degraded
# meta-alert) repeated three times and shuffled, under the race
# detector — the durability paths must be order-independent.
go test -race -run 'TestCrashRecovery|TestWALDegraded' -count=3 -shuffle=on ./internal/omni/ ./internal/core/

# Tenant isolation suite: concurrent two-tenant pushes into shared lock
# stripes, exact quota/rate accounting, tenant-keyed frontend queues and
# cache, and the single-tenant golden-equality pins — all under the race
# detector. (The noisy-neighbor e2e also rides the Chaos soak above.)
go test -race -run 'TestTenant|TestDurableTenant|TestRateLimiter' -count=1 \
  ./internal/tenant/ ./internal/loki/ ./internal/tsdb/ ./internal/frontend/

# Frontend golden-equality + concurrent-refresh soak: split/cached range
# results must be bit-identical to the monolithic evaluation, including
# under concurrent refresh with an eviction-squeezed cache, with the race
# detector watching the cache and admission paths.
go test -race -run 'TestFrontendGolden|TestFrontendConcurrentRefreshSoak' -count=1 \
  ./internal/frontend/ ./internal/logql/ ./internal/promql/

# Anomaly determinism soak: the streaming detectors and the Drain miner
# are driven purely by sample timestamps, so repeated shuffled runs under
# the race detector must reproduce identical verdicts — and the
# early-warning experiment must reproduce an identical alert timeline
# (TestEarlyWarnDeterministic runs the full predictive-vs-reactive race
# twice and compares reports byte-for-byte).
go test -race -count=3 -shuffle=on ./internal/anomaly/
go test -race -run 'TestEarlyWarn' -count=1 ./internal/experiments/

# Dashboard drift check: the checked-in Grafana export must match what
# the generator produces today, so panel changes can't land without
# regenerating singlepane-dashboard.json.
DASHTMP=$(mktemp -d)
go build -o "$DASHTMP/singlepane" ./examples/singlepane
(cd "$DASHTMP" && ./singlepane > /dev/null)
diff "$DASHTMP/singlepane-dashboard.json" singlepane-dashboard.json
rm -rf "$DASHTMP"

# Metrics-docs lint: every shastamon_* family a live pipeline registers
# (and every built-in meta-rule) must have a row in the README tables.
go test -run 'TestMetricsDocumented' -count=1 ./internal/core/

# Smoke-run the tracked benchmark families (C1/C2/C5/E4/E7) and refresh
# BENCH_ingest.json; full numbers come from `./bench.sh` without args.
./bench.sh short
