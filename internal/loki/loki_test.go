package loki

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
)

func push(t *testing.T, s *Store, ls labels.Labels, entries ...Entry) {
	t.Helper()
	if err := s.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
		t.Fatal(err)
	}
}

func TestPushAndSelect(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("cluster", "perlmutter", "data_type", "redfish_event")
	push(t, s, ls, Entry{1e9, "event one"}, Entry{2e9, "event two"})

	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, "data_type", "redfish_event")}
	got, err := s.Select(sel, 0, 3e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Entries) != 2 {
		t.Fatalf("got %+v", got)
	}
	if !got[0].Labels.Equal(ls) {
		t.Fatalf("labels %v", got[0].Labels)
	}
}

func TestSelectTimeRange(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("app", "x")
	for i := 0; i < 10; i++ {
		push(t, s, ls, Entry{int64(i) * 1e9, fmt.Sprintf("l%d", i)})
	}
	got, err := s.Select(nil, 3e9, 5e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Entries) != 3 {
		t.Fatalf("got %+v", got)
	}
	if got[0].Entries[0].Line != "l3" || got[0].Entries[2].Line != "l5" {
		t.Fatalf("wrong slice: %+v", got[0].Entries)
	}
}

func TestStreamsSeparatedByLabels(t *testing.T) {
	s := NewStore(DefaultLimits())
	push(t, s, labels.FromStrings("ctx", "x1000c0"), Entry{1, "a"})
	push(t, s, labels.FromStrings("ctx", "x1001c0"), Entry{1, "b"})
	if got := s.Stats().Streams; got != 2 {
		t.Fatalf("streams = %d", got)
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, "ctx", "x1001c0")}
	got, _ := s.Select(sel, 0, 10)
	if len(got) != 1 || got[0].Entries[0].Line != "b" {
		t.Fatalf("got %+v", got)
	}
}

func TestRegexSelect(t *testing.T) {
	s := NewStore(DefaultLimits())
	for i := 0; i < 5; i++ {
		push(t, s, labels.FromStrings("xname", fmt.Sprintf("x100%dc0r7b0", i)), Entry{1, "sw"})
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchRegexp, "xname", "x100[0-2].*")}
	got, _ := s.Select(sel, 0, 10)
	if len(got) != 3 {
		t.Fatalf("regex select got %d streams", len(got))
	}
}

func TestOutOfOrderDroppedAcrossPushes(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("a", "b")
	push(t, s, ls, Entry{100, "x"})
	err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{50, "old"}, {200, "new"}}}})
	if !errors.Is(err, chunkenc.ErrOutOfOrder) {
		t.Fatalf("want out-of-order error, got %v", err)
	}
	got, _ := s.Select(nil, 0, 1000)
	if len(got[0].Entries) != 2 { // 100 and 200; 50 dropped
		t.Fatalf("entries %+v", got[0].Entries)
	}
	if s.Stats().DiscardedOOO != 1 {
		t.Fatalf("ooo counter = %d", s.Stats().DiscardedOOO)
	}
}

func TestValidationErrors(t *testing.T) {
	s := NewStore(Limits{MaxLabelNamesPerStream: 2, MaxLineSize: 8})
	err := s.Push([]PushStream{{Labels: nil, Entries: []Entry{{1, "x"}}}})
	if !errors.Is(err, ErrEmptyLabels) {
		t.Fatalf("want ErrEmptyLabels got %v", err)
	}
	err = s.Push([]PushStream{{Labels: labels.FromStrings("a", "1", "b", "2", "c", "3"), Entries: []Entry{{1, "x"}}}})
	if !errors.Is(err, ErrTooManyLabels) {
		t.Fatalf("want ErrTooManyLabels got %v", err)
	}
	err = s.Push([]PushStream{{Labels: labels.FromStrings("a", "1"), Entries: []Entry{{1, strings.Repeat("z", 9)}}}})
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("want ErrLineTooLong got %v", err)
	}
	if s.Stats().DiscardedTooLong != 1 {
		t.Fatal("too-long counter not bumped")
	}
}

func TestMaxStreams(t *testing.T) {
	s := NewStore(Limits{MaxStreams: 2, MaxLabelNamesPerStream: 5, MaxLineSize: 1024})
	push(t, s, labels.FromStrings("i", "1"), Entry{1, "a"})
	push(t, s, labels.FromStrings("i", "2"), Entry{1, "a"})
	err := s.Push([]PushStream{{Labels: labels.FromStrings("i", "3"), Entries: []Entry{{1, "a"}}}})
	if !errors.Is(err, ErrMaxStreams) {
		t.Fatalf("want ErrMaxStreams got %v", err)
	}
}

func TestChunkCutOnFull(t *testing.T) {
	lim := DefaultLimits()
	lim.ChunkOptions = chunkenc.Options{MaxEntries: 10}
	s := NewStore(lim)
	ls := labels.FromStrings("a", "b")
	for i := 0; i < 35; i++ {
		push(t, s, ls, Entry{int64(i), "line"})
	}
	st := s.Stats()
	if st.Chunks != 4 { // 3 sealed of 10 + head of 5
		t.Fatalf("chunks = %d", st.Chunks)
	}
	got, _ := s.Select(nil, 0, 100)
	if len(got[0].Entries) != 35 {
		t.Fatalf("entries = %d", len(got[0].Entries))
	}
}

func TestSeriesAndLabelValues(t *testing.T) {
	s := NewStore(DefaultLimits())
	push(t, s, labels.FromStrings("app", "fm", "cluster", "perlmutter"), Entry{1, "x"})
	push(t, s, labels.FromStrings("app", "syslog", "cluster", "perlmutter"), Entry{1, "x"})
	series := s.Series(nil)
	if len(series) != 2 {
		t.Fatalf("series %v", series)
	}
	vals := s.LabelValues("app")
	if len(vals) != 2 || vals[0] != "fm" || vals[1] != "syslog" {
		t.Fatalf("label values %v", vals)
	}
	if len(s.LabelValues("nope")) != 0 {
		t.Fatal("unexpected values for missing label")
	}
}

func TestDeleteBefore(t *testing.T) {
	lim := DefaultLimits()
	lim.ChunkOptions = chunkenc.Options{MaxEntries: 5}
	s := NewStore(lim)
	ls := labels.FromStrings("a", "b")
	for i := 0; i < 20; i++ {
		push(t, s, ls, Entry{int64(i), "line"})
	}
	dropped := s.DeleteBefore(10)
	if dropped != 2 { // chunks 0-4 and 5-9
		t.Fatalf("dropped = %d", dropped)
	}
	got, _ := s.Select(nil, 0, 100)
	if got[0].Entries[0].Timestamp != 10 {
		t.Fatalf("oldest = %d", got[0].Entries[0].Timestamp)
	}
}

func TestDeleteBeforeRemovesEmptyStreams(t *testing.T) {
	lim := DefaultLimits()
	lim.ChunkOptions = chunkenc.Options{MaxEntries: 2}
	s := NewStore(lim)
	old := labels.FromStrings("age", "old")
	// Fill two full chunks then stop; head stays empty after the last cut?
	// MaxEntries=2: entries 0,1 fill chunk; entry 2 seals and starts head.
	push(t, s, old, Entry{0, "a"}, Entry{1, "b"})
	push(t, s, labels.FromStrings("age", "new"), Entry{100, "n"})
	// Force the head of "old" to seal by pushing until full then deleting.
	push(t, s, old, Entry{2, "c"}, Entry{3, "d"})
	// old now: 2 sealed chunks (0,1)(2,3) head empty
	s.DeleteBefore(50)
	series := s.Series(nil)
	if len(series) != 1 || series[0].Get("age") != "new" {
		t.Fatalf("series after retention: %v", series)
	}
}

func TestConcurrentPushDistinctStreams(t *testing.T) {
	s := NewStore(DefaultLimits())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ls := labels.FromStrings("worker", fmt.Sprintf("w%d", g))
			for i := 0; i < 500; i++ {
				_ = s.Push([]PushStream{{Labels: ls, Entries: []Entry{{int64(i), "line"}}}})
			}
		}(g)
	}
	wg.Wait()
	st := s.Stats()
	if st.Streams != 8 || st.Entries != 4000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestConcurrentPushSameStream(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("shared", "yes")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				// Same timestamp everywhere so ordering can't fail.
				_ = s.Push([]PushStream{{Labels: ls, Entries: []Entry{{42, "line"}}}})
			}
		}()
	}
	wg.Wait()
	if got := s.Stats().Entries; got != 1000 {
		t.Fatalf("entries = %d", got)
	}
}

// Property: what you push (in order, within range) is what you select.
func TestPropertyPushSelectRoundTrip(t *testing.T) {
	f := func(linesRaw []string) bool {
		s := NewStore(DefaultLimits())
		ls := labels.FromStrings("p", "q")
		lines := make([]string, 0, len(linesRaw))
		for _, l := range linesRaw {
			if len(l) < 256*1024 {
				lines = append(lines, l)
			}
		}
		entries := make([]Entry, len(lines))
		for i, l := range lines {
			entries[i] = Entry{Timestamp: int64(i), Line: l}
		}
		if err := s.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
			return false
		}
		got, err := s.Select(nil, 0, 1<<62)
		if err != nil {
			return false
		}
		if len(lines) == 0 {
			return len(got) == 0
		}
		if len(got) != 1 || len(got[0].Entries) != len(lines) {
			return false
		}
		for i := range lines {
			if got[0].Entries[i].Line != lines[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats counters equal pushed totals.
func TestPropertyStatsMatch(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore(DefaultLimits())
		ls := labels.FromStrings("s", "t")
		var wantBytes int64
		for i := 0; i < int(n); i++ {
			line := strings.Repeat("x", i%17)
			wantBytes += int64(len(line))
			if err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{int64(i), line}}}}); err != nil {
				return false
			}
		}
		st := s.Stats()
		return st.Entries == int64(n) && st.RawBytes == wantBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushSingleStream(b *testing.B) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("cluster", "perlmutter", "data_type", "syslog")
	line := "Mar  3 01:47:57 nid001234 kernel: [12345.678] eth0: link up 100Gbps"
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.Push([]PushStream{{Labels: ls, Entries: []Entry{{int64(i), line}}}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPushBatch100(b *testing.B) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("cluster", "perlmutter", "data_type", "syslog")
	line := "Mar  3 01:47:57 nid001234 kernel: [12345.678] eth0: link up 100Gbps"
	entries := make([]Entry, 100)
	b.SetBytes(int64(len(line) * 100))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range entries {
			entries[j] = Entry{int64(i*100 + j), line}
		}
		if err := s.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelect(b *testing.B) {
	s := NewStore(DefaultLimits())
	for st := 0; st < 10; st++ {
		ls := labels.FromStrings("node", fmt.Sprintf("nid%03d", st))
		entries := make([]Entry, 1000)
		for i := range entries {
			entries[i] = Entry{int64(i), "a moderately sized syslog line for benchmarking"}
		}
		_ = s.Push([]PushStream{{Labels: ls, Entries: entries}})
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, "node", "nid005")}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		got, err := s.Select(sel, 0, 1<<62)
		if err != nil || len(got) != 1 {
			b.Fatal(err)
		}
	}
}

func TestFlushSealsHeads(t *testing.T) {
	s := NewStore(DefaultLimits())
	ls := labels.FromStrings("a", "b")
	line := strings.Repeat("repetitive content ", 20)
	for i := 0; i < 200; i++ {
		push(t, s, ls, Entry{int64(i), line})
	}
	before := s.Stats()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.CompressedBytes >= before.CompressedBytes {
		t.Fatalf("flush did not compress: %d -> %d", before.CompressedBytes, after.CompressedBytes)
	}
	if after.CompressedBytes >= after.RawBytes {
		t.Fatalf("compressed %d >= raw %d", after.CompressedBytes, after.RawBytes)
	}
	// Appends continue working after a flush.
	push(t, s, ls, Entry{1000, "more"})
	got, _ := s.Select(nil, 0, 2000)
	if len(got[0].Entries) != 201 {
		t.Fatalf("entries after flush: %d", len(got[0].Entries))
	}
}
