package frontend

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// TestTenantQueueIsolation: a tenant pinned to one execution slot sheds
// its own second query while another tenant (and the default) admit
// freely on the same engine.
func TestTenantQueueIsolation(t *testing.T) {
	f := New(Config{
		MaxConcurrent: 8, MaxQueueDepth: -1,
		TenantOverrides: &tenant.Overrides{PerTenant: map[string]tenant.Limits{
			"flood": {MaxQueryConcurrency: 1},
		}},
	})
	block := make(chan struct{})
	started := make(chan struct{})
	slow := Request{Engine: "logql", Query: "slow", Start: 0, End: 0, Step: 1,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			close(started)
			<-block
			return Matrix{}, nil
		},
	}
	floodCtx := tenant.WithID(context.Background(), "flood")
	done := make(chan error, 1)
	go func() {
		_, err := f.QueryRange(floodCtx, slow)
		done <- err
	}()
	<-started

	fast := Request{Engine: "logql", Query: "fast", Start: 0, End: 0, Step: 1,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			return Matrix{}, nil
		},
	}
	if _, err := f.QueryRange(floodCtx, fast); !errors.Is(err, stats.ErrQueueFull) {
		t.Fatalf("flood tenant second query: %v, want ErrQueueFull", err)
	}
	// The quiet tenant and the default tenant still admit on the same
	// engine while flood's only slot is occupied.
	if _, err := f.QueryRange(tenant.WithID(context.Background(), "quiet"), fast); err != nil {
		t.Fatalf("quiet tenant rejected: %v", err)
	}
	if _, err := f.QueryRange(context.Background(), fast); err != nil {
		t.Fatalf("default tenant rejected: %v", err)
	}

	rej := f.RejectedByTenant()
	if len(rej) != 1 || rej[0].Tenant != "flood" || rej[0].Rejected != 1 {
		t.Fatalf("RejectedByTenant = %+v", rej)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestTenantCacheKeyIsolation: the results cache is keyed by tenant, so
// one tenant's cached splits never answer another's identical query.
func TestTenantCacheKeyIsolation(t *testing.T) {
	now := time.Unix(10_000, 0)
	f := New(Config{SplitInterval: -1, Now: func() time.Time { return now }})
	var calls atomic.Int64
	req := Request{Engine: "logql", Query: "q", Start: 0, End: 90, Step: 10,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			calls.Add(1)
			return Matrix{{Labels: labels.FromStrings("app", "x"),
				Points: []Point{{T: start, V: 1}}}}, nil
		},
	}
	ctxA := tenant.WithID(context.Background(), "hpc-a")
	ctxB := tenant.WithID(context.Background(), "hpc-b")

	if _, err := f.QueryRange(ctxA, req); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("first query evals = %d", calls.Load())
	}
	// Same query, same window, different tenant: must evaluate again.
	if _, err := f.QueryRange(ctxB, req); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("cross-tenant query reused cache: evals = %d, want 2", calls.Load())
	}
	// Same tenant again: pure cache hit.
	if _, err := f.QueryRange(ctxA, req); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("same-tenant repeat re-evaluated: evals = %d", calls.Load())
	}
}
