package kafka

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func newTopic(t *testing.T, b *Broker, name string, parts int) {
	t.Helper()
	if err := b.CreateTopic(name, parts); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTopicValidation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	newTopic(t, b, "t", 1)
	if err := b.CreateTopic("t", 1); !errors.Is(err, ErrTopicExists) {
		t.Fatalf("err = %v", err)
	}
	if got := b.Topics(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("%v", got)
	}
}

func TestProduceFetchOrdered(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "telemetry", 1)
	for i := 0; i < 10; i++ {
		_, off, err := b.Produce("telemetry", nil, []byte(fmt.Sprintf("m%d", i)), time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if off != int64(i) {
			t.Fatalf("offset %d != %d", off, i)
		}
	}
	msgs, err := b.Fetch("telemetry", 0, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 4 || string(msgs[0].Value) != "m3" || string(msgs[3].Value) != "m6" {
		t.Fatalf("%+v", msgs)
	}
}

func TestKeyedPartitioningIsSticky(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 8)
	p1, _, _ := b.Produce("t", []byte("x1000c0"), []byte("a"), time.Time{})
	p2, _, _ := b.Produce("t", []byte("x1000c0"), []byte("b"), time.Time{})
	if p1 != p2 {
		t.Fatalf("same key landed on %d and %d", p1, p2)
	}
}

func TestFetchErrors(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	if _, err := b.Fetch("nope", 0, 0, 1); !errors.Is(err, ErrUnknownTopic) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Fetch("t", 5, 0, 1); !errors.Is(err, ErrUnknownPartition) {
		t.Fatalf("err = %v", err)
	}
	if _, err := b.Fetch("t", 0, 99, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	// Fetch at head returns empty, not error.
	msgs, err := b.Fetch("t", 0, 0, 1)
	if err != nil || msgs != nil {
		t.Fatalf("%v %v", msgs, err)
	}
}

func TestFetchWaitWakesOnProduce(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := b.FetchWait("t", 0, 0, 10, 2*time.Second)
		done <- msgs
	}()
	time.Sleep(10 * time.Millisecond)
	_, _, _ = b.Produce("t", nil, []byte("wake"), time.Time{})
	select {
	case msgs := <-done:
		if len(msgs) != 1 || string(msgs[0].Value) != "wake" {
			t.Fatalf("%+v", msgs)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("FetchWait did not wake")
	}
}

func TestFetchWaitTimeout(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	start := time.Now()
	msgs, err := b.FetchWait("t", 0, 0, 10, 20*time.Millisecond)
	if err != nil || len(msgs) != 0 {
		t.Fatalf("%v %v", msgs, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("returned before timeout")
	}
}

func TestRetentionTruncate(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		_, _, _ = b.Produce("t", nil, []byte{byte(i)}, base.Add(time.Duration(i)*time.Hour))
	}
	dropped := b.TruncateBefore(base.Add(5 * time.Hour))
	if dropped != 5 {
		t.Fatalf("dropped = %d", dropped)
	}
	low, high, _ := b.Watermarks("t", 0)
	if low != 5 || high != 10 {
		t.Fatalf("watermarks %d %d", low, high)
	}
	if _, err := b.Fetch("t", 0, 0, 1); !errors.Is(err, ErrOffsetOutOfRange) {
		t.Fatalf("err = %v", err)
	}
	msgs, err := b.Fetch("t", 0, 5, 100)
	if err != nil || len(msgs) != 5 {
		t.Fatalf("%v %v", msgs, err)
	}
}

func TestGroupAssignmentRebalance(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 4)
	b.JoinGroup("g", "m1")
	parts, err := b.Assignment("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 4 {
		t.Fatalf("solo member should own all: %v", parts)
	}
	b.JoinGroup("g", "m2")
	p1, _ := b.Assignment("g", "m1", "t")
	p2, _ := b.Assignment("g", "m2", "t")
	if len(p1)+len(p2) != 4 || len(p1) != 2 {
		t.Fatalf("rebalance: %v %v", p1, p2)
	}
	seen := map[int]bool{}
	for _, p := range append(p1, p2...) {
		if seen[p] {
			t.Fatalf("partition %d double-assigned", p)
		}
		seen[p] = true
	}
	b.LeaveGroup("g", "m1")
	p2, _ = b.Assignment("g", "m2", "t")
	if len(p2) != 4 {
		t.Fatalf("after leave: %v", p2)
	}
}

func TestCommittedOffsets(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	if got := b.Committed("g", "t", 0); got != 0 {
		t.Fatalf("initial commit %d", got)
	}
	b.Commit("g", "t", 0, 42)
	if got := b.Committed("g", "t", 0); got != 42 {
		t.Fatalf("commit %d", got)
	}
}

func TestConsumerPollCommits(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "events", 2)
	for i := 0; i < 10; i++ {
		_, _, _ = b.Produce("events", []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)), time.Time{})
	}
	c := NewConsumer(b, "g", "m1", "events")
	defer c.Close()
	var got []Message
	for len(got) < 10 {
		msgs, err := c.Poll(4, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		got = append(got, msgs...)
	}
	if len(got) != 10 {
		t.Fatalf("polled %d messages", len(got))
	}
	// Re-poll returns nothing: offsets were committed.
	msgs, _ := c.Poll(10, 0)
	if len(msgs) != 0 {
		t.Fatalf("uncommitted redelivery: %+v", msgs)
	}
}

func TestConsumerSkipsRetentionGap(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		_, _, _ = b.Produce("t", nil, []byte{byte(i)}, base.Add(time.Duration(i)*time.Hour))
	}
	c := NewConsumer(b, "g", "m", "t")
	defer c.Close()
	b.TruncateBefore(base.Add(3 * time.Hour))
	msgs, err := c.Poll(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Offset != 3 {
		t.Fatalf("%+v", msgs)
	}
}

func TestConsumerClosedPoll(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 1)
	c := NewConsumer(b, "g", "m", "t")
	c.Close()
	c.Close() // idempotent
	msgs, err := c.Poll(1, 0)
	if err != nil || msgs != nil {
		t.Fatalf("%v %v", msgs, err)
	}
}

func TestConcurrentProducers(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				_, _, _ = b.Produce("t", []byte{byte(g)}, []byte("m"), time.Time{})
			}
		}(g)
	}
	wg.Wait()
	if got := b.Stats().Messages; got != 4000 {
		t.Fatalf("messages = %d", got)
	}
	total := int64(0)
	for p := 0; p < 4; p++ {
		_, high, _ := b.Watermarks("t", p)
		total += high
	}
	if total != 4000 {
		t.Fatalf("sum of watermarks = %d", total)
	}
}

// Property: per-partition offsets are dense and ordered regardless of how
// producers interleave.
func TestPropertyOffsetsDense(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		p := int(parts)%4 + 1
		b := NewBroker()
		if err := b.CreateTopic("t", p); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if _, _, err := b.Produce("t", []byte{byte(i % 7)}, []byte("v"), time.Time{}); err != nil {
				return false
			}
		}
		total := int64(0)
		for pi := 0; pi < p; pi++ {
			low, high, err := b.Watermarks("t", pi)
			if err != nil || low != 0 {
				return false
			}
			msgs, err := b.Fetch("t", pi, 0, int(n)+1)
			if err != nil || int64(len(msgs)) != high {
				return false
			}
			for i, m := range msgs {
				if m.Offset != int64(i) {
					return false
				}
			}
			total += high
		}
		return total == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProduce(b *testing.B) {
	br := NewBroker()
	_ = br.CreateTopic("t", 8)
	val := []byte(`{"Context":"x1203c1b0","Severity":"Warning"}`)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	ts := time.Unix(0, 0)
	for i := 0; i < b.N; i++ {
		if _, _, err := br.Produce("t", []byte("key"), val, ts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProduceFetchPipeline(b *testing.B) {
	br := NewBroker()
	_ = br.CreateTopic("t", 1)
	val := []byte("telemetry sample payload with some realistic length to it")
	ts := time.Unix(0, 0)
	b.SetBytes(int64(len(val)))
	b.ReportAllocs()
	off := int64(0)
	for i := 0; i < b.N; i++ {
		_, _, _ = br.Produce("t", nil, val, ts)
		msgs, err := br.Fetch("t", 0, off, 100)
		if err != nil {
			b.Fatal(err)
		}
		off += int64(len(msgs))
	}
}

func TestGroupLag(t *testing.T) {
	b := NewBroker()
	newTopic(t, b, "t", 2)
	for i := 0; i < 10; i++ {
		_, _, _ = b.Produce("t", []byte{byte(i)}, []byte("v"), time.Time{})
	}
	c := NewConsumer(b, "g", "m", "t")
	defer c.Close()
	// Consume some, leaving lag.
	msgs, err := c.Poll(6, 0)
	if err != nil || len(msgs) != 6 {
		t.Fatalf("%d %v", len(msgs), err)
	}
	lag := b.GroupLag("g")
	total := int64(0)
	for _, l := range lag {
		total += l
	}
	if total != 4 {
		t.Fatalf("lag %v", lag)
	}
	if got := b.Groups(); len(got) != 1 || got[0] != "g" {
		t.Fatalf("groups %v", got)
	}
	if b.GroupLag("ghost") != nil {
		t.Fatal("lag for unknown group")
	}
	// Drain fully: lag reaches zero.
	for {
		msgs, _ := c.Poll(10, 0)
		if len(msgs) == 0 {
			break
		}
	}
	for _, l := range b.GroupLag("g") {
		if l != 0 {
			t.Fatalf("residual lag %v", b.GroupLag("g"))
		}
	}
}
