package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

var spanBase = time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)

func TestTimedSpans(t *testing.T) {
	tr := NewTracer(4)
	id := tr.Start("x1000c0b0", spanBase, "leak")
	tr.Span(id, "kafka.produce", spanBase, spanBase.Add(3*time.Millisecond), "events/0@0")
	tr.Stage(id, "core.forward", spanBase.Add(time.Second), "presence-only")

	got, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace lost")
	}
	if d := got.Stages[1].Duration(); d != 3*time.Millisecond {
		t.Fatalf("span duration = %s, want 3ms", d)
	}
	if d := got.Stages[2].Duration(); d != 0 {
		t.Fatalf("presence stage duration = %s, want 0", d)
	}
	if origin, ok := tr.Origin(id); !ok || !origin.Equal(spanBase) {
		t.Fatalf("Origin = %v %v", origin, ok)
	}
	if tid := tr.SpanByKey("x1000c0b0", "ruler.fire", spanBase, spanBase.Add(time.Millisecond), "r"); tid != id {
		t.Fatalf("SpanByKey id = %q, want %q", tid, id)
	}
	if tid := tr.SpanByKey("unknown", "s", spanBase, spanBase, ""); tid != "" {
		t.Fatalf("SpanByKey unknown key id = %q, want empty", tid)
	}
}

func TestAnnotateOnceParent(t *testing.T) {
	tr := NewTracer(4)
	id := tr.Start("k", spanBase, "")
	tr.Annotate(id, "detection_latency_seconds", "62")
	tr.SetParent(id, "parent-1")
	if !tr.Once(id, "latency.rule") {
		t.Fatal("first Once must win")
	}
	if tr.Once(id, "latency.rule") {
		t.Fatal("second Once must lose")
	}
	if !tr.Once(id, "latency.other") {
		t.Fatal("distinct key must win")
	}
	got, _ := tr.Get(id)
	if got.Attrs["detection_latency_seconds"] != "62" || got.Parent != "parent-1" {
		t.Fatalf("trace = %+v", got)
	}
	// The copy from Get is detached from the tracer's map.
	got.Attrs["detection_latency_seconds"] = "mutated"
	again, _ := tr.Get(id)
	if again.Attrs["detection_latency_seconds"] != "62" {
		t.Fatal("Get must deep-copy attrs")
	}
	// Unknown/evicted IDs are inert.
	if tr.Once("nope", "k") {
		t.Fatal("Once on unknown id must be false")
	}
	tr.Annotate("nope", "a", "b")
	if _, ok := tr.Origin("nope"); ok {
		t.Fatal("Origin on unknown id must be !ok")
	}
}

func TestNilTracerSpanAPIs(t *testing.T) {
	var tr *Tracer
	tr.Span("id", "s", spanBase, spanBase, "")
	if id := tr.SpanByKey("k", "s", spanBase, spanBase, ""); id != "" {
		t.Fatal("nil SpanByKey must return empty")
	}
	tr.Annotate("id", "k", "v")
	tr.SetParent("id", "p")
	if tr.Once("id", "k") {
		t.Fatal("nil Once must be false")
	}
	if _, ok := tr.Origin("id"); ok {
		t.Fatal("nil Origin must be !ok")
	}
}

func TestWaterfallRendering(t *testing.T) {
	tr := NewTracer(4)
	id := tr.Start("x1203c1b0", spanBase, "CrayTelemetry.Leak")
	tr.Span(id, "kafka.produce", spanBase, spanBase.Add(2*time.Millisecond), "events/0@0")
	tr.Span(id, "ruler.fire", spanBase.Add(61*time.Second), spanBase.Add(61*time.Second+time.Millisecond), "cabinet_leak")
	tr.Annotate(id, "detection_latency_seconds", "62")
	got, _ := tr.Get(id)
	out := got.Waterfall()
	for _, want := range []string{
		"trace " + id, "key=x1203c1b0", "origin", "kafka.produce",
		"ruler.fire", "+1m1s", "attr detection_latency_seconds=62",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	if (Trace{}).Waterfall() == "" {
		t.Fatal("zero trace waterfall must not be empty")
	}

	// Served over HTTP with ?format=waterfall.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+id+"?format=waterfall", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "kafka.produce") {
		t.Fatalf("waterfall endpoint -> %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("waterfall content type = %q", ct)
	}
}

// TestByKeyNeverDangles is the eviction regression: whatever the churn,
// every key the tracer still resolves must point at a retained trace.
func TestByKeyNeverDangles(t *testing.T) {
	tr := NewTracer(4)
	keys := []string{"a", "b", "c"}
	for i := 0; i < 100; i++ {
		key := keys[i%len(keys)]
		tr.Start(key, spanBase.Add(time.Duration(i)*time.Second), "churn")
		for _, k := range keys {
			id := tr.IDByKey(k)
			if id == "" {
				continue
			}
			if _, ok := tr.Get(id); !ok {
				t.Fatalf("iteration %d: byKey[%s]=%s points at an evicted trace", i, k, id)
			}
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", tr.Len())
	}
}

// TestTracerConcurrentSpanOps drives Start/Span/Annotate/Once/Get under
// eviction pressure from many goroutines — the -race hardening for the
// new span APIs (verify.sh runs the suite with -race).
func TestTracerConcurrentSpanOps(t *testing.T) {
	tr := NewTracer(8) // small capacity forces constant eviction
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", g%3)
			for i := 0; i < 200; i++ {
				ts := spanBase.Add(time.Duration(i) * time.Millisecond)
				id := tr.Start(key, ts, "concurrent")
				tr.Span(id, "stage", ts, ts.Add(time.Millisecond), "")
				tr.SpanByKey(key, "by-key", ts, ts, "")
				tr.Annotate(id, "attr", "v")
				tr.Once(id, "once")
				tr.Origin(id)
				if got, ok := tr.Get(id); ok {
					_ = got.Waterfall()
				}
				tr.IDs()
				tr.IDByKey(key)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() > 8 {
		t.Fatalf("Len = %d, want <= capacity", tr.Len())
	}
}
