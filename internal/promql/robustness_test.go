package promql

import (
	"testing"
	"testing/quick"
)

// Property: Parse never panics on arbitrary input.
func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: byte mutations of a valid rule expression never panic.
func TestPropertyMutatedExprNeverPanics(t *testing.T) {
	base := `sum(rate(node_cpu_seconds_total{mode!="idle"}[5m])) by (node) > 0.9`
	f := func(pos uint16, b byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		mutated := []byte(base)
		mutated[int(pos)%len(mutated)] = b
		_, _ = Parse(string(mutated))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
