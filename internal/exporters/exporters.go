// Package exporters implements the Prometheus-style exporters of the
// paper's three metric source categories: installed by HPE (node-exporter),
// installed by NERSC from the community (blackbox-exporter,
// kafka-exporter), and written by NERSC (aruba-exporter). Each serves the
// text exposition format on /metrics for vmagent to scrape.
package exporters

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/labels"
	"shastamon/internal/promtext"
)

// metricsHandler renders families on demand.
func metricsHandler(collect func() []promtext.Family) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := promtext.Write(w, collect()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// ---- node exporter ----

// NodeExporter simulates one node-exporter instance: CPU counters, memory
// and load gauges for a named node.
type NodeExporter struct {
	node string

	mu    sync.Mutex
	rng   *rand.Rand
	cpu   map[string]float64 // mode -> seconds
	since time.Time
}

// NewNodeExporter returns an exporter for the given node xname.
func NewNodeExporter(node string, seed int64) *NodeExporter {
	return &NodeExporter{
		node:  node,
		rng:   rand.New(rand.NewSource(seed)),
		cpu:   map[string]float64{"user": 0, "system": 0, "idle": 0, "iowait": 0},
		since: time.Now(),
	}
}

// Collect advances the simulated counters and returns current families.
func (e *NodeExporter) Collect() []promtext.Family {
	e.mu.Lock()
	defer e.mu.Unlock()
	// Advance counters by a pseudo-random slice of work.
	e.cpu["user"] += 0.4 + e.rng.Float64()*0.4
	e.cpu["system"] += 0.1 + e.rng.Float64()*0.2
	e.cpu["idle"] += 2 + e.rng.Float64()
	e.cpu["iowait"] += e.rng.Float64() * 0.1

	cpuFam := promtext.Family{Name: "node_cpu_seconds_total", Help: "Seconds the CPUs spent in each mode.", Type: "counter"}
	for _, mode := range []string{"idle", "iowait", "system", "user"} {
		cpuFam.Metrics = append(cpuFam.Metrics, promtext.Metric{
			Name:   "node_cpu_seconds_total",
			Labels: labels.FromStrings("mode", mode, "node", e.node),
			Value:  e.cpu[mode],
		})
	}
	memUsed := 40e9 + e.rng.Float64()*20e9
	return []promtext.Family{
		cpuFam,
		{Name: "node_memory_used_bytes", Help: "Memory in use.", Type: "gauge", Metrics: []promtext.Metric{
			{Name: "node_memory_used_bytes", Labels: labels.FromStrings("node", e.node), Value: memUsed},
		}},
		{Name: "node_load1", Help: "1m load average.", Type: "gauge", Metrics: []promtext.Metric{
			{Name: "node_load1", Labels: labels.FromStrings("node", e.node), Value: 1 + e.rng.Float64()*63},
		}},
	}
}

// Handler serves /metrics.
func (e *NodeExporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(e.Collect))
	return mux
}

// ---- kafka exporter ----

// KafkaExporter exposes broker metrics: per-partition high watermarks and
// total messages, mirroring danielqsj/kafka-exporter's metric names.
type KafkaExporter struct {
	broker *kafka.Broker
}

// NewKafkaExporter returns an exporter reading the broker.
func NewKafkaExporter(broker *kafka.Broker) *KafkaExporter { return &KafkaExporter{broker: broker} }

// Collect reads watermarks for every topic/partition.
func (e *KafkaExporter) Collect() []promtext.Family {
	offsets := promtext.Family{Name: "kafka_topic_partition_current_offset", Help: "Current (high) offset of a partition.", Type: "gauge"}
	parts := promtext.Family{Name: "kafka_topic_partitions", Help: "Partition count per topic.", Type: "gauge"}
	for _, topic := range e.broker.Topics() {
		n, err := e.broker.Partitions(topic)
		if err != nil {
			continue
		}
		parts.Metrics = append(parts.Metrics, promtext.Metric{
			Name: "kafka_topic_partitions", Labels: labels.FromStrings("topic", topic), Value: float64(n),
		})
		for p := 0; p < n; p++ {
			_, high, err := e.broker.Watermarks(topic, p)
			if err != nil {
				continue
			}
			offsets.Metrics = append(offsets.Metrics, promtext.Metric{
				Name:   "kafka_topic_partition_current_offset",
				Labels: labels.FromStrings("topic", topic, "partition", fmt.Sprintf("%d", p)),
				Value:  float64(high),
			})
		}
	}
	total := promtext.Family{Name: "kafka_broker_messages_total", Help: "Messages produced to the broker.", Type: "counter", Metrics: []promtext.Metric{
		{Name: "kafka_broker_messages_total", Value: float64(e.broker.Stats().Messages)},
	}}
	lag := promtext.Family{Name: "kafka_consumergroup_lag", Help: "Unconsumed messages per group/topic/partition.", Type: "gauge"}
	for _, group := range e.broker.Groups() {
		for key, l := range e.broker.GroupLag(group) {
			idx := strings.LastIndexByte(key, '/')
			lag.Metrics = append(lag.Metrics, promtext.Metric{
				Name:   "kafka_consumergroup_lag",
				Labels: labels.FromStrings("consumergroup", group, "topic", key[:idx], "partition", key[idx+1:]),
				Value:  float64(l),
			})
		}
	}
	return []promtext.Family{offsets, parts, total, lag}
}

// Handler serves /metrics.
func (e *KafkaExporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(e.Collect))
	return mux
}

// ---- blackbox exporter ----

// BlackboxExporter probes HTTP targets on demand: GET /probe?target=URL
// returns probe_success and probe_duration_seconds, exactly like the
// community blackbox-exporter's http_2xx module.
type BlackboxExporter struct {
	client *http.Client
}

// NewBlackboxExporter returns a prober; nil client gets a 5s timeout.
func NewBlackboxExporter(client *http.Client) *BlackboxExporter {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	return &BlackboxExporter{client: client}
}

// Probe runs one probe and returns the resulting families.
func (e *BlackboxExporter) Probe(target string) []promtext.Family {
	start := time.Now()
	success := 0.0
	resp, err := e.client.Get(target)
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode/100 == 2 {
			success = 1
		}
	}
	dur := time.Since(start).Seconds()
	return []promtext.Family{
		{Name: "probe_success", Help: "Whether the probe succeeded.", Type: "gauge", Metrics: []promtext.Metric{
			{Name: "probe_success", Value: success},
		}},
		{Name: "probe_duration_seconds", Help: "Probe duration.", Type: "gauge", Metrics: []promtext.Metric{
			{Name: "probe_duration_seconds", Value: dur},
		}},
	}
}

// Handler serves /probe?target=...
func (e *BlackboxExporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/probe", func(w http.ResponseWriter, r *http.Request) {
		target := r.URL.Query().Get("target")
		if target == "" {
			http.Error(w, "target required", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = promtext.Write(w, e.Probe(target))
	})
	return mux
}

// ---- aruba exporter ----

// ArubaExporter is the NERSC-written exporter for Aruba management
// switches: port status and traffic counters.
type ArubaExporter struct {
	switchName string
	ports      int

	mu  sync.Mutex
	rng *rand.Rand
	rx  []float64
	tx  []float64
	up  []bool
}

// NewArubaExporter simulates a switch with the given port count.
func NewArubaExporter(switchName string, ports int, seed int64) *ArubaExporter {
	e := &ArubaExporter{
		switchName: switchName,
		ports:      ports,
		rng:        rand.New(rand.NewSource(seed)),
		rx:         make([]float64, ports),
		tx:         make([]float64, ports),
		up:         make([]bool, ports),
	}
	for i := range e.up {
		e.up[i] = true
	}
	return e
}

// SetPortStatus flips a port up/down (fault injection for probes).
func (e *ArubaExporter) SetPortStatus(port int, up bool) error {
	if port < 0 || port >= e.ports {
		return fmt.Errorf("exporters: port %d out of range", port)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.up[port] = up
	return nil
}

// Collect advances counters and renders families.
func (e *ArubaExporter) Collect() []promtext.Family {
	e.mu.Lock()
	defer e.mu.Unlock()
	status := promtext.Family{Name: "aruba_port_up", Help: "Port operational status.", Type: "gauge"}
	rx := promtext.Family{Name: "aruba_port_rx_bytes_total", Help: "Received bytes.", Type: "counter"}
	tx := promtext.Family{Name: "aruba_port_tx_bytes_total", Help: "Transmitted bytes.", Type: "counter"}
	for p := 0; p < e.ports; p++ {
		ls := labels.FromStrings("switch", e.switchName, "port", fmt.Sprintf("%d", p))
		upVal := 0.0
		if e.up[p] {
			upVal = 1
			e.rx[p] += e.rng.Float64() * 1e8
			e.tx[p] += e.rng.Float64() * 1e8
		}
		status.Metrics = append(status.Metrics, promtext.Metric{Name: status.Name, Labels: ls, Value: upVal})
		rx.Metrics = append(rx.Metrics, promtext.Metric{Name: rx.Name, Labels: ls, Value: e.rx[p]})
		tx.Metrics = append(tx.Metrics, promtext.Metric{Name: tx.Name, Labels: ls, Value: e.tx[p]})
	}
	return []promtext.Family{status, rx, tx}
}

// Handler serves /metrics.
func (e *ArubaExporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(e.Collect))
	return mux
}
