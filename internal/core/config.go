package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"shastamon/internal/anomaly"
	"shastamon/internal/ruler"
	"shastamon/internal/vmalert"
)

// RuleConfig is the JSON shape of one alerting rule, mirroring the
// Prometheus/Loki rule file format (Fig. 8):
//
//	{
//	  "alert": "SwitchOffline",
//	  "expr": "sum(count_over_time({app=\"fabric_manager_monitor\"} ... [5m])) by (...) > 0",
//	  "for": "1m",
//	  "labels": {"severity": "critical"},
//	  "annotations": {"summary": "switch {{ $labels.xname }} is {{ $labels.state }}"}
//	}
type RuleConfig struct {
	Alert       string            `json:"alert"`
	Expr        string            `json:"expr"`
	For         string            `json:"for,omitempty"`
	Labels      map[string]string `json:"labels,omitempty"`
	Annotations map[string]string `json:"annotations,omitempty"`
	// Anomaly turns the rule predictive (see README § Predictive
	// alerting): expr selects series, the detector judges each sample
	// against its own streaming baseline, and only anomalous samples
	// reach the for-hold.
	Anomaly *AnomalyConfig `json:"anomaly,omitempty"`
}

// AnomalyConfig is the JSON shape of an anomaly.Config. Every field is
// optional except method; durations use Go syntax ("5m").
type AnomalyConfig struct {
	Method      string  `json:"method"`
	Sensitivity float64 `json:"sensitivity,omitempty"`
	HalfLife    string  `json:"half_life,omitempty"`
	Season      string  `json:"season,omitempty"`
	Buckets     int     `json:"buckets,omitempty"`
	MinSamples  int     `json:"min_samples,omitempty"`
	MaxSeries   int     `json:"max_series,omitempty"`
}

func (ac *AnomalyConfig) toConfig(rule string) (*anomaly.Config, error) {
	if ac == nil {
		return nil, nil
	}
	cfg := &anomaly.Config{
		Method:      anomaly.Method(ac.Method),
		Sensitivity: ac.Sensitivity,
		Buckets:     ac.Buckets,
		MinSamples:  ac.MinSamples,
		MaxSeries:   ac.MaxSeries,
	}
	for _, f := range []struct {
		name string
		in   string
		out  *time.Duration
	}{{"half_life", ac.HalfLife, &cfg.HalfLife}, {"season", ac.Season, &cfg.Season}} {
		if f.in == "" {
			continue
		}
		d, err := time.ParseDuration(f.in)
		if err != nil {
			return nil, fmt.Errorf("core: rule %q: bad %s %q: %w", rule, f.name, f.in, err)
		}
		*f.out = d
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: rule %q: %w", rule, err)
	}
	return cfg, nil
}

// RuleFile is a JSON document holding both rule groups of the dual
// pipeline: LogQL rules for the Ruler and PromQL rules for vmalert.
type RuleFile struct {
	LogRules    []RuleConfig `json:"log_rules,omitempty"`
	MetricRules []RuleConfig `json:"metric_rules,omitempty"`
}

func (rc RuleConfig) holdDuration() (time.Duration, error) {
	if rc.For == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(rc.For)
	if err != nil {
		return 0, fmt.Errorf("core: rule %q: bad for %q: %w", rc.Alert, rc.For, err)
	}
	return d, nil
}

// ParseRules converts a rule file into the typed rule slices. Rule
// expressions are validated by the respective engines at Pipeline
// construction.
func ParseRules(rf RuleFile) ([]ruler.Rule, []vmalert.Rule, error) {
	logRules := make([]ruler.Rule, 0, len(rf.LogRules))
	for _, rc := range rf.LogRules {
		d, err := rc.holdDuration()
		if err != nil {
			return nil, nil, err
		}
		ac, err := rc.Anomaly.toConfig(rc.Alert)
		if err != nil {
			return nil, nil, err
		}
		logRules = append(logRules, ruler.Rule{
			Name: rc.Alert, Expr: rc.Expr, For: d,
			Labels: rc.Labels, Annotations: rc.Annotations, Anomaly: ac,
		})
	}
	metricRules := make([]vmalert.Rule, 0, len(rf.MetricRules))
	for _, rc := range rf.MetricRules {
		d, err := rc.holdDuration()
		if err != nil {
			return nil, nil, err
		}
		ac, err := rc.Anomaly.toConfig(rc.Alert)
		if err != nil {
			return nil, nil, err
		}
		metricRules = append(metricRules, vmalert.Rule{
			Name: rc.Alert, Expr: rc.Expr, For: d,
			Labels: rc.Labels, Annotations: rc.Annotations, Anomaly: ac,
		})
	}
	return logRules, metricRules, nil
}

// LoadRules reads and parses a JSON rule file.
func LoadRules(path string) ([]ruler.Rule, []vmalert.Rule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rf RuleFile
	if err := json.Unmarshal(data, &rf); err != nil {
		return nil, nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return ParseRules(rf)
}
