package stats

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shastamon/internal/obs"
)

// Config carries the per-query limits and slowlog settings, populated
// from loki.Limits by the warehouse.
type Config struct {
	// MaxBytesScanned cancels any query whose cumulative scanned bytes
	// exceed the budget. 0 disables the limit.
	MaxBytesScanned int64
	// Timeout cancels any query running longer than this wall-clock
	// budget. 0 disables the limit.
	Timeout time.Duration
	// SlowThreshold records queries at least this slow in the slowlog.
	// 0 disables duration-based slowlogging (limit breaches and kills are
	// always recorded).
	SlowThreshold time.Duration
	// SlowLogSize bounds the slowlog ring buffer; <= 0 takes 128.
	SlowLogSize int
}

const defaultSlowLogSize = 128

// Histogram buckets for scan volume and throughput: queries range from a
// few KB (instant panel refresh) to multi-GB dashboard ranges.
var (
	bytesBuckets      = []float64{4 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20, 1 << 30, 4 << 30}
	throughputBuckets = []float64{1 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30, 4 << 30}
)

// ActiveQuery is the wire form of one live query on /debug/queries.
type ActiveQuery struct {
	ID      string    `json:"id"`
	Engine  string    `json:"engine"`
	Query   string    `json:"query"`
	TraceID string    `json:"traceId,omitempty"`
	Start   time.Time `json:"start"`
	Elapsed float64   `json:"elapsed"`
	Stats   Snapshot  `json:"stats"`
}

// SlowEntry is one slowlog record: a query that crossed the slow
// threshold, breached a limit, or was killed.
type SlowEntry struct {
	ID       string    `json:"id"`
	Engine   string    `json:"engine"`
	Query    string    `json:"query"`
	TraceID  string    `json:"traceId,omitempty"`
	Start    time.Time `json:"start"`
	Duration float64   `json:"duration"`
	Reason   string    `json:"reason"`
	Error    string    `json:"error,omitempty"`
	Stats    Snapshot  `json:"stats"`
}

type activeQuery struct {
	id     string
	engine string
	query  string
	trace  string
	start  time.Time
	sc     *Context
	cancel context.CancelCauseFunc
}

// Tracker is the active-query registry: it arms per-query limits, lists
// live queries with running stats, kills runaways, keeps the slowlog ring
// and observes the shastamon_query_* metric families. A nil *Tracker is
// safe: Start still returns a working stats context, everything else
// no-ops.
type Tracker struct {
	cfg Config

	mu       sync.Mutex
	seq      uint64
	active   map[string]*activeQuery
	slow     []SlowEntry
	slowNext int
	tracer   *obs.Tracer

	dur      *obs.HistogramVec
	bytes    *obs.Histogram
	thru     *obs.Histogram
	slowCtr  *obs.CounterVec
	limitCtr *obs.CounterVec
}

// NewTracker registers the query metric families on reg and returns a
// tracker enforcing cfg.
func NewTracker(reg *obs.Registry, cfg Config) *Tracker {
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = defaultSlowLogSize
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	t := &Tracker{cfg: cfg, active: map[string]*activeQuery{}}
	t.dur = reg.HistogramVec(obs.Namespace+"query_duration_seconds",
		"Query wall-clock duration, by engine.", obs.DefBuckets, "engine")
	t.bytes = reg.Histogram(obs.Namespace+"query_bytes_processed",
		"Raw log/sample bytes scanned per query.", bytesBuckets)
	t.thru = reg.Histogram(obs.Namespace+"query_throughput_bytes_per_second",
		"Per-query scan throughput (bytes processed / exec time).", throughputBuckets)
	t.slowCtr = reg.CounterVec(obs.Namespace+"query_slow_total",
		"Queries recorded in the slow-query log, by engine.", "engine")
	t.limitCtr = reg.CounterVec(obs.Namespace+"query_limit_breached_total",
		"Queries cancelled by a limit or an operator, by reason.", "reason")
	reg.GaugeFunc(obs.Namespace+"queries_active",
		"Queries currently executing.", func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			return float64(len(t.active))
		})
	return t
}

// SetTracer points the tracker at the pipeline tracer so finished queries
// replay their spans into /debug/trace/{id}.
func (t *Tracker) SetTracer(tr *obs.Tracer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracer = tr
	t.mu.Unlock()
}

// Config returns the limits the tracker enforces.
func (t *Tracker) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// Start registers a query: it derives a cancellable, limit-armed context
// carrying a fresh stats.Context and returns it with a finish func the
// caller must invoke exactly once with the query's error. finish records
// metrics, the slowlog entry and the trace spans, and returns the final
// statistics snapshot.
func (t *Tracker) Start(ctx context.Context, engine, query string) (context.Context, func(err error) Snapshot) {
	qctx, sc := NewContext(ctx)
	if t == nil {
		return qctx, func(error) Snapshot { sc.Finish(); return sc.Snapshot() }
	}
	start := time.Now()
	cancelTimeout := func() {}
	if t.cfg.Timeout > 0 {
		qctx, cancelTimeout = context.WithTimeoutCause(qctx, t.cfg.Timeout, ErrQueryTimeout)
	}
	qctx, cancel := context.WithCancelCause(qctx)
	sc.ArmLimit(t.cfg.MaxBytesScanned, cancel)

	t.mu.Lock()
	t.seq++
	id := "q" + strconv.FormatUint(t.seq, 10)
	tracer := t.tracer
	t.mu.Unlock()

	var tid string
	if tracer != nil {
		tid = tracer.Start("query:"+id, start, engine+" "+query)
		qctx = obs.WithTraceID(qctx, tid)
	}
	aq := &activeQuery{id: id, engine: engine, query: query, trace: tid,
		start: start, sc: sc, cancel: cancel}
	t.mu.Lock()
	t.active[id] = aq
	t.mu.Unlock()

	return qctx, func(err error) Snapshot {
		cancelTimeout()
		end := time.Now()
		sc.Finish()
		t.mu.Lock()
		_, live := t.active[id]
		delete(t.active, id)
		t.mu.Unlock()
		snap := sc.Snapshot()
		if !live { // double finish: record nothing twice
			return snap
		}
		cancel(context.Canceled)

		dur := end.Sub(start)
		reason := limitReason(err)
		h := t.dur.With(engine)
		if tid != "" {
			h.ObserveWithExemplar(dur.Seconds(), end.UnixMilli(), "trace_id", tid)
		} else {
			h.Observe(dur.Seconds())
		}
		t.bytes.Observe(float64(snap.Summary.TotalBytesProcessed))
		if snap.Summary.ExecTime > 0 {
			t.thru.Observe(float64(snap.Summary.TotalBytesProcessed) / snap.Summary.ExecTime)
		}
		if reason != "" {
			t.limitCtr.With(reason).Inc()
		}
		if reason != "" || (t.cfg.SlowThreshold > 0 && dur >= t.cfg.SlowThreshold) {
			t.slowCtr.With(engine).Inc()
			e := SlowEntry{ID: id, Engine: engine, Query: query, TraceID: tid,
				Start: start, Duration: dur.Seconds(), Reason: reason, Stats: snap}
			if e.Reason == "" {
				e.Reason = "slow"
			}
			if err != nil {
				e.Error = err.Error()
			}
			t.recordSlow(e)
		}
		if tracer != nil {
			for _, sp := range sc.Spans() {
				tracer.Span(tid, sp.Stage, sp.Start, sp.End, sp.Note)
			}
			tracer.Span(tid, "query.total", start, end, query)
			tracer.Annotate(tid, "bytes_processed", strconv.FormatInt(snap.Summary.TotalBytesProcessed, 10))
			tracer.Annotate(tid, "lines_processed", strconv.FormatInt(snap.Summary.TotalLinesProcessed, 10))
			tracer.Annotate(tid, "cache",
				strconv.FormatInt(snap.Store.CacheHits, 10)+" hit / "+strconv.FormatInt(snap.Store.CacheMisses, 10)+" miss")
			if err != nil {
				tracer.Annotate(tid, "error", err.Error())
			}
		}
		return snap
	}
}

// limitReason classifies a query error as a limit breach: the reason
// label on shastamon_query_limit_breached_total, "" for ordinary errors.
func limitReason(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrMaxBytesScanned):
		return "bytes"
	case errors.Is(err, ErrQueryTimeout):
		return "timeout"
	case errors.Is(err, ErrKilled):
		return "killed"
	case errors.Is(err, ErrQueueFull):
		return "queue"
	}
	return ""
}

// Kill cancels a live query by ID. It reports whether the query existed.
func (t *Tracker) Kill(id string) bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	aq := t.active[id]
	t.mu.Unlock()
	if aq == nil {
		return false
	}
	aq.cancel(ErrKilled)
	return true
}

// Active lists the live queries, oldest first.
func (t *Tracker) Active() []ActiveQuery {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	list := make([]*activeQuery, 0, len(t.active))
	for _, aq := range t.active {
		list = append(list, aq)
	}
	t.mu.Unlock()
	sort.Slice(list, func(i, j int) bool {
		if !list[i].start.Equal(list[j].start) {
			return list[i].start.Before(list[j].start)
		}
		return list[i].id < list[j].id
	})
	out := make([]ActiveQuery, len(list))
	for i, aq := range list {
		out[i] = ActiveQuery{ID: aq.id, Engine: aq.engine, Query: aq.query,
			TraceID: aq.trace, Start: aq.start,
			Elapsed: now.Sub(aq.start).Seconds(), Stats: aq.sc.Snapshot()}
	}
	return out
}

func (t *Tracker) recordSlow(e SlowEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.slow) < t.cfg.SlowLogSize {
		t.slow = append(t.slow, e)
		t.slowNext = len(t.slow) % t.cfg.SlowLogSize
		return
	}
	t.slow[t.slowNext] = e
	t.slowNext = (t.slowNext + 1) % len(t.slow)
}

// SlowLog returns the slowlog entries, newest first.
func (t *Tracker) SlowLog() []SlowEntry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.slow)
	out := make([]SlowEntry, 0, n)
	if n < t.cfg.SlowLogSize {
		for i := n - 1; i >= 0; i-- {
			out = append(out, t.slow[i])
		}
		return out
	}
	for i := 1; i <= n; i++ {
		out = append(out, t.slow[(t.slowNext-i+n)%n])
	}
	return out
}

// Handler serves the query introspection endpoints:
//
//	GET  /debug/queries            live queries with elapsed time and running stats
//	POST /debug/queries/{id}/kill  cancel a runaway query
//	GET  /debug/slowlog            slow-query ring buffer, newest first
func (t *Tracker) Handler() http.Handler {
	if t == nil {
		return http.NotFoundHandler()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimSuffix(r.URL.Path, "/")
		switch {
		case path == "/debug/queries":
			writeJSON(w, struct {
				Queries []ActiveQuery `json:"queries"`
			}{t.Active()})
		case path == "/debug/slowlog":
			writeJSON(w, struct {
				Slowlog []SlowEntry `json:"slowlog"`
			}{t.SlowLog()})
		case strings.HasPrefix(path, "/debug/queries/") && strings.HasSuffix(path, "/kill"):
			if r.Method != http.MethodPost {
				http.Error(w, "kill requires POST", http.StatusMethodNotAllowed)
				return
			}
			id := strings.TrimSuffix(strings.TrimPrefix(path, "/debug/queries/"), "/kill")
			if !t.Kill(id) {
				http.Error(w, "no such query: "+id, http.StatusNotFound)
				return
			}
			writeJSON(w, map[string]string{"killed": id})
		default:
			http.NotFound(w, r)
		}
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
