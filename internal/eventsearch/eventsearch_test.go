package eventsearch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTokenize(t *testing.T) {
	got := Tokenize("Sensor 'A' of the redundant leak-sensors detected_a_leak x1203c1b0!")
	want := []string{"sensor", "a", "of", "the", "redundant", "leak", "sensors", "detected", "a", "leak", "x1203c1b0"}
	if len(got) != len(want) {
		t.Fatalf("%v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: %q != %q", i, got[i], want[i])
		}
	}
	if len(Tokenize("")) != 0 {
		t.Fatal("empty input")
	}
}

func TestAddAndSearchAND(t *testing.T) {
	ix := New()
	base := time.Unix(1000, 0).UTC()
	ix.Add(base, map[string]string{"xname": "x1203c1b0"}, "leak detected in front zone")
	ix.Add(base.Add(time.Second), map[string]string{"xname": "x1002c1r7b0"}, "switch offline state unknown")
	ix.Add(base.Add(2*time.Second), nil, "leak cleared front zone")

	hits := ix.Search(Query{Terms: []string{"leak"}})
	if len(hits) != 2 {
		t.Fatalf("%+v", hits)
	}
	hits = ix.Search(Query{Terms: []string{"leak", "detected"}})
	if len(hits) != 1 || hits[0].ID != 0 {
		t.Fatalf("%+v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"nonexistent"}}); hits != nil {
		t.Fatalf("%+v", hits)
	}
	// Field values are searchable too.
	hits = ix.Search(Query{Terms: []string{"x1002c1r7b0"}})
	if len(hits) != 1 || hits[0].ID != 1 {
		t.Fatalf("%+v", hits)
	}
}

func TestSearchFiltersAndTimeRange(t *testing.T) {
	ix := New()
	base := time.Unix(0, 0).UTC()
	for i := 0; i < 10; i++ {
		ix.Add(base.Add(time.Duration(i)*time.Minute), map[string]string{"sev": fmt.Sprintf("s%d", i%2)}, "event line")
	}
	hits := ix.Search(Query{Terms: []string{"event"}, Filters: map[string]string{"sev": "s1"}})
	if len(hits) != 5 {
		t.Fatalf("%d", len(hits))
	}
	hits = ix.Search(Query{From: base.Add(3 * time.Minute), To: base.Add(5 * time.Minute)})
	if len(hits) != 3 {
		t.Fatalf("%d", len(hits))
	}
	// Limit caps results.
	hits = ix.Search(Query{Limit: 2})
	if len(hits) != 2 {
		t.Fatalf("%d", len(hits))
	}
	// Ordered by timestamp.
	hits = ix.Search(Query{})
	for i := 1; i < len(hits); i++ {
		if hits[i].Timestamp.Before(hits[i-1].Timestamp) {
			t.Fatal("not sorted")
		}
	}
}

func TestCaseInsensitive(t *testing.T) {
	ix := New()
	ix.Add(time.Unix(1, 0), nil, "CabinetLeakDetected WARNING")
	if len(ix.Search(Query{Terms: []string{"cabinetleakdetected"}})) != 1 {
		t.Fatal("case-folding failed")
	}
	if len(ix.Search(Query{Terms: []string{"Warning"}})) != 1 {
		t.Fatal("query-side folding failed")
	}
}

func TestDeleteBefore(t *testing.T) {
	ix := New()
	base := time.Unix(0, 0).UTC()
	for i := 0; i < 10; i++ {
		ix.Add(base.Add(time.Duration(i)*time.Hour), nil, fmt.Sprintf("event number%d", i))
	}
	if got := ix.DeleteBefore(base.Add(5 * time.Hour)); got != 5 {
		t.Fatalf("dropped %d", got)
	}
	if st := ix.Stats(); st.Docs != 5 {
		t.Fatalf("%+v", st)
	}
	// Old docs are gone from postings; new ones still found.
	if hits := ix.Search(Query{Terms: []string{"number2"}}); len(hits) != 0 {
		t.Fatalf("%+v", hits)
	}
	if hits := ix.Search(Query{Terms: []string{"number7"}}); len(hits) != 1 {
		t.Fatalf("%+v", hits)
	}
	if got := ix.DeleteBefore(base); got != 0 {
		t.Fatalf("dropped %d from fresh index", got)
	}
}

func TestHTTPAPI(t *testing.T) {
	ix := New()
	srv := httptest.NewServer(ix.Handler())
	defer srv.Close()

	doc := `{"timestamp":"2022-03-03T01:47:57Z","fields":{"context":"x1203c1b0"},"text":"leak detected front zone"}`
	resp, err := http.Post(srv.URL+"/events/_doc", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("index status %d", resp.StatusCode)
	}

	r2, err := http.Get(srv.URL + "/events/_search?q=leak+front&field.context=x1203c1b0")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var out struct {
		Hits struct {
			Total int   `json:"total"`
			Hits  []Doc `json:"hits"`
		} `json:"hits"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Hits.Total != 1 || out.Hits.Hits[0].Fields["context"] != "x1203c1b0" {
		t.Fatalf("%+v", out)
	}

	// Bad requests.
	resp, _ = http.Post(srv.URL+"/events/_doc", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/events/_doc", "application/json", strings.NewReader(`{"timestamp":"nope","text":"x"}`))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad ts: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/events/_search?size=abc")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad size: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/events/_search?from=nope")
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad from: %d", resp.StatusCode)
	}
}

// Property: every document is findable by each of its tokens.
func TestPropertyTokensFindDoc(t *testing.T) {
	f := func(words []string) bool {
		ix := New()
		text := strings.Join(words, " ")
		id := ix.Add(time.Unix(1, 0), nil, text)
		for _, tok := range Tokenize(text) {
			hits := ix.Search(Query{Terms: []string{tok}})
			found := false
			for _, h := range hits {
				if h.ID == id {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIndexAdd(b *testing.B) {
	ix := New()
	line := "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix.Add(time.Unix(int64(i), 0), nil, line)
	}
}

func BenchmarkSearchTerm(b *testing.B) {
	ix := New()
	for i := 0; i < 50000; i++ {
		text := "routine telemetry heartbeat"
		if i%1000 == 0 {
			text = "leak detected cabinet zone"
		}
		ix.Add(time.Unix(int64(i), 0), nil, text)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits := ix.Search(Query{Terms: []string{"leak", "detected"}, Limit: 1000})
		if len(hits) != 50 {
			b.Fatalf("%d", len(hits))
		}
	}
}
