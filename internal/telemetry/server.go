// Package telemetry implements the Shasta SMA Telemetry API: the HTTP
// middleman between Kafka and data consumers, "responsible for
// authentication and balancing income requests". Clients create a
// subscription to one or more Kafka topics and long-poll batches of
// records; the server drives a consumer-group member per subscription.
package telemetry

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/obs"
)

// Record is one message delivered to a telemetry client.
type Record struct {
	Topic     string    `json:"topic"`
	Partition int       `json:"partition"`
	Offset    int64     `json:"offset"`
	Key       string    `json:"key,omitempty"` // base64
	Value     string    `json:"value"`         // base64
	Timestamp time.Time `json:"timestamp"`
	// Headers carries Kafka message headers through the API, notably the
	// obs trace ID under obs.TraceHeader.
	Headers map[string]string `json:"headers,omitempty"`
}

// DecodeValue returns the raw message payload.
func (r Record) DecodeValue() ([]byte, error) { return base64.StdEncoding.DecodeString(r.Value) }

type subscription struct {
	id       string
	consumer *kafka.Consumer
	manual   bool       // commit only after the response is written
	mu       sync.Mutex // serialises polls per subscription
}

// ServerConfig configures the API server.
type ServerConfig struct {
	Broker *kafka.Broker
	// Tokens holds accepted bearer tokens. Empty disables authentication.
	Tokens []string
	// MaxConcurrentPolls bounds in-flight stream requests (the "balancing"
	// role). 0 means 64.
	MaxConcurrentPolls int
	// ManualCommitTopics lists topics whose subscriptions use manual offset
	// commits: a polled batch is committed only after the response has been
	// written, so a server crash mid-stream re-delivers the batch to the
	// next group member (at-least-once). Other topics keep auto-commit
	// (at-most-once), matching a sensor fleet that prefers freshness.
	ManualCommitTopics []string
}

// Server is the telemetry API HTTP handler.
type Server struct {
	broker *kafka.Broker
	tokens map[string]bool
	sem    chan struct{}
	tracer *obs.Tracer
	manual map[string]bool

	reg       *obs.Registry
	requests  *obs.CounterVec
	authFails *obs.Counter
	streamed  *obs.Counter

	mu     sync.Mutex
	subs   map[string]*subscription
	nextID int
}

// NewServer validates the config and returns a server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("telemetry: broker required")
	}
	if cfg.MaxConcurrentPolls <= 0 {
		cfg.MaxConcurrentPolls = 64
	}
	s := &Server{
		broker: cfg.Broker,
		tokens: map[string]bool{},
		sem:    make(chan struct{}, cfg.MaxConcurrentPolls),
		subs:   map[string]*subscription{},
		manual: map[string]bool{},
		reg:    obs.NewRegistry(),
	}
	for _, t := range cfg.Tokens {
		s.tokens[t] = true
	}
	for _, t := range cfg.ManualCommitTopics {
		s.manual[t] = true
	}
	s.requests = s.reg.CounterVec(obs.Namespace+"telemetry_requests_total",
		"Telemetry API HTTP requests by endpoint and status code.", "endpoint", "code")
	s.authFails = s.reg.Counter(obs.Namespace+"telemetry_auth_failures_total",
		"Requests rejected for a missing or invalid bearer token.")
	s.streamed = s.reg.Counter(obs.Namespace+"telemetry_records_streamed_total",
		"Kafka records delivered to telemetry clients.")
	s.reg.GaugeFunc(obs.Namespace+"telemetry_subscriptions",
		"Live telemetry subscriptions.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.subs))
		})
	return s, nil
}

// Metrics exposes the server's self-monitoring registry.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// SetTracer attaches an event tracer; records passing through the stream
// endpoint that carry a trace header get a "telemetry.stream" stage.
func (s *Server) SetTracer(t *obs.Tracer) { s.tracer = t }

func (s *Server) authorized(r *http.Request) bool {
	if len(s.tokens) == 0 {
		return true
	}
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	return strings.HasPrefix(h, prefix) && s.tokens[strings.TrimPrefix(h, prefix)]
}

// Handler returns the HTTP mux:
//
//	GET    /v1/topics
//	POST   /v1/subscriptions        {"topics": [...], "group": "..."}
//	GET    /v1/stream/{id}?max=&timeout_ms=
//	DELETE /v1/subscriptions/{id}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/topics", s.withAuth(s.handleTopics))
	mux.HandleFunc("/v1/subscriptions", s.withAuth(s.handleSubscriptions))
	mux.HandleFunc("/v1/subscriptions/", s.withAuth(s.handleSubscriptionDelete))
	mux.HandleFunc("/v1/stream/", s.withAuth(s.handleStream))
	return mux
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// endpointLabel coarsens request paths so the metric's cardinality stays
// bounded (subscription IDs are unbounded).
func endpointLabel(path string) string {
	switch {
	case strings.HasPrefix(path, "/v1/stream/"):
		return "stream"
	case strings.HasPrefix(path, "/v1/subscriptions"):
		return "subscriptions"
	case strings.HasPrefix(path, "/v1/topics"):
		return "topics"
	}
	return "other"
}

func (s *Server) withAuth(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			s.requests.With(endpointLabel(r.URL.Path), strconv.Itoa(sr.code)).Inc()
		}()
		if !s.authorized(r) {
			s.authFails.Inc()
			http.Error(sr, "unauthorized", http.StatusUnauthorized)
			return
		}
		next(sr, r)
	}
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, s.broker.Topics())
}

type subscribeRequest struct {
	Topics []string `json:"topics"`
	Group  string   `json:"group"`
}

type subscribeResponse struct {
	ID string `json:"id"`
}

func (s *Server) handleSubscriptions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req subscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Topics) == 0 {
		http.Error(w, "bad request: topics required", http.StatusBadRequest)
		return
	}
	for _, t := range req.Topics {
		if _, err := s.broker.Partitions(t); err != nil {
			http.Error(w, "unknown topic "+t, http.StatusNotFound)
			return
		}
	}
	manual := false
	for _, t := range req.Topics {
		if s.manual[t] {
			manual = true
		}
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("sub-%d", s.nextID)
	group := req.Group
	if group == "" {
		group = id
	}
	newConsumer := kafka.NewConsumer
	if manual {
		newConsumer = kafka.NewManualConsumer
	}
	sub := &subscription{
		id:       id,
		consumer: newConsumer(s.broker, group, id, req.Topics...),
		manual:   manual,
	}
	s.subs[id] = sub
	s.mu.Unlock()
	writeJSON(w, subscribeResponse{ID: id})
}

func (s *Server) handleSubscriptionDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/subscriptions/")
	s.mu.Lock()
	sub, ok := s.subs[id]
	delete(s.subs, id)
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown subscription", http.StatusNotFound)
		return
	}
	sub.consumer.Close()
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/stream/")
	s.mu.Lock()
	sub, ok := s.subs[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown subscription", http.StatusNotFound)
		return
	}
	max := 100
	if v := r.URL.Query().Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		max = n
	}
	timeout := 0 * time.Millisecond
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "bad timeout_ms", http.StatusBadRequest)
			return
		}
		timeout = time.Duration(n) * time.Millisecond
	}

	// Balancing: bounded concurrency across all clients.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-r.Context().Done():
		return
	}

	sub.mu.Lock()
	defer sub.mu.Unlock()
	t0 := time.Now()
	msgs, err := sub.consumer.Poll(max, timeout)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	pollDur := time.Since(t0)
	out := make([]Record, 0, len(msgs))
	for _, m := range msgs {
		if tid := m.Headers[obs.TraceHeader]; tid != "" {
			s.tracer.Span(tid, "telemetry.stream", m.Timestamp, m.Timestamp.Add(pollDur), id)
		}
		out = append(out, Record{
			Topic:     m.Topic,
			Partition: m.Partition,
			Offset:    m.Offset,
			Key:       base64.StdEncoding.EncodeToString(m.Key),
			Value:     base64.StdEncoding.EncodeToString(m.Value),
			Timestamp: m.Timestamp,
			Headers:   m.Headers,
		})
	}
	s.streamed.Add(float64(len(out)))
	writeJSON(w, out)
	// At-least-once: the batch's offsets are persisted only now that the
	// response is on the wire. A crash above re-delivers the batch.
	if sub.manual {
		sub.consumer.CommitPolled()
	}
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
