#!/usr/bin/env bash
# bench.sh — run the ingest/query benchmark families tracked by the
# perf trajectory and write the parsed results to BENCH_ingest.json,
# plus the end-to-end detection-latency benchmark to BENCH_latency.json.
#
#   ./bench.sh          full run (-benchtime 1s), the numbers that go
#                       into EXPERIMENTS.md
#   ./bench.sh short    quick run (-benchtime 100x), used by verify.sh
#                       as a does-it-still-run smoke pass
#
# Families (see bench_test.go):
#   C1  BenchmarkOMNIIngestLogs / ...LogsParallel   msgs/s vs paper 400k/s
#       BenchmarkOMNIIngestLogsWAL                  same loop, WAL on: the
#                                                   durability overhead pair
#   C2  BenchmarkSustainedBytes                     MB/s vs 400 GB/day
#   C5  BenchmarkShardedIngest                      lock-stripe scaling
#       BenchmarkTenantIngest/{off,on}              single-tenant ingest
#                                                   with tenancy absent vs
#                                                   configured: the <5%
#                                                   overhead pair
#   E4  BenchmarkFig5Query                          leak query latency
#       BenchmarkFig5QueryRange/{mono,cold,warm}    the same query as a
#                                                   dashboard range panel:
#                                                   monolithic vs frontend
#                                                   split (cache off) vs
#                                                   primed results cache
#       QueryScaling/gomaxprocs={1,2,4,8}           split-parallel cold
#                                                   Fig5 across -cpu
#   E7  BenchmarkFig8Query                          switch pattern query
#       BenchmarkWALRecovery                        100k-entry WAL replay
#                                                   (ms/recovery, entries/s)
set -euo pipefail
cd "$(dirname "$0")"

MODE="${1:-full}"
case "$MODE" in
  short) BENCHTIME=100x RANGE_BENCHTIME=3x ;;
  full)  BENCHTIME=1s  RANGE_BENCHTIME=1s ;;
  *) echo "usage: $0 [short|full]" >&2; exit 2 ;;
esac

OUT=BENCH_ingest.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

go test -run '^$' \
  -bench 'OMNIIngestLogs$|OMNIIngestLogsWAL$|OMNIIngestLogsParallel$|SustainedBytes$|ShardedIngest/|TenantIngest/|Fig5Query$|Fig8Query$|WALRecovery$' \
  -benchtime "$BENCHTIME" . | tee "$RAW"

# The query-frontend pair: monolithic vs frontend-split (cache off) vs
# warm results cache, on the default GOMAXPROCS.
go test -run '^$' -bench 'Fig5QueryRange/' -benchtime "$RANGE_BENCHTIME" . | tee -a "$RAW"

# QueryScaling series: the split-parallel cold path across GOMAXPROCS.
# Go appends -N to the bench name for every -cpu value except 1; rewrite
# both shapes to QueryScaling/gomaxprocs=N before the parser (which
# strips trailing -N suffixes) sees them.
go test -run '^$' -bench 'Fig5QueryRange/cold$' -benchtime "$RANGE_BENCHTIME" -cpu 1,2,4,8 . \
  | sed -E 's|^BenchmarkFig5QueryRange/cold-([0-9]+)\b|BenchmarkQueryScaling/gomaxprocs=\1|; s|^BenchmarkFig5QueryRange/cold\b|BenchmarkQueryScaling/gomaxprocs=1|' \
  | tee -a "$RAW"

awk -v mode="$MODE" '
BEGIN { n = 0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
  sub(/^Benchmark/, "", name)
  ns = ""; bpo = ""; apo = ""; mbs = ""; scan = ""; hit = ""; eps = ""; msr = ""
  for (i = 2; i < NF; i++) {
    if ($(i+1) == "ns/op")   ns  = $i
    if ($(i+1) == "B/op")    bpo = $i
    if ($(i+1) == "allocs/op") apo = $i
    if ($(i+1) == "MB/s")    mbs = $i
    if ($(i+1) == "bytes-scanned")   scan = $i
    if ($(i+1) == "cache-hit-ratio") hit  = $i
    if ($(i+1) == "entries/s")       eps  = $i
    if ($(i+1) == "ms/recovery")     msr  = $i
  }
  if (ns == "") next
  # msgs/s: ingest benches are one message per op, except ShardedIngest
  # which pushes the whole 4096-message corpus per op.
  msgs = ""
  if (name ~ /^OMNIIngestLogs/ || name == "SustainedBytes") msgs = 1e9 / ns
  if (name ~ /^ShardedIngest/) msgs = 4096 * 1e9 / ns
  if (name ~ /^TenantIngest/) msgs = 1e9 / ns
  line = sprintf("  {\"bench\": \"%s\", \"ns_per_op\": %s", name, ns)
  if (bpo != "")  line = line sprintf(", \"bytes_per_op\": %s", bpo)
  if (apo != "")  line = line sprintf(", \"allocs_per_op\": %s", apo)
  if (mbs != "")  line = line sprintf(", \"mb_per_s\": %s", mbs)
  if (msgs != "") line = line sprintf(", \"msgs_per_s\": %.0f", msgs)
  if (scan != "") line = line sprintf(", \"bytes_scanned_per_op\": %s", scan)
  if (hit != "")  line = line sprintf(", \"cache_hit_ratio\": %s", hit)
  if (eps != "")  line = line sprintf(", \"replay_entries_per_s\": %s", eps)
  if (msr != "")  line = line sprintf(", \"recovery_ms\": %s", msr)
  line = line "}"
  rows[n++] = line
}
END {
  printf "{\n\"mode\": \"%s\",\n\"results\": [\n", mode
  for (i = 0; i < n; i++) printf "%s%s\n", rows[i], (i < n-1 ? "," : "")
  print "]\n}"
}' "$RAW" > "$OUT"

echo "wrote $OUT"

# Detection latency (emit -> first delivery) p50/p95/max for the leak and
# switch-offline scenarios, measured on the simulated clock by the
# pipeline's own SLO tracker (internal/experiments.LatencyJSON). The
# artifact also embeds the early-warning race under "early_warning":
# per-cabinet drift-onset -> delivery seconds for the predictive roc
# rule vs the paper's static leak rule, with the p50 lead.
LATOUT=BENCH_latency.json
go run ./cmd/experiments -run latency_json -out "$LATOUT" > /dev/null
echo "wrote $LATOUT"
