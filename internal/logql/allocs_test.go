package logql

import (
	"fmt"
	"testing"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

// TestSelectLogsAllocsPerEntry pins the transition-cached group-key
// optimisation: when a stream's pipeline emits the same label set for
// every entry, SelectLogs must not pay a per-entry fingerprint or map
// lookup. The old implementation built lbls.String() per entry (~1+
// allocs/entry); the regression bound here fails if that behaviour
// returns.
func TestSelectLogsAllocsPerEntry(t *testing.T) {
	s := newTestStore(t)
	const n = 2000
	ls := labels.FromStrings("app", "x")
	entries := make([]loki.Entry, n)
	for i := range entries {
		entries[i] = loki.Entry{Timestamp: int64(i) * 1e6, Line: fmt.Sprintf("event %06d keep", i)}
	}
	mustPush(t, s, ls, entries...)
	eng := NewEngine(s)
	eng.SetParallelism(1) // deterministic alloc counting

	expr, err := ParseLogExpr(`{app="x"} |= "keep"`)
	if err != nil {
		t.Fatal(err)
	}
	// Warm once so lazily-built state doesn't count.
	if res, err := eng.SelectLogs(expr, 0, 1<<62); err != nil || len(res) != 1 || len(res[0].Entries) != n {
		t.Fatalf("warmup: %v %+v", err, res)
	}

	allocs := testing.AllocsPerRun(5, func() {
		res, err := eng.SelectLogs(expr, 0, 1<<62)
		if err != nil || len(res[0].Entries) != n {
			t.Fatalf("select: %v", err)
		}
	})
	// Growing the single result slice to 2000 entries costs O(log n)
	// allocations; per-entry keying would cost >= n. Anything near n/10
	// means the per-entry group key is back.
	if allocs > n/10 {
		t.Fatalf("SelectLogs allocated %.0f per query for %d entries; per-entry group keying has regressed", allocs, n)
	}
}
