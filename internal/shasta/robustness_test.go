package shasta

import (
	"testing"
	"testing/quick"
)

// Property: ParseXname never panics and never returns both a valid Xname
// with Kind==KindInvalid and a nil error.
func TestPropertyParseXnameNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		x, err := ParseXname(input)
		if err == nil && x.Kind == KindInvalid {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
