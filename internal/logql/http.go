package logql

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/stats"
)

// Handler exposes the Loki query API over this engine:
//
//	GET /loki/api/v1/query?query=...&time=<ns>          instant (metric queries)
//	GET /loki/api/v1/query_range?query=...&start=<ns>&end=<ns>&step=<seconds>
//
// Log queries on query_range return resultType "streams"; metric queries
// return "matrix" — matching Loki's response envelope. Every response
// carries a Loki-style `statistics` object in `data` plus a Server-Timing
// header summarising queue/exec/total time and scan volume. When a
// tracker is attached (SetTracker) the query is registered on
// /debug/queries, limit-armed and killable for its duration.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/loki/api/v1/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		ts, err := parseNS(r.URL.Query().Get("time"), time.Now().UnixNano())
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		expr, err := ParseExpr(q)
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		me, ok := expr.(MetricExpr)
		if !ok {
			writeLogQLError(w, http.StatusBadRequest, fmt.Errorf("instant queries require a metric expression"))
			return
		}
		ctx, finish := e.tracker.Start(r.Context(), "logql", q)
		vec, err := e.InstantContext(ctx, me, ts)
		stats.FromContext(ctx).AddEntriesReturned(int64(len(vec)))
		snap := finish(err)
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		result := make([]map[string]interface{}, 0, len(vec))
		for _, s := range vec {
			result = append(result, map[string]interface{}{
				"metric": s.Labels.Map(),
				"value":  []interface{}{float64(s.T) / 1e9, strconv.FormatFloat(s.V, 'g', -1, 64)},
			})
		}
		writeLogQLJSON(w, "vector", result, snap)
	})
	mux.HandleFunc("/loki/api/v1/query_range", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		now := time.Now().UnixNano()
		start, err := parseNS(r.URL.Query().Get("start"), now-int64(time.Hour))
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		end, err := parseNS(r.URL.Query().Get("end"), now)
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		expr, err := ParseExpr(q)
		if err != nil {
			writeLogQLError(w, http.StatusBadRequest, err)
			return
		}
		switch ex := expr.(type) {
		case *LogExpr:
			ctx, finish := e.tracker.Start(r.Context(), "logql", q)
			streams, err := e.SelectLogsContext(ctx, ex, start, end)
			snap := finish(err)
			if err != nil {
				writeLogQLError(w, http.StatusBadRequest, err)
				return
			}
			result := make([]map[string]interface{}, 0, len(streams))
			for _, s := range streams {
				values := make([][2]string, 0, len(s.Entries))
				for _, entry := range s.Entries {
					values = append(values, [2]string{strconv.FormatInt(entry.Timestamp, 10), entry.Line})
				}
				result = append(result, map[string]interface{}{
					"stream": s.Labels.Map(),
					"values": values,
				})
			}
			writeLogQLJSON(w, "streams", result, snap)
		case MetricExpr:
			stepS := r.URL.Query().Get("step")
			if stepS == "" {
				stepS = "60"
			}
			stepF, err := strconv.ParseFloat(stepS, 64)
			if err != nil || stepF <= 0 {
				writeLogQLError(w, http.StatusBadRequest, fmt.Errorf("bad step %q", stepS))
				return
			}
			ctx, finish := e.tracker.Start(r.Context(), "logql", q)
			if v := r.URL.Query().Get("nocache"); v == "1" || v == "true" {
				ctx = frontend.WithoutCache(ctx)
			}
			m, err := e.RangeContext(ctx, ex, start, end, time.Duration(stepF*float64(time.Second)))
			points := 0
			for _, s := range m {
				points += len(s.Points)
			}
			stats.FromContext(ctx).AddEntriesReturned(int64(points))
			snap := finish(err)
			if err != nil {
				code := http.StatusBadRequest
				if errors.Is(err, stats.ErrQueueFull) {
					code = http.StatusTooManyRequests
				}
				writeLogQLError(w, code, err)
				return
			}
			result := make([]map[string]interface{}, 0, len(m))
			for _, s := range m {
				values := make([][2]interface{}, 0, len(s.Points))
				for _, p := range s.Points {
					values = append(values, [2]interface{}{float64(p.T) / 1e9, strconv.FormatFloat(p.V, 'g', -1, 64)})
				}
				result = append(result, map[string]interface{}{
					"metric": s.Labels.Map(),
					"values": values,
				})
			}
			writeLogQLJSON(w, "matrix", result, snap)
		}
	})
	return mux
}

func parseNS(s string, def int64) (int64, error) {
	if s == "" {
		return def, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("logql: bad nanosecond timestamp %q", s)
	}
	return n, nil
}

func writeLogQLJSON(w http.ResponseWriter, resultType string, result interface{}, snap stats.Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Server-Timing", snap.ServerTiming())
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"status": "success",
		"data": map[string]interface{}{
			"resultType": resultType,
			"result":     result,
			"statistics": snap,
		},
	})
}

func writeLogQLError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]interface{}{"status": "error", "error": err.Error()})
}
