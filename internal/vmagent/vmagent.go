// Package vmagent implements the scraper of the paper's metrics pipeline:
// "VMagent collects metrics from all the Prometheus-style exporters and
// sends data to VictoriaMetrics." It scrapes /metrics endpoints on an
// interval, attaches job/instance labels, and appends to the tsdb.
package vmagent

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
	"shastamon/internal/tsdb"
)

// RelabelAction selects what a relabel rule does.
type RelabelAction string

// Relabel actions, the subset of Prometheus relabeling vmagent supports
// here: filtering series and rewriting label values at scrape time.
const (
	RelabelKeep      RelabelAction = "keep"      // drop series whose SourceLabel does not match Regex
	RelabelDrop      RelabelAction = "drop"      // drop series whose SourceLabel matches Regex
	RelabelReplace   RelabelAction = "replace"   // set TargetLabel to Replacement ($1... from Regex on SourceLabel)
	RelabelLabelDrop RelabelAction = "labeldrop" // remove labels whose NAME matches Regex
)

// RelabelConfig is one metric relabeling rule applied after a scrape.
type RelabelConfig struct {
	Action      RelabelAction
	SourceLabel string // label to match ("__name__" for the metric name)
	Regex       string
	TargetLabel string // for replace
	Replacement string // for replace; $1 etc. expand from Regex
}

// ScrapeConfig is one scrape job.
type ScrapeConfig struct {
	JobName        string
	Targets        []string // full URLs including path, e.g. http://host/metrics
	MetricRelabels []RelabelConfig
}

type compiledRelabel struct {
	cfg RelabelConfig
	re  *regexp.Regexp
}

type compiledJob struct {
	cfg      ScrapeConfig
	relabels []compiledRelabel
}

// Agent scrapes targets and remote-writes into a DB.
type Agent struct {
	db     *tsdb.DB
	client *http.Client
	jobs   []compiledJob

	obsOnce sync.Once
	obsReg  *obs.Registry

	mu    sync.Mutex
	stats Stats
}

// Stats counts scrape outcomes.
type Stats struct {
	Scrapes  int64
	Failures int64
	Samples  int64
}

// New returns an agent writing to db; nil client gets a 10s timeout.
func New(db *tsdb.DB, client *http.Client, jobs ...ScrapeConfig) (*Agent, error) {
	if db == nil {
		return nil, fmt.Errorf("vmagent: db required")
	}
	compiled := make([]compiledJob, 0, len(jobs))
	for _, j := range jobs {
		if j.JobName == "" || len(j.Targets) == 0 {
			return nil, fmt.Errorf("vmagent: job needs a name and targets: %+v", j)
		}
		cj := compiledJob{cfg: j}
		for _, rc := range j.MetricRelabels {
			re, err := regexp.Compile("^(?:" + rc.Regex + ")$")
			if err != nil {
				return nil, fmt.Errorf("vmagent: job %s relabel regex %q: %w", j.JobName, rc.Regex, err)
			}
			switch rc.Action {
			case RelabelKeep, RelabelDrop, RelabelLabelDrop:
			case RelabelReplace:
				if rc.TargetLabel == "" {
					return nil, fmt.Errorf("vmagent: replace relabel needs a target label")
				}
			default:
				return nil, fmt.Errorf("vmagent: unknown relabel action %q", rc.Action)
			}
			cj.relabels = append(cj.relabels, compiledRelabel{cfg: rc, re: re})
		}
		compiled = append(compiled, cj)
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{db: db, client: client, jobs: compiled}, nil
}

// applyRelabels transforms one sample; the returned bool is false when the
// series is dropped.
func applyRelabels(rules []compiledRelabel, name string, ls labels.Labels) (string, labels.Labels, bool) {
	get := func(label string) string {
		if label == tsdb.MetricNameLabel {
			return name
		}
		return ls.Get(label)
	}
	for _, r := range rules {
		switch r.cfg.Action {
		case RelabelKeep:
			if !r.re.MatchString(get(r.cfg.SourceLabel)) {
				return name, ls, false
			}
		case RelabelDrop:
			if r.re.MatchString(get(r.cfg.SourceLabel)) {
				return name, ls, false
			}
		case RelabelReplace:
			src := get(r.cfg.SourceLabel)
			m := r.re.FindStringSubmatchIndex(src)
			if m == nil {
				continue
			}
			val := string(r.re.ExpandString(nil, r.cfg.Replacement, src, m))
			if r.cfg.TargetLabel == tsdb.MetricNameLabel {
				name = val
			} else {
				ls = ls.With(r.cfg.TargetLabel, val)
			}
		case RelabelLabelDrop:
			kept := ls[:0:0]
			for _, l := range ls {
				if !r.re.MatchString(l.Name) {
					kept = append(kept, l)
				}
			}
			ls = kept
		}
	}
	return name, ls, true
}

// ScrapeOnce scrapes every target once at the given timestamp (ms applied
// to samples without explicit timestamps). Each target also gets an `up`
// sample: 1 on success, 0 on failure, which the paper's availability
// alerts key on.
func (a *Agent) ScrapeOnce(ts time.Time) error {
	var firstErr error
	for i := range a.jobs {
		for _, target := range a.jobs[i].cfg.Targets {
			if err := a.scrapeTarget(&a.jobs[i], target, ts); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (a *Agent) scrapeTarget(cj *compiledJob, target string, ts time.Time) error {
	job := cj.cfg.JobName
	ms := ts.UnixMilli()
	base := labels.FromStrings("job", job, "instance", target)
	bump := func(fail bool) {
		a.mu.Lock()
		a.stats.Scrapes++
		if fail {
			a.stats.Failures++
		}
		a.mu.Unlock()
	}
	resp, err := a.client.Get(target)
	if err != nil {
		bump(true)
		_ = a.db.AppendMetric("up", base, ms, 0)
		return fmt.Errorf("vmagent: scrape %s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		bump(true)
		_ = a.db.AppendMetric("up", base, ms, 0)
		return fmt.Errorf("vmagent: scrape %s: status %d", target, resp.StatusCode)
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		bump(true)
		_ = a.db.AppendMetric("up", base, ms, 0)
		return fmt.Errorf("vmagent: scrape %s: %w", target, err)
	}
	bump(false)
	n := int64(0)
	for _, m := range promtext.Samples(fams) {
		sampleTS := ms
		if m.Timestamp != 0 {
			sampleTS = m.Timestamp
		}
		name, lbls, keep := applyRelabels(cj.relabels, m.Name, m.Labels)
		if !keep {
			continue
		}
		ls := lbls.With("job", job).With("instance", target)
		if err := a.db.AppendMetric(name, ls, sampleTS, m.Value); err == nil {
			n++
		}
	}
	_ = a.db.AppendMetric("up", base, ms, 1)
	_ = a.db.AppendMetric("scrape_samples_scraped", base, ms, float64(n))
	a.mu.Lock()
	a.stats.Samples += n
	a.mu.Unlock()
	return nil
}

// Stats returns scrape counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Run scrapes on the interval until the context is cancelled. Scrape
// errors are counted, not fatal: a down exporter must simply record up=0.
func (a *Agent) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			_ = a.ScrapeOnce(now)
		}
	}
}
