package servicenow

import (
	"strings"
	"testing"
)

func mapInstance(t *testing.T) *Instance {
	t.Helper()
	sn, _ := testInstance()
	sn.LoadCMDB(
		CI{Name: "sw1", Class: "cmdb_ci_netgear"},
		CI{Name: "n1", Class: "cmdb_ci_computer"},
		CI{Name: "n2", Class: "cmdb_ci_computer"},
		CI{Name: "job-svc", Class: "cmdb_ci_service"},
	)
	if err := sn.AddDependency("n1", "sw1"); err != nil {
		t.Fatal(err)
	}
	if err := sn.AddDependency("n2", "sw1"); err != nil {
		t.Fatal(err)
	}
	if err := sn.AddDependency("job-svc", "n1"); err != nil {
		t.Fatal(err)
	}
	return sn
}

func TestDependencyValidation(t *testing.T) {
	sn, _ := testInstance()
	sn.LoadCMDB(CI{Name: "a"}, CI{Name: "b"})
	if err := sn.AddDependency("a", "ghost"); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := sn.AddDependency("ghost", "a"); err == nil {
		t.Fatal("unknown source accepted")
	}
	if err := sn.AddDependency("a", "a"); err == nil {
		t.Fatal("self dependency accepted")
	}
	// Duplicate adds are idempotent.
	_ = sn.AddDependency("a", "b")
	_ = sn.AddDependency("a", "b")
	if got := sn.Dependents("b"); len(got) != 1 {
		t.Fatalf("%v", got)
	}
}

func TestImpactedCIsTransitive(t *testing.T) {
	sn := mapInstance(t)
	got := sn.ImpactedCIs("sw1")
	want := []string{"job-svc", "n1", "n2"}
	if len(got) != len(want) {
		t.Fatalf("impacted: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("impacted: %v", got)
		}
	}
	if len(sn.ImpactedCIs("n2")) != 0 {
		t.Fatalf("leaf should impact nothing: %v", sn.ImpactedCIs("n2"))
	}
}

func TestServiceMapRender(t *testing.T) {
	sn := mapInstance(t)
	out, err := sn.ServiceMap("sw1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sw1 (cmdb_ci_netgear)", "  n1 (cmdb_ci_computer)", "    job-svc (cmdb_ci_service)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("map missing %q:\n%s", want, out)
		}
	}
	if _, err := sn.ServiceMap("ghost"); err == nil {
		t.Fatal("unknown root accepted")
	}
}

func TestServiceMapCycleSafe(t *testing.T) {
	sn, _ := testInstance()
	sn.LoadCMDB(CI{Name: "a"}, CI{Name: "b"})
	_ = sn.AddDependency("a", "b")
	_ = sn.AddDependency("b", "a") // cycle
	out, err := sn.ServiceMap("a")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "a (") > 2 {
		t.Fatalf("unbounded recursion:\n%s", out)
	}
	// Impact with a cycle terminates and includes both.
	if got := sn.ImpactedCIs("a"); len(got) != 2 {
		t.Fatalf("%v", got)
	}
}

func TestIncidentCarriesImpactNote(t *testing.T) {
	sn := mapInstance(t)
	_, err := sn.PostEvent(Event{Source: "am", Node: "sw1", Type: "SwitchOffline", Severity: SeverityCritical})
	if err != nil {
		t.Fatal(err)
	}
	incs := sn.Incidents()
	if len(incs) != 1 || len(incs[0].WorkNotes) != 1 {
		t.Fatalf("%+v", incs)
	}
	if !strings.Contains(incs[0].WorkNotes[0], "3 dependent CI(s)") {
		t.Fatalf("note: %q", incs[0].WorkNotes[0])
	}
}
