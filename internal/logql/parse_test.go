package logql

import (
	"strings"
	"testing"
	"time"
)

func TestParseLogSelector(t *testing.T) {
	e, err := ParseLogExpr(`{data_type="redfish_event", cluster=~"perl.*"}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Selector) != 2 {
		t.Fatalf("selector %v", e.Selector)
	}
	if len(e.Stages) != 0 {
		t.Fatal("unexpected stages")
	}
}

func TestParseEmptySelector(t *testing.T) {
	e, err := ParseLogExpr(`{}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Selector) != 0 {
		t.Fatal("expected empty selector")
	}
}

func TestParseLineFilters(t *testing.T) {
	e, err := ParseLogExpr(`{a="b"} |= "yes" != "no" |~ "re.*" !~ "nre"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Stages) != 4 {
		t.Fatalf("stages: %d", len(e.Stages))
	}
}

func TestParsePipelineStages(t *testing.T) {
	q := `{a="b"} | json | logfmt | pattern "<x>:<y>" | regexp "(?P<n>\\d+)" | severity="Warning" | value > 5 | line_format "{{.x}}" | label_format dst=src`
	e, err := ParseLogExpr(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Stages) != 8 {
		t.Fatalf("stages: %d: %s", len(e.Stages), e)
	}
}

// The paper's Fig. 5 query, verbatim.
func TestParsePaperFig5Query(t *testing.T) {
	q := `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, context, message_id, message)`
	e, err := ParseMetricExpr(q)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := e.(*VectorAggExpr)
	if !ok {
		t.Fatalf("not a vector agg: %T", e)
	}
	if agg.Op != "sum" || agg.Without || len(agg.Grouping) != 5 {
		t.Fatalf("agg: %+v", agg)
	}
	ra, ok := agg.Inner.(*RangeAggExpr)
	if !ok || ra.Op != OpCountOverTime || ra.Interval != time.Hour {
		t.Fatalf("inner: %+v", agg.Inner)
	}
	if len(ra.Log.Stages) != 2 {
		t.Fatalf("log stages: %d", len(ra.Log.Stages))
	}
}

// The paper's Fig. 8 rule expression shape.
func TestParsePaperFig8Query(t *testing.T) {
	q := `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (severity, problem, xname, state) > 0`
	e, err := ParseMetricExpr(q)
	if err != nil {
		t.Fatal(err)
	}
	cmp, ok := e.(*CmpExpr)
	if !ok || cmp.Op != CmpGT || cmp.Threshold != 0 {
		t.Fatalf("cmp: %+v", e)
	}
}

func TestParseGroupingBeforeParens(t *testing.T) {
	e, err := ParseMetricExpr(`sum by (xname) (rate({a="b"}[1m]))`)
	if err != nil {
		t.Fatal(err)
	}
	agg := e.(*VectorAggExpr)
	if len(agg.Grouping) != 1 || agg.Grouping[0] != "xname" {
		t.Fatalf("%+v", agg)
	}
}

func TestParseWithout(t *testing.T) {
	e, err := ParseMetricExpr(`avg without (node) (count_over_time({a="b"}[1m]))`)
	if err != nil {
		t.Fatal(err)
	}
	agg := e.(*VectorAggExpr)
	if !agg.Without {
		t.Fatal("without flag unset")
	}
}

func TestParseTopK(t *testing.T) {
	e, err := ParseMetricExpr(`topk(3, count_over_time({a="b"}[1m]))`)
	if err != nil {
		t.Fatal(err)
	}
	agg := e.(*VectorAggExpr)
	if agg.Param != 3 || agg.Op != "topk" {
		t.Fatalf("%+v", agg)
	}
}

func TestParseUnwrap(t *testing.T) {
	e, err := ParseMetricExpr(`sum_over_time({a="b"} | logfmt | unwrap bytes [5m])`)
	if err != nil {
		t.Fatal(err)
	}
	ra := e.(*RangeAggExpr)
	if ra.Unwrap != "bytes" {
		t.Fatalf("unwrap %q", ra.Unwrap)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`{a=}`,
		`{a="b"`,
		`{a="b"} |`,
		`{a="b"} | bogus_stage_name ???`,
		`count_over_time({a="b"})`,         // missing range
		`sum(count_over_time({a="b"}[1m])`, // unbalanced
		`sum_over_time({a="b"} [5m])`,      // unwrap required
		`count_over_time({a="b"} | unwrap x [5m])`, // unwrap not allowed
		`nosuchfunc({a="b"}[1m])`,
		`{a="b"} trailing`,
		`sum(count_over_time({a="b"}[1m])) by ()`,
		`topk(0, count_over_time({a="b"}[1m]))`,
		`{a="b"} |= "x" > 5`,
	}
	for _, q := range bad {
		if _, err := ParseExpr(q); err == nil {
			t.Errorf("no error for %q", q)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	queries := []string{
		`{data_type="redfish_event"} |= "CabinetLeakDetected" | json`,
		`sum(count_over_time({a="b"} [60m])) by (severity)`,
		`rate({app="fm"} [5m]) > 0`,
	}
	for _, q := range queries {
		e, err := ParseExpr(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		// Re-parse the rendered form; it must parse and render identically.
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", e.String(), err)
		}
		if e.String() != e2.String() {
			t.Fatalf("unstable render: %q vs %q", e.String(), e2.String())
		}
	}
}

func TestParseMetricVsLogMismatch(t *testing.T) {
	if _, err := ParseLogExpr(`rate({a="b"}[1m])`); err == nil || !strings.Contains(err.Error(), "metric query") {
		t.Fatalf("err = %v", err)
	}
	if _, err := ParseMetricExpr(`{a="b"}`); err == nil || !strings.Contains(err.Error(), "log query") {
		t.Fatalf("err = %v", err)
	}
}
