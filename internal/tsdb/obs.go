package tsdb

import (
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the DB's self-monitoring registry, derived at
// gather time from Stats() so Append pays no extra accounting cost.
func (db *DB) Metrics() *obs.Registry {
	db.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := db.Stats()
			tenantSeries := promtext.Family{Name: obs.Namespace + "tsdb_tenant_series",
				Help: "Live time series, by tenant.", Type: "gauge"}
			tenantSamples := promtext.Family{Name: obs.Namespace + "tsdb_tenant_samples_appended_total",
				Help: "Samples accepted by Append, by tenant.", Type: "counter"}
			for _, t := range db.TenantStats() {
				tenantSeries = obs.Sample(tenantSeries, float64(t.Series), "tenant", t.Tenant)
				tenantSamples = obs.Sample(tenantSamples, float64(t.Samples), "tenant", t.Tenant)
			}
			return []promtext.Family{
				obs.Fam("gauge", obs.Namespace+"tsdb_series",
					"Live time series in the store.", float64(st.Series)),
				obs.Fam("counter", obs.Namespace+"tsdb_samples_appended_total",
					"Samples accepted by Append.", float64(st.Samples)),
				obs.Fam("counter", obs.Namespace+"tsdb_samples_dropped_total",
					"Samples rejected as out of order.", float64(st.Dropped)),
				obs.Fam("gauge", obs.Namespace+"tsdb_query_parallelism",
					"In-flight parallel series-query workers.", float64(db.QueryParallelism())),
				tenantSeries,
				tenantSamples,
			}
		})
		db.obsReg = reg
	})
	return db.obsReg
}
