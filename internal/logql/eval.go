package logql

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

// Querier is the storage interface the engine reads from; *loki.Store
// implements it.
type Querier interface {
	Select(sel []*labels.Matcher, mint, maxt int64) ([]loki.SelectedStream, error)
}

// Sample is one metric query result value.
type Sample struct {
	Labels labels.Labels
	T      int64 // Unix nanoseconds
	V      float64
}

// Vector is an instant query result.
type Vector []Sample

// Point is one (timestamp, value) of a range query series.
type Point struct {
	T int64
	V float64
}

// Series is a labelled sequence of points.
type Series struct {
	Labels labels.Labels
	Points []Point
}

// Matrix is a range query result.
type Matrix []Series

// ResultStream is a log query result: output labels (stream labels plus
// any parser-extracted ones) and matching entries.
type ResultStream struct {
	Labels  labels.Labels
	Entries []loki.Entry
}

// Engine evaluates parsed LogQL expressions against a Querier.
type Engine struct {
	q Querier
}

// NewEngine returns an engine reading from q.
func NewEngine(q Querier) *Engine { return &Engine{q: q} }

// SelectLogs runs a log query over [start, end] (ns, inclusive). Entries
// are regrouped by their post-pipeline label sets.
func (e *Engine) SelectLogs(expr *LogExpr, start, end int64) ([]ResultStream, error) {
	streams, err := e.q.Select(expr.Selector, start, end)
	if err != nil {
		return nil, err
	}
	groups := map[string]*ResultStream{}
	var order []string
	for _, s := range streams {
		for _, entry := range s.Entries {
			line, lbls, ok := runPipeline(expr.Stages, entry.Line, s.Labels)
			if !ok {
				continue
			}
			key := lbls.String()
			g, exists := groups[key]
			if !exists {
				g = &ResultStream{Labels: lbls}
				groups[key] = g
				order = append(order, key)
			}
			g.Entries = append(g.Entries, loki.Entry{Timestamp: entry.Timestamp, Line: line})
		}
	}
	sort.Strings(order)
	out := make([]ResultStream, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		sort.SliceStable(g.Entries, func(i, j int) bool { return g.Entries[i].Timestamp < g.Entries[j].Timestamp })
		out = append(out, *g)
	}
	return out, nil
}

// Instant evaluates a metric expression at a single timestamp.
func (e *Engine) Instant(expr Expr, ts int64) (Vector, error) {
	switch ex := expr.(type) {
	case *RangeAggExpr:
		return e.evalRangeAgg(ex, ts)
	case *VectorAggExpr:
		return e.evalVectorAgg(ex, ts)
	case *CmpExpr:
		inner, err := e.Instant(ex.Inner, ts)
		if err != nil {
			return nil, err
		}
		out := inner[:0]
		for _, s := range inner {
			if ex.Op.apply(s.V, ex.Threshold) {
				out = append(out, s)
			}
		}
		return out, nil
	case *LogExpr:
		return nil, fmt.Errorf("logql: %q is a log query; use SelectLogs", ex)
	default:
		return nil, fmt.Errorf("logql: unsupported expression %T", expr)
	}
}

// Range evaluates a metric expression over [start, end] at the given step,
// producing one series per distinct label set.
func (e *Engine) Range(expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	if step <= 0 {
		return nil, fmt.Errorf("logql: step must be positive")
	}
	seriesByKey := map[string]*Series{}
	var order []string
	for ts := start; ts <= end; ts += int64(step) {
		vec, err := e.Instant(expr, ts)
		if err != nil {
			return nil, err
		}
		for _, s := range vec {
			key := s.Labels.String()
			sr, ok := seriesByKey[key]
			if !ok {
				sr = &Series{Labels: s.Labels}
				seriesByKey[key] = sr
				order = append(order, key)
			}
			sr.Points = append(sr.Points, Point{T: ts, V: s.V})
		}
	}
	sort.Strings(order)
	m := make(Matrix, 0, len(order))
	for _, key := range order {
		m = append(m, *seriesByKey[key])
	}
	return m, nil
}

func (e *Engine) evalRangeAgg(ex *RangeAggExpr, ts int64) (Vector, error) {
	mint := ts - int64(ex.Interval) + 1
	maxt := ts
	streams, err := e.q.Select(ex.Log.Selector, mint, maxt)
	if err != nil {
		return nil, err
	}
	type acc struct {
		labels labels.Labels
		count  float64
		bytes  float64
		sum    float64
		min    float64
		max    float64
		vals   float64 // count of unwrapped values
	}
	groups := map[string]*acc{}
	var order []string
	total := 0
	for _, s := range streams {
		for _, entry := range s.Entries {
			line, lbls, ok := runPipeline(ex.Log.Stages, entry.Line, s.Labels)
			if !ok {
				continue
			}
			total++
			var val float64
			hasVal := false
			if ex.Unwrap != "" {
				v, err := strconv.ParseFloat(lbls.Get(ex.Unwrap), 64)
				if err != nil {
					continue // skip entries whose unwrap label is not numeric
				}
				val, hasVal = v, true
				lbls = lbls.Without(ex.Unwrap)
			}
			key := lbls.String()
			g, exists := groups[key]
			if !exists {
				g = &acc{labels: lbls}
				groups[key] = g
				order = append(order, key)
			}
			g.count++
			g.bytes += float64(len(line))
			if hasVal {
				if g.vals == 0 || val < g.min {
					g.min = val
				}
				if g.vals == 0 || val > g.max {
					g.max = val
				}
				g.sum += val
				g.vals++
			}
		}
	}
	if ex.Op == OpAbsentOverTime {
		if total > 0 {
			return nil, nil
		}
		// Absent vector carries the equality matchers as labels, like PromQL.
		b := labels.NewBuilder(nil)
		for _, m := range ex.Log.Selector {
			if m.Type == labels.MatchEqual {
				b.Set(m.Name, m.Value)
			}
		}
		return Vector{{Labels: b.Labels(), T: ts, V: 1}}, nil
	}
	secs := ex.Interval.Seconds()
	sort.Strings(order)
	out := make(Vector, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		var v float64
		switch ex.Op {
		case OpCountOverTime:
			v = g.count
		case OpRate:
			v = g.count / secs
		case OpBytesOverTime:
			v = g.bytes
		case OpBytesRate:
			v = g.bytes / secs
		case OpSumOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.sum
		case OpAvgOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.sum / g.vals
		case OpMaxOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.max
		case OpMinOverTime:
			if g.vals == 0 {
				continue
			}
			v = g.min
		default:
			return nil, fmt.Errorf("logql: unsupported range op %q", ex.Op)
		}
		out = append(out, Sample{Labels: g.labels, T: ts, V: v})
	}
	return out, nil
}

func (e *Engine) evalVectorAgg(ex *VectorAggExpr, ts int64) (Vector, error) {
	inner, err := e.Instant(ex.Inner, ts)
	if err != nil {
		return nil, err
	}
	groupLabels := func(ls labels.Labels) labels.Labels {
		if ex.Without {
			return ls.Without(ex.Grouping...)
		}
		if len(ex.Grouping) == 0 {
			return nil
		}
		return ls.Keep(ex.Grouping...)
	}
	if ex.Op == "topk" || ex.Op == "bottomk" {
		return evalTopK(ex, inner, groupLabels), nil
	}
	type acc struct {
		labels labels.Labels
		sum    float64
		min    float64
		max    float64
		count  float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, s := range inner {
		gl := groupLabels(s.Labels)
		key := gl.String()
		g, ok := groups[key]
		if !ok {
			g = &acc{labels: gl, min: s.V, max: s.V}
			groups[key] = g
			order = append(order, key)
		}
		g.sum += s.V
		g.count++
		if s.V < g.min {
			g.min = s.V
		}
		if s.V > g.max {
			g.max = s.V
		}
	}
	sort.Strings(order)
	out := make(Vector, 0, len(groups))
	for _, key := range order {
		g := groups[key]
		var v float64
		switch ex.Op {
		case "sum":
			v = g.sum
		case "min":
			v = g.min
		case "max":
			v = g.max
		case "avg":
			v = g.sum / g.count
		case "count":
			v = g.count
		default:
			return nil, fmt.Errorf("logql: unsupported aggregation %q", ex.Op)
		}
		out = append(out, Sample{Labels: g.labels, T: ts, V: v})
	}
	return out, nil
}

func evalTopK(ex *VectorAggExpr, inner Vector, groupLabels func(labels.Labels) labels.Labels) Vector {
	// Samples keep their original labels; k applies per group.
	groups := map[string][]Sample{}
	var order []string
	for _, s := range inner {
		key := groupLabels(s.Labels).String()
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], s)
	}
	sort.Strings(order)
	var out Vector
	for _, key := range order {
		ss := groups[key]
		sort.SliceStable(ss, func(i, j int) bool {
			if ex.Op == "topk" {
				return ss[i].V > ss[j].V
			}
			return ss[i].V < ss[j].V
		})
		k := ex.Param
		if k > len(ss) {
			k = len(ss)
		}
		out = append(out, ss[:k]...)
	}
	return out
}

// QueryLogs parses and runs a log query.
func (e *Engine) QueryLogs(q string, start, end int64) ([]ResultStream, error) {
	expr, err := ParseLogExpr(q)
	if err != nil {
		return nil, err
	}
	return e.SelectLogs(expr, start, end)
}

// QueryInstant parses and runs a metric query at ts.
func (e *Engine) QueryInstant(q string, ts int64) (Vector, error) {
	expr, err := ParseMetricExpr(q)
	if err != nil {
		return nil, err
	}
	return e.Instant(expr, ts)
}

// QueryRange parses and runs a metric query over a range.
func (e *Engine) QueryRange(q string, start, end int64, step time.Duration) (Matrix, error) {
	expr, err := ParseMetricExpr(q)
	if err != nil {
		return nil, err
	}
	return e.Range(expr, start, end, step)
}
