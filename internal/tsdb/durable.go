// Durability for the TSDB head: the metrics half of the warehouse gets
// the same WAL + checkpoint treatment as the log store, minus chunk spill
// (series are flat sample slices, snapshotted whole into the checkpoint).
//
// Data layout under the DB's directory:
//
//	wal/shard-NN/00000001.wal   per-shard segmented log
//	checkpoint.json             series snapshot + WAL cut points
//	CLEAN                       marker: last shutdown checkpointed cleanly
package tsdb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"shastamon/internal/labels"
	"shastamon/internal/resilience"
	"shastamon/internal/tenant"
	"shastamon/internal/wal"
)

const (
	checkpointFile = "checkpoint.json"
	cleanMarker    = "CLEAN"
	walDirName     = "wal"
)

type durability struct {
	dir   string
	d     *wal.Durable
	opt   wal.StoreOptions
	armed atomic.Bool
}

// RecoveryInfo summarises what EnableDurability reconstructed.
type RecoveryInfo struct {
	Clean      bool
	Checkpoint bool
	Series     int
	Replayed   int
	Corrupt    int
}

type ckptSeries struct {
	Labels  [][2]string `json:"labels"`
	Tenant  string      `json:"tenant,omitempty"` // empty = default tenant
	Samples []byte      `json:"samples"`          // binary sample codec, base64 via JSON
}

type ckptFile struct {
	Version int            `json:"version"`
	Cuts    map[string]int `json:"cuts"`
	Series  []ckptSeries   `json:"series"`
}

// EnableDurability attaches a WAL + checkpoint to the DB and recovers
// whatever dir already holds. Must be called before any appends. The
// breaker name is "wal:metrics".
func (db *DB) EnableDurability(dir string, opt wal.StoreOptions) (RecoveryInfo, error) {
	if db.dur != nil {
		return RecoveryInfo{}, fmt.Errorf("tsdb: durability already enabled")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return RecoveryInfo{}, err
	}
	dur := &durability{dir: dir, opt: opt}
	db.dur = dur
	info, corrupt, err := db.recover(dir)
	if err != nil {
		db.dur = nil
		return info, err
	}
	d, err := wal.NewDurable(filepath.Join(dir, walDirName), "wal:metrics", len(db.shards), opt)
	if err != nil {
		db.dur = nil
		return info, err
	}
	dur.d = d
	d.AddCorrupt(int64(corrupt))
	d.AddReplayed(int64(info.Replayed))
	dur.armed.Store(true)
	info.Series = int(db.seriesCount.Load())
	info.Corrupt = corrupt
	return info, nil
}

// WALStats snapshots the durability counters; zero when memory-only.
func (db *DB) WALStats() wal.DurableStats {
	if db.dur == nil || db.dur.d == nil {
		return wal.DurableStats{}
	}
	return db.dur.d.Stats()
}

// WALBreaker exposes the degradation breaker (nil when memory-only).
func (db *DB) WALBreaker() *resilience.Breaker {
	if db.dur == nil || db.dur.d == nil {
		return nil
	}
	return db.dur.d.Breaker()
}

// --- record codec -----------------------------------------------------

// walPrefixFor caches the [type][labels] prefix; called under s.mu.
// Non-default tenants ride in the record's labels as __tenant__, so old
// WALs replay into the default namespace unchanged.
func (s *series) walPrefixFor() []byte {
	if s.walPrefix == nil {
		ls := s.labels
		if s.tenant != "" && s.tenant != tenant.DefaultID {
			ls = ls.With(tenant.ReservedLabel, s.tenant)
		}
		s.walPrefix = wal.AppendLabels([]byte{wal.RecSample}, ls)
	}
	return s.walPrefix
}

func appendSample(buf []byte, t int64, v float64) []byte {
	buf = wal.AppendVarint(buf, t)
	var bits [8]byte
	binary.LittleEndian.PutUint64(bits[:], math.Float64bits(v))
	return append(buf, bits[:]...)
}

func decodeSampleRecord(payload []byte) (string, labels.Labels, int64, float64, error) {
	if len(payload) == 0 || payload[0] != wal.RecSample {
		return "", nil, 0, 0, fmt.Errorf("tsdb: wal record type: %w", wal.ErrCorrupt)
	}
	ls, rest, err := wal.ReadLabels(payload[1:])
	if err != nil {
		return "", nil, 0, 0, err
	}
	t, rest, err := wal.ReadVarint(rest)
	if err != nil || len(rest) < 8 {
		return "", nil, 0, 0, fmt.Errorf("tsdb: wal record sample: %w", wal.ErrCorrupt)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(rest[:8]))
	tid := tenant.DefaultID
	if tv := ls.Get(tenant.ReservedLabel); tv != "" {
		tid = tv
		ls = ls.Without(tenant.ReservedLabel)
	}
	return tid, ls, t, v, nil
}

func encodeSamples(data []Sample) []byte {
	buf := wal.AppendUvarint(nil, uint64(len(data)))
	var prev int64
	for i, s := range data {
		if i == 0 {
			buf = wal.AppendVarint(buf, s.T)
		} else {
			buf = wal.AppendVarint(buf, s.T-prev)
		}
		prev = s.T
		var bits [8]byte
		binary.LittleEndian.PutUint64(bits[:], math.Float64bits(s.V))
		buf = append(buf, bits[:]...)
	}
	return buf
}

func decodeSamples(buf []byte) ([]Sample, error) {
	count, buf, err := wal.ReadUvarint(buf)
	if err != nil || count > 1<<28 {
		return nil, fmt.Errorf("tsdb: checkpoint sample count: %w", wal.ErrCorrupt)
	}
	out := make([]Sample, 0, count)
	var t int64
	for i := uint64(0); i < count; i++ {
		var delta int64
		if delta, buf, err = wal.ReadVarint(buf); err != nil || len(buf) < 8 {
			return nil, fmt.Errorf("tsdb: checkpoint sample: %w", wal.ErrCorrupt)
		}
		if i == 0 {
			t = delta
		} else {
			t += delta
		}
		out = append(out, Sample{T: t, V: math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))})
		buf = buf[8:]
	}
	return out, nil
}

// --- checkpoint -------------------------------------------------------

// Checkpoint snapshots the head with the same freeze protocol as the log
// store: per shard, block series lookup, drain per-series mutexes, rotate
// the shard WAL, snapshot, release — then tmp+rename the checkpoint file
// and truncate covered segments.
func (db *DB) Checkpoint() error {
	dur := db.dur
	if dur == nil || dur.d == nil || !dur.armed.Load() {
		return nil
	}
	if hook := dur.opt.FaultHook; hook != nil {
		if err := hook("checkpoint"); err != nil {
			dur.d.ReportError()
			return err
		}
	}
	ck := ckptFile{Version: 1, Cuts: map[string]int{}}
	for i, sh := range db.shards {
		sh.mu.Lock()
		for _, s := range sh.ordered {
			s.mu.Lock()
		}
		cut, err := dur.d.Log(i).Rotate()
		if err == nil {
			ck.Cuts[wal.ShardDirName(i)] = cut
			for _, s := range sh.ordered {
				cs := ckptSeries{Samples: encodeSamples(s.data)}
				if s.tenant != "" && s.tenant != tenant.DefaultID {
					cs.Tenant = s.tenant
				}
				for _, l := range s.labels {
					cs.Labels = append(cs.Labels, [2]string{l.Name, l.Value})
				}
				ck.Series = append(ck.Series, cs)
			}
		}
		for _, s := range sh.ordered {
			s.mu.Unlock()
		}
		sh.mu.Unlock()
		if err != nil {
			dur.d.ReportError()
			return err
		}
	}
	if err := writeFileAtomic(filepath.Join(dur.dir, checkpointFile), &ck, dur.opt.WrapWriter); err != nil {
		dur.d.ReportError()
		return err
	}
	dur.d.AddCheckpoints(1)
	dur.d.ReportSuccess()
	for i := range db.shards {
		_ = dur.d.Log(i).DropBefore(ck.Cuts[wal.ShardDirName(i)])
	}
	_ = dur.d.RemoveDormantShards()
	return nil
}

func writeFileAtomic(path string, v any, wrap func(io.Writer) io.Writer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if wrap != nil {
		w = wrap(f)
	}
	err = json.NewEncoder(w).Encode(v)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// --- recovery ---------------------------------------------------------

func (db *DB) recover(dir string) (RecoveryInfo, int, error) {
	var info RecoveryInfo
	corrupt := 0
	walRoot := filepath.Join(dir, walDirName)

	clean := false
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err == nil {
		clean = true
	}

	var ck ckptFile
	ok := true
	buf, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if os.IsNotExist(err) {
		ok = false
	} else if err != nil {
		return info, corrupt, err
	} else if jerr := json.Unmarshal(buf, &ck); jerr != nil {
		corrupt++
		ok, clean = false, false
	}
	if ok {
		info.Checkpoint = true
		for _, cs := range ck.Series {
			ls := make(labels.Labels, 0, len(cs.Labels))
			for _, pair := range cs.Labels {
				ls = append(ls, labels.Label{Name: pair[0], Value: pair[1]})
			}
			samples, err := decodeSamples(cs.Samples)
			if err != nil {
				corrupt++
				continue
			}
			tid := cs.Tenant
			if tid == "" {
				tid = tenant.DefaultID
			}
			s, err := db.getOrCreate(db.tenantStateFor(tid), labels.New(ls...))
			if err != nil {
				return info, corrupt, fmt.Errorf("tsdb: checkpoint restore: %w", err)
			}
			s.mu.Lock()
			s.data = samples
			s.mu.Unlock()
			db.appends.Add(int64(len(samples)))
		}
		for shardDir, cut := range ck.Cuts {
			_ = wal.DropSegmentsBefore(filepath.Join(walRoot, shardDir), cut)
		}
	}

	if clean {
		// The fresh log restarts numbering at segment 1, so stale cuts
		// would prune those segments as "covered" on the next dirty
		// recovery. Clear them BEFORE deleting the WAL and marker: a
		// crash after the rewrite re-enters this path (marker still
		// present, cuts already empty), while the old order could crash
		// into stale cuts with no marker — the exact data-loss case the
		// rewrite exists to prevent.
		info.Clean = true
		if ok && len(ck.Cuts) > 0 {
			ck.Cuts = map[string]int{}
			if werr := writeFileAtomic(filepath.Join(dir, checkpointFile), &ck, db.dur.opt.WrapWriter); werr != nil {
				return info, corrupt, werr
			}
		}
		_ = os.RemoveAll(walRoot)
		_ = os.Remove(filepath.Join(dir, cleanMarker))
		return info, corrupt, nil
	}
	_ = os.Remove(filepath.Join(dir, cleanMarker))

	shardDirs, err := os.ReadDir(walRoot)
	if err != nil && !os.IsNotExist(err) {
		return info, corrupt, err
	}
	var names []string
	for _, e := range shardDirs {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st, err := wal.Replay(filepath.Join(walRoot, name), true, func(payload []byte) error {
			tid, ls, t, v, err := decodeSampleRecord(payload)
			if err != nil {
				corrupt++
				return nil
			}
			// OOO vs the checkpointed head re-discovers the original
			// drops; duplicate timestamps overwrite idempotently.
			_ = db.AppendTenant(tid, ls, t, v)
			info.Replayed++
			return nil
		})
		if err != nil {
			return info, corrupt, err
		}
		corrupt += st.Corrupt
	}
	return info, corrupt, nil
}

// --- shutdown ---------------------------------------------------------

// Shutdown checkpoints, closes the WAL and leaves a CLEAN marker when no
// append raced the final snapshot. The DB stays usable in-memory.
func (db *DB) Shutdown() error {
	dur := db.dur
	if dur == nil || dur.d == nil || !dur.armed.Load() {
		return nil
	}
	// Baseline before the checkpoint starts: an append racing onto a
	// post-rotation segment after its shard unlocks lands between base
	// and after, suppressing the CLEAN marker (false negatives cost a
	// replay; a false positive would lose the record).
	base := dur.d.Stats()
	err := db.Checkpoint()
	dur.armed.Store(false)
	if cerr := dur.d.Close(); err == nil {
		err = cerr
	}
	after := dur.d.Stats()
	if err == nil && after.Appends == base.Appends && after.Errors == base.Errors && after.Skipped == base.Skipped {
		if f, ferr := os.Create(filepath.Join(dur.dir, cleanMarker)); ferr == nil {
			f.Close()
		}
	}
	return err
}
