package alertmanager

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"time"

	"shastamon/internal/labels"
)

// Handler exposes the Alertmanager-style management API:
//
//	GET    /api/v2/alerts              current alerts with status
//	GET    /api/v2/silences
//	POST   /api/v2/silences            {"matchers":{"name":"value",...}, "endsAt":RFC3339, "comment":..., "createdBy":...}
//	DELETE /api/v2/silences/{id}
type apiAlert struct {
	Labels      map[string]string `json:"labels"`
	Annotations map[string]string `json:"annotations,omitempty"`
	StartsAt    time.Time         `json:"startsAt"`
	EndsAt      *time.Time        `json:"endsAt,omitempty"`
	Status      Status            `json:"status"`
	Receiver    string            `json:"receiver"`
}

type apiSilence struct {
	ID        string            `json:"id,omitempty"`
	Matchers  map[string]string `json:"matchers"`
	StartsAt  time.Time         `json:"startsAt,omitempty"`
	EndsAt    time.Time         `json:"endsAt"`
	CreatedBy string            `json:"createdBy,omitempty"`
	Comment   string            `json:"comment,omitempty"`
}

// Alerts returns the alerts the manager currently tracks, annotated with
// their status and target receiver, sorted by label string.
func (m *Manager) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Alert
	seen := map[labels.Fingerprint]bool{}
	for _, g := range m.groups {
		for fp, a := range g.alerts {
			if !seen[fp] {
				seen[fp] = true
				out = append(out, *a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out
}

// Handler returns the HTTP API handler.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v2/alerts", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var out []apiAlert
		for _, a := range m.Alerts() {
			aa := apiAlert{
				Labels:      a.Labels.Map(),
				Annotations: a.Annotations,
				StartsAt:    a.StartsAt,
				Status:      m.AlertStatus(a),
			}
			if !a.EndsAt.IsZero() {
				end := a.EndsAt
				aa.EndsAt = &end
			}
			for _, route := range m.route.match(a.Labels) {
				aa.Receiver = route.Receiver
				break
			}
			out = append(out, aa)
		}
		writeAMJSON(w, out)
	})
	mux.HandleFunc("/api/v2/silences", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			var out []apiSilence
			for _, s := range m.Silences() {
				as := apiSilence{ID: s.ID, Matchers: map[string]string{}, StartsAt: s.StartsAt, EndsAt: s.EndsAt, CreatedBy: s.CreatedBy, Comment: s.Comment}
				for _, matcher := range s.Matchers {
					as.Matchers[matcher.Name] = matcher.Value
				}
				out = append(out, as)
			}
			writeAMJSON(w, out)
		case http.MethodPost:
			var req apiSilence
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if len(req.Matchers) == 0 || req.EndsAt.IsZero() {
				http.Error(w, "matchers and endsAt required", http.StatusBadRequest)
				return
			}
			var sel labels.Selector
			for name, value := range req.Matchers {
				matcher, err := labels.NewMatcher(labels.MatchEqual, name, value)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				sel = append(sel, matcher)
			}
			startsAt := req.StartsAt
			if startsAt.IsZero() {
				startsAt = m.now()
			}
			id := m.AddSilence(Silence{
				Matchers: sel, StartsAt: startsAt, EndsAt: req.EndsAt,
				CreatedBy: req.CreatedBy, Comment: req.Comment,
			})
			writeAMJSON(w, map[string]string{"silenceID": id})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	mux.HandleFunc("/api/v2/silences/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodDelete {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		id := strings.TrimPrefix(r.URL.Path, "/api/v2/silences/")
		found := false
		for _, s := range m.Silences() {
			if s.ID == id {
				found = true
			}
		}
		if !found {
			http.Error(w, "unknown silence", http.StatusNotFound)
			return
		}
		m.RemoveSilence(id)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func writeAMJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
