// Package wal implements the warehouse's write-ahead log: a segmented
// append-only record log that makes the in-memory Loki store and TSDB head
// crash-recoverable. Every accepted ingest is framed, checksummed and
// appended to a per-shard segment file before the push is acknowledged;
// on restart, replaying checkpoint + WAL reconstructs the exact in-memory
// state the process lost.
//
// The paper's warehouse survives node reboots because the real Loki and
// VictoriaMetrics are durable; this package is the reproduction's version
// of that property, kept deliberately simple: length-prefixed records with
// a CRC32C (Castagnoli) checksum, segment rotation at a byte threshold,
// and checkpoint-based truncation so replay cost stays bounded by the
// checkpoint interval, not by history.
//
// Torn tails are expected, not exceptional: a crash mid-write leaves a
// partial record at the end of the last segment. Replay stops a segment at
// the first bad length or checksum, counts the corruption, optionally
// truncates the file back to the last good record, and keeps going —
// losing the torn record, never the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// FsyncPolicy says when appended records are flushed to stable storage.
type FsyncPolicy int

const (
	// FsyncInterval syncs at most once per Options.FsyncInterval, on the
	// append path (the default: bounded loss window, near-zero overhead).
	FsyncInterval FsyncPolicy = iota
	// FsyncAlways syncs after every append: zero loss window, slowest.
	FsyncAlways
	// FsyncNever leaves flushing to the OS: fastest, loses the page cache
	// on power failure (a process crash alone loses nothing).
	FsyncNever
)

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// ParseFsyncPolicy parses the -wal-fsync flag values.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval", "":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// Default tuning constants.
const (
	DefaultSegmentBytes  = 4 << 20 // rotate segments at 4 MiB
	DefaultFsyncInterval = 250 * time.Millisecond
	// MaxRecordBytes caps a single record; a length prefix above it is
	// treated as corruption rather than an allocation request.
	MaxRecordBytes = 64 << 20
)

// frame layout: [len uint32 LE][crc32c(payload) uint32 LE][payload].
const frameHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a record that failed the length or checksum check.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// Options configure a Log. Zero values take the defaults above.
type Options struct {
	SegmentBytes  int
	Fsync         FsyncPolicy
	FsyncInterval time.Duration
	// WrapWriter, when set, wraps every segment/spill/checkpoint file
	// writer — the chaos injector's hook for disk write faults (failing,
	// short and ENOSPC writes). Nil writes straight through.
	WrapWriter func(io.Writer) io.Writer
	// FaultHook, when set, is consulted before sync/rotate/checkpoint
	// operations with the operation name; a non-nil return fails the
	// operation. The chaos injector's hook for non-write disk faults.
	FaultHook func(op string) error
	// Now is the clock driving the FsyncInterval policy and (via
	// StoreOptions) the degradation breaker; the pipeline injects its
	// simulated clock so sync cadence stays deterministic under simulated
	// time. Nil means time.Now.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = DefaultFsyncInterval
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// StoreOptions bundle the knobs a durable store (loki.Store, tsdb.DB)
// needs on top of the log itself: the WAL options plus the degradation
// breaker's tuning. Zero values take defaults.
type StoreOptions struct {
	Options
	// BreakerThreshold is the consecutive WAL failures that trip the
	// store into in-memory degraded mode (default 3).
	BreakerThreshold int
	// BreakerOpenFor is how long degraded mode fails fast before probing
	// the disk again (default 10s).
	BreakerOpenFor time.Duration
}

// Log is one segmented append-only record log rooted at a directory.
// It is safe for concurrent Append calls.
type Log struct {
	dir string
	opt Options

	mu       sync.Mutex
	f        *os.File
	w        io.Writer // f, possibly chaos-wrapped
	idx      int       // current segment index
	size     int64     // bytes written to the current segment
	lastSync time.Time
	closed   bool

	appends int64
	bytes   int64
	syncs   int64
	rotates int64
}

// segmentName renders the canonical segment file name.
func segmentName(idx int) string { return fmt.Sprintf("%08d.wal", idx) }

// parseSegmentName returns the index of a segment file name, ok=false for
// foreign files.
func parseSegmentName(name string) (int, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 12 {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(name, ".wal"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// listSegments returns the segment indices present in dir, sorted.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var idxs []int
	for _, e := range ents {
		if n, ok := parseSegmentName(e.Name()); ok {
			idxs = append(idxs, n)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

// Open creates (or reopens) a log in dir. Appends always go to a fresh
// segment numbered after any existing one — a reopened log never appends
// to a file that may carry a torn tail; Replay handles those.
func Open(dir string, opt Options) (*Log, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	idxs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(idxs) > 0 {
		next = idxs[len(idxs)-1] + 1
	}
	l := &Log{dir: dir, opt: opt}
	if err := l.openSegmentLocked(next); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *Log) openSegmentLocked(idx int) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(idx)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.w = io.Writer(f)
	if l.opt.WrapWriter != nil {
		l.w = l.opt.WrapWriter(f)
	}
	l.idx = idx
	l.size = 0
	return nil
}

// EncodeRecord frames a payload: length prefix, CRC32C, payload.
func EncodeRecord(payload []byte) []byte {
	buf := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeader:], payload)
	return buf
}

// DecodeRecord parses one framed record from the front of buf, returning
// the payload and the total bytes consumed. It returns ErrCorrupt for a
// bad length or checksum and io.ErrUnexpectedEOF for a torn (incomplete)
// frame — the caller decides whether a torn tail is corruption.
func DecodeRecord(buf []byte) (payload []byte, n int, err error) {
	if len(buf) < frameHeader {
		return nil, 0, io.ErrUnexpectedEOF
	}
	ln := binary.LittleEndian.Uint32(buf[0:4])
	if ln > MaxRecordBytes {
		return nil, 0, fmt.Errorf("%w: length %d exceeds cap", ErrCorrupt, ln)
	}
	if len(buf) < frameHeader+int(ln) {
		return nil, 0, io.ErrUnexpectedEOF
	}
	payload = buf[frameHeader : frameHeader+int(ln)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[4:8]) {
		return nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, frameHeader + int(ln), nil
}

// Append writes one record and applies the fsync policy. On a write
// error the segment is truncated back to the last whole record (best
// effort) so a later recovery never sees the partial frame, and the error
// is returned for the store's degradation breaker to count.
func (l *Log) Append(payload []byte) error {
	rec := EncodeRecord(payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.size > 0 && l.size+int64(len(rec)) > int64(l.opt.SegmentBytes) {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := l.w.Write(rec); err != nil {
		// Roll back the torn frame so this segment stays parseable.
		_ = l.f.Truncate(l.size)
		_, _ = l.f.Seek(l.size, io.SeekStart)
		return err
	}
	l.size += int64(len(rec))
	l.appends++
	l.bytes += int64(len(rec))
	switch l.opt.Fsync {
	case FsyncAlways:
		return l.syncLocked()
	case FsyncInterval:
		if now := l.opt.Now(); now.Sub(l.lastSync) >= l.opt.FsyncInterval {
			return l.syncLocked()
		}
	}
	return nil
}

func (l *Log) syncLocked() error {
	if l.opt.FaultHook != nil {
		if err := l.opt.FaultHook("sync"); err != nil {
			return err
		}
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.syncs++
	l.lastSync = l.opt.Now()
	return nil
}

// Sync flushes the current segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

func (l *Log) rotateLocked() error {
	if l.opt.FaultHook != nil {
		if err := l.opt.FaultHook("rotate"); err != nil {
			return err
		}
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	l.rotates++
	return l.openSegmentLocked(l.idx + 1)
}

// Rotate seals the current segment and starts a new one, returning the
// new segment's index. The checkpointer rotates before snapshotting so
// everything older than the returned index is covered by the snapshot.
func (l *Log) Rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if err := l.rotateLocked(); err != nil {
		return 0, err
	}
	return l.idx, nil
}

// DropBefore deletes segments with index < idx — checkpoint truncation.
func (l *Log) DropBefore(idx int) error {
	l.mu.Lock()
	dir := l.dir
	l.mu.Unlock()
	idxs, err := listSegments(dir)
	if err != nil {
		return err
	}
	var firstErr error
	for _, n := range idxs {
		if n >= idx {
			break
		}
		if err := os.Remove(filepath.Join(dir, segmentName(n))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Stats is a point-in-time snapshot of log counters.
type Stats struct {
	Appends  int64
	Bytes    int64
	Syncs    int64
	Rotates  int64
	Segment  int
	SegBytes int64
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.appends, Bytes: l.bytes, Syncs: l.syncs,
		Rotates: l.rotates, Segment: l.idx, SegBytes: l.size}
}

// Close syncs and closes the current segment. If the final segment is
// empty it is removed, so clean shutdowns leave no zero-byte litter.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if l.size == 0 {
		_ = os.Remove(filepath.Join(l.dir, segmentName(l.idx)))
	}
	return err
}

// ReplayStats reports what a Replay pass found.
type ReplayStats struct {
	Segments int
	Records  int
	Bytes    int64
	// Corrupt counts records dropped for a bad length or checksum,
	// including torn tails. Data before the first corruption in each
	// segment is always delivered.
	Corrupt int
	// Truncated reports whether a segment file was physically truncated
	// back to its last good record during repair.
	Truncated bool
}

// Replay reads every segment in dir in order, calling fn for each intact
// record. Corruption (bad CRC, oversized length, torn tail) ends that
// segment's replay: the bad record and everything after it in the segment
// are dropped and counted, the file is truncated back to the last good
// record when repair is true, and replay continues with the next segment.
// A missing directory replays nothing. fn errors abort the replay.
func Replay(dir string, repair bool, fn func(payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	idxs, err := listSegments(dir)
	if err != nil {
		return st, err
	}
	for _, idx := range idxs {
		path := filepath.Join(dir, segmentName(idx))
		buf, err := os.ReadFile(path)
		if err != nil {
			return st, err
		}
		st.Segments++
		off := 0
		for off < len(buf) {
			payload, n, err := DecodeRecord(buf[off:])
			if err != nil {
				// First bad frame: everything from here on in this
				// segment is untrustworthy. Drop it, optionally repair.
				st.Corrupt++
				if repair {
					if terr := os.Truncate(path, int64(off)); terr == nil {
						st.Truncated = true
					}
				}
				break
			}
			if err := fn(payload); err != nil {
				return st, err
			}
			st.Records++
			st.Bytes += int64(len(payload))
			off += n
		}
	}
	return st, nil
}

// RemoveDormant deletes whole subdirectories of root other than keep —
// the checkpointer's cleanup for per-shard WAL directories left behind by
// a run with a different shard count (their content is covered by the
// snapshot it just wrote).
func RemoveDormant(root string, keep map[string]bool) error {
	ents, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var firstErr error
	for _, e := range ents {
		if !e.IsDir() || keep[e.Name()] {
			continue
		}
		if err := os.RemoveAll(filepath.Join(root, e.Name())); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
