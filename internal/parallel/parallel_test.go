package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestDoCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 17} {
		for _, n := range []int{0, 1, 2, 100} {
			hits := make([]atomic.Int64, n)
			Do(n, workers, nil, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDoInFlightGaugeReturnsToZero(t *testing.T) {
	var inFlight atomic.Int64
	var seen atomic.Int64
	Do(64, 4, &inFlight, func(i int) {
		if v := inFlight.Load(); v > seen.Load() {
			seen.Store(v)
		}
	})
	if got := inFlight.Load(); got != 0 {
		t.Fatalf("in-flight gauge = %d after Do returned, want 0", got)
	}
	if runtime.GOMAXPROCS(0) > 1 && seen.Load() < 1 {
		t.Fatalf("no worker observed itself in flight")
	}
}

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
}
