package kafka

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// A manual-commit consumer that dies mid-batch re-delivers the batch to
// the next group member — the at-least-once contract the events topic
// needs (auto-commit would drop the records on the floor).
func TestManualCommitRedelivery(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("events", 1); err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		if _, _, err := b.Produce("events", nil, []byte(fmt.Sprintf("m%d", i)), ts); err != nil {
			t.Fatal(err)
		}
	}

	c1 := NewManualConsumer(b, "g", "m1", "events")
	batch, err := c1.Poll(3, 0)
	if err != nil || len(batch) != 3 {
		t.Fatalf("poll: %v %d", err, len(batch))
	}
	// Consecutive polls advance the in-memory position past the batch.
	rest, err := c1.Poll(10, 0)
	if err != nil || len(rest) != 2 {
		t.Fatalf("second poll: %v %d", err, len(rest))
	}
	// Crash before CommitPolled: nothing was committed.
	c1.Close()

	c2 := NewManualConsumer(b, "g", "m2", "events")
	redelivered, err := c2.Poll(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(redelivered) != 5 || string(redelivered[0].Value) != "m0" {
		t.Fatalf("redelivery after crash: %d records, first %q",
			len(redelivered), redelivered[0].Value)
	}
	// This time the handoff completes; a third member starts at the head.
	c2.CommitPolled()
	c2.Close()
	c3 := NewManualConsumer(b, "g", "m3", "events")
	defer c3.Close()
	again, err := c3.Poll(10, 0)
	if err != nil || len(again) != 0 {
		t.Fatalf("committed batch redelivered: %v %d", err, len(again))
	}
}

// Auto-commit mode still commits as it returns (the at-most-once sensor
// path is unchanged).
func TestAutoCommitUnchanged(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("s", 1); err != nil {
		t.Fatal(err)
	}
	_, _, _ = b.Produce("s", nil, []byte("x"), time.Unix(1, 0))
	c := NewConsumer(b, "g", "m", "s")
	if msgs, err := c.Poll(10, 0); err != nil || len(msgs) != 1 {
		t.Fatalf("%v %d", err, len(msgs))
	}
	c.Close()
	c2 := NewConsumer(b, "g", "m2", "s")
	defer c2.Close()
	if msgs, err := c2.Poll(10, 0); err != nil || len(msgs) != 0 {
		t.Fatalf("auto-committed message redelivered: %v %d", err, len(msgs))
	}
}

// Repeated FetchWait timeouts must not leak waiters: each timed-out poll
// prunes its channel from the partition's waiter slice.
func TestFetchWaitTimeoutPrunesWaiters(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	tp, err := b.topic("t")
	if err != nil {
		t.Fatal(err)
	}
	p := tp.partitions[0]
	for i := 0; i < 20; i++ {
		msgs, err := b.FetchWait("t", 0, 0, 10, time.Millisecond)
		if err != nil || len(msgs) != 0 {
			t.Fatalf("%v %d", err, len(msgs))
		}
	}
	if n := p.waiterCount(); n != 0 {
		t.Fatalf("waiters leaked: %d after 20 timeouts", n)
	}
	// A waiter that is actually woken still works.
	done := make(chan []Message, 1)
	go func() {
		msgs, _ := b.FetchWait("t", 0, 0, 10, 5*time.Second)
		done <- msgs
	}()
	for p.waiterCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, _, err := b.Produce("t", nil, []byte("wake"), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
	if msgs := <-done; len(msgs) != 1 {
		t.Fatalf("woken fetch got %d messages", len(msgs))
	}
	if n := p.waiterCount(); n != 0 {
		t.Fatalf("waiters after wake: %d", n)
	}
}

// Poll self-heals when retention truncation races it: TruncateBefore
// moving the low watermark between Poll's watermark check and its fetch
// must not surface ErrOffsetOutOfRange.
func TestPollSelfHealsAfterTruncation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 0)
	c := NewConsumer(b, "g", "m", "t")
	defer c.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	wg.Add(2)
	// Producer+truncator: append with advancing timestamps, truncate hard
	// on the heels of the appends so the consumer's offsets keep expiring.
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ts := base.Add(time.Duration(i) * time.Second)
			_, _, _ = b.Produce("t", nil, []byte(fmt.Sprintf("m%d", i)), ts)
			b.TruncateBefore(ts) // retain only the newest message
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := c.Poll(10, 0); err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("poll surfaced: %v", err)
	default:
	}
}

// Direct regression for the race window: commit an offset, truncate past
// it, and poll — the clamp must absorb the out-of-range error.
func TestPollClampsCommittedOffsetPastTruncation(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, _, _ = b.Produce("t", nil, []byte(fmt.Sprintf("m%d", i)), time.Unix(int64(i), 0))
	}
	c := NewConsumer(b, "g", "m", "t")
	defer c.Close()
	if _, err := c.Poll(3, 0); err != nil {
		t.Fatal(err)
	}
	// Everything the consumer has seen — and more — expires.
	b.TruncateBefore(time.Unix(8, 0))
	msgs, err := c.Poll(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || string(msgs[0].Value) != "m8" {
		t.Fatalf("msgs after truncation: %d, first %q", len(msgs), msgs[0].Value)
	}
}

func TestQuarantineAndReplay(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("events", 2); err != nil {
		t.Fatal(err)
	}
	poison := Message{
		Topic: "events", Partition: 1, Offset: 42,
		Key: []byte("x1"), Value: []byte("{not json"),
		Timestamp: time.Unix(7, 0), Headers: map[string]string{"trace": "abc"},
	}
	reason := errors.New("core: event payload: invalid character 'n'")
	if _, _, err := Quarantine(b, poison, reason); err != nil {
		t.Fatal(err)
	}

	recs, err := DLQRecords(b, "events")
	if err != nil || len(recs) != 1 {
		t.Fatalf("%v %d", err, len(recs))
	}
	m := recs[0]
	if m.Headers[HeaderDLQSource] != "events" || m.Headers[HeaderDLQReason] != reason.Error() {
		t.Fatalf("headers: %v", m.Headers)
	}
	if m.Headers[HeaderDLQPartition] != "1" || m.Headers[HeaderDLQOffset] != "42" {
		t.Fatalf("coordinates: %v", m.Headers)
	}
	if m.Headers["trace"] != "abc" || string(m.Value) != "{not json" {
		t.Fatalf("original payload lost: %v %q", m.Headers, m.Value)
	}

	// The inspection path shows the reason.
	dump := FormatDLQ(recs)
	if !strings.Contains(dump, "invalid character") || !strings.Contains(dump, "events/1@42") {
		t.Fatalf("dump: %s", dump)
	}

	// Replay puts the original payload back on the source topic without
	// the quarantine headers; a second replay is a no-op.
	n, err := ReplayDLQ(b, "events")
	if err != nil || n != 1 {
		t.Fatalf("replay: %v %d", err, n)
	}
	if n, err = ReplayDLQ(b, "events"); err != nil || n != 0 {
		t.Fatalf("second replay: %v %d", err, n)
	}
	c := NewConsumer(b, "replayed", "m", "events")
	defer c.Close()
	msgs, err := c.Poll(10, 0)
	if err != nil || len(msgs) != 1 {
		t.Fatalf("%v %d", err, len(msgs))
	}
	got := msgs[0]
	if string(got.Value) != "{not json" || got.Headers[HeaderDLQSource] != "" || got.Headers["trace"] != "abc" {
		t.Fatalf("replayed record: %q %v", got.Value, got.Headers)
	}
}

func TestQuarantineRefusesDLQRecursion(t *testing.T) {
	b := NewBroker()
	if _, _, err := Quarantine(b, Message{Topic: "x.dlq"}, errors.New("r")); err == nil {
		t.Fatal("quarantined from a DLQ topic")
	}
}

func TestDLQRecordsEmptyWithoutTopic(t *testing.T) {
	b := NewBroker()
	recs, err := DLQRecords(b, "never-quarantined")
	if err != nil || recs != nil {
		t.Fatalf("%v %v", err, recs)
	}
	n, err := ReplayDLQ(b, "never-quarantined")
	if err != nil || n != 0 {
		t.Fatalf("%v %d", err, n)
	}
}

func TestProduceHook(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("broker flaking")
	b.SetProduceHook(func(topic string) error {
		if topic == "t" {
			return boom
		}
		return nil
	})
	if _, _, err := b.Produce("t", nil, []byte("v"), time.Unix(1, 0)); !errors.Is(err, boom) {
		t.Fatalf("hook not applied: %v", err)
	}
	if _, high, _ := b.Watermarks("t", 0); high != 0 {
		t.Fatalf("failed produce appended: high=%d", high)
	}
	b.SetProduceHook(nil)
	if _, _, err := b.Produce("t", nil, []byte("v"), time.Unix(1, 0)); err != nil {
		t.Fatal(err)
	}
}
