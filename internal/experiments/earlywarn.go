package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/anomaly"
	"shastamon/internal/core"
	"shastamon/internal/labels"
	"shastamon/internal/ruler"
	"shastamon/internal/vmalert"
)

// EarlyWarnRule is the predictive counterpart of the paper's Fig. 5 leak
// rule: instead of waiting for a CabinetLeakDetected event, it watches
// the cabinet humidity series for a sustained upward trend. The roc
// detector scores the smoothed per-second slope against its own history,
// so a coolant seep raising humidity ~0.25 %/s — far inside the sensor's
// normal 10-90 % range — blows past the sensitivity within a handful of
// samples while random sensor noise never sustains it. The 15s hold
// means a delivery needs four consecutive anomalous ticks, which is what
// actually guards against noise; the sensitivity only has to sit above
// the one-tick noise score (~±1.5σ here, with rare ~4σ excursions at
// ramp onsets).
var EarlyWarnRule = vmalert.Rule{
	Name: "PerlmutterHumidityTrend",
	Expr: `cray_telemetry_humidity`,
	For:  15 * time.Second,
	Anomaly: &anomaly.Config{
		Method:      anomaly.MethodRateOfChange,
		Sensitivity: 4.5,
		HalfLife:    2 * time.Minute,
		MinSamples:  12,
	},
	Labels: map[string]string{"severity": "critical"},
	Annotations: map[string]string{
		"summary": "Cabinet {{ $labels.xname }} humidity trending anomalously ({{ $value }} sigmas) — possible coolant leak developing",
	},
}

// EarlyWarnScenario is one cabinet's timeline in the early-warning
// experiment: seconds from the onset of the humidity drift to each
// detection milestone.
type EarlyWarnScenario struct {
	Cabinet string `json:"cabinet"`
	// AnomalySeconds: drift onset -> anomaly alert delivered to Slack.
	AnomalySeconds float64 `json:"anomaly_seconds"`
	// ThresholdCrossSeconds: drift onset -> humidity crossing the level
	// where the physical leak sensor trips (the Redfish event fires).
	ThresholdCrossSeconds float64 `json:"threshold_cross_seconds"`
	// StaticSeconds: drift onset -> the paper's reactive Fig. 5 rule
	// delivered to Slack (leak event + 1m hold).
	StaticSeconds float64 `json:"static_seconds"`
	// LeadSeconds is StaticSeconds - AnomalySeconds: how much earlier
	// the predictive rule raised the incident.
	LeadSeconds float64 `json:"lead_seconds"`
}

// EarlyWarnReport is the early-warning benchmark artifact, embedded in
// BENCH_latency.json by LatencyJSON.
type EarlyWarnReport struct {
	AnomalyRule       string              `json:"anomaly_rule"`
	StaticRule        string              `json:"static_rule"`
	Scenarios         []EarlyWarnScenario `json:"scenarios"`
	AnomalyP50Seconds float64             `json:"anomaly_p50_seconds"`
	StaticP50Seconds  float64             `json:"static_p50_seconds"`
	LeadP50Seconds    float64             `json:"lead_p50_seconds"`
	// SLOEvents counts anomaly-alert deliveries closed into the
	// detection-latency SLO tracker.
	SLOEvents int64 `json:"slo_events"`
}

// runEarlyWarn stages three slow coolant seeps and races the predictive
// rule against the paper's reactive one. Per cabinet: a humidity drift
// of +1.2 %/sample starts at a staggered offset; when the level reaches
// 85 % the physical leak sensor trips and the Redfish event path takes
// over (LeakRule, 1m hold). Both alerts ride the same Alertmanager ->
// Slack path; the timeline is read back from the Slack inbox on the
// simulated clock.
func runEarlyWarn() (EarlyWarnReport, error) {
	// Group per fault, not per alertname — same reasoning as runLatency.
	critical := labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")}
	gw := time.Nanosecond
	route := &alertmanager.Route{
		Receiver:  "slack",
		GroupWait: gw,
		GroupBy:   []string{"alertname", "Context", "xname"},
		Routes: []*alertmanager.Route{
			{Receiver: "servicenow", Matchers: critical, GroupWait: gw, Continue: true},
			{Receiver: "slack", Matchers: critical, GroupWait: gw},
		},
	}
	p, err := core.New(core.Options{
		Cluster:     clusterConfig(),
		LogRules:    []ruler.Rule{LeakRule},
		MetricRules: []vmalert.Rule{EarlyWarnRule},
		Route:       route,
	})
	if err != nil {
		return EarlyWarnReport{}, err
	}
	defer p.Close()

	const step = 5 * time.Second
	t0 := LeakTime
	// Warm-up: five minutes of normal humidity so every cabinet's
	// detector baseline is warm before anything drifts.
	for ts := t0.Add(-5 * time.Minute); ts.Before(t0); ts = ts.Add(step) {
		if err := p.Tick(ts); err != nil {
			return EarlyWarnReport{}, err
		}
	}
	if n := delivered(p, EarlyWarnRule.Name); len(n) != 0 {
		return EarlyWarnReport{}, fmt.Errorf("earlywarn: anomaly rule fired on steady noise during warm-up: %v", n)
	}

	drifts := map[string]time.Duration{
		"x1203": 0,
		"x1102": 40 * time.Second,
		"x1002": 80 * time.Second,
	}
	const trip = 85.0 // humidity level where the physical leak sensor trips
	started := map[string]bool{}
	leaked := map[string]time.Time{}
	firstSeen := map[string]time.Time{} // "rule/cabinet" -> delivery tick
	cabinets := []string{"x1002", "x1102", "x1203"}

	for ts := t0; !ts.After(t0.Add(10 * time.Minute)); ts = ts.Add(step) {
		for cab, off := range drifts {
			if !started[cab] && !ts.Before(t0.Add(off)) {
				if err := p.Cluster.InjectSensorDrift("Humidity", cab, 1.2); err != nil {
					return EarlyWarnReport{}, err
				}
				started[cab] = true
			}
		}
		if err := p.Tick(ts); err != nil {
			return EarlyWarnReport{}, err
		}
		// The physical sensor trips when the drift pushes humidity past
		// its threshold — from here the paper's reactive path runs.
		for _, cab := range cabinets {
			if _, ok := leaked[cab]; ok {
				continue
			}
			vec, err := p.Warehouse.PromQL.Query(fmt.Sprintf(`cray_telemetry_humidity{xname=%q}`, cab), ts.UnixMilli())
			if err != nil {
				return EarlyWarnReport{}, err
			}
			for _, s := range vec {
				if s.V >= trip {
					if err := p.Cluster.InjectLeak(cab+"c1b0", "A", "Front", ts); err != nil {
						return EarlyWarnReport{}, err
					}
					leaked[cab] = ts
				}
			}
		}
		// Record first Slack delivery per (rule, cabinet) on the sim clock.
		for _, rule := range []string{EarlyWarnRule.Name, LeakRule.Name} {
			for _, cab := range delivered(p, rule) {
				if key := rule + "/" + cab; firstSeen[key].IsZero() {
					firstSeen[key] = ts
				}
			}
		}
		done := true
		for _, cab := range cabinets {
			if firstSeen[EarlyWarnRule.Name+"/"+cab].IsZero() || firstSeen[LeakRule.Name+"/"+cab].IsZero() {
				done = false
			}
		}
		if done {
			break
		}
	}

	out := EarlyWarnReport{AnomalyRule: EarlyWarnRule.Name, StaticRule: LeakRule.Name}
	var anomalies, statics, leads []float64
	for _, cab := range cabinets {
		onset := t0.Add(drifts[cab])
		at := firstSeen[EarlyWarnRule.Name+"/"+cab]
		st := firstSeen[LeakRule.Name+"/"+cab]
		if at.IsZero() || st.IsZero() {
			return out, fmt.Errorf("earlywarn: cabinet %s missing a delivery (anomaly %v, static %v)", cab, at, st)
		}
		sc := EarlyWarnScenario{
			Cabinet:        cab,
			AnomalySeconds: at.Sub(onset).Seconds(),
			StaticSeconds:  st.Sub(onset).Seconds(),
		}
		if lt, ok := leaked[cab]; ok {
			sc.ThresholdCrossSeconds = lt.Sub(onset).Seconds()
		}
		sc.LeadSeconds = sc.StaticSeconds - sc.AnomalySeconds
		if sc.AnomalySeconds >= sc.StaticSeconds {
			return out, fmt.Errorf("earlywarn: anomaly rule (%0.fs) did not beat the static rule (%.0fs) for %s",
				sc.AnomalySeconds, sc.StaticSeconds, cab)
		}
		out.Scenarios = append(out.Scenarios, sc)
		anomalies = append(anomalies, sc.AnomalySeconds)
		statics = append(statics, sc.StaticSeconds)
		leads = append(leads, sc.LeadSeconds)
	}
	out.AnomalyP50Seconds = median(anomalies)
	out.StaticP50Seconds = median(statics)
	out.LeadP50Seconds = median(leads)

	// The early warnings must have closed into the per-rule SLO tracker
	// like any other detection.
	for _, r := range p.SLOReport().Rules {
		if r.Rule == EarlyWarnRule.Name {
			out.SLOEvents = r.Events
		}
	}
	if out.SLOEvents != int64(len(cabinets)) {
		return out, fmt.Errorf("earlywarn: %d SLO close-outs for %s, want %d",
			out.SLOEvents, EarlyWarnRule.Name, len(cabinets))
	}
	return out, nil
}

// delivered scans the Slack inbox for deliveries of the named rule and
// returns the cabinets mentioned in its alert labels.
func delivered(p *core.Pipeline, rule string) []string {
	var cabs []string
	for _, m := range p.Slack.Messages() {
		for _, att := range m.Attachments {
			if att.Title != rule {
				continue
			}
			for _, cab := range []string{"x1002", "x1102", "x1203"} {
				if strings.Contains(att.Text, "`"+cab) {
					cabs = append(cabs, cab)
				}
			}
		}
	}
	return cabs
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// EarlyWarn prints the early-warning benchmark: the predictive humidity
// rule racing the paper's reactive leak rule through the same delivery
// path.
func EarlyWarn(w io.Writer) error {
	rep, err := runEarlyWarn()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Early-warning leak detection (drift onset -> Slack delivery):\n")
	fmt.Fprintf(w, "  anomaly rule: %s (roc detector over cray_telemetry_humidity)\n", rep.AnomalyRule)
	fmt.Fprintf(w, "  static rule:  %s (the paper's Fig. 5 rule, 1m hold)\n", rep.StaticRule)
	fmt.Fprintf(w, "%-10s %12s %12s %12s %10s\n", "cabinet", "anomaly(s)", "sensor(s)", "static(s)", "lead(s)")
	for _, s := range rep.Scenarios {
		fmt.Fprintf(w, "%-10s %12.0f %12.0f %12.0f %10.0f\n",
			s.Cabinet, s.AnomalySeconds, s.ThresholdCrossSeconds, s.StaticSeconds, s.LeadSeconds)
	}
	fmt.Fprintf(w, "p50: anomaly %.0fs vs static %.0fs — early warning leads by %.0fs\n",
		rep.AnomalyP50Seconds, rep.StaticP50Seconds, rep.LeadP50Seconds)
	fmt.Fprintf(w, "SLO close-outs for %s: %d\n", rep.AnomalyRule, rep.SLOEvents)
	return nil
}

// EarlyWarnJSON writes the benchmark as a pure-JSON artifact.
func EarlyWarnJSON(w io.Writer) error {
	rep, err := runEarlyWarn()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
