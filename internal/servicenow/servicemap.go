package servicenow

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the service-mapping side of the paper's §III.D:
// "service maps employ discovery and infrastructure information in CMDB
// for creating an accurate and complete tag based map of all applications,
// virtual systems, underlying network, databases, servers and other IT
// components that supports the service", enabling service impact analysis.

// AddDependency records that dependent relies on dependsOn (e.g. a compute
// node depends on its Rosetta switch). Both CIs must exist in the CMDB.
func (sn *Instance) AddDependency(dependent, dependsOn string) error {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	if _, ok := sn.cmdb[dependent]; !ok {
		return fmt.Errorf("servicenow: unknown CI %q", dependent)
	}
	if _, ok := sn.cmdb[dependsOn]; !ok {
		return fmt.Errorf("servicenow: unknown CI %q", dependsOn)
	}
	if dependent == dependsOn {
		return fmt.Errorf("servicenow: CI %q cannot depend on itself", dependent)
	}
	if sn.deps == nil {
		sn.deps = map[string][]string{}
	}
	for _, existing := range sn.deps[dependsOn] {
		if existing == dependent {
			return nil
		}
	}
	sn.deps[dependsOn] = append(sn.deps[dependsOn], dependent)
	sort.Strings(sn.deps[dependsOn])
	return nil
}

// Dependents returns the CIs directly depending on the given CI.
func (sn *Instance) Dependents(name string) []string {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return append([]string(nil), sn.deps[name]...)
}

// ImpactedCIs returns every CI transitively depending on the given CI —
// the service impact set of a failure at name. The result is sorted and
// excludes name itself.
func (sn *Instance) ImpactedCIs(name string) []string {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	return sn.impactedLocked(name)
}

// ServiceMap renders the dependency tree rooted at a CI as indented text,
// the terminal rendition of ServiceNow's service map view.
func (sn *Instance) ServiceMap(root string) (string, error) {
	sn.mu.Lock()
	defer sn.mu.Unlock()
	ci, ok := sn.cmdb[root]
	if !ok {
		return "", fmt.Errorf("servicenow: unknown CI %q", root)
	}
	var b strings.Builder
	var render func(name string, class string, depth int, seen map[string]bool)
	render = func(name, class string, depth int, seen map[string]bool) {
		fmt.Fprintf(&b, "%s%s (%s)\n", strings.Repeat("  ", depth), name, class)
		if seen[name] {
			return
		}
		seen[name] = true
		for _, d := range sn.deps[name] {
			render(d, sn.cmdb[d].Class, depth+1, seen)
		}
	}
	render(root, ci.Class, 0, map[string]bool{})
	return b.String(), nil
}
