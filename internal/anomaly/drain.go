package anomaly

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// wildcard is the token standing in for a variable position, both in the
// parse-tree keys and in the mined templates.
const wildcard = "<*>"

// MinerConfig bounds the Drain-style template miner. Zero fields take
// the documented default.
type MinerConfig struct {
	// Depth is how many leading tokens key the parse tree before
	// similarity clustering takes over (default 4).
	Depth int
	// SimThreshold is the minimum fraction of token positions that must
	// match (wildcards count as matches) for a line to join an existing
	// cluster (default 0.5).
	SimThreshold float64
	// MaxChildren bounds the branching at each internal tree node; the
	// overflow branch is the wildcard child (default 48).
	MaxChildren int
	// MaxClusters bounds total mined templates. At the bound new shapes
	// force-merge into their nearest cluster, or fall into the catch-all
	// template 0 (default 256).
	MaxClusters int
	// MaxTokens truncates lines before mining so one pathological line
	// cannot blow up comparison cost (default 32).
	MaxTokens int
}

func (c MinerConfig) withDefaults() MinerConfig {
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.SimThreshold <= 0 || c.SimThreshold > 1 {
		c.SimThreshold = 0.5
	}
	if c.MaxChildren <= 0 {
		c.MaxChildren = 48
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 256
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 32
	}
	return c
}

// Template is one mined log template.
type Template struct {
	// ID is stable for the life of the miner; 0 is the catch-all bucket
	// used once MaxClusters is reached.
	ID int
	// Pattern is the space-joined token template, variables as <*>.
	Pattern string
	// Count is how many lines matched.
	Count uint64
}

// cluster is a leaf entry: a mutable token template plus its hit count.
type cluster struct {
	id     int
	tokens []string
	count  uint64
}

// treeNode is an internal parse-tree node keyed by a token prefix.
type treeNode struct {
	children map[string]*treeNode
	clusters []*cluster // leaf level only
}

// Miner is a Drain-style streaming log-template miner (He et al., ICWS
// 2017; applied to HPC syslog at scale by Park et al., arXiv:1708.06884):
// a fixed-depth parse tree keyed by length and leading tokens routes each
// line to a small leaf of candidate clusters, where a token-similarity
// threshold decides between joining (wildcarding the differing positions)
// and minting a new template. All bounds are hard: children per node,
// clusters in total, tokens per line. Safe for concurrent use.
type Miner struct {
	cfg MinerConfig

	mu       sync.Mutex
	roots    map[int]*treeNode // keyed by token count
	byID     map[int]*cluster
	nextID   int
	overflow uint64 // lines absorbed by catch-all template 0
}

// NewMiner returns an empty miner.
func NewMiner(cfg MinerConfig) *Miner {
	return &Miner{cfg: cfg.withDefaults(), roots: map[int]*treeNode{}, byID: map[int]*cluster{}, nextID: 1}
}

// hasDigit reports whether the token contains a decimal digit — the
// classic Drain heuristic for "probably a variable" used when choosing
// tree keys, so `pid=4321` and `pid=977` route to the same leaf.
func hasDigit(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= '0' && s[i] <= '9' {
			return true
		}
	}
	return false
}

// Learn folds one log line into the tree and returns the template it
// matched plus whether that template was newly minted by this line.
func (m *Miner) Learn(line string) (id int, novel bool) {
	tokens := strings.Fields(line)
	if len(tokens) == 0 {
		tokens = []string{"<empty>"}
	}
	if len(tokens) > m.cfg.MaxTokens {
		tokens = tokens[:m.cfg.MaxTokens]
	}

	m.mu.Lock()
	defer m.mu.Unlock()

	// Level 0: length bucket. Levels 1..Depth: leading tokens, digits
	// wildcarded, branching bounded by MaxChildren.
	node, ok := m.roots[len(tokens)]
	if !ok {
		node = &treeNode{}
		m.roots[len(tokens)] = node
	}
	depth := m.cfg.Depth
	if depth > len(tokens) {
		depth = len(tokens)
	}
	for i := 0; i < depth; i++ {
		key := tokens[i]
		if hasDigit(key) {
			key = wildcard
		}
		if node.children == nil {
			node.children = map[string]*treeNode{}
		}
		child, ok := node.children[key]
		if !ok {
			if key != wildcard && len(node.children) >= m.cfg.MaxChildren {
				key = wildcard
				child = node.children[key]
			}
			if child == nil {
				child = &treeNode{}
				node.children[key] = child
			}
		}
		node = child
	}

	// Leaf: pick the most similar cluster.
	best, bestSim := (*cluster)(nil), -1.0
	for _, c := range node.clusters {
		if sim := similarity(c.tokens, tokens); sim > bestSim {
			best, bestSim = c, sim
		}
	}
	if best != nil && bestSim >= m.cfg.SimThreshold {
		merge(best, tokens)
		best.count++
		return best.id, false
	}
	if len(m.byID) < m.cfg.MaxClusters {
		c := &cluster{id: m.nextID, tokens: append([]string(nil), tokens...)}
		m.nextID++
		c.count = 1
		node.clusters = append(node.clusters, c)
		m.byID[c.id] = c
		return c.id, true
	}
	// At the cluster bound: force-merge into the leaf's nearest cluster
	// if it has one, otherwise count the line against catch-all 0.
	if best != nil {
		merge(best, tokens)
		best.count++
		return best.id, false
	}
	m.overflow++
	return 0, false
}

// similarity is the fraction of positions where the template token
// equals the line token or is already a wildcard. Lengths always match
// at a leaf (level-0 routing) but is guarded anyway for safety.
func similarity(tmpl, tokens []string) float64 {
	n := len(tmpl)
	if len(tokens) < n {
		n = len(tokens)
	}
	if n == 0 {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		if tmpl[i] == wildcard || tmpl[i] == tokens[i] {
			same++
		}
	}
	return float64(same) / float64(n)
}

// merge wildcards every template position the new line disagrees on.
func merge(c *cluster, tokens []string) {
	n := len(c.tokens)
	if len(tokens) < n {
		n = len(tokens)
	}
	for i := 0; i < n; i++ {
		if c.tokens[i] != wildcard && c.tokens[i] != tokens[i] {
			c.tokens[i] = wildcard
		}
	}
}

// TemplateLabel formats a template ID as the stable label value used for
// the per-template rate series ("t007"), so TSDB label values sort
// lexically in ID order.
func TemplateLabel(id int) string { return fmt.Sprintf("t%03d", id) }

// Templates snapshots the mined templates sorted by descending count,
// ties by ID. The catch-all bucket appears as ID 0 when it has absorbed
// any lines.
func (m *Miner) Templates() []Template {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Template, 0, len(m.byID)+1)
	for _, c := range m.byID {
		out = append(out, Template{ID: c.id, Pattern: strings.Join(c.tokens, " "), Count: c.count})
	}
	if m.overflow > 0 {
		out = append(out, Template{ID: 0, Pattern: wildcard, Count: m.overflow})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MinerStats is the memory-bound accounting for the self-metrics.
type MinerStats struct {
	// Templates currently mined (excluding the catch-all).
	Templates int
	// Overflow counts lines absorbed by the catch-all template 0.
	Overflow uint64
	// Saturated reports the MaxClusters bound is reached: new log shapes
	// can no longer mint templates.
	Saturated bool
}

// Stats snapshots the miner's bound accounting.
func (m *Miner) Stats() MinerStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MinerStats{
		Templates: len(m.byID),
		Overflow:  m.overflow,
		Saturated: len(m.byID) >= m.cfg.MaxClusters,
	}
}
