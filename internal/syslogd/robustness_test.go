package syslogd

import (
	"testing"
	"testing/quick"
	"time"
)

// Property: Parse never panics on arbitrary lines.
func TestPropertyParseNeverPanics(t *testing.T) {
	ref := time.Now()
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = Parse(input, ref)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
