package stats

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// Exactness contract: N workers flushing shards concurrently lose and
// double-count nothing. Run under -race this is also the memory-model
// check for the lock-free merge.
func TestWorkerFlushExactness(t *testing.T) {
	_, sc := NewContext(context.Background())
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var w Worker
			for i := 0; i < per; i++ {
				w.BytesProcessed += 10
				w.LinesProcessed++
				w.CacheHits++
				w.CacheMisses += 2
				if i%100 == 99 { // periodic mid-scan flush, like the store
					w.FlushTo(sc)
				}
			}
			w.ChunksOpened = 3
			w.FlushTo(sc)
		}()
	}
	wg.Wait()
	snap := sc.Snapshot()
	if got, want := snap.Summary.TotalBytesProcessed, int64(workers*per*10); got != want {
		t.Fatalf("bytes = %d, want %d", got, want)
	}
	if got, want := snap.Summary.TotalLinesProcessed, int64(workers*per); got != want {
		t.Fatalf("lines = %d, want %d", got, want)
	}
	if got, want := snap.Store.CacheHits, int64(workers*per); got != want {
		t.Fatalf("cache hits = %d, want %d", got, want)
	}
	if got, want := snap.Store.CacheMisses, int64(2*workers*per); got != want {
		t.Fatalf("cache misses = %d, want %d", got, want)
	}
	if got, want := snap.Store.ChunksOpened, int64(3*workers); got != want {
		t.Fatalf("chunks = %d, want %d", got, want)
	}
}

func TestWorkerFlushZeroes(t *testing.T) {
	_, sc := NewContext(context.Background())
	w := Worker{BytesProcessed: 100, LinesProcessed: 5}
	w.FlushTo(sc)
	w.FlushTo(sc) // zeroed by the first flush: must not double count
	if got := sc.Snapshot().Summary.TotalBytesProcessed; got != 100 {
		t.Fatalf("bytes = %d, want 100", got)
	}
	if w != (Worker{}) {
		t.Fatalf("worker not zeroed: %+v", w)
	}
}

func TestArmLimitCancelsOnBreach(t *testing.T) {
	ctx, sc := NewContext(context.Background())
	cctx, cancel := context.WithCancelCause(ctx)
	sc.ArmLimit(100, cancel)

	(&Worker{BytesProcessed: 100}).FlushTo(sc) // at budget: fine
	if cctx.Err() != nil {
		t.Fatalf("cancelled at budget: %v", context.Cause(cctx))
	}
	(&Worker{BytesProcessed: 1}).FlushTo(sc) // over budget: cancel fires
	if cctx.Err() == nil {
		t.Fatal("not cancelled over budget")
	}
	if cause := context.Cause(cctx); !errors.Is(cause, ErrMaxBytesScanned) {
		t.Fatalf("cause = %v, want ErrMaxBytesScanned", cause)
	}
	if !sc.LimitBreached() {
		t.Fatal("LimitBreached() = false after breach")
	}
}

func TestNilContextSafe(t *testing.T) {
	var c *Context
	c.MarkExec()
	c.Finish()
	c.AddStreams(1)
	c.AddShardsTouched(1)
	c.AddSplit()
	c.AddEntriesReturned(1)
	c.AddSpan("x", time.Now(), time.Now(), "")
	c.ArmLimit(1, nil)
	(&Worker{BytesProcessed: 1}).FlushTo(c)
	if c.Snapshot() != (Snapshot{}) || c.Spans() != nil || c.BytesProcessed() != 0 {
		t.Fatal("nil context leaked state")
	}
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext invented a context")
	}
}

func TestSnapshotTimesAndServerTiming(t *testing.T) {
	_, sc := NewContext(context.Background())
	sc.MarkExec()
	sc.SetQueueTime(5 * time.Millisecond)
	(&Worker{BytesProcessed: 1 << 20, LinesProcessed: 100}).FlushTo(sc)
	time.Sleep(2 * time.Millisecond)
	sc.Finish()
	snap := sc.Snapshot()
	if snap.Summary.ExecTime <= 0 || snap.Summary.TotalTime < snap.Summary.ExecTime {
		t.Fatalf("times: %+v", snap.Summary)
	}
	if snap.Summary.QueueTime != 0.005 {
		t.Fatalf("queue = %v", snap.Summary.QueueTime)
	}
	if snap.Summary.BytesProcessedPerSecond <= 0 {
		t.Fatalf("rate = %d", snap.Summary.BytesProcessedPerSecond)
	}
	// Finish pins the clock: a later snapshot reports the same times.
	time.Sleep(2 * time.Millisecond)
	if again := sc.Snapshot(); again.Summary.TotalTime != snap.Summary.TotalTime {
		t.Fatalf("clock not pinned: %v then %v", snap.Summary.TotalTime, again.Summary.TotalTime)
	}
	st := snap.ServerTiming()
	for _, want := range []string{"queue;dur=", "exec;dur=", "total;dur=", "1048576 processed", "hit/"} {
		if !strings.Contains(st, want) {
			t.Fatalf("Server-Timing %q missing %q", st, want)
		}
	}
}
