// Syslog monitoring (the paper's future work): "employ Loki for syslog
// monitoring and creating a mechanism for monitoring the health status
// and performance for the General Parallel File System (GPFS)". Node
// syslog streams through the rsyslogd-style aggregator into Kafka, on to
// Loki, and a LogQL rule pages on GPFS disk failures.
//
//	go run ./examples/syslogpipeline
package main

import (
	"fmt"
	"log"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/ruler"
	"shastamon/internal/syslogd"
)

func main() {
	gpfsRule := ruler.Rule{
		Name:   "GPFSDiskFailure",
		Expr:   `sum(count_over_time({data_type="syslog", app="mmfs"} |= "Disk failure" [10m])) by (hostname) > 0`,
		Labels: map[string]string{"severity": "critical"},
		Annotations: map[string]string{
			"summary": "GPFS disk failure reported by {{ $labels.hostname }}",
		},
	}
	p, err := core.New(core.Options{LogRules: []ruler.Rule{gpfsRule}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Background noise: ordinary syslog from a handful of nodes.
	hosts := []string{"nid000001", "nid000002", "nid000003", "nid000004"}
	gen := syslogd.NewGenerator(42, hosts...)
	t0 := time.Now().UTC().Truncate(time.Second)
	for i := 0; i < 200; i++ {
		if err := p.SyslogAggregator.Ingest(gen.Next(t0.Add(time.Duration(i) * 100 * time.Millisecond))); err != nil {
			log.Fatal(err)
		}
	}
	// The failure: a GPFS NSD dies on nid000002.
	failAt := t0.Add(25 * time.Second)
	if err := p.SyslogAggregator.Ingest(syslogd.GPFSDiskFailure("nid000002", 3, 17, failAt)); err != nil {
		log.Fatal(err)
	}

	for _, ts := range []time.Time{failAt.Add(time.Second), failAt.Add(2 * time.Second)} {
		if err := p.Tick(ts); err != nil {
			log.Fatal(err)
		}
	}

	// How noisy was the machine, per app?
	vec, err := p.Warehouse.LogQL.QueryInstant(
		`sum(count_over_time({data_type="syslog"}[10m])) by (app)`, failAt.Add(2*time.Second).UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("syslog volume in the last 10m, by app:")
	for _, s := range vec {
		fmt.Printf("  %-10s %4.0f lines\n", s.Labels.Get("app"), s.V)
	}

	// The one line that matters, found by LogQL among the noise.
	streams, err := p.Warehouse.LogQL.QueryLogs(
		`{data_type="syslog", app="mmfs"} |= "Disk failure"`, t0.UnixNano(), failAt.Add(time.Minute).UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nGPFS failures:")
	for _, s := range streams {
		for _, e := range s.Entries {
			fmt.Printf("  %s %s: %s\n", time.Unix(0, e.Timestamp).UTC().Format(time.RFC3339), s.Labels.Get("hostname"), e.Line)
		}
	}

	// And the page that went out.
	for _, m := range p.Slack.Messages() {
		fmt.Printf("\nslack: %s\n", m.Text)
		for _, att := range m.Attachments {
			fmt.Printf("  %s\n  %s\n", att.Title, att.Text)
		}
	}
	fmt.Println("\nServiceNow incidents:")
	for _, inc := range p.ServiceNow.Incidents() {
		fmt.Printf("  %s P%d %s — %s\n", inc.Number, inc.Priority, inc.State, inc.ShortDescription)
	}
}
