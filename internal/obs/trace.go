package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the metadata key under which a trace ID rides through the
// pipeline — a Kafka message header, a Telemetry API record header, or an
// HTTP request header.
const TraceHeader = "trace_id"

// Stage is one recorded hop of an event's journey through the pipeline.
type Stage struct {
	Stage string    `json:"stage"`
	Time  time.Time `json:"time"`
	Note  string    `json:"note,omitempty"`
}

// Trace is the full per-event record: the ID minted at origin, the
// correlation key (the component xname for hardware events) and the stages
// in arrival order.
type Trace struct {
	ID     string  `json:"id"`
	Key    string  `json:"key,omitempty"`
	Stages []Stage `json:"stages"`
}

// Tracer records event traces in a bounded ring buffer: when capacity is
// reached the oldest trace is evicted. All methods are safe on a nil
// receiver, so components can hold an optional *Tracer and instrument
// unconditionally.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	epoch  uint64
	ring   []string // trace IDs in mint order
	traces map[string]*Trace
	byKey  map[string]string // correlation key -> newest trace ID
}

// NewTracer returns a tracer keeping up to capacity traces (<=0 gets 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		cap:    capacity,
		epoch:  uint64(time.Now().UnixNano()),
		traces: map[string]*Trace{},
		byKey:  map[string]string{},
	}
}

// Start mints a new trace ID, associates it with the correlation key and
// records the "origin" stage. It returns the ID ("" on a nil tracer).
func (t *Tracer) Start(key string, now time.Time, note string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("%08x-%06x", uint32(t.epoch>>16), t.seq&0xffffff)
	if len(t.ring) >= t.cap {
		old := t.ring[0]
		t.ring = t.ring[1:]
		if tr := t.traces[old]; tr != nil && t.byKey[tr.Key] == old {
			delete(t.byKey, tr.Key)
		}
		delete(t.traces, old)
	}
	t.ring = append(t.ring, id)
	t.traces[id] = &Trace{ID: id, Key: key,
		Stages: []Stage{{Stage: "origin", Time: now, Note: note}}}
	if key != "" {
		t.byKey[key] = id
	}
	return id
}

// Stage appends a stage record to the trace with the given ID. Unknown or
// evicted IDs are ignored.
func (t *Tracer) Stage(id, stage string, now time.Time, note string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: now, Note: note})
	}
}

// StageByKey records a stage on the newest trace associated with the
// correlation key — how rule evaluation and alert dispatch, which see
// label sets rather than message headers, join an event's trace. It
// returns the trace ID, or "" if the key is unknown.
func (t *Tracer) StageByKey(key, stage string, now time.Time, note string) string {
	if t == nil || key == "" {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.byKey[key]
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: now, Note: note})
	}
	return id
}

// IDByKey returns the newest trace ID associated with the key, or "".
func (t *Tracer) IDByKey(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKey[key]
}

// Get returns a copy of the trace with the given ID.
func (t *Tracer) Get(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[id]
	if tr == nil {
		return Trace{}, false
	}
	cp := *tr
	cp.Stages = append([]Stage(nil), tr.Stages...)
	return cp, true
}

// IDs returns the retained trace IDs, oldest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.ring...)
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// traceSummary is the listing entry served at /debug/trace/.
type traceSummary struct {
	ID     string `json:"id"`
	Key    string `json:"key,omitempty"`
	Stages int    `json:"stages"`
}

// Handler serves the trace store. Mount it at /debug/trace/:
//
//	GET /debug/trace/        list retained traces (newest first)
//	GET /debug/trace/{id}    one trace with all its stages
//
// A nil tracer serves 404s, so the endpoint can be mounted
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id := r.URL.Path
		if i := strings.LastIndex(id, "/debug/trace/"); i >= 0 {
			id = id[i+len("/debug/trace/"):]
		} else {
			id = strings.TrimPrefix(id, "/")
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			t.mu.Lock()
			out := make([]traceSummary, 0, len(t.ring))
			for i := len(t.ring) - 1; i >= 0; i-- {
				tr := t.traces[t.ring[i]]
				out = append(out, traceSummary{ID: tr.ID, Key: tr.Key, Stages: len(tr.Stages)})
			}
			t.mu.Unlock()
			_ = enc.Encode(out)
			return
		}
		tr, ok := t.Get(id)
		if !ok {
			http.Error(w, "unknown trace "+id, http.StatusNotFound)
			return
		}
		_ = enc.Encode(tr)
	})
}

// StageNames returns the distinct stage names of a trace in first-seen
// order — the assertion shape the end-to-end tests use.
func (tr Trace) StageNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tr.Stages {
		if !seen[s.Stage] {
			seen[s.Stage] = true
			out = append(out, s.Stage)
		}
	}
	return out
}

// HasStages reports whether the trace contains every named stage.
func (tr Trace) HasStages(stages ...string) bool {
	names := tr.StageNames()
	sort.Strings(names)
	for _, want := range stages {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			return false
		}
	}
	return true
}

// ---- context carriage ----

type ctxKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceIDFrom extracts the trace ID from the context ("" if absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
