#!/bin/sh
# Repo verification gate: vet plus the race-enabled test suite.
# Run before sending a change; CI runs the same two commands.
set -eux

cd "$(dirname "$0")"

go vet ./...
go test -race ./...
