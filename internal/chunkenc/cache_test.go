package chunkenc

import (
	"fmt"
	"sync"
	"testing"
)

// sealedChunk builds a chunk with several sealed blocks of predictable
// lines and a closed head.
func sealedChunk(t testing.TB, entries int) *Chunk {
	t.Helper()
	c := New(Options{BlockSize: 1024, TargetSize: 1 << 30, MaxEntries: 1 << 30})
	for i := 0; i < entries; i++ {
		e := Entry{Timestamp: int64(i) * 1e6, Line: fmt.Sprintf("line %06d padded to make blocks cut sooner", i)}
		if err := c.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if len(c.blocks) < 2 {
		t.Fatalf("want several sealed blocks, got %d", len(c.blocks))
	}
	return c
}

func TestCachedIteratorMatchesPlain(t *testing.T) {
	c := sealedChunk(t, 500)
	cache := NewBlockCache(0)
	plain, err := c.All(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		it := c.CachedIterator(cache, 0, 1<<62)
		var got []Entry
		for it.Next() {
			got = append(got, it.At())
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		if len(got) != len(plain) {
			t.Fatalf("pass %d: %d entries, want %d", pass, len(got), len(plain))
		}
		for i := range got {
			if got[i] != plain[i] {
				t.Fatalf("pass %d entry %d: %+v != %+v", pass, i, got[i], plain[i])
			}
		}
	}
	st := cache.Stats()
	if st.Hits == 0 {
		t.Fatalf("second pass produced no cache hits: %+v", st)
	}
	if st.Misses != int64(len(c.blocks)) {
		t.Fatalf("misses = %d, want one per sealed block (%d)", st.Misses, len(c.blocks))
	}
}

func TestCacheEvictsWithinBudget(t *testing.T) {
	c := sealedChunk(t, 2000)
	// Budget fits only a couple of blocks.
	budget := c.blocks[0].raw * 2
	cache := NewBlockCache(budget)
	it := c.CachedIterator(cache, 0, 1<<62)
	for it.Next() {
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	st := cache.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache holds %d raw bytes, budget %d", st.Bytes, budget)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a tight budget: %+v", st)
	}
}

func TestCacheDropChunk(t *testing.T) {
	c := sealedChunk(t, 500)
	cache := NewBlockCache(0)
	it := c.CachedIterator(cache, 0, 1<<62)
	for it.Next() {
	}
	if st := cache.Stats(); st.Blocks == 0 {
		t.Fatalf("nothing cached: %+v", st)
	}
	cache.DropChunk(c)
	if st := cache.Stats(); st.Blocks != 0 || st.Bytes != 0 {
		t.Fatalf("DropChunk left %+v", st)
	}
}

func TestNilCacheIsANoop(t *testing.T) {
	c := sealedChunk(t, 200)
	var cache *BlockCache
	it := c.CachedIterator(cache, 0, 1<<62)
	n := 0
	for it.Next() {
		n++
	}
	if it.Err() != nil || n != 200 {
		t.Fatalf("n=%d err=%v", n, it.Err())
	}
	if st := cache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

func TestCacheConcurrentReaders(t *testing.T) {
	c := sealedChunk(t, 1000)
	cache := NewBlockCache(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pass := 0; pass < 5; pass++ {
				it := c.CachedIterator(cache, 0, 1<<62)
				n := 0
				for it.Next() {
					n++
				}
				if it.Err() != nil || n != 1000 {
					t.Errorf("n=%d err=%v", n, it.Err())
					return
				}
			}
		}()
	}
	wg.Wait()
}
