package loki

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"shastamon/internal/labels"
	"shastamon/internal/stats"
)

// A query over a corpus far larger than its byte budget is cancelled
// mid-scan: the scan stops well short of the full corpus and the error is
// the budget's sentinel cause.
func TestMaxBytesScannedCancelsMidScan(t *testing.T) {
	store := NewStore(DefaultLimits())
	const streams, perStream, lineLen = 4, 5000, 100
	const totalBytes = streams * perStream * lineLen // 2 MB
	line := make([]byte, lineLen)
	for i := range line {
		line[i] = 'x'
	}
	for s := 0; s < streams; s++ {
		ls := labels.FromStrings("app", "fat", "host", fmt.Sprintf("nid%03d", s))
		entries := make([]Entry, perStream)
		for i := range entries {
			entries[i] = Entry{Timestamp: int64(i+1) * 1e6, Line: string(line)}
		}
		if err := store.Push([]PushStream{{Labels: ls, Entries: entries}}); err != nil {
			t.Fatal(err)
		}
	}

	const budget = 64 << 10 // 64 KB budget against a 2 MB corpus
	tr := stats.NewTracker(nil, stats.Config{MaxBytesScanned: budget})
	ctx, finish := tr.Start(context.Background(), "logql", `{app="fat"}`)
	_, err := store.SelectContext(ctx, nil, 0, 1<<62)
	snap := finish(err)
	if !errors.Is(err, stats.ErrMaxBytesScanned) {
		t.Fatalf("err = %v, want ErrMaxBytesScanned", err)
	}
	scanned := snap.Summary.TotalBytesProcessed
	if scanned <= 0 {
		t.Fatal("nothing scanned before the breach")
	}
	// The per-worker flush cadence (every chunk / 1024 entries) bounds the
	// overshoot: the scan must stop long before reading the whole corpus.
	if scanned >= totalBytes/2 {
		t.Fatalf("scanned %d of %d bytes — limit did not stop the scan promptly", scanned, totalBytes)
	}
	// The breach lands in the slowlog with reason "bytes".
	log := tr.SlowLog()
	if len(log) != 1 || log[0].Reason != "bytes" {
		t.Fatalf("slowlog: %+v", log)
	}
}

// Without a tracked context, Select behaves exactly as before: the whole
// corpus is read and no limit applies.
func TestSelectUntrackedUnlimited(t *testing.T) {
	store := NewStore(DefaultLimits())
	entries := make([]Entry, 3000)
	for i := range entries {
		entries[i] = Entry{Timestamp: int64(i+1) * 1e6, Line: "payload payload payload"}
	}
	if err := store.Push([]PushStream{{Labels: labels.FromStrings("app", "x"), Entries: entries}}); err != nil {
		t.Fatal(err)
	}
	got, err := store.Select(nil, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Entries) != 3000 {
		t.Fatalf("got %d streams", len(got))
	}
}
