// Package fabricmgr implements the Slingshot Fabric Manager of case study
// B: an HTTP API reporting the state of every Rosetta switch, plus the
// "fabric manager monitor" — the poller NERSC wrote ("NERSC uses a python
// program to query the API periodically, and send out an event to Loki if
// any switch stage change is found").
package fabricmgr

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"shastamon/internal/shasta"
)

// SwitchInfo is one row of the fabric API response.
type SwitchInfo struct {
	Xname string `json:"xname"`
	State string `json:"state"`
}

// Manager serves the fabric state of a cluster over HTTP.
type Manager struct {
	cluster *shasta.Cluster
}

// NewManager returns a manager backed by the cluster's switch table.
func NewManager(cluster *shasta.Cluster) *Manager { return &Manager{cluster: cluster} }

// Switches returns all switch states sorted by xname.
func (m *Manager) Switches() []SwitchInfo {
	states := m.cluster.SwitchStates()
	out := make([]SwitchInfo, 0, len(states))
	for x, s := range states {
		out = append(out, SwitchInfo{Xname: x, State: string(s)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Xname < out[j].Xname })
	return out
}

// Handler exposes GET /fabric/switches.
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/switches", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Switches())
	})
	return mux
}

// Event is a switch state-change event in the exact single-line format of
// the paper's Fig. 7 sample:
//
//	[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN
type Event struct {
	Timestamp time.Time
	Severity  string
	Problem   string
	Xname     string
	State     string
}

// Line renders the event in the fabric monitor's message format.
func (e Event) Line() string {
	return fmt.Sprintf("[%s] problem:%s, xname:%s, state:%s", e.Severity, e.Problem, e.Xname, e.State)
}

// Sink receives monitor events; implementations push them to Loki with
// labels {app="fabric_manager_monitor", cluster=...}.
type Sink interface {
	Emit(e Event) error
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(e Event) error

// Emit calls the function.
func (f SinkFunc) Emit(e Event) error { return f(e) }

// Monitor polls the fabric API and emits an event on every state change.
type Monitor struct {
	url    string
	client *http.Client
	sink   Sink

	mu   sync.Mutex
	prev map[string]string
}

// NewMonitor polls the fabric manager at baseURL (e.g. the Manager's
// test server URL) and emits change events to the sink.
func NewMonitor(baseURL string, client *http.Client, sink Sink) *Monitor {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Monitor{url: baseURL + "/fabric/switches", client: client, sink: sink, prev: map[string]string{}}
}

// PollOnce queries the API and emits one event per changed switch. The
// first poll primes the baseline without emitting. Switches leaving ACTIVE
// emit critical fm_switch_offline events; returns to ACTIVE emit info
// fm_switch_online events (the proactive recovery signal).
func (m *Monitor) PollOnce(ts time.Time) ([]Event, error) {
	resp, err := m.client.Get(m.url)
	if err != nil {
		return nil, fmt.Errorf("fabricmgr: poll: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fabricmgr: poll: status %d", resp.StatusCode)
	}
	var switches []SwitchInfo
	if err := json.NewDecoder(resp.Body).Decode(&switches); err != nil {
		return nil, fmt.Errorf("fabricmgr: decode: %w", err)
	}

	m.mu.Lock()
	first := len(m.prev) == 0
	var events []Event
	for _, sw := range switches {
		old, seen := m.prev[sw.Xname]
		m.prev[sw.Xname] = sw.State
		if first || !seen || old == sw.State {
			continue
		}
		e := Event{Timestamp: ts, Xname: sw.Xname, State: sw.State}
		if sw.State == string(shasta.SwitchActive) {
			e.Severity, e.Problem = "info", "fm_switch_online"
		} else {
			e.Severity, e.Problem = "critical", "fm_switch_offline"
		}
		events = append(events, e)
	}
	m.mu.Unlock()

	for _, e := range events {
		if err := m.sink.Emit(e); err != nil {
			return events, fmt.Errorf("fabricmgr: sink: %w", err)
		}
	}
	return events, nil
}

// Run polls on the interval until the context is cancelled.
func (m *Monitor) Run(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-t.C:
			if _, err := m.PollOnce(now); err != nil {
				return err
			}
		}
	}
}
