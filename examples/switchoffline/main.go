// Switch offline detection (the paper's case study B): the Slingshot
// fabric manager reports a Rosetta switch in state UNKNOWN; the fabric
// manager monitor turns the state change into the Fig. 7 event line, the
// Fig. 8 pattern rule extracts severity/problem/xname/state, and the
// on-call channel gets the Fig. 9 notification.
//
//	go run ./examples/switchoffline
package main

import (
	"fmt"
	"log"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
)

func main() {
	switchRule := ruler.Rule{
		Name:   "SwitchOffline",
		Expr:   `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (sev, problem, xname, state) > 0`,
		Labels: map[string]string{"severity": "critical"},
		Annotations: map[string]string{
			"summary": "switch {{ $labels.xname }} changed state to {{ $labels.state }} — 8 compute nodes lose their connection",
		},
	}
	p, err := core.New(core.Options{LogRules: []ruler.Rule{switchRule}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	t0 := time.Now().UTC().Truncate(time.Second)
	if err := p.Tick(t0); err != nil { // primes the monitor's baseline
		log.Fatal(err)
	}

	fmt.Println("fabric fault: switch x1002c1r7b0 stops responding ...")
	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		log.Fatal(err)
	}
	for _, ts := range []time.Time{t0.Add(time.Minute), t0.Add(time.Minute + time.Second)} {
		if err := p.Tick(ts); err != nil {
			log.Fatal(err)
		}
	}

	// The monitor's event, exactly as the paper prints it.
	streams, err := p.Warehouse.LogQL.QueryLogs(`{app="fabric_manager_monitor"}`, t0.UnixNano(), t0.Add(time.Hour).UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range streams {
		for _, e := range s.Entries {
			fmt.Printf("loki %s %s\n", s.Labels, e.Line)
		}
	}

	// The alert as Slack sees it.
	for _, m := range p.Slack.Messages() {
		fmt.Printf("\nslack: %s\n", m.Text)
		for _, att := range m.Attachments {
			fmt.Printf("  %s\n%s\n", att.Title, att.Text)
		}
	}

	// Recovery: the switch comes back, the monitor logs the online event.
	fmt.Println("\nswitch recovers ...")
	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchActive); err != nil {
		log.Fatal(err)
	}
	if err := p.Tick(t0.Add(2 * time.Minute)); err != nil {
		log.Fatal(err)
	}
	streams, err = p.Warehouse.LogQL.QueryLogs(`{app="fabric_manager_monitor"} |= "fm_switch_online"`, t0.UnixNano(), t0.Add(time.Hour).UnixNano())
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range streams {
		for _, e := range s.Entries {
			fmt.Printf("loki %s\n", e.Line)
		}
	}
}
