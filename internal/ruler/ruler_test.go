package ruler

import (
	"sync"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
)

type fakeNotifier struct {
	mu     sync.Mutex
	alerts []alertmanager.Alert
}

func (f *fakeNotifier) Receive(alerts ...alertmanager.Alert) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.alerts = append(f.alerts, alerts...)
}

func (f *fakeNotifier) all() []alertmanager.Alert {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]alertmanager.Alert(nil), f.alerts...)
}

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// The paper's leak alerting rule: "if the return value is greater than
// zero and it lasts more than one minute, an alert will be generated".
const leakRuleExpr = `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message) > 0`

func setup(t *testing.T, rules ...Rule) (*loki.Store, *Ruler, *fakeNotifier, *clock) {
	t.Helper()
	store := loki.NewStore(loki.DefaultLimits())
	engine := logql.NewEngine(store)
	n := &fakeNotifier{}
	ck := &clock{t: time.Date(2022, 3, 3, 1, 47, 0, 0, time.UTC)}
	r, err := New(engine, n, ck.Now, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return store, r, n, ck
}

func TestNewValidation(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	engine := logql.NewEngine(store)
	n := &fakeNotifier{}
	if _, err := New(nil, n, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(engine, n, nil, Rule{Name: "", Expr: "rate({a=\"b\"}[1m])"}); err == nil {
		t.Fatal("unnamed rule accepted")
	}
	if _, err := New(engine, n, nil, Rule{Name: "x", Expr: "{a=\"b\"}"}); err == nil {
		t.Fatal("log query rule accepted")
	}
	if _, err := New(engine, n, nil,
		Rule{Name: "x", Expr: `rate({a="b"}[1m])`},
		Rule{Name: "x", Expr: `rate({a="b"}[1m])`}); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestLeakRuleFiresAfterFor(t *testing.T) {
	rule := Rule{
		Name:   "PerlmutterCabinetLeak",
		Expr:   leakRuleExpr,
		For:    time.Minute,
		Labels: map[string]string{"team": "operations"},
		Annotations: map[string]string{
			"summary": "Leak at {{ $labels.Context }} ({{ $value }} events)",
		},
	}
	store, r, n, ck := setup(t, rule)

	// Push the paper's leak event.
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	line := `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`
	if err := store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: ck.Now().UnixNano(), Line: line}}}}); err != nil {
		t.Fatal(err)
	}

	// First eval: condition true but held by for: 1m.
	sent, err := r.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 0 {
		t.Fatalf("fired before for: %+v", sent)
	}
	if r.Pending("PerlmutterCabinetLeak") != 1 {
		t.Fatal("no pending state")
	}

	// After >1m of persistence, it fires.
	ck.Advance(61 * time.Second)
	sent, err = r.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 {
		t.Fatalf("sent: %+v", sent)
	}
	a := sent[0]
	if a.Name() != "PerlmutterCabinetLeak" || a.Labels.Get("team") != "operations" {
		t.Fatalf("labels: %v", a.Labels)
	}
	if a.Labels.Get("Context") != "x1203c1b0" || a.Labels.Get("severity") != "Warning" {
		t.Fatalf("sample labels lost: %v", a.Labels)
	}
	if a.Annotations["summary"] != "Leak at x1203c1b0 (1 events)" {
		t.Fatalf("annotation: %q", a.Annotations["summary"])
	}
	if got := n.all(); len(got) != 1 {
		t.Fatalf("notifier: %+v", got)
	}

	// Steady state: no renotification from the ruler (Alertmanager dedups).
	ck.Advance(time.Minute)
	sent, _ = r.EvalOnce()
	if len(sent) != 0 {
		t.Fatalf("refired: %+v", sent)
	}
}

func TestRuleResolvesWhenConditionClears(t *testing.T) {
	rule := Rule{Name: "Leak", Expr: leakRuleExpr, For: 0}
	store, r, n, ck := setup(t, rule)
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	line := `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"leak"}`
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: ck.Now().UnixNano(), Line: line}}}})

	if _, err := r.EvalOnce(); err != nil {
		t.Fatal(err)
	}
	// Jump past the 60m count_over_time window: the vector empties.
	ck.Advance(2 * time.Hour)
	sent, err := r.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || !sent[0].Resolved(ck.Now()) {
		t.Fatalf("resolution: %+v", sent)
	}
	if r.Pending("Leak") != 0 {
		t.Fatal("state not cleaned")
	}
	if len(n.all()) != 2 {
		t.Fatalf("notifier: %+v", n.all())
	}
}

func TestPendingClearsWithoutFiring(t *testing.T) {
	rule := Rule{Name: "Leak", Expr: leakRuleExpr, For: 10 * time.Minute}
	store, r, n, ck := setup(t, rule)
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	line := `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"leak"}`
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: ck.Now().UnixNano(), Line: line}}}})
	_, _ = r.EvalOnce() // pending
	ck.Advance(2 * time.Hour)
	sent, _ := r.EvalOnce() // window empty before for: elapsed at an eval
	if len(sent) != 0 || len(n.all()) != 0 {
		t.Fatalf("pending alert leaked: %+v", n.all())
	}
}

func TestPerSeriesStates(t *testing.T) {
	rule := Rule{
		Name: "SwitchOffline",
		Expr: `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<severity>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (severity, problem, xname, state) > 0`,
		For:  0,
	}
	store, r, _, ck := setup(t, rule)
	ls := labels.FromStrings("app", "fabric_manager_monitor", "cluster", "perlmutter")
	now := ck.Now().UnixNano()
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{
		{Timestamp: now - 1, Line: "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"},
		{Timestamp: now, Line: "[critical] problem:fm_switch_offline, xname:x1002c3r0b0, state:OFFLINE"},
	}}})
	sent, err := r.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 2 {
		t.Fatalf("sent: %+v", sent)
	}
	xnames := map[string]bool{}
	for _, a := range sent {
		xnames[a.Labels.Get("xname")] = true
	}
	if !xnames["x1002c1r7b0"] || !xnames["x1002c3r0b0"] {
		t.Fatalf("xnames: %v", xnames)
	}
}

func TestExpandTemplate(t *testing.T) {
	ls := labels.FromStrings("xname", "x1002c1r7b0", "state", "UNKNOWN")
	got := ExpandTemplate("switch {{ $labels.xname }} went {{ $labels.state }} (value {{ $value }})", ls, 1)
	want := "switch x1002c1r7b0 went UNKNOWN (value 1)"
	if got != want {
		t.Fatalf("got %q", got)
	}
	// Unknown labels expand to empty.
	if ExpandTemplate("{{ $labels.none }}", ls, 0) != "" {
		t.Fatal("unknown label not empty")
	}
}

func TestRunLoopStops(t *testing.T) {
	rule := Rule{Name: "Leak", Expr: leakRuleExpr}
	_, r, _, _ := setup(t, rule)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- r.Run(time.Millisecond, stop) }()
	deadline := time.After(2 * time.Second)
	for r.Evals() < 3 {
		select {
		case <-deadline:
			t.Fatal("too slow")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
