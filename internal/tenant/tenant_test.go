package tenant

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shastamon/internal/labels"
)

func TestContextPlumbing(t *testing.T) {
	if got := ID(context.Background()); got != DefaultID {
		t.Fatalf("bare context tenant = %q, want %q", got, DefaultID)
	}
	ctx := WithID(context.Background(), "hpc-a")
	if got := ID(ctx); got != "hpc-a" {
		t.Fatalf("tenant = %q, want hpc-a", got)
	}
	if got := ID(WithID(context.Background(), "")); got != DefaultID {
		t.Fatalf("empty tenant normalized to %q, want %q", got, DefaultID)
	}
}

func TestFromRequest(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	if got := FromRequest(r); got != DefaultID {
		t.Fatalf("headerless request tenant = %q", got)
	}
	r.Header.Set(OrgIDHeader, "hpc-b")
	if got := FromRequest(r); got != "hpc-b" {
		t.Fatalf("header tenant = %q", got)
	}
	// Context (set by the auth middleware) wins over the header.
	r = r.WithContext(WithID(r.Context(), "hpc-a"))
	if got := FromRequest(r); got != "hpc-a" {
		t.Fatalf("context tenant = %q", got)
	}
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"fake", "hpc-a", "team_2", "a.b.c", "A9"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v", ok, err)
		}
	}
	for _, bad := range []string{"", "a b", "a/b", "a\nb", strings.Repeat("x", 129)} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) accepted", bad)
		}
	}
}

func TestFingerprintNamespaces(t *testing.T) {
	ls := labels.New(labels.Label{Name: "job", Value: "syslog"})
	if got := Fingerprint(DefaultID, ls); got != ls.Fingerprint() {
		t.Fatalf("default tenant fingerprint %v != plain %v", got, ls.Fingerprint())
	}
	if got := Fingerprint("", ls); got != ls.Fingerprint() {
		t.Fatalf("empty tenant fingerprint diverges from plain")
	}
	a, b := Fingerprint("hpc-a", ls), Fingerprint("hpc-b", ls)
	if a == b || a == ls.Fingerprint() || b == ls.Fingerprint() {
		t.Fatalf("tenant fingerprints not namespaced: a=%v b=%v plain=%v", a, b, ls.Fingerprint())
	}
	if again := Fingerprint("hpc-a", ls); again != a {
		t.Fatalf("fingerprint not deterministic: %v vs %v", again, a)
	}
}

func TestOverridesFor(t *testing.T) {
	var nilO *Overrides
	if got := nilO.For("x"); got != (Limits{}) {
		t.Fatalf("nil overrides = %+v", got)
	}
	o := &Overrides{
		Defaults:  Limits{MaxStreams: 10, IngestRateBytes: 100},
		PerTenant: map[string]Limits{"vip": {MaxStreams: 1000}},
	}
	if got := o.For("anyone"); got.MaxStreams != 10 || got.IngestRateBytes != 100 {
		t.Fatalf("defaults not applied: %+v", got)
	}
	// A PerTenant entry wins wholly: vip's zero IngestRateBytes is not
	// backfilled from Defaults.
	if got := o.For("vip"); got.MaxStreams != 1000 || got.IngestRateBytes != 0 {
		t.Fatalf("per-tenant entry not whole: %+v", got)
	}
}

func TestAuthOpenMode(t *testing.T) {
	a := NewAuth(nil)
	if a.Enabled() {
		t.Fatal("tokenless auth reports enabled")
	}
	r := httptest.NewRequest("GET", "/", nil)
	if id, err := a.Authenticate(r); err != nil || id != DefaultID {
		t.Fatalf("open mode = (%q, %v)", id, err)
	}
	r.Header.Set(OrgIDHeader, "hpc-a")
	if id, err := a.Authenticate(r); err != nil || id != "hpc-a" {
		t.Fatalf("open mode with header = (%q, %v)", id, err)
	}
	r.Header.Set(OrgIDHeader, "bad tenant!")
	if _, err := a.Authenticate(r); err == nil {
		t.Fatal("invalid org header accepted in open mode")
	}
}

func TestAuthTokenMode(t *testing.T) {
	a := NewAuth(map[string]string{"s3cret": "hpc-a"})
	if !a.Enabled() {
		t.Fatal("auth with tokens reports disabled")
	}
	r := httptest.NewRequest("GET", "/", nil)
	if _, err := a.Authenticate(r); err == nil {
		t.Fatal("tokenless request accepted")
	}
	r.Header.Set("Authorization", "Bearer nope")
	if _, err := a.Authenticate(r); err == nil {
		t.Fatal("unknown token accepted")
	}
	r.Header.Set("Authorization", "Bearer s3cret")
	if id, err := a.Authenticate(r); err != nil || id != "hpc-a" {
		t.Fatalf("valid token = (%q, %v)", id, err)
	}
	r.Header.Set(OrgIDHeader, "hpc-b")
	if _, err := a.Authenticate(r); err == nil {
		t.Fatal("org header disagreeing with token accepted")
	}
	r.Header.Set(OrgIDHeader, "hpc-a")
	if id, err := a.Authenticate(r); err != nil || id != "hpc-a" {
		t.Fatalf("agreeing org header = (%q, %v)", id, err)
	}
}

func TestAuthMiddleware(t *testing.T) {
	a := NewAuth(map[string]string{"s3cret": "hpc-a"})
	var seen string
	h := a.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = ID(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("anonymous request = %d, want 401", rec.Code)
	}
	rec = httptest.NewRecorder()
	r := httptest.NewRequest("GET", "/", nil)
	r.Header.Set("Authorization", "Bearer s3cret")
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK || seen != "hpc-a" {
		t.Fatalf("authorized request = %d, tenant %q", rec.Code, seen)
	}
}

func TestParseTokenFlag(t *testing.T) {
	id, tok, err := ParseTokenFlag("hpc-a:s3cret")
	if err != nil || id != "hpc-a" || tok != "s3cret" {
		t.Fatalf("ParseTokenFlag = (%q, %q, %v)", id, tok, err)
	}
	// Tokens may themselves contain colons; only the first splits.
	_, tok, err = ParseTokenFlag("hpc-a:k:v")
	if err != nil || tok != "k:v" {
		t.Fatalf("colon token = (%q, %v)", tok, err)
	}
	for _, bad := range []string{"", "noseparator", ":tok", "id:", "bad id:tok"} {
		if _, _, err := ParseTokenFlag(bad); err == nil {
			t.Errorf("ParseTokenFlag(%q) accepted", bad)
		}
	}
}

func TestRateLimiter(t *testing.T) {
	const second = int64(1e9)
	l := NewRateLimiter(100, 0) // 100 B/s, burst = rate
	if !l.AllowN(second, 100) {
		t.Fatal("full bucket refused its burst")
	}
	if l.AllowN(second, 1) {
		t.Fatal("empty bucket allowed bytes")
	}
	// Half a second refills 50 tokens.
	if !l.AllowN(second+second/2, 50) {
		t.Fatal("refill did not accrue")
	}
	if l.AllowN(second+second/2, 1) {
		t.Fatal("over-refill")
	}
	// Refill never exceeds the burst depth.
	if !l.AllowN(100*second, 100) {
		t.Fatal("long idle did not refill to burst")
	}
	if l.AllowN(100*second, 1) {
		t.Fatal("burst cap exceeded after long idle")
	}
	// Time moving backwards must not mint tokens.
	if l.AllowN(50*second, 1) {
		t.Fatal("backwards clock minted tokens")
	}
}

func TestRateLimiterLazyClock(t *testing.T) {
	const second = int64(1e9)
	clockReads := 0
	now := second
	clock := func() int64 { clockReads++; return now }

	l := NewRateLimiter(100, 0)
	// While tokens last, the clock is never consulted.
	for i := 0; i < 10; i++ {
		if !l.AllowNLazy(clock, 10) {
			t.Fatalf("push %d refused with tokens in the bucket", i)
		}
	}
	if clockReads != 0 {
		t.Fatalf("clock read %d times on the token fast path", clockReads)
	}
	// Shortage consults the clock; same instant means no refill.
	if l.AllowNLazy(clock, 10) {
		t.Fatal("empty bucket allowed bytes")
	}
	if clockReads != 1 {
		t.Fatalf("clock reads = %d, want 1", clockReads)
	}
	// A second later the refill accrues, still capped at burst.
	now += second
	if !l.AllowNLazy(clock, 100) {
		t.Fatal("refill did not accrue on the lazy path")
	}
	if l.AllowNLazy(clock, 1) {
		t.Fatal("over-refill on the lazy path")
	}
}
