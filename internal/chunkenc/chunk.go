// Package chunkenc implements the log chunk encoding used by the loki
// package. Following the design described in the paper (§IV.A), a chunk
// holds the log lines of a single stream, sorted by timestamp; timestamps
// and labels are indexed elsewhere while the line content is compressed.
//
// A chunk is a sequence of blocks. Entries are appended to an uncompressed
// head block; when the head exceeds the block size it is compressed
// (DEFLATE via compress/flate) and sealed. Sealed blocks record their time
// range so readers skip blocks that cannot overlap a query.
package chunkenc

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Entry is one log line with a nanosecond Unix timestamp.
type Entry struct {
	Timestamp int64 // Unix nanoseconds
	Line      string
}

// Default tuning constants. The paper notes Loki "prefers handling bigger
// but fewer chunks"; these defaults match that guidance at simulator scale.
const (
	DefaultBlockSize  = 32 * 1024       // bytes of raw lines per block
	DefaultTargetSize = 1 * 1024 * 1024 // raw bytes after which the chunk is full
	DefaultMaxEntries = 64 * 1024
	compressionLevel  = flate.BestSpeed
)

// ErrOutOfOrder is returned when an entry is older than the last appended
// entry. Chunks require non-decreasing timestamps.
var ErrOutOfOrder = errors.New("chunkenc: out-of-order entry")

// ErrChunkFull is returned when the chunk reached its target size.
var ErrChunkFull = errors.New("chunkenc: chunk full")

type block struct {
	mint, maxt int64
	entries    int
	raw        int    // uncompressed byte size of lines
	data       []byte // compressed frames; nil once spilled to disk

	// Spill location (valid when data is nil): payload offset and length
	// in the chunk's spill file, plus its CRC32C for read-time checking.
	off  int64
	clen int
	crc  uint32
}

// compLen is the compressed payload size whether resident or spilled.
func (b block) compLen() int {
	if b.data != nil {
		return len(b.data)
	}
	return b.clen
}

// Chunk accumulates entries for one stream. Not safe for concurrent use;
// the owning stream serialises access.
type Chunk struct {
	blockSize  int
	targetSize int
	maxEntries int

	blocks []block

	head     []Entry
	headRaw  int
	mint     int64
	maxt     int64
	entries  int
	rawBytes int

	// spillPath is the on-disk spill file once the sealed payloads have
	// been written out and dropped from memory ("" while memory-only).
	spillPath string
}

// Options configure a chunk; zero values take defaults.
type Options struct {
	BlockSize  int
	TargetSize int
	MaxEntries int
}

// New returns an empty chunk with the given options.
func New(opt Options) *Chunk {
	if opt.BlockSize <= 0 {
		opt.BlockSize = DefaultBlockSize
	}
	if opt.TargetSize <= 0 {
		opt.TargetSize = DefaultTargetSize
	}
	if opt.MaxEntries <= 0 {
		opt.MaxEntries = DefaultMaxEntries
	}
	return &Chunk{blockSize: opt.BlockSize, targetSize: opt.TargetSize, maxEntries: opt.MaxEntries, mint: -1}
}

// Append adds an entry. It returns ErrOutOfOrder for regressions and
// ErrChunkFull when the chunk has reached capacity (the entry is not
// added; the caller should cut a new chunk).
func (c *Chunk) Append(e Entry) error {
	if c.entries > 0 && e.Timestamp < c.maxt {
		return ErrOutOfOrder
	}
	if c.Full() {
		return ErrChunkFull
	}
	c.head = append(c.head, e)
	c.headRaw += len(e.Line) + 16
	if c.mint < 0 {
		c.mint = e.Timestamp
	}
	c.maxt = e.Timestamp
	c.entries++
	c.rawBytes += len(e.Line)
	if c.headRaw >= c.blockSize {
		if err := c.cutBlock(); err != nil {
			return err
		}
	}
	return nil
}

// Full reports whether the chunk reached its target size or entry cap.
func (c *Chunk) Full() bool {
	return c.rawBytes >= c.targetSize || c.entries >= c.maxEntries
}

// Entries returns the number of entries appended.
func (c *Chunk) Entries() int { return c.entries }

// RawBytes returns the uncompressed byte size of all lines.
func (c *Chunk) RawBytes() int { return c.rawBytes }

// CompressedBytes returns the current encoded size (sealed blocks only;
// the head block is counted raw).
func (c *Chunk) CompressedBytes() int {
	n := c.headRaw
	for _, b := range c.blocks {
		n += b.compLen()
	}
	return n
}

// Bounds returns the inclusive time range covered; ok is false when empty.
func (c *Chunk) Bounds() (mint, maxt int64, ok bool) {
	if c.entries == 0 {
		return 0, 0, false
	}
	return c.mint, c.maxt, true
}

// cutBlock compresses the head block and seals it.
func (c *Chunk) cutBlock() error {
	if len(c.head) == 0 {
		return nil
	}
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, compressionLevel)
	if err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	var prev int64
	raw := 0
	for i, e := range c.head {
		var delta int64
		if i == 0 {
			delta = e.Timestamp
		} else {
			delta = e.Timestamp - prev
		}
		prev = e.Timestamp
		n := binary.PutVarint(scratch[:], delta)
		if _, err := fw.Write(scratch[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(scratch[:], uint64(len(e.Line)))
		if _, err := fw.Write(scratch[:n]); err != nil {
			return err
		}
		if _, err := io.WriteString(fw, e.Line); err != nil {
			return err
		}
		raw += len(e.Line)
	}
	if err := fw.Close(); err != nil {
		return err
	}
	c.blocks = append(c.blocks, block{
		mint:    c.head[0].Timestamp,
		maxt:    c.head[len(c.head)-1].Timestamp,
		entries: len(c.head),
		raw:     raw,
		data:    append([]byte(nil), buf.Bytes()...),
	})
	c.head = c.head[:0]
	c.headRaw = 0
	return nil
}

// Close seals the head block so the chunk is fully compressed. Further
// appends are still allowed (a new head starts) unless the chunk is full.
func (c *Chunk) Close() error { return c.cutBlock() }

func decodeBlock(b block, data []byte) ([]Entry, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	defer fr.Close()
	br := &byteReader{r: fr}
	out := make([]Entry, 0, b.entries)
	var ts int64
	for i := 0; i < b.entries; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("chunkenc: corrupt block ts: %w", err)
		}
		if i == 0 {
			ts = delta
		} else {
			ts += delta
		}
		ln, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("chunkenc: corrupt block len: %w", err)
		}
		line := make([]byte, ln)
		if _, err := io.ReadFull(br, line); err != nil {
			return nil, fmt.Errorf("chunkenc: corrupt block line: %w", err)
		}
		out = append(out, Entry{Timestamp: ts, Line: string(line)})
	}
	return out, nil
}

type byteReader struct{ r io.Reader }

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *byteReader) ReadByte() (byte, error) {
	var one [1]byte
	if _, err := io.ReadFull(b.r, one[:]); err != nil {
		return 0, err
	}
	return one[0], nil
}

// Iterator walks entries within [mint, maxt] (inclusive) in timestamp
// order, decompressing only blocks that overlap the range.
func (c *Chunk) Iterator(mint, maxt int64) *Iterator {
	return &Iterator{c: c, mint: mint, maxt: maxt, blockIdx: -1}
}

// CachedIterator is Iterator with decoded sealed blocks served from (and
// inserted into) the given cache. A nil cache degrades to plain decoding.
func (c *Chunk) CachedIterator(cache *BlockCache, mint, maxt int64) *Iterator {
	return &Iterator{c: c, cache: cache, mint: mint, maxt: maxt, blockIdx: -1}
}

// IterStats counts the cache and decompression work one iterator did.
// The store copies these into the query's statistics context; the fields
// live here (plain ints, single-goroutine) so chunkenc stays free of
// accounting dependencies.
type IterStats struct {
	CacheHits          int64
	CacheMisses        int64
	BlocksDecompressed int64
	DecompressedBytes  int64
}

// StatsIterator is CachedIterator with per-block cache and decompression
// counts accumulated into st. A nil st disables the accounting.
func (c *Chunk) StatsIterator(cache *BlockCache, mint, maxt int64, st *IterStats) *Iterator {
	return &Iterator{c: c, cache: cache, mint: mint, maxt: maxt, blockIdx: -1, stats: st}
}

// Iterator yields entries from a chunk. Use Next/At.
type Iterator struct {
	c          *Chunk
	cache      *BlockCache
	stats      *IterStats
	mint, maxt int64
	blockIdx   int
	cur        []Entry
	pos        int
	err        error
	at         Entry
}

// Next advances; it returns false at the end or on error (check Err).
func (it *Iterator) Next() bool {
	for {
		if it.err != nil {
			return false
		}
		for it.pos < len(it.cur) {
			e := it.cur[it.pos]
			it.pos++
			if e.Timestamp < it.mint {
				continue
			}
			if e.Timestamp > it.maxt {
				return false
			}
			it.at = e
			return true
		}
		it.blockIdx++
		switch {
		case it.blockIdx < len(it.c.blocks):
			b := it.c.blocks[it.blockIdx]
			if b.maxt < it.mint || b.mint > it.maxt {
				it.cur, it.pos = nil, 0
				continue
			}
			entries, ok := it.cache.get(it.c, it.blockIdx)
			if !ok {
				data, err := it.c.blockData(it.blockIdx)
				if err != nil {
					it.err = err
					return false
				}
				entries, err = decodeBlock(b, data)
				if err != nil {
					it.err = err
					return false
				}
				it.cache.put(it.c, it.blockIdx, entries, b.raw)
				if it.stats != nil {
					it.stats.CacheMisses++
					it.stats.BlocksDecompressed++
					it.stats.DecompressedBytes += int64(b.raw)
				}
			} else if it.stats != nil {
				it.stats.CacheHits++
			}
			it.cur, it.pos = entries, 0
		case it.blockIdx == len(it.c.blocks):
			it.cur, it.pos = it.c.head, 0
		default:
			return false
		}
	}
}

// At returns the current entry.
func (it *Iterator) At() Entry { return it.at }

// Err returns the first decode error encountered.
func (it *Iterator) Err() error { return it.err }

// All returns every entry in [mint, maxt]; convenience for tests and small
// queries.
func (c *Chunk) All(mint, maxt int64) ([]Entry, error) {
	it := c.Iterator(mint, maxt)
	var out []Entry
	for it.Next() {
		out = append(out, it.At())
	}
	return out, it.Err()
}
