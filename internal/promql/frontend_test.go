package promql

import (
	"fmt"
	"testing"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/tsdb"
)

// TestFrontendGoldenEquality proves split + cached PromQL range
// evaluation is byte-identical to the monolithic pass across alignment
// edge cases — the Fig8 counterpart of the LogQL golden suite.
func TestFrontendGoldenEquality(t *testing.T) {
	db := tsdb.New()
	for node := 0; node < 6; node++ {
		ls := labels.FromStrings("xname", fmt.Sprintf("x%d", node))
		for ts := int64(0); ts < 7200_000; ts += 15_000 {
			v := float64((ts / 15_000) * int64(node+1)) // monotone counter, per-node slope
			if err := db.AppendMetric("node_net_bytes_total", ls, ts, v); err != nil {
				t.Fatal(err)
			}
			if err := db.AppendMetric("node_temp_celsius", ls, ts, float64((ts/1000+int64(node)*37)%90)); err != nil {
				t.Fatal(err)
			}
		}
	}
	mono := NewEngine(db)
	split := NewEngine(db)
	split.SetFrontend(frontend.New(frontend.Config{
		SplitInterval: 10 * time.Minute,
		Now:           func() time.Time { return time.Unix(100_000, 0) },
	}))
	queries := []string{
		`node_temp_celsius`,
		`rate(node_net_bytes_total[5m])`,
		`sum(rate(node_net_bytes_total[5m]))`,
		`max_over_time(node_temp_celsius[10m])`,
		`avg(node_temp_celsius) by (xname)`,
		`node_temp_celsius > 75`,
	}
	windows := []struct {
		name       string
		start, end int64 // ms
		step       time.Duration
	}{
		{"aligned-hour", 0, 3600_000, time.Minute},
		{"range-not-divisible-by-step", 0, 3601_000, 55 * time.Second},
		{"unaligned-start", 37_000, 3598_000, 55 * time.Second},
		{"single-instant", 300_000, 300_000, time.Minute},
	}
	for _, q := range queries {
		for _, w := range windows {
			name := fmt.Sprintf("%s/%s", q, w.name)
			want, err := mono.QueryRange(q, w.start, w.end, w.step)
			if err != nil {
				t.Fatalf("%s: monolithic: %v", name, err)
			}
			for _, pass := range []string{"cold", "warm"} {
				got, err := split.QueryRange(q, w.start, w.end, w.step)
				if err != nil {
					t.Fatalf("%s: %s: %v", name, pass, err)
				}
				if fmt.Sprintf("%+v", want) != fmt.Sprintf("%+v", got) {
					t.Errorf("%s: %s result differs\nmono:  %+v\nsplit: %+v", name, pass, want, got)
				}
			}
		}
	}
}
