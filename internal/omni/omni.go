// Package omni implements the Operations Monitoring and Notification
// Infrastructure: NERSC's data warehouse keeping "up to two years of
// operational data immediately available". It fronts the two stores of
// the dual pipeline — Loki for logs, the TSDB for metrics — with a single
// ingest façade, unified query engines, retention enforcement, and the
// ingest-rate accounting the paper's 400,000 messages/second claim is
// benchmarked against.
package omni

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"shastamon/internal/eventsearch"
	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
	"shastamon/internal/obs"
	"shastamon/internal/promql"
	"shastamon/internal/promtext"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
	"shastamon/internal/tsdb"
	"shastamon/internal/wal"
)

// Config sizes the warehouse.
type Config struct {
	// Retention is how long data is kept; the paper's OMNI keeps two
	// years. Zero keeps everything.
	Retention time.Duration
	// LokiLimits configures the log store.
	LokiLimits loki.Limits
	// IndexEvents additionally feeds ingested log lines into the
	// Elasticsearch-style full-text index (OMNI is "backed by ...
	// Elasticsearch and VictoriaMetrics"). Off by default: the label
	// index is the hot path; full-text costs write-time work.
	IndexEvents bool
	// DownsampleAfter, when positive, replaces metric samples older than
	// this horizon with DownsampleResolution averages during retention
	// enforcement — how a two-year window stays affordable.
	DownsampleAfter      time.Duration
	DownsampleResolution time.Duration // default 5m
	// Shards stripes both stores (log streams and metric series) over
	// this many lock shards; 0 = GOMAXPROCS. An explicit
	// LokiLimits.Shards wins for the log store.
	Shards int

	// DataDir, when set (and the warehouse is built with Open), roots the
	// durable state: per-shard WALs, sealed-chunk spill files and
	// checkpoints for both stores under DataDir/logs and DataDir/metrics.
	// Empty keeps the warehouse memory-only (New ignores this field).
	DataDir string
	// WAL tunes the write-ahead logs and the disk-degradation breaker
	// when DataDir is set.
	WAL wal.StoreOptions
	// CheckpointEvery bounds WAL replay: MaybeCheckpoint snapshots both
	// stores at most this often (default 1m).
	CheckpointEvery time.Duration

	// Frontend sizes the query frontend both engines route range
	// queries through (time splitting, shard fan-out, the step-aligned
	// results cache and query admission control). The zero value takes
	// the frontend defaults.
	Frontend frontend.Config

	// TenantOverrides supplies per-tenant limits (stream/series counts,
	// ingest rate, chunk-cache share, query concurrency) to every layer
	// of the warehouse: the log store, the metrics store and the query
	// frontend. Nil leaves everything single-tenant-unbounded, and any
	// explicit LokiLimits.TenantOverrides or Frontend.TenantOverrides
	// wins for its layer.
	TenantOverrides *tenant.Overrides
}

// Warehouse is the OMNI façade.
type Warehouse struct {
	Logs    *loki.Store
	Metrics *tsdb.DB
	Events  *eventsearch.Index
	LogQL   *logql.Engine
	PromQL  *promql.Engine
	// Tracker registers every warehouse query for per-query statistics,
	// /debug/queries visibility, runaway-query limits and the slow-query
	// log. Both query engines share it.
	Tracker *stats.Tracker
	// Frontend is the shared query frontend both engines route range
	// queries through; retention invalidates its results cache.
	Frontend *frontend.Frontend

	retention       time.Duration
	indexEvents     bool
	downsampleAfter time.Duration
	downsampleRes   time.Duration

	// Ingest accounting is lock-free: the ingest hot path only does
	// atomic adds, keeping the 400k msgs/s accounting off the mutex the
	// old implementation serialised every batch through.
	logMessages atomic.Int64
	logBytes    atomic.Int64
	samples     atomic.Int64
	windowStart atomic.Int64 // Unix nanoseconds of the last rate-window reset
	windowCount atomic.Int64

	// durable is set by Open when a DataDir is configured; checkpointEvery
	// and lastCkpt drive MaybeCheckpoint's bounded-replay schedule.
	durable         bool
	checkpointEvery time.Duration
	lastCkpt        atomic.Int64 // Unix nanoseconds
	recovery        Recovery

	reg      *obs.Registry
	queryDur *obs.HistogramVec

	// faultHook, when set, is consulted before each ingest with the
	// operation name ("logs" or "metric"); a non-nil return aborts the
	// ingest. The chaos harness injects warehouse outages through it.
	faultHook atomic.Value // func(op string) error
}

// New builds an empty warehouse.
func New(cfg Config) *Warehouse {
	if cfg.LokiLimits == (loki.Limits{}) {
		cfg.LokiLimits = loki.DefaultLimits()
	}
	if cfg.LokiLimits.Shards == 0 {
		cfg.LokiLimits.Shards = cfg.Shards
	}
	if cfg.TenantOverrides != nil {
		if cfg.LokiLimits.TenantOverrides == nil {
			cfg.LokiLimits.TenantOverrides = cfg.TenantOverrides
		}
		if cfg.Frontend.TenantOverrides == nil {
			cfg.Frontend.TenantOverrides = cfg.TenantOverrides
		}
	}
	logs := loki.NewStore(cfg.LokiLimits)
	metrics := tsdb.NewSharded(cfg.Shards)
	if cfg.TenantOverrides != nil {
		metrics.SetTenantOverrides(cfg.TenantOverrides)
	}
	if cfg.DownsampleResolution <= 0 {
		cfg.DownsampleResolution = 5 * time.Minute
	}
	w := &Warehouse{
		Logs:            logs,
		Metrics:         metrics,
		Events:          eventsearch.New(),
		LogQL:           logql.NewEngine(logs),
		PromQL:          promql.NewEngine(metrics),
		retention:       cfg.Retention,
		indexEvents:     cfg.IndexEvents,
		downsampleAfter: cfg.DownsampleAfter,
		downsampleRes:   cfg.DownsampleResolution,
		reg:             obs.NewRegistry(),
	}
	w.queryDur = w.reg.HistogramVec(obs.Namespace+"omni_query_duration_seconds",
		"Warehouse query latency by engine.", obs.DefBuckets, "engine")
	w.Tracker = stats.NewTracker(w.reg, stats.Config{
		MaxBytesScanned: cfg.LokiLimits.MaxBytesScanned,
		Timeout:         cfg.LokiLimits.QueryTimeout,
		SlowThreshold:   time.Duration(cfg.LokiLimits.SlowQuerySeconds * float64(time.Second)),
	})
	w.LogQL.SetTracker(w.Tracker)
	w.PromQL.SetTracker(w.Tracker)
	w.Frontend = frontend.New(cfg.Frontend)
	w.Frontend.Register(w.reg)
	w.LogQL.SetFrontend(w.Frontend)
	w.PromQL.SetFrontend(w.Frontend)
	w.reg.Collect(func() []promtext.Family {
		return []promtext.Family{
			obs.Fam("counter", obs.Namespace+"omni_log_messages_total",
				"Log messages ingested by the warehouse.", float64(w.logMessages.Load())),
			obs.Fam("counter", obs.Namespace+"omni_log_bytes_total",
				"Log bytes ingested by the warehouse.", float64(w.logBytes.Load())),
			obs.Fam("counter", obs.Namespace+"omni_samples_total",
				"Metric samples ingested by the warehouse.", float64(w.samples.Load())),
			obs.Fam("gauge", obs.Namespace+"omni_ingest_rate",
				"Messages/second over the current rate window.",
				w.RateWindow(time.Now())),
			obs.Sample(obs.Fam("gauge", obs.Namespace+"omni_query_parallelism",
				"In-flight query-engine workers, by engine.",
				float64(w.LogQL.QueryParallelism()), "engine", "logql"),
				float64(w.PromQL.QueryParallelism()), "engine", "promql"),
		}
	})
	return w
}

// ObsMetrics exposes the warehouse's self-monitoring registry.
func (w *Warehouse) ObsMetrics() *obs.Registry { return w.reg }

// SetFaultHook installs (or, with nil, clears) an ingestion fault hook.
func (w *Warehouse) SetFaultHook(hook func(op string) error) {
	w.faultHook.Store(&hook)
}

func (w *Warehouse) ingestFault(op string) error {
	p, _ := w.faultHook.Load().(*func(op string) error)
	if p == nil || *p == nil {
		return nil
	}
	return (*p)(op)
}

// IngestLogs pushes log streams into the log store (and, when
// IndexEvents is on, into the full-text index) under the default tenant.
func (w *Warehouse) IngestLogs(batch []loki.PushStream) error {
	return w.IngestLogsTenant(tenant.DefaultID, batch)
}

// IngestLogsTenant is IngestLogs into the named tenant's namespace,
// subject to that tenant's stream and ingest-rate limits.
func (w *Warehouse) IngestLogsTenant(id string, batch []loki.PushStream) error {
	if err := w.ingestFault("logs"); err != nil {
		return fmt.Errorf("omni: ingest logs: %w", err)
	}
	err := w.Logs.PushTenant(id, batch)
	if err != nil && errors.Is(err, loki.ErrRateLimited) {
		// The whole batch was shed before ingestion: nothing to count or
		// index.
		return err
	}
	var n, bytes int64
	for _, ps := range batch {
		n += int64(len(ps.Entries))
		for _, e := range ps.Entries {
			bytes += int64(len(e.Line))
		}
		if w.indexEvents {
			fields := ps.Labels.Map()
			for _, e := range ps.Entries {
				w.Events.Add(time.Unix(0, e.Timestamp), fields, e.Line)
			}
		}
	}
	w.logMessages.Add(n)
	w.logBytes.Add(bytes)
	w.windowCount.Add(n)
	return err
}

// IngestMetric appends one sample to the metrics store.
func (w *Warehouse) IngestMetric(name string, ls labels.Labels, tsMillis int64, v float64) error {
	if err := w.ingestFault("metric"); err != nil {
		return fmt.Errorf("omni: ingest metric: %w", err)
	}
	err := w.Metrics.AppendMetric(name, ls, tsMillis, v)
	w.samples.Add(1)
	w.windowCount.Add(1)
	return err
}

// QueryLogs runs a LogQL query through the warehouse, observing its
// latency under engine="logql".
func (w *Warehouse) QueryLogs(q string, start, end int64) ([]logql.ResultStream, error) {
	res, _, err := w.QueryLogsContext(context.Background(), q, start, end)
	return res, err
}

// QueryLogsContext is QueryLogs with tracker registration: the query is
// visible on /debug/queries, limit-armed and killable while it runs, and
// the returned snapshot carries its statistics.
func (w *Warehouse) QueryLogsContext(ctx context.Context, q string, start, end int64) ([]logql.ResultStream, stats.Snapshot, error) {
	t0 := time.Now()
	qctx, finish := w.Tracker.Start(ctx, "logql", q)
	res, err := w.LogQL.QueryLogsContext(qctx, q, start, end)
	snap := finish(err)
	w.queryDur.With("logql").Observe(time.Since(t0).Seconds())
	return res, snap, err
}

// QueryMetrics runs an instant PromQL query through the warehouse,
// observing its latency under engine="promql".
func (w *Warehouse) QueryMetrics(q string, tsMillis int64) (promql.Vector, error) {
	res, _, err := w.QueryMetricsContext(context.Background(), q, tsMillis)
	return res, err
}

// QueryMetricsContext is QueryMetrics with tracker registration.
func (w *Warehouse) QueryMetricsContext(ctx context.Context, q string, tsMillis int64) (promql.Vector, stats.Snapshot, error) {
	t0 := time.Now()
	qctx, finish := w.Tracker.Start(ctx, "promql", q)
	res, err := w.PromQL.QueryContext(qctx, q, tsMillis)
	snap := finish(err)
	w.queryDur.With("promql").Observe(time.Since(t0).Seconds())
	return res, snap, err
}

// Stats is a warehouse counter snapshot.
type Stats struct {
	LogMessages int64
	LogBytes    int64
	Samples     int64
	LogStore    loki.Stats
	MetricStore tsdb.Stats
}

// Stats returns counters.
func (w *Warehouse) Stats() Stats {
	s := Stats{
		LogMessages: w.logMessages.Load(),
		LogBytes:    w.logBytes.Load(),
		Samples:     w.samples.Load(),
	}
	s.LogStore = w.Logs.Stats()
	s.MetricStore = w.Metrics.Stats()
	return s
}

// RateWindowReset starts an ingest-rate measurement window.
func (w *Warehouse) RateWindowReset(now time.Time) {
	w.windowStart.Store(now.UnixNano())
	w.windowCount.Store(0)
}

// RateWindow reports messages/second since the last reset.
func (w *Warehouse) RateWindow(now time.Time) float64 {
	start := w.windowStart.Load()
	secs := time.Duration(now.UnixNano() - start).Seconds()
	if start == 0 || secs <= 0 {
		return 0
	}
	return float64(w.windowCount.Load()) / secs
}

// EnforceRetention drops data older than the retention horizon relative
// to now and, when configured, downsamples metrics older than the
// downsampling horizon. It returns (log chunks dropped, metric samples
// dropped or folded into aggregates).
func (w *Warehouse) EnforceRetention(now time.Time) (chunks, samples int) {
	if w.downsampleAfter > 0 {
		folded, err := w.Metrics.Downsample(now.Add(-w.downsampleAfter).UnixMilli(), w.downsampleRes, tsdb.AggAvg)
		if err == nil {
			samples += folded
		}
	}
	if w.retention <= 0 {
		return chunks, samples
	}
	cutoff := now.Add(-w.retention)
	chunks = w.Logs.DeleteBefore(cutoff.UnixNano())
	samples += w.Metrics.DeleteBefore(cutoff.UnixMilli())
	if w.indexEvents {
		w.Events.DeleteBefore(cutoff)
	}
	// Cached split results whose data window reaches below the horizon
	// would resurrect just-deleted data; drop them with it.
	w.Frontend.InvalidateBefore(cutoff)
	return chunks, samples
}

// RunRetention enforces retention on the interval until ctx is cancelled.
func (w *Warehouse) RunRetention(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			w.EnforceRetention(now)
		}
	}
}
