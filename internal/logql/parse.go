package logql

import (
	"fmt"
	"strconv"

	"shastamon/internal/labels"
)

var rangeOps = map[string]RangeOp{
	"count_over_time":  OpCountOverTime,
	"rate":             OpRate,
	"bytes_over_time":  OpBytesOverTime,
	"bytes_rate":       OpBytesRate,
	"absent_over_time": OpAbsentOverTime,
	"sum_over_time":    OpSumOverTime,
	"avg_over_time":    OpAvgOverTime,
	"max_over_time":    OpMaxOverTime,
	"min_over_time":    OpMinOverTime,
}

var vectorOps = map[string]bool{
	"sum": true, "min": true, "max": true, "avg": true, "count": true,
	"topk": true, "bottomk": true,
}

// unwrapOps require an unwrap stage in the inner log pipeline.
var unwrapOps = map[RangeOp]bool{
	OpSumOverTime: true, OpAvgOverTime: true, OpMaxOverTime: true, OpMinOverTime: true,
}

type parser struct {
	toks []token
	pos  int
	src  string
}

// ParseExpr parses a complete LogQL expression — either a log query or a
// metric query (range/vector aggregation with optional threshold).
func ParseExpr(input string) (Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errf(t, "unexpected trailing %s %q", t.kind, t.text)
	}
	return e, nil
}

// ParseLogExpr parses an expression that must be a plain log query.
func ParseLogExpr(input string) (*LogExpr, error) {
	e, err := ParseExpr(input)
	if err != nil {
		return nil, err
	}
	le, ok := e.(*LogExpr)
	if !ok {
		return nil, fmt.Errorf("logql: %q is a metric query, not a log query", input)
	}
	return le, nil
}

// ParseMetricExpr parses an expression that must be a metric query.
func ParseMetricExpr(input string) (MetricExpr, error) {
	e, err := ParseExpr(input)
	if err != nil {
		return nil, err
	}
	me, ok := e.(MetricExpr)
	if !ok {
		return nil, fmt.Errorf("logql: %q is a log query, not a metric query", input)
	}
	return me, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) backup()     { p.pos-- }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("logql: parse error at %d in %q: %s", t.pos, p.src, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, p.errf(t, "expected %s, got %s %q", k, t.kind, t.text)
	}
	return t, nil
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLBrace:
		return p.parseLogExpr()
	case t.kind == tokIdent:
		me, err := p.parseMetric()
		if err != nil {
			return nil, err
		}
		return p.maybeComparison(me)
	default:
		return nil, p.errf(t, "expected '{' or aggregation, got %s %q", t.kind, t.text)
	}
}

func (p *parser) maybeComparison(me MetricExpr) (Expr, error) {
	var op CmpOp
	switch p.peek().kind {
	case tokGt:
		op = CmpGT
	case tokGte:
		op = CmpGTE
	case tokLt:
		op = CmpLT
	case tokLte:
		op = CmpLTE
	case tokEqEq:
		op = CmpEQ
	case tokNeq:
		op = CmpNE
	default:
		return me, nil
	}
	p.next()
	numTok, err := p.expect(tokNumber)
	if err != nil {
		return nil, err
	}
	v, err := strconv.ParseFloat(numTok.text, 64)
	if err != nil {
		return nil, p.errf(numTok, "bad number: %v", err)
	}
	return &CmpExpr{Inner: me, Op: op, Threshold: v}, nil
}

func (p *parser) parseMetric() (MetricExpr, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if op, ok := rangeOps[t.text]; ok {
		return p.parseRangeAgg(op)
	}
	if vectorOps[t.text] {
		return p.parseVectorAgg(t.text)
	}
	return nil, p.errf(t, "unknown function %q", t.text)
}

// parseRangeAgg parses op '(' logExpr [| unwrap lbl] '[' dur ']' ')'.
func (p *parser) parseRangeAgg(op RangeOp) (*RangeAggExpr, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	log, unwrap, err := p.parseLogExprInner(true)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBracket); err != nil {
		return nil, err
	}
	durTok := p.next()
	if durTok.kind != tokDuration && durTok.kind != tokNumber {
		return nil, p.errf(durTok, "expected duration, got %q", durTok.text)
	}
	text := durTok.text
	if durTok.kind == tokNumber {
		text += "s"
	}
	dur, err := parseDuration(text)
	if err != nil {
		return nil, p.errf(durTok, "bad duration: %v", err)
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if unwrapOps[op] && unwrap == "" {
		return nil, fmt.Errorf("logql: %s requires '| unwrap <label>'", op)
	}
	if !unwrapOps[op] && unwrap != "" {
		return nil, fmt.Errorf("logql: %s does not take an unwrap stage", op)
	}
	return &RangeAggExpr{Op: op, Log: log, Interval: dur, Unwrap: unwrap}, nil
}

// parseVectorAgg parses op [grouping] '(' [k ','] inner ')' [grouping].
func (p *parser) parseVectorAgg(op string) (*VectorAggExpr, error) {
	agg := &VectorAggExpr{Op: op}
	if err := p.maybeGrouping(agg); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if op == "topk" || op == "bottomk" {
		kTok, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		k, err := strconv.Atoi(kTok.text)
		if err != nil || k <= 0 {
			return nil, p.errf(kTok, "bad k %q", kTok.text)
		}
		agg.Param = k
		if _, err := p.expect(tokComma); err != nil {
			return nil, err
		}
	}
	inner, err := p.parseMetric()
	if err != nil {
		return nil, err
	}
	agg.Inner = inner
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	// LogQL also allows trailing grouping: sum(...) by (a, b) — the form the
	// paper's Fig. 5 query uses.
	if err := p.maybeGrouping(agg); err != nil {
		return nil, err
	}
	return agg, nil
}

func (p *parser) maybeGrouping(agg *VectorAggExpr) error {
	t := p.peek()
	if t.kind != tokIdent || (t.text != "by" && t.text != "without") {
		return nil
	}
	if len(agg.Grouping) > 0 || agg.Without {
		return p.errf(t, "duplicate grouping clause")
	}
	p.next()
	agg.Without = t.text == "without"
	if _, err := p.expect(tokLParen); err != nil {
		return err
	}
	for {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		agg.Grouping = append(agg.Grouping, nameTok.text)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	_, err := p.expect(tokRParen)
	if err == nil && len(agg.Grouping) == 0 {
		return p.errf(t, "empty grouping")
	}
	return err
}

func (p *parser) parseLogExpr() (*LogExpr, error) {
	e, _, err := p.parseLogExprInner(false)
	return e, err
}

// parseLogExprInner parses a selector plus stages. When inRange is true it
// stops at '[' (the range bracket) and accepts an unwrap stage.
func (p *parser) parseLogExprInner(inRange bool) (*LogExpr, string, error) {
	sel, err := p.parseSelector()
	if err != nil {
		return nil, "", err
	}
	e := &LogExpr{Selector: sel}
	unwrap := ""
	for {
		t := p.peek()
		switch t.kind {
		case tokPipeExact, tokNeq, tokPipeMatch, tokNre:
			p.next()
			str, err := p.expect(tokString)
			if err != nil {
				return nil, "", err
			}
			st, err := newLineFilter(t.kind, str.text)
			if err != nil {
				return nil, "", err
			}
			e.Stages = append(e.Stages, st)
		case tokPipe:
			p.next()
			st, uw, err := p.parsePipeStage(inRange)
			if err != nil {
				return nil, "", err
			}
			if uw != "" {
				if unwrap != "" {
					return nil, "", fmt.Errorf("logql: duplicate unwrap")
				}
				unwrap = uw
				continue
			}
			e.Stages = append(e.Stages, st)
		default:
			return e, unwrap, nil
		}
	}
}

func (p *parser) parsePipeStage(allowUnwrap bool) (Stage, string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return nil, "", p.errf(t, "expected stage after '|', got %q", t.text)
	}
	switch t.text {
	case "json":
		return jsonStage{}, "", nil
	case "logfmt":
		return logfmtStage{}, "", nil
	case "pattern":
		str, err := p.expect(tokString)
		if err != nil {
			return nil, "", err
		}
		st, err := newPatternStage(str.text)
		return st, "", err
	case "regexp":
		str, err := p.expect(tokString)
		if err != nil {
			return nil, "", err
		}
		st, err := newRegexpStage(str.text)
		return st, "", err
	case "unwrap":
		if !allowUnwrap {
			return nil, "", p.errf(t, "unwrap is only valid inside a range aggregation")
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, "", err
		}
		return nil, name.text, nil
	case "line_format":
		str, err := p.expect(tokString)
		if err != nil {
			return nil, "", err
		}
		return &lineFormatStage{template: str.text}, "", nil
	case "label_format":
		dst, err := p.expect(tokIdent)
		if err != nil {
			return nil, "", err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, "", err
		}
		v := p.next()
		switch v.kind {
		case tokIdent:
			return &labelFormatStage{dst: dst.text, src: v.text}, "", nil
		case tokString:
			return &labelFormatStage{dst: dst.text, template: v.text}, "", nil
		default:
			return nil, "", p.errf(v, "label_format expects identifier or string")
		}
	}
	// Label filter: ident op (string | number)
	name := t.text
	opTok := p.next()
	switch opTok.kind {
	case tokEq, tokNeq, tokRe, tokNre:
		valTok := p.next()
		switch valTok.kind {
		case tokString:
			var mt labels.MatchType
			switch opTok.kind {
			case tokEq:
				mt = labels.MatchEqual
			case tokNeq:
				mt = labels.MatchNotEqual
			case tokRe:
				mt = labels.MatchRegexp
			case tokNre:
				mt = labels.MatchNotRegexp
			}
			m, err := labels.NewMatcher(mt, name, valTok.text)
			if err != nil {
				return nil, "", err
			}
			return &labelFilterStage{matcher: m}, "", nil
		case tokNumber:
			if opTok.kind != tokEq && opTok.kind != tokNeq {
				return nil, "", p.errf(valTok, "regexp filter needs a string")
			}
			v, err := strconv.ParseFloat(valTok.text, 64)
			if err != nil {
				return nil, "", p.errf(valTok, "bad number: %v", err)
			}
			op := CmpEQ
			if opTok.kind == tokNeq {
				op = CmpNE
			}
			return &labelFilterStage{name: name, op: op, num: v}, "", nil
		default:
			return nil, "", p.errf(valTok, "expected string or number after %s", opTok.text)
		}
	case tokGt, tokGte, tokLt, tokLte, tokEqEq:
		valTok := p.next()
		var v float64
		var err error
		switch valTok.kind {
		case tokNumber:
			v, err = strconv.ParseFloat(valTok.text, 64)
		case tokDuration:
			var d int64
			dd, derr := parseDuration(valTok.text)
			d, err = int64(dd), derr
			v = float64(d) / 1e9
		default:
			return nil, "", p.errf(valTok, "expected number after comparison")
		}
		if err != nil {
			return nil, "", p.errf(valTok, "bad number: %v", err)
		}
		var op CmpOp
		switch opTok.kind {
		case tokGt:
			op = CmpGT
		case tokGte:
			op = CmpGTE
		case tokLt:
			op = CmpLT
		case tokLte:
			op = CmpLTE
		case tokEqEq:
			op = CmpEQ
		}
		return &labelFilterStage{name: name, op: op, num: v}, "", nil
	default:
		return nil, "", p.errf(opTok, "unknown stage %q", name)
	}
}

func (p *parser) parseSelector() (labels.Selector, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var sel labels.Selector
	if p.peek().kind == tokRBrace {
		p.next()
		return sel, nil
	}
	for {
		nameTok, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		opTok := p.next()
		var mt labels.MatchType
		switch opTok.kind {
		case tokEq:
			mt = labels.MatchEqual
		case tokNeq:
			mt = labels.MatchNotEqual
		case tokRe:
			mt = labels.MatchRegexp
		case tokNre:
			mt = labels.MatchNotRegexp
		default:
			return nil, p.errf(opTok, "expected matcher operator, got %q", opTok.text)
		}
		valTok, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		m, err := labels.NewMatcher(mt, nameTok.text, valTok.text)
		if err != nil {
			return nil, err
		}
		sel = append(sel, m)
		t := p.next()
		if t.kind == tokComma {
			continue
		}
		if t.kind == tokRBrace {
			return sel, nil
		}
		return nil, p.errf(t, "expected ',' or '}', got %q", t.text)
	}
}
