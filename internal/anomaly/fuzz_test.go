package anomaly

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzMinerLearn feeds arbitrary bytes through the template miner and
// asserts the two properties the ingest path depends on: Learn never
// panics, and the hard bounds (cluster count, template token length)
// hold no matter what the syslog stream contains.
func FuzzMinerLearn(f *testing.F) {
	seeds := []string{
		"",
		" ",
		"kernel: nvme nvme0: I/O error dev 3 sector 123456",
		"sshd[4321]: Accepted publickey for root from 10.0.0.1 port 22",
		"fm_switch_offline switch=x1000c6r7 group=2",
		"CabinetLeakDetected Context=x1203 Severity=Critical",
		strings.Repeat("tok ", 100),
		strings.Repeat("\t\n ", 50),
		"\x00\xff\xfe binary garbage \x01",
		"日本語 ログ 行 temperature=93.5",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		m := NewMiner(MinerConfig{MaxClusters: 32, MaxChildren: 8, MaxTokens: 16})
		// Feed the fuzz line alongside variants so clustering paths
		// (join, wildcard-merge, force-merge, overflow) all execute.
		for i := 0; i < 8; i++ {
			id, _ := m.Learn(line)
			if id < 0 {
				t.Fatalf("negative template id %d", id)
			}
			line += " x9"
		}
		st := m.Stats()
		if st.Templates > 32 {
			t.Fatalf("cluster bound breached: %d", st.Templates)
		}
		for _, tm := range m.Templates() {
			if n := len(strings.Fields(tm.Pattern)); n > 16 && tm.ID != 0 {
				t.Fatalf("template %d has %d tokens, bound 16", tm.ID, n)
			}
			if !utf8.ValidString(tm.Pattern) && utf8.ValidString(line) {
				t.Fatalf("valid input mined invalid-UTF8 template %q", tm.Pattern)
			}
		}
	})
}
