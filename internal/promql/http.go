package promql

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/stats"
)

// Handler exposes the Prometheus-compatible query API over this engine:
//
//	GET /api/v1/query?query=...&time=<unix seconds, float>
//	GET /api/v1/query_range?query=...&start=...&end=...&step=<seconds>
//
// Responses follow the Prometheus response envelope so Grafana-style
// clients can consume them, extended with a `statistics` object in `data`
// and a Server-Timing summary header. When a tracker is attached
// (SetTracker) the query is registered on /debug/queries, limit-armed and
// killable for its duration.
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v1/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		ts, err := parseUnixSeconds(r.URL.Query().Get("time"), time.Now())
		if err != nil {
			writePromError(w, http.StatusBadRequest, err)
			return
		}
		ctx, finish := e.tracker.Start(r.Context(), "promql", q)
		vec, err := e.QueryContext(ctx, q, ts.UnixMilli())
		snap := finish(err)
		if err != nil {
			writePromError(w, http.StatusBadRequest, err)
			return
		}
		result := make([]map[string]interface{}, 0, len(vec))
		for _, s := range vec {
			result = append(result, map[string]interface{}{
				"metric": s.Labels.Map(),
				"value":  []interface{}{float64(s.T) / 1000, strconv.FormatFloat(s.V, 'g', -1, 64)},
			})
		}
		writePromJSON(w, "vector", result, snap)
	})
	mux.HandleFunc("/api/v1/query_range", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		now := time.Now()
		start, err := parseUnixSeconds(r.URL.Query().Get("start"), now.Add(-time.Hour))
		if err != nil {
			writePromError(w, http.StatusBadRequest, err)
			return
		}
		end, err := parseUnixSeconds(r.URL.Query().Get("end"), now)
		if err != nil {
			writePromError(w, http.StatusBadRequest, err)
			return
		}
		stepS := r.URL.Query().Get("step")
		if stepS == "" {
			stepS = "60"
		}
		stepF, err := strconv.ParseFloat(stepS, 64)
		if err != nil || stepF <= 0 {
			writePromError(w, http.StatusBadRequest, fmt.Errorf("bad step %q", stepS))
			return
		}
		ctx, finish := e.tracker.Start(r.Context(), "promql", q)
		if noCacheParam(r) {
			ctx = frontend.WithoutCache(ctx)
		}
		m, err := e.QueryRangeContext(ctx, q, start.UnixMilli(), end.UnixMilli(), time.Duration(stepF*float64(time.Second)))
		snap := finish(err)
		if err != nil {
			writePromError(w, queryErrorCode(err), err)
			return
		}
		result := make([]map[string]interface{}, 0, len(m))
		for _, s := range m {
			values := make([][2]interface{}, 0, len(s.Points))
			for _, p := range s.Points {
				values = append(values, [2]interface{}{float64(p.T) / 1000, strconv.FormatFloat(p.V, 'g', -1, 64)})
			}
			result = append(result, map[string]interface{}{
				"metric": s.Labels.Map(),
				"values": values,
			})
		}
		writePromJSON(w, "matrix", result, snap)
	})
	return mux
}

// noCacheParam reports whether the request asked to bypass the
// frontend's results cache (nocache=1, for A/B latency measurement).
func noCacheParam(r *http.Request) bool {
	v := r.URL.Query().Get("nocache")
	return v == "1" || v == "true"
}

// queryErrorCode maps a frontend load-shed rejection to 429 so clients
// can tell "back off" from "bad query"; everything else stays 400.
func queryErrorCode(err error) int {
	if errors.Is(err, stats.ErrQueueFull) {
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

func parseUnixSeconds(s string, def time.Time) (time.Time, error) {
	if s == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("promql: bad time %q", s)
	}
	return time.Unix(0, int64(f*float64(time.Second))), nil
}

func writePromJSON(w http.ResponseWriter, resultType string, result interface{}, snap stats.Snapshot) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Server-Timing", snap.ServerTiming())
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"status": "success",
		"data": map[string]interface{}{
			"resultType": resultType,
			"result":     result,
			"statistics": snap,
		},
	})
}

func writePromError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]interface{}{
		"status": "error", "errorType": "bad_data", "error": err.Error(),
	})
}
