package loki

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"shastamon/internal/labels"
)

func httpStore(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	s := NewStore(DefaultLimits())
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv
}

func TestHTTPPushRoundTrip(t *testing.T) {
	s, srv := httpStore(t)
	c := NewClient(srv.URL, nil)
	streams := []PushStream{{
		Labels: labels.FromStrings("Context", "x1102c4s0b0", "cluster", "perlmutter", "data_type", "redfish_event"),
		Entries: []Entry{{
			Timestamp: 1646272077000000000,
			Line:      `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"leak"}`,
		}},
	}}
	if err := c.Push(streams); err != nil {
		t.Fatal(err)
	}
	got, err := s.Select(nil, 0, 1<<62)
	if err != nil || len(got) != 1 {
		t.Fatalf("%v %v", got, err)
	}
	if got[0].Entries[0].Timestamp != 1646272077000000000 {
		t.Fatalf("%+v", got[0].Entries)
	}
}

func TestHTTPPushLiteralFig3Payload(t *testing.T) {
	s, srv := httpStore(t)
	// The exact structure of the paper's Fig. 3.
	body := `{"streams":[{"stream":{"Context":"x1102c4s0b0","cluster":"perlmutter","data_type":"redfish_event"},` +
		`"values":[["1646272077000000000","{\"Severity\":\"Warning\",\"MessageId\":\"CrayAlerts.1.0.CabinetLeakDetected\",\"Message\":\"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.\"}"]]}]}`
	resp, err := http.Post(srv.URL+"/loki/api/v1/push", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if s.Stats().Entries != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestHTTPPushErrors(t *testing.T) {
	_, srv := httpStore(t)
	resp, _ := http.Post(srv.URL+"/loki/api/v1/push", "application/json", strings.NewReader("{"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL+"/loki/api/v1/push", "application/json",
		strings.NewReader(`{"streams":[{"stream":{"a":"b"},"values":[["notanumber","x"]]}]}`))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad ts: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/loki/api/v1/push")
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
}

func TestHTTPMetadataEndpoints(t *testing.T) {
	s, srv := httpStore(t)
	_ = s.Push([]PushStream{
		{Labels: labels.FromStrings("app", "fm", "cluster", "perlmutter"), Entries: []Entry{{1, "x"}}},
		{Labels: labels.FromStrings("app", "syslog", "cluster", "perlmutter"), Entries: []Entry{{1, "y"}}},
	})
	var out struct {
		Status string          `json:"status"`
		Data   json.RawMessage `json:"data"`
	}
	get := func(path string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	get("/loki/api/v1/labels")
	var names []string
	_ = json.Unmarshal(out.Data, &names)
	if len(names) != 2 || names[0] != "app" {
		t.Fatalf("labels: %v", names)
	}
	get("/loki/api/v1/label/app/values")
	var vals []string
	_ = json.Unmarshal(out.Data, &vals)
	if len(vals) != 2 || vals[0] != "fm" {
		t.Fatalf("values: %v", vals)
	}
	get(`/loki/api/v1/series?match[]={app="fm"}`)
	var series []map[string]string
	_ = json.Unmarshal(out.Data, &series)
	if len(series) != 1 || series[0]["app"] != "fm" {
		t.Fatalf("series: %v", series)
	}
}

func TestParseSimpleSelectorErrors(t *testing.T) {
	for _, in := range []string{"noBraces", "{a}", `{a="b"`} {
		if _, err := parseSimpleSelector(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
	sel, err := parseSimpleSelector("{}")
	if err != nil || sel != nil {
		t.Fatalf("empty selector: %v %v", sel, err)
	}
}

func TestMarshalParsePushRequestRoundTrip(t *testing.T) {
	in := []PushStream{{
		Labels:  labels.FromStrings("a", "1", "b", "2"),
		Entries: []Entry{{100, "first"}, {200, "second"}},
	}}
	data, err := MarshalPushRequest(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParsePushRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Labels.Equal(in[0].Labels) || len(out[0].Entries) != 2 {
		t.Fatalf("%+v", out)
	}
	if out[0].Entries[1] != in[0].Entries[1] {
		t.Fatalf("%+v", out[0].Entries)
	}
}
