package core

import (
	"time"

	"shastamon/internal/vmalert"
)

// MetaRules is the built-in self-monitoring rule pack: the pipeline
// alerting on its own health. The rules are plain vmalert rules over the
// shastamon_* series the vmagent self-scrape lands in the warehouse TSDB,
// evaluated by the same engine and delivered through the same
// Alertmanager -> Slack (and, for critical ones, ServiceNow) path as
// hardware alerts — SERVIMON's "monitor the monitoring" on the single
// pane of glass. Enabled via Options.MetaAlerts; every alert carries
// source="shastamon" so routes and dashboards can tell self-alerts from
// hardware ones.
func MetaRules() []vmalert.Rule {
	return []vmalert.Rule{
		{
			// The headline guard: the error budget of the detection-latency
			// SLO is being consumed faster than it accrues. Burn rate is
			// breach-fraction over allowed fraction, so >1 always means the
			// objective will be missed if the trend holds.
			Name:   "ShastamonDetectionSLOBurn",
			Expr:   `max(shastamon_slo_burn_rate) by (rule) > 1`,
			Labels: map[string]string{"severity": "critical", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Detection-latency SLO error budget burning for rule {{ $labels.rule }} (burn rate {{ $value }})",
			},
		},
		{
			// A breaker that stays open means a dependency (Slack,
			// ServiceNow, an exporter) has been down long enough that
			// alerts or samples are piling up behind it.
			Name:   "ShastamonBreakerStuckOpen",
			Expr:   `max(shastamon_breaker_state) by (dependency) >= 2`,
			For:    10 * time.Second,
			Labels: map[string]string{"severity": "critical", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Circuit breaker for {{ $labels.dependency }} stuck open — deliveries are failing fast",
			},
		},
		{
			// Poison records are quarantined, not lost, but growth means a
			// producer or parser regressed and evidence is leaving the
			// alerting path.
			Name:   "ShastamonDLQGrowth",
			Expr:   `sum(increase(shastamon_dlq_records_total[10m])) by (topic) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Dead-letter queue for topic {{ $labels.topic }} grew by {{ $value }} record(s) in 10m",
			},
		},
		{
			// Stage errors are isolated per tick, so the pipeline keeps
			// running — this is the signal that it is running degraded.
			Name:   "ShastamonStageErrors",
			Expr:   `sum(increase(shastamon_stage_errors_total[5m])) by (stage) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Pipeline stage {{ $labels.stage }} failed {{ $value }} time(s) in 5m",
			},
		},
		{
			// Slow queries are logged on /debug/slowlog; this turns the log
			// into a page so capacity problems surface before users complain
			// about dashboards.
			Name:   "ShastamonQuerySlow",
			Expr:   `sum(increase(shastamon_query_slow_total[10m])) by (engine) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "{{ $value }} slow {{ $labels.engine }} query(ies) in 10m — see /debug/slowlog",
			},
		},
		{
			// A query hit a hard guardrail (bytes budget, timeout, or a
			// manual kill) and was cancelled mid-scan. Someone's query — or
			// the limit — needs attention.
			Name:   "ShastamonQueryLimitBreached",
			Expr:   `sum(increase(shastamon_query_limit_breached_total[10m])) by (reason) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "{{ $value }} query(ies) cancelled ({{ $labels.reason }}) in 10m — see /debug/slowlog",
			},
		},
		{
			// The durability layer tripped its disk breaker: ingest continues
			// in-memory (availability over durability), but a crash now loses
			// the unlogged window. Warning severity — data is still flowing —
			// so it lands in Slack without opening a ServiceNow incident.
			Name:   "ShastamonWALDegraded",
			Expr:   `max(shastamon_wal_degraded) by (store) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "WAL for the {{ $labels.store }} store degraded — ingest is memory-only until the disk recovers",
			},
		},
		{
			// The query frontend is shedding load: its admission queue
			// filled and range queries are being rejected with 429s. Either
			// something is hammering the query API or the concurrency limit
			// no longer matches the hardware.
			Name:   "ShastamonQueryQueueSaturated",
			Expr:   `sum(increase(shastamon_query_frontend_queue_rejected_total[5m])) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Query frontend shed {{ $value }} range query(ies) in 5m — queue saturated, clients see 429s",
			},
		},
		{
			// The results cache is churning: entries are evicted faster than
			// refreshes can reuse them, so the byte budget is undersized for
			// the dashboard set and the cache stops absorbing refresh load.
			Name:   "ShastamonQueryCacheThrash",
			Expr:   `sum(increase(shastamon_query_result_cache_evictions_total[10m])) > 64`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Results cache evicted {{ $value }} split(s) in 10m — cache bytes undersized for the refresh workload",
			},
		},
		{
			// Any bounded predictive state — an anomaly detector's series
			// map or the Drain template tree (pseudo-rule "log_templates") —
			// hit its memory cap: new series or log shapes are no longer
			// scored, so early warnings are silently blind there.
			Name:   "ShastamonAnomalyDetectorSaturated",
			Expr:   `max(shastamon_anomaly_detector_saturated) by (rule) > 0`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Anomaly detector state for {{ $labels.rule }} hit its memory bound — new series are dropped unscored",
			},
		},
		{
			// A burst of never-before-seen log templates is the classic
			// prelude to a novel failure mode (Park et al.): something is
			// emitting shapes the cluster has not logged before.
			Name:   "ShastamonNovelTemplateBurst",
			Expr:   `sum(increase(shastamon_templates_novel_total[10m])) > 24`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "{{ $value }} novel log template(s) mined in 10m — an unfamiliar failure shape is emerging; see /debug/templates",
			},
		},
		{
			// A stale scrape target silently freezes every rule that reads
			// its series; staleness runs on scrape timestamps so it tracks
			// simulated time in experiments too.
			Name:   "ShastamonScrapeStale",
			Expr:   `max(shastamon_scrape_staleness_seconds) by (target) > 120`,
			Labels: map[string]string{"severity": "warning", "source": "shastamon"},
			Annotations: map[string]string{
				"summary": "Scrape target {{ $labels.target }} stale for {{ $value }}s",
			},
		},
	}
}
