package anomaly

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"
)

var t0 = time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if err := (Config{Method: "magic"}).Validate(); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := (Config{Sensitivity: -1}).Validate(); err == nil {
		t.Fatal("negative sensitivity accepted")
	}
	if _, err := NewDetector(Config{Method: "nope"}); err == nil {
		t.Fatal("NewDetector accepted bad config")
	}
}

func TestZScoreLevelShift(t *testing.T) {
	d, err := NewDetector(Config{Method: MethodZScore, Sensitivity: 4, HalfLife: time.Minute, MinSamples: 10})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ts := t0
	for i := 0; i < 120; i++ {
		sc := d.Observe(1, ts, 42+rng.Float64()*0.8-0.4)
		if sc.Anomalous {
			t.Fatalf("steady noise flagged anomalous at sample %d (score %.2f)", i, sc.Score)
		}
		ts = ts.Add(5 * time.Second)
	}
	sc := d.Observe(1, ts, 70)
	if !sc.Anomalous || sc.Score < 4 {
		t.Fatalf("level shift not flagged: %+v", sc)
	}
}

func TestRateOfChangeCatchesRamp(t *testing.T) {
	// A slow ramp never strays far from the recent EWMA level, but its
	// slope is wildly off its slope history — roc fires, and fires on the
	// very first anomalous-slope sample.
	d, err := NewDetector(Config{Method: MethodRateOfChange, Sensitivity: 6, HalfLife: 2 * time.Minute, MinSamples: 12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	ts := t0
	v := 42.0
	for i := 0; i < 100; i++ {
		v = 42 + rng.Float64()*0.8 - 0.4
		if sc := d.Observe(9, ts, v); sc.Anomalous {
			t.Fatalf("random walk flagged at %d (score %.2f)", i, sc.Score)
		}
		ts = ts.Add(5 * time.Second)
	}
	fired := -1
	for i := 0; i < 20; i++ {
		v += 1.2 // +1.2 per 5s: far below any static threshold for many minutes
		if sc := d.Observe(9, ts, v); sc.Anomalous {
			fired = i
			break
		}
		ts = ts.Add(5 * time.Second)
	}
	if fired < 0 {
		t.Fatal("ramp never flagged")
	}
	if fired > 8 {
		t.Fatalf("ramp flagged only after %d samples; want early", fired)
	}
	if v > 60 {
		t.Fatalf("value already at %.1f when flagged; static thresholds would have beaten us", v)
	}
}

func TestSeasonalBaseline(t *testing.T) {
	// A clean daily-shape signal: bucket-phase sine. After two full
	// seasons, a value normal for *some* phase but wrong for *this* phase
	// must flag.
	cfg := Config{Method: MethodSeasonal, Sensitivity: 3, Season: time.Hour, Buckets: 12, MinSamples: 10}
	d, err := NewDetector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := t0
	for i := 0; i < 36; i++ { // three seasons at 5m cadence
		phase := (ts.Unix() / 300) % 12
		v := 50 + 30*float64(phase%6) // repeating staircase
		if sc := d.Observe(4, ts, v); sc.Anomalous {
			t.Fatalf("repeating shape flagged at %d: %+v", i, sc)
		}
		ts = ts.Add(5 * time.Minute)
	}
	phase := (ts.Unix() / 300) % 12
	normalElsewhere := 50 + 30*float64((phase+3)%6)
	sc := d.Observe(4, ts, normalElsewhere)
	if !sc.Anomalous {
		t.Fatalf("out-of-phase value %f not flagged: %+v", normalElsewhere, sc)
	}
}

func TestObserveIdempotentOnRepeatedTimestamp(t *testing.T) {
	d, _ := NewDetector(Config{Method: MethodZScore, MinSamples: 3})
	ts := t0
	for i := 0; i < 20; i++ {
		d.Observe(1, ts, float64(40+i%3))
		ts = ts.Add(time.Second)
	}
	once := d.Observe(1, ts, 41)
	again := d.Observe(1, ts, 41) // same timestamp: must not move the baseline
	if once != again {
		t.Fatalf("re-eval changed verdict: %+v vs %+v", once, again)
	}
}

func TestDetectorMaxSeriesBound(t *testing.T) {
	d, _ := NewDetector(Config{MaxSeries: 8, MinSamples: 1})
	for fp := uint64(0); fp < 20; fp++ {
		sc := d.Observe(fp, t0, 1)
		if fp >= 8 && (sc.Warm || sc.Anomalous) {
			t.Fatalf("dropped series %d produced a warm score", fp)
		}
	}
	st := d.Stats()
	if st.Series != 8 || st.Dropped != 12 || !st.Saturated {
		t.Fatalf("stats = %+v, want 8 series / 12 dropped / saturated", st)
	}
}

func TestMinerClustersSyslogShapes(t *testing.T) {
	m := NewMiner(MinerConfig{})
	ids := map[int]bool{}
	for i := 0; i < 50; i++ {
		id, novel := m.Learn(fmt.Sprintf("kernel: nvme nvme%d: I/O error dev %d sector %d", i%4, i%4, 1000+i))
		if i == 0 && !novel {
			t.Fatal("first line of a shape not novel")
		}
		if i > 0 && novel {
			t.Fatalf("line %d minted a second template for the same shape", i)
		}
		ids[id] = true
	}
	if len(ids) != 1 {
		t.Fatalf("one log shape mined %d templates", len(ids))
	}
	m.Learn("sshd: Accepted publickey for root from 10.0.0.1")
	tmpls := m.Templates()
	if len(tmpls) != 2 {
		t.Fatalf("got %d templates, want 2: %+v", len(tmpls), tmpls)
	}
	if tmpls[0].Count != 50 {
		t.Fatalf("templates not sorted by count: %+v", tmpls)
	}
	if !strings.Contains(tmpls[0].Pattern, wildcard) {
		t.Fatalf("variable positions not wildcarded: %q", tmpls[0].Pattern)
	}
}

func TestMinerBoundedClusters(t *testing.T) {
	m := NewMiner(MinerConfig{MaxClusters: 16, MaxChildren: 4})
	for i := 0; i < 5000; i++ {
		// Adversarial: every line is a distinct shape (unique first token,
		// varying length) so nothing clusters naturally.
		line := strings.Repeat(fmt.Sprintf("shape%dtok ", i), 1+i%7)
		m.Learn(line)
	}
	st := m.Stats()
	if st.Templates > 16 {
		t.Fatalf("cluster bound breached: %d templates", st.Templates)
	}
	if !st.Saturated {
		t.Fatal("miner not reporting saturation")
	}
	var total uint64
	for _, tm := range m.Templates() {
		total += tm.Count
	}
	if total != 5000 {
		t.Fatalf("lines lost: counted %d of 5000", total)
	}
}

func TestMinerDeterministic(t *testing.T) {
	lines := make([]string, 0, 400)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		lines = append(lines, fmt.Sprintf("app%d[%d]: event %d at node nid%06d flags=%x",
			rng.Intn(5), rng.Intn(9999), rng.Intn(50), rng.Intn(1500), rng.Intn(256)))
	}
	run := func() string {
		m := NewMiner(MinerConfig{})
		var b strings.Builder
		for _, l := range lines {
			id, novel := m.Learn(l)
			fmt.Fprintf(&b, "%d:%v;", id, novel)
		}
		for _, tm := range m.Templates() {
			fmt.Fprintf(&b, "%d=%q#%d;", tm.ID, tm.Pattern, tm.Count)
		}
		return b.String()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("same input produced different template timelines")
	}
}

func TestTemplateLabel(t *testing.T) {
	if got := TemplateLabel(7); got != "t007" {
		t.Fatalf("TemplateLabel(7) = %q", got)
	}
	if got := TemplateLabel(1234); got != "t1234" {
		t.Fatalf("TemplateLabel(1234) = %q", got)
	}
}

func TestBuildAndRenderHeatmap(t *testing.T) {
	start := t0
	end := t0.Add(30 * time.Minute)
	cells := []Cell{
		{Node: "nid001234", Time: t0.Add(2 * time.Minute), Value: 3},
		{Node: "nid001234", Time: t0.Add(17 * time.Minute), Value: 9},
		{Node: "x1203c1b0", Time: t0.Add(2 * time.Minute), Value: 1},
		{Node: "x1203c1b0", Time: t0.Add(59 * time.Minute), Value: 2}, // clamps into last bucket
	}
	h := BuildHeatmap(`q`, start, end, 5*time.Minute, cells)
	if len(h.Times) != 6 {
		t.Fatalf("got %d buckets, want 6", len(h.Times))
	}
	if len(h.Nodes) != 2 || h.Nodes[0] != "nid001234" {
		t.Fatalf("rows not sorted by total: %v", h.Nodes)
	}
	if h.Max != 9 {
		t.Fatalf("max = %f", h.Max)
	}
	if h.Values[0][0] != 3 || h.Values[0][3] != 9 {
		t.Fatalf("cells misplaced: %v", h.Values[0])
	}
	if h.Values[1][5] != 2 {
		t.Fatalf("out-of-range cell not clamped: %v", h.Values[1])
	}
	out := RenderHeatmap(h)
	for _, want := range []string{"nid001234", "x1203c1b0", "scale:", "@"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	empty := RenderHeatmap(BuildHeatmap(`q`, start, end, time.Minute, nil))
	if !strings.Contains(empty, "no matching errors") {
		t.Fatalf("empty render: %q", empty)
	}
}
