// Package chaos is the pipeline's fault injector: named probe points wired
// into the Kafka broker's produce path, the telemetry API transport, the
// warehouse ingestion path and the notifier HTTP transports. Tests (and
// omnid's chaos mode) arm faults — error probabilities, deterministic
// failure budgets, added latency, drops, synthesized HTTP statuses — and
// the fault-tolerance layer must absorb them: the chaos suite's contract
// is that an injected leak still produces its ServiceNow incident once
// faults clear, with zero pipeline exits.
package chaos

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error returned by a firing fault point; wrap checks
// use errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// ErrDropped marks an operation black-holed by a drop probe.
var ErrDropped = fmt.Errorf("%w: dropped", ErrInjected)

// Fault arms one probe point. Zero-value fields are inactive.
type Fault struct {
	// ErrProb is the probability in [0,1] that a hit fails. If zero while
	// Times is set, every hit fails until the budget is spent.
	ErrProb float64
	// Times caps how many hits fail; after that the fault self-heals
	// (deterministic outage bursts). 0 means unlimited.
	Times int
	// After skips the first N hits before the fault can fire — combined
	// with Times it places a deterministic failure window mid-stream
	// ("crash on exactly the k-th disk write").
	After int
	// Latency is added to every hit while the fault is armed, fired or not.
	Latency time.Duration
	// DropProb black-holes the operation instead of failing it loudly.
	DropProb float64
	// HTTPStatus, on transport probes, synthesizes a response with this
	// status instead of a transport error (5xx bursts). Ignored elsewhere.
	HTTPStatus int
	// Err, when set, is the concrete error a firing fault injects instead
	// of the generic one — e.g. syscall.ENOSPC for a full-disk scenario.
	// The injected error still matches ErrInjected via errors.Is.
	Err error
	// Short, on writer probes, makes a firing fault write roughly half the
	// buffer before failing — a torn write that leaves a partial record on
	// disk. Ignored on non-writer probes.
	Short bool
}

type pointState struct {
	fault Fault
	fired int // failures + drops delivered so far
	hits  int
}

// Injector holds the armed faults. One injector is threaded through the
// pipeline; probe points are addressed by name ("kafka.produce",
// "telemetry.http", "warehouse.ingest", "slack.http", "servicenow.http").
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*pointState
}

// New returns an injector with a seeded RNG so probabilistic faults are
// reproducible.
func New(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), points: map[string]*pointState{}}
}

// Set arms (or re-arms) a fault point.
func (i *Injector) Set(point string, f Fault) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.points[point] = &pointState{fault: f}
}

// Clear disarms one point.
func (i *Injector) Clear(point string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.points, point)
}

// ClearAll disarms everything — "faults clear" in the chaos experiments.
func (i *Injector) ClearAll() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.points = map[string]*pointState{}
}

// Fired reports how many failures/drops a point has delivered.
func (i *Injector) Fired(point string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if ps := i.points[point]; ps != nil {
		return ps.fired
	}
	return 0
}

// decide evaluates one hit under the lock: added latency, and whether the
// hit fails, drops, or passes.
func (i *Injector) decide(point string) (latency time.Duration, err error) {
	if i == nil {
		return 0, nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	ps := i.points[point]
	if ps == nil {
		return 0, nil
	}
	ps.hits++
	f := ps.fault
	latency = f.Latency
	if ps.hits <= f.After {
		return latency, nil // warm-up window: fault not yet eligible
	}
	if f.Times > 0 && ps.fired >= f.Times {
		return latency, nil // budget spent: self-healed
	}
	if f.DropProb > 0 && i.rng.Float64() < f.DropProb {
		ps.fired++
		return latency, ErrDropped
	}
	errProb := f.ErrProb
	if errProb == 0 && f.Times > 0 {
		errProb = 1
	}
	if errProb > 0 && i.rng.Float64() < errProb {
		ps.fired++
		if f.Err != nil {
			// Wrap both so errors.Is matches ErrInjected and the concrete
			// error (e.g. syscall.ENOSPC).
			return latency, fmt.Errorf("%w at %s: %w", ErrInjected, point, f.Err)
		}
		return latency, fmt.Errorf("%w at %s", ErrInjected, point)
	}
	return latency, nil
}

// Hit evaluates the probe point: sleeps any armed latency, then returns
// the injected error if the fault fires. A nil Injector never fires, so
// production paths can call Hit unconditionally.
func (i *Injector) Hit(point string) error {
	latency, err := i.decide(point)
	if latency > 0 {
		time.Sleep(latency)
	}
	return err
}

// HookFor adapts a probe point to the func(string) error hook shape the
// Kafka broker and warehouse accept; the hooked component's argument
// (topic, operation) is appended to the injected error.
func (i *Injector) HookFor(point string) func(string) error {
	return func(detail string) error {
		if err := i.Hit(point); err != nil {
			return fmt.Errorf("%w (%s)", err, detail)
		}
		return nil
	}
}

// transport injects faults in front of a base RoundTripper.
type transport struct {
	inj   *Injector
	point string
	base  http.RoundTripper
}

// Transport wraps base (nil takes http.DefaultTransport) with the probe
// point: a firing fault yields either a synthesized HTTPStatus response
// (5xx burst) or a transport-level error (connection failure/drop).
func (i *Injector) Transport(point string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: i, point: point, base: base}
}

// Client returns an *http.Client whose transport is the probe point — the
// shape the notifier and telemetry client constructors accept.
func (i *Injector) Client(point string) *http.Client {
	return &http.Client{Transport: i.Transport(point, nil), Timeout: 30 * time.Second}
}

// faultWriter injects faults in front of a base io.Writer.
type faultWriter struct {
	inj   *Injector
	point string
	base  io.Writer
}

func (w *faultWriter) Write(p []byte) (int, error) {
	latency, err := w.inj.decide(w.point)
	if latency > 0 {
		time.Sleep(latency)
	}
	if err != nil {
		w.inj.mu.Lock()
		short := false
		if ps := w.inj.points[w.point]; ps != nil {
			short = ps.fault.Short
		}
		w.inj.mu.Unlock()
		if short && len(p) > 1 {
			// Torn write: half the buffer lands before the fault hits,
			// leaving a partial frame for recovery to repair.
			n, werr := w.base.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return w.base.Write(p)
}

// Writer wraps base with a disk-write probe point: a firing fault fails
// the write (optionally after a torn partial write, or with a concrete
// errno like ENOSPC via Fault.Err). A nil Injector returns base unchanged.
func (i *Injector) Writer(point string, base io.Writer) io.Writer {
	if i == nil {
		return base
	}
	return &faultWriter{inj: i, point: point, base: base}
}

// WriterWrapper adapts a probe point to the func(io.Writer) io.Writer hook
// shape the WAL's Options.WrapWriter accepts. A nil Injector returns nil,
// so production paths can assign it unconditionally.
func (i *Injector) WriterWrapper(point string) func(io.Writer) io.Writer {
	if i == nil {
		return nil
	}
	return func(w io.Writer) io.Writer { return i.Writer(point, w) }
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	latency, err := t.inj.decide(t.point)
	if latency > 0 {
		time.Sleep(latency)
	}
	if err != nil {
		t.inj.mu.Lock()
		status := 0
		if ps := t.inj.points[t.point]; ps != nil {
			status = ps.fault.HTTPStatus
		}
		t.inj.mu.Unlock()
		if status != 0 && !errors.Is(err, ErrDropped) {
			// Synthesized status response: the request never reaches the
			// dependency, mimicking an overloaded or erroring server.
			return &http.Response{
				StatusCode: status,
				Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
				Body:       io.NopCloser(strings.NewReader("chaos: injected status")),
				Header:     http.Header{},
				Request:    req,
			}, nil
		}
		return nil, fmt.Errorf("%w: %s %s", err, req.Method, req.URL.Path)
	}
	return t.base.RoundTrip(req)
}
