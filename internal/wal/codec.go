package wal

import (
	"encoding/binary"
	"fmt"

	"shastamon/internal/labels"
)

// Record type tags: the first byte of every WAL payload, so a replay that
// lands on the wrong store's log fails loudly instead of misparsing.
const (
	RecLogStream byte = 1
	RecSample    byte = 2
)

// AppendUvarint / AppendVarint append a varint to buf.
func AppendUvarint(buf []byte, v uint64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	return append(buf, scratch[:n]...)
}

func AppendVarint(buf []byte, v int64) []byte {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutVarint(scratch[:], v)
	return append(buf, scratch[:n]...)
}

// AppendLabels appends a label set: uvarint count, then length-prefixed
// name/value pairs.
func AppendLabels(buf []byte, ls labels.Labels) []byte {
	buf = AppendUvarint(buf, uint64(len(ls)))
	for _, l := range ls {
		buf = AppendUvarint(buf, uint64(len(l.Name)))
		buf = append(buf, l.Name...)
		buf = AppendUvarint(buf, uint64(len(l.Value)))
		buf = append(buf, l.Value...)
	}
	return buf
}

// ReadUvarint / ReadVarint consume a varint from the front of buf,
// returning the remainder.
func ReadUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrCorrupt)
	}
	return v, buf[n:], nil
}

func ReadVarint(buf []byte) (int64, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrCorrupt)
	}
	return v, buf[n:], nil
}

// ReadLabels consumes an AppendLabels-encoded label set.
func ReadLabels(buf []byte) (labels.Labels, []byte, error) {
	count, buf, err := ReadUvarint(buf)
	if err != nil || count > 1<<16 {
		return nil, nil, fmt.Errorf("%w: label count", ErrCorrupt)
	}
	ls := make(labels.Labels, 0, count)
	for i := uint64(0); i < count; i++ {
		var name, value string
		if name, buf, err = readString(buf); err != nil {
			return nil, nil, err
		}
		if value, buf, err = readString(buf); err != nil {
			return nil, nil, err
		}
		ls = append(ls, labels.Label{Name: name, Value: value})
	}
	return ls, buf, nil
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := ReadUvarint(buf)
	if err != nil || n > uint64(len(buf)) {
		return "", nil, fmt.Errorf("%w: string length", ErrCorrupt)
	}
	return string(buf[:n]), buf[n:], nil
}
