package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"shastamon/internal/anomaly"
	"shastamon/internal/core"
	"shastamon/internal/kafka"
	"shastamon/internal/logql"
	"shastamon/internal/obs"
	"shastamon/internal/promql"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// serverOpts configures the status server independently of flag parsing
// so tests can build the exact handler omnid serves.
type serverOpts struct {
	metrics bool
	auth    *tenant.Auth
	start   time.Time
}

// queryStatus maps a query-engine error to its HTTP status: admission
// shed is backpressure (429), a deadline is an upstream timeout (504),
// anything else an internal failure (500). Parse and validation errors
// never reach here — handlers reject those with 400 before querying.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, stats.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, stats.ErrQueryTimeout):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// parseTimeParam reads an optional query-range bound: empty takes def,
// an integer is unix nanoseconds, anything else must parse as RFC3339.
func parseTimeParam(v string, def time.Time) (time.Time, error) {
	if v == "" {
		return def, nil
	}
	if ns, err := strconv.ParseInt(v, 10, 64); err == nil {
		return time.Unix(0, ns), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("want RFC3339 or unix nanoseconds, got %q", v)
	}
	return t, nil
}

// newStatusMux assembles omnid's status/query server. The query and
// ingest endpoints run behind the tenant auth middleware (a no-op
// passthrough stamping the default tenant when no tokens are
// configured); status, notification and debug endpoints stay open.
func newStatusMux(p *core.Pipeline, o serverOpts) *http.ServeMux {
	if o.start.IsZero() {
		o.start = time.Now()
	}
	if o.auth == nil {
		o.auth = tenant.NewAuth(nil)
	}
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{
			"uptime_seconds": time.Since(o.start).Seconds(),
			"warehouse":      p.Warehouse.Stats(),
			"kafka":          p.Broker.Stats(),
			"vmagent":        p.VMAgent.Stats(),
			"slack_messages": len(p.Slack.Messages()),
			"sn_incidents":   len(p.ServiceNow.Incidents()),
		})
	})
	mux.HandleFunc("/slack", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Slack.Messages())
	})
	mux.HandleFunc("/servicenow/alerts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.ServiceNow.Alerts())
	})
	mux.HandleFunc("/servicenow/incidents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.ServiceNow.Incidents())
	})
	mux.Handle("/query/logs", o.auth.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if _, err := logql.ParseLogExpr(q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		now := time.Now()
		start, err := parseTimeParam(r.URL.Query().Get("start"), now.Add(-time.Hour))
		if err != nil {
			http.Error(w, "start: "+err.Error(), http.StatusBadRequest)
			return
		}
		end, err := parseTimeParam(r.URL.Query().Get("end"), now)
		if err != nil {
			http.Error(w, "end: "+err.Error(), http.StatusBadRequest)
			return
		}
		streams, _, err := p.Warehouse.QueryLogsContext(r.Context(), q, start.UnixNano(), end.UnixNano())
		if err != nil {
			http.Error(w, err.Error(), queryStatus(err))
			return
		}
		writeJSON(w, streams)
	})))
	mux.Handle("/query/metrics", o.auth.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		if _, err := promql.Parse(q); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		vec, _, err := p.Warehouse.QueryMetricsContext(r.Context(), q, time.Now().UnixMilli())
		if err != nil {
			http.Error(w, err.Error(), queryStatus(err))
			return
		}
		writeJSON(w, vec)
	})))
	// Node × time error heatmap, computed through the query frontend. The
	// same grid Grafana's heatmap panel would draw, served as JSON (or as
	// terminal shading with format=render) so logcli and curl get it too.
	mux.Handle("/api/v1/heatmap", o.auth.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		since, step := 30*time.Minute, 2*time.Minute
		if s := r.URL.Query().Get("since"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "since: want a positive duration like 30m", http.StatusBadRequest)
				return
			}
			since = d
		}
		if s := r.URL.Query().Get("step"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "step: want a positive duration like 2m", http.StatusBadRequest)
				return
			}
			step = d
		}
		if err := anomaly.ValidateHeatmapWindow(since, step); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		end := time.Now()
		hm, err := p.ErrorHeatmap(r.Context(), end.Add(-since), end, step)
		if err != nil {
			http.Error(w, err.Error(), queryStatus(err))
			return
		}
		if r.URL.Query().Get("format") == "render" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, anomaly.RenderHeatmap(hm))
			return
		}
		writeJSON(w, hm)
	})))
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		out, err := p.RenderSinglePane(now.Add(-time.Hour), now, time.Minute)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	})
	// Dead-letter queue inspection and replay: the operator workflow for
	// poison pills — read the quarantine reasons, fix the producer or
	// parser, then replay the records through the normal path.
	mux.HandleFunc("/debug/dlq", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		topics := p.Broker.DLQTopics()
		if len(topics) == 0 {
			fmt.Fprintln(w, "no quarantined records")
			return
		}
		for _, topic := range topics {
			msgs, err := p.DLQRecords(topic)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			fmt.Fprintf(w, "# %s: %d record(s)\n", topic, len(msgs))
			fmt.Fprint(w, kafka.FormatDLQ(msgs))
		}
	})
	mux.HandleFunc("/debug/dlq/replay", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		topic := r.URL.Query().Get("topic")
		if topic == "" {
			http.Error(w, "topic parameter required", http.StatusBadRequest)
			return
		}
		n, err := p.ReplayDLQ(topic)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]int{"replayed": n})
	})
	// Mount the component APIs: Loki push/metadata + LogQL queries,
	// Prometheus-style queries, TSDB import, Alertmanager management.
	// Push and query mounts share the tenant auth gate with /query/*.
	for _, path := range []string{
		"/loki/api/v1/push", "/loki/api/v1/labels", "/loki/api/v1/label/", "/loki/api/v1/series",
	} {
		mux.Handle(path, o.auth.Middleware(p.Warehouse.Logs.Handler()))
	}
	mux.Handle("/loki/api/v1/query", o.auth.Middleware(p.Warehouse.LogQL.Handler()))
	mux.Handle("/loki/api/v1/query_range", o.auth.Middleware(p.Warehouse.LogQL.Handler()))
	mux.Handle("/api/v1/query", o.auth.Middleware(p.Warehouse.PromQL.Handler()))
	mux.Handle("/api/v1/query_range", o.auth.Middleware(p.Warehouse.PromQL.Handler()))
	mux.Handle("/api/v1/import/prometheus", o.auth.Middleware(p.Warehouse.Metrics.Handler()))
	mux.Handle("/api/v2/", p.Alertmanager.Handler())

	if o.metrics {
		// Self-monitoring and profiling on the same listener: the united
		// shastamon_* registries, the event tracer, and pprof.
		mux.Handle("/metrics", obs.Handler(obs.GathererFunc(p.Gather)))
		mux.Handle("/debug/trace/", p.Tracer.Handler())
		mux.Handle("/debug/slo", p.SLO().Handler())
		qh := p.Warehouse.Tracker.Handler()
		mux.Handle("/debug/queries", qh)
		mux.Handle("/debug/queries/", qh)
		mux.Handle("/debug/slowlog", qh)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
