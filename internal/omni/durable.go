// Durability wiring for the warehouse: Open attaches the WAL + checkpoint
// layers of both stores under one data directory, MaybeCheckpoint drives
// the bounded-replay schedule from the pipeline tick, and Shutdown flushes
// everything for a replay-free next start. A warehouse built with New
// stays memory-only; every durability entry point is a no-op on it.
package omni

import (
	"errors"
	"path/filepath"
	"time"

	"shastamon/internal/loki"
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
	"shastamon/internal/resilience"
	"shastamon/internal/tsdb"
)

// DefaultCheckpointEvery is the MaybeCheckpoint interval when
// Config.CheckpointEvery is zero.
const DefaultCheckpointEvery = time.Minute

// Recovery reports what Open reconstructed from the data directory.
type Recovery struct {
	Logs    loki.RecoveryInfo
	Metrics tsdb.RecoveryInfo
}

// Replayed is the total WAL records replayed across both stores.
func (r Recovery) Replayed() int { return r.Logs.Replayed + r.Metrics.Replayed }

// Corrupt is the total corrupt records/files dropped during recovery.
func (r Recovery) Corrupt() int { return r.Logs.Corrupt + r.Metrics.Corrupt }

// Open builds a warehouse like New and, when cfg.DataDir is set, enables
// durability on both stores: the log store under DataDir/logs and the
// metrics head under DataDir/metrics, each with its own per-shard WALs,
// checkpoints and (for logs) sealed-chunk spill files. Whatever the
// directory already holds — a clean checkpoint, a crash's WAL tail, or a
// torn last record — is recovered before Open returns.
func Open(cfg Config) (*Warehouse, error) {
	w := New(cfg)
	if cfg.DataDir == "" {
		return w, nil
	}
	logInfo, err := w.Logs.EnableDurability(filepath.Join(cfg.DataDir, "logs"), cfg.WAL)
	if err != nil {
		return nil, err
	}
	metInfo, err := w.Metrics.EnableDurability(filepath.Join(cfg.DataDir, "metrics"), cfg.WAL)
	if err != nil {
		return nil, err
	}
	w.durable = true
	w.recovery = Recovery{Logs: logInfo, Metrics: metInfo}
	w.checkpointEvery = cfg.CheckpointEvery
	if w.checkpointEvery <= 0 {
		w.checkpointEvery = DefaultCheckpointEvery
	}
	// Recovery replays through the normal ingest paths without touching
	// the warehouse counters; resync them from the store stats.
	lst, mst := w.Logs.Stats(), w.Metrics.Stats()
	w.logMessages.Store(lst.Entries)
	w.logBytes.Store(lst.RawBytes)
	w.samples.Store(mst.Samples)
	w.reg.Collect(w.collectWAL)
	return w, nil
}

// Durable reports whether the warehouse runs with a WAL behind it.
func (w *Warehouse) Durable() bool { return w.durable }

// Recovery returns what Open reconstructed; ok is false for a
// memory-only warehouse.
func (w *Warehouse) Recovery() (Recovery, bool) { return w.recovery, w.durable }

// WALDegraded reports whether either store's durability layer is
// currently degraded (disk faults tripped the breaker; ingest continues
// in-memory).
func (w *Warehouse) WALDegraded() bool {
	if !w.durable {
		return false
	}
	return w.Logs.WALStats().Degraded != 0 || w.Metrics.WALStats().Degraded != 0
}

// Checkpoint snapshots both stores and truncates their WALs. Errors from
// the two stores are joined; a failed checkpoint leaves the previous one
// and the full WAL intact.
func (w *Warehouse) Checkpoint() error {
	if !w.durable {
		return nil
	}
	return errors.Join(w.Logs.Checkpoint(), w.Metrics.Checkpoint())
}

// MaybeCheckpoint checkpoints when CheckpointEvery has elapsed since the
// last one. The pipeline tick calls this; the first tick after Open
// starts the clock rather than checkpointing immediately.
func (w *Warehouse) MaybeCheckpoint(now time.Time) error {
	if !w.durable {
		return nil
	}
	last := w.lastCkpt.Load()
	if last == 0 {
		w.lastCkpt.CompareAndSwap(0, now.UnixNano())
		return nil
	}
	if now.Sub(time.Unix(0, last)) < w.checkpointEvery {
		return nil
	}
	if !w.lastCkpt.CompareAndSwap(last, now.UnixNano()) {
		return nil // another ticker won the race
	}
	return w.Checkpoint()
}

// Shutdown checkpoints both stores, closes their WALs and leaves CLEAN
// markers so the next Open skips replay. The warehouse stays usable
// in-memory afterwards. Callers should quiesce ingest first.
func (w *Warehouse) Shutdown() error {
	if !w.durable {
		return nil
	}
	return errors.Join(w.Logs.Shutdown(), w.Metrics.Shutdown())
}

// collectWAL derives the shastamon_wal_* families from both stores'
// durability counters at gather time. Registered only by Open, so a
// memory-only warehouse exposes no WAL families at all.
func (w *Warehouse) collectWAL() []promtext.Family {
	ls, ms := w.Logs.WALStats(), w.Metrics.WALStats()
	pair := func(typ, name, help string, lv, mv float64) promtext.Family {
		return obs.Sample(obs.Fam(typ, obs.Namespace+name, help, lv, "store", "logs"),
			mv, "store", "metrics")
	}
	return []promtext.Family{
		pair("counter", "wal_appends_total",
			"Records appended to the write-ahead logs.",
			float64(ls.Appends), float64(ms.Appends)),
		pair("counter", "wal_bytes_total",
			"Payload bytes appended to the write-ahead logs.",
			float64(ls.Bytes), float64(ms.Bytes)),
		pair("counter", "wal_errors_total",
			"WAL disk operations that failed.",
			float64(ls.Errors), float64(ms.Errors)),
		pair("counter", "wal_skipped_records_total",
			"Records not logged because the degradation breaker was open.",
			float64(ls.Skipped), float64(ms.Skipped)),
		pair("counter", "wal_corrupt_records_total",
			"Corrupt or torn records dropped during recovery.",
			float64(ls.Corrupt), float64(ms.Corrupt)),
		pair("counter", "wal_replayed_records_total",
			"Records replayed from the WAL at startup.",
			float64(ls.Replayed), float64(ms.Replayed)),
		pair("counter", "wal_checkpoints_total",
			"Checkpoints written.",
			float64(ls.Checkpoints), float64(ms.Checkpoints)),
		pair("counter", "wal_spilled_chunks_total",
			"Sealed chunks spilled to disk files.",
			float64(ls.Spilled), float64(ms.Spilled)),
		pair("counter", "wal_fsyncs_total",
			"fsync calls issued by the write-ahead logs.",
			float64(ls.Fsyncs), float64(ms.Fsyncs)),
		pair("gauge", "wal_segments",
			"Live WAL segment files.",
			float64(ls.Segments), float64(ms.Segments)),
		pair("gauge", "wal_degraded",
			"1 while the store has fallen back to memory-only ingest.",
			float64(ls.Degraded), float64(ms.Degraded)),
	}
}

// NamedBreaker pairs a durability breaker with the dependency name it
// reports under in the unified shastamon_breaker_state gauge.
type NamedBreaker struct {
	Name    string
	Breaker *resilience.Breaker
}

// WALBreakers returns the durability breakers for the unified breaker
// gauge; empty for a memory-only warehouse.
func (w *Warehouse) WALBreakers() []NamedBreaker {
	if !w.durable {
		return nil
	}
	return []NamedBreaker{
		{Name: "wal:logs", Breaker: w.Logs.WALBreaker()},
		{Name: "wal:metrics", Breaker: w.Metrics.WALBreaker()},
	}
}
