package ldms

import (
	"encoding/json"
	"testing"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/labels"
	"shastamon/internal/promql"
	"shastamon/internal/tsdb"
)

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(1); err == nil {
		t.Fatal("no nodes accepted")
	}
}

func TestSampleShape(t *testing.T) {
	s, err := NewSampler(1, "x1000c0s0b0n0", "x1000c0s0b0n1")
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(100, 0).UTC()
	sets := s.Sample(ts)
	if len(sets) != 6 { // 2 nodes x 3 samplers
		t.Fatalf("sets = %d", len(sets))
	}
	samplers := map[string]int{}
	for _, set := range sets {
		samplers[set.Sampler]++
		if set.Timestamp != ts || len(set.Metrics) == 0 {
			t.Fatalf("%+v", set)
		}
	}
	if samplers["meminfo"] != 2 || samplers["vmstat"] != 2 || samplers["procnetdev"] != 2 {
		t.Fatalf("%v", samplers)
	}
}

func TestCountersMonotonic(t *testing.T) {
	s, _ := NewSampler(2, "n1")
	var prev float64 = -1
	for i := 0; i < 10; i++ {
		sets := s.Sample(time.Unix(int64(i), 0))
		for _, set := range sets {
			if set.Sampler != "vmstat" {
				continue
			}
			v := set.Metrics["ctxt"]
			if v < prev {
				t.Fatalf("counter regressed: %v < %v", v, prev)
			}
			prev = v
		}
	}
}

func TestDeterministic(t *testing.T) {
	mk := func() []MetricSet {
		s, _ := NewSampler(7, "n1", "n2")
		var out []MetricSet
		for i := 0; i < 5; i++ {
			out = append(out, s.Sample(time.Unix(int64(i), 0))...)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i].Producer != b[i].Producer || a[i].Metrics["MemFree"] != b[i].Metrics["MemFree"] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestProducerToKafkaToTSDB(t *testing.T) {
	broker := kafka.NewBroker()
	s, _ := NewSampler(3, "x1000c0s0b0n0")
	p, err := NewProducer(s, broker, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reusing the broker/topic is fine.
	if _, err := NewProducer(s, broker, 2); err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(1000, 0).UTC()
	n, err := p.ProduceOnce(ts)
	if err != nil || n != 3 {
		t.Fatalf("%d %v", n, err)
	}
	// Consume and land in the TSDB.
	c := kafka.NewConsumer(broker, "g", "m", Topic)
	defer c.Close()
	db := tsdb.New()
	msgs, err := c.Poll(100, 0)
	if err != nil || len(msgs) != 3 {
		t.Fatalf("%d %v", len(msgs), err)
	}
	total := 0
	for _, m := range msgs {
		k, err := AppendTo(db, m.Value)
		if err != nil {
			t.Fatal(err)
		}
		total += k
	}
	if total != 10 { // 4 + 3 + 3 metrics
		t.Fatalf("samples = %d", total)
	}
	eng := promql.NewEngine(db)
	vec, err := eng.Query(`ldms_meminfo_MemFree`, ts.UnixMilli())
	if err != nil || len(vec) != 1 {
		t.Fatalf("%v %v", vec, err)
	}
	if vec[0].Labels.Get("xname") != "x1000c0s0b0n0" || vec[0].Labels.Get("sampler") != "meminfo" {
		t.Fatalf("%v", vec[0].Labels)
	}
	// Network counters support rate() after a second round.
	_, _ = p.ProduceOnce(ts.Add(10 * time.Second))
	msgs, _ = c.Poll(100, 0)
	for _, m := range msgs {
		_, _ = AppendTo(db, m.Value)
	}
	vec, err = eng.Query(`rate(ldms_procnetdev_rx_bytes[1m])`, ts.Add(10*time.Second).UnixMilli())
	if err != nil || len(vec) != 1 || vec[0].V <= 0 {
		t.Fatalf("rate: %v %v", vec, err)
	}
}

func TestAppendToBadRecord(t *testing.T) {
	if _, err := AppendTo(tsdb.New(), []byte("{")); err == nil {
		t.Fatal("bad record accepted")
	}
}

func TestToSeriesLabels(t *testing.T) {
	set := MetricSet{Producer: "n1", Sampler: "vmstat", Timestamp: time.Unix(5, 0), Metrics: map[string]float64{"ctxt": 9}}
	raw, _ := json.Marshal(set)
	names, lss, mss, vals, err := ToSeries(raw)
	if err != nil || len(names) != 1 {
		t.Fatalf("%v %v", names, err)
	}
	if names[0] != "ldms_vmstat_ctxt" || vals[0] != 9 || mss[0] != 5000 {
		t.Fatalf("%v %v %v", names, vals, mss)
	}
	if !lss[0].Equal(labels.FromStrings("sampler", "vmstat", "xname", "n1")) {
		t.Fatalf("%v", lss[0])
	}
}
