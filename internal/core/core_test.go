package core

import (
	"strings"
	"testing"
	"time"

	"shastamon/internal/hms"
	"shastamon/internal/loki"
	"shastamon/internal/redfish"
	"shastamon/internal/ruler"
	"shastamon/internal/servicenow"
	"shastamon/internal/shasta"
	"shastamon/internal/syslogd"
	"shastamon/internal/vmalert"
)

func smallCluster() shasta.Config {
	return shasta.Config{
		Name: "perlmutter", Cabinets: []int{1002, 1203},
		ChassisPerCabinet: 2, BladesPerChassis: 1, NodesPerBMC: 1, SwitchesPerChassis: 8, Seed: 3,
	}
}

// The two rules of the paper's case studies.
var leakRule = ruler.Rule{
	Name:   "PerlmutterCabinetLeak",
	Expr:   `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message) > 0`,
	For:    time.Minute,
	Labels: map[string]string{"severity": "critical"},
	Annotations: map[string]string{
		"summary": "Liquid leak detected at {{ $labels.Context }}",
	},
}

var switchRule = ruler.Rule{
	Name:   "SwitchOffline",
	Expr:   `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [5m])) by (sev, problem, xname, state) > 0`,
	For:    0,
	Labels: map[string]string{"severity": "critical"},
	Annotations: map[string]string{
		"summary": "switch {{ $labels.xname }} changed state to {{ $labels.state }}",
	},
}

func newPipeline(t *testing.T, opts Options) *Pipeline {
	t.Helper()
	if opts.Cluster.Name == "" {
		opts.Cluster = smallCluster()
	}
	p, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func mustTick(t *testing.T, p *Pipeline, now time.Time) {
	t.Helper()
	if err := p.Tick(now); err != nil {
		t.Fatal(err)
	}
}

// Case study A: leak detection end-to-end — Redfish event through HMS,
// Kafka, the Telemetry API, Loki, the Ruler's LogQL rule, Alertmanager,
// and out to Slack and ServiceNow.
func TestCaseStudyALeakDetection(t *testing.T) {
	p := newPipeline(t, Options{LogRules: []ruler.Rule{leakRule}})
	t0 := time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC)
	mustTick(t, p, t0)

	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)                     // event lands in Loki; rule pending
	mustTick(t, p, leakTime.Add(61*time.Second)) // for: 1m satisfied; alert to AM
	mustTick(t, p, leakTime.Add(62*time.Second)) // group_wait elapsed; notified

	// The event is queryable in Loki in its Fig. 3 form.
	streams, err := p.Warehouse.LogQL.QueryLogs(`{data_type="redfish_event"} |= "CabinetLeakDetected"`,
		leakTime.Add(-time.Minute).UnixNano(), leakTime.Add(time.Minute).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || streams[0].Labels.Get("Context") != "x1203c1b0" {
		t.Fatalf("loki streams: %+v", streams)
	}

	// Slack got the enriched alert (Fig. 6).
	msgs := p.Slack.Messages()
	if len(msgs) == 0 {
		t.Fatal("no slack message")
	}
	found := false
	for _, m := range msgs {
		for _, att := range m.Attachments {
			if att.Title == "PerlmutterCabinetLeak" && strings.Contains(att.Text, "x1203c1b0") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("slack messages: %+v", msgs)
	}

	// ServiceNow correlated the event into an alert and opened an incident
	// bound to the chassis CI.
	alerts := p.ServiceNow.Alerts()
	if len(alerts) != 1 || alerts[0].Node != "x1203c1b0" || alerts[0].CI != "x1203c1b0" {
		t.Fatalf("sn alerts: %+v", alerts)
	}
	incs := p.ServiceNow.Incidents()
	if len(incs) != 1 || incs[0].Priority != servicenow.SeverityCritical {
		t.Fatalf("sn incidents: %+v", incs)
	}
	if !strings.Contains(incs[0].Description, "x1203c1b0") {
		t.Fatalf("incident description: %q", incs[0].Description)
	}
}

// Case study B: switch offline detection — fabric manager API poll, the
// Fig. 7 event format in Loki, the Fig. 8 pattern rule, Slack (Fig. 9).
func TestCaseStudyBSwitchOffline(t *testing.T) {
	p := newPipeline(t, Options{LogRules: []ruler.Rule{switchRule}})
	t0 := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC)
	mustTick(t, p, t0) // primes the fabric monitor baseline

	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		t.Fatal(err)
	}
	t1 := t0.Add(time.Minute)
	mustTick(t, p, t1)                  // monitor emits event; rule fires
	mustTick(t, p, t1.Add(time.Second)) // notification flushed

	// The exact Fig. 7 line is in Loki under app/cluster labels.
	streams, err := p.Warehouse.LogQL.QueryLogs(`{app="fabric_manager_monitor"}`,
		t0.UnixNano(), t1.Add(time.Minute).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 {
		t.Fatalf("streams: %+v", streams)
	}
	wantLine := "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"
	if streams[0].Entries[0].Line != wantLine {
		t.Fatalf("line: %q", streams[0].Entries[0].Line)
	}
	if streams[0].Labels.Get("cluster") != "perlmutter" {
		t.Fatalf("labels: %v", streams[0].Labels)
	}

	// Slack notification carries the pattern-extracted fields (Fig. 9).
	msgs := p.Slack.Messages()
	if len(msgs) == 0 {
		t.Fatal("no slack message")
	}
	var text string
	for _, m := range msgs {
		for _, att := range m.Attachments {
			if att.Title == "SwitchOffline" {
				text = att.Text
			}
		}
	}
	for _, want := range []string{"x1002c1r7b0", "UNKNOWN", "fm_switch_offline"} {
		if !strings.Contains(text, want) {
			t.Fatalf("slack text missing %q:\n%s", want, text)
		}
	}

	// ServiceNow opened an incident against the switch CI.
	incs := p.ServiceNow.Incidents()
	if len(incs) != 1 || incs[0].CI != "x1002c1r7b0" {
		t.Fatalf("incidents: %+v", incs)
	}
}

// Sensor telemetry flows Kafka -> Telemetry API -> TSDB and is queryable
// with PromQL; exporter metrics flow through vmagent.
func TestMetricsPath(t *testing.T) {
	p := newPipeline(t, Options{MetricRules: []vmalert.Rule{{
		Name: "KafkaAlive",
		Expr: `kafka_broker_messages_total > 0`,
	}}})
	t0 := time.Date(2022, 3, 3, 3, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	mustTick(t, p, t0.Add(30*time.Second))

	ms := t0.Add(30 * time.Second).UnixMilli()
	vec, err := p.Warehouse.PromQL.Query(`cray_telemetry_temperature`, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 { // 4 nodes in smallCluster
		t.Fatalf("temperature series: %d", len(vec))
	}
	if vec[0].Labels.Get("xname") == "" || vec[0].Labels.Get("unit") != "Cel" {
		t.Fatalf("labels: %v", vec[0].Labels)
	}
	// Exporter path: up{job="node"} == 1 and kafka counters present.
	// 4 targets: node, kafka, aruba, plus the pipeline's own shastamon
	// self-monitoring endpoint.
	vec, err = p.Warehouse.PromQL.Query(`up`, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 {
		t.Fatalf("up: %+v", vec)
	}
	vec, err = p.Warehouse.PromQL.Query(`kafka_broker_messages_total`, ms)
	if err != nil || len(vec) != 1 || vec[0].V == 0 {
		t.Fatalf("kafka metric: %+v %v", vec, err)
	}
}

// Syslog flows through the aggregator, Kafka, the Telemetry API, and is
// queryable in Loki — the paper's immediate future work.
func TestSyslogPath(t *testing.T) {
	p := newPipeline(t, Options{})
	t0 := time.Date(2022, 3, 3, 4, 0, 0, 0, time.UTC)
	m := syslogd.GPFSDiskFailure("nid001234", 1, 7, t0)
	if err := p.SyslogAggregator.Ingest(m); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, t0.Add(time.Second))
	streams, err := p.Warehouse.LogQL.QueryLogs(`{data_type="syslog", app="mmfs"} |= "Disk failure"`,
		t0.Add(-time.Minute).UnixNano(), t0.Add(time.Minute).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 || streams[0].Labels.Get("hostname") != "nid001234" {
		t.Fatalf("streams: %+v", streams)
	}
}

func TestRedfishToLokiFig3(t *testing.T) {
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	payload := redfish.NewPayload(redfish.Record{
		Context: "x1102c4s0b0",
		Events:  []redfish.Event{redfish.LeakEvent(ts, "A", "Front")},
	})
	streams, err := RedfishToLoki(payload, "perlmutter")
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 1 {
		t.Fatalf("%+v", streams)
	}
	s := streams[0]
	// Fig. 3: stream labels are Context, cluster, data_type.
	if s.Labels.Get("Context") != "x1102c4s0b0" || s.Labels.Get("cluster") != "perlmutter" || s.Labels.Get("data_type") != "redfish_event" {
		t.Fatalf("labels: %v", s.Labels)
	}
	if len(s.Labels) != 3 {
		t.Fatalf("extra labels (chunk explosion risk): %v", s.Labels)
	}
	// Timestamp is a ns epoch; 2022-03-03T01:47:57Z = 1646272077e9.
	if s.Entries[0].Timestamp != 1646272077000000000 {
		t.Fatalf("ts: %d", s.Entries[0].Timestamp)
	}
	// Body keeps exactly Severity, MessageId, Message in order.
	line := s.Entries[0].Line
	if !strings.HasPrefix(line, `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":`) {
		t.Fatalf("line: %s", line)
	}
	if strings.Contains(line, "OriginOfCondition") || strings.Contains(line, "MessageArgs") {
		t.Fatalf("dropped fields leaked: %s", line)
	}
}

func TestRedfishToLokiBadTimestamp(t *testing.T) {
	payload := redfish.NewPayload(redfish.Record{
		Context: "x1",
		Events:  []redfish.Event{{EventTimestamp: "not-a-time"}},
	})
	if _, err := RedfishToLoki(payload, "c"); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}

func TestSensorToMetric(t *testing.T) {
	s := hms.SensorSample{
		Context: "x1000c0s0b0n0", PhysicalContext: "CPU", Sensor: "Temperature",
		Value: 45.5, Unit: "Cel", Timestamp: "2022-03-03T01:47:57Z",
	}
	name, ls, ms, v, err := SensorToMetric(s)
	if err != nil {
		t.Fatal(err)
	}
	if name != "cray_telemetry_temperature" || v != 45.5 || ms != 1646272077000 {
		t.Fatalf("%s %v %d", name, v, ms)
	}
	if ls.Get("xname") != "x1000c0s0b0n0" {
		t.Fatalf("%v", ls)
	}
	s.Timestamp = "garbage"
	if _, _, _, _, err := SensorToMetric(s); err == nil {
		t.Fatal("bad ts accepted")
	}
}

func TestSyslogToLoki(t *testing.T) {
	m := syslogd.Message{
		Facility: 1, Severity: 2, Hostname: "nid000001", App: "mmfs",
		Text: "GPFS: Disk failure", Timestamp: time.Unix(100, 0).UTC(),
	}
	ps := SyslogToLoki(m, "perlmutter")
	if ps.Labels.Get("severity") != "crit" || ps.Labels.Get("app") != "mmfs" {
		t.Fatalf("%v", ps.Labels)
	}
	if ps.Entries[0].Line != "GPFS: Disk failure" || ps.Entries[0].Timestamp != 100e9 {
		t.Fatalf("%+v", ps.Entries)
	}
}

// A resolved leak (window expiry) resolves through the pipeline: Slack
// gets a resolved notification and ServiceNow auto-resolves the incident.
func TestLeakResolutionFlows(t *testing.T) {
	rule := leakRule
	rule.For = 0
	p := newPipeline(t, Options{LogRules: []ruler.Rule{rule}})
	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	mustTick(t, p, leakTime.Add(-time.Minute))
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)
	mustTick(t, p, leakTime.Add(time.Second)) // firing notified
	// 61 minutes later the 60m window has drained: rule resolves.
	mustTick(t, p, leakTime.Add(61*time.Minute))
	mustTick(t, p, leakTime.Add(61*time.Minute+time.Second))

	incs := p.ServiceNow.Incidents()
	if len(incs) != 1 || incs[0].State != servicenow.IncidentResolved {
		t.Fatalf("incident not auto-resolved: %+v", incs)
	}
	resolved := false
	for _, m := range p.Slack.Messages() {
		if strings.Contains(m.Text, "RESOLVED") {
			resolved = true
		}
	}
	if !resolved {
		t.Fatalf("no resolved slack message: %+v", p.Slack.Messages())
	}
}

// Retention: data older than the horizon is dropped on Tick.
func TestRetentionOnTick(t *testing.T) {
	p := newPipeline(t, Options{Retention: time.Hour})
	t0 := time.Date(2022, 3, 3, 0, 0, 0, 0, time.UTC)
	_ = p.Warehouse.IngestLogs([]loki.PushStream{{
		Labels:  FabricEventLabels("perlmutter"),
		Entries: []loki.Entry{{Timestamp: t0.UnixNano(), Line: "old"}},
	}})
	// Force the head chunk old enough then tick far in the future.
	mustTick(t, p, t0.Add(3*time.Hour))
	streams, err := p.Warehouse.LogQL.QueryLogs(`{app="fabric_manager_monitor"}`, 0, t0.Add(4*time.Hour).UnixNano())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range streams {
		for _, e := range s.Entries {
			if e.Line == "old" {
				t.Fatal("expired entry survived retention")
			}
		}
	}
}

// LDMS metrics flow Kafka -> Telemetry API -> TSDB (the LDMS source of
// Fig. 1).
func TestLDMSPath(t *testing.T) {
	p := newPipeline(t, Options{})
	t0 := time.Date(2022, 3, 3, 11, 0, 0, 0, time.UTC)
	mustTick(t, p, t0)
	mustTick(t, p, t0.Add(10*time.Second))
	ms := t0.Add(10 * time.Second).UnixMilli()
	vec, err := p.Warehouse.PromQL.Query(`ldms_meminfo_MemFree`, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 4 { // all 4 nodes of smallCluster sampled
		t.Fatalf("series: %d", len(vec))
	}
	if vec[0].Labels.Get("sampler") != "meminfo" || vec[0].Labels.Get("xname") == "" {
		t.Fatalf("%v", vec[0].Labels)
	}
	// Counters work with rate().
	vec, err = p.Warehouse.PromQL.Query(`rate(ldms_procnetdev_rx_bytes[1m])`, ms)
	if err != nil || len(vec) != 4 {
		t.Fatalf("rate: %+v %v", vec, err)
	}
}
