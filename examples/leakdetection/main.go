// Leak detection (the paper's case study A): a liquid leak sensor in a
// Perlmutter cabinet trips, the Redfish event travels through HMS, Kafka
// and the Telemetry API into Loki, the paper's LogQL rule converts the
// log into a metric, holds it for one minute, and the alert reaches Slack
// and ServiceNow.
//
//	go run ./examples/leakdetection
package main

import (
	"fmt"
	"log"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/grafana"
	"shastamon/internal/ruler"
)

func main() {
	leakRule := ruler.Rule{
		Name: "PerlmutterCabinetLeak",
		// Fig. 5's query with a > 0 threshold: "if the return value is
		// greater than zero and it lasts more than one minute, an alert
		// will be generated".
		Expr:   `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, Context, message_id, message) > 0`,
		For:    time.Minute,
		Labels: map[string]string{"severity": "critical"},
		Annotations: map[string]string{
			"summary": "Liquid leak detected at {{ $labels.Context }} — dispatch facilities",
		},
	}
	p, err := core.New(core.Options{LogRules: []ruler.Rule{leakRule}})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	leakTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := p.Tick(leakTime.Add(-time.Minute)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("injecting leak: sensor A, Front zone, chassis x1203c1b0 ...")
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		log.Fatal(err)
	}
	for _, ts := range []time.Time{leakTime, leakTime.Add(61 * time.Second), leakTime.Add(62 * time.Second)} {
		if err := p.Tick(ts); err != nil {
			log.Fatal(err)
		}
	}

	// Show the event the way Fig. 4 does: a Grafana log panel over Loki.
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	table, err := r.RenderPanel(grafana.Panel{
		Title:  "Redfish events",
		Query:  `{data_type="redfish_event"} |= "CabinetLeakDetected"`,
		Source: grafana.SourceLokiLogs,
	}, leakTime.Add(-time.Hour), leakTime.Add(time.Hour), time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(table)

	// And the Fig. 5 metric chart.
	chart, err := r.RenderPanel(grafana.Panel{
		Title:  "count_over_time(... CabinetLeakDetected ...[60m])",
		Query:  `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context)`,
		Source: grafana.SourceLokiMetric,
		Width:  60, Height: 8,
	}, leakTime.Add(-30*time.Minute), leakTime.Add(90*time.Minute), 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(chart)

	// The alert reached Slack (Fig. 6) and opened a ServiceNow incident.
	for _, m := range p.Slack.Messages() {
		fmt.Printf("\nSlack %s\n", m.Text)
		for _, att := range m.Attachments {
			fmt.Printf("  [%s] %s\n%s\n", att.Color, att.Title, indent(att.Text))
		}
	}
	for _, inc := range p.ServiceNow.Incidents() {
		fmt.Printf("\nServiceNow %s (P%d, %s) CI=%s\n  %s\n",
			inc.Number, inc.Priority, inc.State, inc.CI, inc.ShortDescription)
	}

	// The leak event's journey stage by stage: the obs tracer minted one
	// trace ID at the chassis controller and every pipeline hop recorded
	// itself on it. The same record is served at /debug/trace/{id}.
	if id := p.Tracer.IDByKey("x1203c1b0"); id != "" {
		if tr, ok := p.Tracer.Get(id); ok {
			fmt.Printf("\ntrace %s (key %s):\n", tr.ID, tr.Key)
			for _, st := range tr.Stages {
				fmt.Printf("  %-20s %s  %s\n", st.Stage, st.Time.UTC().Format(time.RFC3339), st.Note)
			}
		}
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	if cur != "" {
		out = append(out, cur)
	}
	return out
}
