// Package ruler implements the Loki Ruler: "a component that enables
// assessment of a collection of configurable queries and executes an
// action based on the outcome". It evaluates LogQL alerting rules on an
// interval and forwards firing alerts to the Alertmanager, holding each
// alert through its `for:` duration first — exactly the rule lifecycle of
// the paper's Fig. 8.
package ruler

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"sync"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/anomaly"
	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/obs"
)

// Rule is one alerting rule in the Loki/Prometheus rule format.
type Rule struct {
	Name        string            // alert: name
	Expr        string            // LogQL metric expression
	For         time.Duration     // hold duration before firing
	Labels      map[string]string // added to the alert
	Annotations map[string]string // templated with {{ $labels.x }} / {{ $value }}
	// Anomaly turns the rule predictive: Expr selects the metric series
	// to watch (e.g. a per-app log rate), and each sample is scored by a
	// streaming detector — only anomalous samples enter the For-hold and
	// firing machinery, with the sample value replaced by the signed
	// score in sigmas so `{{ $value }}` renders deviation severity.
	Anomaly *anomaly.Config
}

// Notifier receives alerts; *alertmanager.Manager satisfies it.
type Notifier interface {
	Receive(alerts ...alertmanager.Alert)
}

type compiledRule struct {
	rule Rule
	expr logql.MetricExpr
	det  *anomaly.Detector // non-nil for anomaly rules
}

type alertState struct {
	activeSince time.Time
	firing      bool
	labels      labels.Labels
	value       float64
}

// Ruler evaluates rules against a LogQL engine.
type Ruler struct {
	engine   *logql.Engine
	notifier Notifier
	now      func() time.Time
	tracer   *obs.Tracer

	reg      *obs.Registry
	evalsCtr *obs.Counter
	evalDur  *obs.Histogram
	ruleDur  *obs.HistogramVec
	firedVec *obs.CounterVec

	// Anomaly self-metrics, registered only when an anomaly rule exists.
	anomEvals     *obs.CounterVec
	anomDetects   *obs.CounterVec
	anomScore     *obs.GaugeVec
	anomSeries    *obs.GaugeVec
	anomSaturated *obs.GaugeVec

	mu    sync.Mutex
	rules []compiledRule
	state []map[labels.Fingerprint]*alertState

	evals int64
}

// New compiles the rules and returns a ruler. Rule names must be unique
// and expressions must be metric queries.
func New(engine *logql.Engine, notifier Notifier, now func() time.Time, rules ...Rule) (*Ruler, error) {
	if engine == nil || notifier == nil {
		return nil, fmt.Errorf("ruler: engine and notifier required")
	}
	if now == nil {
		now = time.Now
	}
	r := &Ruler{engine: engine, notifier: notifier, now: now, reg: obs.NewRegistry()}
	r.evalsCtr = r.reg.Counter(obs.Namespace+"ruler_evaluations_total",
		"Rule evaluation rounds run.")
	r.evalDur = r.reg.Histogram(obs.Namespace+"ruler_evaluation_duration_seconds",
		"Wall time of one full evaluation round.", obs.DefBuckets)
	r.firedVec = r.reg.CounterVec(obs.Namespace+"ruler_alerts_fired_total",
		"Alerts transitioned to firing, by rule.", "rule")
	r.ruleDur = r.reg.HistogramVec(obs.Namespace+"rule_eval_seconds",
		"Wall time of one rule's evaluation, by rule.", obs.DefBuckets, "rule")
	seen := map[string]bool{}
	for _, rule := range rules {
		if rule.Name == "" {
			return nil, fmt.Errorf("ruler: rule needs a name: %+v", rule)
		}
		if seen[rule.Name] {
			return nil, fmt.Errorf("ruler: duplicate rule %q", rule.Name)
		}
		seen[rule.Name] = true
		expr, err := logql.ParseMetricExpr(rule.Expr)
		if err != nil {
			return nil, fmt.Errorf("ruler: rule %q: %w", rule.Name, err)
		}
		cr := compiledRule{rule: rule, expr: expr}
		if rule.Anomaly != nil {
			det, err := anomaly.NewDetector(*rule.Anomaly)
			if err != nil {
				return nil, fmt.Errorf("ruler: rule %q: %w", rule.Name, err)
			}
			cr.det = det
		}
		r.rules = append(r.rules, cr)
		r.state = append(r.state, map[labels.Fingerprint]*alertState{})
	}
	for _, cr := range r.rules {
		if cr.det != nil {
			r.registerAnomalyMetrics()
			break
		}
	}
	return r, nil
}

func (r *Ruler) registerAnomalyMetrics() {
	r.anomEvals = r.reg.CounterVec(obs.Namespace+"anomaly_evaluations_total",
		"Samples scored by anomaly detectors, by rule.", "rule")
	r.anomDetects = r.reg.CounterVec(obs.Namespace+"anomaly_detections_total",
		"Samples judged anomalous, by rule.", "rule")
	r.anomScore = r.reg.GaugeVec(obs.Namespace+"anomaly_score",
		"Largest |score| (in sigmas) among warm samples in the last round, by rule.", "rule")
	r.anomSeries = r.reg.GaugeVec(obs.Namespace+"anomaly_series",
		"Series tracked by the detector, by rule.", "rule")
	r.anomSaturated = r.reg.GaugeVec(obs.Namespace+"anomaly_detector_saturated",
		"1 when detector state hit its memory bound and new series are dropped, by rule.", "rule")
}

// detect filters an instant vector through the rule's streaming
// detector: only anomalous samples survive, carrying the signed score
// (sigmas) as their value, and the detector self-metrics are refreshed.
func (r *Ruler) detect(cr compiledRule, vec logql.Vector, now time.Time) logql.Vector {
	out := make(logql.Vector, 0, len(vec))
	var maxAbs float64
	for _, sample := range vec {
		sc := cr.det.Observe(uint64(sample.Labels.Fingerprint()), now, sample.V)
		if a := math.Abs(sc.Score); sc.Warm && a > maxAbs {
			maxAbs = a
		}
		if !sc.Anomalous {
			continue
		}
		sample.V = sc.Score
		out = append(out, sample)
	}
	name := cr.rule.Name
	r.anomEvals.With(name).Add(float64(len(vec)))
	r.anomDetects.With(name).Add(float64(len(out)))
	st := cr.det.Stats()
	r.anomScore.With(name).Set(maxAbs)
	r.anomSeries.With(name).Set(float64(st.Series))
	saturated := 0.0
	if st.Saturated {
		saturated = 1
	}
	r.anomSaturated.With(name).Set(saturated)
	return out
}

// Metrics exposes the ruler's self-monitoring registry.
func (r *Ruler) Metrics() *obs.Registry { return r.reg }

// SetTracer attaches an event tracer; firing alerts record a "ruler.fire"
// stage on the trace of the newest event from the same component.
func (r *Ruler) SetTracer(t *obs.Tracer) { r.tracer = t }

// traceKey extracts the correlation key from an alert label set: the
// component xname, carried as the Context stream label for Redfish events.
func traceKey(ls labels.Labels) string {
	if v := ls.Get("Context"); v != "" {
		return v
	}
	return ls.Get("xname")
}

var tmplVar = regexp.MustCompile(`\{\{\s*\$(labels\.([a-zA-Z_][a-zA-Z0-9_]*)|value)\s*\}\}`)

// ExpandTemplate substitutes {{ $labels.name }} and {{ $value }} in rule
// annotations; shared with vmalert.
func ExpandTemplate(s string, ls labels.Labels, value float64) string {
	return tmplVar.ReplaceAllStringFunc(s, func(m string) string {
		sub := tmplVar.FindStringSubmatch(m)
		if sub[1] == "value" {
			return strconv.FormatFloat(value, 'g', -1, 64)
		}
		return ls.Get(sub[2])
	})
}

// EvalOnce evaluates every rule at the ruler's current time and sends
// newly-firing and newly-resolved alerts to the notifier. It returns the
// alerts sent.
func (r *Ruler) EvalOnce() ([]alertmanager.Alert, error) {
	now := r.now()
	ts := now.UnixNano()
	t0 := time.Now()
	r.mu.Lock()
	defer func() {
		r.mu.Unlock()
		r.evalDur.Observe(time.Since(t0).Seconds())
	}()
	r.evals++
	r.evalsCtr.Inc()
	var sent []alertmanager.Alert
	for i, cr := range r.rules {
		rt0 := time.Now()
		vec, err := r.engine.Instant(cr.expr, ts)
		if err != nil {
			return sent, fmt.Errorf("ruler: rule %q: %w", cr.rule.Name, err)
		}
		if cr.det != nil {
			vec = r.detect(cr, vec, now)
		}
		active := map[labels.Fingerprint]bool{}
		for _, sample := range vec {
			alertLbls := r.alertLabels(cr.rule, sample.Labels)
			fp := alertLbls.Fingerprint()
			active[fp] = true
			st, ok := r.state[i][fp]
			if !ok {
				st = &alertState{activeSince: now, labels: alertLbls}
				r.state[i][fp] = st
			}
			st.value = sample.V
			if !st.firing && now.Sub(st.activeSince) >= cr.rule.For {
				st.firing = true
				sent = append(sent, r.buildAlert(cr.rule, st, now, time.Time{}))
				r.firedVec.With(cr.rule.Name).Inc()
				// Timed fire span on the originating event's trace; when no
				// trace exists for the key (log-derived alerts with no
				// Redfish origin) mint one at fire time so downstream
				// delivery spans and latency close-out still have a home.
				key := traceKey(st.labels)
				end := now.Add(time.Since(t0))
				id := r.tracer.SpanByKey(key, "ruler.fire", now, end, cr.rule.Name)
				if id == "" && key != "" {
					id = r.tracer.Start(key, now, "ruler:"+cr.rule.Name)
					r.tracer.Span(id, "ruler.fire", now, end, cr.rule.Name)
				}
				if cr.det != nil && id != "" {
					r.tracer.Span(id, "anomaly.detect", st.activeSince, end,
						fmt.Sprintf("%s %+.1fσ (%s)", cr.rule.Name, st.value, cr.det.Config().Method))
				}
			}
		}
		// Series that stopped matching: resolve if firing, forget otherwise.
		for fp, st := range r.state[i] {
			if active[fp] {
				continue
			}
			if st.firing {
				sent = append(sent, r.buildAlert(cr.rule, st, st.activeSince, now))
			}
			delete(r.state[i], fp)
		}
		r.ruleDur.With(cr.rule.Name).Observe(time.Since(rt0).Seconds())
	}
	if len(sent) > 0 {
		r.notifier.Receive(sent...)
	}
	return sent, nil
}

func (r *Ruler) alertLabels(rule Rule, sampleLbls labels.Labels) labels.Labels {
	b := labels.NewBuilder(sampleLbls)
	b.Set("alertname", rule.Name)
	for k, v := range rule.Labels {
		b.Set(k, v)
	}
	return b.Labels()
}

func (r *Ruler) buildAlert(rule Rule, st *alertState, startsAt, endsAt time.Time) alertmanager.Alert {
	ann := make(map[string]string, len(rule.Annotations))
	for k, v := range rule.Annotations {
		ann[k] = ExpandTemplate(v, st.labels, st.value)
	}
	return alertmanager.Alert{
		Labels:      st.labels,
		Annotations: ann,
		StartsAt:    startsAt,
		EndsAt:      endsAt,
	}
}

// Pending reports, for tests and dashboards, how many alert series are
// active (pending or firing) for the named rule.
func (r *Ruler) Pending(ruleName string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, cr := range r.rules {
		if cr.rule.Name == ruleName {
			return len(r.state[i])
		}
	}
	return 0
}

// Evals returns the number of evaluation rounds run.
func (r *Ruler) Evals() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evals
}

// Run evaluates on the interval until stop is closed. Evaluation errors
// stop the loop and are returned.
func (r *Ruler) Run(interval time.Duration, stop <-chan struct{}) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-t.C:
			if _, err := r.EvalOnce(); err != nil {
				return err
			}
		}
	}
}
