package frontend

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/stats"
)

// gridPoints enumerates the step grid a monolithic evaluation would walk.
func gridPoints(start, end, step int64) []int64 {
	var out []int64
	for t := start; t <= end; t += step {
		out = append(out, t)
	}
	return out
}

// spanPoints enumerates the step points the spans cover, in order.
func spanPoints(spans []span, step int64) []int64 {
	var out []int64
	for _, sp := range spans {
		for t := sp.start; t <= sp.end; t += step {
			out = append(out, t)
		}
	}
	return out
}

func sameInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSplitSpansPartitionStepGrid(t *testing.T) {
	cases := []struct{ start, end, step, interval int64 }{
		{0, 100, 7, 30},    // range not divisible by step
		{0, 100, 7, 1000},  // single bucket
		{13, 13, 5, 10},    // single instant
		{13, 12, 5, 10},    // empty range
		{-95, 45, 7, 30},   // pre-epoch start (floorDiv path)
		{1000, 5000, 1, 1}, // step == interval
		{3, 1000, 17, 64},  // unaligned everything
	}
	for _, tc := range cases {
		spans := splitSpans(tc.start, tc.end, tc.step, tc.interval)
		want := gridPoints(tc.start, tc.end, tc.step)
		got := spanPoints(spans, tc.step)
		if !sameInts(want, got) {
			t.Errorf("splitSpans(%d,%d,%d,%d): grid %v, spans cover %v",
				tc.start, tc.end, tc.step, tc.interval, want, got)
		}
		for _, sp := range spans {
			if sp.end < sp.start {
				t.Errorf("splitSpans(%+v): inverted span %+v", tc, sp)
			}
		}
	}
}

// A window sliding forward by whole steps must produce identical spans for
// the shared buckets — that alignment is what makes cache reuse work.
func TestSplitSpansAbsoluteAlignment(t *testing.T) {
	const step, interval = 10, 100
	a := splitSpans(0, 500, step, interval)
	b := splitSpans(50, 550, step, interval)
	shared := map[span]bool{}
	for _, sp := range a {
		shared[sp] = true
	}
	overlap := 0
	for _, sp := range b {
		if shared[sp] {
			overlap++
		}
	}
	// Buckets [100,190] ... [400,490] are interior to both windows.
	if overlap < 4 {
		t.Fatalf("slid window shares only %d spans with original: %v vs %v", overlap, a, b)
	}
}

// evalRecorder builds an Eval that emits one deterministic series and
// counts invocations.
func evalRecorder(calls *atomic.Int64) func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
	return func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
		calls.Add(1)
		return Matrix{{
			Labels: labels.FromStrings("app", "x"),
			Points: []Point{{T: start, V: float64(start)}, {T: end, V: float64(end)}},
		}}, nil
	}
}

func TestQueryRangeCachesImmutableSplits(t *testing.T) {
	now := time.Unix(10_000, 0)
	f := New(Config{SplitInterval: 100 * time.Nanosecond, Now: func() time.Time { return now }})
	var calls atomic.Int64
	req := Request{
		Engine: "logql", Query: `count_over_time({app="x"}[1s])`,
		Start: 0, End: 499, Step: 10, Unit: time.Nanosecond,
		Eval: evalRecorder(&calls),
	}
	ctx, sc := stats.NewContext(context.Background())
	first, err := f.QueryRange(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	cold := calls.Load()
	if cold != 5 {
		t.Fatalf("cold query ran %d splits, want 5", cold)
	}
	if sc.Snapshot().Summary.Splits != 5 {
		t.Fatalf("stats splits = %d, want 5", sc.Snapshot().Summary.Splits)
	}

	ctx2, sc2 := stats.NewContext(context.Background())
	second, err := f.QueryRange(ctx2, req)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != cold {
		t.Fatalf("warm query re-evaluated: %d calls total, want %d", calls.Load(), cold)
	}
	snap := sc2.Snapshot()
	if snap.Frontend.ResultCacheHits != 5 || snap.Frontend.ResultCacheHitBytes <= 0 {
		t.Fatalf("warm stats: %+v", snap.Frontend)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached result differs:\n%v\n%v", first, second)
	}
}

func TestQueryRangeNeverCachesMutableHead(t *testing.T) {
	// Freshness cutoff lands mid-range: spans ending after now-1m must
	// re-evaluate on every query.
	now := time.Unix(0, 250)
	f := New(Config{
		SplitInterval:  100 * time.Nanosecond,
		CacheFreshness: time.Nanosecond, // cutoff = 249
		Now:            func() time.Time { return now },
	})
	var calls atomic.Int64
	req := Request{
		Engine: "logql", Query: "q",
		Start: 0, End: 499, Step: 10,
		Eval: evalRecorder(&calls),
	}
	if _, err := f.QueryRange(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	cold := calls.Load()
	if _, err := f.QueryRange(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Spans [0,90] and [100,190] end before the 249 cutoff and cache;
	// [200,290], [300,390], [400,490] are head and re-run.
	rerun := calls.Load() - cold
	if rerun != 3 {
		t.Fatalf("second query re-evaluated %d splits, want the 3 head splits", rerun)
	}
}

func TestWithoutCacheBypasses(t *testing.T) {
	now := time.Unix(10_000, 0)
	f := New(Config{SplitInterval: 100 * time.Nanosecond, Now: func() time.Time { return now }})
	var calls atomic.Int64
	req := Request{Engine: "logql", Query: "q", Start: 0, End: 499, Step: 10, Eval: evalRecorder(&calls)}
	ctx := WithoutCache(context.Background())
	for i := 0; i < 2; i++ {
		if _, err := f.QueryRange(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 10 {
		t.Fatalf("bypassed queries ran %d evals, want 10", calls.Load())
	}
	if st := f.CacheStats(); st.Entries != 0 {
		t.Fatalf("bypass populated the cache: %+v", st)
	}
	// Request-level NoCache behaves the same.
	req.NoCache = true
	if _, err := f.QueryRange(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := f.CacheStats(); st.Entries != 0 {
		t.Fatalf("NoCache populated the cache: %+v", st)
	}
}

func TestQueueSheddingRejectsWithErrQueueFull(t *testing.T) {
	f := New(Config{MaxConcurrent: 1, MaxQueueDepth: -1}) // one slot, no wait line
	block := make(chan struct{})
	started := make(chan struct{})
	req := Request{
		Engine: "logql", Query: "slow", Start: 0, End: 0, Step: 1,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			close(started)
			<-block
			return Matrix{}, nil
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := f.QueryRange(context.Background(), req)
		done <- err
	}()
	<-started

	fast := Request{Engine: "logql", Query: "fast", Start: 0, End: 0, Step: 1,
		Eval: evalRecorder(new(atomic.Int64))}
	_, err := f.QueryRange(context.Background(), fast)
	if !errors.Is(err, stats.ErrQueueFull) {
		t.Fatalf("saturated frontend returned %v, want ErrQueueFull", err)
	}
	if f.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", f.Rejected())
	}

	// Engines queue independently: promql still has a free slot.
	fast.Engine = "promql"
	if _, err := f.QueryRange(context.Background(), fast); err != nil {
		t.Fatalf("independent engine queue rejected: %v", err)
	}

	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Slot released: the same engine admits again.
	fast.Engine = "logql"
	if _, err := f.QueryRange(context.Background(), fast); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestQueueWaitAdmitsWhenSlotFrees(t *testing.T) {
	f := New(Config{MaxConcurrent: 1, MaxQueueDepth: 1})
	block := make(chan struct{})
	started := make(chan struct{})
	slow := Request{Engine: "logql", Query: "slow", Start: 0, End: 0, Step: 1,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			close(started)
			<-block
			return Matrix{}, nil
		},
	}
	slowDone := make(chan error, 1)
	go func() {
		_, err := f.QueryRange(context.Background(), slow)
		slowDone <- err
	}()
	<-started

	waiterDone := make(chan error, 1)
	fast := Request{Engine: "logql", Query: "fast", Start: 0, End: 0, Step: 1,
		Eval: evalRecorder(new(atomic.Int64))}
	go func() {
		_, err := f.QueryRange(context.Background(), fast)
		waiterDone <- err
	}()
	// Wait for the second query to join the wait line, then release.
	for i := 0; f.QueueDepth() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	if f.QueueDepth() != 1 {
		t.Fatalf("QueueDepth() = %d, want 1 waiter", f.QueueDepth())
	}
	close(block)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if err := <-waiterDone; err != nil {
		t.Fatalf("queued query failed: %v", err)
	}
}

func TestQueueWaitRespectsContextCancel(t *testing.T) {
	f := New(Config{MaxConcurrent: 1, MaxQueueDepth: 4})
	block := make(chan struct{})
	defer close(block)
	started := make(chan struct{})
	slow := Request{Engine: "logql", Query: "slow", Start: 0, End: 0, Step: 1,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			close(started)
			<-block
			return Matrix{}, nil
		},
	}
	go f.QueryRange(context.Background(), slow)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	fast := Request{Engine: "logql", Query: "fast", Start: 0, End: 0, Step: 1,
		Eval: evalRecorder(new(atomic.Int64))}
	if _, err := f.QueryRange(ctx, fast); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
	}
}

func TestCacheEvictionHoldsByteBudget(t *testing.T) {
	now := time.Unix(10_000, 0)
	// Budget fits roughly two single-series split results.
	f := New(Config{SplitInterval: 100 * time.Nanosecond, CacheBytes: 400, Now: func() time.Time { return now }})
	var calls atomic.Int64
	for i := 0; i < 8; i++ {
		req := Request{
			Engine: "logql", Query: fmt.Sprintf("q%d", i),
			Start: 0, End: 99, Step: 10,
			Eval: evalRecorder(&calls),
		}
		if _, err := f.QueryRange(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := f.CacheStats()
	if st.Bytes > 400 {
		t.Fatalf("cache over budget: %+v", st)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions after 8 distinct cached queries: %+v", st)
	}
}

func TestInvalidateBeforeDropsAndRefusesStaleAdmissions(t *testing.T) {
	rc := newResultCache(1 << 20)
	m := Matrix{{Labels: labels.FromStrings("a", "b"), Points: []Point{{T: 1, V: 1}}}}
	rc.put("fake", "logql", "q", 10, span{1000, 1090}, time.Nanosecond, 500, m)
	if _, _, ok := rc.get("fake", "logql", "q", 10, span{1000, 1090}); !ok {
		t.Fatal("entry not cached")
	}
	// Horizon reaches into the entry's data window (1000-500=500 < 600).
	if dropped := rc.invalidateBefore(600); dropped != 1 {
		t.Fatalf("invalidateBefore dropped %d, want 1", dropped)
	}
	if _, _, ok := rc.get("fake", "logql", "q", 10, span{1000, 1090}); ok {
		t.Fatal("invalidated entry still served")
	}
	// A racing evaluation that read pre-retention data must be refused.
	rc.put("fake", "logql", "q", 10, span{1000, 1090}, time.Nanosecond, 500, m)
	if _, _, ok := rc.get("fake", "logql", "q", 10, span{1000, 1090}); ok {
		t.Fatal("stale admission accepted after invalidation high-water")
	}
	// A window fully above the horizon is admitted.
	rc.put("fake", "logql", "q", 10, span{2000, 2090}, time.Nanosecond, 500, m)
	if _, _, ok := rc.get("fake", "logql", "q", 10, span{2000, 2090}); !ok {
		t.Fatal("fresh window refused")
	}
}

func TestMergeShards(t *testing.T) {
	l := labels.FromStrings("app", "x")
	parts := []Matrix{
		{{Labels: l, Points: []Point{{T: 10, V: 3}, {T: 20, V: 1}}}},
		{{Labels: l, Points: []Point{{T: 10, V: 2}, {T: 30, V: 7}}}},
	}
	sum, err := mergeShards("sum", parts)
	if err != nil {
		t.Fatal(err)
	}
	want := "[{T:10 V:5} {T:20 V:1} {T:30 V:7}]"
	if got := fmt.Sprintf("%+v", sum[0].Points); got != want {
		t.Fatalf("sum merge = %s, want %s", got, want)
	}
	max, _ := mergeShards("max", parts)
	if max[0].Points[0].V != 3 {
		t.Fatalf("max merge T=10 -> %v, want 3", max[0].Points[0].V)
	}
	min, _ := mergeShards("min", parts)
	if min[0].Points[0].V != 2 {
		t.Fatalf("min merge T=10 -> %v, want 2", min[0].Points[0].V)
	}
	if _, err := mergeShards("avg", parts); err == nil {
		t.Fatal("unsupported merge op accepted")
	}
}

func TestShardFanoutMergesAcrossShards(t *testing.T) {
	now := time.Unix(10_000, 0)
	f := New(Config{SplitInterval: -1, Now: func() time.Time { return now }})
	var shardsSeen atomic.Int64
	req := Request{
		Engine: "logql", Query: "q", Start: 0, End: 90, Step: 10,
		Shards: 4, MergeOp: "sum",
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			if shard < 0 || shard > 3 {
				return nil, fmt.Errorf("unexpected shard %d", shard)
			}
			shardsSeen.Add(1)
			return Matrix{{Labels: labels.FromStrings("app", "x"),
				Points: []Point{{T: 0, V: 1}}}}, nil
		},
	}
	m, err := f.QueryRange(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if shardsSeen.Load() != 4 {
		t.Fatalf("fan-out ran %d shard evals, want 4", shardsSeen.Load())
	}
	if len(m) != 1 || m[0].Points[0].V != 4 {
		t.Fatalf("sum across shards = %v, want single series V=4", m)
	}

	// NoShardFanout falls back to one unsharded eval (shard = -1).
	f2 := New(Config{SplitInterval: -1, NoShardFanout: true, Now: func() time.Time { return now }})
	var unshardedCalls atomic.Int64
	req.Query = "q2"
	req.Eval = func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
		if shard != -1 {
			return nil, fmt.Errorf("fan-out despite NoShardFanout: shard %d", shard)
		}
		unshardedCalls.Add(1)
		return Matrix{}, nil
	}
	if _, err := f2.QueryRange(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if unshardedCalls.Load() != 1 {
		t.Fatalf("NoShardFanout ran %d evals, want 1", unshardedCalls.Load())
	}
}

func TestMergeSplitsAllocatesFreshSlices(t *testing.T) {
	l := labels.FromStrings("app", "x")
	cached := []Point{{T: 0, V: 1}}
	parts := []Matrix{
		{{Labels: l, Points: cached}},
		{{Labels: l, Points: []Point{{T: 10, V: 2}}}},
	}
	out := mergeSplits(parts)
	if len(out) != 1 || len(out[0].Points) != 2 {
		t.Fatalf("merge shape: %v", out)
	}
	out[0].Points[0].V = 99
	if cached[0].V != 1 {
		t.Fatal("mergeSplits mutated a cached input slice")
	}
}

func TestEvalErrorPropagates(t *testing.T) {
	f := New(Config{SplitInterval: 100 * time.Nanosecond})
	boom := errors.New("boom")
	req := Request{Engine: "logql", Query: "q", Start: 0, End: 499, Step: 10,
		Eval: func(ctx context.Context, start, end int64, shard int) (Matrix, error) {
			if start >= 200 {
				return nil, boom
			}
			return Matrix{}, nil
		},
	}
	if _, err := f.QueryRange(context.Background(), req); !errors.Is(err, boom) {
		t.Fatalf("split error not propagated: %v", err)
	}
}
