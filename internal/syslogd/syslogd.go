// Package syslogd implements the syslog path of the pipeline: an RFC3164
// line parser, a TCP/in-process aggregator in the role of the paper's
// rsyslogd containers (feeding the cray-syslog Kafka topic), and a
// deterministic generator producing realistic node syslog — including the
// GPFS health messages the paper's future-work section targets.
package syslogd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"

	"shastamon/internal/hms"
	"shastamon/internal/kafka"
)

// Severity names indexed by syslog severity code (0-7).
var severityNames = []string{"emerg", "alert", "crit", "err", "warning", "notice", "info", "debug"}

// Message is one parsed syslog message, serialised to the Kafka topic as
// JSON.
type Message struct {
	Facility  int       `json:"facility"`
	Severity  int       `json:"severity"`
	Hostname  string    `json:"hostname"`
	App       string    `json:"app"`
	Text      string    `json:"text"`
	Timestamp time.Time `json:"timestamp"`
}

// SeverityName returns the textual severity.
func (m Message) SeverityName() string {
	if m.Severity >= 0 && m.Severity < len(severityNames) {
		return severityNames[m.Severity]
	}
	return "unknown"
}

// Parse parses an RFC3164 line: "<PRI>MMM dd hh:mm:ss host app: text".
// The year is taken from the reference time ref (RFC3164 omits it).
func Parse(line string, ref time.Time) (Message, error) {
	var m Message
	if !strings.HasPrefix(line, "<") {
		return m, fmt.Errorf("syslogd: missing PRI in %q", line)
	}
	end := strings.IndexByte(line, '>')
	if end < 0 || end > 4 {
		return m, fmt.Errorf("syslogd: bad PRI in %q", line)
	}
	var pri int
	if _, err := fmt.Sscanf(line[1:end], "%d", &pri); err != nil || pri < 0 || pri > 191 {
		return m, fmt.Errorf("syslogd: bad PRI value in %q", line)
	}
	m.Facility = pri / 8
	m.Severity = pri % 8
	rest := line[end+1:]
	if len(rest) < 16 {
		return m, fmt.Errorf("syslogd: truncated header in %q", line)
	}
	ts, err := time.Parse(time.Stamp, rest[:15])
	if err != nil {
		return m, fmt.Errorf("syslogd: bad timestamp in %q: %w", line, err)
	}
	m.Timestamp = time.Date(ref.Year(), ts.Month(), ts.Day(), ts.Hour(), ts.Minute(), ts.Second(), 0, time.UTC)
	rest = strings.TrimSpace(rest[15:])
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return m, fmt.Errorf("syslogd: missing hostname in %q", line)
	}
	m.Hostname = rest[:sp]
	rest = rest[sp+1:]
	colon := strings.Index(rest, ": ")
	if colon < 0 {
		return m, fmt.Errorf("syslogd: missing app tag in %q", line)
	}
	m.App = strings.TrimSuffix(rest[:colon], "[0]")
	if i := strings.IndexByte(m.App, '['); i >= 0 {
		m.App = m.App[:i]
	}
	m.Text = rest[colon+2:]
	return m, nil
}

// Format renders the message as an RFC3164 line.
func Format(m Message) string {
	return fmt.Sprintf("<%d>%s %s %s: %s",
		m.Facility*8+m.Severity, m.Timestamp.Format(time.Stamp), m.Hostname, m.App, m.Text)
}

// Aggregator ingests syslog and produces it to the cray-syslog topic, the
// role of the rsyslogd aggregator containers.
type Aggregator struct {
	broker *kafka.Broker

	mu       sync.Mutex
	received int64
	dropped  int64
}

// NewAggregator returns an aggregator producing to broker (topic
// cray-syslog must exist, e.g. via hms.NewCollector).
func NewAggregator(broker *kafka.Broker) *Aggregator { return &Aggregator{broker: broker} }

// Ingest produces one parsed message to Kafka keyed by hostname.
func (a *Aggregator) Ingest(m Message) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if _, _, err := a.broker.Produce(hms.TopicSyslog, []byte(m.Hostname), data, m.Timestamp); err != nil {
		return err
	}
	a.mu.Lock()
	a.received++
	a.mu.Unlock()
	return nil
}

// IngestLine parses an RFC3164 line and ingests it; malformed lines are
// counted and dropped, as rsyslog does.
func (a *Aggregator) IngestLine(line string, ref time.Time) error {
	m, err := Parse(line, ref)
	if err != nil {
		a.mu.Lock()
		a.dropped++
		a.mu.Unlock()
		return err
	}
	return a.Ingest(m)
}

// Stats returns (received, dropped).
func (a *Aggregator) Stats() (received, dropped int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.received, a.dropped
}

// Serve accepts newline-delimited RFC3164 over TCP until the context is
// cancelled; each connection is drained in its own goroutine.
func (a *Aggregator) Serve(ctx context.Context, l net.Listener) error {
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	var wg sync.WaitGroup
	for {
		conn, err := l.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		wg.Add(1)
		go func(c net.Conn) {
			defer wg.Done()
			defer c.Close()
			sc := bufio.NewScanner(c)
			sc.Buffer(make([]byte, 64*1024), 1024*1024)
			for sc.Scan() {
				_ = a.IngestLine(sc.Text(), time.Now())
			}
		}(conn)
	}
}

// Generator produces deterministic synthetic syslog for a set of hosts.
type Generator struct {
	hosts []string
	rng   *rand.Rand
	mu    sync.Mutex
}

// NewGenerator seeds a generator for the hosts.
func NewGenerator(seed int64, hosts ...string) *Generator {
	return &Generator{hosts: hosts, rng: rand.New(rand.NewSource(seed))}
}

type template struct {
	app      string
	severity int
	text     string
}

var templates = []template{
	{"kernel", 6, "eth0: NIC Link is Up 100 Gbps"},
	{"kernel", 4, "CPU%d: Core temperature above threshold, cpu clock throttled"},
	{"sshd", 6, "Accepted publickey for operator from 10.0.%d.%d port 52144 ssh2"},
	{"slurmd", 6, "launch task StepId=%d.0 request from UID:1001"},
	{"slurmd", 3, "error: Node configuration differs from hardware: ProcCount=128:%d"},
	{"mmfs", 6, "GPFS: mmfsd ready"},
	{"mmfs", 5, "GPFS: Accepted and connected to 10.100.%d.%d nid%06d"},
	{"systemd", 6, "Started Session %d of user nersc"},
}

// Next produces one message at the given time from a pseudo-random host
// and template.
func (g *Generator) Next(ts time.Time) Message {
	g.mu.Lock()
	defer g.mu.Unlock()
	host := g.hosts[g.rng.Intn(len(g.hosts))]
	tpl := templates[g.rng.Intn(len(templates))]
	text := tpl.text
	if strings.Contains(text, "%d") {
		args := []interface{}{}
		for i := strings.Count(text, "%d"); i > 0; i-- {
			args = append(args, g.rng.Intn(256))
		}
		text = fmt.Sprintf(text, args...)
	}
	return Message{
		Facility: 1, Severity: tpl.severity,
		Hostname: host, App: tpl.app, Text: text, Timestamp: ts,
	}
}

// GPFSDiskFailure builds the specific GPFS failure message used by the
// syslog-monitoring example.
func GPFSDiskFailure(host string, rg, nsd int, ts time.Time) Message {
	return Message{
		Facility: 1, Severity: 2,
		Hostname: host, App: "mmfs",
		Text:      fmt.Sprintf("GPFS: Disk failure detected on rg%03d from nsd%d. Unmounting file system fs1", rg, nsd),
		Timestamp: ts,
	}
}
