package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shastamon/internal/anomaly"
)

func TestQueryHeatmapAgainstOmnidAPI(t *testing.T) {
	start := time.Date(2022, 3, 3, 1, 40, 0, 0, time.UTC)
	hm := anomaly.BuildHeatmap("test", start, start.Add(10*time.Minute), 2*time.Minute, []anomaly.Cell{
		{Node: "x1203c1s0b0n0", Time: start.Add(4 * time.Minute), Value: 7},
		{Node: "x1002c1s0b0n1", Time: start, Value: 2},
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/api/v1/heatmap" {
			http.NotFound(w, r)
			return
		}
		if got := r.URL.Query().Get("since"); got != "30m0s" {
			t.Errorf("since = %q", got)
		}
		_ = json.NewEncoder(w).Encode(hm)
	}))
	defer srv.Close()

	if err := queryHeatmap(srv.URL, 30*time.Minute, 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := queryHeatmap("http://127.0.0.1:0", time.Minute, time.Minute); err == nil {
		t.Fatal("unreachable server accepted")
	}
}
