// Package tenant carries the multi-tenancy primitives shared by the
// warehouse stores, the query frontend and the HTTP surface: the org
// header and context plumbing that identify a tenant, per-tenant limit
// overrides, static bearer-token authentication, and a token-bucket
// ingest rate limiter.
//
// Real Loki threads an X-Scope-OrgID header through every API and falls
// back to the literal org "fake" when auth is disabled; this package
// mirrors both choices so single-tenant deployments (no header, no
// tokens) behave byte-identically to the pre-tenant store.
package tenant

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"shastamon/internal/labels"
)

const (
	// DefaultID is the tenant everything belongs to when no org header is
	// present — Loki's auth_enabled:false org ID.
	DefaultID = "fake"
	// OrgIDHeader names the tenant on push and query requests.
	OrgIDHeader = "X-Scope-OrgID"
	// ReservedLabel is the internal label the WAL and checkpoints use to
	// persist a stream's tenant. Pushes must never carry it.
	ReservedLabel = "__tenant__"
)

type ctxKey struct{}

// WithID returns a context carrying the tenant ID; empty normalizes to
// DefaultID.
func WithID(ctx context.Context, id string) context.Context {
	if id == "" {
		id = DefaultID
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// ID extracts the tenant from the context, DefaultID when absent.
func ID(ctx context.Context) string {
	if id, ok := ctx.Value(ctxKey{}).(string); ok && id != "" {
		return id
	}
	return DefaultID
}

// FromRequest resolves a request's tenant: the context value if the auth
// middleware already ran, else the org header, else DefaultID.
func FromRequest(r *http.Request) string {
	if id, ok := r.Context().Value(ctxKey{}).(string); ok && id != "" {
		return id
	}
	if id := r.Header.Get(OrgIDHeader); id != "" {
		return id
	}
	return DefaultID
}

// ValidateID bounds tenant IDs to a shape safe for metric labels, WAL
// label values and file names.
func ValidateID(id string) error {
	if id == "" {
		return fmt.Errorf("tenant: empty tenant ID")
	}
	if len(id) > 128 {
		return fmt.Errorf("tenant: tenant ID longer than 128 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("tenant: invalid character %q in tenant ID", c)
		}
	}
	return nil
}

// Fingerprint hashes a label set within a tenant's namespace. The default
// tenant uses the plain fingerprint so single-tenant stores keep
// byte-identical striping and iteration order; other tenants fold their
// ID into the FNV seed, which costs nothing per label set.
func Fingerprint(id string, ls labels.Labels) labels.Fingerprint {
	if id == "" || id == DefaultID {
		return ls.Fingerprint()
	}
	return ls.FingerprintSeeded(labels.Seed(id))
}

// Limits are the per-tenant quotas. The zero value of any field means
// "no tenant-specific bound" — the store-wide limit (if any) still
// applies.
type Limits struct {
	// MaxStreams caps live log streams and TSDB series for the tenant.
	MaxStreams int
	// IngestRateBytes caps accepted log bytes per second (token bucket).
	IngestRateBytes int
	// IngestBurstBytes is the bucket depth; 0 = IngestRateBytes.
	IngestBurstBytes int
	// MaxQueryConcurrency caps the tenant's slots in each frontend
	// admission queue; 0 = the frontend-wide MaxConcurrent.
	MaxQueryConcurrency int
	// ChunkCacheShare gives the tenant a private sealed-block cache sized
	// as this fraction of the store's cache budget; 0 = share the common
	// cache.
	ChunkCacheShare float64
}

// Overrides resolve per-tenant limits: an explicit PerTenant entry wins
// wholly, otherwise Defaults apply. Treat as immutable once handed to a
// store.
type Overrides struct {
	Defaults  Limits
	PerTenant map[string]Limits
}

// For returns the limits for a tenant; nil-safe (zero Limits).
func (o *Overrides) For(id string) Limits {
	if o == nil {
		return Limits{}
	}
	if lim, ok := o.PerTenant[id]; ok {
		return lim
	}
	return o.Defaults
}

// Auth is the static bearer-token authenticator for the HTTP APIs. With
// no tokens configured it runs open: requests pass through and the
// tenant comes from the org header. With tokens, every request must
// carry a known Authorization: Bearer token, and an org header (if
// present) must agree with the token's tenant.
type Auth struct {
	tokens map[string]string // token -> tenant
}

// NewAuth builds an authenticator from a token→tenant map; nil or empty
// means auth disabled.
func NewAuth(tokens map[string]string) *Auth {
	if len(tokens) == 0 {
		return &Auth{}
	}
	cp := make(map[string]string, len(tokens))
	for tok, id := range tokens {
		cp[tok] = id
	}
	return &Auth{tokens: cp}
}

// Enabled reports whether any tokens are configured.
func (a *Auth) Enabled() bool { return a != nil && len(a.tokens) > 0 }

// Authenticate resolves the request's tenant, or an error that should
// surface as 401.
func (a *Auth) Authenticate(r *http.Request) (string, error) {
	header := r.Header.Get(OrgIDHeader)
	if !a.Enabled() {
		if header == "" {
			return DefaultID, nil
		}
		if err := ValidateID(header); err != nil {
			return "", err
		}
		return header, nil
	}
	raw := r.Header.Get("Authorization")
	tok, ok := strings.CutPrefix(raw, "Bearer ")
	if !ok || tok == "" {
		return "", fmt.Errorf("tenant: missing bearer token")
	}
	id, ok := a.tokens[tok]
	if !ok {
		return "", fmt.Errorf("tenant: unknown token")
	}
	if header != "" && header != id {
		return "", fmt.Errorf("tenant: org header %q does not match token tenant", header)
	}
	return id, nil
}

// Middleware authenticates the request and stamps the tenant into its
// context; failures get a 401 without reaching next.
func (a *Auth) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, err := a.Authenticate(r)
		if err != nil {
			http.Error(w, "unauthorized: "+err.Error(), http.StatusUnauthorized)
			return
		}
		next.ServeHTTP(w, r.WithContext(WithID(r.Context(), id)))
	})
}

// ParseTokenFlag parses a repeatable "tenant:token" flag value.
func ParseTokenFlag(v string) (id, token string, err error) {
	id, token, ok := strings.Cut(v, ":")
	if !ok || id == "" || token == "" {
		return "", "", fmt.Errorf("tenant: want tenant:token, got %q", v)
	}
	if err := ValidateID(id); err != nil {
		return "", "", err
	}
	return id, token, nil
}

// RateLimiter is a token-bucket byte-rate limiter. Time is supplied by
// the caller as Unix nanoseconds so tests and the simulated-clock
// pipeline stay deterministic.
type RateLimiter struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	lastNS int64
}

// NewRateLimiter builds a bucket refilling at rate bytes/s with the
// given depth; the bucket starts full.
func NewRateLimiter(rate, burst float64) *RateLimiter {
	if burst <= 0 {
		burst = rate
	}
	return &RateLimiter{rate: rate, burst: burst, tokens: burst}
}

// AllowN reports whether n bytes may pass at time nowNS, consuming them
// if so.
func (l *RateLimiter) AllowN(nowNS int64, n float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.allowLocked(nowNS, n)
}

// AllowNLazy is AllowN with the clock read deferred until it matters:
// while the bucket still holds n tokens the request is admitted without
// calling now at all, so the steady-state ingest path pays no time
// syscall. Only when tokens run short is the clock consulted to refill.
func (l *RateLimiter) AllowNLazy(now func() int64, n float64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.tokens >= n {
		l.tokens -= n
		return true
	}
	return l.allowLocked(now(), n)
}

func (l *RateLimiter) allowLocked(nowNS int64, n float64) bool {
	if l.lastNS != 0 && nowNS > l.lastNS {
		l.tokens += float64(nowNS-l.lastNS) / 1e9 * l.rate
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	if nowNS > l.lastNS {
		l.lastNS = nowNS
	}
	if l.tokens < n {
		return false
	}
	l.tokens -= n
	return true
}
