// Package promtail implements the Loki log collector the paper describes
// ("Loki provides a log collector, PromTail, that aids to label, transform
// and filter logs"): it tails line-oriented sources, runs each line
// through a pipeline of stages (regex/json extraction, label promotion,
// filtering, rewriting, timestamp parsing), batches the results and pushes
// them to Loki — over HTTP via loki.Client or directly into a store.
package promtail

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

// Entry is the unit flowing through a pipeline: the line, its labels, the
// extracted key/value scratch space, and the timestamp.
type Entry struct {
	Timestamp time.Time
	Line      string
	Labels    map[string]string
	Extracted map[string]string
}

// Stage transforms an entry; returning false drops it.
type Stage interface {
	Process(e *Entry) bool
}

// StageFunc adapts a function to Stage.
type StageFunc func(e *Entry) bool

// Process runs the function.
func (f StageFunc) Process(e *Entry) bool { return f(e) }

// ---- stages ----

// Regex extracts named captures from the line into Extracted. Lines that
// do not match pass through unchanged.
func Regex(expr string) (Stage, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("promtail: regex stage: %w", err)
	}
	return StageFunc(func(e *Entry) bool {
		m := re.FindStringSubmatch(e.Line)
		if m == nil {
			return true
		}
		for i, name := range re.SubexpNames() {
			if name != "" && i < len(m) {
				e.Extracted[name] = m[i]
			}
		}
		return true
	}), nil
}

// JSON extracts the given top-level fields of a JSON line into Extracted;
// non-JSON lines pass through.
func JSON(fields ...string) Stage {
	return StageFunc(func(e *Entry) bool {
		var v map[string]interface{}
		if err := json.Unmarshal([]byte(e.Line), &v); err != nil {
			return true
		}
		for _, f := range fields {
			switch t := v[f].(type) {
			case string:
				e.Extracted[f] = t
			case float64:
				e.Extracted[f] = strconv.FormatFloat(t, 'g', -1, 64)
			case bool:
				e.Extracted[f] = strconv.FormatBool(t)
			}
		}
		return true
	})
}

// Labels promotes extracted keys to stream labels.
func Labels(names ...string) Stage {
	return StageFunc(func(e *Entry) bool {
		for _, n := range names {
			if v, ok := e.Extracted[n]; ok {
				e.Labels[n] = v
			}
		}
		return true
	})
}

// Drop discards lines matching the expression.
func Drop(expr string) (Stage, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("promtail: drop stage: %w", err)
	}
	return StageFunc(func(e *Entry) bool { return !re.MatchString(e.Line) }), nil
}

// Keep discards lines NOT matching the expression.
func Keep(expr string) (Stage, error) {
	re, err := regexp.Compile(expr)
	if err != nil {
		return nil, fmt.Errorf("promtail: keep stage: %w", err)
	}
	return StageFunc(func(e *Entry) bool { return re.MatchString(e.Line) }), nil
}

// Output replaces the line with an extracted value (entries without the
// key keep their line).
func Output(source string) Stage {
	return StageFunc(func(e *Entry) bool {
		if v, ok := e.Extracted[source]; ok {
			e.Line = v
		}
		return true
	})
}

// Timestamp parses the entry timestamp from an extracted value with the
// given time layout; parse failures keep the previous timestamp.
func Timestamp(source, layout string) Stage {
	return StageFunc(func(e *Entry) bool {
		v, ok := e.Extracted[source]
		if !ok {
			return true
		}
		if ts, err := time.Parse(layout, v); err == nil {
			e.Timestamp = ts
		}
		return true
	})
}

// Template rewrites an extracted value by substituting {{.key}} references
// to other extracted values.
func Template(target, tmpl string) Stage {
	re := regexp.MustCompile(`\{\{\s*\.([a-zA-Z_][a-zA-Z0-9_]*)\s*\}\}`)
	return StageFunc(func(e *Entry) bool {
		e.Extracted[target] = re.ReplaceAllStringFunc(tmpl, func(m string) string {
			return e.Extracted[re.FindStringSubmatch(m)[1]]
		})
		return true
	})
}

// ---- the collector ----

// PushFunc delivers batches; loki.Client.Push and (*loki.Store).Push both
// satisfy it.
type PushFunc func([]loki.PushStream) error

// ScrapeConfig describes one source.
type ScrapeConfig struct {
	Job          string
	StaticLabels map[string]string
	Stages       []Stage
}

// Config tunes batching.
type Config struct {
	Push      PushFunc
	BatchSize int           // entries per push (default 512)
	BatchWait time.Duration // max latency before a partial batch flushes (default 1s)
}

// Promtail batches entries from any number of tailed sources.
type Promtail struct {
	push      PushFunc
	batchSize int
	batchWait time.Duration

	mu      sync.Mutex
	pending []loki.PushStream
	count   int
	sent    int64
	dropped int64
}

// New validates the config and returns a collector.
func New(cfg Config) (*Promtail, error) {
	if cfg.Push == nil {
		return nil, fmt.Errorf("promtail: push function required")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = time.Second
	}
	return &Promtail{push: cfg.Push, batchSize: cfg.BatchSize, batchWait: cfg.BatchWait}, nil
}

// Handle runs one line through the config's pipeline and enqueues it.
func (p *Promtail) Handle(cfg ScrapeConfig, ts time.Time, line string) error {
	e := &Entry{
		Timestamp: ts,
		Line:      line,
		Labels:    map[string]string{},
		Extracted: map[string]string{},
	}
	if cfg.Job != "" {
		e.Labels["job"] = cfg.Job
	}
	for k, v := range cfg.StaticLabels {
		e.Labels[k] = v
	}
	for _, st := range cfg.Stages {
		if !st.Process(e) {
			p.mu.Lock()
			p.dropped++
			p.mu.Unlock()
			return nil
		}
	}
	ps := loki.PushStream{
		Labels:  labels.FromMap(e.Labels),
		Entries: []loki.Entry{{Timestamp: e.Timestamp.UnixNano(), Line: e.Line}},
	}
	p.mu.Lock()
	p.pending = append(p.pending, ps)
	p.count++
	full := p.count >= p.batchSize
	p.mu.Unlock()
	if full {
		return p.Flush()
	}
	return nil
}

// Flush pushes any pending entries.
func (p *Promtail) Flush() error {
	p.mu.Lock()
	batch := p.pending
	n := p.count
	p.pending = nil
	p.count = 0
	p.mu.Unlock()
	if len(batch) == 0 {
		return nil
	}
	if err := p.push(batch); err != nil {
		return err
	}
	p.mu.Lock()
	p.sent += int64(n)
	p.mu.Unlock()
	return nil
}

// Stats returns (entries sent, entries dropped by stages).
func (p *Promtail) Stats() (sent, dropped int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sent, p.dropped
}

// Tail reads newline-delimited lines from r until EOF or ctx
// cancellation, handling each with the config and flushing at BatchWait
// cadence. The final partial batch is flushed before returning.
func (p *Promtail) Tail(ctx context.Context, cfg ScrapeConfig, r io.Reader, now func() time.Time) error {
	if now == nil {
		now = time.Now
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	flushT := time.NewTicker(p.batchWait)
	defer flushT.Stop()
	lines := make(chan string)
	scanErr := make(chan error, 1)
	go func() {
		defer close(lines)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			case <-ctx.Done():
				return
			}
		}
		scanErr <- sc.Err()
	}()
	for {
		select {
		case <-ctx.Done():
			return p.Flush()
		case <-flushT.C:
			if err := p.Flush(); err != nil {
				return err
			}
		case line, ok := <-lines:
			if !ok {
				if err := p.Flush(); err != nil {
					return err
				}
				select {
				case err := <-scanErr:
					return err
				default:
					return nil
				}
			}
			if err := p.Handle(cfg, now(), line); err != nil {
				return err
			}
		}
	}
}
