// Package shasta simulates the HPE Shasta (Cray EX) hardware substrate the
// paper monitors: cabinets, chassis, compute blades, node BMCs, Rosetta
// switches and their sensors, addressed by Cray xnames. The simulator
// produces the same telemetry the real system emits — Redfish events
// (leaks, power), sensor readings, and fabric switch states — with fault
// injection hooks the case studies drive.
package shasta

import (
	"fmt"
	"regexp"
	"strconv"
)

// ComponentKind classifies an xname.
type ComponentKind int

// Component kinds, from coarse to fine.
const (
	KindInvalid    ComponentKind = iota
	KindCabinet                  // xX
	KindChassis                  // xXcC
	KindChassisBMC               // xXcCbB (CMM; the Context of the paper's leak events)
	KindBlade                    // xXcCsS
	KindNodeBMC                  // xXcCsSbB
	KindNode                     // xXcCsSbBnN
	KindSwitchBMC                // xXcCrRbB (Rosetta switch controller)
)

// String names the kind.
func (k ComponentKind) String() string {
	switch k {
	case KindCabinet:
		return "cabinet"
	case KindChassis:
		return "chassis"
	case KindChassisBMC:
		return "chassis_bmc"
	case KindBlade:
		return "blade"
	case KindNodeBMC:
		return "node_bmc"
	case KindNode:
		return "node"
	case KindSwitchBMC:
		return "switch_bmc"
	}
	return "invalid"
}

// Xname is a parsed Cray component name.
type Xname struct {
	Kind    ComponentKind
	Cabinet int
	Chassis int
	Slot    int // blade slot (s) or switch slot (r), depending on Kind
	BMC     int
	Node    int
}

var xnameRE = regexp.MustCompile(`^x(\d+)(?:c(\d+)(?:([sr])(\d+)(?:b(\d+)(?:n(\d+))?)?|b(\d+))?)?$`)

// ParseXname parses an xname string such as "x1002c1r7b0" or
// "x1000c0s4b0n1". It returns an error for malformed names.
func ParseXname(s string) (Xname, error) {
	m := xnameRE.FindStringSubmatch(s)
	if m == nil {
		return Xname{}, fmt.Errorf("shasta: invalid xname %q", s)
	}
	atoi := func(v string) int { n, _ := strconv.Atoi(v); return n }
	x := Xname{Cabinet: atoi(m[1]), Chassis: -1, Slot: -1, BMC: -1, Node: -1}
	switch {
	case m[2] == "":
		x.Kind = KindCabinet
	case m[7] != "": // xXcCbB
		x.Chassis = atoi(m[2])
		x.BMC = atoi(m[7])
		x.Kind = KindChassisBMC
	case m[3] == "":
		x.Chassis = atoi(m[2])
		x.Kind = KindChassis
	default:
		x.Chassis = atoi(m[2])
		x.Slot = atoi(m[4])
		isSwitch := m[3] == "r"
		switch {
		case m[5] == "":
			if isSwitch {
				return Xname{}, fmt.Errorf("shasta: switch slot without BMC in %q", s)
			}
			x.Kind = KindBlade
		case m[6] == "":
			x.BMC = atoi(m[5])
			if isSwitch {
				x.Kind = KindSwitchBMC
			} else {
				x.Kind = KindNodeBMC
			}
		default:
			if isSwitch {
				return Xname{}, fmt.Errorf("shasta: node under switch slot in %q", s)
			}
			x.BMC = atoi(m[5])
			x.Node = atoi(m[6])
			x.Kind = KindNode
		}
	}
	return x, nil
}

// String renders the canonical xname.
func (x Xname) String() string {
	switch x.Kind {
	case KindCabinet:
		return fmt.Sprintf("x%d", x.Cabinet)
	case KindChassis:
		return fmt.Sprintf("x%dc%d", x.Cabinet, x.Chassis)
	case KindChassisBMC:
		return fmt.Sprintf("x%dc%db%d", x.Cabinet, x.Chassis, x.BMC)
	case KindBlade:
		return fmt.Sprintf("x%dc%ds%d", x.Cabinet, x.Chassis, x.Slot)
	case KindNodeBMC:
		return fmt.Sprintf("x%dc%ds%db%d", x.Cabinet, x.Chassis, x.Slot, x.BMC)
	case KindNode:
		return fmt.Sprintf("x%dc%ds%db%dn%d", x.Cabinet, x.Chassis, x.Slot, x.BMC, x.Node)
	case KindSwitchBMC:
		return fmt.Sprintf("x%dc%dr%db%d", x.Cabinet, x.Chassis, x.Slot, x.BMC)
	}
	return "invalid"
}

// Parent returns the containing component (node -> node BMC -> blade ->
// chassis -> cabinet). Parent of a cabinet is an invalid xname.
func (x Xname) Parent() Xname {
	switch x.Kind {
	case KindNode:
		return Xname{Kind: KindNodeBMC, Cabinet: x.Cabinet, Chassis: x.Chassis, Slot: x.Slot, BMC: x.BMC, Node: -1}
	case KindNodeBMC:
		return Xname{Kind: KindBlade, Cabinet: x.Cabinet, Chassis: x.Chassis, Slot: x.Slot, BMC: -1, Node: -1}
	case KindBlade, KindSwitchBMC, KindChassisBMC:
		return Xname{Kind: KindChassis, Cabinet: x.Cabinet, Chassis: x.Chassis, Slot: -1, BMC: -1, Node: -1}
	case KindChassis:
		return Xname{Kind: KindCabinet, Cabinet: x.Cabinet, Chassis: -1, Slot: -1, BMC: -1, Node: -1}
	}
	return Xname{}
}
