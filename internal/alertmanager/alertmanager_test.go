package alertmanager

import (
	"errors"
	"sync"
	"testing"
	"time"

	"shastamon/internal/labels"
)

// fakeReceiver records notifications.
type fakeReceiver struct {
	name string
	mu   sync.Mutex
	got  []Notification
	err  error
}

func (f *fakeReceiver) Name() string { return f.name }
func (f *fakeReceiver) Notify(n Notification) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.got = append(f.got, n)
	return f.err
}
func (f *fakeReceiver) notifications() []Notification {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Notification(nil), f.got...)
}
func (f *fakeReceiver) setErr(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.err = err
}

// clock is a controllable time source.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newTestManager(t *testing.T, route *Route, rcv ...Receiver) (*Manager, *clock) {
	t.Helper()
	ck := &clock{t: time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)}
	m, err := New(Config{Route: route, Receivers: rcv, Now: ck.Now})
	if err != nil {
		t.Fatal(err)
	}
	return m, ck
}

func alert(kv ...string) Alert {
	return Alert{Labels: labels.FromStrings(kv...)}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil route accepted")
	}
	if _, err := New(Config{Route: &Route{}}); err == nil {
		t.Fatal("root without receiver accepted")
	}
	if _, err := New(Config{Route: &Route{Receiver: "ghost"}}); err == nil {
		t.Fatal("unknown receiver accepted")
	}
}

func TestGroupWaitThenNotify(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: 30 * time.Second}, slack)
	m.Receive(alert("alertname", "LeakDetected", "context", "x1203c1b0"))

	if got := m.Flush(); len(got) != 0 {
		t.Fatalf("notified before group_wait: %+v", got)
	}
	ck.Advance(31 * time.Second)
	got := m.Flush()
	if len(got) != 1 || len(got[0].Alerts) != 1 {
		t.Fatalf("%+v", got)
	}
	if got[0].Status != StatusFiring || got[0].Receiver != "slack" {
		t.Fatalf("%+v", got[0])
	}
	if len(slack.notifications()) != 1 {
		t.Fatal("receiver not called")
	}
}

func TestDedupWithinGroup(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second}, slack)
	a := alert("alertname", "X", "node", "n1")
	m.Receive(a)
	m.Receive(a) // duplicate
	ck.Advance(2 * time.Second)
	got := m.Flush()
	if len(got) != 1 || len(got[0].Alerts) != 1 {
		t.Fatalf("dedup failed: %+v", got)
	}
}

func TestGroupByLabels(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second, GroupBy: []string{"severity"}}, slack)
	m.Receive(alert("alertname", "A", "severity", "critical"))
	m.Receive(alert("alertname", "B", "severity", "critical"))
	m.Receive(alert("alertname", "C", "severity", "warning"))
	ck.Advance(2 * time.Second)
	got := m.Flush()
	if len(got) != 2 {
		t.Fatalf("groups: %+v", got)
	}
	sizes := map[string]int{}
	for _, n := range got {
		sizes[n.GroupLabels.Get("severity")] = len(n.Alerts)
	}
	if sizes["critical"] != 2 || sizes["warning"] != 1 {
		t.Fatalf("sizes: %v", sizes)
	}
}

func TestGroupIntervalForNewAlerts(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second, GroupInterval: time.Minute}, slack)
	m.Receive(alert("alertname", "A", "i", "1"))
	ck.Advance(2 * time.Second)
	if got := m.Flush(); len(got) != 1 {
		t.Fatalf("%+v", got)
	}
	// New alert in the same group: must wait for GroupInterval.
	m.Receive(alert("alertname", "A", "i", "2"))
	ck.Advance(10 * time.Second)
	if got := m.Flush(); len(got) != 0 {
		t.Fatalf("notified before group_interval: %+v", got)
	}
	ck.Advance(51 * time.Second)
	got := m.Flush()
	if len(got) != 1 || len(got[0].Alerts) != 2 {
		t.Fatalf("%+v", got)
	}
}

func TestRepeatInterval(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second, RepeatInterval: time.Hour}, slack)
	m.Receive(alert("alertname", "A"))
	ck.Advance(2 * time.Second)
	m.Flush()
	ck.Advance(30 * time.Minute)
	if got := m.Flush(); len(got) != 0 {
		t.Fatalf("early repeat: %+v", got)
	}
	ck.Advance(31 * time.Minute)
	got := m.Flush()
	if len(got) != 1 {
		t.Fatalf("no repeat: %+v", got)
	}
}

func TestResolvedNotifiedOnceThenDropped(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second, GroupInterval: time.Second}, slack)
	a := alert("alertname", "A")
	m.Receive(a)
	ck.Advance(2 * time.Second)
	m.Flush()
	// Resolve it.
	a.EndsAt = ck.Now()
	m.Receive(a)
	ck.Advance(2 * time.Second)
	got := m.Flush()
	if len(got) != 1 || got[0].Status != StatusResolved {
		t.Fatalf("%+v", got)
	}
	if m.Groups() != 0 {
		t.Fatal("group not cleaned up")
	}
}

func TestRoutingTree(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	snow := &fakeReceiver{name: "servicenow"}
	route := &Route{
		Receiver:  "slack",
		GroupWait: time.Second,
		Routes: []*Route{
			{
				Receiver:  "servicenow",
				Matchers:  labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")},
				GroupWait: time.Second,
			},
		},
	}
	m, ck := newTestManager(t, route, slack, snow)
	m.Receive(alert("alertname", "A", "severity", "critical"))
	m.Receive(alert("alertname", "B", "severity", "warning"))
	ck.Advance(2 * time.Second)
	m.Flush()
	if len(snow.notifications()) != 1 || snow.notifications()[0].Alerts[0].Name() != "A" {
		t.Fatalf("snow: %+v", snow.notifications())
	}
	if len(slack.notifications()) != 1 || slack.notifications()[0].Alerts[0].Name() != "B" {
		t.Fatalf("slack: %+v", slack.notifications())
	}
}

func TestRoutingContinue(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	snow := &fakeReceiver{name: "servicenow"}
	route := &Route{
		Receiver:  "slack",
		GroupWait: time.Second,
		Routes: []*Route{
			{
				Receiver:  "servicenow",
				Matchers:  labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")},
				GroupWait: time.Second,
				Continue:  true,
			},
			{
				Receiver:  "slack",
				Matchers:  labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")},
				GroupWait: time.Second,
			},
		},
	}
	m, ck := newTestManager(t, route, slack, snow)
	m.Receive(alert("alertname", "A", "severity", "critical"))
	ck.Advance(2 * time.Second)
	m.Flush()
	if len(snow.notifications()) != 1 || len(slack.notifications()) != 1 {
		t.Fatalf("continue routing: snow=%d slack=%d", len(snow.notifications()), len(slack.notifications()))
	}
}

func TestSilence(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second}, slack)
	id := m.AddSilence(Silence{
		Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "Noisy")},
		StartsAt: ck.Now().Add(-time.Minute),
		EndsAt:   ck.Now().Add(time.Hour),
	})
	m.Receive(alert("alertname", "Noisy"))
	m.Receive(alert("alertname", "Important"))
	ck.Advance(2 * time.Second)
	got := m.Flush()
	if len(got) != 1 || got[0].Alerts[0].Name() != "Important" {
		t.Fatalf("%+v", got)
	}
	if st := m.AlertStatus(alert("alertname", "Noisy")); st != StatusSuppressed {
		t.Fatalf("status: %s", st)
	}
	m.RemoveSilence(id)
	if len(m.Silences()) != 0 {
		t.Fatal("silence not removed")
	}
}

func TestInhibition(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	route := &Route{Receiver: "slack", GroupWait: time.Second}
	ck := &clock{t: time.Unix(0, 0)}
	m, err := New(Config{
		Route:     route,
		Receivers: []Receiver{slack},
		Now:       ck.Now,
		Inhibit: []InhibitRule{{
			SourceMatchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "CabinetPowerDown")},
			TargetMatchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "alertname", "SwitchOffline")},
			Equal:          []string{"cabinet"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Receive(alert("alertname", "CabinetPowerDown", "cabinet", "x1000"))
	m.Receive(alert("alertname", "SwitchOffline", "cabinet", "x1000")) // inhibited
	m.Receive(alert("alertname", "SwitchOffline", "cabinet", "x2000")) // different cabinet, fires
	ck.Advance(2 * time.Second)
	got := m.Flush()
	names := map[string]int{}
	for _, n := range got {
		for _, a := range n.Alerts {
			names[a.Name()+"/"+a.Labels.Get("cabinet")]++
		}
	}
	if names["SwitchOffline/x1000"] != 0 {
		t.Fatalf("inhibited alert notified: %v", names)
	}
	if names["SwitchOffline/x2000"] != 1 || names["CabinetPowerDown/x1000"] != 1 {
		t.Fatalf("expected alerts missing: %v", names)
	}
}

func TestReceiverErrorCollected(t *testing.T) {
	bad := &fakeReceiver{name: "slack", err: errors.New("webhook 500")}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second}, bad)
	m.Receive(alert("alertname", "A"))
	ck.Advance(2 * time.Second)
	m.Flush()
	errs := m.NotifyErrors()
	if len(errs) != 1 {
		t.Fatalf("errs: %v", errs)
	}
	if len(m.NotifyErrors()) != 0 {
		t.Fatal("errors not drained")
	}
}

func TestRunLoop(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	m, err := New(Config{Route: &Route{Receiver: "slack", GroupWait: time.Millisecond}, Receivers: []Receiver{slack}})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Run(5*time.Millisecond, stop)
		close(done)
	}()
	m.Receive(alert("alertname", "A"))
	deadline := time.After(2 * time.Second)
	for len(slack.notifications()) == 0 {
		select {
		case <-deadline:
			t.Fatal("no notification within deadline")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done
}

func BenchmarkReceiveAndFlush(b *testing.B) {
	slack := &fakeReceiver{name: "slack"}
	ck := &clock{t: time.Unix(0, 0)}
	m, err := New(Config{
		Route:     &Route{Receiver: "slack", GroupWait: time.Nanosecond, GroupBy: []string{"severity"}},
		Receivers: []Receiver{slack},
		Now:       ck.Now,
	})
	if err != nil {
		b.Fatal(err)
	}
	sev := []string{"critical", "warning", "info"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Receive(Alert{Labels: labels.FromStrings("alertname", "A", "severity", sev[i%3], "node", labelFor(i))})
		if i%100 == 99 {
			ck.Advance(time.Second)
			m.Flush()
		}
	}
}

func labelFor(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}

func TestRouteDefaultInheritance(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	snow := &fakeReceiver{name: "servicenow"}
	root := &Route{
		Receiver:       "slack",
		GroupBy:        []string{"severity"},
		GroupWait:      2 * time.Second,
		GroupInterval:  3 * time.Minute,
		RepeatInterval: 2 * time.Hour,
		Routes: []*Route{
			{Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "team", "net")}},
			{Receiver: "servicenow", Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "team", "fs")}, GroupWait: time.Second},
		},
	}
	if _, err := New(Config{Route: root, Receivers: []Receiver{slack, snow}}); err != nil {
		t.Fatal(err)
	}
	// Child 0 inherits everything from the root.
	c0 := root.Routes[0]
	if c0.Receiver != "slack" || c0.GroupWait != 2*time.Second || c0.GroupInterval != 3*time.Minute ||
		c0.RepeatInterval != 2*time.Hour || len(c0.GroupBy) != 1 {
		t.Fatalf("%+v", c0)
	}
	// Child 1 keeps its override but inherits the rest.
	c1 := root.Routes[1]
	if c1.Receiver != "servicenow" || c1.GroupWait != time.Second || c1.GroupInterval != 3*time.Minute {
		t.Fatalf("%+v", c1)
	}
}

// A receiver outage must not lose the notification: it is requeued with
// backoff and delivered — once — when the receiver heals.
func TestFailedNotificationRequeuedUntilReceiverHeals(t *testing.T) {
	down := errors.New("instance down")
	sn := &fakeReceiver{name: "sn", err: down}
	ck := &clock{t: time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)}
	m, err := New(Config{
		Route:        &Route{Receiver: "sn", GroupWait: time.Second},
		Receivers:    []Receiver{sn},
		Now:          ck.Now,
		RetryBackoff: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Receive(alert("alertname", "LeakDetected", "xname", "x1203c1b0"))
	ck.Advance(time.Second)
	m.Flush()
	if got := len(sn.notifications()); got != 1 {
		t.Fatalf("attempts = %d", got)
	}
	if m.RetryQueueLen() != 1 {
		t.Fatalf("retry queue = %d", m.RetryQueueLen())
	}
	// Before the backoff deadline a flush must not hammer the receiver.
	m.Flush()
	if got := len(sn.notifications()); got != 1 {
		t.Fatalf("retried before deadline: %d attempts", got)
	}
	// Second attempt at +10s still fails; backoff doubles.
	ck.Advance(10 * time.Second)
	m.Flush()
	if got := len(sn.notifications()); got != 2 {
		t.Fatalf("attempts = %d", got)
	}
	ck.Advance(10 * time.Second)
	m.Flush() // 20s backoff not yet elapsed
	if got := len(sn.notifications()); got != 2 {
		t.Fatalf("redelivered before doubled backoff: %d", got)
	}
	// Receiver heals; the queued notification lands exactly once.
	sn.setErr(nil)
	ck.Advance(10 * time.Second)
	m.Flush()
	got := sn.notifications()
	if len(got) != 3 || m.RetryQueueLen() != 0 {
		t.Fatalf("attempts = %d queue = %d", len(got), m.RetryQueueLen())
	}
	if got[2].Alerts[0].Name() != "LeakDetected" {
		t.Fatalf("wrong notification delivered: %+v", got[2])
	}
	// No duplicate delivery on subsequent flushes.
	ck.Advance(time.Minute)
	m.Flush()
	if len(sn.notifications()) != 3 {
		t.Fatal("duplicate delivery after recovery")
	}
	if errs := m.NotifyErrors(); len(errs) != 2 {
		t.Fatalf("notify errors = %v", errs)
	}
}

// After MaxNotifyAttempts the notification is dropped, not requeued
// forever.
func TestNotificationDroppedAfterMaxAttempts(t *testing.T) {
	sn := &fakeReceiver{name: "sn", err: errors.New("hard down")}
	ck := &clock{t: time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)}
	m, err := New(Config{
		Route:             &Route{Receiver: "sn", GroupWait: time.Second},
		Receivers:         []Receiver{sn},
		Now:               ck.Now,
		RetryBackoff:      time.Second,
		MaxNotifyAttempts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Receive(alert("alertname", "LeakDetected", "xname", "x1000c0"))
	ck.Advance(time.Second)
	m.Flush()
	if m.RetryQueueLen() != 1 {
		t.Fatalf("queue = %d", m.RetryQueueLen())
	}
	ck.Advance(time.Second)
	m.Flush()
	if m.RetryQueueLen() != 0 {
		t.Fatalf("dropped notification still queued: %d", m.RetryQueueLen())
	}
	ck.Advance(time.Minute)
	m.Flush()
	if got := len(sn.notifications()); got != 2 {
		t.Fatalf("attempts after drop = %d", got)
	}
}
