package obs

import (
	"runtime"
	"sync"
)

// runtimeSampler caches one runtime.MemStats read per gather so the three
// heap gauges and the GC-pause histogram share a single stop-the-world
// sample instead of taking one each.
type runtimeSampler struct {
	mu        sync.Mutex
	ms        runtime.MemStats
	lastNumGC uint32
	pauses    *Histogram
}

// refresh re-reads MemStats and feeds GC pauses that completed since the
// previous refresh into the pause histogram. PauseNs is a circular buffer
// of the last 256 pauses, so a scrape gap longer than 256 GCs drops the
// overflow — the same trade-off the standard Go collectors make.
func (rs *runtimeSampler) refresh() runtime.MemStats {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	runtime.ReadMemStats(&rs.ms)
	n := rs.ms.NumGC
	if delta := n - rs.lastNumGC; delta > 0 {
		if delta > 256 {
			delta = 256
		}
		for i := n - delta; i < n; i++ {
			rs.pauses.Observe(float64(rs.ms.PauseNs[i%256]) / 1e9)
		}
		rs.lastNumGC = n
	}
	return rs.ms
}

// GCPauseBuckets are bounds for Go GC stop-the-world pauses: tens of
// microseconds in the common case, milliseconds when the heap misbehaves.
var GCPauseBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 0.01, 0.05, 0.1,
}

// RegisterRuntime registers Go runtime self-metrics on r: goroutine
// count, heap usage and a GC pause histogram. Self-scraped like every
// other shastamon_* family, they let dashboards correlate slow queries
// with GC pressure. Call once per registry.
func RegisterRuntime(r *Registry) {
	rs := &runtimeSampler{}
	// The goroutines gauge is registered first so its render refreshes the
	// shared sample before the gauges and histogram below render theirs.
	r.GaugeFunc(Namespace+"go_goroutines",
		"Goroutines currently live in the process.", func() float64 {
			rs.refresh()
			return float64(runtime.NumGoroutine())
		})
	r.GaugeFunc(Namespace+"go_heap_alloc_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).", func() float64 {
			rs.mu.Lock()
			defer rs.mu.Unlock()
			return float64(rs.ms.HeapAlloc)
		})
	r.GaugeFunc(Namespace+"go_heap_objects",
		"Live heap objects (runtime.MemStats.HeapObjects).", func() float64 {
			rs.mu.Lock()
			defer rs.mu.Unlock()
			return float64(rs.ms.HeapObjects)
		})
	rs.pauses = r.Histogram(Namespace+"go_gc_pause_seconds",
		"Stop-the-world GC pause durations.", GCPauseBuckets)
}
