package logql

import (
	"testing"
	"time"
)

func kinds(toks []token) []tokKind {
	out := make([]tokKind, len(toks))
	for i, t := range toks {
		out[i] = t.kind
	}
	return out
}

func TestLexSelector(t *testing.T) {
	toks, err := lex(`{app="fm", x!~"y.*"}`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tokLBrace, tokIdent, tokEq, tokString, tokComma, tokIdent, tokNre, tokString, tokRBrace, tokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %s want %s", i, got[i], want[i])
		}
	}
	if toks[3].text != "fm" {
		t.Fatalf("string text %q", toks[3].text)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex(`|= != |~ !~ | > >= < <= == = =~`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokKind{tokPipeExact, tokNeq, tokPipeMatch, tokNre, tokPipe, tokGt, tokGte, tokLt, tokLte, tokEqEq, tokEq, tokRe, tokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tok %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestLexDurationVsNumber(t *testing.T) {
	toks, err := lex(`[60m] 5 2.5 1h30m`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokDuration || toks[1].text != "60m" {
		t.Fatalf("60m: %v %q", toks[1].kind, toks[1].text)
	}
	if toks[3].kind != tokNumber || toks[4].kind != tokNumber {
		t.Fatal("numbers mislexed")
	}
	if toks[5].kind != tokDuration || toks[5].text != "1h30m" {
		t.Fatalf("1h30m: %v %q", toks[5].kind, toks[5].text)
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks, err := lex(`"a\"b" 'c\'d' ` + "`raw\\n`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != `a"b` {
		t.Fatalf("dq: %q", toks[0].text)
	}
	if toks[1].text != `c'd` {
		t.Fatalf("sq: %q", toks[1].text)
	}
	if toks[2].text != `raw\n` {
		t.Fatalf("raw: %q", toks[2].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, in := range []string{`"unterminated`, `#`, `!x`} {
		if _, err := lex(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestParseDurationExtended(t *testing.T) {
	cases := map[string]time.Duration{
		"60m":   60 * time.Minute,
		"1h30m": 90 * time.Minute,
		"2d":    48 * time.Hour,
		"1w":    7 * 24 * time.Hour,
		"500ms": 500 * time.Millisecond,
		"1d12h": 36 * time.Hour,
	}
	for in, want := range cases {
		got, err := parseDuration(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%s: got %v want %v", in, got, want)
		}
	}
	if _, err := parseDuration("xx"); err == nil {
		t.Error("bad duration accepted")
	}
}
