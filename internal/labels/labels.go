// Package labels implements label sets and matchers in the style shared by
// Prometheus, VictoriaMetrics and Grafana Loki. A label set identifies a
// metric series or a log stream; matchers select sets of them.
//
// Label sets are kept sorted by name so that equality, hashing and string
// rendering are deterministic and allocation-light.
package labels

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Label is a single name/value pair.
type Label struct {
	Name  string
	Value string
}

// Labels is a set of labels sorted by name. The zero value is an empty set.
type Labels []Label

// New builds a sorted Labels from the given pairs. Duplicate names keep the
// last value, mirroring relabeling semantics.
func New(pairs ...Label) Labels {
	ls := make(Labels, 0, len(pairs))
	ls = append(ls, pairs...)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	// Deduplicate, last wins.
	out := ls[:0]
	for i := 0; i < len(ls); i++ {
		if len(out) > 0 && out[len(out)-1].Name == ls[i].Name {
			out[len(out)-1].Value = ls[i].Value
			continue
		}
		out = append(out, ls[i])
	}
	return out
}

// FromMap builds a sorted Labels from a map.
func FromMap(m map[string]string) Labels {
	ls := make(Labels, 0, len(m))
	for k, v := range m {
		ls = append(ls, Label{Name: k, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// FromStrings builds Labels from name, value, name, value, ... It panics on
// an odd number of arguments; it is intended for literals in tests and
// configuration code.
func FromStrings(nv ...string) Labels {
	if len(nv)%2 != 0 {
		panic("labels.FromStrings: odd number of arguments")
	}
	ls := make(Labels, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		ls = append(ls, Label{Name: nv[i], Value: nv[i+1]})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

// Get returns the value of the label with the given name, or "".
func (ls Labels) Get(name string) string {
	for _, l := range ls {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Has reports whether the set contains the given name.
func (ls Labels) Has(name string) bool {
	for _, l := range ls {
		if l.Name == name {
			return true
		}
	}
	return false
}

// Map returns the labels as a map.
func (ls Labels) Map() map[string]string {
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Name] = l.Value
	}
	return m
}

// Copy returns an independent copy of the label set.
func (ls Labels) Copy() Labels {
	out := make(Labels, len(ls))
	copy(out, ls)
	return out
}

// With returns a copy with the given label set (added or replaced).
func (ls Labels) With(name, value string) Labels {
	out := make(Labels, 0, len(ls)+1)
	inserted := false
	for _, l := range ls {
		switch {
		case l.Name == name:
			out = append(out, Label{name, value})
			inserted = true
		case !inserted && l.Name > name:
			out = append(out, Label{name, value}, l)
			inserted = true
		default:
			out = append(out, l)
		}
	}
	if !inserted {
		out = append(out, Label{name, value})
	}
	return out
}

// Without returns a copy with the named labels removed.
func (ls Labels) Without(names ...string) Labels {
	drop := make(map[string]bool, len(names))
	for _, n := range names {
		drop[n] = true
	}
	out := make(Labels, 0, len(ls))
	for _, l := range ls {
		if !drop[l.Name] {
			out = append(out, l)
		}
	}
	return out
}

// Keep returns a copy retaining only the named labels.
func (ls Labels) Keep(names ...string) Labels {
	keep := make(map[string]bool, len(names))
	for _, n := range names {
		keep[n] = true
	}
	out := make(Labels, 0, len(names))
	for _, l := range ls {
		if keep[l.Name] {
			out = append(out, l)
		}
	}
	return out
}

// Equal reports whether two label sets are identical.
func (ls Labels) Equal(other Labels) bool {
	if len(ls) != len(other) {
		return false
	}
	for i := range ls {
		if ls[i] != other[i] {
			return false
		}
	}
	return true
}

// Fingerprint is a hash identifying a label set. Distinct label sets map to
// distinct fingerprints with high probability; collisions are tolerated by
// callers that compare full label sets on lookup.
type Fingerprint uint64

// FNV-1a parameters, inlined so fingerprinting allocates nothing: the
// sharded stores hash every pushed stream to pick its shard, so this sits
// on the ingest hot path.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Fingerprint computes an FNV-1a hash over the sorted name/value pairs.
// It is byte-for-byte compatible with hash/fnv over the same
// name/0xff/value/0xff sequence but performs no allocations.
func (ls Labels) Fingerprint() Fingerprint {
	h := uint64(fnvOffset64)
	for _, l := range ls {
		for i := 0; i < len(l.Name); i++ {
			h = (h ^ uint64(l.Name[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
		for i := 0; i < len(l.Value); i++ {
			h = (h ^ uint64(l.Value[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
	}
	return Fingerprint(h)
}

// Seed folds a namespace string (e.g. a tenant ID) into an FNV-1a state
// usable as the starting offset of FingerprintSeeded. Seeding keeps
// namespaced fingerprinting as allocation-free as the plain form: the
// seed is computed once per namespace and reused for every label set.
func Seed(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return (h ^ 0xff) * fnvPrime64
}

// FingerprintSeeded is Fingerprint starting from an arbitrary FNV state
// instead of the standard offset basis. FingerprintSeeded(seed) with
// seed = the FNV offset basis is identical to Fingerprint(), so a
// default namespace can keep byte-identical hashes.
func (ls Labels) FingerprintSeeded(seed uint64) Fingerprint {
	h := seed
	for _, l := range ls {
		for i := 0; i < len(l.Name); i++ {
			h = (h ^ uint64(l.Name[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
		for i := 0; i < len(l.Value); i++ {
			h = (h ^ uint64(l.Value[i])) * fnvPrime64
		}
		h = (h ^ 0xff) * fnvPrime64
	}
	return Fingerprint(h)
}

// String renders the set in the {name="value", ...} form used by both
// PromQL and LogQL.
func (ls Labels) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// Validate reports an error if any label name is empty or contains '=',
// '{', '}' or '"' characters that would make the rendered form ambiguous.
func (ls Labels) Validate() error {
	for _, l := range ls {
		if l.Name == "" {
			return fmt.Errorf("labels: empty label name (value %q)", l.Value)
		}
		if strings.ContainsAny(l.Name, `={}" ,`) {
			return fmt.Errorf("labels: invalid label name %q", l.Name)
		}
	}
	return nil
}

// MatchType is the comparison operator of a Matcher.
type MatchType int

// Match types correspond to the four selector operators of PromQL/LogQL.
const (
	MatchEqual     MatchType = iota // =
	MatchNotEqual                   // !=
	MatchRegexp                     // =~
	MatchNotRegexp                  // !~
)

// String returns the operator token.
func (t MatchType) String() string {
	switch t {
	case MatchEqual:
		return "="
	case MatchNotEqual:
		return "!="
	case MatchRegexp:
		return "=~"
	case MatchNotRegexp:
		return "!~"
	}
	return "?"
}

// Matcher tests a single label against a value or anchored regexp.
type Matcher struct {
	Type  MatchType
	Name  string
	Value string

	re *regexp.Regexp
}

// NewMatcher builds a matcher; regexp values are compiled fully anchored,
// as in Prometheus.
func NewMatcher(t MatchType, name, value string) (*Matcher, error) {
	m := &Matcher{Type: t, Name: name, Value: value}
	if t == MatchRegexp || t == MatchNotRegexp {
		re, err := regexp.Compile("^(?:" + value + ")$")
		if err != nil {
			return nil, fmt.Errorf("labels: bad regexp %q: %w", value, err)
		}
		m.re = re
	}
	return m, nil
}

// MustMatcher is NewMatcher that panics on error; for tests and literals.
func MustMatcher(t MatchType, name, value string) *Matcher {
	m, err := NewMatcher(t, name, value)
	if err != nil {
		panic(err)
	}
	return m
}

// Matches reports whether the given value satisfies the matcher.
func (m *Matcher) Matches(v string) bool {
	switch m.Type {
	case MatchEqual:
		return v == m.Value
	case MatchNotEqual:
		return v != m.Value
	case MatchRegexp:
		return m.re.MatchString(v)
	case MatchNotRegexp:
		return !m.re.MatchString(v)
	}
	return false
}

// String renders the matcher as name<op>"value".
func (m *Matcher) String() string {
	return m.Name + m.Type.String() + strconv.Quote(m.Value)
}

// MatchLabels reports whether a label set satisfies all matchers. A matcher
// on an absent label sees the empty string, matching Prometheus semantics
// (so name!="x" matches series without the label).
func MatchLabels(ls Labels, matchers []*Matcher) bool {
	for _, m := range matchers {
		if !m.Matches(ls.Get(m.Name)) {
			return false
		}
	}
	return true
}

// Selector is a parsed set of matchers with a compact String form.
type Selector []*Matcher

// String renders the selector in {a="b", c!~"d"} form.
func (s Selector) String() string {
	parts := make([]string, len(s))
	for i, m := range s {
		parts[i] = m.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Matches applies MatchLabels.
func (s Selector) Matches(ls Labels) bool { return MatchLabels(ls, s) }

// Builder incrementally assembles a label set.
type Builder struct {
	add  map[string]string
	del  map[string]bool
	base Labels
}

// NewBuilder starts from a base label set.
func NewBuilder(base Labels) *Builder {
	return &Builder{add: map[string]string{}, del: map[string]bool{}, base: base}
}

// Set schedules name=value.
func (b *Builder) Set(name, value string) *Builder {
	b.add[name] = value
	delete(b.del, name)
	return b
}

// Del schedules removal of name.
func (b *Builder) Del(name string) *Builder {
	b.del[name] = true
	delete(b.add, name)
	return b
}

// Labels materialises the result.
func (b *Builder) Labels() Labels {
	m := make(map[string]string, len(b.base)+len(b.add))
	for _, l := range b.base {
		m[l.Name] = l.Value
	}
	for k, v := range b.add {
		m[k] = v
	}
	for k := range b.del {
		delete(m, k)
	}
	return FromMap(m)
}
