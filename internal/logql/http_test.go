package logql

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

type lokiResp struct {
	Status string `json:"status"`
	Error  string `json:"error"`
	Data   struct {
		ResultType string          `json:"resultType"`
		Result     json.RawMessage `json:"result"`
	} `json:"data"`
}

func getJSON(t *testing.T, url string) (int, lokiResp) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out lokiResp
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestHTTPInstantQuery(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("app", "x")
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: 1e9, Line: "event"}}}})
	srv := httptest.NewServer(NewEngine(store).Handler())
	defer srv.Close()

	code, out := getJSON(t, fmt.Sprintf(`%s/loki/api/v1/query?query=%s&time=%d`,
		srv.URL, `count_over_time({app="x"}[1m])`, int64(time.Minute)))
	if code != 200 || out.Status != "success" || out.Data.ResultType != "vector" {
		t.Fatalf("%d %+v", code, out)
	}
	var result []struct {
		Metric map[string]string `json:"metric"`
		Value  [2]interface{}    `json:"value"`
	}
	_ = json.Unmarshal(out.Data.Result, &result)
	if len(result) != 1 || result[0].Value[1] != "1" {
		t.Fatalf("%+v", result)
	}

	// Log expression on the instant endpoint: 400.
	code, _ = getJSON(t, srv.URL+`/loki/api/v1/query?query={app="x"}`)
	if code != 400 {
		t.Fatalf("log query accepted: %d", code)
	}
}

func TestHTTPQueryRangeStreams(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("app", "fabric_manager_monitor")
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{
		{Timestamp: 1e9, Line: "[critical] problem:fm_switch_offline, xname:x1002c1r7b0, state:UNKNOWN"},
	}}})
	srv := httptest.NewServer(NewEngine(store).Handler())
	defer srv.Close()

	code, out := getJSON(t, srv.URL+`/loki/api/v1/query_range?query={app="fabric_manager_monitor"}&start=0&end=2000000000`)
	if code != 200 || out.Data.ResultType != "streams" {
		t.Fatalf("%d %+v", code, out)
	}
	var result []struct {
		Stream map[string]string `json:"stream"`
		Values [][2]string       `json:"values"`
	}
	_ = json.Unmarshal(out.Data.Result, &result)
	if len(result) != 1 || len(result[0].Values) != 1 || result[0].Values[0][0] != "1000000000" {
		t.Fatalf("%+v", result)
	}
}

func TestHTTPQueryRangeMatrix(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("app", "x")
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: 30e9, Line: "e"}}}})
	srv := httptest.NewServer(NewEngine(store).Handler())
	defer srv.Close()

	code, out := getJSON(t, fmt.Sprintf(`%s/loki/api/v1/query_range?query=%s&start=0&end=%d&step=30`,
		srv.URL, `sum(count_over_time({app="x"}[1m]))`, int64(2*time.Minute)))
	if code != 200 || out.Data.ResultType != "matrix" {
		t.Fatalf("%d %+v", code, out)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	srv := httptest.NewServer(NewEngine(loki.NewStore(loki.DefaultLimits())).Handler())
	defer srv.Close()
	code, out := getJSON(t, srv.URL+`/loki/api/v1/query?query={{{`)
	if code != 400 || out.Status != "error" {
		t.Fatalf("%d %+v", code, out)
	}
	code, _ = getJSON(t, srv.URL+`/loki/api/v1/query?query=rate({a="b"}[1m])&time=abc`)
	if code != 400 {
		t.Fatalf("bad time accepted: %d", code)
	}
	code, _ = getJSON(t, srv.URL+`/loki/api/v1/query_range?query=rate({a="b"}[1m])&step=-1`)
	if code != 400 {
		t.Fatalf("bad step accepted: %d", code)
	}
}

// TestHTTPQueryRangeShedsWith429 saturates the frontend's only execution
// slot and checks the next range query is shed with 429 instead of
// queueing unbounded.
func TestHTTPQueryRangeShedsWith429(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	ls := labels.FromStrings("app", "x")
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: 30e9, Line: "e"}}}})
	eng := NewEngine(store)
	f := frontend.New(frontend.Config{MaxConcurrent: 1, MaxQueueDepth: -1})
	eng.SetFrontend(f)
	srv := httptest.NewServer(eng.Handler())
	defer srv.Close()

	// Occupy the single logql slot with a blocking request straight into
	// the shared frontend — same admission queue the handler uses.
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := f.QueryRange(context.Background(), frontend.Request{
			Engine: "logql", Query: "blocker", Start: 0, End: 0, Step: 1,
			Eval: func(ctx context.Context, start, end int64, shard int) (frontend.Matrix, error) {
				close(started)
				<-block
				return frontend.Matrix{}, nil
			},
		})
		done <- err
	}()
	<-started

	code, out := getJSON(t, fmt.Sprintf(`%s/loki/api/v1/query_range?query=%s&start=0&end=%d&step=30`,
		srv.URL, `sum(count_over_time({app="x"}[1m]))`, int64(2*time.Minute)))
	if code != http.StatusTooManyRequests || out.Status != "error" {
		t.Fatalf("saturated frontend: got %d %+v, want 429", code, out)
	}
	if f.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", f.Rejected())
	}

	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	code, _ = getJSON(t, fmt.Sprintf(`%s/loki/api/v1/query_range?query=%s&start=0&end=%d&step=30`,
		srv.URL, `sum(count_over_time({app="x"}[1m]))`, int64(2*time.Minute)))
	if code != 200 {
		t.Fatalf("after release: %d", code)
	}
}
