// Quickstart: stand up the whole monitoring pipeline against the
// simulated Perlmutter system, push one tick of telemetry through it, and
// query both stores — the minimal end-to-end tour of the framework.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"shastamon/internal/core"
)

func main() {
	// Assemble Fig. 1: Shasta simulator -> HMS -> Kafka -> Telemetry API ->
	// Loki + VictoriaMetrics-style TSDB -> Ruler/vmalert -> Alertmanager ->
	// Slack + ServiceNow. Defaults give a small Perlmutter-like system.
	p, err := core.New(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Advance the pipeline a few synchronous steps.
	now := time.Now().UTC().Truncate(time.Second)
	for i := 0; i < 3; i++ {
		if err := p.Tick(now.Add(time.Duration(i) * 15 * time.Second)); err != nil {
			log.Fatal(err)
		}
	}
	end := now.Add(30 * time.Second)

	// The warehouse now holds sensor metrics...
	vec, err := p.Warehouse.PromQL.Query(`avg(cray_telemetry_temperature)`, end.UnixMilli())
	if err != nil {
		log.Fatal(err)
	}
	if len(vec) > 0 {
		fmt.Printf("average node temperature: %.1f C across the machine\n", vec[0].V)
	}
	vec, err = p.Warehouse.PromQL.Query(`up`, end.UnixMilli())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exporter targets up: %d\n", len(vec))

	// ...and is ready for LogQL over anything the sources logged.
	stats := p.Warehouse.Stats()
	fmt.Printf("warehouse: %d log streams, %d metric series, %d samples\n",
		stats.LogStore.Streams, stats.MetricStore.Series, stats.MetricStore.Samples)
	fmt.Println("quickstart OK — see examples/leakdetection and examples/switchoffline for the paper's case studies")
}
