package shasta

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"shastamon/internal/redfish"
)

// SwitchState is a Slingshot switch's state as reported by the fabric
// manager.
type SwitchState string

// Switch states, matching the fabric manager vocabulary in the paper
// (the sample event shows state:UNKNOWN).
const (
	SwitchActive  SwitchState = "ACTIVE"
	SwitchUnknown SwitchState = "UNKNOWN"
	SwitchOffline SwitchState = "OFFLINE"
	SwitchDrained SwitchState = "DRAINED"
)

// Config sizes the simulated system.
type Config struct {
	Name               string // cluster name, e.g. "perlmutter"
	Cabinets           []int  // cabinet numbers (x<number>)
	ChassisPerCabinet  int
	BladesPerChassis   int
	NodesPerBMC        int
	SwitchesPerChassis int
	Seed               int64
}

// DefaultConfig is a small Perlmutter-like system that includes the
// cabinets the paper's figures reference (x1002, x1102, x1203).
func DefaultConfig() Config {
	return Config{
		Name:               "perlmutter",
		Cabinets:           []int{1000, 1002, 1102, 1203},
		ChassisPerCabinet:  8,
		BladesPerChassis:   8,
		NodesPerBMC:        2,
		SwitchesPerChassis: 8,
		Seed:               1,
	}
}

type leakKey struct {
	bmc  string
	zone string
}

// Cluster is the simulated machine. All methods are safe for concurrent
// use.
type Cluster struct {
	cfg Config

	nodes       []Xname
	switches    []Xname
	chassisBMCs []Xname

	mu          sync.Mutex
	rng         *rand.Rand
	sensorState map[string]float64
	drift       map[string]float64 // per-sample bias by sensor key
	switchState map[string]SwitchState
	leaks       map[leakKey]bool
	pending     []redfish.Record
}

// NewCluster builds the component tree for the config.
func NewCluster(cfg Config) (*Cluster, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("shasta: cluster name required")
	}
	if len(cfg.Cabinets) == 0 || cfg.ChassisPerCabinet <= 0 || cfg.BladesPerChassis <= 0 ||
		cfg.NodesPerBMC <= 0 || cfg.SwitchesPerChassis < 0 {
		return nil, fmt.Errorf("shasta: invalid topology %+v", cfg)
	}
	c := &Cluster{
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		sensorState: map[string]float64{},
		drift:       map[string]float64{},
		switchState: map[string]SwitchState{},
		leaks:       map[leakKey]bool{},
	}
	for _, cab := range cfg.Cabinets {
		for ch := 0; ch < cfg.ChassisPerCabinet; ch++ {
			c.chassisBMCs = append(c.chassisBMCs, Xname{Kind: KindChassisBMC, Cabinet: cab, Chassis: ch, Slot: -1, BMC: 0, Node: -1})
			for s := 0; s < cfg.BladesPerChassis; s++ {
				for n := 0; n < cfg.NodesPerBMC; n++ {
					c.nodes = append(c.nodes, Xname{Kind: KindNode, Cabinet: cab, Chassis: ch, Slot: s, BMC: 0, Node: n})
				}
			}
			for r := 0; r < cfg.SwitchesPerChassis; r++ {
				sw := Xname{Kind: KindSwitchBMC, Cabinet: cab, Chassis: ch, Slot: r, BMC: 0, Node: -1}
				c.switches = append(c.switches, sw)
				c.switchState[sw.String()] = SwitchActive
			}
		}
	}
	return c, nil
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.cfg.Name }

// Nodes returns all compute node xnames.
func (c *Cluster) Nodes() []Xname { return append([]Xname(nil), c.nodes...) }

// Switches returns all Rosetta switch xnames.
func (c *Cluster) Switches() []Xname { return append([]Xname(nil), c.switches...) }

// ChassisBMCs returns all chassis controller xnames (leak event sources).
func (c *Cluster) ChassisBMCs() []Xname { return append([]Xname(nil), c.chassisBMCs...) }

// ---- fault injection ----

// InjectLeak raises a CabinetLeakDetected event from the chassis BMC with
// the given xname (e.g. "x1203c1b0"), as if the redundant leak sensor
// (sensor "A"/"B", zone "Front"/"Rear") tripped. The event is queued for
// the HMS collector.
func (c *Cluster) InjectLeak(bmcXname, sensor, zone string, ts time.Time) error {
	x, err := ParseXname(bmcXname)
	if err != nil {
		return err
	}
	if x.Kind != KindChassisBMC {
		return fmt.Errorf("shasta: leak events originate at chassis BMCs, not %s (%s)", x.Kind, bmcXname)
	}
	if !c.hasChassisBMC(bmcXname) {
		return fmt.Errorf("shasta: unknown chassis BMC %q", bmcXname)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.leaks[leakKey{bmc: bmcXname, zone: zone}] = true
	c.pending = append(c.pending, redfish.Record{
		Context: bmcXname,
		Events:  []redfish.Event{redfish.LeakEvent(ts, sensor, zone)},
	})
	return nil
}

// ClearLeak clears the leak flag for a chassis BMC zone.
func (c *Cluster) ClearLeak(bmcXname, zone string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.leaks, leakKey{bmc: bmcXname, zone: zone})
}

// ActiveLeaks counts currently leaking chassis zones.
func (c *Cluster) ActiveLeaks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.leaks)
}

// PowerOff queues a critical power event for the given component.
func (c *Cluster) PowerOff(xname string, ts time.Time) error {
	if _, err := ParseXname(xname); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pending = append(c.pending, redfish.Record{
		Context: xname,
		Events:  []redfish.Event{redfish.PowerEvent(ts, xname, "Off")},
	})
	return nil
}

func (c *Cluster) hasChassisBMC(xname string) bool {
	for _, b := range c.chassisBMCs {
		if b.String() == xname {
			return true
		}
	}
	return false
}

// SetSwitchState changes a switch's fabric state (case study B's fault).
func (c *Cluster) SetSwitchState(xname string, state SwitchState) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.switchState[xname]; !ok {
		return fmt.Errorf("shasta: unknown switch %q", xname)
	}
	c.switchState[xname] = state
	return nil
}

// SwitchStates returns a copy of the switch state table; the fabric
// manager serves this through its API.
func (c *Cluster) SwitchStates() map[string]SwitchState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]SwitchState, len(c.switchState))
	for k, v := range c.switchState {
		out[k] = v
	}
	return out
}

// DrainEvents removes and returns all queued Redfish records, oldest
// first. The HMS collector calls this on its poll loop.
func (c *Cluster) DrainEvents() []redfish.Record {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.pending
	c.pending = nil
	return out
}

// ---- sensors ----

// SensorReading is one sample from the environmental/hardware sensors
// ("sensors in each cabinet, chassis, node, switch, cooling unit collect
// data like temperature, humidity, power, fan speed").
type SensorReading struct {
	Xname           string
	Sensor          string // Temperature, Power, Humidity, Fan
	PhysicalContext string // CPU, Chassis, Cabinet, ...
	Value           float64
	Unit            string
	Timestamp       time.Time
}

// walk advances a bounded random walk for the sensor key, plus any
// injected drift bias.
func (c *Cluster) walk(key string, base, step, lo, hi float64) float64 {
	v, ok := c.sensorState[key]
	if !ok {
		v = base + c.rng.Float64()*step*4 - step*2
	}
	v += c.rng.Float64()*2*step - step + c.drift[key]
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	c.sensorState[key] = v
	return v
}

// driftPrefix maps a sensor name to its walk-key prefix.
var driftPrefix = map[string]string{
	"Temperature": "temp/",
	"Power":       "power/",
	"Fan":         "fan/",
	"Humidity":    "hum/",
}

// InjectSensorDrift biases the named sensor of the component xname by
// perSample units on every subsequent reading — a slow physical failure
// in the making (coolant seeping into a cabinet, a fan bearing wearing
// out) that stays inside the sensor's normal range for many samples
// before any static threshold would notice. Experiments use it to give
// predictive rules a ramp to catch. Humidity sensors live on cabinets,
// so their xname is the bare cabinet ("x1203").
func (c *Cluster) InjectSensorDrift(sensor, xname string, perSample float64) error {
	prefix, ok := driftPrefix[sensor]
	if !ok {
		return fmt.Errorf("shasta: unknown sensor %q for drift injection", sensor)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.drift[prefix+xname] = perSample
	return nil
}

// ClearSensorDrift removes an injected drift (the failing part was
// replaced); the walk continues from its current level.
func (c *Cluster) ClearSensorDrift(sensor, xname string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.drift, driftPrefix[sensor]+xname)
}

// SensorReadings produces one sample per sensor at the given time: node
// temperature and power, chassis fan speed, cabinet humidity. Readings
// follow seeded random walks so repeated runs are reproducible.
func (c *Cluster) SensorReadings(ts time.Time) []SensorReading {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SensorReading, 0, 2*len(c.nodes)+len(c.chassisBMCs)+len(c.cfg.Cabinets))
	for _, n := range c.nodes {
		xs := n.String()
		out = append(out,
			SensorReading{Xname: xs, Sensor: "Temperature", PhysicalContext: "CPU", Unit: "Cel",
				Value: c.walk("temp/"+xs, 45, 0.5, 25, 95), Timestamp: ts},
			SensorReading{Xname: xs, Sensor: "Power", PhysicalContext: "Chassis", Unit: "W",
				Value: c.walk("power/"+xs, 520, 8, 180, 950), Timestamp: ts},
		)
	}
	for _, b := range c.chassisBMCs {
		xs := b.String()
		out = append(out, SensorReading{Xname: xs, Sensor: "Fan", PhysicalContext: "Chassis", Unit: "RPM",
			Value: c.walk("fan/"+xs, 9000, 120, 4000, 14000), Timestamp: ts})
	}
	for _, cab := range c.cfg.Cabinets {
		xs := fmt.Sprintf("x%d", cab)
		out = append(out, SensorReading{Xname: xs, Sensor: "Humidity", PhysicalContext: "Cabinet", Unit: "%",
			Value: c.walk("hum/"+xs, 42, 0.4, 10, 90), Timestamp: ts})
	}
	return out
}
