// Command experiments regenerates the paper's figures and quantitative
// claims. Run a single experiment or all of them:
//
//	experiments -run fig5
//	experiments -run all -seconds 2 -out artifacts.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"shastamon/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "experiment to run: fig2..fig9, c1..c4, c7, latency, latency_json, earlywarn, earlywarn_json, or all")
	seconds := flag.Float64("seconds", 1.0, "duration of the timed throughput experiments")
	out := flag.String("out", "", "also write output to this file")
	flag.Parse()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}
	r := experiments.Runner{QuickSeconds: *seconds}
	if err := r.Run(*run, w); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
