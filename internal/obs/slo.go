package obs

import (
	"encoding/json"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/promtext"
)

// SLOConfig describes the detection-latency objective the pipeline is
// held to: at least Objective of events per rule must be detected (origin
// to first successful delivery) within Target.
type SLOConfig struct {
	Target    time.Duration `json:"target"`    // latency objective per event
	Objective float64       `json:"objective"` // fraction of events that must meet Target (0..1)
}

// DefaultSLO is the out-of-the-box objective: 95% of events detected
// within 90 seconds — generous headroom over the paper's one-minute rule
// hold times.
var DefaultSLO = SLOConfig{Target: 90 * time.Second, Objective: 0.95}

// withDefaults fills zero fields from DefaultSLO.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.Target <= 0 {
		c.Target = DefaultSLO.Target
	}
	if c.Objective <= 0 || c.Objective > 1 {
		c.Objective = DefaultSLO.Objective
	}
	return c
}

// sloSampleCap bounds the per-rule latency reservoir the percentile
// report is computed from; only the most recent observations are kept.
const sloSampleCap = 512

type sloRule struct {
	good, breached int64
	samples        []float64 // ring of recent latencies, seconds
	next           int       // ring write cursor once full
	max            float64
}

// SLO tracks detection latencies per alert rule against one objective and
// exposes the error-budget burn rate as gauges on a Registry. The burn
// rate is breach-fraction divided by allowed breach fraction (1 −
// objective): 1.0 means the budget is being consumed exactly as fast as
// it accrues; >1 means it is burning down.
type SLO struct {
	cfg   SLOConfig
	mu    sync.Mutex
	rules map[string]*sloRule
}

// NewSLO returns an SLO tracker and registers its gauges on reg (which
// may be nil): shastamon_slo_target_seconds, shastamon_slo_objective_ratio,
// and per-rule shastamon_slo_events_total{rule,outcome} plus
// shastamon_slo_burn_rate{rule}.
func NewSLO(reg *Registry, cfg SLOConfig) *SLO {
	s := &SLO{cfg: cfg.withDefaults(), rules: map[string]*sloRule{}}
	if reg != nil {
		reg.GaugeFunc(Namespace+"slo_target_seconds",
			"Detection-latency objective per event, in seconds.",
			func() float64 { return s.cfg.Target.Seconds() })
		reg.GaugeFunc(Namespace+"slo_objective_ratio",
			"Fraction of events per rule that must be detected within the target.",
			func() float64 { return s.cfg.Objective })
		reg.Collect(s.collect)
	}
	return s
}

// Config returns the (defaulted) objective in force.
func (s *SLO) Config() SLOConfig {
	if s == nil {
		return DefaultSLO
	}
	return s.cfg
}

// Observe records one end-to-end detection latency for the rule.
func (s *SLO) Observe(rule string, latency time.Duration) {
	if s == nil || rule == "" {
		return
	}
	if latency < 0 {
		latency = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.rules[rule]
	if r == nil {
		r = &sloRule{}
		s.rules[rule] = r
	}
	if latency <= s.cfg.Target {
		r.good++
	} else {
		r.breached++
	}
	sec := latency.Seconds()
	if len(r.samples) < sloSampleCap {
		r.samples = append(r.samples, sec)
	} else {
		r.samples[r.next] = sec
		r.next = (r.next + 1) % sloSampleCap
	}
	if sec > r.max {
		r.max = sec
	}
}

// RuleSLO is the per-rule report entry.
type RuleSLO struct {
	Rule     string  `json:"rule"`
	Events   int64   `json:"events"`
	Good     int64   `json:"good"`
	Breached int64   `json:"breached"`
	BurnRate float64 `json:"burn_rate"`
	P50      float64 `json:"p50_seconds"`
	P95      float64 `json:"p95_seconds"`
	Max      float64 `json:"max_seconds"`
}

// SLOReport is the full snapshot served at /debug/slo.
type SLOReport struct {
	TargetSeconds float64   `json:"target_seconds"`
	Objective     float64   `json:"objective"`
	Rules         []RuleSLO `json:"rules"`
}

// burnRate computes breach-fraction over allowed-fraction. With a 100%
// objective any breach is an immediate (capped) burn.
func (s *SLO) burnRate(r *sloRule) float64 {
	total := r.good + r.breached
	if total == 0 {
		return 0
	}
	breachFrac := float64(r.breached) / float64(total)
	allowed := 1 - s.cfg.Objective
	if allowed <= 0 {
		if r.breached > 0 {
			return math.MaxFloat64
		}
		return 0
	}
	return breachFrac / allowed
}

// sampleQuantile returns the exact q-quantile of the retained reservoir
// (nearest-rank), 0 when empty.
func sampleQuantile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// Report snapshots every tracked rule, sorted by rule name.
func (s *SLO) Report() SLOReport {
	if s == nil {
		return SLOReport{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := SLOReport{TargetSeconds: s.cfg.Target.Seconds(), Objective: s.cfg.Objective}
	for name, r := range s.rules {
		rep.Rules = append(rep.Rules, RuleSLO{
			Rule:     name,
			Events:   r.good + r.breached,
			Good:     r.good,
			Breached: r.breached,
			BurnRate: s.burnRate(r),
			P50:      sampleQuantile(r.samples, 0.50),
			P95:      sampleQuantile(r.samples, 0.95),
			Max:      r.max,
		})
	}
	sort.Slice(rep.Rules, func(i, j int) bool { return rep.Rules[i].Rule < rep.Rules[j].Rule })
	return rep
}

// collect renders the per-rule families for the registry.
func (s *SLO) collect() []promtext.Family {
	s.mu.Lock()
	names := make([]string, 0, len(s.rules))
	for name := range s.rules {
		names = append(names, name)
	}
	sort.Strings(names)
	events := promtext.Family{Name: Namespace + "slo_events_total", Type: "counter",
		Help: "Detection-latency SLO events per rule, split by outcome (good|breached)."}
	burn := promtext.Family{Name: Namespace + "slo_burn_rate", Type: "gauge",
		Help: "Detection-latency error-budget burn rate per rule (breach fraction over allowed fraction; >1 burns the budget down)."}
	for _, name := range names {
		r := s.rules[name]
		events.Metrics = append(events.Metrics,
			promtext.Metric{Name: events.Name, Value: float64(r.good),
				Labels: labels.FromStrings("outcome", "good", "rule", name)},
			promtext.Metric{Name: events.Name, Value: float64(r.breached),
				Labels: labels.FromStrings("outcome", "breached", "rule", name)})
		b := s.burnRate(r)
		if b == math.MaxFloat64 {
			b = math.Inf(+1)
		}
		burn.Metrics = append(burn.Metrics,
			promtext.Metric{Name: burn.Name, Value: b,
				Labels: labels.FromStrings("rule", name)})
	}
	s.mu.Unlock()
	return []promtext.Family{events, burn}
}

// Handler serves the SLO report as JSON — mount at /debug/slo. A nil SLO
// serves 404 so the endpoint can be mounted unconditionally.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.Error(w, "slo tracking disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Report())
	})
}
