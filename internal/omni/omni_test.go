package omni

import (
	"testing"
	"time"

	"shastamon/internal/eventsearch"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
)

func TestIngestAndQueryBothStores(t *testing.T) {
	w := New(Config{})
	ls := labels.FromStrings("data_type", "syslog", "hostname", "nid1")
	if err := w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: 1e9, Line: "hello"}}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.IngestMetric("temp", labels.FromStrings("xname", "x1"), 1000, 42); err != nil {
		t.Fatal(err)
	}
	streams, err := w.LogQL.QueryLogs(`{hostname="nid1"}`, 0, 2e9)
	if err != nil || len(streams) != 1 {
		t.Fatalf("%v %v", streams, err)
	}
	vec, err := w.PromQL.Query(`temp`, 2000)
	if err != nil || len(vec) != 1 || vec[0].V != 42 {
		t.Fatalf("%v %v", vec, err)
	}
	st := w.Stats()
	if st.LogMessages != 1 || st.LogBytes != 5 || st.Samples != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.LogStore.Streams != 1 || st.MetricStore.Series != 1 {
		t.Fatalf("store stats: %+v", st)
	}
}

func TestRetentionEnforcement(t *testing.T) {
	w := New(Config{Retention: time.Hour, LokiLimits: loki.Limits{
		MaxLabelNamesPerStream: 5, MaxLineSize: 1024,
	}})
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	ls := labels.FromStrings("a", "b")
	_ = w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: base.UnixNano(), Line: "old"}}}})
	_ = w.IngestMetric("m", nil, base.UnixMilli(), 1)
	_ = w.IngestMetric("m", nil, base.Add(3*time.Hour).UnixMilli(), 2)

	chunks, samples := w.EnforceRetention(base.Add(3 * time.Hour))
	if chunks != 1 || samples != 1 {
		t.Fatalf("dropped %d chunks %d samples", chunks, samples)
	}
	// Zero-retention warehouse never drops.
	w2 := New(Config{})
	_ = w2.IngestMetric("m", nil, 0, 1)
	if c, s := w2.EnforceRetention(time.Now()); c != 0 || s != 0 {
		t.Fatalf("unexpected drop: %d %d", c, s)
	}
}

func TestRateWindow(t *testing.T) {
	w := New(Config{})
	base := time.Unix(1000, 0)
	w.RateWindowReset(base)
	for i := 0; i < 500; i++ {
		_ = w.IngestMetric("m", labels.FromStrings("i", "x"), int64(i), 1)
	}
	rate := w.RateWindow(base.Add(2 * time.Second))
	if rate != 250 {
		t.Fatalf("rate = %v", rate)
	}
	if w.RateWindow(base) != 0 {
		t.Fatal("zero-width window should report 0")
	}
}

func TestEventIndexingOptIn(t *testing.T) {
	w := New(Config{IndexEvents: true, Retention: time.Hour})
	ls := labels.FromStrings("data_type", "redfish_event", "Context", "x1203c1b0")
	base := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := w.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{
		{Timestamp: base.UnixNano(), Line: "CabinetLeakDetected in Front zone"},
	}}}); err != nil {
		t.Fatal(err)
	}
	hits := w.Events.Search(eventsearch.Query{Terms: []string{"cabinetleakdetected"}})
	if len(hits) != 1 || hits[0].Fields["Context"] != "x1203c1b0" {
		t.Fatalf("%+v", hits)
	}
	// Retention clears the index too.
	w.EnforceRetention(base.Add(3 * time.Hour))
	if got := w.Events.Stats().Docs; got != 0 {
		t.Fatalf("docs after retention: %d", got)
	}
	// Default config does not index.
	w2 := New(Config{})
	_ = w2.IngestLogs([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: 1, Line: "x"}}}})
	if w2.Events.Stats().Docs != 0 {
		t.Fatal("indexed without opt-in")
	}
}

func TestDownsamplingDuringRetention(t *testing.T) {
	w := New(Config{
		Retention:            24 * time.Hour,
		DownsampleAfter:      time.Hour,
		DownsampleResolution: 10 * time.Minute,
	})
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	// One sample per minute for 2 hours.
	for i := 0; i < 120; i++ {
		_ = w.IngestMetric("m", labels.FromStrings("x", "1"), base.Add(time.Duration(i)*time.Minute).UnixMilli(), float64(i))
	}
	now := base.Add(2 * time.Hour)
	_, folded := w.EnforceRetention(now)
	if folded == 0 {
		t.Fatal("nothing downsampled")
	}
	// The first hour is now 10-minute windows (6 samples); the second hour
	// keeps its 60 raw samples.
	data := w.Metrics.Select(nil, 0, now.UnixMilli())
	if len(data) != 1 {
		t.Fatalf("%+v", data)
	}
	if got := len(data[0].Samples); got != 6+60 {
		t.Fatalf("samples = %d", got)
	}
}
