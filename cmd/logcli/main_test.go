package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"shastamon/internal/logql"
	"shastamon/internal/loki"
)

func TestDemoStoreServesPaperQueries(t *testing.T) {
	store, err := demoStore()
	if err != nil {
		t.Fatal(err)
	}
	eng := logql.NewEngine(store)
	streams, err := eng.QueryLogs(`{data_type="redfish_event"} |= "CabinetLeakDetected" | json`, 0, 1<<62)
	if err != nil || len(streams) != 1 {
		t.Fatalf("%v %v", streams, err)
	}
	if streams[0].Labels.Get("severity") != "Warning" {
		t.Fatalf("%v", streams[0].Labels)
	}
	at := time.Date(2022, 3, 3, 2, 0, 0, 0, time.UTC).UnixNano()
	vec, err := eng.QueryInstant(
		`sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" | pattern "[<sev>] problem:<problem>, xname:<xname>, state:<state>" [24h])) by (xname)`,
		at)
	if err != nil || len(vec) != 1 || vec[0].Labels.Get("xname") != "x1002c1r7b0" {
		t.Fatalf("%v %v", vec, err)
	}
}

func TestLoadDump(t *testing.T) {
	dump := `[
	  {"stream": {"app": "x", "cluster": "c"},
	   "values": [["1000000000", "first line"], ["2000000000", "second line"]]}
	]`
	path := filepath.Join(t.TempDir(), "dump.json")
	if err := os.WriteFile(path, []byte(dump), 0o600); err != nil {
		t.Fatal(err)
	}
	store := loki.NewStore(loki.DefaultLimits())
	if err := loadDump(store, path); err != nil {
		t.Fatal(err)
	}
	got, err := store.Select(nil, 0, 1<<62)
	if err != nil || len(got) != 1 || len(got[0].Entries) != 2 {
		t.Fatalf("%v %v", got, err)
	}
	if got[0].Entries[1].Line != "second line" || got[0].Entries[1].Timestamp != 2000000000 {
		t.Fatalf("%+v", got[0].Entries)
	}
}

func TestLoadDumpErrors(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	if err := loadDump(store, "/nonexistent.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o600)
	if err := loadDump(store, bad); err == nil {
		t.Fatal("bad json accepted")
	}
	badTS := filepath.Join(dir, "badts.json")
	_ = os.WriteFile(badTS, []byte(`[{"stream":{"a":"b"},"values":[["zzz","line"]]}]`), 0o600)
	if err := loadDump(store, badTS); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}
