package promql

import (
	"context"
	"time"

	"shastamon/internal/frontend"
)

// SetFrontend routes range queries through a query frontend (splitting,
// results caching, admission control). PromQL sub-queries are never
// shard-fanned: the TSDB's series striping is an implementation detail
// its selector layer does not expose. Call during setup, not
// concurrently with queries.
func (e *Engine) SetFrontend(f *frontend.Frontend) { e.frontend = f }

// Frontend returns the attached query frontend, nil when unset.
func (e *Engine) Frontend() *frontend.Frontend { return e.frontend }

// maxLookbackMS is the furthest any sub-evaluation of expr reads before
// its step timestamp, in milliseconds: range windows for range
// functions, the staleness lookback for instant selectors.
func (e *Engine) maxLookbackMS(expr Expr) int64 {
	switch ex := expr.(type) {
	case *SelectorExpr, *AbsentExpr:
		return e.lookback.Milliseconds()
	case *RangeFnExpr:
		return ex.Range.Milliseconds()
	case *AggExpr:
		return e.maxLookbackMS(ex.Inner)
	case *BinExpr:
		l, r := e.maxLookbackMS(ex.LHS), e.maxLookbackMS(ex.RHS)
		if r > l {
			return r
		}
		return l
	}
	return 0
}

func toFrontendMatrix(m Matrix) frontend.Matrix {
	out := make(frontend.Matrix, len(m))
	for i, s := range m {
		pts := make([]frontend.Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = frontend.Point{T: p.T, V: p.V}
		}
		out[i] = frontend.Series{Labels: s.Labels, Points: pts}
	}
	return out
}

// fromFrontendMatrix copies the frontend result into engine types; the
// input may alias cached storage shared with concurrent queries.
func fromFrontendMatrix(fm frontend.Matrix) Matrix {
	out := make(Matrix, 0, len(fm))
	for _, s := range fm {
		pts := make([]Point, len(s.Points))
		for j, p := range s.Points {
			pts[j] = Point{T: p.T, V: p.V}
		}
		out = append(out, Series{Labels: s.Labels, Points: pts})
	}
	return out
}

// rangeViaFrontend hands the range query to the frontend, which calls
// back into rangeDirect for the splits the results cache cannot serve.
func (e *Engine) rangeViaFrontend(ctx context.Context, expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	fm, err := e.frontend.QueryRange(ctx, frontend.Request{
		Engine:   "promql",
		Query:    expr.String(),
		Start:    start,
		End:      end,
		Step:     step.Milliseconds(),
		Unit:     time.Millisecond,
		Lookback: e.maxLookbackMS(expr),
		Eval: func(ctx context.Context, s, en int64, _ int) (frontend.Matrix, error) {
			m, err := e.rangeDirect(ctx, expr, s, en, step)
			if err != nil {
				return nil, err
			}
			return toFrontendMatrix(m), nil
		},
	})
	if err != nil {
		return nil, err
	}
	return fromFrontendMatrix(fm), nil
}
