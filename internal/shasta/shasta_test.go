package shasta

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"shastamon/internal/redfish"
)

func TestParseXnameKinds(t *testing.T) {
	cases := map[string]ComponentKind{
		"x1000":         KindCabinet,
		"x1000c3":       KindChassis,
		"x1203c1b0":     KindChassisBMC, // the paper's leak Context
		"x1000c0s4":     KindBlade,
		"x1000c0s4b0":   KindNodeBMC,
		"x1102c4s0b0":   KindNodeBMC, // Fig. 3's Context
		"x1000c0s4b0n1": KindNode,
		"x1002c1r7b0":   KindSwitchBMC, // Fig. 7's switch
	}
	for in, want := range cases {
		x, err := ParseXname(in)
		if err != nil {
			t.Errorf("%s: %v", in, err)
			continue
		}
		if x.Kind != want {
			t.Errorf("%s: kind %s, want %s", in, x.Kind, want)
		}
		if x.String() != in {
			t.Errorf("%s: round-trip %q", in, x.String())
		}
	}
}

func TestParseXnameErrors(t *testing.T) {
	for _, in := range []string{"", "x", "y1000", "x1000c", "x1000c0r7", "x1000c0r7b0n0", "x1000c0s0b0n0n0", "nid001234"} {
		if _, err := ParseXname(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestXnameParent(t *testing.T) {
	node, _ := ParseXname("x1000c2s4b0n1")
	chain := []string{"x1000c2s4b0", "x1000c2s4", "x1000c2", "x1000"}
	x := node
	for _, want := range chain {
		x = x.Parent()
		if x.String() != want {
			t.Fatalf("parent chain broke: got %s want %s", x, want)
		}
	}
	sw, _ := ParseXname("x1002c1r7b0")
	if sw.Parent().String() != "x1002c1" {
		t.Fatalf("switch parent: %s", sw.Parent())
	}
}

func testCluster(t *testing.T) *Cluster {
	t.Helper()
	cfg := Config{
		Name: "perlmutter", Cabinets: []int{1002, 1203},
		ChassisPerCabinet: 2, BladesPerChassis: 2, NodesPerBMC: 2, SwitchesPerChassis: 8, Seed: 42,
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterTopology(t *testing.T) {
	c := testCluster(t)
	if got := len(c.Nodes()); got != 2*2*2*2 {
		t.Fatalf("nodes = %d", got)
	}
	if got := len(c.Switches()); got != 2*2*8 {
		t.Fatalf("switches = %d", got)
	}
	if got := len(c.ChassisBMCs()); got != 4 {
		t.Fatalf("chassis BMCs = %d", got)
	}
	for _, sw := range c.Switches() {
		if c.SwitchStates()[sw.String()] != SwitchActive {
			t.Fatalf("switch %s not active", sw)
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewCluster(Config{Name: "x", Cabinets: []int{1}, ChassisPerCabinet: 0}); err == nil {
		t.Fatal("zero chassis accepted")
	}
}

func TestInjectLeakQueuesPaperEvent(t *testing.T) {
	c := testCluster(t)
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := c.InjectLeak("x1203c1b0", "A", "Front", ts); err != nil {
		t.Fatal(err)
	}
	if c.ActiveLeaks() != 1 {
		t.Fatal("leak not recorded")
	}
	recs := c.DrainEvents()
	if len(recs) != 1 || recs[0].Context != "x1203c1b0" {
		t.Fatalf("%+v", recs)
	}
	ev := recs[0].Events[0]
	if ev.MessageID != redfish.MsgCabinetLeakDetected || ev.Severity != redfish.SeverityWarning {
		t.Fatalf("%+v", ev)
	}
	if !strings.Contains(ev.Message, "Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak.") {
		t.Fatalf("message: %q", ev.Message)
	}
	if ev.EventTimestamp != "2022-03-03T01:47:57Z" {
		t.Fatalf("ts: %q", ev.EventTimestamp)
	}
	// Drain is destructive.
	if got := c.DrainEvents(); len(got) != 0 {
		t.Fatalf("redrain: %+v", got)
	}
	c.ClearLeak("x1203c1b0", "Front")
	if c.ActiveLeaks() != 0 {
		t.Fatal("leak not cleared")
	}
}

func TestInjectLeakValidation(t *testing.T) {
	c := testCluster(t)
	if err := c.InjectLeak("x1203c1s0b0n0", "A", "Front", time.Now()); err == nil {
		t.Fatal("node xname accepted for leak")
	}
	if err := c.InjectLeak("x9999c0b0", "A", "Front", time.Now()); err == nil {
		t.Fatal("unknown BMC accepted")
	}
	if err := c.InjectLeak("garbage", "A", "Front", time.Now()); err == nil {
		t.Fatal("garbage xname accepted")
	}
}

func TestSwitchStateChange(t *testing.T) {
	c := testCluster(t)
	if err := c.SetSwitchState("x1002c1r7b0", SwitchUnknown); err != nil {
		t.Fatal(err)
	}
	if got := c.SwitchStates()["x1002c1r7b0"]; got != SwitchUnknown {
		t.Fatalf("state %s", got)
	}
	if err := c.SetSwitchState("x1002c1r9b9", SwitchOffline); err == nil {
		t.Fatal("unknown switch accepted")
	}
}

func TestPowerOffEvent(t *testing.T) {
	c := testCluster(t)
	ts := time.Unix(1646272077, 0)
	if err := c.PowerOff("x1002c1", ts); err != nil {
		t.Fatal(err)
	}
	recs := c.DrainEvents()
	if len(recs) != 1 || recs[0].Events[0].Severity != redfish.SeverityCritical {
		t.Fatalf("%+v", recs)
	}
}

func TestSensorReadings(t *testing.T) {
	c := testCluster(t)
	ts := time.Unix(0, 0)
	rs := c.SensorReadings(ts)
	// 16 nodes * 2 + 4 chassis + 2 cabinets
	if len(rs) != 16*2+4+2 {
		t.Fatalf("readings = %d", len(rs))
	}
	kinds := map[string]int{}
	for _, r := range rs {
		kinds[r.Sensor]++
		if r.Timestamp != ts {
			t.Fatal("timestamp not propagated")
		}
		switch r.Sensor {
		case "Temperature":
			if r.Value < 25 || r.Value > 95 {
				t.Fatalf("temp out of range: %v", r.Value)
			}
		case "Power":
			if r.Value < 180 || r.Value > 950 {
				t.Fatalf("power out of range: %v", r.Value)
			}
		}
	}
	if kinds["Temperature"] != 16 || kinds["Power"] != 16 || kinds["Fan"] != 4 || kinds["Humidity"] != 2 {
		t.Fatalf("kinds: %v", kinds)
	}
}

func TestInjectSensorDrift(t *testing.T) {
	c := testCluster(t)
	if err := c.InjectSensorDrift("Pressure", "x1203", 1); err == nil {
		t.Fatal("unknown sensor accepted")
	}
	if err := c.InjectSensorDrift("Humidity", "x1203", 1.5); err != nil {
		t.Fatal(err)
	}
	read := func(xname string) float64 {
		for _, r := range c.SensorReadings(time.Unix(0, 0)) {
			if r.Sensor == "Humidity" && r.Xname == xname {
				return r.Value
			}
		}
		t.Fatalf("no humidity reading for %s", xname)
		return 0
	}
	first := read("x1203")
	var drifted, steady float64
	for i := 0; i < 10; i++ {
		drifted, steady = read("x1203"), read("x1002")
	}
	if drifted-first < 10*1.5-0.4*11 {
		t.Fatalf("drift not applied: %.1f -> %.1f", first, drifted)
	}
	if steady > 50 {
		t.Fatalf("drift leaked to another cabinet: %.1f", steady)
	}
	c.ClearSensorDrift("Humidity", "x1203")
	before := read("x1203")
	after := before
	for i := 0; i < 5; i++ {
		after = read("x1203")
	}
	if after-before > 0.4*6 {
		t.Fatalf("drift still applied after clear: %.1f -> %.1f", before, after)
	}
}

func TestSensorReadingsDeterministic(t *testing.T) {
	mk := func() []SensorReading {
		c := testCluster(t)
		var out []SensorReading
		for i := 0; i < 5; i++ {
			out = append(out, c.SensorReadings(time.Unix(int64(i), 0))...)
		}
		return out
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRedfishPayloadRoundTrip(t *testing.T) {
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	p := redfish.NewPayload(redfish.Record{
		Context: "x1203c1b0",
		Events:  []redfish.Event{redfish.LeakEvent(ts, "A", "Front")},
	})
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// The envelope must match Fig. 2's shape.
	for _, frag := range []string{`"metrics"`, `"messages"`, `"Context":"x1203c1b0"`, `"MessageId":"CrayAlerts.1.0.CabinetLeakDetected"`, `"@odata.id":"/redfish/v1/Chassis/Enclosure"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("payload missing %s: %s", frag, data)
		}
	}
	back, err := redfish.ParsePayload(data)
	if err != nil {
		t.Fatal(err)
	}
	ev := back.Metrics.Messages[0].Events[0]
	if got, err := ev.Timestamp(); err != nil || !got.Equal(ts) {
		t.Fatalf("ts %v %v", got, err)
	}
}

// Property: any structurally valid xname round-trips through parse/format.
func TestPropertyXnameRoundTrip(t *testing.T) {
	f := func(cab, ch, slot, bmc, node uint8, kind uint8) bool {
		x := Xname{
			Cabinet: int(cab), Chassis: int(ch) % 8, Slot: int(slot) % 8,
			BMC: int(bmc) % 2, Node: int(node) % 4,
		}
		switch kind % 7 {
		case 0:
			x.Kind = KindCabinet
		case 1:
			x.Kind = KindChassis
		case 2:
			x.Kind = KindChassisBMC
		case 3:
			x.Kind = KindBlade
		case 4:
			x.Kind = KindNodeBMC
		case 5:
			x.Kind = KindNode
		case 6:
			x.Kind = KindSwitchBMC
		}
		parsed, err := ParseXname(x.String())
		if err != nil {
			return false
		}
		return parsed.String() == x.String() && parsed.Kind == x.Kind
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSensorReadings(b *testing.B) {
	c, err := NewCluster(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	ts := time.Unix(0, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs := c.SensorReadings(ts)
		if len(rs) == 0 {
			b.Fatal("no readings")
		}
	}
}
