package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

func TestTraceLifecycle(t *testing.T) {
	tr := NewTracer(8)
	now := time.Unix(1000, 0)
	id := tr.Start("x1203c1b0", now, "CabinetLeakDetected")
	if id == "" {
		t.Fatal("empty trace ID")
	}
	tr.Stage(id, "kafka.produce", now.Add(time.Millisecond), "topic=events")
	tr.StageByKey("x1203c1b0", "ruler.fire", now.Add(time.Second), "PerlmutterCabinetLeak")

	got, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace not found")
	}
	if !got.HasStages("origin", "kafka.produce", "ruler.fire") {
		t.Fatalf("stages = %v", got.StageNames())
	}
	if got.Key != "x1203c1b0" {
		t.Fatalf("key = %q", got.Key)
	}
	if tr.IDByKey("x1203c1b0") != id {
		t.Fatal("key lookup mismatch")
	}
	// A later trace for the same key takes over the key index.
	id2 := tr.Start("x1203c1b0", now.Add(time.Minute), "second event")
	if tr.IDByKey("x1203c1b0") != id2 {
		t.Fatal("key must point at newest trace")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	ids := make([]string, 6)
	for i := range ids {
		ids[i] = tr.Start(fmt.Sprintf("x%d", i), time.Unix(int64(i), 0), "")
	}
	if tr.Len() != 4 {
		t.Fatalf("len = %d, want 4", tr.Len())
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace must be evicted")
	}
	if _, ok := tr.Get(ids[5]); !ok {
		t.Fatal("newest trace must be retained")
	}
	if tr.IDByKey("x0") != "" {
		t.Fatal("evicted key must be forgotten")
	}
	// Staging an evicted ID must be a silent no-op.
	tr.Stage(ids[0], "late", time.Unix(99, 0), "")
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if id := tr.Start("k", time.Now(), ""); id != "" {
		t.Fatal("nil tracer minted an ID")
	}
	tr.Stage("x", "s", time.Now(), "")
	tr.StageByKey("k", "s", time.Now(), "")
	if tr.Len() != 0 || tr.IDs() != nil || tr.IDByKey("k") != "" {
		t.Fatal("nil tracer must be inert")
	}
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/", nil))
	if rec.Code != 404 {
		t.Fatalf("nil tracer handler code = %d", rec.Code)
	}
}

func TestTraceHandler(t *testing.T) {
	tr := NewTracer(8)
	now := time.Unix(2000, 0).UTC()
	id := tr.Start("x9", now, "origin note")
	tr.Stage(id, "loki.ingest", now.Add(time.Millisecond), "")

	// Listing.
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/", nil))
	var list []traceSummary
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id || list[0].Stages != 2 {
		t.Fatalf("list = %+v", list)
	}

	// Single trace by ID.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	var got Trace
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != id || len(got.Stages) != 2 || got.Stages[1].Stage != "loki.ingest" {
		t.Fatalf("trace = %+v", got)
	}

	// Unknown ID.
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown trace code = %d", rec.Code)
	}
}

func TestContextCarriage(t *testing.T) {
	ctx := context.Background()
	if TraceIDFrom(ctx) != "" {
		t.Fatal("empty context must carry no trace")
	}
	ctx = WithTraceID(ctx, "abc-123")
	if TraceIDFrom(ctx) != "abc-123" {
		t.Fatal("trace ID lost in context")
	}
	if WithTraceID(context.Background(), "") != context.Background() {
		t.Fatal("empty ID must not allocate a context")
	}
}
