package vmagent

import (
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the agent's self-monitoring registry, derived at
// gather time from Stats().
func (a *Agent) Metrics() *obs.Registry {
	a.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := a.Stats()
			return []promtext.Family{
				obs.Fam("counter", obs.Namespace+"vmagent_scrapes_total",
					"Scrape attempts across all jobs and targets.", float64(st.Scrapes)),
				obs.Fam("counter", obs.Namespace+"vmagent_scrape_failures_total",
					"Scrapes that failed (target down or unparsable).", float64(st.Failures)),
				obs.Fam("counter", obs.Namespace+"vmagent_samples_scraped_total",
					"Samples written to the TSDB from scrapes.", float64(st.Samples)),
			}
		})
		a.obsReg = reg
	})
	return a.obsReg
}
