// Single pane of glass (the paper's stated goal: "visualization of the
// system health metrics and logs in a single pane of glass"): drive both
// case-study faults plus syslog noise through the pipeline, render the
// unified dashboard in the terminal, and export it as Grafana dashboard
// JSON ready for import into a real Grafana.
//
//	go run ./examples/singlepane
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/grafana"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
	"shastamon/internal/syslogd"
)

func main() {
	rules := []ruler.Rule{
		{
			Name:   "PerlmutterCabinetLeak",
			Expr:   `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context) > 0`,
			Labels: map[string]string{"severity": "critical"},
		},
		{
			Name:   "SwitchOffline",
			Expr:   `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" [5m])) > 0`,
			Labels: map[string]string{"severity": "critical"},
		},
	}
	p, err := core.New(core.Options{LogRules: rules})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()

	// Drive one busy operational hour with both faults.
	t0 := time.Now().UTC().Truncate(time.Minute).Add(-30 * time.Minute)
	gen := syslogd.NewGenerator(99, "nid000001", "nid000002", "nid000003")
	if err := p.Tick(t0); err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 30; i++ {
		ts := t0.Add(time.Duration(i) * time.Minute)
		for j := 0; j < 5; j++ {
			if err := p.SyslogAggregator.Ingest(gen.Next(ts)); err != nil {
				log.Fatal(err)
			}
		}
		switch i {
		case 10:
			if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", ts); err != nil {
				log.Fatal(err)
			}
		case 20:
			if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
				log.Fatal(err)
			}
		case 25:
			// An operator query mid-hour: its statistics are scraped on
			// the next tick, giving the query panels a second sample.
			if _, err := p.Warehouse.QueryLogs(`{data_type="syslog"}`, t0.UnixNano(), ts.UnixNano()); err != nil {
				log.Fatal(err)
			}
		}
		if err := p.Tick(ts); err != nil {
			log.Fatal(err)
		}
	}

	end := t0.Add(31 * time.Minute)

	// Exercise the tracked query path so the "Self: queries" panels have
	// statistics to chart (an operator's ad-hoc queries would do this).
	if _, err := p.Warehouse.QueryLogs(`{data_type="syslog"}`, t0.UnixNano(), end.UnixNano()); err != nil {
		log.Fatal(err)
	}
	if _, err := p.Warehouse.QueryMetrics(`sum(up)`, end.UnixMilli()); err != nil {
		log.Fatal(err)
	}
	if err := p.Tick(end); err != nil { // scrape the query metrics into the TSDB
		log.Fatal(err)
	}

	out, err := p.RenderSinglePane(t0, end, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)

	fmt.Printf("\nalerts delivered: %d slack message(s), %d servicenow incident(s)\n",
		len(p.Slack.Messages()), len(p.ServiceNow.Incidents()))

	// Export the dashboard model for a real Grafana.
	data, err := grafana.ExportJSON(p.SinglePane())
	if err != nil {
		log.Fatal(err)
	}
	path := "singlepane-dashboard.json"
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Grafana dashboard JSON written to %s (%d bytes)\n", path, len(data))
}
