package loki

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"syscall"
	"testing"
	"time"

	"shastamon/internal/chaos"
	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
	"shastamon/internal/wal"
)

// smallChunks forces frequent block cuts and chunk seals so recovery
// exercises sealed-chunk spill, not just head replay.
var smallChunks = chunkenc.Options{BlockSize: 512, TargetSize: 4 * 1024}

func durableLimits() Limits {
	l := DefaultLimits()
	l.Shards = 2
	l.ChunkOptions = smallChunks
	return l
}

func testBatches(streams, entriesPer int) [][]PushStream {
	var batches [][]PushStream
	for e := 0; e < entriesPer; e++ {
		var batch []PushStream
		for s := 0; s < streams; s++ {
			batch = append(batch, PushStream{
				Labels: labels.FromStrings("job", "crash", "stream", fmt.Sprintf("s%02d", s)),
				Entries: []Entry{{
					Timestamp: int64(e) * 1e6,
					Line:      fmt.Sprintf("stream=%d entry=%04d payload=%s", s, e, "x123456789abcdef"),
				}},
			})
		}
		batches = append(batches, batch)
	}
	return batches
}

func pushAll(t *testing.T, s *Store, batches [][]PushStream) {
	t.Helper()
	for _, b := range batches {
		if err := s.Push(b); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
}

func selectAll(t *testing.T, s *Store) []SelectedStream {
	t.Helper()
	out, err := s.Select(nil, 0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func openDurable(t *testing.T, dir string, opt wal.StoreOptions) (*Store, RecoveryInfo) {
	t.Helper()
	s := NewStore(durableLimits())
	info, err := s.EnableDurability(dir, opt)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	return s, info
}

func assertStoresMatch(t *testing.T, got, want *Store) {
	t.Helper()
	gotSel, wantSel := selectAll(t, got), selectAll(t, want)
	if !reflect.DeepEqual(gotSel, wantSel) {
		t.Fatalf("recovered query results differ: got %d streams, want %d", len(gotSel), len(wantSel))
	}
	gs, ws := got.Stats(), want.Stats()
	gs.DiscardedOOO, ws.DiscardedOOO = 0, 0
	gs.DiscardedTooLong, ws.DiscardedTooLong = 0, 0
	if gs != ws {
		t.Fatalf("recovered stats differ:\n got %+v\nwant %+v", gs, ws)
	}
}

// TestDurableCrashRecovery is the core contract: a store abandoned
// mid-flight (no Shutdown — the crash case) recovers from WAL alone with
// query results and counters identical to an uninterrupted run.
func TestDurableCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(6, 120)

	s1, info := openDurable(t, dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}})
	if info.Checkpoint || info.Clean || info.Replayed != 0 {
		t.Fatalf("fresh dir recovery: %+v", info)
	}
	pushAll(t, s1, batches)
	// Crash: s1 is abandoned without Shutdown or Close.

	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)

	s2, info := openDurable(t, dir, wal.StoreOptions{})
	if info.Clean || info.Replayed == 0 {
		t.Fatalf("crash recovery: %+v", info)
	}
	assertStoresMatch(t, s2, ref)
}

// TestDurableCheckpointBoundsReplay: after a checkpoint, recovery
// restores sealed state from the snapshot and replays only post-cut
// records.
func TestDurableCheckpointBoundsReplay(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(4, 200)
	half := len(batches) / 2

	s1, _ := openDurable(t, dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}})
	pushAll(t, s1, batches[:half])
	if err := s1.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	st := s1.WALStats()
	if st.Checkpoints != 1 || st.Spilled == 0 {
		t.Fatalf("checkpoint stats: %+v", st)
	}
	pushAll(t, s1, batches[half:])
	preCut := st.Appends

	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)

	s2, info := openDurable(t, dir, wal.StoreOptions{})
	if !info.Checkpoint {
		t.Fatal("checkpoint not restored")
	}
	if info.Replayed == 0 || int64(info.Replayed) >= preCut+int64(half) {
		t.Fatalf("replay not bounded by checkpoint: replayed %d (pre-cut appends %d)", info.Replayed, preCut)
	}
	assertStoresMatch(t, s2, ref)
}

// TestDurableCleanShutdown: Shutdown leaves a CLEAN marker; the next open
// is a pure checkpoint load (no WAL replay) with identical results.
func TestDurableCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(4, 100)

	s1, _ := openDurable(t, dir, wal.StoreOptions{})
	pushAll(t, s1, batches)
	if err := s1.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err != nil {
		t.Fatalf("CLEAN marker missing: %v", err)
	}

	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)

	s2, info := openDurable(t, dir, wal.StoreOptions{})
	if !info.Clean || info.Replayed != 0 {
		t.Fatalf("clean restart replayed WAL: %+v", info)
	}
	assertStoresMatch(t, s2, ref)
	// The marker is consumed: a crash after this start must replay.
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); !os.IsNotExist(err) {
		t.Fatal("CLEAN marker survived recovery")
	}
}

// TestDurableCrashAfterCleanRestart is the generation-boundary
// regression: a clean shutdown's checkpoint records WAL cuts, and the
// clean restart wipes the WAL so the next log restarts numbering at
// segment 1. A crash after that must not let the stale cuts prune the
// new generation's segments as "covered" — every record ingested after
// the clean restart has to survive the second recovery.
func TestDurableCrashAfterCleanRestart(t *testing.T) {
	dir := t.TempDir()
	always := wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}}
	batches := testBatches(4, 100)
	half := len(batches) / 2

	s1, _ := openDurable(t, dir, always)
	pushAll(t, s1, batches[:half])
	if err := s1.Shutdown(); err != nil { // checkpoints, records cuts ≥ 2
		t.Fatalf("shutdown: %v", err)
	}

	s2, info := openDurable(t, dir, always)
	if !info.Clean {
		t.Fatalf("expected clean restart: %+v", info)
	}
	pushAll(t, s2, batches[half:])
	// Crash: second generation abandoned without Shutdown.

	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)

	s3, info := openDurable(t, dir, wal.StoreOptions{})
	if info.Clean || info.Replayed != half*4 {
		t.Fatalf("post-clean-restart crash recovery: %+v (want %d replayed)", info, half*4)
	}
	assertStoresMatch(t, s3, ref)
}

// TestDurableTornTail: garbage appended to a segment (the shape a crash
// mid-write leaves) is truncated away — data before the tear recovers
// and the corruption is counted.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	batches := testBatches(3, 60)

	s1, _ := openDurable(t, dir, wal.StoreOptions{Options: wal.Options{Fsync: wal.FsyncAlways}})
	pushAll(t, s1, batches)

	// Tear the tail of every shard's last segment.
	torn := 0
	for i := 0; i < 2; i++ {
		segs, err := filepath.Glob(filepath.Join(dir, walDirName, wal.ShardDirName(i), "*.wal"))
		if err != nil || len(segs) == 0 {
			t.Fatalf("no segments for shard %d: %v", i, err)
		}
		f, err := os.OpenFile(segs[len(segs)-1], os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		torn++
	}

	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)

	s2, _ := openDurable(t, dir, wal.StoreOptions{})
	if got := s2.WALStats().Corrupt; got < int64(torn) {
		t.Fatalf("corrupt records counted = %d, want >= %d", got, torn)
	}
	assertStoresMatch(t, s2, ref)
}

// TestDurableDiskFaultDegrades: persistent ENOSPC on the WAL trips the
// breaker; ingest keeps succeeding in-memory; when the disk heals and the
// open window elapses, a probe closes the breaker and appends resume.
func TestDurableDiskFaultDegrades(t *testing.T) {
	dir := t.TempDir()
	inj := chaos.New(7)

	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	opt := wal.StoreOptions{
		Options: wal.Options{
			Fsync:      wal.FsyncAlways,
			WrapWriter: inj.WriterWrapper("disk.write"),
			FaultHook:  inj.HookFor("disk.fault"),
			Now:        clock,
		},
		BreakerThreshold: 3,
		BreakerOpenFor:   10 * time.Second,
	}
	s, _ := openDurable(t, dir, opt)
	batches := testBatches(2, 100)
	pushAll(t, s, batches[:20])
	if st := s.WALStats(); st.Appends == 0 || st.Degraded != 0 {
		t.Fatalf("healthy phase: %+v", st)
	}

	// Disk full: every write fails with ENOSPC. Ingest must not error.
	inj.Set("disk.write", chaos.Fault{ErrProb: 1, Err: syscall.ENOSPC})
	pushAll(t, s, batches[20:60])
	st := s.WALStats()
	if st.Degraded != 1 || st.Errors == 0 || st.Skipped == 0 {
		t.Fatalf("degraded phase: %+v", st)
	}

	// Disk heals; once the open window elapses a half-open probe append
	// succeeds and closes the breaker.
	inj.ClearAll()
	advance(11 * time.Second)
	pushAll(t, s, batches[60:])
	st2 := s.WALStats()
	if st2.Degraded != 0 || st2.Appends <= st.Appends {
		t.Fatalf("healed phase: before %+v after %+v", st, st2)
	}

	// Every entry survived in memory regardless of the disk outage.
	ref := NewStore(durableLimits())
	pushAll(t, ref, batches)
	if got, want := selectAll(t, s), selectAll(t, ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("in-memory results diverged during degradation")
	}
}

// TestDurableRetentionRemovesSpills: retention that drops a sealed chunk
// leaves its spill file for the next checkpoint's GC (an in-flight query
// may still be faulting payloads from it), and that checkpoint removes it.
func TestDurableRetentionRemovesSpills(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurable(t, dir, wal.StoreOptions{})
	pushAll(t, s, testBatches(3, 150))
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	chunksDir := filepath.Join(dir, chunksDirName)
	before, _ := filepath.Glob(filepath.Join(chunksDir, "*.chk"))
	if len(before) == 0 {
		t.Fatal("checkpoint spilled no chunks")
	}
	if n := s.DeleteBefore(1 << 62); n == 0 {
		t.Fatal("retention dropped nothing")
	}
	// Removal is deferred: the files must survive retention itself so an
	// iterator that captured a chunk before DeleteBefore can still read.
	mid, _ := filepath.Glob(filepath.Join(chunksDir, "*.chk"))
	if len(mid) != len(before) {
		t.Fatalf("retention unlinked spill files inline: %d -> %d", len(before), len(mid))
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := filepath.Glob(filepath.Join(chunksDir, "*.chk"))
	if len(after) != 0 {
		t.Fatalf("%d spill files survived retention + checkpoint GC", len(after))
	}
}

// TestGCSpillsSkipsNewerThanMark: gcSpills must never delete a spill file
// whose sequence is above the checkpoint's pre-snapshot high-water mark —
// those were written by pushes racing the snapshot and are still live even
// though no checkpoint references them yet.
func TestGCSpillsSkipsNewerThanMark(t *testing.T) {
	dir := t.TempDir()
	write := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("c00000001.chk") // unreferenced, below mark: orphan, GC'd
	write("c00000002.chk") // referenced: kept
	write("c00000003.chk") // unreferenced, above mark: racing spill, kept
	write("foreign.txt")   // not a spill file: untouched
	gcSpills(dir, map[string]bool{"c00000002.chk": true}, 2)
	var left []string
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		left = append(left, e.Name())
	}
	want := []string{"c00000002.chk", "c00000003.chk", "foreign.txt"}
	if !reflect.DeepEqual(left, want) {
		t.Fatalf("after GC: %v, want %v", left, want)
	}
}

// TestDurableConcurrentPush exercises the WAL append path under -race:
// concurrent pushers to overlapping streams while a checkpointer runs.
func TestDurableConcurrentPush(t *testing.T) {
	dir := t.TempDir()
	s, _ := openDurable(t, dir, wal.StoreOptions{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for e := 0; e < 200; e++ {
				_ = s.Push([]PushStream{{
					Labels:  labels.FromStrings("job", "conc", "worker", fmt.Sprintf("w%d", g)),
					Entries: []Entry{{Timestamp: int64(e) * 1e6, Line: fmt.Sprintf("g=%d e=%d", g, e)}},
				}})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			if err := s.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}

	s2, _ := openDurable(t, dir, wal.StoreOptions{})
	if got := s2.Stats().Entries; got != 4*200 {
		t.Fatalf("recovered %d entries, want %d", got, 4*200)
	}
}
