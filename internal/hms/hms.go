// Package hms implements the hardware management service collector: the
// component that receives Redfish events and sensor telemetry from the
// cluster's controllers and "pushes data to Kafka, where Kafka stores data
// in different topics by categories".
package hms

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/redfish"
	"shastamon/internal/shasta"
)

// Kafka topics, mirroring the SMA topic taxonomy on real Shasta systems.
const (
	TopicEvents      = "cray-dmtf-resource-event"
	TopicTemperature = "cray-telemetry-temperature"
	TopicPower       = "cray-telemetry-power"
	TopicFan         = "cray-telemetry-fan-speed"
	TopicHumidity    = "cray-telemetry-humidity"
	TopicSyslog      = "cray-syslog"
	TopicFabric      = "cray-fabric-health"
)

// AllTopics lists every topic the collector produces to or that adjacent
// producers (rsyslog aggregator, fabric monitor) use.
var AllTopics = []string{
	TopicEvents, TopicTemperature, TopicPower, TopicFan, TopicHumidity, TopicSyslog, TopicFabric,
}

// SensorSample is the JSON record produced to telemetry topics.
type SensorSample struct {
	Context         string  `json:"Context"`
	PhysicalContext string  `json:"PhysicalContext"`
	Sensor          string  `json:"Sensor"`
	Value           float64 `json:"Value"`
	Unit            string  `json:"Unit"`
	Timestamp       string  `json:"Timestamp"`
}

// Collector polls the cluster and produces to Kafka.
type Collector struct {
	cluster *shasta.Cluster
	broker  *kafka.Broker
}

// NewCollector creates the topics (idempotently) and returns a collector.
func NewCollector(cluster *shasta.Cluster, broker *kafka.Broker, partitions int) (*Collector, error) {
	if partitions <= 0 {
		partitions = 4
	}
	for _, t := range AllTopics {
		if err := broker.CreateTopic(t, partitions); err != nil && !errors.Is(err, kafka.ErrTopicExists) {
			return nil, err
		}
	}
	return &Collector{cluster: cluster, broker: broker}, nil
}

func topicForSensor(sensor string) string {
	switch sensor {
	case "Temperature":
		return TopicTemperature
	case "Power":
		return TopicPower
	case "Fan":
		return TopicFan
	case "Humidity":
		return TopicHumidity
	}
	return TopicEvents
}

// CollectOnce drains pending Redfish events and takes one sensor sweep,
// producing everything to Kafka. It returns the number of event records
// and sensor samples produced.
func (c *Collector) CollectOnce(ts time.Time) (events, samples int, err error) {
	for _, rec := range c.cluster.DrainEvents() {
		payload := redfish.NewPayload(rec)
		data, err := payload.Marshal()
		if err != nil {
			return events, samples, fmt.Errorf("hms: marshal event: %w", err)
		}
		if _, _, err := c.broker.Produce(TopicEvents, []byte(rec.Context), data, ts); err != nil {
			return events, samples, err
		}
		events++
	}
	for _, r := range c.cluster.SensorReadings(ts) {
		sample := SensorSample{
			Context:         r.Xname,
			PhysicalContext: r.PhysicalContext,
			Sensor:          r.Sensor,
			Value:           r.Value,
			Unit:            r.Unit,
			Timestamp:       r.Timestamp.UTC().Format(time.RFC3339Nano),
		}
		data, err := json.Marshal(sample)
		if err != nil {
			return events, samples, fmt.Errorf("hms: marshal sample: %w", err)
		}
		if _, _, err := c.broker.Produce(topicForSensor(r.Sensor), []byte(r.Xname), data, ts); err != nil {
			return events, samples, err
		}
		samples++
	}
	return events, samples, nil
}

// Run collects on the interval until the context is cancelled.
func (c *Collector) Run(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-t.C:
			if _, _, err := c.CollectOnce(now); err != nil {
				return err
			}
		}
	}
}
