// Package vmalert implements the metric alerting component of the paper's
// pipeline: "vmalert, a component of the VictoriaMetrics cluster, queries
// the database continuously with predefined alerting rules created by
// NERSC. If the return value is true, vmalert sends an event to
// AlertManager." Rules are PromQL threshold expressions with a `for:`
// hold, identical in shape to the Loki Ruler's.
package vmalert

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/anomaly"
	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/promql"
	"shastamon/internal/ruler"
	"shastamon/internal/tsdb"
)

// Rule is one metric alerting rule.
type Rule struct {
	Name        string
	Expr        string // PromQL expression; any returned sample is "true"
	For         time.Duration
	Labels      map[string]string
	Annotations map[string]string
	// Anomaly turns the rule predictive: Expr selects the series to
	// watch, and instead of "any returned sample is true" each sample is
	// scored by a streaming detector — only anomalous samples enter the
	// usual For-hold/firing machinery, with the sample value replaced by
	// the signed score in sigmas (so `{{ $value }}` renders the
	// severity of the deviation, not the raw reading).
	Anomaly *anomaly.Config
}

// RecordingRule periodically evaluates an expression and writes the
// result back to the TSDB under a new metric name — vmalert's `record:`
// rules, used to precompute expensive aggregates for dashboards.
type RecordingRule struct {
	Record string // new metric name
	Expr   string
	Labels map[string]string // added to every recorded sample
}

type compiledRule struct {
	rule Rule
	expr promql.Expr
	det  *anomaly.Detector // non-nil for anomaly rules
}

type alertState struct {
	activeSince time.Time
	firing      bool
	labels      labels.Labels
	value       float64
}

type compiledRecording struct {
	rule RecordingRule
	expr promql.Expr
}

// VMAlert evaluates rules against a PromQL engine.
type VMAlert struct {
	engine   *promql.Engine
	notifier ruler.Notifier
	now      func() time.Time
	tracer   *obs.Tracer

	reg      *obs.Registry
	evalsCtr *obs.Counter
	evalDur  *obs.Histogram
	ruleDur  *obs.HistogramVec
	firedVec *obs.CounterVec

	// Anomaly self-metrics, registered only when an anomaly rule exists.
	anomEvals     *obs.CounterVec
	anomDetects   *obs.CounterVec
	anomScore     *obs.GaugeVec
	anomSeries    *obs.GaugeVec
	anomSaturated *obs.GaugeVec

	mu         sync.Mutex
	rules      []compiledRule
	state      []map[labels.Fingerprint]*alertState
	recordings []compiledRecording
	recordDB   *tsdb.DB
	evals      int64
}

// New compiles rules and returns a VMAlert.
func New(engine *promql.Engine, notifier ruler.Notifier, now func() time.Time, rules ...Rule) (*VMAlert, error) {
	if engine == nil || notifier == nil {
		return nil, fmt.Errorf("vmalert: engine and notifier required")
	}
	if now == nil {
		now = time.Now
	}
	v := &VMAlert{engine: engine, notifier: notifier, now: now, reg: obs.NewRegistry()}
	v.evalsCtr = v.reg.Counter(obs.Namespace+"vmalert_evaluations_total",
		"Rule evaluation rounds run.")
	v.evalDur = v.reg.Histogram(obs.Namespace+"vmalert_evaluation_duration_seconds",
		"Wall time of one full evaluation round.", obs.DefBuckets)
	v.firedVec = v.reg.CounterVec(obs.Namespace+"vmalert_alerts_fired_total",
		"Alerts transitioned to firing, by rule.", "rule")
	v.ruleDur = v.reg.HistogramVec(obs.Namespace+"rule_eval_seconds",
		"Wall time of one rule's evaluation, by rule.", obs.DefBuckets, "rule")
	seen := map[string]bool{}
	for _, rule := range rules {
		if rule.Name == "" {
			return nil, fmt.Errorf("vmalert: rule needs a name: %+v", rule)
		}
		if seen[rule.Name] {
			return nil, fmt.Errorf("vmalert: duplicate rule %q", rule.Name)
		}
		seen[rule.Name] = true
		expr, err := promql.Parse(rule.Expr)
		if err != nil {
			return nil, fmt.Errorf("vmalert: rule %q: %w", rule.Name, err)
		}
		cr := compiledRule{rule: rule, expr: expr}
		if rule.Anomaly != nil {
			det, err := anomaly.NewDetector(*rule.Anomaly)
			if err != nil {
				return nil, fmt.Errorf("vmalert: rule %q: %w", rule.Name, err)
			}
			cr.det = det
		}
		v.rules = append(v.rules, cr)
		v.state = append(v.state, map[labels.Fingerprint]*alertState{})
	}
	for _, cr := range v.rules {
		if cr.det != nil {
			v.registerAnomalyMetrics()
			break
		}
	}
	return v, nil
}

func (v *VMAlert) registerAnomalyMetrics() {
	v.anomEvals = v.reg.CounterVec(obs.Namespace+"anomaly_evaluations_total",
		"Samples scored by anomaly detectors, by rule.", "rule")
	v.anomDetects = v.reg.CounterVec(obs.Namespace+"anomaly_detections_total",
		"Samples judged anomalous, by rule.", "rule")
	v.anomScore = v.reg.GaugeVec(obs.Namespace+"anomaly_score",
		"Largest |score| (in sigmas) among warm samples in the last round, by rule.", "rule")
	v.anomSeries = v.reg.GaugeVec(obs.Namespace+"anomaly_series",
		"Series tracked by the detector, by rule.", "rule")
	v.anomSaturated = v.reg.GaugeVec(obs.Namespace+"anomaly_detector_saturated",
		"1 when detector state hit its memory bound and new series are dropped, by rule.", "rule")
}

// detect filters an instant vector through the rule's streaming
// detector: only anomalous samples survive, carrying the signed score
// (sigmas) as their value, and the detector self-metrics are refreshed.
func (v *VMAlert) detect(cr compiledRule, vec promql.Vector, now time.Time) promql.Vector {
	out := make(promql.Vector, 0, len(vec))
	var maxAbs float64
	for _, sample := range vec {
		sc := cr.det.Observe(uint64(sample.Labels.Fingerprint()), now, sample.V)
		if a := math.Abs(sc.Score); sc.Warm && a > maxAbs {
			maxAbs = a
		}
		if !sc.Anomalous {
			continue
		}
		sample.V = sc.Score
		out = append(out, sample)
	}
	name := cr.rule.Name
	v.anomEvals.With(name).Add(float64(len(vec)))
	v.anomDetects.With(name).Add(float64(len(out)))
	st := cr.det.Stats()
	v.anomScore.With(name).Set(maxAbs)
	v.anomSeries.With(name).Set(float64(st.Series))
	saturated := 0.0
	if st.Saturated {
		saturated = 1
	}
	v.anomSaturated.With(name).Set(saturated)
	return out
}

// Metrics exposes vmalert's self-monitoring registry.
func (v *VMAlert) Metrics() *obs.Registry { return v.reg }

// SetTracer attaches an event tracer; firing alerts record a
// "vmalert.fire" stage on the trace of the newest event from the same
// component (keyed by the xname label).
func (v *VMAlert) SetTracer(t *obs.Tracer) { v.tracer = t }

// AddRecordingRules registers recording rules that write their results
// into db on every evaluation round.
func (v *VMAlert) AddRecordingRules(db *tsdb.DB, rules ...RecordingRule) error {
	if db == nil {
		return fmt.Errorf("vmalert: recording rules need a db")
	}
	compiled := make([]compiledRecording, 0, len(rules))
	for _, r := range rules {
		if r.Record == "" {
			return fmt.Errorf("vmalert: recording rule needs a name: %+v", r)
		}
		expr, err := promql.Parse(r.Expr)
		if err != nil {
			return fmt.Errorf("vmalert: recording rule %q: %w", r.Record, err)
		}
		compiled = append(compiled, compiledRecording{rule: r, expr: expr})
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.recordDB = db
	v.recordings = append(v.recordings, compiled...)
	return nil
}

// EvalOnce evaluates every rule at the current time and notifies state
// transitions. It returns the alerts sent. Recording rules run first so
// alerting rules can reference their output in the same round.
func (v *VMAlert) EvalOnce() ([]alertmanager.Alert, error) {
	now := v.now()
	ms := now.UnixMilli()
	t0 := time.Now()
	v.mu.Lock()
	defer func() {
		v.mu.Unlock()
		v.evalDur.Observe(time.Since(t0).Seconds())
	}()
	v.evals++
	v.evalsCtr.Inc()
	for _, cr := range v.recordings {
		vec, err := v.engine.Instant(cr.expr, ms)
		if err != nil {
			return nil, fmt.Errorf("vmalert: recording rule %q: %w", cr.rule.Record, err)
		}
		for _, s := range vec {
			b := labels.NewBuilder(s.Labels)
			for k, val := range cr.rule.Labels {
				b.Set(k, val)
			}
			if err := v.recordDB.AppendMetric(cr.rule.Record, b.Labels(), ms, s.V); err != nil && !errors.Is(err, tsdb.ErrOutOfOrder) {
				return nil, err
			}
		}
	}
	var sent []alertmanager.Alert
	for i, cr := range v.rules {
		rt0 := time.Now()
		vec, err := v.engine.Instant(cr.expr, ms)
		if err != nil {
			return sent, fmt.Errorf("vmalert: rule %q: %w", cr.rule.Name, err)
		}
		if cr.det != nil {
			vec = v.detect(cr, vec, now)
		}
		active := map[labels.Fingerprint]bool{}
		for _, sample := range vec {
			b := labels.NewBuilder(sample.Labels)
			b.Set("alertname", cr.rule.Name)
			for k, val := range cr.rule.Labels {
				b.Set(k, val)
			}
			alertLbls := b.Labels()
			fp := alertLbls.Fingerprint()
			active[fp] = true
			st, ok := v.state[i][fp]
			if !ok {
				st = &alertState{activeSince: now, labels: alertLbls}
				v.state[i][fp] = st
			}
			st.value = sample.V
			if !st.firing && now.Sub(st.activeSince) >= cr.rule.For {
				st.firing = true
				sent = append(sent, v.buildAlert(cr.rule, st, now, time.Time{}))
				v.firedVec.With(cr.rule.Name).Inc()
				// Timed fire span; alerts without a pre-existing event trace
				// (meta-alerts about the pipeline itself) mint one here so
				// delivery spans and latency close-out attach to something.
				key := vmTraceKey(alertLbls)
				end := now.Add(time.Since(t0))
				id := v.tracer.SpanByKey(key, "vmalert.fire", now, end, cr.rule.Name)
				if id == "" && key != "" {
					id = v.tracer.Start(key, now, "vmalert:"+cr.rule.Name)
					v.tracer.Span(id, "vmalert.fire", now, end, cr.rule.Name)
				}
				if cr.det != nil && id != "" {
					v.tracer.Span(id, "anomaly.detect", st.activeSince, end,
						fmt.Sprintf("%s %+.1fσ (%s)", cr.rule.Name, st.value, cr.det.Config().Method))
				}
			}
		}
		for fp, st := range v.state[i] {
			if active[fp] {
				continue
			}
			if st.firing {
				sent = append(sent, v.buildAlert(cr.rule, st, st.activeSince, now))
			}
			delete(v.state[i], fp)
		}
		v.ruleDur.With(cr.rule.Name).Observe(time.Since(rt0).Seconds())
	}
	if len(sent) > 0 {
		v.notifier.Receive(sent...)
	}
	return sent, nil
}

// vmTraceKey extracts the trace correlation key from an alert label set.
// Hardware alerts carry an xname (or the Context stream label); the
// built-in meta-alerts about the pipeline itself are keyed by whichever
// subsystem dimension they fire on.
func vmTraceKey(ls labels.Labels) string {
	for _, name := range []string{"xname", "Context", "dependency", "target", "topic", "stage", "rule"} {
		if val := ls.Get(name); val != "" {
			return val
		}
	}
	return ""
}

func (v *VMAlert) buildAlert(rule Rule, st *alertState, startsAt, endsAt time.Time) alertmanager.Alert {
	ann := make(map[string]string, len(rule.Annotations))
	for k, val := range rule.Annotations {
		ann[k] = ruler.ExpandTemplate(val, st.labels, st.value)
	}
	return alertmanager.Alert{Labels: st.labels, Annotations: ann, StartsAt: startsAt, EndsAt: endsAt}
}

// Evals returns the evaluation-round counter.
func (v *VMAlert) Evals() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.evals
}

// Run evaluates on the interval until stop closes.
func (v *VMAlert) Run(interval time.Duration, stop <-chan struct{}) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-t.C:
			if _, err := v.EvalOnce(); err != nil {
				return err
			}
		}
	}
}
