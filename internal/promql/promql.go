// Package promql implements the subset of PromQL that the paper's metric
// alerting path needs: instant vector selectors with label matchers, range
// functions (rate, increase, delta, *_over_time), absent(), vector
// aggregations with by/without grouping, scalar arithmetic and threshold
// comparisons. vmalert evaluates rule expressions written in this subset
// against the tsdb package.
package promql

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
	"unicode"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/parallel"
	"shastamon/internal/stats"
	"shastamon/internal/tsdb"
)

// DefaultLookback is the instant-vector staleness window.
const DefaultLookback = 5 * time.Minute

// Sample is one instant query result.
type Sample struct {
	Labels labels.Labels
	T      int64 // ms
	V      float64
}

// Vector is an instant query result set.
type Vector []Sample

// Point is one value in a range query series.
type Point struct {
	T int64
	V float64
}

// Series is a labelled point sequence.
type Series struct {
	Labels labels.Labels
	Points []Point
}

// Matrix is a range query result.
type Matrix []Series

// ---- AST ----

// Expr is a parsed PromQL expression.
type Expr interface{ String() string }

// NumberExpr is a scalar literal.
type NumberExpr float64

func (n NumberExpr) String() string { return strconv.FormatFloat(float64(n), 'g', -1, 64) }

// SelectorExpr is an instant vector selector: name{matchers}.
type SelectorExpr struct {
	Name     string
	Matchers labels.Selector
}

func (s *SelectorExpr) String() string {
	if len(s.Matchers) == 0 {
		return s.Name
	}
	return s.Name + s.Matchers.String()
}

// allMatchers includes the implicit __name__ matcher.
func (s *SelectorExpr) allMatchers() ([]*labels.Matcher, error) {
	out := make([]*labels.Matcher, 0, len(s.Matchers)+1)
	if s.Name != "" {
		m, err := labels.NewMatcher(labels.MatchEqual, tsdb.MetricNameLabel, s.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return append(out, s.Matchers...), nil
}

// RangeFnExpr is fn(selector[dur]).
type RangeFnExpr struct {
	Fn       string
	Selector *SelectorExpr
	Range    time.Duration
}

func (r *RangeFnExpr) String() string {
	return fmt.Sprintf("%s(%s[%s])", r.Fn, r.Selector, r.Range)
}

// AbsentExpr is absent(selector).
type AbsentExpr struct{ Selector *SelectorExpr }

func (a *AbsentExpr) String() string { return fmt.Sprintf("absent(%s)", a.Selector) }

// AggExpr is agg [by/without (...)] (expr).
type AggExpr struct {
	Op       string
	Inner    Expr
	Grouping []string
	Without  bool
}

func (a *AggExpr) String() string {
	g := ""
	if len(a.Grouping) > 0 || a.Without {
		kw := "by"
		if a.Without {
			kw = "without"
		}
		g = fmt.Sprintf(" %s (%s)", kw, strings.Join(a.Grouping, ", "))
	}
	return fmt.Sprintf("%s(%s)%s", a.Op, a.Inner, g)
}

// BinExpr is a binary operation; at least one side is scalar for
// arithmetic, and comparisons require a scalar RHS or LHS.
type BinExpr struct {
	Op       string // + - * / > >= < <= == !=
	LHS, RHS Expr
}

func (b *BinExpr) String() string { return fmt.Sprintf("%s %s %s", b.LHS, b.Op, b.RHS) }

// ---- lexer ----

type lexToken struct {
	kind string // ident, number, string, duration, op, punct, eof
	text string
	pos  int
}

func lexPromQL(s string) ([]lexToken, error) {
	var toks []lexToken
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == '{' || c == '}' || c == '[' || c == ']' || c == ',':
			toks = append(toks, lexToken{"punct", string(c), i})
			i++
		case c == '+' || c == '-' || c == '*' || c == '/':
			toks = append(toks, lexToken{"op", string(c), i})
			i++
		case c == '>' || c == '<':
			op := string(c)
			if i+1 < len(s) && s[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, lexToken{"op", op, i})
			i++
		case c == '=':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, lexToken{"op", "==", i})
				i += 2
			} else if i+1 < len(s) && s[i+1] == '~' {
				toks = append(toks, lexToken{"op", "=~", i})
				i += 2
			} else {
				toks = append(toks, lexToken{"op", "=", i})
				i++
			}
		case c == '!':
			if i+1 < len(s) && (s[i+1] == '=' || s[i+1] == '~') {
				toks = append(toks, lexToken{"op", s[i : i+2], i})
				i += 2
			} else {
				return nil, fmt.Errorf("promql: unexpected '!' at %d", i)
			}
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(s) && s[j] != quote {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				b.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("promql: unterminated string at %d", i)
			}
			toks = append(toks, lexToken{"string", b.String(), i})
			i = j + 1
		case c >= '0' && c <= '9' || c == '.':
			j := i
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			if j < len(s) && isDurUnit(s[j]) {
				for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || isDurUnit(s[j])) {
					j++
				}
				toks = append(toks, lexToken{"duration", s[i:j], i})
			} else {
				toks = append(toks, lexToken{"number", s[i:j], i})
			}
			i = j
		case c == '_' || unicode.IsLetter(rune(c)) || c == ':':
			j := i
			for j < len(s) && (s[j] == '_' || s[j] == ':' || unicode.IsLetter(rune(s[j])) || s[j] >= '0' && s[j] <= '9') {
				j++
			}
			toks = append(toks, lexToken{"ident", s[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("promql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, lexToken{kind: "eof", pos: len(s)})
	return toks, nil
}

func isDurUnit(c byte) bool {
	return c == 's' || c == 'm' || c == 'h' || c == 'd' || c == 'w'
}

func parseDur(s string) (time.Duration, error) {
	if d, err := time.ParseDuration(s); err == nil {
		return d, nil
	}
	if strings.HasSuffix(s, "d") {
		if n, err := strconv.ParseFloat(strings.TrimSuffix(s, "d"), 64); err == nil {
			return time.Duration(n * 24 * float64(time.Hour)), nil
		}
	}
	if strings.HasSuffix(s, "w") {
		if n, err := strconv.ParseFloat(strings.TrimSuffix(s, "w"), 64); err == nil {
			return time.Duration(n * 7 * 24 * float64(time.Hour)), nil
		}
	}
	return 0, fmt.Errorf("promql: bad duration %q", s)
}

// ---- parser ----

var rangeFns = map[string]bool{
	"rate": true, "increase": true, "delta": true, "idelta": true,
	"avg_over_time": true, "sum_over_time": true, "min_over_time": true,
	"max_over_time": true, "count_over_time": true, "last_over_time": true,
}

var aggOps = map[string]bool{
	"sum": true, "min": true, "max": true, "avg": true, "count": true,
}

type promParser struct {
	toks []lexToken
	pos  int
	src  string
}

// Parse parses a PromQL expression in the supported subset.
func Parse(input string) (Expr, error) {
	toks, err := lexPromQL(input)
	if err != nil {
		return nil, err
	}
	p := &promParser{toks: toks, src: input}
	e, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != "eof" {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return e, nil
}

func (p *promParser) peek() lexToken { return p.toks[p.pos] }
func (p *promParser) next() lexToken { t := p.toks[p.pos]; p.pos++; return t }
func (p *promParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("promql: parse error at %d in %q: %s", p.peek().pos, p.src, fmt.Sprintf(format, args...))
}

func (p *promParser) parseCmp() (Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.kind == "op" && (t.text == ">" || t.text == ">=" || t.text == "<" || t.text == "<=" || t.text == "==" || t.text == "!=") {
		p.next()
		rhs, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: t.text, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *promParser) parseAdd() (Expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != "op" || (t.text != "+" && t.text != "-") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, LHS: lhs, RHS: rhs}
	}
}

func (p *promParser) parseMul() (Expr, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != "op" || (t.text != "*" && t.text != "/") {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Op: t.text, LHS: lhs, RHS: rhs}
	}
}

func (p *promParser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == "number":
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return NumberExpr(v), nil
	case t.kind == "punct" && t.text == "(":
		p.next()
		e, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == "ident":
		return p.parseIdent()
	}
	return nil, p.errf("unexpected %q", t.text)
}

func (p *promParser) expectPunct(s string) error {
	t := p.next()
	if t.kind != "punct" || t.text != s {
		p.pos--
		return p.errf("expected %q, got %q", s, t.text)
	}
	return nil
}

func (p *promParser) parseIdent() (Expr, error) {
	t := p.next()
	name := t.text
	switch {
	case rangeFns[name]:
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelector()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		durTok := p.next()
		if durTok.kind != "duration" {
			return nil, p.errf("expected duration, got %q", durTok.text)
		}
		d, err := parseDur(durTok.text)
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &RangeFnExpr{Fn: name, Selector: sel, Range: d}, nil
	case name == "absent":
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		sel, err := p.parseSelector()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &AbsentExpr{Selector: sel}, nil
	case aggOps[name]:
		agg := &AggExpr{Op: name}
		if err := p.maybeGrouping(agg); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		inner, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		agg.Inner = inner
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.maybeGrouping(agg); err != nil {
			return nil, err
		}
		return agg, nil
	default:
		p.pos--
		return p.parseSelector()
	}
}

func (p *promParser) maybeGrouping(agg *AggExpr) error {
	t := p.peek()
	if t.kind != "ident" || (t.text != "by" && t.text != "without") {
		return nil
	}
	if len(agg.Grouping) > 0 || agg.Without {
		return p.errf("duplicate grouping")
	}
	p.next()
	agg.Without = t.text == "without"
	if err := p.expectPunct("("); err != nil {
		return err
	}
	for {
		nt := p.next()
		if nt.kind != "ident" {
			return p.errf("expected label name, got %q", nt.text)
		}
		agg.Grouping = append(agg.Grouping, nt.text)
		if p.peek().kind == "punct" && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	return p.expectPunct(")")
}

func (p *promParser) parseSelector() (*SelectorExpr, error) {
	sel := &SelectorExpr{}
	t := p.peek()
	if t.kind == "ident" {
		sel.Name = t.text
		p.next()
	}
	if p.peek().kind == "punct" && p.peek().text == "{" {
		p.next()
		for {
			if p.peek().kind == "punct" && p.peek().text == "}" {
				p.next()
				break
			}
			nameTok := p.next()
			if nameTok.kind != "ident" {
				return nil, p.errf("expected label name, got %q", nameTok.text)
			}
			opTok := p.next()
			var mt labels.MatchType
			switch opTok.text {
			case "=":
				mt = labels.MatchEqual
			case "!=":
				mt = labels.MatchNotEqual
			case "=~":
				mt = labels.MatchRegexp
			case "!~":
				mt = labels.MatchNotRegexp
			default:
				return nil, p.errf("expected matcher op, got %q", opTok.text)
			}
			valTok := p.next()
			if valTok.kind != "string" {
				return nil, p.errf("expected string, got %q", valTok.text)
			}
			m, err := labels.NewMatcher(mt, nameTok.text, valTok.text)
			if err != nil {
				return nil, err
			}
			sel.Matchers = append(sel.Matchers, m)
			if p.peek().kind == "punct" && p.peek().text == "," {
				p.next()
			}
		}
	}
	if sel.Name == "" && len(sel.Matchers) == 0 {
		return nil, p.errf("empty selector")
	}
	return sel, nil
}

// ---- evaluation ----

// Engine evaluates expressions against a tsdb.DB. Range-function
// evaluation fans the selected series out over a bounded worker pool: a
// fleet-wide rate() touches one series per node, and each series folds
// independently.
type Engine struct {
	db       *tsdb.DB
	lookback time.Duration
	workers  int
	inFlight atomic.Int64
	tracker  *stats.Tracker
	frontend *frontend.Frontend
}

// NewEngine returns an engine with the default 5m staleness lookback and
// GOMAXPROCS workers.
func NewEngine(db *tsdb.DB) *Engine {
	return &Engine{db: db, lookback: DefaultLookback, workers: parallel.Workers(0)}
}

// SetParallelism bounds the per-series worker pool; n <= 1 evaluates
// sequentially. Call during setup, not concurrently with queries.
func (e *Engine) SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// QueryParallelism reports in-flight range-function workers; the
// warehouse exposes it as a gauge.
func (e *Engine) QueryParallelism() int64 { return e.inFlight.Load() }

// SetTracker attaches the active-query tracker the HTTP handler registers
// queries with. Call during setup, not concurrently with queries.
func (e *Engine) SetTracker(t *stats.Tracker) { e.tracker = t }

// Tracker returns the attached active-query tracker, nil when unset.
func (e *Engine) Tracker() *stats.Tracker { return e.tracker }

// Instant evaluates the expression at ts (Unix ms).
func (e *Engine) Instant(expr Expr, ts int64) (Vector, error) {
	return e.InstantContext(context.Background(), expr, ts)
}

// InstantContext is Instant with cancellation and per-query statistics
// carried by ctx.
func (e *Engine) InstantContext(ctx context.Context, expr Expr, ts int64) (Vector, error) {
	stats.FromContext(ctx).MarkExec()
	switch ex := expr.(type) {
	case NumberExpr:
		return Vector{{T: ts, V: float64(ex)}}, nil
	case *SelectorExpr:
		ms, err := ex.allMatchers()
		if err != nil {
			return nil, err
		}
		data := e.db.LatestBeforeContext(ctx, ms, ts, e.lookback.Milliseconds())
		out := make(Vector, 0, len(data))
		for _, sd := range data {
			out = append(out, Sample{Labels: sd.Labels, T: ts, V: sd.Samples[0].V})
		}
		return out, nil
	case *RangeFnExpr:
		return e.evalRangeFn(ctx, ex, ts)
	case *AbsentExpr:
		ms, err := ex.Selector.allMatchers()
		if err != nil {
			return nil, err
		}
		data := e.db.LatestBeforeContext(ctx, ms, ts, e.lookback.Milliseconds())
		if len(data) > 0 {
			return nil, nil
		}
		b := labels.NewBuilder(nil)
		for _, m := range ex.Selector.Matchers {
			if m.Type == labels.MatchEqual {
				b.Set(m.Name, m.Value)
			}
		}
		return Vector{{Labels: b.Labels(), T: ts, V: 1}}, nil
	case *AggExpr:
		return e.evalAgg(ctx, ex, ts)
	case *BinExpr:
		return e.evalBin(ctx, ex, ts)
	default:
		return nil, fmt.Errorf("promql: unsupported expression %T", expr)
	}
}

// Range evaluates over [start, end] ms stepping by step.
func (e *Engine) Range(expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	return e.RangeContext(context.Background(), expr, start, end, step)
}

// RangeContext is Range with cancellation and per-query statistics
// carried by ctx. With a frontend attached (SetFrontend) the range is
// split at interval boundaries and partially served from the results
// cache; without one it evaluates monolithically as a single split.
func (e *Engine) RangeContext(ctx context.Context, expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	if step.Milliseconds() <= 0 {
		return nil, fmt.Errorf("promql: step must be at least 1ms")
	}
	if e.frontend != nil {
		return e.rangeViaFrontend(ctx, expr, start, end, step)
	}
	sc := stats.FromContext(ctx)
	sc.MarkExec()
	sc.AddSplit()
	return e.rangeDirect(ctx, expr, start, end, step)
}

// rangeDirect is the monolithic range evaluation: one instant
// evaluation per step over the whole window. The frontend calls it per
// split; split results concatenate to exactly this loop's output.
func (e *Engine) rangeDirect(ctx context.Context, expr Expr, start, end int64, step time.Duration) (Matrix, error) {
	byKey := map[string]*Series{}
	var order []string
	for ts := start; ts <= end; ts += step.Milliseconds() {
		vec, err := e.InstantContext(ctx, expr, ts)
		if err != nil {
			return nil, err
		}
		for _, s := range vec {
			key := s.Labels.String()
			sr, ok := byKey[key]
			if !ok {
				sr = &Series{Labels: s.Labels}
				byKey[key] = sr
				order = append(order, key)
			}
			sr.Points = append(sr.Points, Point{T: ts, V: s.V})
		}
	}
	sort.Strings(order)
	m := make(Matrix, 0, len(order))
	for _, k := range order {
		m = append(m, *byKey[k])
	}
	return m, nil
}

func (e *Engine) evalRangeFn(ctx context.Context, ex *RangeFnExpr, ts int64) (Vector, error) {
	ms, err := ex.Selector.allMatchers()
	if err != nil {
		return nil, err
	}
	mint := ts - ex.Range.Milliseconds() + 1
	data, err := e.db.SelectContext(ctx, ms, mint, ts)
	if err != nil {
		return nil, err
	}
	type result struct {
		v  float64
		ok bool
	}
	results := make([]result, len(data))
	parallel.Do(len(data), e.workers, &e.inFlight, func(i int) {
		if len(data[i].Samples) == 0 {
			return
		}
		results[i].v, results[i].ok = applyRangeFn(ex.Fn, data[i].Samples, ex.Range)
	})
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	out := make(Vector, 0, len(data))
	for i, sd := range data {
		if !results[i].ok {
			continue
		}
		out = append(out, Sample{Labels: sd.Labels.Without(tsdb.MetricNameLabel), T: ts, V: results[i].v})
	}
	return out, nil
}

func applyRangeFn(fn string, s []tsdb.Sample, rng time.Duration) (float64, bool) {
	switch fn {
	case "count_over_time":
		return float64(len(s)), true
	case "last_over_time":
		return s[len(s)-1].V, true
	case "sum_over_time", "avg_over_time", "min_over_time", "max_over_time":
		sum, minV, maxV := 0.0, math.Inf(1), math.Inf(-1)
		for _, p := range s {
			sum += p.V
			minV = math.Min(minV, p.V)
			maxV = math.Max(maxV, p.V)
		}
		switch fn {
		case "sum_over_time":
			return sum, true
		case "avg_over_time":
			return sum / float64(len(s)), true
		case "min_over_time":
			return minV, true
		default:
			return maxV, true
		}
	case "delta", "idelta":
		if len(s) < 2 {
			return 0, false
		}
		if fn == "idelta" {
			return s[len(s)-1].V - s[len(s)-2].V, true
		}
		return s[len(s)-1].V - s[0].V, true
	case "rate", "increase":
		if len(s) < 2 {
			return 0, false
		}
		// Counter semantics with reset detection.
		inc := 0.0
		prev := s[0].V
		for _, p := range s[1:] {
			if p.V >= prev {
				inc += p.V - prev
			} else {
				inc += p.V // reset: counter restarted from 0
			}
			prev = p.V
		}
		if fn == "increase" {
			return inc, true
		}
		secs := float64(s[len(s)-1].T-s[0].T) / 1000
		if secs <= 0 {
			return 0, false
		}
		return inc / secs, true
	}
	return 0, false
}

func (e *Engine) evalAgg(ctx context.Context, ex *AggExpr, ts int64) (Vector, error) {
	inner, err := e.InstantContext(ctx, ex.Inner, ts)
	if err != nil {
		return nil, err
	}
	group := func(ls labels.Labels) labels.Labels {
		ls = ls.Without(tsdb.MetricNameLabel)
		if ex.Without {
			return ls.Without(ex.Grouping...)
		}
		if len(ex.Grouping) == 0 {
			return nil
		}
		return ls.Keep(ex.Grouping...)
	}
	type acc struct {
		labels               labels.Labels
		sum, min, max, count float64
	}
	groups := map[string]*acc{}
	var order []string
	for _, s := range inner {
		gl := group(s.Labels)
		key := gl.String()
		g, ok := groups[key]
		if !ok {
			g = &acc{labels: gl, min: s.V, max: s.V}
			groups[key] = g
			order = append(order, key)
		}
		g.sum += s.V
		g.count++
		g.min = math.Min(g.min, s.V)
		g.max = math.Max(g.max, s.V)
	}
	sort.Strings(order)
	out := make(Vector, 0, len(order))
	for _, key := range order {
		g := groups[key]
		var v float64
		switch ex.Op {
		case "sum":
			v = g.sum
		case "min":
			v = g.min
		case "max":
			v = g.max
		case "avg":
			v = g.sum / g.count
		case "count":
			v = g.count
		}
		out = append(out, Sample{Labels: g.labels, T: ts, V: v})
	}
	return out, nil
}

func (e *Engine) evalBin(ctx context.Context, ex *BinExpr, ts int64) (Vector, error) {
	lhs, err := e.InstantContext(ctx, ex.LHS, ts)
	if err != nil {
		return nil, err
	}
	rhs, err := e.InstantContext(ctx, ex.RHS, ts)
	if err != nil {
		return nil, err
	}
	_, lScalar := ex.LHS.(NumberExpr)
	_, rScalar := ex.RHS.(NumberExpr)
	isCmp := ex.Op == ">" || ex.Op == ">=" || ex.Op == "<" || ex.Op == "<=" || ex.Op == "==" || ex.Op == "!="

	apply := func(a, b float64) (float64, bool) {
		switch ex.Op {
		case "+":
			return a + b, true
		case "-":
			return a - b, true
		case "*":
			return a * b, true
		case "/":
			return a / b, true
		case ">":
			return a, a > b
		case ">=":
			return a, a >= b
		case "<":
			return a, a < b
		case "<=":
			return a, a <= b
		case "==":
			return a, a == b
		case "!=":
			return a, a != b
		}
		return 0, false
	}
	switch {
	case lScalar && rScalar:
		if isCmp {
			return nil, fmt.Errorf("promql: scalar comparison without vector operand")
		}
		v, _ := apply(lhs[0].V, rhs[0].V)
		return Vector{{T: ts, V: v}}, nil
	case rScalar:
		b := rhs[0].V
		out := make(Vector, 0, len(lhs))
		for _, s := range lhs {
			v, keep := apply(s.V, b)
			if !keep && isCmp {
				continue
			}
			lbls := s.Labels
			if !isCmp {
				lbls = lbls.Without(tsdb.MetricNameLabel)
			}
			out = append(out, Sample{Labels: lbls, T: ts, V: v})
		}
		return out, nil
	case lScalar:
		a := lhs[0].V
		out := make(Vector, 0, len(rhs))
		for _, s := range rhs {
			var v float64
			var keep bool
			if isCmp {
				// scalar OP vector keeps vector samples where the comparison holds
				switch ex.Op {
				case ">":
					keep = a > s.V
				case ">=":
					keep = a >= s.V
				case "<":
					keep = a < s.V
				case "<=":
					keep = a <= s.V
				case "==":
					keep = a == s.V
				case "!=":
					keep = a != s.V
				}
				v = s.V
				if !keep {
					continue
				}
			} else {
				v, _ = apply(a, s.V)
			}
			lbls := s.Labels
			if !isCmp {
				lbls = lbls.Without(tsdb.MetricNameLabel)
			}
			out = append(out, Sample{Labels: lbls, T: ts, V: v})
		}
		return out, nil
	default:
		return nil, fmt.Errorf("promql: vector-to-vector %q not supported in this subset", ex.Op)
	}
}

// Query parses and evaluates an instant query.
func (e *Engine) Query(q string, ts int64) (Vector, error) {
	return e.QueryContext(context.Background(), q, ts)
}

// QueryContext parses and evaluates an instant query under ctx.
func (e *Engine) QueryContext(ctx context.Context, q string, ts int64) (Vector, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	vec, err := e.InstantContext(ctx, expr, ts)
	if err != nil {
		return nil, err
	}
	stats.FromContext(ctx).AddEntriesReturned(int64(len(vec)))
	return vec, nil
}

// QueryRange parses and evaluates a range query.
func (e *Engine) QueryRange(q string, start, end int64, step time.Duration) (Matrix, error) {
	return e.QueryRangeContext(context.Background(), q, start, end, step)
}

// QueryRangeContext parses and evaluates a range query under ctx.
func (e *Engine) QueryRangeContext(ctx context.Context, q string, start, end int64, step time.Duration) (Matrix, error) {
	expr, err := Parse(q)
	if err != nil {
		return nil, err
	}
	m, err := e.RangeContext(ctx, expr, start, end, step)
	if err != nil {
		return nil, err
	}
	points := 0
	for _, s := range m {
		points += len(s.Points)
	}
	stats.FromContext(ctx).AddEntriesReturned(int64(points))
	return m, nil
}
