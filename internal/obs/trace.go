package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the metadata key under which a trace ID rides through the
// pipeline — a Kafka message header, a Telemetry API record header, or an
// HTTP request header.
const TraceHeader = "trace_id"

// Stage is one recorded hop of an event's journey through the pipeline.
// A zero End marks an instantaneous (presence-only) record; a later End
// makes the stage a timed span.
type Stage struct {
	Stage string    `json:"stage"`
	Time  time.Time `json:"time"`
	End   time.Time `json:"end,omitempty"`
	Note  string    `json:"note,omitempty"`
}

// Duration returns the span length, or 0 for presence-only stages.
func (s Stage) Duration() time.Duration {
	if s.End.IsZero() || s.End.Before(s.Time) {
		return 0
	}
	return s.End.Sub(s.Time)
}

// Trace is the full per-event record: the ID minted at origin, the
// correlation key (the component xname for hardware events), an optional
// parent trace ID, free-form attributes, and the stages in arrival order.
type Trace struct {
	ID     string            `json:"id"`
	Key    string            `json:"key,omitempty"`
	Parent string            `json:"parent,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
	Stages []Stage           `json:"stages"`
}

// Tracer records event traces in a bounded ring buffer: when capacity is
// reached the oldest trace is evicted. All methods are safe on a nil
// receiver, so components can hold an optional *Tracer and instrument
// unconditionally.
type Tracer struct {
	mu     sync.Mutex
	cap    int
	seq    uint64
	epoch  uint64
	ring   []string // trace IDs in mint order
	traces map[string]*Trace
	byKey  map[string]string // correlation key -> newest trace ID
}

// NewTracer returns a tracer keeping up to capacity traces (<=0 gets 256).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		cap:    capacity,
		epoch:  uint64(time.Now().UnixNano()),
		traces: map[string]*Trace{},
		byKey:  map[string]string{},
	}
}

// Start mints a new trace ID, associates it with the correlation key and
// records the "origin" stage. It returns the ID ("" on a nil tracer).
func (t *Tracer) Start(key string, now time.Time, note string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("%08x-%06x", uint32(t.epoch>>16), t.seq&0xffffff)
	if len(t.ring) >= t.cap {
		old := t.ring[0]
		t.ring = t.ring[1:]
		if tr := t.traces[old]; tr != nil && t.byKey[tr.Key] == old {
			delete(t.byKey, tr.Key)
		}
		delete(t.traces, old)
	}
	t.ring = append(t.ring, id)
	t.traces[id] = &Trace{ID: id, Key: key,
		Stages: []Stage{{Stage: "origin", Time: now, Note: note}}}
	if key != "" {
		t.byKey[key] = id
	}
	return id
}

// Stage appends a stage record to the trace with the given ID. Unknown or
// evicted IDs are ignored.
func (t *Tracer) Stage(id, stage string, now time.Time, note string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: now, Note: note})
	}
}

// StageByKey records a stage on the newest trace associated with the
// correlation key — how rule evaluation and alert dispatch, which see
// label sets rather than message headers, join an event's trace. It
// returns the trace ID, or "" if the key is unknown.
func (t *Tracer) StageByKey(key, stage string, now time.Time, note string) string {
	if t == nil || key == "" {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.byKey[key]
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: now, Note: note})
	}
	return id
}

// Span records a timed stage on the trace: start plus end. Unknown or
// evicted IDs are ignored.
func (t *Tracer) Span(id, stage string, start, end time.Time, note string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: start, End: end, Note: note})
	}
}

// SpanByKey records a timed stage on the newest trace associated with the
// correlation key. It returns the trace ID, or "" if the key is unknown.
func (t *Tracer) SpanByKey(key, stage string, start, end time.Time, note string) string {
	if t == nil || key == "" {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := t.byKey[key]
	if tr := t.traces[id]; tr != nil {
		tr.Stages = append(tr.Stages, Stage{Stage: stage, Time: start, End: end, Note: note})
	}
	return id
}

// Annotate sets a free-form attribute on the trace. Unknown IDs are
// ignored.
func (t *Tracer) Annotate(id, key, value string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		if tr.Attrs == nil {
			tr.Attrs = map[string]string{}
		}
		tr.Attrs[key] = value
	}
}

// SetParent links the trace to a parent trace ID, for traces spawned on
// behalf of another (a meta-alert raised about a hardware event's
// delivery, for example).
func (t *Tracer) SetParent(id, parent string) {
	if t == nil || id == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if tr := t.traces[id]; tr != nil {
		tr.Parent = parent
	}
}

// Once atomically sets the attribute the first time it is called for a
// given trace and key and reports whether this call was the first — the
// exactly-once guard the latency close-out uses so an alert delivered to
// both Slack and ServiceNow is observed a single time.
func (t *Tracer) Once(id, key string) bool {
	if t == nil || id == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[id]
	if tr == nil {
		return false
	}
	if tr.Attrs == nil {
		tr.Attrs = map[string]string{}
	}
	if _, done := tr.Attrs[key]; done {
		return false
	}
	tr.Attrs[key] = "1"
	return true
}

// Origin returns the start time of the trace's first stage — the moment
// the event was emitted — and whether the trace (with at least one stage)
// exists.
func (t *Tracer) Origin(id string) (time.Time, bool) {
	if t == nil || id == "" {
		return time.Time{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[id]
	if tr == nil || len(tr.Stages) == 0 {
		return time.Time{}, false
	}
	return tr.Stages[0].Time, true
}

// IDByKey returns the newest trace ID associated with the key, or "".
func (t *Tracer) IDByKey(key string) string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.byKey[key]
}

// Get returns a copy of the trace with the given ID.
func (t *Tracer) Get(id string) (Trace, bool) {
	if t == nil {
		return Trace{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr := t.traces[id]
	if tr == nil {
		return Trace{}, false
	}
	cp := *tr
	cp.Stages = append([]Stage(nil), tr.Stages...)
	if tr.Attrs != nil {
		cp.Attrs = make(map[string]string, len(tr.Attrs))
		for k, v := range tr.Attrs {
			cp.Attrs[k] = v
		}
	}
	return cp, true
}

// IDs returns the retained trace IDs, oldest first.
func (t *Tracer) IDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.ring...)
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}

// traceSummary is the listing entry served at /debug/trace/.
type traceSummary struct {
	ID     string `json:"id"`
	Key    string `json:"key,omitempty"`
	Stages int    `json:"stages"`
}

// Handler serves the trace store. Mount it at /debug/trace/:
//
//	GET /debug/trace/        list retained traces (newest first)
//	GET /debug/trace/{id}    one trace with all its stages
//
// A nil tracer serves 404s, so the endpoint can be mounted
// unconditionally.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id := r.URL.Path
		if i := strings.LastIndex(id, "/debug/trace/"); i >= 0 {
			id = id[i+len("/debug/trace/"):]
		} else {
			id = strings.TrimPrefix(id, "/")
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if id == "" {
			t.mu.Lock()
			out := make([]traceSummary, 0, len(t.ring))
			for i := len(t.ring) - 1; i >= 0; i-- {
				tr := t.traces[t.ring[i]]
				out = append(out, traceSummary{ID: tr.ID, Key: tr.Key, Stages: len(tr.Stages)})
			}
			t.mu.Unlock()
			_ = enc.Encode(out)
			return
		}
		tr, ok := t.Get(id)
		if !ok {
			http.Error(w, "unknown trace "+id, http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "waterfall" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = io.WriteString(w, tr.Waterfall())
			return
		}
		_ = enc.Encode(tr)
	})
}

// Waterfall renders the trace as a plain-text span waterfall: one line
// per stage with its offset from the event origin, its duration and its
// note. Served at /debug/trace/{id}?format=waterfall.
func (tr Trace) Waterfall() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s", tr.ID)
	if tr.Key != "" {
		fmt.Fprintf(&b, " key=%s", tr.Key)
	}
	if tr.Parent != "" {
		fmt.Fprintf(&b, " parent=%s", tr.Parent)
	}
	b.WriteByte('\n')
	if len(tr.Stages) == 0 {
		b.WriteString("  (no stages)\n")
		return b.String()
	}
	origin := tr.Stages[0].Time
	end := origin
	for _, s := range tr.Stages {
		off := s.Time.Sub(origin)
		dur := "-"
		if d := s.Duration(); d > 0 {
			dur = d.Truncate(time.Microsecond).String()
		}
		fmt.Fprintf(&b, "  %-22s +%-12s %-10s %s\n",
			s.Stage, off.Truncate(time.Millisecond), dur, s.Note)
		if t := s.Time.Add(s.Duration()); t.After(end) {
			end = t
		}
	}
	fmt.Fprintf(&b, "  total %s over %d stage(s)\n", end.Sub(origin).Truncate(time.Millisecond), len(tr.Stages))
	if len(tr.Attrs) > 0 {
		keys := make([]string, 0, len(tr.Attrs))
		for k := range tr.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  attr %s=%s\n", k, tr.Attrs[k])
		}
	}
	return b.String()
}

// StageNames returns the distinct stage names of a trace in first-seen
// order — the assertion shape the end-to-end tests use.
func (tr Trace) StageNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range tr.Stages {
		if !seen[s.Stage] {
			seen[s.Stage] = true
			out = append(out, s.Stage)
		}
	}
	return out
}

// HasStages reports whether the trace contains every named stage.
func (tr Trace) HasStages(stages ...string) bool {
	names := tr.StageNames()
	sort.Strings(names)
	for _, want := range stages {
		i := sort.SearchStrings(names, want)
		if i >= len(names) || names[i] != want {
			return false
		}
	}
	return true
}

// ---- context carriage ----

type ctxKey struct{}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// TraceIDFrom extracts the trace ID from the context ("" if absent).
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}
