// Package loki implements a Grafana-Loki-style log aggregation store: the
// primary substrate of the paper. Logs are (timestamp, labels, line)
// triples. Only the timestamp and the labels are indexed; line content is
// compressed into chunks (see chunkenc). Logs sharing one unique label
// combination form a stream, and each stream fills chunks of its own — the
// exact storage model §IV.A of the paper walks through.
//
// The store is internally sharded: streams are striped over N lock-striped
// shards by label fingerprint (N = GOMAXPROCS by default), mirroring the
// paper's 8-worker Loki cluster inside one process. Concurrent pushers to
// different streams proceed without contending on a store-wide mutex, and
// ingest statistics are plain atomics, so the hot path takes exactly one
// shard read-lock plus one stream lock per pushed stream.
package loki

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/parallel"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// Entry is a single log line.
type Entry struct {
	Timestamp int64 // Unix nanoseconds, as in Loki's push API
	Line      string
}

// PushStream is one stream in a push request: a label set plus entries, the
// shape of the JSON payload shown in Fig. 3 of the paper.
type PushStream struct {
	Labels  labels.Labels
	Entries []Entry
}

// Limits bound ingestion, mirroring Loki's per-tenant limits.
type Limits struct {
	MaxLabelNamesPerStream int // 0 = default 15
	MaxLineSize            int // bytes, 0 = default 256 KiB
	MaxStreams             int // 0 = unlimited; exact across shards
	RejectOldSamples       bool
	ChunkOptions           chunkenc.Options

	// Shards is the number of lock stripes streams are spread over by
	// fingerprint; 0 = GOMAXPROCS. More shards = less push contention.
	Shards int
	// ChunkCacheBytes bounds the sealed-block decompression cache by raw
	// (decoded) bytes: 0 = chunkenc.DefaultCacheBytes, negative disables
	// the cache entirely.
	ChunkCacheBytes int

	// MaxBytesScanned cancels any tracked query whose cumulative scanned
	// bytes exceed the budget (Loki's max_query_bytes_read); 0 = unlimited.
	// Enforced by the stats.Tracker the warehouse arms per query.
	MaxBytesScanned int64
	// QueryTimeout cancels any tracked query running longer than this;
	// 0 = no timeout.
	QueryTimeout time.Duration
	// SlowQuerySeconds is the /debug/slowlog threshold: tracked queries at
	// least this slow are recorded. 0 disables duration-based slowlogging.
	SlowQuerySeconds float64

	// TenantOverrides resolve per-tenant quotas (stream caps, ingest
	// rate, chunk-cache share). nil = no per-tenant bounds; the store-wide
	// limits above still apply. A pointer keeps Limits comparable.
	TenantOverrides *tenant.Overrides
}

// DefaultLimits mirror Loki 2.4 defaults at simulator scale.
func DefaultLimits() Limits {
	return Limits{MaxLabelNamesPerStream: 15, MaxLineSize: 256 * 1024}
}

// ShardLabel is the virtual selector label the query frontend injects
// to restrict a sub-query to one fingerprint stripe: __shard__="i_of_n"
// selects streams whose fingerprint lands in stripe i of n. It is a
// query-time construct only — no stream ever carries it — and
// SelectContext strips it before matching real labels.
const ShardLabel = "__shard__"

// Validation errors returned by Push.
var (
	ErrTooManyLabels = errors.New("loki: stream exceeds max label names")
	ErrLineTooLong   = errors.New("loki: line exceeds max size")
	ErrMaxStreams    = errors.New("loki: per-store stream limit exceeded")
	ErrEmptyLabels   = errors.New("loki: stream must carry at least one label")
	// ErrRateLimited rejects a whole push batch when the tenant's ingest
	// token bucket is empty; HTTP maps it to 429.
	ErrRateLimited = errors.New("loki: tenant ingest rate limit exceeded")
	// ErrReservedLabel rejects pushes carrying the internal __tenant__
	// label the WAL uses to persist stream ownership.
	ErrReservedLabel = errors.New("loki: " + tenant.ReservedLabel + " is a reserved label")
)

// stream is the per-label-set state: an ordered list of filled chunks plus
// the currently open head chunk.
type stream struct {
	labels labels.Labels
	fp     labels.Fingerprint
	// tenant namespaces the stream: two tenants pushing identical label
	// sets get distinct streams (and, seeded, distinct fingerprints).
	tenant string

	mu     sync.Mutex
	chunks []*chunkenc.Chunk // sealed (full) chunks, oldest first
	head   *chunkenc.Chunk
	// lastTS tracks the newest accepted timestamp so out-of-order entries
	// are rejected across chunk cuts as well.
	lastTS int64
	// walPrefix caches the stream's encoded WAL record prefix (type byte
	// plus labels) so durable pushes don't re-encode labels per batch.
	walPrefix []byte
}

// shard is one lock stripe of the store: its own stream index, a push
// counter the shard-balance metric reads, and the shard's slice of the
// ingest accounting. The accounting counters live here rather than on
// the Store so concurrent pushers to different stripes never write the
// same cache lines — store-wide atomics were the one piece of state
// every pusher still shared. Stats() sums them on read.
type shard struct {
	mu      sync.RWMutex
	streams map[labels.Fingerprint][]*stream // collision list per fingerprint
	ordered []*stream                        // insertion order, for queries

	pushes        atomic.Int64
	entries       atomic.Int64
	rawBytes      atomic.Int64
	discardedOOO  atomic.Int64
	discardedSize atomic.Int64
}

// Store is an in-process Loki: ingester plus index plus chunk store.
// It is safe for concurrent use.
type Store struct {
	limits Limits

	obsOnce sync.Once
	obsReg  *obs.Registry

	shards []*shard
	cache  *chunkenc.BlockCache

	// streamCount is the store-wide stream total; MaxStreams is enforced
	// against it with a reserve-then-check atomic add, keeping the limit
	// exact no matter how many shards create streams concurrently.
	streamCount atomic.Int64

	// queryInFlight counts live Select/Flush workers for the
	// query-parallelism gauge.
	queryInFlight atomic.Int64

	// dur is the durability layer (WAL + spill + checkpoint); nil for a
	// memory-only store. See durable.go.
	dur *durability

	// Tenant namespaces. defTenant is the cached default-tenant state so
	// the single-tenant hot path never touches the map or its lock.
	defTenant *tenantState
	tmu       sync.RWMutex
	tenants   map[string]*tenantState

	// nowNS feeds the per-tenant rate limiters; swapped in tests.
	nowNS func() int64
}

// tenantState is the per-tenant slice of the store: exact stream
// accounting, ingest counters, and the optional rate limiter and private
// chunk cache the tenant's overrides configure.
type tenantState struct {
	id         string
	maxStreams int64

	streams     atomic.Int64
	entries     atomic.Int64
	bytes       atomic.Int64
	rateLimited atomic.Int64

	limiter *tenant.RateLimiter
	cache   *chunkenc.BlockCache
}

// NewStore returns an empty store with the given limits.
func NewStore(limits Limits) *Store {
	if limits.MaxLabelNamesPerStream == 0 {
		limits.MaxLabelNamesPerStream = 15
	}
	if limits.MaxLineSize == 0 {
		limits.MaxLineSize = 256 * 1024
	}
	n := parallel.Workers(limits.Shards)
	s := &Store{limits: limits, shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{streams: map[labels.Fingerprint][]*stream{}}
	}
	if limits.ChunkCacheBytes >= 0 {
		s.cache = chunkenc.NewBlockCache(limits.ChunkCacheBytes)
	}
	s.nowNS = func() int64 { return time.Now().UnixNano() }
	s.tenants = map[string]*tenantState{}
	s.defTenant = s.newTenantState(tenant.DefaultID)
	s.tenants[tenant.DefaultID] = s.defTenant
	return s
}

// newTenantState materializes a tenant's quotas from the overrides.
func (s *Store) newTenantState(id string) *tenantState {
	lim := s.limits.TenantOverrides.For(id)
	ts := &tenantState{id: id, maxStreams: int64(lim.MaxStreams)}
	if lim.IngestRateBytes > 0 {
		ts.limiter = tenant.NewRateLimiter(float64(lim.IngestRateBytes), float64(lim.IngestBurstBytes))
	}
	if lim.ChunkCacheShare > 0 && s.cache != nil {
		total := s.limits.ChunkCacheBytes
		if total == 0 {
			total = chunkenc.DefaultCacheBytes
		}
		if b := int(float64(total) * lim.ChunkCacheShare); b > 0 {
			ts.cache = chunkenc.NewBlockCache(b)
		}
	}
	return ts
}

// tenantStateFor returns (creating on first use) the tenant's state. The
// default tenant takes a direct field read — no lock, no map.
func (s *Store) tenantStateFor(id string) *tenantState {
	if id == "" || id == tenant.DefaultID {
		return s.defTenant
	}
	s.tmu.RLock()
	ts := s.tenants[id]
	s.tmu.RUnlock()
	if ts != nil {
		return ts
	}
	s.tmu.Lock()
	defer s.tmu.Unlock()
	if ts = s.tenants[id]; ts == nil {
		ts = s.newTenantState(id)
		s.tenants[id] = ts
	}
	return ts
}

// tenantStatePeek is the read-path lookup: it never creates state, so a
// query for an unknown tenant cannot grow the tenant map (or surface a
// zero row in TenantStats).
func (s *Store) tenantStatePeek(id string) *tenantState {
	if id == "" || id == tenant.DefaultID {
		return s.defTenant
	}
	s.tmu.RLock()
	ts := s.tenants[id]
	s.tmu.RUnlock()
	return ts
}

// cacheFor picks the tenant's private sealed-block cache when one is
// configured, else the shared store cache.
func (s *Store) cacheFor(ts *tenantState) *chunkenc.BlockCache {
	if ts != nil && ts.cache != nil {
		return ts.cache
	}
	return s.cache
}

// Shards returns the number of lock stripes the store runs.
func (s *Store) Shards() int { return len(s.shards) }

// ShardPushes returns, per shard, the number of stream pushes it served —
// the balance check for the fingerprint striping.
func (s *Store) ShardPushes() []int64 {
	out := make([]int64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.pushes.Load()
	}
	return out
}

// CacheStats snapshots the sealed-block decompression cache counters; all
// zeros when the cache is disabled.
func (s *Store) CacheStats() chunkenc.CacheStats { return s.cache.Stats() }

// QueryParallelism reports the number of in-flight query workers.
func (s *Store) QueryParallelism() int64 { return s.queryInFlight.Load() }

func (s *Store) shardFor(fp labels.Fingerprint) *shard {
	return s.shards[uint64(fp)%uint64(len(s.shards))]
}

func (s *Store) shardIndex(fp labels.Fingerprint) int {
	return int(uint64(fp) % uint64(len(s.shards)))
}

// Push ingests a batch of streams. Entries within each stream must be in
// non-decreasing timestamp order; out-of-order entries are dropped and
// counted, mirroring Loki's reject-and-continue behaviour. The first
// validation error is returned after the whole batch is processed.
func (s *Store) Push(batch []PushStream) error {
	return s.PushTenant(tenant.DefaultID, batch)
}

// PushContext is Push under the context's tenant (see tenant.WithID).
func (s *Store) PushContext(ctx context.Context, batch []PushStream) error {
	return s.PushTenant(tenant.ID(ctx), batch)
}

// PushTenant ingests a batch into one tenant's namespace. When the
// tenant has an ingest rate quota, the whole batch is admitted or
// rejected (ErrRateLimited) against its line bytes up front, mirroring
// Loki's per-tenant distributor check.
func (s *Store) PushTenant(id string, batch []PushStream) error {
	ts := s.tenantStateFor(id)
	if ts.limiter != nil {
		var n int64
		for _, ps := range batch {
			for _, e := range ps.Entries {
				n += int64(len(e.Line))
			}
		}
		if !ts.limiter.AllowNLazy(s.nowNS, float64(n)) {
			ts.rateLimited.Add(n)
			return fmt.Errorf("%w (tenant %s)", ErrRateLimited, id)
		}
	}
	var firstErr error
	for _, ps := range batch {
		if err := s.pushStreamTenant(ts, ps); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Store) pushStream(ps PushStream) error {
	return s.pushStreamTenant(s.defTenant, ps)
}

func (s *Store) pushStreamTenant(ts *tenantState, ps PushStream) error {
	if len(ps.Labels) == 0 {
		return ErrEmptyLabels
	}
	if len(ps.Labels) > s.limits.MaxLabelNamesPerStream {
		return fmt.Errorf("%w: %d > %d (%s)", ErrTooManyLabels, len(ps.Labels), s.limits.MaxLabelNamesPerStream, ps.Labels)
	}
	if err := ps.Labels.Validate(); err != nil {
		return err
	}
	if ps.Labels.Has(tenant.ReservedLabel) {
		return ErrReservedLabel
	}
	st, sh, err := s.getOrCreateStream(ts, ps.Labels)
	if err != nil {
		return err
	}
	sh.pushes.Add(1)
	var firstErr error
	var accepted, bytes, dSize, dOOO int64
	// durable: log accepted entries to the shard WAL before the push
	// returns. The append happens under st.mu, which is the checkpoint's
	// drain lock — a snapshot can never land between an in-memory append
	// and its WAL record.
	durable := s.dur != nil && s.dur.armed.Load()
	var walEntries []Entry
	st.mu.Lock()
	for _, e := range ps.Entries {
		if len(e.Line) > s.limits.MaxLineSize {
			dSize++
			if firstErr == nil {
				firstErr = ErrLineTooLong
			}
			continue
		}
		if e.Timestamp < st.lastTS {
			dOOO++
			if firstErr == nil {
				firstErr = chunkenc.ErrOutOfOrder
			}
			continue
		}
		sealed, err := st.append(e, s.limits.ChunkOptions)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if sealed != nil {
			s.maybeSpillSealed(sealed)
		}
		st.lastTS = e.Timestamp
		accepted++
		bytes += int64(len(e.Line))
		if durable {
			walEntries = append(walEntries, e)
		}
	}
	if durable && len(walEntries) > 0 {
		s.dur.d.Append(s.shardIndex(st.fp), appendEntries(st.walPrefixFor(), walEntries))
	}
	st.mu.Unlock()
	sh.entries.Add(accepted)
	sh.rawBytes.Add(bytes)
	ts.entries.Add(accepted)
	ts.bytes.Add(bytes)
	if dSize > 0 {
		sh.discardedSize.Add(dSize)
	}
	if dOOO > 0 {
		sh.discardedOOO.Add(dOOO)
	}
	return firstErr
}

// append adds one entry to the stream's head chunk, cutting a new head
// when the old one fills. It returns the just-sealed chunk (nil normally)
// so the durable store can spill it to disk.
func (st *stream) append(e Entry, opt chunkenc.Options) (*chunkenc.Chunk, error) {
	if st.head == nil {
		st.head = chunkenc.New(opt)
	}
	err := st.head.Append(chunkenc.Entry{Timestamp: e.Timestamp, Line: e.Line})
	if err == chunkenc.ErrChunkFull {
		var sealed *chunkenc.Chunk
		_ = st.head.Close()
		st.chunks = append(st.chunks, st.head)
		sealed = st.head
		st.head = chunkenc.New(opt)
		err = st.head.Append(chunkenc.Entry{Timestamp: e.Timestamp, Line: e.Line})
		return sealed, err
	}
	return nil, err
}

func (s *Store) getOrCreateStream(ts *tenantState, ls labels.Labels) (*stream, *shard, error) {
	fp := tenant.Fingerprint(ts.id, ls)
	sh := s.shardFor(fp)
	sh.mu.RLock()
	for _, st := range sh.streams[fp] {
		if st.tenant == ts.id && st.labels.Equal(ls) {
			sh.mu.RUnlock()
			return st, sh, nil
		}
	}
	sh.mu.RUnlock()

	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, st := range sh.streams[fp] {
		if st.tenant == ts.id && st.labels.Equal(ls) {
			return st, sh, nil
		}
	}
	// Reserve a slot before creating: the adds are atomic across shards,
	// so concurrent creators can never overshoot the store-wide or the
	// per-tenant MaxStreams; a tripped tenant limit rolls the store-wide
	// reservation back.
	if n := s.streamCount.Add(1); s.limits.MaxStreams > 0 && n > int64(s.limits.MaxStreams) {
		s.streamCount.Add(-1)
		return nil, nil, ErrMaxStreams
	}
	if n := ts.streams.Add(1); ts.maxStreams > 0 && n > ts.maxStreams {
		ts.streams.Add(-1)
		s.streamCount.Add(-1)
		return nil, nil, fmt.Errorf("%w (tenant %s)", ErrMaxStreams, ts.id)
	}
	st := &stream{labels: ls.Copy(), fp: fp, tenant: ts.id, lastTS: -1 << 62}
	sh.streams[fp] = append(sh.streams[fp], st)
	sh.ordered = append(sh.ordered, st)
	return st, sh, nil
}

// SelectedStream is a query result stream: labels plus matching entries in
// timestamp order.
type SelectedStream struct {
	Labels  labels.Labels
	Entries []Entry
}

// Select returns, for every stream matching the selector, its entries in
// [mint, maxt] (inclusive). Streams with no matching entries are omitted.
// Results are ordered by stream label string for determinism. Candidate
// streams are queried in parallel on a bounded worker pool; sealed-block
// decompression goes through the store's block cache, so re-reading the
// same window (ruler and vmalert do, every tick) skips the inflate work.
func (s *Store) Select(sel []*labels.Matcher, mint, maxt int64) ([]SelectedStream, error) {
	return s.SelectContext(context.Background(), sel, mint, maxt)
}

// SelectContext is Select with cancellation and per-query statistics: a
// stats.Context carried by ctx (if any) accumulates bytes/lines scanned,
// chunk and cache work and shard fan-out. Each worker counts into a
// private stats.Worker shard and flushes it at chunk granularity, so the
// byte budget and a kill are both observed mid-scan without per-line
// atomic traffic. A cancelled ctx stops the scan and returns its cause.
func (s *Store) SelectContext(ctx context.Context, sel []*labels.Matcher, mint, maxt int64) ([]SelectedStream, error) {
	sc := stats.FromContext(ctx)
	started := time.Now()
	tid := tenant.ID(ctx)
	sel, shardIdx, shardOf, err := splitShardMatcher(sel)
	if err != nil {
		return nil, err
	}
	var cand []*stream
	shardsTouched := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n := len(cand)
		for _, st := range sh.ordered {
			if st.tenant != tid {
				continue
			}
			if shardOf > 0 && uint64(st.fp)%uint64(shardOf) != uint64(shardIdx) {
				continue
			}
			if labels.MatchLabels(st.labels, sel) {
				cand = append(cand, st)
			}
		}
		sh.mu.RUnlock()
		if len(cand) > n {
			shardsTouched++
		}
	}
	sc.AddShardsTouched(int64(shardsTouched))
	sc.AddStreams(int64(len(cand)))

	qcache := s.cacheFor(s.tenantStatePeek(tid))
	results := make([][]Entry, len(cand))
	errs := make([]error, len(cand))
	parallel.Do(len(cand), parallel.Workers(0), &s.queryInFlight, func(i int) {
		results[i], errs[i] = cand[i].query(ctx, mint, maxt, qcache, sc)
	})
	sc.AddSpan("loki.select", started, time.Now(),
		fmt.Sprintf("%d streams over %d shards", len(cand), shardsTouched))
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	out := make([]SelectedStream, 0, len(cand))
	for i, st := range cand {
		if errs[i] != nil {
			return nil, errs[i]
		}
		if len(results[i]) > 0 {
			out = append(out, SelectedStream{Labels: st.labels, Entries: results[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out, nil
}

// splitShardMatcher extracts a __shard__="i_of_n" matcher from sel,
// returning the remaining matchers and the (i, n) partition. Any n > 0
// partitions streams disjointly via fp mod n, so the partition need not
// match the store's own stripe count. Without a shard matcher it
// returns sel unchanged and n = 0.
func splitShardMatcher(sel []*labels.Matcher) ([]*labels.Matcher, uint64, uint64, error) {
	found := false
	var idx, of uint64
	for _, m := range sel {
		if m.Name != ShardLabel {
			continue
		}
		if m.Type != labels.MatchEqual {
			return nil, 0, 0, fmt.Errorf("loki: %s requires an equality matcher", ShardLabel)
		}
		if _, err := fmt.Sscanf(m.Value, "%d_of_%d", &idx, &of); err != nil || of == 0 || idx >= of {
			return nil, 0, 0, fmt.Errorf("loki: bad %s value %q (want \"i_of_n\")", ShardLabel, m.Value)
		}
		found = true
	}
	if !found {
		return sel, 0, 0, nil
	}
	rest := make([]*labels.Matcher, 0, len(sel)-1)
	for _, m := range sel {
		if m.Name != ShardLabel {
			rest = append(rest, m)
		}
	}
	return rest, idx, of, nil
}

// queryCheckEvery is how many entries a stream scan processes between
// cancellation checks: small enough that kills and byte budgets stop a
// scan mid-chunk, large enough to keep the check off the per-line path.
const queryCheckEvery = 1024

func (st *stream) query(ctx context.Context, mint, maxt int64, cache *chunkenc.BlockCache, sc *stats.Context) ([]Entry, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	var w stats.Worker
	var out []Entry
	sinceCheck := 0
	collect := func(c *chunkenc.Chunk) error {
		cmin, cmax, ok := c.Bounds()
		if !ok || cmax < mint || cmin > maxt {
			return nil
		}
		w.ChunksOpened++
		var is chunkenc.IterStats
		it := c.StatsIterator(cache, mint, maxt, &is)
		for it.Next() {
			e := it.At()
			out = append(out, Entry{Timestamp: e.Timestamp, Line: e.Line})
			w.LinesProcessed++
			w.BytesProcessed += int64(len(e.Line))
			if sinceCheck++; sinceCheck >= queryCheckEvery {
				sinceCheck = 0
				w.BlocksDecompressed += is.BlocksDecompressed
				w.DecompressedBytes += is.DecompressedBytes
				w.CacheHits += is.CacheHits
				w.CacheMisses += is.CacheMisses
				is = chunkenc.IterStats{}
				w.FlushTo(sc)
				if err := ctx.Err(); err != nil {
					return context.Cause(ctx)
				}
			}
		}
		w.BlocksDecompressed += is.BlocksDecompressed
		w.DecompressedBytes += is.DecompressedBytes
		w.CacheHits += is.CacheHits
		w.CacheMisses += is.CacheMisses
		return it.Err()
	}
	for _, c := range st.chunks {
		if err := collect(c); err != nil {
			return nil, err
		}
		w.FlushTo(sc)
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
	}
	if st.head != nil {
		if err := collect(st.head); err != nil {
			return nil, err
		}
	}
	w.FlushTo(sc)
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	return out, nil
}

// Series returns the label sets of the default tenant's streams matching
// the selector.
func (s *Store) Series(sel []*labels.Matcher) []labels.Labels {
	return s.SeriesTenant(tenant.DefaultID, sel)
}

// SeriesTenant is Series within one tenant's namespace.
func (s *Store) SeriesTenant(id string, sel []*labels.Matcher) []labels.Labels {
	var out []labels.Labels
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.ordered {
			if st.tenant != id {
				continue
			}
			if labels.MatchLabels(st.labels, sel) {
				out = append(out, st.labels)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// LabelValues returns the sorted distinct values of a label name across the
// default tenant's streams; used by dashboards for variable dropdowns.
func (s *Store) LabelValues(name string) []string {
	return s.LabelValuesTenant(tenant.DefaultID, name)
}

// LabelValuesTenant is LabelValues within one tenant's namespace.
func (s *Store) LabelValuesTenant(id, name string) []string {
	set := map[string]bool{}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, st := range sh.ordered {
			if st.tenant != id {
				continue
			}
			if v := st.labels.Get(name); v != "" {
				set[v] = true
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Stats is a snapshot of store counters.
type Stats struct {
	Streams          int
	Chunks           int
	Entries          int64
	RawBytes         int64
	CompressedBytes  int64
	DiscardedOOO     int64
	DiscardedTooLong int64
}

// Stats returns current counters. CompressedBytes counts sealed blocks and
// raw head data, so the compression ratio converges as chunks fill.
func (s *Store) Stats() Stats {
	st := Stats{Streams: int(s.streamCount.Load())}
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, str := range sh.ordered {
			str.mu.Lock()
			st.Chunks += len(str.chunks)
			if str.head != nil && str.head.Entries() > 0 {
				st.Chunks++
			}
			for _, c := range str.chunks {
				st.CompressedBytes += int64(c.CompressedBytes())
			}
			if str.head != nil {
				st.CompressedBytes += int64(str.head.CompressedBytes())
			}
			str.mu.Unlock()
		}
		sh.mu.RUnlock()
		st.Entries += sh.entries.Load()
		st.RawBytes += sh.rawBytes.Load()
		st.DiscardedOOO += sh.discardedOOO.Load()
		st.DiscardedTooLong += sh.discardedSize.Load()
	}
	return st
}

// TenantStat is one tenant's slice of the ingest accounting.
type TenantStat struct {
	Tenant           string
	Streams          int64
	Entries          int64
	RawBytes         int64
	RateLimitedBytes int64
}

// TenantStats snapshots per-tenant counters, sorted by tenant ID.
func (s *Store) TenantStats() []TenantStat {
	s.tmu.RLock()
	out := make([]TenantStat, 0, len(s.tenants))
	for _, ts := range s.tenants {
		out = append(out, TenantStat{
			Tenant:           ts.id,
			Streams:          ts.streams.Load(),
			Entries:          ts.entries.Load(),
			RawBytes:         ts.bytes.Load(),
			RateLimitedBytes: ts.rateLimited.Load(),
		})
	}
	s.tmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Flush seals the open head block of every stream so that Stats reports
// fully-compressed sizes; ingestion may continue afterwards. Sealing
// compresses, so streams are flushed on the worker pool.
func (s *Store) Flush() error {
	var streams []*stream
	for _, sh := range s.shards {
		sh.mu.RLock()
		streams = append(streams, sh.ordered...)
		sh.mu.RUnlock()
	}
	errs := make([]error, len(streams))
	parallel.Do(len(streams), parallel.Workers(0), &s.queryInFlight, func(i int) {
		st := streams[i]
		st.mu.Lock()
		if st.head != nil {
			errs[i] = st.head.Close()
		}
		st.mu.Unlock()
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DeleteBefore drops sealed chunks whose max timestamp is older than ts and
// removes streams that become empty. It implements retention: the paper's
// OMNI keeps "up to two years of operational data immediately available".
// It returns the number of chunks dropped.
func (s *Store) DeleteBefore(ts int64) int {
	dropped := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		keptStreams := sh.ordered[:0]
		for _, st := range sh.ordered {
			tcache := s.cacheFor(s.tenantStateFor(st.tenant))
			st.mu.Lock()
			kept := st.chunks[:0]
			for _, c := range st.chunks {
				if _, maxt, ok := c.Bounds(); ok && maxt < ts {
					dropped++
					tcache.DropChunk(c)
					// The spill file (if any) is left for the next
					// checkpoint's GC: an in-flight query that captured
					// the chunk before retention ran may still fault
					// payloads from it, so unlinking here would fail that
					// query with ENOENT.
					continue
				}
				kept = append(kept, c)
			}
			st.chunks = kept
			if st.head != nil {
				if _, maxt, ok := st.head.Bounds(); ok && maxt < ts {
					dropped++
					tcache.DropChunk(st.head)
					st.head = nil
				}
			}
			empty := len(st.chunks) == 0 && (st.head == nil || st.head.Entries() == 0)
			st.mu.Unlock()
			if empty {
				// remove from fingerprint map and release the stream slot
				list := sh.streams[st.fp]
				for i, other := range list {
					if other == st {
						sh.streams[st.fp] = append(list[:i], list[i+1:]...)
						break
					}
				}
				if len(sh.streams[st.fp]) == 0 {
					delete(sh.streams, st.fp)
				}
				s.streamCount.Add(-1)
				s.tenantStateFor(st.tenant).streams.Add(-1)
				continue
			}
			keptStreams = append(keptStreams, st)
		}
		sh.ordered = keptStreams
		sh.mu.Unlock()
	}
	return dropped
}
