// Package tsdb implements an in-process time-series database in the mould
// of VictoriaMetrics: label-indexed series of (timestamp, value) samples.
// It is the metrics half of the paper's dual pipeline ("as a rule, we send
// metrics to VictoriaMetrics ... and logs to Loki").
//
// Like the log store, the head is sharded: series are striped over
// lock-striped shards by label fingerprint (GOMAXPROCS shards by default)
// and append statistics are atomics, so concurrent scrape targets append
// without serialising on a DB-wide mutex.
//
// Timestamps are Unix milliseconds, the Prometheus convention (the log
// store uses nanoseconds, the Loki convention).
package tsdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/parallel"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// Sample is one (timestamp, value) pair. T is Unix milliseconds.
type Sample struct {
	T int64
	V float64
}

// MetricNameLabel is the reserved label holding the metric name.
const MetricNameLabel = "__name__"

// ErrOutOfOrder is returned when appending a sample older than the series
// head. The sample is dropped.
var ErrOutOfOrder = errors.New("tsdb: out-of-order sample")

// ErrMaxSeries rejects a new series when the tenant's series quota is
// exhausted.
var ErrMaxSeries = errors.New("tsdb: per-tenant series limit exceeded")

type series struct {
	labels labels.Labels
	fp     labels.Fingerprint
	// tenant namespaces the series, as in the log store.
	tenant string
	mu     sync.Mutex
	data   []Sample
	// walPrefix caches the series' encoded WAL record prefix (type byte
	// plus labels) for the durable append path.
	walPrefix []byte
}

// dbShard is one lock stripe of the head: its own series index.
type dbShard struct {
	mu      sync.RWMutex
	series  map[labels.Fingerprint][]*series
	ordered []*series
}

// DB is an in-memory TSDB safe for concurrent use.
type DB struct {
	obsOnce sync.Once
	obsReg  *obs.Registry

	shards []*dbShard

	seriesCount   atomic.Int64
	appends       atomic.Int64
	dropped       atomic.Int64
	queryInFlight atomic.Int64

	// dur is the durability layer (WAL + checkpoint); nil for a
	// memory-only DB. See durable.go.
	dur *durability

	// Tenant namespaces; defTenant is the lock-free default-tenant fast
	// path, overrides resolve per-tenant series quotas.
	overrides *tenant.Overrides
	defTenant *tenantState
	tmu       sync.RWMutex
	tenants   map[string]*tenantState
}

// tenantState is one tenant's slice of the head: exact series accounting
// against its quota plus append counters for the tenant metric families.
type tenantState struct {
	id        string
	maxSeries int64
	series    atomic.Int64
	samples   atomic.Int64
}

// New returns an empty DB with GOMAXPROCS shards.
func New() *DB { return NewSharded(0) }

// NewSharded returns an empty DB striped over n shards; n <= 0 takes
// GOMAXPROCS.
func NewSharded(n int) *DB {
	n = parallel.Workers(n)
	db := &DB{shards: make([]*dbShard, n)}
	for i := range db.shards {
		db.shards[i] = &dbShard{series: map[labels.Fingerprint][]*series{}}
	}
	db.tenants = map[string]*tenantState{}
	db.defTenant = db.newTenantState(tenant.DefaultID)
	db.tenants[tenant.DefaultID] = db.defTenant
	return db
}

// SetTenantOverrides installs per-tenant series quotas. Call during
// setup, before any tenant's first append: states already materialized
// keep their limits.
func (db *DB) SetTenantOverrides(o *tenant.Overrides) {
	db.overrides = o
	db.defTenant.maxSeries = int64(o.For(tenant.DefaultID).MaxStreams)
}

func (db *DB) newTenantState(id string) *tenantState {
	lim := db.overrides.For(id)
	return &tenantState{id: id, maxSeries: int64(lim.MaxStreams)}
}

func (db *DB) tenantStateFor(id string) *tenantState {
	if id == "" || id == tenant.DefaultID {
		return db.defTenant
	}
	db.tmu.RLock()
	ts := db.tenants[id]
	db.tmu.RUnlock()
	if ts != nil {
		return ts
	}
	db.tmu.Lock()
	defer db.tmu.Unlock()
	if ts = db.tenants[id]; ts == nil {
		ts = db.newTenantState(id)
		db.tenants[id] = ts
	}
	return ts
}

// Shards returns the number of lock stripes the DB runs.
func (db *DB) Shards() int { return len(db.shards) }

// QueryParallelism reports the number of in-flight query workers.
func (db *DB) QueryParallelism() int64 { return db.queryInFlight.Load() }

func (db *DB) shardFor(fp labels.Fingerprint) *dbShard {
	return db.shards[uint64(fp)%uint64(len(db.shards))]
}

func (db *DB) shardIndex(fp labels.Fingerprint) int {
	return int(uint64(fp) % uint64(len(db.shards)))
}

// Append adds one sample to the series identified by ls. ls must include
// the metric name under MetricNameLabel (use Labels.With).
func (db *DB) Append(ls labels.Labels, t int64, v float64) error {
	return db.AppendTenant(tenant.DefaultID, ls, t, v)
}

// AppendTenant is Append into one tenant's namespace, enforcing the
// tenant's series quota.
func (db *DB) AppendTenant(id string, ls labels.Labels, t int64, v float64) error {
	if ls.Get(MetricNameLabel) == "" {
		return fmt.Errorf("tsdb: missing %s label in %s", MetricNameLabel, ls)
	}
	ts := db.tenantStateFor(id)
	s, err := db.getOrCreate(ts, ls)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.data); n > 0 && t < s.data[n-1].T {
		db.dropped.Add(1)
		return ErrOutOfOrder
	}
	if n := len(s.data); n > 0 && t == s.data[n-1].T {
		s.data[n-1].V = v // overwrite duplicate timestamp, like VM
	} else {
		s.data = append(s.data, Sample{T: t, V: v})
	}
	// durable: log the accepted sample while still under s.mu, the
	// checkpoint's drain lock.
	if db.dur != nil && db.dur.armed.Load() {
		db.dur.d.Append(db.shardIndex(s.fp), appendSample(s.walPrefixFor(), t, v))
	}
	db.appends.Add(1)
	ts.samples.Add(1)
	return nil
}

// AppendMetric is a convenience wrapper building the label set from a
// metric name and extra labels.
func (db *DB) AppendMetric(name string, extra labels.Labels, t int64, v float64) error {
	return db.Append(extra.With(MetricNameLabel, name), t, v)
}

// AppendMetricTenant is AppendMetric into one tenant's namespace.
func (db *DB) AppendMetricTenant(id, name string, extra labels.Labels, t int64, v float64) error {
	return db.AppendTenant(id, extra.With(MetricNameLabel, name), t, v)
}

func (db *DB) getOrCreate(ts *tenantState, ls labels.Labels) (*series, error) {
	fp := tenant.Fingerprint(ts.id, ls)
	sh := db.shardFor(fp)
	sh.mu.RLock()
	for _, s := range sh.series[fp] {
		if s.tenant == ts.id && s.labels.Equal(ls) {
			sh.mu.RUnlock()
			return s, nil
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, s := range sh.series[fp] {
		if s.tenant == ts.id && s.labels.Equal(ls) {
			return s, nil
		}
	}
	// Reserve-then-rollback: the atomic add keeps the tenant quota exact
	// under concurrent creators across shards.
	if n := ts.series.Add(1); ts.maxSeries > 0 && n > ts.maxSeries {
		ts.series.Add(-1)
		return nil, fmt.Errorf("%w (tenant %s)", ErrMaxSeries, ts.id)
	}
	s := &series{labels: ls.Copy(), fp: fp, tenant: ts.id}
	sh.series[fp] = append(sh.series[fp], s)
	sh.ordered = append(sh.ordered, s)
	db.seriesCount.Add(1)
	return s, nil
}

// candidates returns every series of one tenant matching all matchers,
// across shards, plus the number of shards that held at least one match.
func (db *DB) candidates(tid string, sel []*labels.Matcher) ([]*series, int) {
	var cand []*series
	touched := 0
	for _, sh := range db.shards {
		sh.mu.RLock()
		n := len(cand)
		for _, s := range sh.ordered {
			if s.tenant != tid {
				continue
			}
			if labels.MatchLabels(s.labels, sel) {
				cand = append(cand, s)
			}
		}
		sh.mu.RUnlock()
		if len(cand) > n {
			touched++
		}
	}
	return cand, touched
}

// sampleCost is the nominal scanned-byte cost of one (int64, float64)
// sample, used for the per-query byte accounting and scan budget.
const sampleCost = 16

// SeriesData is a query result: a label set and its samples in range.
type SeriesData struct {
	Labels  labels.Labels
	Samples []Sample
}

// Select returns samples in [mint, maxt] (ms, inclusive) for every series
// matching all matchers, ordered by label string. Candidate series are
// copied out in parallel on a bounded worker pool.
func (db *DB) Select(sel []*labels.Matcher, mint, maxt int64) []SeriesData {
	out, _ := db.SelectContext(context.Background(), sel, mint, maxt)
	return out
}

// SelectContext is Select with cancellation and per-query statistics: a
// stats.Context carried by ctx (if any) counts copied samples as scanned
// lines (at sampleCost bytes each, so the scan budget covers metric
// queries too) plus series and shard fan-out. A cancelled ctx stops the
// scan and returns its cause.
func (db *DB) SelectContext(ctx context.Context, sel []*labels.Matcher, mint, maxt int64) ([]SeriesData, error) {
	sc := stats.FromContext(ctx)
	started := time.Now()
	cand, touched := db.candidates(tenant.ID(ctx), sel)
	sc.AddShardsTouched(int64(touched))
	sc.AddStreams(int64(len(cand)))
	results := make([][]Sample, len(cand))
	parallel.Do(len(cand), parallel.Workers(0), &db.queryInFlight, func(i int) {
		if ctx.Err() != nil {
			return
		}
		s := cand[i]
		s.mu.Lock()
		lo := sort.Search(len(s.data), func(j int) bool { return s.data[j].T >= mint })
		hi := sort.Search(len(s.data), func(j int) bool { return s.data[j].T > maxt })
		if lo < hi {
			samples := make([]Sample, hi-lo)
			copy(samples, s.data[lo:hi])
			results[i] = samples
		}
		s.mu.Unlock()
		if n := len(results[i]); n > 0 {
			var w stats.Worker
			w.LinesProcessed = int64(n)
			w.BytesProcessed = int64(n) * sampleCost
			w.FlushTo(sc)
		}
	})
	sc.AddSpan("tsdb.select", started, time.Now(),
		fmt.Sprintf("%d series over %d shards", len(cand), touched))
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	out := make([]SeriesData, 0, len(cand))
	for i, s := range cand {
		if len(results[i]) > 0 {
			out = append(out, SeriesData{Labels: s.labels, Samples: results[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out, nil
}

// LatestBefore returns, for each matching series, the newest sample at or
// before ts but not older than ts-lookback. This implements PromQL instant
// vector semantics.
func (db *DB) LatestBefore(sel []*labels.Matcher, ts, lookbackMS int64) []SeriesData {
	return db.LatestBeforeContext(context.Background(), sel, ts, lookbackMS)
}

// LatestBeforeContext is LatestBefore within the context's tenant
// namespace — the PromQL instant path.
func (db *DB) LatestBeforeContext(ctx context.Context, sel []*labels.Matcher, ts, lookbackMS int64) []SeriesData {
	cand, _ := db.candidates(tenant.ID(ctx), sel)
	results := make([][]Sample, len(cand))
	parallel.Do(len(cand), parallel.Workers(0), &db.queryInFlight, func(i int) {
		s := cand[i]
		s.mu.Lock()
		hi := sort.Search(len(s.data), func(j int) bool { return s.data[j].T > ts })
		if hi > 0 && s.data[hi-1].T >= ts-lookbackMS {
			results[i] = []Sample{s.data[hi-1]}
		}
		s.mu.Unlock()
	})
	out := make([]SeriesData, 0, len(cand))
	for i, s := range cand {
		if len(results[i]) > 0 {
			out = append(out, SeriesData{Labels: s.labels, Samples: results[i]})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out
}

// Series returns label sets of the default tenant's matching series.
func (db *DB) Series(sel []*labels.Matcher) []labels.Labels {
	return db.SeriesTenant(tenant.DefaultID, sel)
}

// SeriesTenant is Series within one tenant's namespace.
func (db *DB) SeriesTenant(id string, sel []*labels.Matcher) []labels.Labels {
	var out []labels.Labels
	cand, _ := db.candidates(id, sel)
	for _, s := range cand {
		out = append(out, s.labels)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// LabelValues returns distinct values of a label across the default
// tenant's series.
func (db *DB) LabelValues(name string) []string {
	return db.LabelValuesTenant(tenant.DefaultID, name)
}

// LabelValuesTenant is LabelValues within one tenant's namespace.
func (db *DB) LabelValuesTenant(id, name string) []string {
	set := map[string]bool{}
	for _, sh := range db.shards {
		sh.mu.RLock()
		for _, s := range sh.ordered {
			if s.tenant != id {
				continue
			}
			if v := s.labels.Get(name); v != "" {
				set[v] = true
			}
		}
		sh.mu.RUnlock()
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DeleteBefore drops samples older than ts (ms) and removes series that
// become empty. It returns the number of samples dropped.
func (db *DB) DeleteBefore(ts int64) int {
	dropped := 0
	for _, sh := range db.shards {
		sh.mu.Lock()
		kept := sh.ordered[:0]
		for _, s := range sh.ordered {
			s.mu.Lock()
			lo := sort.Search(len(s.data), func(i int) bool { return s.data[i].T >= ts })
			dropped += lo
			if lo > 0 {
				s.data = append([]Sample(nil), s.data[lo:]...)
			}
			empty := len(s.data) == 0
			s.mu.Unlock()
			if empty {
				list := sh.series[s.fp]
				for i, other := range list {
					if other == s {
						sh.series[s.fp] = append(list[:i], list[i+1:]...)
						break
					}
				}
				if len(sh.series[s.fp]) == 0 {
					delete(sh.series, s.fp)
				}
				db.seriesCount.Add(-1)
				db.tenantStateFor(s.tenant).series.Add(-1)
				continue
			}
			kept = append(kept, s)
		}
		sh.ordered = kept
		sh.mu.Unlock()
	}
	return dropped
}

// Stats reports counters.
type Stats struct {
	Series  int
	Samples int64
	Dropped int64
}

// Stats returns a snapshot of DB counters.
func (db *DB) Stats() Stats {
	return Stats{
		Series:  int(db.seriesCount.Load()),
		Samples: db.appends.Load(),
		Dropped: db.dropped.Load(),
	}
}

// TenantStat is one tenant's slice of the head accounting.
type TenantStat struct {
	Tenant  string
	Series  int64
	Samples int64
}

// TenantStats snapshots per-tenant counters, sorted by tenant ID.
func (db *DB) TenantStats() []TenantStat {
	db.tmu.RLock()
	out := make([]TenantStat, 0, len(db.tenants))
	for _, ts := range db.tenants {
		out = append(out, TenantStat{Tenant: ts.id, Series: ts.series.Load(), Samples: ts.samples.Load()})
	}
	db.tmu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
