package kafka

import (
	"errors"
	"sync"
	"time"
)

// Consumer is a convenience wrapper implementing the subscribe/poll/commit
// loop used by the telemetry API server and the K3s-pod-style clients.
//
// Two delivery modes:
//
//   - auto-commit (NewConsumer): offsets are committed as messages are
//     returned — at-most-once, fine for high-rate sensor telemetry where a
//     lost sample is cheaper than a duplicate.
//   - manual commit (NewManualConsumer): Poll advances only the in-memory
//     position; nothing is committed until CommitPolled. A consumer that
//     dies mid-batch re-delivers from the last commit — at-least-once, what
//     the event topic needs (a dropped leak event is a missed incident).
type Consumer struct {
	b          *Broker
	group      string
	member     string
	topics     []string
	autoCommit bool

	mu        sync.Mutex
	closed    bool
	positions map[string]int64 // "topic/partition" -> next offset to poll
}

// NewConsumer joins the group and subscribes to the topics in auto-commit
// mode.
func NewConsumer(b *Broker, group, member string, topics ...string) *Consumer {
	b.JoinGroup(group, member)
	return &Consumer{b: b, group: group, member: member, topics: topics,
		autoCommit: true, positions: map[string]int64{}}
}

// NewManualConsumer joins the group in manual-commit mode: the caller owns
// the commit point via CommitPolled.
func NewManualConsumer(b *Broker, group, member string, topics ...string) *Consumer {
	c := NewConsumer(b, group, member, topics...)
	c.autoCommit = false
	return c
}

// Poll fetches up to max messages across the member's assigned partitions,
// waiting up to timeout if none are immediately available. In auto-commit
// mode offsets are committed as messages are returned; in manual mode the
// in-memory position advances and CommitPolled persists it.
//
// Poll self-heals offsets orphaned by retention: when a concurrent
// TruncateBefore moves the low watermark past the read position between
// the watermark check and the fetch, the resulting ErrOffsetOutOfRange is
// absorbed by clamping to the new low watermark instead of surfacing — the
// messages are gone either way, and a monitoring consumer must keep
// draining what remains.
func (c *Consumer) Poll(max int, timeout time.Duration) ([]Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil
	}
	c.mu.Unlock()

	var out []Message
	grab := func(wait time.Duration) error {
		for _, topic := range c.topics {
			parts, err := c.b.Assignment(c.group, c.member, topic)
			if err != nil {
				return err
			}
			for _, p := range parts {
				if len(out) >= max {
					return nil
				}
				off := c.position(topic, p)
				low, _, err := c.b.Watermarks(topic, p)
				if err != nil {
					return err
				}
				if off < low {
					off = low // skip messages lost to retention
				}
				fetch := func(from int64) ([]Message, error) {
					if wait > 0 {
						return c.b.FetchWait(topic, p, from, max-len(out), wait)
					}
					return c.b.Fetch(topic, p, from, max-len(out))
				}
				msgs, err := fetch(off)
				if errors.Is(err, ErrOffsetOutOfRange) {
					// Retention truncated under us; clamp and refetch.
					low, _, werr := c.b.Watermarks(topic, p)
					if werr != nil {
						return werr
					}
					off = low
					msgs, err = fetch(off)
				}
				if err != nil {
					return err
				}
				if len(msgs) > 0 {
					next := msgs[len(msgs)-1].Offset + 1
					c.advance(topic, p, next)
					if c.autoCommit {
						c.b.Commit(c.group, topic, p, next)
					}
					out = append(out, msgs...)
				}
			}
		}
		return nil
	}
	if err := grab(0); err != nil {
		return nil, err
	}
	if len(out) == 0 && timeout > 0 {
		// One blocking pass distributed over the first assigned partition.
		if err := grab(timeout); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// position returns the next offset to poll: the in-memory position when
// one exists, else the group's committed offset.
func (c *Consumer) position(topic string, part int) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if off, ok := c.positions[commitKey(topic, part)]; ok {
		return off
	}
	return c.b.Committed(c.group, topic, part)
}

func (c *Consumer) advance(topic string, part int, next int64) {
	c.mu.Lock()
	c.positions[commitKey(topic, part)] = next
	c.mu.Unlock()
}

// CommitPolled persists every polled-but-uncommitted position to the
// broker. Call it after the polled batch is durably handed off; a crash
// before the call re-delivers the batch to the next group member.
func (c *Consumer) CommitPolled() {
	c.mu.Lock()
	positions := make(map[string]int64, len(c.positions))
	for k, v := range c.positions {
		positions[k] = v
	}
	c.mu.Unlock()
	for key, next := range positions {
		topic, part, ok := splitCommitKey(key)
		if !ok {
			continue
		}
		c.b.Commit(c.group, topic, part, next)
	}
}

// AutoCommit reports the delivery mode.
func (c *Consumer) AutoCommit() bool { return c.autoCommit }

// Close leaves the consumer group. Uncommitted manual-mode positions are
// dropped — deliberately, so the next member re-reads from the commit.
func (c *Consumer) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.b.LeaveGroup(c.group, c.member)
}
