// Package slack implements the Slack side of the paper's alerting path: a
// webhook receiver standing in for slack.com, and an Alertmanager receiver
// that formats alerts into rich messages ("the Slack alert is enriched
// with different types of fonts and bullet points", Fig. 6/9) and posts
// them to the webhook.
package slack

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/obs"
	"shastamon/internal/resilience"
)

// Message is the webhook payload: mrkdwn text plus optional attachments.
type Message struct {
	Channel     string       `json:"channel,omitempty"`
	Text        string       `json:"text"`
	Attachments []Attachment `json:"attachments,omitempty"`
}

// Attachment is a color-coded block with fields.
type Attachment struct {
	Color  string  `json:"color,omitempty"` // "danger", "warning", "good"
	Title  string  `json:"title,omitempty"`
	Text   string  `json:"text,omitempty"`
	Fields []Field `json:"fields,omitempty"`
}

// Field is one short key/value pair in an attachment.
type Field struct {
	Title string `json:"title"`
	Value string `json:"value"`
	Short bool   `json:"short"`
}

// Webhook is an in-process stand-in for Slack's incoming-webhook endpoint.
type Webhook struct {
	mu       sync.Mutex
	messages []Message
}

// NewWebhook returns an empty webhook receiver.
func NewWebhook() *Webhook { return &Webhook{} }

// Handler accepts webhook POSTs at any path.
func (wh *Webhook) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var m Message
		if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
			http.Error(w, "invalid_payload", http.StatusBadRequest)
			return
		}
		if m.Text == "" && len(m.Attachments) == 0 {
			http.Error(w, "no_text", http.StatusBadRequest)
			return
		}
		wh.mu.Lock()
		wh.messages = append(wh.messages, m)
		wh.mu.Unlock()
		fmt.Fprint(w, "ok")
	})
}

// Messages returns all received messages.
func (wh *Webhook) Messages() []Message {
	wh.mu.Lock()
	defer wh.mu.Unlock()
	return append([]Message(nil), wh.messages...)
}

// Reset clears received messages.
func (wh *Webhook) Reset() {
	wh.mu.Lock()
	defer wh.mu.Unlock()
	wh.messages = nil
}

// Notifier posts Alertmanager notifications to a Slack webhook. It
// implements alertmanager.Receiver. Transient failures (network errors,
// 5xx) are retried under an exponential-backoff policy, and a circuit
// breaker fails fast while the webhook is down so a Slack outage cannot
// stall alert dispatch to the other receivers.
type Notifier struct {
	name    string
	url     string
	channel string
	client  *http.Client

	policy  resilience.Policy
	breaker *resilience.Breaker

	reg     *obs.Registry
	posted  *obs.Counter
	failed  *obs.Counter
	retries *obs.Counter
}

// NewNotifier returns a receiver named name posting to url.
func NewNotifier(name, url, channel string, client *http.Client) *Notifier {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	n := &Notifier{name: name, url: url, channel: channel, client: client, reg: obs.NewRegistry()}
	n.policy = resilience.Policy{
		MaxAttempts: 3,
		Initial:     10 * time.Millisecond,
		Max:         250 * time.Millisecond,
		Retriable:   retriable,
	}
	n.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Name: "slack", FailureThreshold: 3, OpenFor: 30 * time.Second,
	})
	n.posted = n.reg.Counter(obs.Namespace+"slack_posts_total",
		"Messages successfully posted to the Slack webhook.")
	n.failed = n.reg.Counter(obs.Namespace+"slack_post_failures_total",
		"Messages that failed after retry.")
	n.retries = n.reg.Counter(obs.Namespace+"slack_post_retries_total",
		"Transient post failures that were retried.")
	n.reg.GaugeFunc(obs.Namespace+"slack_breaker_state",
		"Slack webhook circuit breaker (0 closed, 1 half-open, 2 open).",
		n.breaker.StateValue)
	return n
}

// Metrics exposes the notifier's self-monitoring registry.
func (n *Notifier) Metrics() *obs.Registry { return n.reg }

// Name implements alertmanager.Receiver.
func (n *Notifier) Name() string { return n.name }

// Breaker exposes the webhook circuit breaker (the pipeline unites every
// breaker into the shastamon_breaker_state family).
func (n *Notifier) Breaker() *resilience.Breaker { return n.breaker }

// SetClock injects the pipeline clock so the breaker's open window tracks
// simulated time in experiments.
func (n *Notifier) SetClock(now func() time.Time) { n.breaker.SetNow(now) }

// SetRetryPolicy overrides the post retry policy (chaos tests tighten it).
func (n *Notifier) SetRetryPolicy(p resilience.Policy) {
	p.Retriable = retriable
	n.policy = p
}

// Notify formats and posts the notification.
func (n *Notifier) Notify(notification alertmanager.Notification) error {
	msg := Format(notification)
	msg.Channel = n.channel
	body, err := json.Marshal(msg)
	if err != nil {
		n.failed.Inc()
		return err
	}
	attempt := 0
	err = n.breaker.Do(func() error {
		return resilience.Retry(n.policy, func() error {
			if attempt > 0 {
				n.retries.Inc()
			}
			attempt++
			return n.post(body)
		})
	})
	if err != nil {
		n.failed.Inc()
		return err
	}
	n.posted.Inc()
	return nil
}

// statusError marks HTTP-level failures so retries can distinguish 5xx
// (transient) from 4xx (permanent).
type statusError struct{ code int }

func (e statusError) Error() string { return fmt.Sprintf("slack: webhook status %d", e.code) }

func retriable(err error) bool {
	if se, ok := err.(statusError); ok {
		return se.code >= 500
	}
	return true // network-level errors
}

func (n *Notifier) post(body []byte) error {
	resp, err := n.client.Post(n.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("slack: post: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError{code: resp.StatusCode}
	}
	return nil
}

// Format renders a notification in the style of the paper's Figs. 6 and 9:
// a bolded status line plus one color-coded attachment per alert with
// bulleted labels and annotations.
func Format(n alertmanager.Notification) Message {
	emoji := ":fire:"
	if n.Status == alertmanager.StatusResolved {
		emoji = ":white_check_mark:"
	}
	var msg Message
	msg.Text = fmt.Sprintf("%s *[%s]* %d alert(s) for group %s",
		emoji, strings.ToUpper(string(n.Status)), len(n.Alerts), n.GroupLabels)
	for _, a := range n.Alerts {
		att := Attachment{
			Color: colorFor(a),
			Title: a.Name(),
		}
		var lines []string
		for _, l := range a.Labels {
			if l.Name == "alertname" {
				continue
			}
			lines = append(lines, fmt.Sprintf("• *%s*: `%s`", l.Name, l.Value))
		}
		annKeys := make([]string, 0, len(a.Annotations))
		for k := range a.Annotations {
			annKeys = append(annKeys, k)
		}
		sort.Strings(annKeys)
		for _, k := range annKeys {
			lines = append(lines, fmt.Sprintf("• _%s_: %s", k, a.Annotations[k]))
		}
		att.Text = strings.Join(lines, "\n")
		att.Fields = []Field{
			{Title: "Started", Value: a.StartsAt.UTC().Format(time.RFC3339), Short: true},
		}
		if a.Labels.Get("severity") != "" {
			att.Fields = append(att.Fields, Field{Title: "Severity", Value: a.Labels.Get("severity"), Short: true})
		}
		msg.Attachments = append(msg.Attachments, att)
	}
	return msg
}

func colorFor(a alertmanager.Alert) string {
	if !a.EndsAt.IsZero() {
		return "good"
	}
	switch strings.ToLower(a.Labels.Get("severity")) {
	case "critical":
		return "danger"
	case "warning":
		return "warning"
	}
	return "#439FE0"
}
