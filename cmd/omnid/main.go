// Command omnid runs the full monitoring pipeline against the simulated
// Perlmutter system on wall-clock time: hardware telemetry and syslog flow
// through Kafka and the Telemetry API into Loki and the TSDB; the Ruler
// and vmalert evaluate the case-study rules; alerts fan out to the
// in-process Slack webhook and ServiceNow instance. A small status server
// exposes the warehouse and notification state.
//
//	omnid -listen 127.0.0.1:8080 -interval 1s -leak-after 5s
//
// Endpoints:
//
//	GET /status              pipeline counters as JSON
//	GET /slack               messages received by the Slack webhook
//	GET /servicenow/alerts   ServiceNow alerts
//	GET /servicenow/incidents
//	GET /query/logs?q=...    LogQL log query over the last hour
//	GET /query/metrics?q=... PromQL instant query
//	GET /api/v1/heatmap      node × time error-density grid (JSON); params
//	                         since=30m step=2m, format=render for the
//	                         terminal shading
//	GET /debug/dlq           quarantined (dead-letter) records, logcli style
//	POST /debug/dlq/replay?topic=...  replay a topic's DLQ onto the source topic
//
// With -metrics (default on), the same listener additionally serves:
//
//	GET /metrics             shastamon_* self-metrics (Prometheus text, with
//	                         exemplar trace IDs on the detection-latency buckets)
//	GET /debug/trace/        event traces; /debug/trace/{id} for one, and
//	                         /debug/trace/{id}?format=waterfall for the
//	                         plain-text timed-span waterfall
//	GET /debug/slo           detection-latency SLO report (per-rule burn
//	                         rate, p50/p95/max) as JSON
//	GET /debug/queries       queries executing right now, with running stats
//	POST /debug/queries/{id}/kill  cancel a runaway query mid-scan
//	GET /debug/slowlog       recent slow / limit-breached queries (JSON)
//	GET /debug/pprof/        net/http/pprof profiles
//
// With -meta-alerts, the built-in self-monitoring rule pack (core.MetaRules)
// is evaluated over the pipeline's own shastamon_* series and delivered
// through the same Alertmanager -> Slack/ServiceNow path as hardware alerts.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shastamon/internal/anomaly"
	"shastamon/internal/core"
	"shastamon/internal/experiments"
	"shastamon/internal/frontend"
	"shastamon/internal/kafka"
	"shastamon/internal/obs"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
	"shastamon/internal/syslogd"
	"shastamon/internal/vmalert"
	"shastamon/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "status server address")
	interval := flag.Duration("interval", time.Second, "pipeline tick interval")
	leakAfter := flag.Duration("leak-after", 10*time.Second, "inject a cabinet leak after this long (0 disables)")
	switchAfter := flag.Duration("switch-after", 20*time.Second, "take a switch offline after this long (0 disables)")
	syslogRate := flag.Int("syslog-rate", 20, "synthetic syslog messages per tick")
	rulesPath := flag.String("rules", "", "JSON rule file (see core.RuleFile); default: the paper's two case-study rules")
	metrics := flag.Bool("metrics", true, "serve /metrics, /debug/trace/, /debug/slo, /debug/queries, /debug/slowlog and /debug/pprof/ on the status listener")
	metaAlerts := flag.Bool("meta-alerts", false, "evaluate the built-in self-monitoring rule pack (SLO burn, stuck breakers, DLQ growth, stage errors, scrape staleness)")
	dataDir := flag.String("data-dir", "", "durable warehouse directory (WAL, sealed-chunk spill, checkpoints); empty runs memory-only")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always (sync every append), interval (lazy, default), never")
	walSegment := flag.Int("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = 4 MiB default)")
	checkpointEvery := flag.Duration("checkpoint-every", time.Minute, "how often the tick checkpoints the stores to bound WAL replay")
	splitInterval := flag.Duration("split-interval", 0, "query frontend time-split interval (0 = 5m default, negative disables splitting)")
	cacheBytes := flag.Int("result-cache-bytes", 0, "query results cache budget in bytes (0 = 32 MiB default, negative disables)")
	queryConcurrency := flag.Int("query-concurrency", 0, "max concurrently executing range queries per engine (0 = 2×GOMAXPROCS)")
	queryQueueDepth := flag.Int("query-queue-depth", 0, "max range queries waiting per engine before 429 rejection (0 = 64 default)")
	noShardFanout := flag.Bool("no-shard-fanout", false, "disable per-shard query fan-out inside each time split")
	flag.Parse()

	fsync, err := wal.ParseFsyncPolicy(*walFsync)
	if err != nil {
		log.Fatal(err)
	}

	logRules := []ruler.Rule{experiments.LeakRule, experiments.SwitchRule}
	var metricRules []vmalert.Rule
	if *rulesPath != "" {
		logRules, metricRules, err = core.LoadRules(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d log rules and %d metric rules from %s", len(logRules), len(metricRules), *rulesPath)
	}
	p, err := core.New(core.Options{
		LogRules:    logRules,
		MetricRules: metricRules,
		GroupWait:   time.Second,
		MetaAlerts:  *metaAlerts,
		DataDir:     *dataDir,
		WAL: wal.StoreOptions{Options: wal.Options{
			Fsync:        fsync,
			SegmentBytes: *walSegment,
		}},
		CheckpointEvery: *checkpointEvery,
		Frontend: frontend.Config{
			SplitInterval: *splitInterval,
			CacheBytes:    *cacheBytes,
			MaxConcurrent: *queryConcurrency,
			MaxQueueDepth: *queryQueueDepth,
			NoShardFanout: *noShardFanout,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	if *dataDir != "" {
		rec, _ := p.Warehouse.Recovery()
		log.Printf("durable warehouse at %s: clean=%v replayed=%d record(s), %d corrupt record(s) dropped",
			*dataDir, rec.Logs.Clean && rec.Metrics.Clean, rec.Replayed(), rec.Corrupt())
	}

	hosts := make([]string, 0, 16)
	for i, n := range p.Cluster.Nodes() {
		if i >= 16 {
			break
		}
		hosts = append(hosts, n.String())
	}
	gen := syslogd.NewGenerator(time.Now().UnixNano(), hosts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fault injection timers.
	start := time.Now()
	if *leakAfter > 0 {
		time.AfterFunc(*leakAfter, func() {
			if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", time.Now()); err != nil {
				log.Println("leak injection:", err)
				return
			}
			log.Println("injected leak at x1203c1b0")
		})
	}
	if *switchAfter > 0 {
		time.AfterFunc(*switchAfter, func() {
			if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
				log.Println("switch fault:", err)
				return
			}
			log.Println("switch x1002c1r7b0 -> UNKNOWN")
		})
	}

	// Synthetic syslog source.
	go func() {
		t := time.NewTicker(*interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-t.C:
				for i := 0; i < *syslogRate; i++ {
					if err := p.SyslogAggregator.Ingest(gen.Next(now)); err != nil {
						log.Println("syslog:", err)
					}
				}
			}
		}
	}()

	// Status server.
	mux := http.NewServeMux()
	writeJSON := func(w http.ResponseWriter, v interface{}) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]interface{}{
			"uptime_seconds": time.Since(start).Seconds(),
			"warehouse":      p.Warehouse.Stats(),
			"kafka":          p.Broker.Stats(),
			"vmagent":        p.VMAgent.Stats(),
			"slack_messages": len(p.Slack.Messages()),
			"sn_incidents":   len(p.ServiceNow.Incidents()),
		})
	})
	mux.HandleFunc("/slack", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Slack.Messages())
	})
	mux.HandleFunc("/servicenow/alerts", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.ServiceNow.Alerts())
	})
	mux.HandleFunc("/servicenow/incidents", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.ServiceNow.Incidents())
	})
	mux.HandleFunc("/query/logs", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		now := time.Now()
		streams, err := p.Warehouse.LogQL.QueryLogs(q, now.Add(-time.Hour).UnixNano(), now.UnixNano())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, streams)
	})
	// Node × time error heatmap, computed through the query frontend. The
	// same grid Grafana's heatmap panel would draw, served as JSON (or as
	// terminal shading with format=render) so logcli and curl get it too.
	mux.HandleFunc("/api/v1/heatmap", func(w http.ResponseWriter, r *http.Request) {
		since, step := 30*time.Minute, 2*time.Minute
		if s := r.URL.Query().Get("since"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				http.Error(w, "since: want a positive duration like 30m", http.StatusBadRequest)
				return
			}
			since = d
		}
		if s := r.URL.Query().Get("step"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				http.Error(w, "step: want a positive duration like 2m", http.StatusBadRequest)
				return
			}
			step = d
		}
		end := time.Now()
		hm, err := p.ErrorHeatmap(r.Context(), end.Add(-since), end, step)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if r.URL.Query().Get("format") == "render" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, anomaly.RenderHeatmap(hm))
			return
		}
		writeJSON(w, hm)
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		out, err := p.RenderSinglePane(now.Add(-time.Hour), now, time.Minute)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	})
	// Dead-letter queue inspection and replay: the operator workflow for
	// poison pills — read the quarantine reasons, fix the producer or
	// parser, then replay the records through the normal path.
	mux.HandleFunc("/debug/dlq", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		topics := p.Broker.DLQTopics()
		if len(topics) == 0 {
			fmt.Fprintln(w, "no quarantined records")
			return
		}
		for _, topic := range topics {
			msgs, err := p.DLQRecords(topic)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			fmt.Fprintf(w, "# %s: %d record(s)\n", topic, len(msgs))
			fmt.Fprint(w, kafka.FormatDLQ(msgs))
		}
	})
	mux.HandleFunc("/debug/dlq/replay", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		topic := r.URL.Query().Get("topic")
		if topic == "" {
			http.Error(w, "topic parameter required", http.StatusBadRequest)
			return
		}
		n, err := p.ReplayDLQ(topic)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, map[string]int{"replayed": n})
	})
	mux.HandleFunc("/query/metrics", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		vec, err := p.Warehouse.PromQL.Query(q, time.Now().UnixMilli())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, vec)
	})
	// Mount the component APIs: Loki push/metadata + LogQL queries,
	// Prometheus-style queries, TSDB import, Alertmanager management.
	mux.Handle("/loki/api/v1/push", p.Warehouse.Logs.Handler())
	mux.Handle("/loki/api/v1/labels", p.Warehouse.Logs.Handler())
	mux.Handle("/loki/api/v1/label/", p.Warehouse.Logs.Handler())
	mux.Handle("/loki/api/v1/series", p.Warehouse.Logs.Handler())
	mux.Handle("/loki/api/v1/query", p.Warehouse.LogQL.Handler())
	mux.Handle("/loki/api/v1/query_range", p.Warehouse.LogQL.Handler())
	mux.Handle("/api/v1/query", p.Warehouse.PromQL.Handler())
	mux.Handle("/api/v1/query_range", p.Warehouse.PromQL.Handler())
	mux.Handle("/api/v1/import/prometheus", p.Warehouse.Metrics.Handler())
	mux.Handle("/api/v2/", p.Alertmanager.Handler())

	if *metrics {
		// Self-monitoring and profiling on the same listener: the united
		// shastamon_* registries, the event tracer, and pprof.
		mux.Handle("/metrics", obs.Handler(obs.GathererFunc(p.Gather)))
		mux.Handle("/debug/trace/", p.Tracer.Handler())
		mux.Handle("/debug/slo", p.SLO().Handler())
		qh := p.Warehouse.Tracker.Handler()
		mux.Handle("/debug/queries", qh)
		mux.Handle("/debug/queries/", qh)
		mux.Handle("/debug/slowlog", qh)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("omnid status server on http://%s", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	log.Printf("pipeline running (tick %s); Ctrl-C to stop", *interval)
	if err := p.Run(ctx, *interval); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	fmt.Println("bye")
}
