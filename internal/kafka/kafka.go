// Package kafka implements an in-memory message broker with the Kafka
// semantics the paper's pipeline relies on: named topics split into
// partitions, ordered append-only logs per partition, offset-based fetch,
// consumer groups with committed offsets and rebalancing, and time-based
// retention. In the paper, "the HMS collector pushes data to Kafka, where
// Kafka stores data in different topics by categories and serves them to
// possible consumers".
package kafka

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Message is one record in a partition log.
type Message struct {
	Topic     string
	Partition int
	Offset    int64
	Key       []byte
	Value     []byte
	Timestamp time.Time
	// Headers carry per-message metadata end to end — the pipeline uses
	// them to propagate obs trace IDs alongside the payload.
	Headers map[string]string
}

// Errors returned by broker operations.
var (
	ErrUnknownTopic     = errors.New("kafka: unknown topic")
	ErrUnknownPartition = errors.New("kafka: unknown partition")
	ErrTopicExists      = errors.New("kafka: topic already exists")
	ErrOffsetOutOfRange = errors.New("kafka: offset out of range")
)

type partition struct {
	mu      sync.Mutex
	base    int64 // offset of msgs[0] (after retention truncation)
	msgs    []Message
	waiters []chan struct{}
}

func (p *partition) append(m Message) int64 {
	p.mu.Lock()
	m.Offset = p.base + int64(len(p.msgs))
	p.msgs = append(p.msgs, m)
	ws := p.waiters
	p.waiters = nil
	p.mu.Unlock()
	for _, w := range ws {
		close(w)
	}
	return m.Offset
}

func (p *partition) fetch(offset int64, max int) ([]Message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	high := p.base + int64(len(p.msgs))
	if offset < p.base || offset > high {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrOffsetOutOfRange, offset, p.base, high)
	}
	if offset == high {
		return nil, nil
	}
	start := offset - p.base
	end := start + int64(max)
	if end > int64(len(p.msgs)) {
		end = int64(len(p.msgs))
	}
	out := make([]Message, end-start)
	copy(out, p.msgs[start:end])
	return out, nil
}

// waitCh returns a channel closed at next append when the reader is at the
// head; nil if data is already available.
func (p *partition) waitCh(offset int64) chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if offset < p.base+int64(len(p.msgs)) {
		return nil
	}
	w := make(chan struct{})
	p.waiters = append(p.waiters, w)
	return w
}

// dropWaiter removes a waiter that gave up (FetchWait timeout); without
// this, every timed-out poll would leave its channel in the slice until
// the next append — a leak under repeated empty polls.
func (p *partition) dropWaiter(w chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, x := range p.waiters {
		if x == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			return
		}
	}
}

// waiterCount reports pending waiters (test hook for the leak regression).
func (p *partition) waiterCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

type topic struct {
	name       string
	partitions []*partition
}

type groupState struct {
	members []string         // sorted member IDs
	commits map[string]int64 // "topic/partition" -> next offset to read
	gen     int
}

// Broker is an in-memory Kafka-like broker, safe for concurrent use.
type Broker struct {
	mu     sync.RWMutex
	topics map[string]*topic
	groups map[string]*groupState

	produced int64

	// produceHook, when set, intercepts every ProduceMessage with the
	// topic name; a non-nil error aborts the append. The chaos injector
	// arms it to simulate broker-side produce failures.
	produceHook func(topic string) error

	reg         *obs.Registry
	producedVec *obs.CounterVec
	fetchedVec  *obs.CounterVec
}

// NewBroker returns an empty broker.
func NewBroker() *Broker {
	b := &Broker{topics: map[string]*topic{}, groups: map[string]*groupState{}, reg: obs.NewRegistry()}
	b.producedVec = b.reg.CounterVec(obs.Namespace+"kafka_produced_total",
		"Messages appended per topic/partition.", "topic", "partition")
	b.fetchedVec = b.reg.CounterVec(obs.Namespace+"kafka_fetched_total",
		"Messages served to consumers per topic/partition.", "topic", "partition")
	b.reg.GaugeFunc(obs.Namespace+"kafka_topics", "Topics on the broker.", func() float64 {
		b.mu.RLock()
		defer b.mu.RUnlock()
		return float64(len(b.topics))
	})
	b.reg.Collect(b.lagFamilies)
	return b
}

// Metrics exposes the broker's self-monitoring registry.
func (b *Broker) Metrics() *obs.Registry { return b.reg }

// SetProduceHook installs (or, with nil, removes) the produce fault hook.
func (b *Broker) SetProduceHook(fn func(topic string) error) {
	b.mu.Lock()
	b.produceHook = fn
	b.mu.Unlock()
}

// lagFamilies renders consumer-group lag per topic/partition at gather
// time — lag is derived state (watermark minus commit), so it is computed
// rather than counted.
func (b *Broker) lagFamilies() []promtext.Family {
	f := promtext.Family{Name: obs.Namespace + "kafka_group_lag",
		Help: "Unconsumed messages per group/topic/partition.", Type: "gauge"}
	for _, group := range b.Groups() {
		lags := b.GroupLag(group)
		keys := make([]string, 0, len(lags))
		for k := range lags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			idx := strings.LastIndexByte(key, '/')
			if idx <= 0 {
				continue
			}
			f.Metrics = append(f.Metrics, promtext.Metric{
				Name:   f.Name,
				Labels: labels.FromStrings("group", group, "topic", key[:idx], "partition", key[idx+1:]),
				Value:  float64(lags[key]),
			})
		}
	}
	return []promtext.Family{f}
}

// CreateTopic creates a topic with n partitions (n >= 1).
func (b *Broker) CreateTopic(name string, partitions int) error {
	if partitions < 1 {
		return fmt.Errorf("kafka: topic %q needs at least one partition", name)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	t := &topic{name: name, partitions: make([]*partition, partitions)}
	for i := range t.partitions {
		t.partitions[i] = &partition{}
	}
	b.topics[name] = t
	return nil
}

// Topics lists topic names.
func (b *Broker) Topics() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.topics))
	for name := range b.topics {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Partitions returns the partition count of a topic.
func (b *Broker) Partitions(topicName string) (int, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[topicName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	return len(t.partitions), nil
}

func (b *Broker) topic(name string) (*topic, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	t, ok := b.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	return t, nil
}

// Produce appends a message; the partition is chosen by key hash (or 0 for
// a keyless message on a single-partition topic, round-robin otherwise via
// the produced counter). It returns partition and offset.
func (b *Broker) Produce(topicName string, key, value []byte, ts time.Time) (int, int64, error) {
	return b.ProduceMessage(Message{Topic: topicName, Key: key, Value: value, Timestamp: ts})
}

// ProduceMessage appends a message with all its metadata (including
// Headers); Topic, Key, Value and Timestamp are taken from m, while
// Partition and Offset are assigned by the broker and returned.
func (b *Broker) ProduceMessage(m Message) (int, int64, error) {
	t, err := b.topic(m.Topic)
	if err != nil {
		return 0, 0, err
	}
	b.mu.RLock()
	hook := b.produceHook
	b.mu.RUnlock()
	if hook != nil {
		if err := hook(m.Topic); err != nil {
			return 0, 0, fmt.Errorf("kafka: produce %s: %w", m.Topic, err)
		}
	}
	var pi int
	if len(m.Key) > 0 {
		h := fnv.New32a()
		h.Write(m.Key)
		pi = int(h.Sum32()) % len(t.partitions)
	} else {
		b.mu.Lock()
		pi = int(b.produced) % len(t.partitions)
		b.mu.Unlock()
	}
	if m.Timestamp.IsZero() {
		m.Timestamp = time.Now()
	}
	m.Partition = pi
	off := t.partitions[pi].append(m)
	b.mu.Lock()
	b.produced++
	b.mu.Unlock()
	b.producedVec.With(m.Topic, strconv.Itoa(pi)).Inc()
	return pi, off, nil
}

// Fetch reads up to max messages from a partition starting at offset.
// An empty result means the reader is at the head.
func (b *Broker) Fetch(topicName string, part int, offset int64, max int) ([]Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if part < 0 || part >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, part)
	}
	msgs, err := t.partitions[part].fetch(offset, max)
	if len(msgs) > 0 {
		b.fetchedVec.With(topicName, strconv.Itoa(part)).Add(float64(len(msgs)))
	}
	return msgs, err
}

// FetchWait is Fetch that blocks up to timeout for new data when the
// reader is at the head.
func (b *Broker) FetchWait(topicName string, part int, offset int64, max int, timeout time.Duration) ([]Message, error) {
	t, err := b.topic(topicName)
	if err != nil {
		return nil, err
	}
	if part < 0 || part >= len(t.partitions) {
		return nil, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, part)
	}
	p := t.partitions[part]
	count := func(msgs []Message, err error) ([]Message, error) {
		if len(msgs) > 0 {
			b.fetchedVec.With(topicName, strconv.Itoa(part)).Add(float64(len(msgs)))
		}
		return msgs, err
	}
	msgs, err := p.fetch(offset, max)
	if err != nil || len(msgs) > 0 {
		return count(msgs, err)
	}
	w := p.waitCh(offset)
	if w == nil {
		return count(p.fetch(offset, max))
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-w:
		return count(p.fetch(offset, max))
	case <-timer.C:
		p.dropWaiter(w)
		return nil, nil
	}
}

// Watermarks returns the low and high offsets of a partition (low = oldest
// retained, high = next offset to be written).
func (b *Broker) Watermarks(topicName string, part int) (low, high int64, err error) {
	t, err := b.topic(topicName)
	if err != nil {
		return 0, 0, err
	}
	if part < 0 || part >= len(t.partitions) {
		return 0, 0, fmt.Errorf("%w: %s/%d", ErrUnknownPartition, topicName, part)
	}
	p := t.partitions[part]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.base, p.base + int64(len(p.msgs)), nil
}

// TruncateBefore drops messages older than cutoff across all topics
// (time-based retention; HPE "has a policy of keeping event information
// for no more than two months"). It returns the number dropped.
func (b *Broker) TruncateBefore(cutoff time.Time) int {
	b.mu.RLock()
	topics := make([]*topic, 0, len(b.topics))
	for _, t := range b.topics {
		topics = append(topics, t)
	}
	b.mu.RUnlock()
	dropped := 0
	for _, t := range topics {
		for _, p := range t.partitions {
			p.mu.Lock()
			i := 0
			for i < len(p.msgs) && p.msgs[i].Timestamp.Before(cutoff) {
				i++
			}
			if i > 0 {
				p.base += int64(i)
				p.msgs = append([]Message(nil), p.msgs[i:]...)
				dropped += i
			}
			p.mu.Unlock()
		}
	}
	return dropped
}

// ---- consumer groups ----

func commitKey(topicName string, part int) string { return fmt.Sprintf("%s/%d", topicName, part) }

// splitCommitKey inverts commitKey ("topic/partition", splitting on the
// last '/' since topic names may contain slashes).
func splitCommitKey(key string) (topicName string, part int, ok bool) {
	idx := strings.LastIndexByte(key, '/')
	if idx <= 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(key[idx+1:])
	if err != nil {
		return "", 0, false
	}
	return key[:idx], n, true
}

// JoinGroup registers a member in a consumer group and returns the group
// generation. Assignments must be refreshed after every join/leave.
func (b *Broker) JoinGroup(group, member string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.groups[group]
	if g == nil {
		g = &groupState{commits: map[string]int64{}}
		b.groups[group] = g
	}
	for _, m := range g.members {
		if m == member {
			return g.gen
		}
	}
	g.members = append(g.members, member)
	sort.Strings(g.members)
	g.gen++
	return g.gen
}

// LeaveGroup removes a member, triggering a rebalance.
func (b *Broker) LeaveGroup(group, member string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.groups[group]
	if g == nil {
		return
	}
	for i, m := range g.members {
		if m == member {
			g.members = append(g.members[:i], g.members[i+1:]...)
			g.gen++
			return
		}
	}
}

// Assignment returns the partitions of a topic assigned to the member
// under round-robin distribution over the sorted member list.
func (b *Broker) Assignment(group, member, topicName string) ([]int, error) {
	parts, err := b.Partitions(topicName)
	if err != nil {
		return nil, err
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	g := b.groups[group]
	if g == nil {
		return nil, fmt.Errorf("kafka: unknown group %q", group)
	}
	idx := -1
	for i, m := range g.members {
		if m == member {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("kafka: member %q not in group %q", member, group)
	}
	var out []int
	for p := 0; p < parts; p++ {
		if p%len(g.members) == idx {
			out = append(out, p)
		}
	}
	return out, nil
}

// Commit stores the next offset to read for a group/topic/partition.
func (b *Broker) Commit(group, topicName string, part int, next int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	g := b.groups[group]
	if g == nil {
		g = &groupState{commits: map[string]int64{}}
		b.groups[group] = g
	}
	g.commits[commitKey(topicName, part)] = next
}

// Committed returns the committed next offset, or 0 if none.
func (b *Broker) Committed(group, topicName string, part int) int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	g := b.groups[group]
	if g == nil {
		return 0
	}
	return g.commits[commitKey(topicName, part)]
}

// Groups lists consumer group names.
func (b *Broker) Groups() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.groups))
	for g := range b.groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// GroupLag returns, per "topic/partition", how many messages the group
// has not yet consumed (high watermark minus committed offset). Topics
// the group never committed to are omitted.
func (b *Broker) GroupLag(group string) map[string]int64 {
	b.mu.RLock()
	g := b.groups[group]
	if g == nil {
		b.mu.RUnlock()
		return nil
	}
	commits := make(map[string]int64, len(g.commits))
	for k, v := range g.commits {
		commits[k] = v
	}
	b.mu.RUnlock()
	out := make(map[string]int64, len(commits))
	for key, next := range commits {
		// key is "topic/partition"; split on the last '/'.
		idx := len(key) - 1
		for idx >= 0 && key[idx] != '/' {
			idx--
		}
		if idx <= 0 {
			continue
		}
		topicName := key[:idx]
		var part int
		if _, err := fmt.Sscanf(key[idx+1:], "%d", &part); err != nil {
			continue
		}
		_, high, err := b.Watermarks(topicName, part)
		if err != nil {
			continue
		}
		lag := high - next
		if lag < 0 {
			lag = 0
		}
		out[key] = lag
	}
	return out
}

// Stats reports broker-wide counters.
type Stats struct {
	Topics   int
	Messages int64
}

// Stats returns a snapshot.
func (b *Broker) Stats() Stats {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Stats{Topics: len(b.topics), Messages: b.produced}
}
