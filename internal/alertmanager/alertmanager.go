// Package alertmanager implements a Prometheus-Alertmanager-style alert
// router: it receives alerts from the Loki Ruler and vmalert, deduplicates
// and groups them, applies silences and inhibition, and dispatches
// notifications to receivers (Slack, ServiceNow, generic webhooks). This is
// the stage of the paper's workflow where "Alertmanager receives events,
// groups them by priority, category, source, etc. and sends alert messages
// to Slack or ServiceNow".
package alertmanager

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
)

// Alert is one alert instance. Labels identify it (alertname plus rule
// labels); annotations carry human-oriented detail.
type Alert struct {
	Labels      labels.Labels
	Annotations map[string]string
	StartsAt    time.Time
	EndsAt      time.Time // zero while firing
}

// Name returns the alertname label.
func (a Alert) Name() string { return a.Labels.Get("alertname") }

// Fingerprint identifies the alert by its label set.
func (a Alert) Fingerprint() labels.Fingerprint { return a.Labels.Fingerprint() }

// Resolved reports whether the alert has ended by the given time.
func (a Alert) Resolved(now time.Time) bool {
	return !a.EndsAt.IsZero() && !a.EndsAt.After(now)
}

// Status is an alert's lifecycle state as seen by the manager.
type Status string

// Alert statuses.
const (
	StatusFiring     Status = "firing"
	StatusResolved   Status = "resolved"
	StatusSuppressed Status = "suppressed"
)

// Notification is what receivers get: the route's receiver name, the group
// key, common labels of the group, and the alerts in it.
type Notification struct {
	Receiver    string
	GroupKey    string
	GroupLabels labels.Labels
	Alerts      []Alert
	Status      Status // firing if any alert fires, else resolved
}

// Receiver consumes notifications. Implementations must be safe for
// concurrent use.
type Receiver interface {
	Name() string
	Notify(n Notification) error
}

// Route is a node of the routing tree, mirroring Alertmanager's route
// config. A nil Matchers matches everything.
type Route struct {
	Receiver       string
	Matchers       labels.Selector
	GroupBy        []string
	GroupWait      time.Duration
	GroupInterval  time.Duration
	RepeatInterval time.Duration
	Continue       bool
	Routes         []*Route
}

func (r *Route) withDefaults(parent *Route) {
	if r.Receiver == "" && parent != nil {
		r.Receiver = parent.Receiver
	}
	if r.GroupBy == nil && parent != nil {
		r.GroupBy = parent.GroupBy
	}
	if r.GroupWait == 0 {
		if parent != nil {
			r.GroupWait = parent.GroupWait
		} else {
			r.GroupWait = 30 * time.Second
		}
	}
	if r.GroupInterval == 0 {
		if parent != nil {
			r.GroupInterval = parent.GroupInterval
		} else {
			r.GroupInterval = 5 * time.Minute
		}
	}
	if r.RepeatInterval == 0 {
		if parent != nil {
			r.RepeatInterval = parent.RepeatInterval
		} else {
			r.RepeatInterval = 4 * time.Hour
		}
	}
	for _, child := range r.Routes {
		child.withDefaults(r)
	}
}

// match walks the tree and returns the routes that should handle the alert
// (depth-first, first match wins unless Continue).
func (r *Route) match(ls labels.Labels) []*Route {
	if r.Matchers != nil && !r.Matchers.Matches(ls) {
		return nil
	}
	// The first matching child handles the alert; Continue lets subsequent
	// children fire as well. With no matching child, this route handles it.
	var out []*Route
	for _, child := range r.Routes {
		got := child.match(ls)
		if got == nil {
			continue
		}
		out = append(out, got...)
		if !child.Continue {
			break
		}
	}
	if len(out) > 0 {
		return out
	}
	return []*Route{r}
}

// Silence mutes alerts matching its matchers during [StartsAt, EndsAt].
type Silence struct {
	ID        string
	Matchers  labels.Selector
	StartsAt  time.Time
	EndsAt    time.Time
	CreatedBy string
	Comment   string
}

// Active reports whether the silence covers the instant now.
func (s Silence) Active(now time.Time) bool {
	return !now.Before(s.StartsAt) && now.Before(s.EndsAt)
}

// InhibitRule mutes target alerts while a matching source alert fires and
// the Equal labels agree, e.g. "suppress switch alerts while the cabinet
// power alert for the same cabinet fires".
type InhibitRule struct {
	SourceMatchers labels.Selector
	TargetMatchers labels.Selector
	Equal          []string
}

// Config assembles a Manager.
type Config struct {
	Route     *Route
	Receivers []Receiver
	Inhibit   []InhibitRule
	// Now is injectable for tests; defaults to time.Now.
	Now func() time.Time
	// Tracer, when set, records an "alertmanager.notify" stage on the
	// trace of each dispatched alert's originating component.
	Tracer *obs.Tracer
	// RetryBackoff is the initial delay before re-dispatching a failed
	// notification; it doubles per attempt, capped at 16× (default 5s).
	// A failed receiver must not lose the notification — the paper's
	// incidents have to land once the receiver heals.
	RetryBackoff time.Duration
	// MaxNotifyAttempts bounds redelivery tries per notification before it
	// is dropped and counted (default 10).
	MaxNotifyAttempts int
	// OnDelivered, when set, is invoked once per alert after each
	// successful notification with the receiver name and the dispatch
	// start/end times — the hook the pipeline uses to close out
	// end-to-end detection latency.
	OnDelivered func(a Alert, receiver string, start, end time.Time)
}

// TraceKey extracts the event-trace correlation key from an alert label
// set: the Context stream label or component xname for hardware alerts,
// falling back to the subsystem dimensions the built-in meta-alerts carry.
func TraceKey(ls labels.Labels) string {
	for _, name := range []string{"Context", "xname", "dependency", "target", "topic", "stage", "rule"} {
		if v := ls.Get(name); v != "" {
			return v
		}
	}
	return ""
}

type group struct {
	route      *Route
	key        string
	groupLbls  labels.Labels
	alerts     map[labels.Fingerprint]*Alert
	createdAt  time.Time
	lastNotify time.Time
	pending    bool
}

// queued is one failed notification awaiting redelivery.
type queued struct {
	n        Notification
	attempts int
	nextTry  time.Time
}

// Manager routes, groups and dispatches alerts.
type Manager struct {
	route     *Route
	receivers map[string]Receiver
	inhibit   []InhibitRule
	now       func() time.Time
	tracer    *obs.Tracer
	delivered func(a Alert, receiver string, start, end time.Time)

	retryBackoff time.Duration
	maxAttempts  int

	reg       *obs.Registry
	received  *obs.Counter
	notifyVec *obs.CounterVec

	mu       sync.Mutex
	groups   map[string]*group
	silences map[string]Silence
	silSeq   int
	retryq   []queued

	notifyErrs []error
}

// New validates the config and returns a Manager.
func New(cfg Config) (*Manager, error) {
	if cfg.Route == nil {
		return nil, fmt.Errorf("alertmanager: route required")
	}
	if cfg.Route.Receiver == "" {
		return nil, fmt.Errorf("alertmanager: root route needs a receiver")
	}
	cfg.Route.withDefaults(nil)
	rcv := map[string]Receiver{}
	for _, r := range cfg.Receivers {
		rcv[r.Name()] = r
	}
	var check func(r *Route) error
	check = func(r *Route) error {
		if _, ok := rcv[r.Receiver]; !ok {
			return fmt.Errorf("alertmanager: route references unknown receiver %q", r.Receiver)
		}
		for _, c := range r.Routes {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := check(cfg.Route); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Second
	}
	if cfg.MaxNotifyAttempts <= 0 {
		cfg.MaxNotifyAttempts = 10
	}
	m := &Manager{
		route:        cfg.Route,
		receivers:    rcv,
		inhibit:      cfg.Inhibit,
		now:          now,
		tracer:       cfg.Tracer,
		delivered:    cfg.OnDelivered,
		retryBackoff: cfg.RetryBackoff,
		maxAttempts:  cfg.MaxNotifyAttempts,
		groups:       map[string]*group{},
		silences:     map[string]Silence{},
		reg:          obs.NewRegistry(),
	}
	m.received = m.reg.Counter(obs.Namespace+"alertmanager_alerts_received_total",
		"Alerts ingested from the ruler and vmalert.")
	m.notifyVec = m.reg.CounterVec(obs.Namespace+"alertmanager_notifications_total",
		"Notifications dispatched, by receiver and outcome.", "receiver", "outcome")
	m.reg.GaugeFunc(obs.Namespace+"alertmanager_groups",
		"Live alert groups.", func() float64 { return float64(m.Groups()) })
	m.reg.GaugeFunc(obs.Namespace+"alertmanager_retry_queue",
		"Failed notifications awaiting redelivery.", func() float64 { return float64(m.RetryQueueLen()) })
	return m, nil
}

// Metrics exposes the manager's self-monitoring registry.
func (m *Manager) Metrics() *obs.Registry { return m.reg }

// Receive ingests alerts (firing or resolved). Alerts are deduplicated by
// label fingerprint within their group.
func (m *Manager) Receive(alerts ...Alert) {
	now := m.now()
	m.received.Add(float64(len(alerts)))
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range alerts {
		if a.StartsAt.IsZero() {
			a.StartsAt = now
		}
		for _, route := range m.route.match(a.Labels) {
			key := groupKey(route, a.Labels)
			g, ok := m.groups[key]
			if !ok {
				g = &group{
					route:     route,
					key:       key,
					groupLbls: groupLabels(route, a.Labels),
					alerts:    map[labels.Fingerprint]*Alert{},
					createdAt: now,
				}
				m.groups[key] = g
			}
			cp := a
			g.alerts[a.Fingerprint()] = &cp
			g.pending = true
		}
	}
}

func groupKey(r *Route, ls labels.Labels) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%p", r)
	for _, name := range r.GroupBy {
		b.WriteByte(0xff)
		b.WriteString(name)
		b.WriteByte('=')
		b.WriteString(ls.Get(name))
	}
	return b.String()
}

func groupLabels(r *Route, ls labels.Labels) labels.Labels {
	return ls.Keep(r.GroupBy...)
}

// AddSilence registers a silence and returns its ID.
func (m *Manager) AddSilence(s Silence) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.silSeq++
	if s.ID == "" {
		s.ID = fmt.Sprintf("silence-%d", m.silSeq)
	}
	m.silences[s.ID] = s
	return s.ID
}

// RemoveSilence deletes a silence by ID.
func (m *Manager) RemoveSilence(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.silences, id)
}

// Silences lists registered silences.
func (m *Manager) Silences() []Silence {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Silence, 0, len(m.silences))
	for _, s := range m.silences {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AlertStatus returns the manager's view of the alert: suppressed (by
// silence or inhibition), firing, or resolved.
func (m *Manager) AlertStatus(a Alert) Status {
	now := m.now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.suppressedLocked(a, now) {
		return StatusSuppressed
	}
	if a.Resolved(now) {
		return StatusResolved
	}
	return StatusFiring
}

func (m *Manager) suppressedLocked(a Alert, now time.Time) bool {
	for _, s := range m.silences {
		if s.Active(now) && s.Matchers.Matches(a.Labels) {
			return true
		}
	}
	for _, rule := range m.inhibit {
		if !rule.TargetMatchers.Matches(a.Labels) {
			continue
		}
		// Look for any firing source alert with matching Equal labels.
		for _, g := range m.groups {
			for _, src := range g.alerts {
				if src.Resolved(now) || !rule.SourceMatchers.Matches(src.Labels) {
					continue
				}
				if src.Fingerprint() == a.Fingerprint() {
					continue // an alert never inhibits itself
				}
				equal := true
				for _, name := range rule.Equal {
					if src.Labels.Get(name) != a.Labels.Get(name) {
						equal = false
						break
					}
				}
				if equal {
					return true
				}
			}
		}
	}
	return false
}

// Flush dispatches any groups that are due at the manager's current time.
// It returns the notifications sent. Production callers run it from Run;
// tests call it directly with an injected clock.
func (m *Manager) Flush() []Notification {
	now := m.now()
	m.mu.Lock()
	// Redeliveries that have reached their backoff deadline go out first so
	// a healed receiver catches up on the same flush that resumes fresh
	// dispatch.
	var redeliver []queued
	rest := m.retryq[:0]
	for _, q := range m.retryq {
		if now.Before(q.nextTry) {
			rest = append(rest, q)
		} else {
			redeliver = append(redeliver, q)
		}
	}
	m.retryq = rest
	var due []*group
	for _, g := range m.groups {
		switch {
		case g.pending && g.lastNotify.IsZero():
			if !now.Before(g.createdAt.Add(g.route.GroupWait)) {
				due = append(due, g)
			}
		case g.pending:
			if !now.Before(g.lastNotify.Add(g.route.GroupInterval)) {
				due = append(due, g)
			}
		default:
			if !g.lastNotify.IsZero() && !now.Before(g.lastNotify.Add(g.route.RepeatInterval)) && len(g.alerts) > 0 {
				due = append(due, g)
			}
		}
	}
	var notifications []Notification
	for _, g := range due {
		n := m.buildNotificationLocked(g, now)
		if len(n.Alerts) == 0 {
			g.pending = false
			continue
		}
		g.pending = false
		g.lastNotify = now
		// Drop resolved alerts after they have been notified once.
		for fp, a := range g.alerts {
			if a.Resolved(now) {
				delete(g.alerts, fp)
			}
		}
		if len(g.alerts) == 0 {
			delete(m.groups, g.key)
		}
		notifications = append(notifications, n)
	}
	m.mu.Unlock()

	for _, q := range redeliver {
		m.dispatch(q.n, q.attempts, now)
	}
	for _, n := range notifications {
		m.dispatch(n, 0, now)
	}
	return notifications
}

// dispatch sends one notification to its receiver. A failure requeues it
// with exponential backoff (up to maxAttempts total tries) rather than
// dropping it — the receiver's own breaker fails fast during an outage,
// and this queue owns getting the incident through once it heals.
func (m *Manager) dispatch(n Notification, attempts int, now time.Time) {
	rcv, ok := m.receivers[n.Receiver]
	if !ok {
		return
	}
	t0 := time.Now()
	if err := rcv.Notify(n); err != nil {
		m.notifyVec.With(n.Receiver, "failed").Inc()
		attempts++
		m.mu.Lock()
		m.notifyErrs = append(m.notifyErrs, fmt.Errorf("receiver %s (attempt %d): %w", n.Receiver, attempts, err))
		if attempts >= m.maxAttempts {
			m.mu.Unlock()
			m.notifyVec.With(n.Receiver, "dropped").Inc()
			return
		}
		shift := attempts - 1
		if shift > 4 {
			shift = 4
		}
		m.retryq = append(m.retryq, queued{
			n: n, attempts: attempts, nextTry: now.Add(m.retryBackoff << shift),
		})
		m.mu.Unlock()
		m.notifyVec.With(n.Receiver, "requeued").Inc()
		return
	}
	m.notifyVec.With(n.Receiver, "sent").Inc()
	// Timed notify span anchored on the simulated clock, plus a per-alert
	// delivery span on the receiver, then the latency close-out hook.
	end := now.Add(time.Since(t0))
	for _, a := range n.Alerts {
		key := TraceKey(a.Labels)
		m.tracer.SpanByKey(key, "alertmanager.notify", now, end,
			a.Name()+" -> "+n.Receiver)
		m.tracer.SpanByKey(key, n.Receiver+".deliver", now, end, a.Name())
		if m.delivered != nil {
			m.delivered(a, n.Receiver, now, end)
		}
	}
}

// RetryQueueLen reports failed notifications awaiting redelivery.
func (m *Manager) RetryQueueLen() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.retryq)
}

func (m *Manager) buildNotificationLocked(g *group, now time.Time) Notification {
	n := Notification{
		Receiver:    g.route.Receiver,
		GroupKey:    g.key,
		GroupLabels: g.groupLbls,
		Status:      StatusResolved,
	}
	var fps []labels.Fingerprint
	for fp := range g.alerts {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool {
		return g.alerts[fps[i]].Labels.String() < g.alerts[fps[j]].Labels.String()
	})
	for _, fp := range fps {
		a := g.alerts[fp]
		if m.suppressedLocked(*a, now) {
			continue
		}
		if !a.Resolved(now) {
			n.Status = StatusFiring
		}
		n.Alerts = append(n.Alerts, *a)
	}
	return n
}

// NotifyErrors drains accumulated receiver errors.
func (m *Manager) NotifyErrors() []error {
	m.mu.Lock()
	defer m.mu.Unlock()
	errs := m.notifyErrs
	m.notifyErrs = nil
	return errs
}

// Run flushes on the given interval until stop is closed.
func (m *Manager) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.Flush()
		}
	}
}

// Groups reports current group count (for dashboards/tests).
func (m *Manager) Groups() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.groups)
}
