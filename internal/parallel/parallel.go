// Package parallel provides the bounded worker-pool primitive the storage
// and query hot paths fan work out on. The paper's OMNI sustains its
// 400,000 msgs/s across an 8-worker Loki cluster; in-process, the same
// scaling comes from striping stores into shards and walking candidate
// streams on as many cores as the host offers. Callers size the pool with
// Workers and run index-addressed work with Do; with one worker (or one
// item) everything stays on the calling goroutine, so single-core hosts
// and tiny result sets pay no scheduling overhead.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: n when positive, otherwise
// GOMAXPROCS — the "as many workers as cores" default the sharded stores
// and query engines use.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(i) for every i in [0, n), fanning the indexes out over at
// most workers goroutines. Work is handed out by an atomic cursor, so
// uneven item costs (one fat stream among many thin ones) still keep
// every worker busy. When workers <= 1 or n <= 1 the calls run inline on
// the calling goroutine. inFlight, when non-nil, counts live workers for
// the duration of the call — the query-parallelism gauges read it.
func Do(n, workers int, inFlight *atomic.Int64, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			if inFlight != nil {
				inFlight.Add(1)
				defer inFlight.Add(-1)
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
