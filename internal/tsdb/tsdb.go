// Package tsdb implements an in-process time-series database in the mould
// of VictoriaMetrics: label-indexed series of (timestamp, value) samples.
// It is the metrics half of the paper's dual pipeline ("as a rule, we send
// metrics to VictoriaMetrics ... and logs to Loki").
//
// Timestamps are Unix milliseconds, the Prometheus convention (the log
// store uses nanoseconds, the Loki convention).
package tsdb

import (
	"errors"
	"fmt"
	"sort"

	"shastamon/internal/obs"
	"sync"

	"shastamon/internal/labels"
)

// Sample is one (timestamp, value) pair. T is Unix milliseconds.
type Sample struct {
	T int64
	V float64
}

// MetricNameLabel is the reserved label holding the metric name.
const MetricNameLabel = "__name__"

// ErrOutOfOrder is returned when appending a sample older than the series
// head. The sample is dropped.
var ErrOutOfOrder = errors.New("tsdb: out-of-order sample")

type series struct {
	labels labels.Labels
	mu     sync.Mutex
	data   []Sample
}

// DB is an in-memory TSDB safe for concurrent use.
type DB struct {
	obsOnce sync.Once
	obsReg  *obs.Registry

	mu      sync.RWMutex
	series  map[labels.Fingerprint][]*series
	ordered []*series

	statsMu sync.Mutex
	appends int64
	dropped int64
}

// New returns an empty DB.
func New() *DB {
	return &DB{series: map[labels.Fingerprint][]*series{}}
}

// Append adds one sample to the series identified by ls. ls must include
// the metric name under MetricNameLabel (use Labels.With).
func (db *DB) Append(ls labels.Labels, t int64, v float64) error {
	if ls.Get(MetricNameLabel) == "" {
		return fmt.Errorf("tsdb: missing %s label in %s", MetricNameLabel, ls)
	}
	s := db.getOrCreate(ls)
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.data); n > 0 && t < s.data[n-1].T {
		db.statsMu.Lock()
		db.dropped++
		db.statsMu.Unlock()
		return ErrOutOfOrder
	}
	if n := len(s.data); n > 0 && t == s.data[n-1].T {
		s.data[n-1].V = v // overwrite duplicate timestamp, like VM
	} else {
		s.data = append(s.data, Sample{T: t, V: v})
	}
	db.statsMu.Lock()
	db.appends++
	db.statsMu.Unlock()
	return nil
}

// AppendMetric is a convenience wrapper building the label set from a
// metric name and extra labels.
func (db *DB) AppendMetric(name string, extra labels.Labels, t int64, v float64) error {
	return db.Append(extra.With(MetricNameLabel, name), t, v)
}

func (db *DB) getOrCreate(ls labels.Labels) *series {
	fp := ls.Fingerprint()
	db.mu.RLock()
	for _, s := range db.series[fp] {
		if s.labels.Equal(ls) {
			db.mu.RUnlock()
			return s
		}
	}
	db.mu.RUnlock()
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, s := range db.series[fp] {
		if s.labels.Equal(ls) {
			return s
		}
	}
	s := &series{labels: ls.Copy()}
	db.series[fp] = append(db.series[fp], s)
	db.ordered = append(db.ordered, s)
	return s
}

// SeriesData is a query result: a label set and its samples in range.
type SeriesData struct {
	Labels  labels.Labels
	Samples []Sample
}

// Select returns samples in [mint, maxt] (ms, inclusive) for every series
// matching all matchers, ordered by label string.
func (db *DB) Select(sel []*labels.Matcher, mint, maxt int64) []SeriesData {
	db.mu.RLock()
	cand := make([]*series, 0)
	for _, s := range db.ordered {
		if labels.MatchLabels(s.labels, sel) {
			cand = append(cand, s)
		}
	}
	db.mu.RUnlock()
	out := make([]SeriesData, 0, len(cand))
	for _, s := range cand {
		s.mu.Lock()
		lo := sort.Search(len(s.data), func(i int) bool { return s.data[i].T >= mint })
		hi := sort.Search(len(s.data), func(i int) bool { return s.data[i].T > maxt })
		if lo < hi {
			samples := make([]Sample, hi-lo)
			copy(samples, s.data[lo:hi])
			out = append(out, SeriesData{Labels: s.labels, Samples: samples})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out
}

// LatestBefore returns, for each matching series, the newest sample at or
// before ts but not older than ts-lookback. This implements PromQL instant
// vector semantics.
func (db *DB) LatestBefore(sel []*labels.Matcher, ts, lookbackMS int64) []SeriesData {
	db.mu.RLock()
	cand := make([]*series, 0)
	for _, s := range db.ordered {
		if labels.MatchLabels(s.labels, sel) {
			cand = append(cand, s)
		}
	}
	db.mu.RUnlock()
	out := make([]SeriesData, 0, len(cand))
	for _, s := range cand {
		s.mu.Lock()
		hi := sort.Search(len(s.data), func(i int) bool { return s.data[i].T > ts })
		if hi > 0 && s.data[hi-1].T >= ts-lookbackMS {
			out = append(out, SeriesData{Labels: s.labels, Samples: []Sample{s.data[hi-1]}})
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.String() < out[j].Labels.String() })
	return out
}

// Series returns label sets of matching series.
func (db *DB) Series(sel []*labels.Matcher) []labels.Labels {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []labels.Labels
	for _, s := range db.ordered {
		if labels.MatchLabels(s.labels, sel) {
			out = append(out, s.labels)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// LabelValues returns distinct values of a label across series.
func (db *DB) LabelValues(name string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	set := map[string]bool{}
	for _, s := range db.ordered {
		if v := s.labels.Get(name); v != "" {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// DeleteBefore drops samples older than ts (ms) and removes series that
// become empty. It returns the number of samples dropped.
func (db *DB) DeleteBefore(ts int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	kept := db.ordered[:0]
	for _, s := range db.ordered {
		s.mu.Lock()
		lo := sort.Search(len(s.data), func(i int) bool { return s.data[i].T >= ts })
		dropped += lo
		if lo > 0 {
			s.data = append([]Sample(nil), s.data[lo:]...)
		}
		empty := len(s.data) == 0
		s.mu.Unlock()
		if empty {
			fp := s.labels.Fingerprint()
			list := db.series[fp]
			for i, other := range list {
				if other == s {
					db.series[fp] = append(list[:i], list[i+1:]...)
					break
				}
			}
			if len(db.series[fp]) == 0 {
				delete(db.series, fp)
			}
			continue
		}
		kept = append(kept, s)
	}
	db.ordered = kept
	return dropped
}

// Stats reports counters.
type Stats struct {
	Series  int
	Samples int64
	Dropped int64
}

// Stats returns a snapshot of DB counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	n := len(db.ordered)
	db.mu.RUnlock()
	db.statsMu.Lock()
	defer db.statsMu.Unlock()
	return Stats{Series: n, Samples: db.appends, Dropped: db.dropped}
}
