package loki

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/tenant"
)

// This file implements Loki's HTTP API surface so that Promtail-style
// clients and LogCLI can speak to the store over the wire:
//
//	POST /loki/api/v1/push                  (the Fig. 3 JSON payload)
//	GET  /loki/api/v1/labels
//	GET  /loki/api/v1/label/{name}/values
//	GET  /loki/api/v1/series?match[]=...
//
// Query endpoints (instant/range) live on the engine side; see the logql
// package and internal/grafana.

// pushRequest is the Loki push-API JSON body: Fig. 3 of the paper.
type pushRequest struct {
	Streams []pushStream `json:"streams"`
}

type pushStream struct {
	Stream map[string]string `json:"stream"`
	Values [][2]string       `json:"values"` // [ns-epoch string, line]
}

// ParsePushRequest decodes the Loki push JSON into PushStreams.
func ParsePushRequest(data []byte) ([]PushStream, error) {
	var req pushRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("loki: bad push payload: %w", err)
	}
	out := make([]PushStream, 0, len(req.Streams))
	for _, s := range req.Streams {
		ps := PushStream{Labels: labels.FromMap(s.Stream)}
		for _, v := range s.Values {
			ts, err := strconv.ParseInt(v[0], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("loki: bad timestamp %q: %w", v[0], err)
			}
			ps.Entries = append(ps.Entries, Entry{Timestamp: ts, Line: v[1]})
		}
		out = append(out, ps)
	}
	return out, nil
}

// MarshalPushRequest encodes PushStreams as the Loki push JSON.
func MarshalPushRequest(streams []PushStream) ([]byte, error) {
	req := pushRequest{Streams: make([]pushStream, 0, len(streams))}
	for _, s := range streams {
		ps := pushStream{Stream: s.Labels.Map()}
		for _, e := range s.Entries {
			ps.Values = append(ps.Values, [2]string{strconv.FormatInt(e.Timestamp, 10), e.Line})
		}
		req.Streams = append(req.Streams, ps)
	}
	return json.Marshal(req)
}

// Handler exposes the store's write and metadata API.
func (s *Store) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/loki/api/v1/push", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var body []byte
		buf := make([]byte, 4096)
		for {
			n, err := r.Body.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		streams, err := ParsePushRequest(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.PushTenant(tenant.FromRequest(r), streams); err != nil {
			// Loki returns 400 for validation/ordering rejects and 429
			// when the tenant's ingest quota is exhausted.
			code := http.StatusBadRequest
			if errors.Is(err, ErrRateLimited) {
				code = http.StatusTooManyRequests
			}
			http.Error(w, err.Error(), code)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("/loki/api/v1/labels", func(w http.ResponseWriter, r *http.Request) {
		names := map[string]bool{}
		for _, ls := range s.SeriesTenant(tenant.FromRequest(r), nil) {
			for _, l := range ls {
				names[l.Name] = true
			}
		}
		out := make([]string, 0, len(names))
		for n := range names {
			out = append(out, n)
		}
		sort.Strings(out)
		writeLokiJSON(w, map[string]interface{}{"status": "success", "data": out})
	})
	mux.HandleFunc("/loki/api/v1/label/", func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/loki/api/v1/label/")
		name := strings.TrimSuffix(rest, "/values")
		if name == rest || name == "" {
			http.NotFound(w, r)
			return
		}
		writeLokiJSON(w, map[string]interface{}{"status": "success", "data": s.LabelValuesTenant(tenant.FromRequest(r), name)})
	})
	mux.HandleFunc("/loki/api/v1/series", func(w http.ResponseWriter, r *http.Request) {
		var sel labels.Selector
		if m := r.URL.Query().Get("match[]"); m != "" {
			parsed, err := parseSimpleSelector(m)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			sel = parsed
		}
		var data []map[string]string
		for _, ls := range s.SeriesTenant(tenant.FromRequest(r), sel) {
			data = append(data, ls.Map())
		}
		writeLokiJSON(w, map[string]interface{}{"status": "success", "data": data})
	})
	return mux
}

func writeLokiJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// parseSimpleSelector parses {a="b", c="d"} with equality matchers only —
// enough for the series endpoint without importing the logql parser
// (which would create an import cycle).
func parseSimpleSelector(s string) (labels.Selector, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return nil, fmt.Errorf("loki: bad selector %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	if inner == "" {
		return nil, nil
	}
	var sel labels.Selector
	for _, part := range strings.Split(inner, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("loki: bad matcher %q", part)
		}
		name := strings.TrimSpace(kv[0])
		val := strings.Trim(strings.TrimSpace(kv[1]), `"`)
		m, err := labels.NewMatcher(labels.MatchEqual, name, val)
		if err != nil {
			return nil, err
		}
		sel = append(sel, m)
	}
	return sel, nil
}

// Client pushes to a remote Loki over HTTP; Promtail and the forwarders
// can use it in place of a direct *Store handle.
type Client struct {
	url    string
	client *http.Client
	org    string
	token  string
}

// NewClient returns a push client for the Loki at base URL.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{url: base + "/loki/api/v1/push", client: httpClient}
}

// SetOrgID stamps the X-Scope-OrgID header on every push, routing the
// batches into that tenant's namespace.
func (c *Client) SetOrgID(id string) { c.org = id }

// SetToken sends a bearer token with every push, for stores behind
// tenant auth.
func (c *Client) SetToken(tok string) { c.token = tok }

// Push sends one batch.
func (c *Client) Push(streams []PushStream) error {
	body, err := MarshalPushRequest(streams)
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, c.url, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.org != "" {
		req.Header.Set(tenant.OrgIDHeader, c.org)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return fmt.Errorf("loki: push: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("loki: push status %d", resp.StatusCode)
	}
	return nil
}
