package kafka

import (
	"sync"
	"time"
)

// Consumer is a convenience wrapper implementing the subscribe/poll/commit
// loop used by the telemetry API server and the K3s-pod-style clients. It
// auto-commits offsets as messages are returned.
type Consumer struct {
	b      *Broker
	group  string
	member string
	topics []string

	mu     sync.Mutex
	closed bool
}

// NewConsumer joins the group and subscribes to the topics.
func NewConsumer(b *Broker, group, member string, topics ...string) *Consumer {
	b.JoinGroup(group, member)
	return &Consumer{b: b, group: group, member: member, topics: topics}
}

// Poll fetches up to max messages across the member's assigned partitions,
// waiting up to timeout if none are immediately available. Offsets are
// committed as messages are returned (at-most-once delivery, which is what
// the paper's monitoring pipeline wants: stale telemetry is worthless).
func (c *Consumer) Poll(max int, timeout time.Duration) ([]Message, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, nil
	}
	c.mu.Unlock()

	var out []Message
	grab := func(wait time.Duration) error {
		for _, topic := range c.topics {
			parts, err := c.b.Assignment(c.group, c.member, topic)
			if err != nil {
				return err
			}
			for _, p := range parts {
				if len(out) >= max {
					return nil
				}
				off := c.b.Committed(c.group, topic, p)
				low, _, err := c.b.Watermarks(topic, p)
				if err != nil {
					return err
				}
				if off < low {
					off = low // skip messages lost to retention
				}
				var msgs []Message
				if wait > 0 {
					msgs, err = c.b.FetchWait(topic, p, off, max-len(out), wait)
				} else {
					msgs, err = c.b.Fetch(topic, p, off, max-len(out))
				}
				if err != nil {
					return err
				}
				if len(msgs) > 0 {
					c.b.Commit(c.group, topic, p, msgs[len(msgs)-1].Offset+1)
					out = append(out, msgs...)
				}
			}
		}
		return nil
	}
	if err := grab(0); err != nil {
		return nil, err
	}
	if len(out) == 0 && timeout > 0 {
		// One blocking pass distributed over the first assigned partition.
		if err := grab(timeout); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Close leaves the consumer group.
func (c *Consumer) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.b.LeaveGroup(c.group, c.member)
}
