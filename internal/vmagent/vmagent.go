// Package vmagent implements the scraper of the paper's metrics pipeline:
// "VMagent collects metrics from all the Prometheus-style exporters and
// sends data to VictoriaMetrics." It scrapes /metrics endpoints on an
// interval, attaches job/instance labels, and appends to the tsdb.
package vmagent

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"sync"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
	"shastamon/internal/resilience"
	"shastamon/internal/tsdb"
)

// RelabelAction selects what a relabel rule does.
type RelabelAction string

// Relabel actions, the subset of Prometheus relabeling vmagent supports
// here: filtering series and rewriting label values at scrape time.
const (
	RelabelKeep      RelabelAction = "keep"      // drop series whose SourceLabel does not match Regex
	RelabelDrop      RelabelAction = "drop"      // drop series whose SourceLabel matches Regex
	RelabelReplace   RelabelAction = "replace"   // set TargetLabel to Replacement ($1... from Regex on SourceLabel)
	RelabelLabelDrop RelabelAction = "labeldrop" // remove labels whose NAME matches Regex
)

// RelabelConfig is one metric relabeling rule applied after a scrape.
type RelabelConfig struct {
	Action      RelabelAction
	SourceLabel string // label to match ("__name__" for the metric name)
	Regex       string
	TargetLabel string // for replace
	Replacement string // for replace; $1 etc. expand from Regex
}

// ScrapeConfig is one scrape job.
type ScrapeConfig struct {
	JobName        string
	Targets        []string // full URLs including path, e.g. http://host/metrics
	MetricRelabels []RelabelConfig
}

type compiledRelabel struct {
	cfg RelabelConfig
	re  *regexp.Regexp
}

type compiledJob struct {
	cfg      ScrapeConfig
	relabels []compiledRelabel
}

// Agent scrapes targets and remote-writes into a DB.
type Agent struct {
	db     *tsdb.DB
	client *http.Client
	jobs   []compiledJob

	obsOnce sync.Once
	obsReg  *obs.Registry

	// Per-target circuit breakers: a target that fails repeatedly is
	// skipped (still recording up=0) until its open window expires, so a
	// hung exporter cannot stall the whole scrape loop on timeouts.
	// Breakers run on the scrape timestamp, not the wall clock, so they
	// track simulated time in experiments.
	bmu         sync.Mutex
	breakers    map[string]*resilience.Breaker
	brkOpenFor  time.Duration
	brkFailures int

	mu    sync.Mutex
	stats Stats

	// Per-target scrape freshness on the scrape-timestamp clock, for the
	// staleness gauge: a target whose breaker is open or whose exporter
	// keeps failing has lastAttempt advancing while lastSuccess does not.
	fmu       sync.Mutex
	freshness map[string]*targetFreshness
}

type targetFreshness struct {
	firstAttempt time.Time
	lastAttempt  time.Time
	lastSuccess  time.Time
}

// Stats counts scrape outcomes.
type Stats struct {
	Scrapes  int64
	Failures int64
	Skipped  int64 // scrapes suppressed by an open breaker
	Samples  int64
}

// New returns an agent writing to db; nil client gets a 10s timeout.
func New(db *tsdb.DB, client *http.Client, jobs ...ScrapeConfig) (*Agent, error) {
	if db == nil {
		return nil, fmt.Errorf("vmagent: db required")
	}
	compiled := make([]compiledJob, 0, len(jobs))
	for _, j := range jobs {
		if j.JobName == "" || len(j.Targets) == 0 {
			return nil, fmt.Errorf("vmagent: job needs a name and targets: %+v", j)
		}
		cj := compiledJob{cfg: j}
		for _, rc := range j.MetricRelabels {
			re, err := regexp.Compile("^(?:" + rc.Regex + ")$")
			if err != nil {
				return nil, fmt.Errorf("vmagent: job %s relabel regex %q: %w", j.JobName, rc.Regex, err)
			}
			switch rc.Action {
			case RelabelKeep, RelabelDrop, RelabelLabelDrop:
			case RelabelReplace:
				if rc.TargetLabel == "" {
					return nil, fmt.Errorf("vmagent: replace relabel needs a target label")
				}
			default:
				return nil, fmt.Errorf("vmagent: unknown relabel action %q", rc.Action)
			}
			cj.relabels = append(cj.relabels, compiledRelabel{cfg: rc, re: re})
		}
		compiled = append(compiled, cj)
	}
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{
		db: db, client: client, jobs: compiled,
		breakers:    map[string]*resilience.Breaker{},
		brkOpenFor:  30 * time.Second,
		brkFailures: 3,
	}, nil
}

// SetBreakerOpenFor overrides how long a tripped target breaker stays
// open before a probe scrape is admitted (default 30s).
func (a *Agent) SetBreakerOpenFor(d time.Duration) {
	a.bmu.Lock()
	defer a.bmu.Unlock()
	a.brkOpenFor = d
}

func (a *Agent) breakerFor(target string) *resilience.Breaker {
	a.bmu.Lock()
	defer a.bmu.Unlock()
	b, ok := a.breakers[target]
	if !ok {
		b = resilience.NewBreaker(resilience.BreakerConfig{
			Name: target, FailureThreshold: a.brkFailures, OpenFor: a.brkOpenFor,
		})
		a.breakers[target] = b
	}
	return b
}

// BreakerStates reports each known target's breaker state at ts (targets
// never scraped are absent). The pipeline unites these into the
// shastamon_breaker_state family.
func (a *Agent) BreakerStates(ts time.Time) map[string]resilience.State {
	a.bmu.Lock()
	defer a.bmu.Unlock()
	out := make(map[string]resilience.State, len(a.breakers))
	for t, b := range a.breakers {
		out[t] = b.StateAt(ts)
	}
	return out
}

// applyRelabels transforms one sample; the returned bool is false when the
// series is dropped.
func applyRelabels(rules []compiledRelabel, name string, ls labels.Labels) (string, labels.Labels, bool) {
	get := func(label string) string {
		if label == tsdb.MetricNameLabel {
			return name
		}
		return ls.Get(label)
	}
	for _, r := range rules {
		switch r.cfg.Action {
		case RelabelKeep:
			if !r.re.MatchString(get(r.cfg.SourceLabel)) {
				return name, ls, false
			}
		case RelabelDrop:
			if r.re.MatchString(get(r.cfg.SourceLabel)) {
				return name, ls, false
			}
		case RelabelReplace:
			src := get(r.cfg.SourceLabel)
			m := r.re.FindStringSubmatchIndex(src)
			if m == nil {
				continue
			}
			val := string(r.re.ExpandString(nil, r.cfg.Replacement, src, m))
			if r.cfg.TargetLabel == tsdb.MetricNameLabel {
				name = val
			} else {
				ls = ls.With(r.cfg.TargetLabel, val)
			}
		case RelabelLabelDrop:
			kept := ls[:0:0]
			for _, l := range ls {
				if !r.re.MatchString(l.Name) {
					kept = append(kept, l)
				}
			}
			ls = kept
		}
	}
	return name, ls, true
}

// ScrapeOnce scrapes every target once at the given timestamp (ms applied
// to samples without explicit timestamps). Each target also gets an `up`
// sample: 1 on success, 0 on failure, which the paper's availability
// alerts key on.
func (a *Agent) ScrapeOnce(ts time.Time) error {
	var firstErr error
	for i := range a.jobs {
		for _, target := range a.jobs[i].cfg.Targets {
			if err := a.scrapeTarget(&a.jobs[i], target, ts); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

func (a *Agent) scrapeTarget(cj *compiledJob, target string, ts time.Time) error {
	job := cj.cfg.JobName
	ms := ts.UnixMilli()
	base := labels.FromStrings("job", job, "instance", target)
	bump := func(fail bool) {
		a.mu.Lock()
		a.stats.Scrapes++
		if fail {
			a.stats.Failures++
		}
		a.mu.Unlock()
	}
	a.markAttempt(target, ts)
	brk := a.breakerFor(target)
	if brk.AllowAt(ts) != nil {
		// Failing fast is the breaker doing its job, not a fresh error:
		// record the target as down and move on without an HTTP call.
		a.mu.Lock()
		a.stats.Skipped++
		a.mu.Unlock()
		_ = a.db.AppendMetric("up", base, ms, 0)
		return nil
	}
	fail := func(err error) error {
		brk.FailureAt(ts)
		bump(true)
		_ = a.db.AppendMetric("up", base, ms, 0)
		return err
	}
	resp, err := a.client.Get(target)
	if err != nil {
		return fail(fmt.Errorf("vmagent: scrape %s: %w", target, err))
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("vmagent: scrape %s: status %d", target, resp.StatusCode))
	}
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		return fail(fmt.Errorf("vmagent: scrape %s: %w", target, err))
	}
	brk.SuccessAt(ts)
	a.markSuccess(target, ts)
	bump(false)
	n := int64(0)
	for _, m := range promtext.Samples(fams) {
		sampleTS := ms
		if m.Timestamp != 0 {
			sampleTS = m.Timestamp
		}
		name, lbls, keep := applyRelabels(cj.relabels, m.Name, m.Labels)
		if !keep {
			continue
		}
		ls := lbls.With("job", job).With("instance", target)
		if err := a.db.AppendMetric(name, ls, sampleTS, m.Value); err == nil {
			n++
		}
	}
	_ = a.db.AppendMetric("up", base, ms, 1)
	_ = a.db.AppendMetric("scrape_samples_scraped", base, ms, float64(n))
	a.mu.Lock()
	a.stats.Samples += n
	a.mu.Unlock()
	return nil
}

// Stats returns scrape counters.
func (a *Agent) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Agent) fresh(target string) *targetFreshness {
	if a.freshness == nil {
		a.freshness = map[string]*targetFreshness{}
	}
	f := a.freshness[target]
	if f == nil {
		f = &targetFreshness{}
		a.freshness[target] = f
	}
	return f
}

func (a *Agent) markAttempt(target string, ts time.Time) {
	a.fmu.Lock()
	defer a.fmu.Unlock()
	f := a.fresh(target)
	if f.firstAttempt.IsZero() {
		f.firstAttempt = ts
	}
	if ts.After(f.lastAttempt) {
		f.lastAttempt = ts
	}
}

func (a *Agent) markSuccess(target string, ts time.Time) {
	a.fmu.Lock()
	defer a.fmu.Unlock()
	f := a.fresh(target)
	if ts.After(f.lastSuccess) {
		f.lastSuccess = ts
	}
}

// StalenessSeconds reports, per target, how far the last attempted scrape
// timestamp has run ahead of the last successful one — 0 for a healthy
// target, growing while an exporter is down or its breaker is open. A
// target that has never succeeded is stale since its first attempt. The
// measure uses scrape timestamps, not the wall clock, so it tracks
// simulated time in experiments.
func (a *Agent) StalenessSeconds() map[string]float64 {
	a.fmu.Lock()
	defer a.fmu.Unlock()
	out := make(map[string]float64, len(a.freshness))
	for target, f := range a.freshness {
		ref := f.lastSuccess
		if ref.IsZero() {
			ref = f.firstAttempt
		}
		s := f.lastAttempt.Sub(ref).Seconds()
		if s < 0 {
			s = 0
		}
		out[target] = s
	}
	return out
}

// Run scrapes on the interval until the context is cancelled. Scrape
// errors are counted, not fatal: a down exporter must simply record up=0.
func (a *Agent) Run(ctx context.Context, interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			_ = a.ScrapeOnce(now)
		}
	}
}
