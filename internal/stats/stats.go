// Package stats implements per-query resource accounting for the read
// path, in the mould of Grafana Loki's stats.Context: a query-scoped
// accumulator carried through context.Context from the HTTP handler down
// to the chunk iterators, counting bytes and lines scanned, chunks
// opened, blocks decompressed, cache hits and misses, shards touched and
// range splits. The paper's operators debug dashboards backed by exactly
// these queries; without the counts a slow panel is a black box.
//
// Hot-path discipline mirrors the ingest side: workers accumulate into
// plain-int64 Worker shards and flush to the shared Context with atomic
// adds on join (and periodically mid-scan, so byte limits and kills are
// observed promptly). A nil *Context is safe everywhere, so instrumented
// code never branches on "is someone watching".
package stats

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel causes attached to the query context when a limit fires. The
// store returns context.Cause(ctx), so callers can errors.Is against
// these to tell a byte-budget breach from an operator kill.
var (
	// ErrMaxBytesScanned is the cancellation cause when a query's
	// cumulative scanned bytes exceed its MaxBytesScanned budget.
	ErrMaxBytesScanned = errors.New("query cancelled: max bytes scanned exceeded")
	// ErrQueryTimeout is the cancellation cause when a query outlives its
	// wall-clock budget.
	ErrQueryTimeout = errors.New("query cancelled: timeout exceeded")
	// ErrKilled is the cancellation cause for an operator kill via
	// POST /debug/queries/{id}/kill.
	ErrKilled = errors.New("query cancelled: killed via /debug/queries")
	// ErrQueueFull is returned (not a cancellation cause — the query
	// never starts) when the query frontend sheds a range query because
	// its bounded admission queue is full; HTTP handlers map it to 429.
	ErrQueueFull = errors.New("query rejected: frontend queue full")
)

// Context accumulates one query's running statistics. All counters are
// atomics: engine workers flush local Worker shards into it concurrently
// while /debug/queries snapshots it live. The zero value is unusable;
// build one with NewContext. All methods are nil-receiver safe.
type Context struct {
	start     time.Time
	execStart atomic.Int64 // UnixNano of first engine touch; 0 = never
	endNS     atomic.Int64 // UnixNano at Finish; 0 = still running

	bytesProcessed     atomic.Int64
	linesProcessed     atomic.Int64
	entriesReturned    atomic.Int64
	streamsSelected    atomic.Int64
	chunksOpened       atomic.Int64
	blocksDecompressed atomic.Int64
	decompressedBytes  atomic.Int64
	cacheHits          atomic.Int64
	cacheMisses        atomic.Int64
	shardsTouched      atomic.Int64
	splits             atomic.Int64

	resultCacheHits     atomic.Int64
	resultCacheMisses   atomic.Int64
	resultCacheHitBytes atomic.Int64

	queueNS atomic.Int64 // set by the frontend (time spent queued before execution)

	maxBytes int64 // scan budget; 0 = unlimited
	breached atomic.Bool
	cancel   context.CancelCauseFunc

	mu    sync.Mutex
	spans []Span
}

// Span is one timed region of query execution, recorded by the layers the
// query passes through and replayed onto the obs tracer by the tracker so
// /debug/trace/{id}?format=waterfall shows query internals.
type Span struct {
	Stage      string
	Start, End time.Time
	Note       string
}

type ctxKey struct{}

// NewContext returns a child of parent carrying a fresh *Context. The
// instrumented read path picks it up with FromContext.
func NewContext(parent context.Context) (context.Context, *Context) {
	c := &Context{start: time.Now()}
	return context.WithValue(parent, ctxKey{}, c), c
}

// FromContext returns the *Context carried by ctx, or nil when the query
// is not being tracked (internal callers like the ruler). Nil is safe to
// use with every method.
func FromContext(ctx context.Context) *Context {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Context)
	return c
}

// ArmLimit installs the per-query scan budget and the cancel function the
// budget (or a kill) fires. maxBytes <= 0 leaves the budget unlimited but
// still arms the cancel for kills.
func (c *Context) ArmLimit(maxBytes int64, cancel context.CancelCauseFunc) {
	if c == nil {
		return
	}
	c.maxBytes = maxBytes
	c.cancel = cancel
}

// MarkExec records the moment the engine actually started evaluating;
// everything between NewContext and here counts as queue time. Only the
// first call wins.
func (c *Context) MarkExec() {
	if c != nil {
		c.execStart.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// Finish pins the query end time so later Snapshot calls stop the clock.
// Only the first call wins.
func (c *Context) Finish() {
	if c != nil {
		c.endNS.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// SetQueueTime records time the query spent queued before evaluation
// (measured by the tracker); it is reported in the summary block.
func (c *Context) SetQueueTime(d time.Duration) {
	if c != nil {
		c.queueNS.Store(int64(d))
	}
}

// addScanned is the budget-enforcing accumulation point: every flushed
// byte/line lands here, and the first flush to push the total past
// maxBytes cancels the query with ErrMaxBytesScanned.
func (c *Context) addScanned(bytes, lines int64) {
	if c == nil {
		return
	}
	total := c.bytesProcessed.Add(bytes)
	c.linesProcessed.Add(lines)
	if c.maxBytes > 0 && total > c.maxBytes && c.cancel != nil {
		if c.breached.CompareAndSwap(false, true) {
			c.cancel(ErrMaxBytesScanned)
		}
	}
}

// AddShardsTouched counts store shards that held at least one candidate
// stream or series for this query.
func (c *Context) AddShardsTouched(n int64) {
	if c != nil {
		c.shardsTouched.Add(n)
	}
}

// AddStreams counts streams (or TSDB series) selected by the query.
func (c *Context) AddStreams(n int64) {
	if c != nil {
		c.streamsSelected.Add(n)
	}
}

// AddSplit counts one sub-evaluation of a range query: one frontend
// time split, or the whole range when no frontend is attached.
func (c *Context) AddSplit() {
	if c != nil {
		c.splits.Add(1)
	}
}

// AddResultCacheHit counts one frontend results-cache hit serving a
// split of this query, carrying approximately bytes of result data.
func (c *Context) AddResultCacheHit(bytes int64) {
	if c != nil {
		c.resultCacheHits.Add(1)
		c.resultCacheHitBytes.Add(bytes)
	}
}

// AddResultCacheMiss counts one frontend results-cache miss.
func (c *Context) AddResultCacheMiss() {
	if c != nil {
		c.resultCacheMisses.Add(1)
	}
}

// AddEntriesReturned counts entries (or vector samples) in the result.
func (c *Context) AddEntriesReturned(n int64) {
	if c != nil {
		c.entriesReturned.Add(n)
	}
}

// AddSpan records a timed region for the trace waterfall.
func (c *Context) AddSpan(stage string, start, end time.Time, note string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.spans = append(c.spans, Span{Stage: stage, Start: start, End: end, Note: note})
	c.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (c *Context) Spans() []Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Span(nil), c.spans...)
}

// LimitBreached reports whether the byte budget fired.
func (c *Context) LimitBreached() bool { return c != nil && c.breached.Load() }

// BytesProcessed returns the running scanned-byte total.
func (c *Context) BytesProcessed() int64 {
	if c == nil {
		return 0
	}
	return c.bytesProcessed.Load()
}

// Worker is a per-worker statistics shard: plain int64 fields a single
// goroutine owns while it scans, merged into the shared Context with one
// batch of atomic adds on FlushTo. Workers flush at chunk granularity, so
// limit enforcement sees the running total promptly without per-line
// atomic traffic.
type Worker struct {
	BytesProcessed     int64
	LinesProcessed     int64
	ChunksOpened       int64
	BlocksDecompressed int64
	DecompressedBytes  int64
	CacheHits          int64
	CacheMisses        int64
}

// FlushTo merges the worker's counts into c and zeroes the worker. Safe
// with a nil Context (the counts are discarded).
func (w *Worker) FlushTo(c *Context) {
	if c != nil {
		c.addScanned(w.BytesProcessed, w.LinesProcessed)
		c.chunksOpened.Add(w.ChunksOpened)
		c.blocksDecompressed.Add(w.BlocksDecompressed)
		c.decompressedBytes.Add(w.DecompressedBytes)
		c.cacheHits.Add(w.CacheHits)
		c.cacheMisses.Add(w.CacheMisses)
	}
	*w = Worker{}
}

// SummaryStats is the top-level section of the statistics block, named
// after Loki's summary fields.
type SummaryStats struct {
	TotalBytesProcessed     int64   `json:"totalBytesProcessed"`
	TotalLinesProcessed     int64   `json:"totalLinesProcessed"`
	TotalEntriesReturned    int64   `json:"totalEntriesReturned"`
	BytesProcessedPerSecond int64   `json:"bytesProcessedPerSecond"`
	LinesProcessedPerSecond int64   `json:"linesProcessedPerSecond"`
	Splits                  int64   `json:"splits"`
	Shards                  int64   `json:"shards"`
	QueueTime               float64 `json:"queueTime"`
	ExecTime                float64 `json:"execTime"`
	TotalTime               float64 `json:"totalTime"`
}

// StoreStats is the store/chunk section of the statistics block.
type StoreStats struct {
	StreamsSelected    int64 `json:"streamsSelected"`
	ChunksOpened       int64 `json:"chunksOpened"`
	BlocksDecompressed int64 `json:"blocksDecompressed"`
	DecompressedBytes  int64 `json:"decompressedBytes"`
	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
}

// FrontendStats is the query-frontend section of the statistics block:
// results-cache effectiveness for this query's splits.
type FrontendStats struct {
	ResultCacheHits     int64 `json:"resultCacheHits"`
	ResultCacheMisses   int64 `json:"resultCacheMisses"`
	ResultCacheHitBytes int64 `json:"resultCacheHitBytes"`
}

// Snapshot is the wire form of a query's statistics: the `statistics`
// object attached to query API responses, the slowlog record and the
// /debug/queries running view.
type Snapshot struct {
	Summary  SummaryStats  `json:"summary"`
	Store    StoreStats    `json:"store"`
	Frontend FrontendStats `json:"frontend"`
}

// Snapshot captures the current totals. On a live query the clock is
// still running; after Finish the times are pinned.
func (c *Context) Snapshot() Snapshot {
	if c == nil {
		return Snapshot{}
	}
	var s Snapshot
	now := time.Now()
	end := now
	if ns := c.endNS.Load(); ns != 0 {
		end = time.Unix(0, ns)
	}
	exec := end.Sub(c.start)
	if ns := c.execStart.Load(); ns != 0 {
		exec = end.Sub(time.Unix(0, ns))
	}
	if exec < 0 {
		exec = 0
	}
	queue := time.Duration(c.queueNS.Load())
	s.Summary = SummaryStats{
		TotalBytesProcessed:  c.bytesProcessed.Load(),
		TotalLinesProcessed:  c.linesProcessed.Load(),
		TotalEntriesReturned: c.entriesReturned.Load(),
		Splits:               c.splits.Load(),
		Shards:               c.shardsTouched.Load(),
		QueueTime:            queue.Seconds(),
		ExecTime:             exec.Seconds(),
		TotalTime:            end.Sub(c.start).Seconds(),
	}
	if sec := exec.Seconds(); sec > 0 {
		s.Summary.BytesProcessedPerSecond = int64(float64(s.Summary.TotalBytesProcessed) / sec)
		s.Summary.LinesProcessedPerSecond = int64(float64(s.Summary.TotalLinesProcessed) / sec)
	}
	s.Store = StoreStats{
		StreamsSelected:    c.streamsSelected.Load(),
		ChunksOpened:       c.chunksOpened.Load(),
		BlocksDecompressed: c.blocksDecompressed.Load(),
		DecompressedBytes:  c.decompressedBytes.Load(),
		CacheHits:          c.cacheHits.Load(),
		CacheMisses:        c.cacheMisses.Load(),
	}
	s.Frontend = FrontendStats{
		ResultCacheHits:     c.resultCacheHits.Load(),
		ResultCacheMisses:   c.resultCacheMisses.Load(),
		ResultCacheHitBytes: c.resultCacheHitBytes.Load(),
	}
	return s
}

// ServerTiming renders the snapshot as a Server-Timing header value:
// queue/exec/total durations plus the headline scan counters as metric
// descriptions.
func (s Snapshot) ServerTiming() string {
	return fmt.Sprintf(
		"queue;dur=%.3f, exec;dur=%.3f, total;dur=%.3f, bytes;desc=%q, lines;desc=%q, cache;desc=%q",
		s.Summary.QueueTime*1000, s.Summary.ExecTime*1000, s.Summary.TotalTime*1000,
		fmt.Sprintf("%d processed", s.Summary.TotalBytesProcessed),
		fmt.Sprintf("%d processed", s.Summary.TotalLinesProcessed),
		fmt.Sprintf("%d hit/%d miss", s.Store.CacheHits, s.Store.CacheMisses),
	)
}
