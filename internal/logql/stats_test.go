package logql

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/stats"
)

// statsCorpus pushes a corpus with known exact totals: streams × perStream
// lines, every line lineLen bytes.
func statsCorpus(t *testing.T, store *loki.Store, streams, perStream, lineLen int) (totalBytes, totalLines int64) {
	t.Helper()
	line := make([]byte, lineLen)
	for i := range line {
		line[i] = 'a' + byte(i%26)
	}
	for s := 0; s < streams; s++ {
		ls := labels.FromStrings("app", "stats", "host", fmt.Sprintf("nid%03d", s))
		entries := make([]loki.Entry, perStream)
		for i := range entries {
			entries[i] = loki.Entry{Timestamp: int64(i+1) * 1e6, Line: string(line)}
		}
		if err := store.Push([]loki.PushStream{{Labels: ls, Entries: entries}}); err != nil {
			t.Fatal(err)
		}
	}
	return int64(streams * perStream * lineLen), int64(streams * perStream)
}

// The tentpole exactness contract: N queries evaluated concurrently on
// one engine (worker shards interleaving on the shared stores) each
// report the exact byte/line/stream totals of the corpus — nothing lost,
// nothing double-counted, no cross-query bleed. Run under -race in CI.
func TestParallelQueryStatsExact(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	const streams, perStream, lineLen = 6, 500, 100
	wantBytes, wantLines := statsCorpus(t, store, streams, perStream, lineLen)
	eng := NewEngine(store)
	eng.SetParallelism(4)

	const queries = 8
	var wg sync.WaitGroup
	snaps := make([]stats.Snapshot, queries)
	errs := make([]error, queries)
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			ctx, sc := stats.NewContext(context.Background())
			res, err := eng.QueryLogsContext(ctx, `{app="stats"}`, 0, 1<<62)
			if err == nil && len(res) != streams {
				err = fmt.Errorf("got %d streams, want %d", len(res), streams)
			}
			sc.Finish()
			snaps[q], errs[q] = sc.Snapshot(), err
		}(q)
	}
	wg.Wait()
	for q := 0; q < queries; q++ {
		if errs[q] != nil {
			t.Fatalf("query %d: %v", q, errs[q])
		}
		s := snaps[q]
		if s.Summary.TotalBytesProcessed != wantBytes {
			t.Fatalf("query %d: bytes = %d, want %d", q, s.Summary.TotalBytesProcessed, wantBytes)
		}
		if s.Summary.TotalLinesProcessed != wantLines {
			t.Fatalf("query %d: lines = %d, want %d", q, s.Summary.TotalLinesProcessed, wantLines)
		}
		if s.Summary.TotalEntriesReturned != wantLines {
			t.Fatalf("query %d: entries = %d, want %d", q, s.Summary.TotalEntriesReturned, wantLines)
		}
		if s.Store.StreamsSelected != streams {
			t.Fatalf("query %d: streams = %d, want %d", q, s.Store.StreamsSelected, streams)
		}
		if s.Store.ChunksOpened < streams {
			t.Fatalf("query %d: chunks = %d, want >= %d", q, s.Store.ChunksOpened, streams)
		}
	}
}

// Cache exactness: with small sealed blocks, the first pass misses and
// later passes hit; hits+misses always equals blocks visited, and the
// counts land in the per-query statistics.
func TestQueryStatsCacheCounts(t *testing.T) {
	lim := loki.DefaultLimits()
	lim.ChunkOptions.BlockSize = 256 // many sealed blocks
	store := loki.NewStore(lim)
	statsCorpus(t, store, 2, 400, 100)
	eng := NewEngine(store)

	run := func() stats.Snapshot {
		ctx, sc := stats.NewContext(context.Background())
		if _, err := eng.QueryLogsContext(ctx, `{app="stats"}`, 0, 1<<62); err != nil {
			t.Fatal(err)
		}
		sc.Finish()
		return sc.Snapshot()
	}
	first := run()
	if first.Store.BlocksDecompressed == 0 || first.Store.CacheMisses == 0 {
		t.Fatalf("first pass decompressed nothing: %+v", first.Store)
	}
	if first.Store.BlocksDecompressed != first.Store.CacheMisses {
		t.Fatalf("misses %d != decompressions %d", first.Store.CacheMisses, first.Store.BlocksDecompressed)
	}
	second := run()
	if second.Store.CacheHits != first.Store.CacheMisses {
		t.Fatalf("second pass hits = %d, want %d (all blocks cached)", second.Store.CacheHits, first.Store.CacheMisses)
	}
	if second.Store.CacheMisses != 0 || second.Store.BlocksDecompressed != 0 {
		t.Fatalf("second pass still decompressing: %+v", second.Store)
	}
}

// The HTTP envelope (Fig. 5/Fig. 8 path): the query API response carries
// a populated Loki-style statistics block and a Server-Timing header.
func TestHTTPStatisticsBlock(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	wantBytes, wantLines := statsCorpus(t, store, 3, 200, 80)
	eng := NewEngine(store)

	rec := httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		"/loki/api/v1/query_range?query=%7Bapp%3D%22stats%22%7D&start=0&end=4611686018427387904", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp struct {
		Data struct {
			Statistics stats.Snapshot `json:"statistics"`
		} `json:"data"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	st := resp.Data.Statistics
	if st.Summary.TotalBytesProcessed != wantBytes || st.Summary.TotalLinesProcessed != wantLines {
		t.Fatalf("statistics = %+v, want %d bytes / %d lines", st.Summary, wantBytes, wantLines)
	}
	if st.Summary.TotalTime <= 0 {
		t.Fatalf("no total time: %+v", st.Summary)
	}
	if h := rec.Header().Get("Server-Timing"); h == "" {
		t.Fatal("no Server-Timing header")
	}

	// Metric form (the Fig. 5 count_over_time shape) carries stats too.
	rec = httptest.NewRecorder()
	eng.Handler().ServeHTTP(rec, httptest.NewRequest("GET",
		"/loki/api/v1/query_range?query=sum(count_over_time(%7Bapp%3D%22stats%22%7D%5B60m%5D))&start=0&end=3600000000000&step=1800", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Data.Statistics.Summary.TotalLinesProcessed == 0 || resp.Data.Statistics.Summary.Splits == 0 {
		t.Fatalf("metric statistics empty: %+v", resp.Data.Statistics.Summary)
	}
}

// blockingStage passes lines through but delays each one until released,
// simulating an expensive pipeline so a kill can land mid-evaluation.
type blockingStage struct {
	delay time.Duration
}

func (b *blockingStage) Process(line string, lbls labels.Labels) (string, labels.Labels, bool) {
	time.Sleep(b.delay)
	return line, lbls, true
}
func (b *blockingStage) String() string { return "<blocking>" }

// Kill promptness: a kill lands while the pipeline is grinding through
// entries, and the query returns ErrKilled long before it would have
// finished on its own.
func TestKillCancelsMidEvaluation(t *testing.T) {
	store := loki.NewStore(loki.DefaultLimits())
	statsCorpus(t, store, 1, 4096, 50) // 4096 slow entries ≈ 4s un-killed
	eng := NewEngine(store)
	tr := stats.NewTracker(nil, stats.Config{})
	eng.SetTracker(tr)

	expr := &LogExpr{
		Selector: mustParseSelector(t, `{app="stats"}`),
		Stages:   []Stage{&blockingStage{delay: time.Millisecond}},
	}
	ctx, finish := tr.Start(context.Background(), "logql", expr.String())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := eng.SelectLogsContext(ctx, expr, 0, 1<<62)
		done <- err
	}()
	// Kill as soon as the query shows up live.
	for {
		if act := tr.Active(); len(act) == 1 {
			if !tr.Kill(act[0].ID) {
				t.Fatal("kill refused")
			}
			break
		}
		time.Sleep(time.Millisecond)
	}
	var err error
	select {
	case err = <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("killed query did not return")
	}
	finish(err)
	if !errors.Is(err, stats.ErrKilled) {
		t.Fatalf("err = %v, want ErrKilled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("kill took %v to stop the scan", elapsed)
	}
}

func mustParseSelector(t *testing.T, s string) labels.Selector {
	t.Helper()
	expr, err := ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return expr.(*LogExpr).Selector
}
