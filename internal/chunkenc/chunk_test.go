package chunkenc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAppendAndIterate(t *testing.T) {
	c := New(Options{})
	for i := 0; i < 100; i++ {
		if err := c.Append(Entry{Timestamp: int64(i * 1000), Line: fmt.Sprintf("line-%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.All(0, 1<<62)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("got %d entries", len(got))
	}
	for i, e := range got {
		if e.Timestamp != int64(i*1000) || e.Line != fmt.Sprintf("line-%d", i) {
			t.Fatalf("entry %d mismatch: %+v", i, e)
		}
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	c := New(Options{})
	if err := c.Append(Entry{Timestamp: 100, Line: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Entry{Timestamp: 99, Line: "b"}); err != ErrOutOfOrder {
		t.Fatalf("want ErrOutOfOrder, got %v", err)
	}
	// Equal timestamps are allowed.
	if err := c.Append(Entry{Timestamp: 100, Line: "c"}); err != nil {
		t.Fatalf("equal ts rejected: %v", err)
	}
}

func TestChunkFullByEntries(t *testing.T) {
	c := New(Options{MaxEntries: 3})
	for i := 0; i < 3; i++ {
		if err := c.Append(Entry{Timestamp: int64(i), Line: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Full() {
		t.Fatal("chunk should be full")
	}
	if err := c.Append(Entry{Timestamp: 9, Line: "y"}); err != ErrChunkFull {
		t.Fatalf("want ErrChunkFull, got %v", err)
	}
	if c.Entries() != 3 {
		t.Fatalf("entry leaked in: %d", c.Entries())
	}
}

func TestChunkFullBySize(t *testing.T) {
	c := New(Options{TargetSize: 64})
	line := strings.Repeat("z", 40)
	_ = c.Append(Entry{Timestamp: 1, Line: line})
	_ = c.Append(Entry{Timestamp: 2, Line: line})
	if !c.Full() {
		t.Fatal("should be full by size")
	}
}

func TestBlockCompressionAndRange(t *testing.T) {
	// Small block size forces several sealed blocks.
	c := New(Options{BlockSize: 256})
	for i := 0; i < 500; i++ {
		line := fmt.Sprintf("syslog message %d from node nid%06d severity=info", i, i%8)
		if err := c.Append(Entry{Timestamp: int64(i) * 1e9, Line: line}); err != nil {
			t.Fatal(err)
		}
	}
	if len(c.blocks) == 0 {
		t.Fatal("expected sealed blocks")
	}
	// Range query hitting a middle slice.
	got, err := c.All(100e9, 109e9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range got %d entries", len(got))
	}
	if got[0].Timestamp != 100e9 || got[9].Timestamp != 109e9 {
		t.Fatalf("range bounds wrong: %d..%d", got[0].Timestamp, got[9].Timestamp)
	}
	// Compression should beat raw for repetitive logs once sealed.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if c.CompressedBytes() >= c.RawBytes() {
		t.Fatalf("no compression win: compressed=%d raw=%d", c.CompressedBytes(), c.RawBytes())
	}
}

func TestBounds(t *testing.T) {
	c := New(Options{})
	if _, _, ok := c.Bounds(); ok {
		t.Fatal("empty chunk has bounds")
	}
	_ = c.Append(Entry{Timestamp: 5, Line: "a"})
	_ = c.Append(Entry{Timestamp: 9, Line: "b"})
	mint, maxt, ok := c.Bounds()
	if !ok || mint != 5 || maxt != 9 {
		t.Fatalf("bounds %d %d %v", mint, maxt, ok)
	}
}

func TestCloseThenAppend(t *testing.T) {
	c := New(Options{})
	_ = c.Append(Entry{Timestamp: 1, Line: "a"})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(Entry{Timestamp: 2, Line: "b"}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.All(0, 10)
	if len(got) != 2 {
		t.Fatalf("got %d", len(got))
	}
}

func TestIteratorSkipsNonOverlappingBlocks(t *testing.T) {
	c := New(Options{BlockSize: 64})
	for i := 0; i < 100; i++ {
		_ = c.Append(Entry{Timestamp: int64(i), Line: strings.Repeat("a", 32)})
	}
	got, err := c.All(200, 300) // beyond the data
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d entries past maxt", len(got))
	}
}

func TestEmptyLines(t *testing.T) {
	c := New(Options{BlockSize: 8})
	for i := 0; i < 10; i++ {
		if err := c.Append(Entry{Timestamp: int64(i), Line: ""}); err != nil {
			t.Fatal(err)
		}
	}
	_ = c.Close()
	got, err := c.All(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("got %d", len(got))
	}
}

// Property: append N entries with non-decreasing timestamps, read them all
// back identically regardless of block size.
func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64, blockSize uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Options{BlockSize: int(blockSize)%512 + 16})
		n := rng.Intn(200) + 1
		in := make([]Entry, 0, n)
		ts := int64(0)
		for i := 0; i < n; i++ {
			ts += rng.Int63n(1e6)
			line := fmt.Sprintf("msg-%d-%x", i, rng.Uint64())
			e := Entry{Timestamp: ts, Line: line}
			if err := c.Append(e); err != nil {
				return false
			}
			in = append(in, e)
		}
		out, err := c.All(0, 1<<62)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if in[i] != out[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a range query returns exactly the entries whose timestamps fall
// in the range.
func TestPropertyRangeQuery(t *testing.T) {
	f := func(seed int64, lo, hi uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Options{BlockSize: 128})
		for i := 0; i < 300; i++ {
			_ = c.Append(Entry{Timestamp: int64(i), Line: fmt.Sprintf("%d-%x", i, rng.Int31())})
		}
		mint, maxt := int64(lo%300), int64(hi%300)
		if mint > maxt {
			mint, maxt = maxt, mint
		}
		got, err := c.All(mint, maxt)
		if err != nil {
			return false
		}
		want := int(maxt - mint + 1)
		if len(got) != want {
			return false
		}
		return got[0].Timestamp == mint && got[len(got)-1].Timestamp == maxt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAppend(b *testing.B) {
	line := `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`
	b.SetBytes(int64(len(line)))
	b.ReportAllocs()
	c := New(Options{TargetSize: 1 << 30, MaxEntries: 1 << 30})
	for i := 0; i < b.N; i++ {
		if err := c.Append(Entry{Timestamp: int64(i), Line: line}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIterate(b *testing.B) {
	c := New(Options{TargetSize: 1 << 30, MaxEntries: 1 << 30})
	line := "ts=2022-03-03T01:47:57Z level=info msg=\"component healthy\" node=nid001234"
	for i := 0; i < 100000; i++ {
		_ = c.Append(Entry{Timestamp: int64(i), Line: line})
	}
	_ = c.Close()
	b.SetBytes(int64(len(line)) * 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := c.Iterator(0, 1<<62)
		n := 0
		for it.Next() {
			n++
		}
		if n != 100000 {
			b.Fatalf("n=%d", n)
		}
	}
}
