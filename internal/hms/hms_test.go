package hms

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/redfish"
	"shastamon/internal/shasta"
)

func testSetup(t *testing.T) (*shasta.Cluster, *kafka.Broker, *Collector) {
	t.Helper()
	cluster, err := shasta.NewCluster(shasta.Config{
		Name: "perlmutter", Cabinets: []int{1203},
		ChassisPerCabinet: 2, BladesPerChassis: 1, NodesPerBMC: 1, SwitchesPerChassis: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	broker := kafka.NewBroker()
	col, err := NewCollector(cluster, broker, 2)
	if err != nil {
		t.Fatal(err)
	}
	return cluster, broker, col
}

func TestTopicsCreated(t *testing.T) {
	_, broker, _ := testSetup(t)
	topics := broker.Topics()
	if len(topics) != len(AllTopics) {
		t.Fatalf("topics: %v", topics)
	}
}

func TestCollectorIdempotentTopics(t *testing.T) {
	cluster, broker, _ := testSetup(t)
	if _, err := NewCollector(cluster, broker, 2); err != nil {
		t.Fatalf("second collector on same broker: %v", err)
	}
}

func TestCollectEventsAndSamples(t *testing.T) {
	cluster, broker, col := testSetup(t)
	ts := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	if err := cluster.InjectLeak("x1203c1b0", "A", "Front", ts); err != nil {
		t.Fatal(err)
	}
	events, samples, err := col.CollectOnce(ts)
	if err != nil {
		t.Fatal(err)
	}
	if events != 1 {
		t.Fatalf("events = %d", events)
	}
	// 2 nodes*2 + 2 chassis fans + 1 cabinet humidity = 7
	if samples != 7 {
		t.Fatalf("samples = %d", samples)
	}

	// The leak event landed on the events topic as a Fig. 2 payload.
	var all []kafka.Message
	for p := 0; p < 2; p++ {
		msgs, err := broker.Fetch(TopicEvents, p, 0, 100)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, msgs...)
	}
	if len(all) != 1 {
		t.Fatalf("event messages: %d", len(all))
	}
	payload, err := redfish.ParsePayload(all[0].Value)
	if err != nil {
		t.Fatal(err)
	}
	if payload.Metrics.Messages[0].Context != "x1203c1b0" {
		t.Fatalf("%+v", payload)
	}
	if !strings.Contains(string(all[0].Value), "CabinetLeakDetected") {
		t.Fatalf("payload: %s", all[0].Value)
	}

	// Temperature samples landed on their topic and decode cleanly.
	var temps []kafka.Message
	for p := 0; p < 2; p++ {
		msgs, _ := broker.Fetch(TopicTemperature, p, 0, 100)
		temps = append(temps, msgs...)
	}
	if len(temps) != 2 {
		t.Fatalf("temperature samples: %d", len(temps))
	}
	var s SensorSample
	if err := json.Unmarshal(temps[0].Value, &s); err != nil {
		t.Fatal(err)
	}
	if s.Sensor != "Temperature" || s.Unit != "Cel" || s.Value == 0 {
		t.Fatalf("%+v", s)
	}
}

func TestEventKeyIsContext(t *testing.T) {
	cluster, broker, col := testSetup(t)
	ts := time.Now()
	_ = cluster.InjectLeak("x1203c0b0", "B", "Rear", ts)
	_ = cluster.InjectLeak("x1203c0b0", "A", "Rear", ts)
	if _, _, err := col.CollectOnce(ts); err != nil {
		t.Fatal(err)
	}
	// Same Context key -> same partition -> ordered.
	counts := 0
	for p := 0; p < 2; p++ {
		msgs, _ := broker.Fetch(TopicEvents, p, 0, 100)
		if len(msgs) > 0 {
			counts++
			if len(msgs) != 2 {
				t.Fatalf("events split across partitions")
			}
		}
	}
	if counts != 1 {
		t.Fatal("expected exactly one active partition")
	}
}

func TestCollectorRunLoop(t *testing.T) {
	cluster, broker, col := testSetup(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- col.Run(ctx, 2*time.Millisecond) }()
	_ = cluster.InjectLeak("x1203c0b0", "A", "Front", time.Now())
	deadline := time.After(2 * time.Second)
	for {
		var total int64
		for p := 0; p < 2; p++ {
			_, high, err := broker.Watermarks(TopicEvents, p)
			if err != nil {
				t.Fatal(err)
			}
			total += high
		}
		if total >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("collector never produced")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
}
