package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/loki"
	"shastamon/internal/shasta"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

func testPipeline(t *testing.T, opts core.Options) *core.Pipeline {
	t.Helper()
	if opts.Cluster.Name == "" {
		opts.Cluster = shasta.Config{
			Name: "perlmutter", Cabinets: []int{1002, 1203},
			ChassisPerCabinet: 2, BladesPerChassis: 1, NodesPerBMC: 1, SwitchesPerChassis: 8, Seed: 3,
		}
	}
	p, err := core.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func get(t *testing.T, mux *http.ServeMux, url string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

// queryStatus is the single error→status mapping both query handlers
// share: backpressure is 429, a deadline 504, anything else 500. Parse
// errors never reach it (handlers pre-validate with 400).
func TestQueryStatusMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{stats.ErrQueueFull, http.StatusTooManyRequests},
		{stats.ErrQueryTimeout, http.StatusGatewayTimeout},
		{stats.ErrMaxBytesScanned, http.StatusInternalServerError},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := queryStatus(c.err); got != c.want {
			t.Errorf("queryStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestParseTimeParam(t *testing.T) {
	def := time.Unix(0, 42)
	if got, err := parseTimeParam("", def); err != nil || !got.Equal(def) {
		t.Fatalf("empty: %v %v", got, err)
	}
	if got, err := parseTimeParam("1500000000000000000", def); err != nil || got.UnixNano() != 1500000000000000000 {
		t.Fatalf("unix nanos: %v %v", got, err)
	}
	if got, err := parseTimeParam("2022-03-03T01:47:57Z", def); err != nil ||
		!got.Equal(time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)) {
		t.Fatalf("rfc3339: %v %v", got, err)
	}
	if _, err := parseTimeParam("yesterday-ish", def); err == nil {
		t.Fatal("garbage accepted")
	}
}

// /query/logs: parse and validation errors are 400, success is 200, and
// engine errors route through queryStatus instead of a blanket 400.
func TestQueryLogsStatusCodes(t *testing.T) {
	p := testPipeline(t, core.Options{})
	mustTickAt(t, p, time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC))
	mux := newStatusMux(p, serverOpts{})

	if rr := get(t, mux, `/query/logs?q={app="fabric_manager_monitor"}`, nil); rr.Code != http.StatusOK {
		t.Fatalf("valid query: %d %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/query/logs?q={app=`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("parse error: %d, want 400", rr.Code)
	}
	// A metric expression is not a log selector: still a 400, pre-engine.
	if rr := get(t, mux, `/query/logs?q=count_over_time({app="x"}[5m])`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("metric expr on log endpoint: %d, want 400", rr.Code)
	}
	if rr := get(t, mux, `/query/logs?q={app="x"}&start=not-a-time`, nil); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "start:") {
		t.Fatalf("bad start: %d %q, want 400 naming start", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/query/logs?q={app="x"}&end=2022-99-99`, nil); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "end:") {
		t.Fatalf("bad end: %d %q, want 400 naming end", rr.Code, rr.Body.String())
	}
	// Explicit RFC3339 and unix-nano bounds are accepted.
	if rr := get(t, mux, `/query/logs?q={app="x"}&start=2022-03-03T00:00:00Z&end=1646273280000000000`, nil); rr.Code != http.StatusOK {
		t.Fatalf("explicit window: %d %s", rr.Code, rr.Body.String())
	}
}

// An engine-side failure on /query/logs must not masquerade as a client
// error: a query killed by the timeout guardrail returns 504.
func TestQueryLogsEngineTimeoutIs504(t *testing.T) {
	p := testPipeline(t, core.Options{
		LokiLimits: loki.Limits{QueryTimeout: time.Nanosecond},
	})
	mustTickAt(t, p, time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC))
	mux := newStatusMux(p, serverOpts{})
	rr := get(t, mux, `/query/logs?q={app="fabric_manager_monitor"}`, nil)
	if rr.Code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out query: %d %s, want 504", rr.Code, rr.Body.String())
	}
}

func TestQueryMetricsStatusCodes(t *testing.T) {
	p := testPipeline(t, core.Options{})
	mustTickAt(t, p, time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC))
	mux := newStatusMux(p, serverOpts{})
	if rr := get(t, mux, `/query/metrics?q=node_temp_celsius`, nil); rr.Code != http.StatusOK {
		t.Fatalf("valid query: %d %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/query/metrics?q=sum(`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("parse error: %d, want 400", rr.Code)
	}
}

// /api/v1/heatmap rejects inverted and oversized grids with 400s that
// say what to fix, before any query work happens.
func TestHeatmapWindowValidation(t *testing.T) {
	p := testPipeline(t, core.Options{})
	mustTickAt(t, p, time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC))
	mux := newStatusMux(p, serverOpts{})

	if rr := get(t, mux, `/api/v1/heatmap?since=10m&step=2m`, nil); rr.Code != http.StatusOK {
		t.Fatalf("valid window: %d %s", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/api/v1/heatmap?since=5m&step=10m`, nil); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "step") {
		t.Fatalf("step > since: %d %q, want 400 naming step", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/api/v1/heatmap?since=2000h&step=1s`, nil); rr.Code != http.StatusBadRequest ||
		!strings.Contains(rr.Body.String(), "buckets") {
		t.Fatalf("bucket blowup: %d %q, want 400 naming buckets", rr.Code, rr.Body.String())
	}
	if rr := get(t, mux, `/api/v1/heatmap?since=banana`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("unparseable since: %d, want 400", rr.Code)
	}
	if rr := get(t, mux, `/api/v1/heatmap?step=-2m`, nil); rr.Code != http.StatusBadRequest {
		t.Fatalf("negative step: %d, want 400", rr.Code)
	}
}

// With tenant tokens configured, the query endpoints demand a bearer
// token; status endpoints stay open; the default single-tenant setup
// (no tokens) keeps everything reachable without headers.
func TestTenantAuthOnQueryEndpoints(t *testing.T) {
	p := testPipeline(t, core.Options{})
	mustTickAt(t, p, time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC))
	auth := tenant.NewAuth(map[string]string{"s3cr3t": "hpc-a"})
	mux := newStatusMux(p, serverOpts{auth: auth})

	for _, url := range []string{
		`/query/logs?q={app="x"}`,
		`/query/metrics?q=node_temp_celsius`,
		`/api/v1/heatmap?since=10m&step=2m`,
	} {
		if rr := get(t, mux, url, nil); rr.Code != http.StatusUnauthorized {
			t.Fatalf("%s without token: %d, want 401", url, rr.Code)
		}
		if rr := get(t, mux, url, map[string]string{"Authorization": "Bearer nope"}); rr.Code != http.StatusUnauthorized {
			t.Fatalf("%s with bad token: %d, want 401", url, rr.Code)
		}
		if rr := get(t, mux, url, map[string]string{"Authorization": "Bearer s3cr3t"}); rr.Code != http.StatusOK {
			t.Fatalf("%s with token: %d %s", url, rr.Code, rr.Body.String())
		}
	}
	// A token for tenant hpc-a cannot claim to be another org.
	rr := get(t, mux, `/query/logs?q={app="x"}`, map[string]string{
		"Authorization": "Bearer s3cr3t", tenant.OrgIDHeader: "hpc-b",
	})
	if rr.Code != http.StatusUnauthorized {
		t.Fatalf("org mismatch: %d, want 401", rr.Code)
	}
	if rr := get(t, mux, "/status", nil); rr.Code != http.StatusOK {
		t.Fatalf("status behind auth: %d", rr.Code)
	}
}

func mustTickAt(t *testing.T, p *core.Pipeline, now time.Time) {
	t.Helper()
	if err := p.Tick(now); err != nil {
		t.Fatal(err)
	}
}
