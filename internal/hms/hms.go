// Package hms implements the hardware management service collector: the
// component that receives Redfish events and sensor telemetry from the
// cluster's controllers and "pushes data to Kafka, where Kafka stores data
// in different topics by categories".
package hms

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"shastamon/internal/kafka"
	"shastamon/internal/obs"
	"shastamon/internal/redfish"
	"shastamon/internal/resilience"
	"shastamon/internal/shasta"
)

// Kafka topics, mirroring the SMA topic taxonomy on real Shasta systems.
const (
	TopicEvents      = "cray-dmtf-resource-event"
	TopicTemperature = "cray-telemetry-temperature"
	TopicPower       = "cray-telemetry-power"
	TopicFan         = "cray-telemetry-fan-speed"
	TopicHumidity    = "cray-telemetry-humidity"
	TopicSyslog      = "cray-syslog"
	TopicFabric      = "cray-fabric-health"
)

// AllTopics lists every topic the collector produces to or that adjacent
// producers (rsyslog aggregator, fabric monitor) use.
var AllTopics = []string{
	TopicEvents, TopicTemperature, TopicPower, TopicFan, TopicHumidity, TopicSyslog, TopicFabric,
}

// SensorSample is the JSON record produced to telemetry topics.
type SensorSample struct {
	Context         string  `json:"Context"`
	PhysicalContext string  `json:"PhysicalContext"`
	Sensor          string  `json:"Sensor"`
	Value           float64 `json:"Value"`
	Unit            string  `json:"Unit"`
	Timestamp       string  `json:"Timestamp"`
}

// Collector polls the cluster and produces to Kafka.
type Collector struct {
	cluster *shasta.Cluster
	broker  *kafka.Broker
	tracer  *obs.Tracer
	// policy retries transient produce failures. DrainEvents is
	// destructive, so giving up on a produce loses the drained records —
	// the retry absorbs broker flakes before that happens.
	policy resilience.Policy

	reg       *obs.Registry
	events    *obs.Counter
	samples   *obs.Counter
	produceEr *obs.Counter
}

// NewCollector creates the topics (idempotently) and returns a collector.
func NewCollector(cluster *shasta.Cluster, broker *kafka.Broker, partitions int) (*Collector, error) {
	if partitions <= 0 {
		partitions = 4
	}
	for _, t := range AllTopics {
		if err := broker.CreateTopic(t, partitions); err != nil && !errors.Is(err, kafka.ErrTopicExists) {
			return nil, err
		}
	}
	c := &Collector{cluster: cluster, broker: broker, reg: obs.NewRegistry()}
	c.policy = resilience.Policy{MaxAttempts: 4, Initial: time.Millisecond, Max: 20 * time.Millisecond}
	c.events = c.reg.Counter(obs.Namespace+"hms_events_collected_total",
		"Redfish event records drained from the cluster and produced to Kafka.")
	c.samples = c.reg.Counter(obs.Namespace+"hms_samples_collected_total",
		"Sensor samples swept from the cluster and produced to Kafka.")
	c.produceEr = c.reg.Counter(obs.Namespace+"hms_push_errors_total",
		"Failures marshalling or producing collected telemetry.")
	return c, nil
}

// Metrics exposes the collector's self-monitoring registry.
func (c *Collector) Metrics() *obs.Registry { return c.reg }

// SetTracer attaches an event tracer; every collected Redfish event mints
// a trace ID (the event's origin stage) that rides to Kafka as a message
// header. A nil tracer disables tracing.
func (c *Collector) SetTracer(t *obs.Tracer) { c.tracer = t }

// SetRetryPolicy overrides the produce retry policy.
func (c *Collector) SetRetryPolicy(p resilience.Policy) { c.policy = p }

func topicForSensor(sensor string) string {
	switch sensor {
	case "Temperature":
		return TopicTemperature
	case "Power":
		return TopicPower
	case "Fan":
		return TopicFan
	case "Humidity":
		return TopicHumidity
	}
	return TopicEvents
}

// CollectOnce drains pending Redfish events and takes one sensor sweep,
// producing everything to Kafka. It returns the number of event records
// and sensor samples produced.
func (c *Collector) CollectOnce(ts time.Time) (events, samples int, err error) {
	for _, rec := range c.cluster.DrainEvents() {
		payload := redfish.NewPayload(rec)
		data, err := payload.Marshal()
		if err != nil {
			c.produceEr.Inc()
			return events, samples, fmt.Errorf("hms: marshal event: %w", err)
		}
		note := ""
		if len(rec.Events) > 0 {
			note = rec.Events[0].MessageID
		}
		id := c.tracer.Start(rec.Context, ts, note)
		msg := kafka.Message{Topic: TopicEvents, Key: []byte(rec.Context), Value: data, Timestamp: ts}
		if id != "" {
			msg.Headers = map[string]string{obs.TraceHeader: id}
		}
		var part int
		var off int64
		t0 := time.Now()
		err = resilience.Retry(c.policy, func() error {
			var perr error
			part, off, perr = c.broker.ProduceMessage(msg)
			return perr
		})
		if err != nil {
			c.produceEr.Inc()
			return events, samples, err
		}
		// Timed span: anchored on the simulated clock, wall-clock long.
		c.tracer.Span(id, "kafka.produce", ts, ts.Add(time.Since(t0)),
			fmt.Sprintf("%s/%d@%d", TopicEvents, part, off))
		events++
		c.events.Inc()
	}
	for _, r := range c.cluster.SensorReadings(ts) {
		sample := SensorSample{
			Context:         r.Xname,
			PhysicalContext: r.PhysicalContext,
			Sensor:          r.Sensor,
			Value:           r.Value,
			Unit:            r.Unit,
			Timestamp:       r.Timestamp.UTC().Format(time.RFC3339Nano),
		}
		data, err := json.Marshal(sample)
		if err != nil {
			c.produceEr.Inc()
			return events, samples, fmt.Errorf("hms: marshal sample: %w", err)
		}
		if err := resilience.Retry(c.policy, func() error {
			_, _, perr := c.broker.Produce(topicForSensor(r.Sensor), []byte(r.Xname), data, ts)
			return perr
		}); err != nil {
			c.produceEr.Inc()
			return events, samples, err
		}
		samples++
		c.samples.Inc()
	}
	return events, samples, nil
}

// Run collects on the interval until the context is cancelled.
func (c *Collector) Run(ctx context.Context, interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case now := <-t.C:
			if _, _, err := c.CollectOnce(now); err != nil {
				return err
			}
		}
	}
}
