package main

import (
	"fmt"
	"net/http"
	"net/url"
	"time"

	"shastamon/internal/anomaly"
)

// queryHeatmap fetches the node × time error-density grid from a running
// omnid and renders it as terminal shading — the CLI counterpart of the
// Grafana heatmap panel.
func queryHeatmap(base string, since, step time.Duration) error {
	// Fail locally on windows the server would 400 anyway.
	if err := anomaly.ValidateHeatmapWindow(since, step); err != nil {
		return err
	}
	q := url.Values{}
	q.Set("since", since.String())
	q.Set("step", step.String())
	client := &http.Client{Timeout: 30 * time.Second}
	var hm anomaly.Heatmap
	if err := getJSON(client, base+"/api/v1/heatmap?"+q.Encode(), &hm); err != nil {
		return err
	}
	fmt.Print(anomaly.RenderHeatmap(hm))
	return nil
}
