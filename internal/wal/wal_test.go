package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func collect(t *testing.T, dir string, repair bool) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	st, err := Replay(dir, repair, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir, true)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if st.Corrupt != 0 || st.Truncated {
		t.Fatalf("clean log reported corruption: %+v", st)
	}
}

func TestSegmentRotationAndDropBefore(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(bytes.Repeat([]byte{'x'}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Rotates == 0 {
		t.Fatalf("expected rotations with 64-byte segments, got %+v", st)
	}
	idx, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.DropBefore(idx); err != nil {
		t.Fatal(err)
	}
	idxs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range idxs {
		if n < idx {
			t.Fatalf("segment %d survived DropBefore(%d)", n, idx)
		}
	}
	if err := l.Append([]byte("after-truncate")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, false)
	if len(got) != 1 || string(got[0]) != "after-truncate" {
		t.Fatalf("post-truncation replay = %q", got)
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{})
	if err := l.Append([]byte("one")); err != nil {
		t.Fatal(err)
	}
	first := l.Stats().Segment
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().Segment; got <= first {
		t.Fatalf("reopen segment %d, want > %d", got, first)
	}
	if err := l2.Append([]byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, false)
	if len(got) != 2 || string(got[0]) != "one" || string(got[1]) != "two" {
		t.Fatalf("replay after reopen = %q", got)
	}
}

// TestTornTailTruncated simulates a crash mid-write: the last segment ends
// in half a record. Replay must deliver everything before the tear, count
// one corruption, and repair the file.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg := filepath.Join(dir, segmentName(l.Stats().Segment))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append a torn frame: a full header promising more bytes than exist.
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := EncodeRecord([]byte("this record never finished writing"))
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, st := collect(t, dir, true)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	if st.Corrupt != 1 || !st.Truncated {
		t.Fatalf("stats = %+v, want Corrupt=1 Truncated=true", st)
	}
	// After repair a second replay is clean.
	got2, st2 := collect(t, dir, true)
	if len(got2) != 10 || st2.Corrupt != 0 {
		t.Fatalf("post-repair replay: %d records, stats %+v", len(got2), st2)
	}
}

// TestCorruptMiddleSkipsRestOfSegment flips a byte mid-segment: records
// before the flip replay; the rest of that segment is dropped, but later
// segments still replay.
func TestCorruptMiddleSkipsRestOfSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := Open(dir, Options{Fsync: FsyncAlways})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("seg1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seg1 := filepath.Join(dir, segmentName(l.Stats().Segment))
	if _, err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Append([]byte(fmt.Sprintf("seg2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload of the third record in segment 1.
	buf, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	recLen := frameHeader + len("seg1-0")
	buf[2*recLen+frameHeader] ^= 0xff
	if err := os.WriteFile(seg1, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	got, st := collect(t, dir, false)
	var names []string
	for _, p := range got {
		names = append(names, string(p))
	}
	want := []string{"seg1-0", "seg1-1", "seg2-0", "seg2-1", "seg2-2"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("replay = %v, want %v", names, want)
	}
	if st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

func TestDecodeRecordOversizedLength(t *testing.T) {
	frame := EncodeRecord([]byte("x"))
	frame[0], frame[1], frame[2], frame[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteErrorRollsBack(t *testing.T) {
	dir := t.TempDir()
	fail := false
	l, err := Open(dir, Options{
		Fsync: FsyncNever,
		WrapWriter: func(w io.Writer) io.Writer {
			return writerFunc(func(p []byte) (int, error) {
				if fail {
					n := len(p) / 2
					if nn, _ := w.Write(p[:n]); nn < n {
						n = nn
					}
					return n, errors.New("injected disk error")
				}
				return w.Write(p)
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("good-1")); err != nil {
		t.Fatal(err)
	}
	fail = true
	if err := l.Append([]byte("bad")); err == nil {
		t.Fatal("append with failing writer succeeded")
	}
	fail = false
	if err := l.Append([]byte("good-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, st := collect(t, dir, true)
	var names []string
	for _, p := range got {
		names = append(names, string(p))
	}
	if fmt.Sprint(names) != fmt.Sprint([]string{"good-1", "good-2"}) {
		t.Fatalf("replay = %v, want [good-1 good-2]", names)
	}
	if st.Corrupt != 0 {
		t.Fatalf("rollback left a torn frame: %+v", st)
	}
}

func TestFaultHookFailsSyncAndRotate(t *testing.T) {
	dir := t.TempDir()
	deny := map[string]bool{}
	l, err := Open(dir, Options{
		SegmentBytes: 32,
		Fsync:        FsyncNever,
		FaultHook: func(op string) error {
			if deny[op] {
				return fmt.Errorf("injected %s fault", op)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	deny["sync"] = true
	if err := l.Sync(); err == nil {
		t.Fatal("Sync with sync fault succeeded")
	}
	deny["rotate"] = true
	if _, err := l.Rotate(); err == nil {
		t.Fatal("Rotate with rotate fault succeeded")
	}
}

// TestFsyncIntervalUsesInjectedClock pins the FsyncInterval policy to the
// injected Options.Now: under a simulated clock the sync cadence must
// follow simulated time, not wall time.
func TestFsyncIntervalUsesInjectedClock(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(5000, 0)
	l, err := Open(dir, Options{
		Fsync:         FsyncInterval,
		FsyncInterval: time.Second,
		Now:           func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// First append syncs (lastSync is the zero time), later ones must not
	// while the simulated clock stands still.
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte("rec")); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Stats().Syncs; got != 1 {
		t.Fatalf("frozen clock: %d syncs, want 1", got)
	}
	now = now.Add(time.Second)
	if err := l.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Syncs; got != 2 {
		t.Fatalf("advanced clock: %d syncs, want 2", got)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, "never": FsyncNever, "": FsyncInterval,
	}
	for in, want := range cases {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy(sometimes) succeeded")
	}
}

func TestReplayMissingDir(t *testing.T) {
	st, err := Replay(filepath.Join(t.TempDir(), "nope"), true, func([]byte) error {
		t.Fatal("fn called for missing dir")
		return nil
	})
	if err != nil || st.Records != 0 {
		t.Fatalf("missing dir: %+v, %v", st, err)
	}
}

func TestRemoveDormant(t *testing.T) {
	root := t.TempDir()
	for _, d := range []string{"shard-00", "shard-01", "shard-07"} {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveDormant(root, map[string]bool{"shard-00": true, "shard-01": true}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "shard-07")); !os.IsNotExist(err) {
		t.Fatal("dormant shard-07 survived")
	}
	if _, err := os.Stat(filepath.Join(root, "shard-00")); err != nil {
		t.Fatal("kept shard-00 was removed")
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
