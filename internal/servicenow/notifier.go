package servicenow

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/obs"
	"shastamon/internal/resilience"
)

// Notifier converts Alertmanager notifications into ServiceNow events and
// posts them to an instance's event collector ("alerts are transformed
// into ServiceNow Events, which are correlated and grouped into SN Alerts,
// which then trigger automated response actions"). Transient failures
// (network errors, 5xx) are retried under an exponential-backoff policy;
// a circuit breaker fails fast during an instance outage so the
// Alertmanager's retry queue — not a blocking post loop — owns recovery.
type Notifier struct {
	name   string
	url    string // base URL of the instance API
	client *http.Client

	policy  resilience.Policy
	breaker *resilience.Breaker

	reg     *obs.Registry
	posted  *obs.Counter
	failed  *obs.Counter
	retries *obs.Counter
}

// NewNotifier returns an alertmanager.Receiver posting to the instance at
// baseURL.
func NewNotifier(name, baseURL string, client *http.Client) *Notifier {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	n := &Notifier{name: name, url: baseURL, client: client, reg: obs.NewRegistry()}
	n.policy = resilience.Policy{
		MaxAttempts: 3,
		Initial:     10 * time.Millisecond,
		Max:         250 * time.Millisecond,
		Retriable:   retriable,
	}
	n.breaker = resilience.NewBreaker(resilience.BreakerConfig{
		Name: "servicenow", FailureThreshold: 3, OpenFor: 30 * time.Second,
	})
	n.posted = n.reg.Counter(obs.Namespace+"servicenow_events_posted_total",
		"Events successfully posted to the SN event collector.")
	n.failed = n.reg.Counter(obs.Namespace+"servicenow_post_failures_total",
		"Events that failed after retry.")
	n.retries = n.reg.Counter(obs.Namespace+"servicenow_post_retries_total",
		"Transient post failures that were retried.")
	n.reg.GaugeFunc(obs.Namespace+"servicenow_breaker_state",
		"SN event collector circuit breaker (0 closed, 1 half-open, 2 open).",
		n.breaker.StateValue)
	return n
}

// Metrics exposes the notifier's self-monitoring registry.
func (n *Notifier) Metrics() *obs.Registry { return n.reg }

// Name implements alertmanager.Receiver.
func (n *Notifier) Name() string { return n.name }

// Breaker exposes the event collector circuit breaker.
func (n *Notifier) Breaker() *resilience.Breaker { return n.breaker }

// SetClock injects the pipeline clock so the breaker's open window tracks
// simulated time in experiments.
func (n *Notifier) SetClock(now func() time.Time) { n.breaker.SetNow(now) }

// SetRetryPolicy overrides the post retry policy (chaos tests tighten it).
func (n *Notifier) SetRetryPolicy(p resilience.Policy) {
	p.Retriable = retriable
	n.policy = p
}

// Notify posts one SN event per alert in the notification.
func (n *Notifier) Notify(notification alertmanager.Notification) error {
	for _, a := range notification.Alerts {
		e := EventFromAlert(a)
		body, err := json.Marshal(e)
		if err != nil {
			n.failed.Inc()
			return err
		}
		attempt := 0
		err = n.breaker.Do(func() error {
			return resilience.Retry(n.policy, func() error {
				if attempt > 0 {
					n.retries.Inc()
				}
				attempt++
				return n.postEvent(body)
			})
		})
		if err != nil {
			n.failed.Inc()
			return err
		}
		n.posted.Inc()
	}
	return nil
}

// statusError marks HTTP-level failures so retries can distinguish 5xx
// (transient) from 4xx (permanent).
type statusError struct{ code int }

func (e statusError) Error() string {
	return fmt.Sprintf("servicenow: event collector status %d", e.code)
}

func retriable(err error) bool {
	if se, ok := err.(statusError); ok {
		return se.code >= 500
	}
	return true // network-level errors
}

func (n *Notifier) postEvent(body []byte) error {
	resp, err := n.client.Post(n.url+"/api/em/events", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("servicenow: post event: %w", err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return statusError{code: resp.StatusCode}
	}
	return nil
}

// EventFromAlert maps an Alertmanager alert to an SN event. The node is
// taken from the xname/Context/instance labels in that order; resolved
// alerts become clear events.
func EventFromAlert(a alertmanager.Alert) Event {
	node := a.Labels.Get("xname")
	if node == "" {
		node = a.Labels.Get("Context")
	}
	if node == "" {
		node = a.Labels.Get("hostname")
	}
	if node == "" {
		node = a.Labels.Get("instance")
	}
	sev := severityFromLabel(a.Labels.Get("severity"))
	if !a.EndsAt.IsZero() {
		sev = SeverityClear
	}
	desc := a.Annotations["summary"]
	if desc == "" {
		desc = a.Labels.String()
	}
	return Event{
		Source:         "alertmanager",
		Node:           node,
		Type:           a.Name(),
		Severity:       sev,
		Description:    desc,
		AdditionalInfo: a.Labels.Map(),
		TimeOfEvent:    a.StartsAt,
	}
}

func severityFromLabel(s string) int {
	switch strings.ToLower(s) {
	case "critical":
		return SeverityCritical
	case "major", "error":
		return SeverityMajor
	case "minor":
		return SeverityMinor
	case "warning", "warn":
		return SeverityWarning
	}
	return SeverityWarning
}
