// Disk spill for sealed chunks: a full chunk is written once to an
// immutable spill file, its compressed block payloads are dropped from
// memory, and reads fault the payload back in from disk on cache miss —
// the BlockCache in front turns the common case back into a memory hit.
// This is the reproduction's version of Loki's object-store chunks: sealed
// data survives a crash on disk, only the mutable head lives in the WAL.
//
// Spill file layout (all integers varint unless noted):
//
//	magic "SHASPILL" | version u8
//	blockSize | targetSize | maxEntries        (chunk options)
//	numBlocks
//	  per block: mint | maxt | entries | raw | clen | crc32c u32 LE | data
//	numHead
//	  per entry: ts-delta | len | line bytes   (first delta is absolute)
//
// Each block payload carries its own CRC32C so a corrupted spill file is
// detected at read time, not served as garbage.
package chunkenc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

const (
	spillMagic   = "SHASPILL"
	spillVersion = 1
)

var spillCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrSpillCorrupt marks a spill file that failed a structural or checksum
// check.
var ErrSpillCorrupt = errors.New("chunkenc: corrupt spill file")

// SpillPath returns the spill file backing this chunk, or "" while the
// chunk is memory-only. Retention uses it to delete the file with the
// chunk.
func (c *Chunk) SpillPath() string { return c.spillPath }

// Spilled reports whether any sealed block's payload lives only on disk.
func (c *Chunk) Spilled() bool { return c.spillPath != "" }

type spillWriter struct {
	w       io.Writer
	n       int64
	scratch [binary.MaxVarintLen64]byte
	err     error
}

func (sw *spillWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	n, err := sw.w.Write(p)
	sw.n += int64(n)
	sw.err = err
}

func (sw *spillWriter) uvarint(v uint64) {
	n := binary.PutUvarint(sw.scratch[:], v)
	sw.write(sw.scratch[:n])
}

func (sw *spillWriter) varint(v int64) {
	n := binary.PutVarint(sw.scratch[:], v)
	sw.write(sw.scratch[:n])
}

// WriteSpill serialises the chunk to w and returns the absolute offset of
// each sealed block's payload within the written stream. The chunk itself
// is not modified; call MarkSpilled with the offsets once the file is
// safely on disk.
func (c *Chunk) WriteSpill(w io.Writer) ([]int64, error) {
	sw := &spillWriter{w: w}
	sw.write([]byte(spillMagic))
	sw.write([]byte{spillVersion})
	sw.uvarint(uint64(c.blockSize))
	sw.uvarint(uint64(c.targetSize))
	sw.uvarint(uint64(c.maxEntries))
	sw.uvarint(uint64(len(c.blocks)))
	offs := make([]int64, len(c.blocks))
	var crcBuf [4]byte
	for i, b := range c.blocks {
		data, err := c.blockData(i)
		if err != nil {
			return nil, err
		}
		sw.varint(b.mint)
		sw.varint(b.maxt)
		sw.uvarint(uint64(b.entries))
		sw.uvarint(uint64(b.raw))
		sw.uvarint(uint64(len(data)))
		binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(data, spillCastagnoli))
		sw.write(crcBuf[:])
		offs[i] = sw.n
		sw.write(data)
	}
	sw.uvarint(uint64(len(c.head)))
	var prev int64
	for i, e := range c.head {
		if i == 0 {
			sw.varint(e.Timestamp)
		} else {
			sw.varint(e.Timestamp - prev)
		}
		prev = e.Timestamp
		sw.uvarint(uint64(len(e.Line)))
		sw.write([]byte(e.Line))
	}
	if sw.err != nil {
		return nil, sw.err
	}
	return offs, nil
}

// MarkSpilled records that the chunk's serialised form lives at path (with
// WriteSpill's block offsets) and drops the sealed payloads from memory.
// Reads fault them back in lazily through blockData.
func (c *Chunk) MarkSpilled(path string, offs []int64) error {
	if len(offs) != len(c.blocks) {
		return fmt.Errorf("chunkenc: MarkSpilled got %d offsets for %d blocks", len(offs), len(c.blocks))
	}
	for i := range c.blocks {
		b := &c.blocks[i]
		if b.data == nil {
			continue // already spilled; keep its existing location
		}
		b.off = offs[i]
		b.clen = len(b.data)
		b.crc = crc32.Checksum(b.data, spillCastagnoli)
		b.data = nil
	}
	c.spillPath = path
	return nil
}

// blockData returns the compressed payload of block i, reading (and CRC-
// verifying) it from the spill file when it is not resident.
func (c *Chunk) blockData(i int) ([]byte, error) {
	b := c.blocks[i]
	if b.data != nil {
		return b.data, nil
	}
	if c.spillPath == "" {
		return nil, fmt.Errorf("%w: block %d has no data and no spill file", ErrSpillCorrupt, i)
	}
	f, err := os.Open(c.spillPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data := make([]byte, b.clen)
	if _, err := f.ReadAt(data, b.off); err != nil {
		return nil, fmt.Errorf("chunkenc: spill read %s block %d: %w", c.spillPath, i, err)
	}
	if crc32.Checksum(data, spillCastagnoli) != b.crc {
		return nil, fmt.Errorf("%w: %s block %d checksum mismatch", ErrSpillCorrupt, c.spillPath, i)
	}
	return data, nil
}

type countingReader struct {
	r *bufio.Reader
	n int64
}

func (cr *countingReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.n++
	}
	return b, err
}

func (cr *countingReader) read(p []byte) error {
	n, err := io.ReadFull(cr.r, p)
	cr.n += int64(n)
	return err
}

func (cr *countingReader) discard(n int) error {
	d, err := cr.r.Discard(n)
	cr.n += int64(d)
	return err
}

func (cr *countingReader) uvarint() (uint64, error) { return binary.ReadUvarint(cr) }
func (cr *countingReader) varint() (int64, error)   { return binary.ReadVarint(cr) }

// OpenSpill parses a spill file's structure without loading block
// payloads: the returned chunk holds block metadata plus any head entries,
// and faults payloads in from path on demand. The inverse of WriteSpill +
// MarkSpilled.
func OpenSpill(path string) (*Chunk, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	cr := &countingReader{r: bufio.NewReader(f)}

	hdr := make([]byte, len(spillMagic)+1)
	if err := cr.read(hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: short header", ErrSpillCorrupt, path)
	}
	if string(hdr[:len(spillMagic)]) != spillMagic {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrSpillCorrupt, path)
	}
	if hdr[len(spillMagic)] != spillVersion {
		return nil, fmt.Errorf("%w: %s: unsupported version %d", ErrSpillCorrupt, path, hdr[len(spillMagic)])
	}

	var opt [3]uint64
	for i := range opt {
		if opt[i], err = cr.uvarint(); err != nil {
			return nil, fmt.Errorf("%w: %s: options: %v", ErrSpillCorrupt, path, err)
		}
	}
	c := New(Options{BlockSize: int(opt[0]), TargetSize: int(opt[1]), MaxEntries: int(opt[2])})
	c.spillPath = path

	numBlocks, err := cr.uvarint()
	if err != nil || numBlocks > 1<<20 {
		return nil, fmt.Errorf("%w: %s: block count", ErrSpillCorrupt, path)
	}
	var crcBuf [4]byte
	for i := 0; i < int(numBlocks); i++ {
		var b block
		if b.mint, err = cr.varint(); err == nil {
			b.maxt, err = cr.varint()
		}
		var entries, raw, clen uint64
		if err == nil {
			entries, err = cr.uvarint()
		}
		if err == nil {
			raw, err = cr.uvarint()
		}
		if err == nil {
			clen, err = cr.uvarint()
		}
		if err == nil {
			err = cr.read(crcBuf[:])
		}
		if err != nil || clen > 1<<30 {
			return nil, fmt.Errorf("%w: %s: block %d header", ErrSpillCorrupt, path, i)
		}
		b.entries = int(entries)
		b.raw = raw2int(raw)
		b.clen = int(clen)
		b.crc = binary.LittleEndian.Uint32(crcBuf[:])
		b.off = cr.n
		if err := cr.discard(int(clen)); err != nil {
			return nil, fmt.Errorf("%w: %s: block %d payload truncated", ErrSpillCorrupt, path, i)
		}
		c.blocks = append(c.blocks, b)
		if c.mint < 0 {
			c.mint = b.mint
		}
		c.maxt = b.maxt
		c.entries += b.entries
		c.rawBytes += b.raw
	}

	numHead, err := cr.uvarint()
	if err != nil || numHead > 1<<24 {
		return nil, fmt.Errorf("%w: %s: head count", ErrSpillCorrupt, path)
	}
	var ts int64
	for i := 0; i < int(numHead); i++ {
		delta, err := cr.varint()
		if err != nil {
			return nil, fmt.Errorf("%w: %s: head ts", ErrSpillCorrupt, path)
		}
		if i == 0 {
			ts = delta
		} else {
			ts += delta
		}
		ln, err := cr.uvarint()
		if err != nil || ln > 1<<26 {
			return nil, fmt.Errorf("%w: %s: head line len", ErrSpillCorrupt, path)
		}
		line := make([]byte, ln)
		if err := cr.read(line); err != nil {
			return nil, fmt.Errorf("%w: %s: head line truncated", ErrSpillCorrupt, path)
		}
		e := Entry{Timestamp: ts, Line: string(line)}
		c.head = append(c.head, e)
		c.headRaw += len(e.Line) + 16
		if c.mint < 0 {
			c.mint = ts
		}
		c.maxt = ts
		c.entries++
		c.rawBytes += len(e.Line)
	}
	return c, nil
}

func raw2int(v uint64) int {
	const maxInt = int(^uint(0) >> 1)
	if v > uint64(maxInt) {
		return maxInt
	}
	return int(v)
}
