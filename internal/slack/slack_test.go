package slack

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
)

func sampleNotification() alertmanager.Notification {
	return alertmanager.Notification{
		Receiver:    "slack",
		GroupLabels: labels.FromStrings("severity", "critical"),
		Status:      alertmanager.StatusFiring,
		Alerts: []alertmanager.Alert{{
			Labels: labels.FromStrings(
				"alertname", "SwitchOffline",
				"severity", "critical",
				"xname", "x1002c1r7b0",
				"state", "UNKNOWN",
			),
			Annotations: map[string]string{"summary": "switch x1002c1r7b0 went UNKNOWN"},
			StartsAt:    time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC),
		}},
	}
}

func TestWebhookAcceptsAndRecords(t *testing.T) {
	wh := NewWebhook()
	srv := httptest.NewServer(wh.Handler())
	defer srv.Close()
	n := NewNotifier("slack", srv.URL, "#perlmutter-alerts", nil)
	if n.Name() != "slack" {
		t.Fatal("name")
	}
	if err := n.Notify(sampleNotification()); err != nil {
		t.Fatal(err)
	}
	msgs := wh.Messages()
	if len(msgs) != 1 {
		t.Fatalf("messages: %d", len(msgs))
	}
	if msgs[0].Channel != "#perlmutter-alerts" {
		t.Fatalf("channel %q", msgs[0].Channel)
	}
	wh.Reset()
	if len(wh.Messages()) != 0 {
		t.Fatal("reset failed")
	}
}

func TestFormatRichMessage(t *testing.T) {
	msg := Format(sampleNotification())
	if !strings.Contains(msg.Text, "FIRING") || !strings.Contains(msg.Text, "1 alert(s)") {
		t.Fatalf("text: %q", msg.Text)
	}
	if len(msg.Attachments) != 1 {
		t.Fatalf("attachments: %+v", msg.Attachments)
	}
	att := msg.Attachments[0]
	if att.Title != "SwitchOffline" || att.Color != "danger" {
		t.Fatalf("%+v", att)
	}
	// Bulleted labels and annotations, per Fig. 6.
	for _, want := range []string{"• *xname*: `x1002c1r7b0`", "• *state*: `UNKNOWN`", "• _summary_: switch x1002c1r7b0 went UNKNOWN"} {
		if !strings.Contains(att.Text, want) {
			t.Fatalf("attachment text missing %q:\n%s", want, att.Text)
		}
	}
	if len(att.Fields) != 2 || att.Fields[1].Value != "critical" {
		t.Fatalf("fields: %+v", att.Fields)
	}
}

func TestFormatResolved(t *testing.T) {
	n := sampleNotification()
	n.Status = alertmanager.StatusResolved
	n.Alerts[0].EndsAt = n.Alerts[0].StartsAt.Add(time.Hour)
	msg := Format(n)
	if !strings.Contains(msg.Text, "RESOLVED") {
		t.Fatalf("text: %q", msg.Text)
	}
	if msg.Attachments[0].Color != "good" {
		t.Fatalf("color: %q", msg.Attachments[0].Color)
	}
}

func TestWebhookRejectsBadPayloads(t *testing.T) {
	wh := NewWebhook()
	srv := httptest.NewServer(wh.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL, "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad json: %d", resp.StatusCode)
	}
	resp, _ = http.Post(srv.URL, "application/json", strings.NewReader("{}"))
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("empty message: %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL)
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET: %d", resp.StatusCode)
	}
}

func TestNotifierWebhookDown(t *testing.T) {
	srv := httptest.NewServer(nil)
	url := srv.URL
	srv.Close()
	n := NewNotifier("slack", url, "", nil)
	if err := n.Notify(sampleNotification()); err == nil {
		t.Fatal("no error with webhook down")
	}
}
