package core

import (
	"time"

	"shastamon/internal/grafana"
)

// SinglePane returns the paper's "single pane of glass": one dashboard
// unifying logs and metrics across both case studies — Redfish events and
// the leak metric, fabric-manager events and offline switches, syslog
// volume, node temperatures and exporter health.
func (p *Pipeline) SinglePane() grafana.Dashboard {
	return grafana.Dashboard{
		Title: "Perlmutter Operations — Single Pane of Glass",
		Panels: []grafana.Panel{
			{
				Title:   "Redfish events (Loki)",
				Query:   `{data_type="redfish_event"}`,
				Source:  grafana.SourceLokiLogs,
				MaxRows: 10,
			},
			{
				Title:  "CabinetLeakDetected (count_over_time 60m)",
				Query:  `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context)`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:   "Fabric manager events",
				Query:   `{app="fabric_manager_monitor"}`,
				Source:  grafana.SourceLokiLogs,
				MaxRows: 10,
			},
			{
				Title:  "Offline switches (count_over_time 5m)",
				Query:  `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" [5m]))`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:  "Syslog volume by app (10m)",
				Query:  `sum(count_over_time({data_type="syslog"}[10m])) by (app)`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:  "Node temperature (max over machine)",
				Query:  `max(cray_telemetry_temperature)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Exporter targets up",
				Query:  `sum(up)`,
				Source: grafana.SourceMetrics,
			},
			// Shastamon self-monitoring: the pipeline watching itself via
			// the vmagent "shastamon" scrape job.
			{
				Title:  "Self: records forwarded into OMNI",
				Query:  `shastamon_core_records_forwarded_total`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: Kafka messages produced by topic",
				Query:  `sum(shastamon_kafka_produced_total) by (topic)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: alerts fired by rule",
				Query:  `sum(shastamon_ruler_alerts_fired_total) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: notifications sent by receiver",
				Query:  `sum(shastamon_alertmanager_notifications_total) by (receiver, outcome)`,
				Source: grafana.SourceMetrics,
			},
			// Self: latency — the detection-latency SLO on the same pane.
			// Count and sum are separate panels because the embedded
			// PromQL engine evaluates vector-vs-scalar binops only.
			{
				Title:  "Self: latency — detections closed out by rule",
				Query:  `sum(shastamon_detection_latency_seconds_count) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — cumulative detection seconds by rule",
				Query:  `sum(shastamon_detection_latency_seconds_sum) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — SLO burn rate by rule (>1 burns budget)",
				Query:  `max(shastamon_slo_burn_rate) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — SLO events breaching the target",
				Query:  `sum(shastamon_slo_events_total{outcome="breached"}) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: delivery breaker state (0 closed, 2 open)",
				Query:  `max(shastamon_breaker_state) by (dependency)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: scrape staleness by target (seconds)",
				Query:  `max(shastamon_scrape_staleness_seconds) by (target)`,
				Source: grafana.SourceMetrics,
			},
		},
	}
}

// RenderSinglePane renders the dashboard over [start, end].
func (p *Pipeline) RenderSinglePane(start, end time.Time, step time.Duration) (string, error) {
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	return r.RenderDashboard(p.SinglePane(), start, end, step)
}
