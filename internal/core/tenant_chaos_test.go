package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"shastamon/internal/frontend"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/ruler"
	"shastamon/internal/stats"
	"shastamon/internal/tenant"
)

// TestChaosNoisyNeighborTenant is the multi-tenancy acceptance scenario:
// a flooding tenant blows through its own stream quota, ingest rate and
// query-concurrency slot while the quiet default tenant's leak alert
// still fires on the exact tick cadence of the single-tenant case study
// — the noisy neighbor pays for its own noise and nobody else's SLO
// moves. Runs under the chaos soak (-count=2 -shuffle=on), so everything
// here is deterministic against a fresh pipeline.
func TestChaosNoisyNeighborTenant(t *testing.T) {
	p := newPipeline(t, Options{
		LogRules: []ruler.Rule{leakRule},
		Frontend: frontend.Config{MaxConcurrent: 8, MaxQueueDepth: -1},
		TenantLimits: &tenant.Overrides{PerTenant: map[string]tenant.Limits{
			"flood": {
				MaxStreams:          8,
				IngestRateBytes:     4096,
				IngestBurstBytes:    4096,
				MaxQueryConcurrency: 1,
			},
		}},
	})
	t0 := time.Date(2022, 3, 3, 1, 46, 0, 0, time.UTC)
	mustTick(t, p, t0)

	// The flood: far more streams than the tenant's quota and far more
	// bytes than its token bucket holds. Every shed error is the flood
	// tenant's own; none may surface to other tenants.
	flood := func() (rateLimited, overQuota int) {
		line := strings.Repeat("E", 256)
		for i := 0; i < 200; i++ {
			err := p.Warehouse.IngestLogsTenant("flood", []loki.PushStream{{
				Labels:  labels.FromStrings("app", "floodgen", "stream", fmt.Sprintf("%d", i%32)),
				Entries: []loki.Entry{{Timestamp: t0.UnixNano() + int64(i), Line: line}},
			}})
			switch {
			case errors.Is(err, loki.ErrRateLimited):
				rateLimited++
			case errors.Is(err, loki.ErrMaxStreams):
				overQuota++
			case err != nil:
				t.Fatalf("flood ingest: %v", err)
			}
		}
		return
	}
	rateLimited, overQuota := flood()
	if rateLimited == 0 {
		t.Fatal("flood tenant was never rate limited")
	}
	if overQuota == 0 {
		t.Fatal("flood tenant never hit its stream quota")
	}

	// The flood tenant saturates its single query slot; its next query
	// sheds with ErrQueueFull while the quiet tenant's identical query
	// admits freely on the same engine.
	floodCtx := tenant.WithID(context.Background(), "flood")
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := p.Warehouse.Frontend.QueryRange(floodCtx, frontend.Request{
			Engine: "logql", Query: "blocker", Start: 0, End: 0, Step: 1,
			Eval: func(ctx context.Context, start, end int64, shard int) (frontend.Matrix, error) {
				close(started)
				<-block
				return frontend.Matrix{}, nil
			},
		})
		done <- err
	}()
	<-started
	q := `count_over_time({app="floodgen"}[1m])`
	if _, err := p.Warehouse.LogQL.QueryRangeContext(floodCtx, q,
		t0.UnixNano(), t0.Add(time.Minute).UnixNano(), time.Minute); !errors.Is(err, stats.ErrQueueFull) {
		t.Fatalf("flood tenant behind its own slot: %v, want ErrQueueFull", err)
	}
	if _, err := p.Warehouse.LogQL.QueryRangeContext(context.Background(), q,
		t0.UnixNano(), t0.Add(time.Minute).UnixNano(), time.Minute); err != nil {
		t.Fatalf("quiet tenant shed by the flood's queue: %v", err)
	}
	close(block)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Warehouse.Frontend.RejectedByTenant() {
		if r.Tenant != "flood" {
			t.Fatalf("queue sheds charged to tenant %q: %+v", r.Tenant, r)
		}
	}

	// The quiet tenant's detection latency: the leak alert fires on the
	// same tick cadence as the single-tenant case study (event, +61s,
	// +62s), with the flood still hammering between ticks.
	leakTime := t0.Add(2 * time.Minute)
	if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", leakTime); err != nil {
		t.Fatal(err)
	}
	mustTick(t, p, leakTime)
	flood()
	mustTick(t, p, leakTime.Add(61*time.Second))
	flood()
	mustTick(t, p, leakTime.Add(62*time.Second))
	if slackTitles(p)["PerlmutterCabinetLeak"] == 0 {
		t.Fatalf("quiet tenant's leak alert missed its SLO; titles = %v", slackTitles(p))
	}

	// Zero cross-contamination, both directions: the default tenant never
	// sees flood streams, and the flood tenant never sees the cluster's
	// telemetry. The flood holds exactly its quota of streams.
	end := leakTime.Add(2 * time.Minute).UnixNano()
	if streams, _, err := p.Warehouse.QueryLogsContext(context.Background(),
		`{app="floodgen"}`, 0, end); err != nil || len(streams) != 0 {
		t.Fatalf("default tenant sees %d flood streams (err %v)", len(streams), err)
	}
	floodStreams, _, err := p.Warehouse.QueryLogsContext(floodCtx, `{app="floodgen"}`, 0, end)
	if err != nil {
		t.Fatal(err)
	}
	if len(floodStreams) != 8 {
		t.Fatalf("flood tenant holds %d streams, want exactly its quota of 8", len(floodStreams))
	}
	if streams, _, err := p.Warehouse.QueryLogsContext(floodCtx,
		`{data_type="redfish_event"}`, 0, end); err != nil || len(streams) != 0 {
		t.Fatalf("flood tenant sees %d cluster streams (err %v)", len(streams), err)
	}
}
