package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"shastamon/internal/anomaly"
	"shastamon/internal/grafana"
	"shastamon/internal/obs"
)

// SinglePane returns the paper's "single pane of glass": one dashboard
// unifying logs and metrics across both case studies — Redfish events and
// the leak metric, fabric-manager events and offline switches, syslog
// volume, node temperatures and exporter health.
func (p *Pipeline) SinglePane() grafana.Dashboard {
	return grafana.Dashboard{
		Title: "Perlmutter Operations — Single Pane of Glass",
		Panels: []grafana.Panel{
			{
				Title:   "Redfish events (Loki)",
				Query:   `{data_type="redfish_event"}`,
				Source:  grafana.SourceLokiLogs,
				MaxRows: 10,
			},
			{
				Title:  "CabinetLeakDetected (count_over_time 60m)",
				Query:  `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (Context)`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:   "Fabric manager events",
				Query:   `{app="fabric_manager_monitor"}`,
				Source:  grafana.SourceLokiLogs,
				MaxRows: 10,
			},
			{
				Title:  "Offline switches (count_over_time 5m)",
				Query:  `sum(count_over_time({app="fabric_manager_monitor"} |= "fm_switch_offline" [5m]))`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:  "Syslog volume by app (10m)",
				Query:  `sum(count_over_time({data_type="syslog"}[10m])) by (app)`,
				Source: grafana.SourceLokiMetric,
			},
			{
				Title:  "Node temperature (max over machine)",
				Query:  `max(cray_telemetry_temperature)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Exporter targets up",
				Query:  `sum(up)`,
				Source: grafana.SourceMetrics,
			},
			// Shastamon self-monitoring: the pipeline watching itself via
			// the vmagent "shastamon" scrape job.
			{
				Title:  "Self: records forwarded into OMNI",
				Query:  `shastamon_core_records_forwarded_total`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: Kafka messages produced by topic",
				Query:  `sum(shastamon_kafka_produced_total) by (topic)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: alerts fired by rule",
				Query:  `sum(shastamon_ruler_alerts_fired_total) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: notifications sent by receiver",
				Query:  `sum(shastamon_alertmanager_notifications_total) by (receiver, outcome)`,
				Source: grafana.SourceMetrics,
			},
			// Self: latency — the detection-latency SLO on the same pane.
			// Count and sum are separate panels because the embedded
			// PromQL engine evaluates vector-vs-scalar binops only.
			{
				Title:  "Self: latency — detections closed out by rule",
				Query:  `sum(shastamon_detection_latency_seconds_count) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — cumulative detection seconds by rule",
				Query:  `sum(shastamon_detection_latency_seconds_sum) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — SLO burn rate by rule (>1 burns budget)",
				Query:  `max(shastamon_slo_burn_rate) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: latency — SLO events breaching the target",
				Query:  `sum(shastamon_slo_events_total{outcome="breached"}) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: delivery breaker state (0 closed, 2 open)",
				Query:  `max(shastamon_breaker_state) by (dependency)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: scrape staleness by target (seconds)",
				Query:  `max(shastamon_scrape_staleness_seconds) by (target)`,
				Source: grafana.SourceMetrics,
			},
			// Self: queries — the query path watching itself. Quantiles,
			// ratios and the slowlog table are computed panels
			// (SourceSelfStat): the embedded PromQL subset has neither
			// histogram_quantile nor vector division, so their terminal
			// rendering comes from the pipeline's own registries while the
			// exported JSON carries the real-Grafana expression.
			{
				Title:       "Self: queries — p50/p95 duration by engine",
				Query:       "query-duration-quantiles",
				Source:      grafana.SourceSelfStat,
				GrafanaExpr: `histogram_quantile(0.95, sum(rate(shastamon_query_duration_seconds_bucket[5m])) by (le, engine))`,
			},
			{
				Title:  "Self: queries — bytes scanned (10m increase)",
				Query:  `sum(increase(shastamon_query_bytes_processed_sum[10m]))`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:       "Self: queries — chunk cache hit ratio",
				Query:       "cache-hit-ratio",
				Source:      grafana.SourceSelfStat,
				GrafanaType: "stat",
				GrafanaExpr: `sum(rate(shastamon_loki_chunk_cache_requests_total{result="hit"}[10m])) / sum(rate(shastamon_loki_chunk_cache_requests_total[10m]))`,
			},
			{
				Title:       "Self: queries — slowest recent queries",
				Query:       "slowlog-top",
				Source:      grafana.SourceSelfStat,
				GrafanaType: "table",
				GrafanaExpr: `topk(10, sum(increase(shastamon_query_slow_total[1h])) by (engine))`,
			},
			// Self: frontend — the range-query frontend watching itself:
			// refresh absorption (results-cache hit ratio) and admission
			// pressure (queue depth, shed queries).
			{
				Title:       "Self: frontend — results cache hit ratio",
				Query:       "frontend-cache-hit-ratio",
				Source:      grafana.SourceSelfStat,
				GrafanaType: "stat",
				GrafanaExpr: `sum(rate(shastamon_query_result_cache_hits_total[10m])) / (sum(rate(shastamon_query_result_cache_hits_total[10m])) + sum(rate(shastamon_query_result_cache_misses_total[10m])))`,
			},
			{
				Title:  "Self: frontend — admission queue depth",
				Query:  `max(shastamon_query_frontend_queue_depth)`,
				Source: grafana.SourceMetrics,
			},
			// Self: anomaly — the predictive layer watching itself: detector
			// scores and detections, rule evaluation cost, the mined
			// template inventory, and the node × time error heatmap.
			{
				Title:  "Self: anomaly — max |score| by rule (sigmas)",
				Query:  `max(shastamon_anomaly_score) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: anomaly — detections by rule (10m increase)",
				Query:  `sum(increase(shastamon_anomaly_detections_total[10m])) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: anomaly — rule evaluation seconds (10m increase)",
				Query:  `sum(increase(shastamon_rule_eval_seconds_sum[10m])) by (rule)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:  "Self: anomaly — log templates active",
				Query:  `max(shastamon_templates_active)`,
				Source: grafana.SourceMetrics,
			},
			{
				Title:       "Self: anomaly — busiest log templates",
				Query:       "templates-top",
				Source:      grafana.SourceSelfStat,
				GrafanaType: "table",
				GrafanaExpr: `topk(10, sum(increase(shastamon_templates_lines_total[1h])) by (template))`,
			},
			{
				Title:       "Self: anomaly — node × time error heatmap (30m)",
				Query:       "error-heatmap",
				Source:      grafana.SourceSelfStat,
				GrafanaType: "heatmap",
				GrafanaExpr: `sum(count_over_time({data_type="syslog", severity=~"err|crit|alert|emerg"}[2m])) by (hostname)`,
			},
		},
	}
}

// SelfStat resolves the computed "Self: queries" panel bodies from the
// pipeline's own registries and the warehouse query tracker. It is the
// closure RenderSinglePane installs via grafana.Renderer.SetSelfStat.
func (p *Pipeline) SelfStat(key string) (string, error) {
	switch key {
	case "query-duration-quantiles":
		fams := p.Gather()
		var b strings.Builder
		for _, eng := range []string{"logql", "promql"} {
			n := obs.Value(fams, obs.Namespace+"query_duration_seconds_count", "engine", eng)
			if n == 0 {
				continue
			}
			p50 := obs.Quantile(fams, obs.Namespace+"query_duration_seconds", 0.50, "engine", eng)
			p95 := obs.Quantile(fams, obs.Namespace+"query_duration_seconds", 0.95, "engine", eng)
			fmt.Fprintf(&b, "%-7s %5.0f queries   p50 %.3fms   p95 %.3fms\n", eng, n, p50*1e3, p95*1e3)
		}
		if b.Len() == 0 {
			return "(no queries yet)", nil
		}
		return b.String(), nil
	case "cache-hit-ratio":
		fams := p.Gather()
		hits := obs.Value(fams, obs.Namespace+"loki_chunk_cache_requests_total", "result", "hit")
		misses := obs.Value(fams, obs.Namespace+"loki_chunk_cache_requests_total", "result", "miss")
		if hits+misses == 0 {
			return "(no chunk-cache traffic yet)", nil
		}
		return fmt.Sprintf("%.1f%% hit (%.0f hit / %.0f miss)", 100*hits/(hits+misses), hits, misses), nil
	case "frontend-cache-hit-ratio":
		st := p.Warehouse.Frontend.CacheStats()
		if st.Hits+st.Misses == 0 {
			return "(no results-cache traffic yet)", nil
		}
		return fmt.Sprintf("%.1f%% hit (%d hit / %d miss, %d entries, %d bytes)",
			100*float64(st.Hits)/float64(st.Hits+st.Misses), st.Hits, st.Misses, st.Entries, st.Bytes), nil
	case "templates-top":
		tmpls := p.Templates.Templates()
		if len(tmpls) == 0 {
			return "(no templates mined yet)", nil
		}
		if len(tmpls) > 10 {
			tmpls = tmpls[:10]
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-6s %8s  template\n", "id", "lines")
		for _, tm := range tmpls {
			fmt.Fprintf(&b, "%-6s %8d  %s\n", anomaly.TemplateLabel(tm.ID), tm.Count, tm.Pattern)
		}
		return b.String(), nil
	case "error-heatmap":
		end := p.Now()
		h, err := p.ErrorHeatmap(context.Background(), end.Add(-30*time.Minute), end, 2*time.Minute)
		if err != nil {
			return "", err
		}
		return anomaly.RenderHeatmap(h), nil
	case "slowlog-top":
		entries := p.Warehouse.Tracker.SlowLog()
		if len(entries) == 0 {
			return "(slowlog empty)", nil
		}
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].Duration > entries[j].Duration })
		if len(entries) > 10 {
			entries = entries[:10]
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%-6s %-7s %10s %-8s %12s  query\n", "id", "engine", "duration", "reason", "bytes")
		for _, e := range entries {
			fmt.Fprintf(&b, "%-6s %-7s %9.3fs %-8s %12d  %s\n",
				e.ID, e.Engine, e.Duration, e.Reason, e.Stats.Summary.TotalBytesProcessed, e.Query)
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("core: unknown self-stat key %q", key)
}

// RenderSinglePane renders the dashboard over [start, end].
func (p *Pipeline) RenderSinglePane(start, end time.Time, step time.Duration) (string, error) {
	r := grafana.NewRenderer(p.Warehouse.LogQL, p.Warehouse.PromQL)
	r.SetSelfStat(p.SelfStat)
	return r.RenderDashboard(p.SinglePane(), start, end, step)
}
