package tsdb

import (
	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the DB's self-monitoring registry, derived at
// gather time from Stats() so Append pays no extra accounting cost.
func (db *DB) Metrics() *obs.Registry {
	db.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := db.Stats()
			return []promtext.Family{
				obs.Fam("gauge", obs.Namespace+"tsdb_series",
					"Live time series in the store.", float64(st.Series)),
				obs.Fam("counter", obs.Namespace+"tsdb_samples_appended_total",
					"Samples accepted by Append.", float64(st.Samples)),
				obs.Fam("counter", obs.Namespace+"tsdb_samples_dropped_total",
					"Samples rejected as out of order.", float64(st.Dropped)),
				obs.Fam("gauge", obs.Namespace+"tsdb_query_parallelism",
					"In-flight parallel series-query workers.", float64(db.QueryParallelism())),
			}
		})
		db.obsReg = reg
	})
	return db.obsReg
}
