package vmagent

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"shastamon/internal/exporters"
	"shastamon/internal/labels"
	"shastamon/internal/promql"
	"shastamon/internal/resilience"
	"shastamon/internal/tsdb"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil db accepted")
	}
	if _, err := New(tsdb.New(), nil, ScrapeConfig{}); err == nil {
		t.Fatal("empty job accepted")
	}
}

func TestScrapeOnceIngests(t *testing.T) {
	node := exporters.NewNodeExporter("x1000c0s0b0n0", 1)
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()

	db := tsdb.New()
	agent, err := New(db, nil, ScrapeConfig{JobName: "node", Targets: []string{srv.URL + "/metrics"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(100, 0)
	if err := agent.ScrapeOnce(ts); err != nil {
		t.Fatal(err)
	}
	eng := promql.NewEngine(db)
	vec, err := eng.Query(`up{job="node"}`, ts.UnixMilli())
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 1 {
		t.Fatalf("up: %+v", vec)
	}
	vec, err = eng.Query(`node_cpu_seconds_total{mode="idle"}`, ts.UnixMilli())
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].Labels.Get("instance") == "" {
		t.Fatalf("cpu: %+v", vec)
	}
	st := agent.Stats()
	if st.Scrapes != 1 || st.Failures != 0 || st.Samples == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestScrapeFailureRecordsUpZero(t *testing.T) {
	dead := httptest.NewServer(nil)
	url := dead.URL
	dead.Close()

	db := tsdb.New()
	agent, err := New(db, nil, ScrapeConfig{JobName: "node", Targets: []string{url + "/metrics"}})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(100, 0)
	if err := agent.ScrapeOnce(ts); err == nil {
		t.Fatal("expected scrape error")
	}
	eng := promql.NewEngine(db)
	vec, _ := eng.Query(`up == 0`, ts.UnixMilli())
	if len(vec) != 1 {
		t.Fatalf("up==0: %+v", vec)
	}
	if agent.Stats().Failures != 1 {
		t.Fatalf("stats: %+v", agent.Stats())
	}
}

func TestCountersAccumulateAcrossScrapes(t *testing.T) {
	node := exporters.NewNodeExporter("n", 2)
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	db := tsdb.New()
	agent, _ := New(db, nil, ScrapeConfig{JobName: "node", Targets: []string{srv.URL + "/metrics"}})
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		if err := agent.ScrapeOnce(base.Add(time.Duration(i) * 15 * time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	sel := []*labels.Matcher{
		labels.MustMatcher(labels.MatchEqual, tsdb.MetricNameLabel, "node_cpu_seconds_total"),
		labels.MustMatcher(labels.MatchEqual, "mode", "idle"),
	}
	data := db.Select(sel, 0, base.Add(time.Hour).UnixMilli())
	if len(data) != 1 || len(data[0].Samples) != 5 {
		t.Fatalf("%+v", data)
	}
	// rate over the window is positive.
	eng := promql.NewEngine(db)
	vec, err := eng.Query(`rate(node_cpu_seconds_total{mode="idle"}[2m])`, base.Add(time.Minute).UnixMilli())
	if err != nil || len(vec) != 1 || vec[0].V <= 0 {
		t.Fatalf("rate: %+v %v", vec, err)
	}
}

func TestRunLoopScrapes(t *testing.T) {
	node := exporters.NewNodeExporter("n", 3)
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	db := tsdb.New()
	agent, _ := New(db, nil, ScrapeConfig{JobName: "node", Targets: []string{srv.URL + "/metrics"}})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		agent.Run(ctx, 5*time.Millisecond)
		close(done)
	}()
	deadline := time.After(2 * time.Second)
	for agent.Stats().Scrapes < 3 {
		select {
		case <-deadline:
			t.Fatal("run loop too slow")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	cancel()
	<-done
}

func TestRelabelValidation(t *testing.T) {
	db := tsdb.New()
	bad := []ScrapeConfig{
		{JobName: "x", Targets: []string{"u"}, MetricRelabels: []RelabelConfig{{Action: "bogus", Regex: ".*"}}},
		{JobName: "x", Targets: []string{"u"}, MetricRelabels: []RelabelConfig{{Action: RelabelKeep, Regex: "("}}},
		{JobName: "x", Targets: []string{"u"}, MetricRelabels: []RelabelConfig{{Action: RelabelReplace, Regex: ".*"}}},
	}
	for i, cfg := range bad {
		if _, err := New(db, nil, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRelabelKeepDropReplace(t *testing.T) {
	node := exporters.NewNodeExporter("x1000c0s0b0n0", 5)
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	db := tsdb.New()
	agent, err := New(db, nil, ScrapeConfig{
		JobName: "node",
		Targets: []string{srv.URL + "/metrics"},
		MetricRelabels: []RelabelConfig{
			// Keep only CPU counters.
			{Action: RelabelKeep, SourceLabel: "__name__", Regex: "node_cpu_.*"},
			// Drop iowait mode.
			{Action: RelabelDrop, SourceLabel: "mode", Regex: "iowait"},
			// Copy node -> xname, then drop the original label.
			{Action: RelabelReplace, SourceLabel: "node", Regex: "(.*)", TargetLabel: "xname", Replacement: "$1"},
			{Action: RelabelLabelDrop, Regex: "node"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(50, 0)
	if err := agent.ScrapeOnce(ts); err != nil {
		t.Fatal(err)
	}
	eng := promql.NewEngine(db)
	// Memory/load gauges were filtered out.
	if vec, _ := eng.Query(`node_load1`, ts.UnixMilli()); len(vec) != 0 {
		t.Fatalf("kept filtered metric: %+v", vec)
	}
	// 3 modes survive (iowait dropped).
	vec, err := eng.Query(`node_cpu_seconds_total`, ts.UnixMilli())
	if err != nil || len(vec) != 3 {
		t.Fatalf("%+v %v", vec, err)
	}
	for _, s := range vec {
		if s.Labels.Get("mode") == "iowait" {
			t.Fatal("iowait survived drop")
		}
		if s.Labels.Get("xname") != "x1000c0s0b0n0" || s.Labels.Has("node") {
			t.Fatalf("relabel: %v", s.Labels)
		}
	}
}

func TestRelabelRenameMetric(t *testing.T) {
	node := exporters.NewNodeExporter("n1", 6)
	srv := httptest.NewServer(node.Handler())
	defer srv.Close()
	db := tsdb.New()
	agent, _ := New(db, nil, ScrapeConfig{
		JobName: "node",
		Targets: []string{srv.URL + "/metrics"},
		MetricRelabels: []RelabelConfig{
			{Action: RelabelReplace, SourceLabel: "__name__", Regex: "node_load1", TargetLabel: "__name__", Replacement: "system_load_1m"},
		},
	})
	ts := time.Unix(50, 0)
	if err := agent.ScrapeOnce(ts); err != nil {
		t.Fatal(err)
	}
	eng := promql.NewEngine(db)
	if vec, _ := eng.Query(`system_load_1m`, ts.UnixMilli()); len(vec) != 1 {
		t.Fatalf("renamed metric missing: %+v", vec)
	}
	if vec, _ := eng.Query(`node_load1`, ts.UnixMilli()); len(vec) != 0 {
		t.Fatalf("old name survived: %+v", vec)
	}
}

// A repeatedly failing target trips its breaker: scrapes are suppressed
// (up=0 still written) until the open window elapses, and a healthy probe
// re-closes it. The breaker runs on scrape timestamps, so this drives it
// entirely with simulated time.
func TestTargetBreakerTripsAndRecovers(t *testing.T) {
	node := exporters.NewNodeExporter("n", 1)
	healthy := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy {
			http.Error(w, "exporter wedged", http.StatusInternalServerError)
			return
		}
		node.Handler().ServeHTTP(w, r)
	}))
	defer srv.Close()

	db := tsdb.New()
	agent, err := New(db, nil, ScrapeConfig{JobName: "node", Targets: []string{srv.URL + "/metrics"}})
	if err != nil {
		t.Fatal(err)
	}
	agent.SetBreakerOpenFor(30 * time.Second)
	base := time.Unix(1000, 0)
	// Three failures trip the breaker.
	for i := 0; i < 3; i++ {
		if err := agent.ScrapeOnce(base.Add(time.Duration(i) * time.Second)); err == nil {
			t.Fatal("expected scrape error")
		}
	}
	states := agent.BreakerStates(base.Add(3 * time.Second))
	if got := states[srv.URL+"/metrics"]; got != resilience.Open {
		t.Fatalf("state = %v", got)
	}
	// While open: no HTTP call (stats.Skipped grows), up=0 still recorded.
	at := base.Add(5 * time.Second)
	if err := agent.ScrapeOnce(at); err != nil {
		t.Fatalf("open breaker surfaced an error: %v", err)
	}
	if agent.Stats().Skipped != 1 {
		t.Fatalf("stats: %+v", agent.Stats())
	}
	eng := promql.NewEngine(db)
	if vec, _ := eng.Query(`up == 0`, at.UnixMilli()); len(vec) != 1 {
		t.Fatalf("up==0 while open: %+v", vec)
	}
	// Past the open window the probe is admitted; the healed target closes
	// the breaker and samples flow again.
	healthy = true
	at = base.Add(40 * time.Second)
	if err := agent.ScrapeOnce(at); err != nil {
		t.Fatal(err)
	}
	if got := agent.BreakerStates(at)[srv.URL+"/metrics"]; got != resilience.Closed {
		t.Fatalf("state after recovery = %v", got)
	}
	if vec, _ := eng.Query(`up == 1`, at.UnixMilli()); len(vec) != 1 {
		t.Fatalf("up==1 after recovery: %+v", vec)
	}
}
