package tsdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"shastamon/internal/labels"
)

// TestConcurrentAppendSelectDelete races scrape-style appenders against
// readers and retention on the sharded head. Run under -race via
// verify.sh.
func TestConcurrentAppendSelectDelete(t *testing.T) {
	db := NewSharded(4)
	const (
		appenders         = 8
		samplesPerAppende = 400
	)
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ls := labels.FromStrings("hostname", fmt.Sprintf("nid%06d", a))
			for i := 0; i < samplesPerAppende; i++ {
				if err := db.AppendMetric("node_load1", ls, int64(i), float64(i)); err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
			}
		}(a)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, MetricNameLabel, "node_load1")}
			for i := 0; i < 50; i++ {
				for _, sd := range db.Select(sel, 0, 1<<62) {
					for j := 1; j < len(sd.Samples); j++ {
						if sd.Samples[j].T < sd.Samples[j-1].T {
							t.Errorf("series %s out of order", sd.Labels)
							return
						}
					}
				}
				_ = db.LatestBefore(sel, 1<<62, 1<<62)
				_ = db.Stats()
				_ = db.LabelValues("hostname")
				db.DeleteBefore(-1) // no-op horizon; exercises the locking
			}
		}()
	}
	wg.Wait()

	st := db.Stats()
	if st.Series != appenders {
		t.Fatalf("series = %d, want %d", st.Series, appenders)
	}
	if want := int64(appenders * samplesPerAppende); st.Samples != want {
		t.Fatalf("samples = %d, want %d", st.Samples, want)
	}
	total := 0
	for _, sd := range db.Select(nil, 0, 1<<62) {
		total += len(sd.Samples)
	}
	if total != appenders*samplesPerAppende {
		t.Fatalf("selected %d samples, want %d", total, appenders*samplesPerAppende)
	}
}

// TestShardedDropCounting verifies out-of-order drops are counted
// atomically and the sample is rejected, same contract as unsharded.
func TestShardedDropCounting(t *testing.T) {
	db := NewSharded(4)
	ls := labels.FromStrings("hostname", "nid000001")
	if err := db.AppendMetric("m", ls, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := db.AppendMetric("m", ls, 50, 2); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("err = %v, want ErrOutOfOrder", err)
	}
	st := db.Stats()
	if st.Dropped != 1 || st.Samples != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedDeleteBeforeSeriesAccounting checks the store-wide series
// counter tracks retention removals across shards.
func TestShardedDeleteBeforeSeriesAccounting(t *testing.T) {
	db := NewSharded(8)
	for i := 0; i < 64; i++ {
		ls := labels.FromStrings("hostname", fmt.Sprintf("nid%06d", i))
		// Half the series only have old samples.
		ts := int64(10)
		if i%2 == 0 {
			ts = 1000
		}
		if err := db.AppendMetric("m", ls, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Series != 64 {
		t.Fatalf("series = %d", st.Series)
	}
	db.DeleteBefore(500)
	if st := db.Stats(); st.Series != 32 {
		t.Fatalf("series after delete = %d, want 32", st.Series)
	}
}
