package chunkenc

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// DefaultCacheBytes bounds the decompression cache by the raw
// (decompressed) size of the blocks it holds: 64 MiB covers the working
// set of a tick's worth of alert-rule evaluation at simulator scale.
const DefaultCacheBytes = 64 << 20

// BlockCache memoises decoded sealed blocks. The ruler and vmalert
// re-evaluate every rule each tick over a sliding window, so the same
// sealed blocks are inflated over and over; the cache turns those repeat
// reads into slice reuse. Eviction is LRU over a byte budget, which in
// practice tracks chunk seal order: blocks seal oldest-first and queries
// touch recent windows, so the cold tail is what falls out.
//
// Cached entry slices are shared between readers and must be treated as
// immutable; iterators only ever index into them. A nil *BlockCache is
// valid and caches nothing, so call sites need no branches.
type BlockCache struct {
	mu       sync.Mutex
	maxBytes int
	curBytes int
	ll       *list.List // front = most recently used
	items    map[blockKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// blockKey identifies one sealed block: blocks are append-only within a
// chunk, so (chunk, index) is stable for the chunk's lifetime.
type blockKey struct {
	c   *Chunk
	idx int
}

type cacheItem struct {
	key     blockKey
	entries []Entry
	bytes   int
}

// NewBlockCache returns a cache bounded by maxBytes of raw decoded data;
// maxBytes <= 0 takes DefaultCacheBytes.
func NewBlockCache(maxBytes int) *BlockCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &BlockCache{maxBytes: maxBytes, ll: list.New(), items: map[blockKey]*list.Element{}}
}

func (bc *BlockCache) get(c *Chunk, idx int) ([]Entry, bool) {
	if bc == nil {
		return nil, false
	}
	key := blockKey{c: c, idx: idx}
	bc.mu.Lock()
	el, ok := bc.items[key]
	if ok {
		bc.ll.MoveToFront(el)
	}
	bc.mu.Unlock()
	if !ok {
		bc.misses.Add(1)
		return nil, false
	}
	bc.hits.Add(1)
	return el.Value.(*cacheItem).entries, true
}

func (bc *BlockCache) put(c *Chunk, idx int, entries []Entry, raw int) {
	if bc == nil || raw > bc.maxBytes {
		return
	}
	key := blockKey{c: c, idx: idx}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if _, ok := bc.items[key]; ok {
		return // raced with another reader decoding the same block
	}
	bc.items[key] = bc.ll.PushFront(&cacheItem{key: key, entries: entries, bytes: raw})
	bc.curBytes += raw
	for bc.curBytes > bc.maxBytes {
		back := bc.ll.Back()
		if back == nil {
			break
		}
		bc.evict(back)
	}
}

// evict removes one element; callers hold bc.mu.
func (bc *BlockCache) evict(el *list.Element) {
	it := el.Value.(*cacheItem)
	bc.ll.Remove(el)
	delete(bc.items, it.key)
	bc.curBytes -= it.bytes
	bc.evictions.Add(1)
}

// DropChunk removes every cached block of the given chunk — retention
// calls it when chunks are deleted so the cache does not pin their
// decoded data until eviction.
func (bc *BlockCache) DropChunk(c *Chunk) {
	if bc == nil {
		return
	}
	bc.mu.Lock()
	defer bc.mu.Unlock()
	var next *list.Element
	for el := bc.ll.Front(); el != nil; el = next {
		next = el.Next()
		if el.Value.(*cacheItem).key.c == c {
			bc.evict(el)
		}
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Blocks    int
	Bytes     int
}

// Stats snapshots the cache counters. A nil cache reports zeros.
func (bc *BlockCache) Stats() CacheStats {
	if bc == nil {
		return CacheStats{}
	}
	bc.mu.Lock()
	blocks, bytes := len(bc.items), bc.curBytes
	bc.mu.Unlock()
	return CacheStats{
		Hits:      bc.hits.Load(),
		Misses:    bc.misses.Load(),
		Evictions: bc.evictions.Load(),
		Blocks:    blocks,
		Bytes:     bytes,
	}
}
