package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/kafka"
)

func testServer(t *testing.T, tokens ...string) (*kafka.Broker, *httptest.Server) {
	t.Helper()
	broker := kafka.NewBroker()
	if err := broker.CreateTopic("cray-dmtf-resource-event", 2); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Broker: broker, Tokens: tokens})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return broker, ts
}

func TestServerRequiresBroker(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("nil broker accepted")
	}
}

func TestAuthRequired(t *testing.T) {
	_, srv := testServer(t, "secret")
	// No token.
	c := NewClient(srv.URL, "", nil)
	if _, err := c.Topics(); err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("err = %v", err)
	}
	// Wrong token.
	c = NewClient(srv.URL, "wrong", nil)
	if _, err := c.Topics(); err == nil {
		t.Fatal("wrong token accepted")
	}
	// Right token.
	c = NewClient(srv.URL, "secret", nil)
	topics, err := c.Topics()
	if err != nil || len(topics) != 1 {
		t.Fatalf("%v %v", topics, err)
	}
}

func TestSubscribePollClose(t *testing.T) {
	broker, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	sub, err := c.Subscribe("", "cray-dmtf-resource-event")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_, _, _ = broker.Produce("cray-dmtf-resource-event", []byte("x1000c0"), []byte(`{"n":`+string(rune('0'+i))+`}`), time.Unix(int64(i), 0))
	}
	var got []Record
	for len(got) < 5 {
		recs, err := sub.Poll(3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) == 0 {
			break
		}
		got = append(got, recs...)
	}
	if len(got) != 5 {
		t.Fatalf("polled %d", len(got))
	}
	val, err := got[0].DecodeValue()
	if err != nil || !strings.HasPrefix(string(val), `{"n":`) {
		t.Fatalf("%q %v", val, err)
	}
	if got[0].Timestamp.Unix() != 0 {
		t.Fatalf("timestamp: %v", got[0].Timestamp)
	}
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	// Poll after close: 404.
	if _, err := sub.Poll(1, 0); err == nil {
		t.Fatal("poll after close succeeded")
	}
}

func TestSubscribeUnknownTopic(t *testing.T) {
	_, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	if _, err := c.Subscribe("", "nope"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("err = %v", err)
	}
}

func TestSubscribeNoTopics(t *testing.T) {
	_, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	if _, err := c.Subscribe(""); err == nil {
		t.Fatal("empty topics accepted")
	}
}

func TestLongPollWaits(t *testing.T) {
	broker, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	sub, err := c.Subscribe("", "cray-dmtf-resource-event")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	done := make(chan []Record, 1)
	go func() {
		recs, _ := sub.Poll(10, 2*time.Second)
		done <- recs
	}()
	time.Sleep(20 * time.Millisecond)
	_, _, _ = broker.Produce("cray-dmtf-resource-event", nil, []byte("late"), time.Time{})
	select {
	case recs := <-done:
		if len(recs) != 1 {
			t.Fatalf("%+v", recs)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("long poll never returned")
	}
}

func TestSharedGroupSplitsMessages(t *testing.T) {
	broker, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	s1, err := c.Subscribe("omni", "cray-dmtf-resource-event")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := c.Subscribe("omni", "cray-dmtf-resource-event")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	// Keys chosen to land on both partitions.
	for i := 0; i < 20; i++ {
		_, _, _ = broker.Produce("cray-dmtf-resource-event", []byte{byte(i)}, []byte("v"), time.Time{})
	}
	r1, _ := s1.Poll(100, 0)
	r2, _ := s2.Poll(100, 0)
	if len(r1)+len(r2) != 20 {
		t.Fatalf("split: %d + %d", len(r1), len(r2))
	}
	if len(r1) == 0 || len(r2) == 0 {
		t.Fatalf("no balance: %d / %d", len(r1), len(r2))
	}
}

func TestBadQueryParams(t *testing.T) {
	_, srv := testServer(t)
	c := NewClient(srv.URL, "", nil)
	sub, err := c.Subscribe("", "cray-dmtf-resource-event")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	resp, err := http.Get(srv.URL + "/v1/stream/" + sub.ID + "?max=abc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/v1/stream/" + sub.ID + "?timeout_ms=-5")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestDeleteUnknownSubscription(t *testing.T) {
	_, srv := testServer(t)
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/subscriptions/ghost", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
