package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"shastamon/internal/anomaly"
)

const sampleRules = `{
  "log_rules": [
    {
      "alert": "SwitchOffline",
      "expr": "sum(count_over_time({app=\"fabric_manager_monitor\"} |= \"fm_switch_offline\" [5m])) > 0",
      "for": "1m",
      "labels": {"severity": "critical"},
      "annotations": {"summary": "switch down"}
    }
  ],
  "metric_rules": [
    {"alert": "TargetDown", "expr": "up == 0"},
    {
      "alert": "HumidityTrend",
      "expr": "cray_telemetry_humidity",
      "for": "15s",
      "anomaly": {"method": "roc", "sensitivity": 4.5, "half_life": "2m", "min_samples": 12}
    }
  ]
}`

func TestLoadRules(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rules.json")
	if err := os.WriteFile(path, []byte(sampleRules), 0o600); err != nil {
		t.Fatal(err)
	}
	logRules, metricRules, err := LoadRules(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(logRules) != 1 || len(metricRules) != 2 {
		t.Fatalf("%d %d", len(logRules), len(metricRules))
	}
	lr := logRules[0]
	if lr.Name != "SwitchOffline" || lr.For != time.Minute || lr.Labels["severity"] != "critical" {
		t.Fatalf("%+v", lr)
	}
	if metricRules[0].Name != "TargetDown" || metricRules[0].For != 0 || metricRules[0].Anomaly != nil {
		t.Fatalf("%+v", metricRules[0])
	}
	ac := metricRules[1].Anomaly
	if ac == nil || ac.Method != anomaly.MethodRateOfChange || ac.Sensitivity != 4.5 ||
		ac.HalfLife != 2*time.Minute || ac.MinSamples != 12 {
		t.Fatalf("anomaly block: %+v", ac)
	}
	// The loaded rules build a working pipeline.
	p, err := New(Options{Cluster: smallCluster(), LogRules: logRules, MetricRules: metricRules})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
}

func TestLoadRulesErrors(t *testing.T) {
	if _, _, err := LoadRules("/nonexistent/rules.json"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o600)
	if _, _, err := LoadRules(bad); err == nil {
		t.Fatal("bad json accepted")
	}
	badFor := filepath.Join(dir, "badfor.json")
	_ = os.WriteFile(badFor, []byte(`{"log_rules":[{"alert":"x","expr":"rate({a=\"b\"}[1m])","for":"tomorrow"}]}`), 0o600)
	if _, _, err := LoadRules(badFor); err == nil {
		t.Fatal("bad for accepted")
	}
	badMethod := filepath.Join(dir, "badmethod.json")
	_ = os.WriteFile(badMethod, []byte(`{"metric_rules":[{"alert":"x","expr":"up","anomaly":{"method":"psychic"}}]}`), 0o600)
	if _, _, err := LoadRules(badMethod); err == nil {
		t.Fatal("unknown anomaly method accepted")
	}
	badHalfLife := filepath.Join(dir, "badhalflife.json")
	_ = os.WriteFile(badHalfLife, []byte(`{"metric_rules":[{"alert":"x","expr":"up","anomaly":{"method":"roc","half_life":"soon"}}]}`), 0o600)
	if _, _, err := LoadRules(badHalfLife); err == nil {
		t.Fatal("bad half_life accepted")
	}
}

func TestParseRulesEmpty(t *testing.T) {
	lr, mr, err := ParseRules(RuleFile{})
	if err != nil || len(lr) != 0 || len(mr) != 0 {
		t.Fatalf("%v %v %v", lr, mr, err)
	}
}
