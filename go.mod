module shastamon

go 1.22
