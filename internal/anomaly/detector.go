// Package anomaly is the predictive half of the alerting pipeline: the
// paper's rules are reactive thresholds that fire after a leak or switch
// failure has happened, while the detectors here watch warehouse series
// for the *trend* — SERVIMON-style predictive maintenance (arXiv:2510.27146)
// on the same rule → Alertmanager → Slack path. Three streaming methods
// are provided, all O(1) state per series and driven purely by the
// sample timestamps so simulated-clock experiments stay deterministic:
//
//   - zscore: an exponentially-weighted mean/variance baseline; a sample
//     deviating Sensitivity standard deviations from its own history is
//     anomalous. Catches level shifts.
//   - roc: the same machinery over the per-second rate of change, so a
//     series *trending* away from its baseline fires long before any
//     static threshold on the value would. Catches ramps.
//   - seasonal: per-phase baselines over a repeating cycle (hourly or
//     daily load shapes); a sample is judged against the history of its
//     own phase bucket, not the global mean. Catches "normal for 3am,
//     anomalous for 3pm".
//
// The package also houses the Drain-style log-template miner (drain.go)
// and the node × time heatmap grid (heatmap.go).
package anomaly

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Method selects a detector algorithm.
type Method string

const (
	// MethodZScore scores each sample against an EWMA mean/variance of
	// the series' own history.
	MethodZScore Method = "zscore"
	// MethodRateOfChange scores the per-second first difference against
	// its EWMA baseline: ramps fire, stable offsets do not.
	MethodRateOfChange Method = "roc"
	// MethodSeasonal scores each sample against the baseline of its
	// phase bucket within a repeating season.
	MethodSeasonal Method = "seasonal"
)

// Config tunes a Detector. The zero value of every field takes the
// documented default, so `anomaly.Config{Method: anomaly.MethodZScore}`
// is a complete configuration.
type Config struct {
	// Method selects the algorithm (default MethodZScore).
	Method Method
	// Sensitivity is the |score| — in EWMA standard deviations — at and
	// above which a warm sample is anomalous (default 3).
	Sensitivity float64
	// HalfLife is the baseline memory: an observation loses half its
	// weight in the EWMA this long after it was made (default 5m).
	HalfLife time.Duration
	// Season is the cycle length of MethodSeasonal (default 1h).
	Season time.Duration
	// Buckets is how many phase buckets the season is divided into
	// (default 12).
	Buckets int
	// MinSamples is the warm-up: a series is never judged anomalous
	// before it has contributed this many samples (default 10).
	MinSamples int
	// MaxSeries bounds detector memory: samples for new series beyond
	// this many are dropped unscored and counted (default 4096).
	MaxSeries int
}

func (c Config) withDefaults() Config {
	if c.Method == "" {
		c.Method = MethodZScore
	}
	if c.Sensitivity <= 0 {
		c.Sensitivity = 3
	}
	if c.HalfLife <= 0 {
		c.HalfLife = 5 * time.Minute
	}
	if c.Season <= 0 {
		c.Season = time.Hour
	}
	if c.Buckets <= 0 {
		c.Buckets = 12
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = 4096
	}
	return c
}

// Validate rejects unknown methods and nonsensical bounds before a rule
// compiles, so a typo in a rule file fails at load, not at eval.
func (c Config) Validate() error {
	switch c.Method {
	case "", MethodZScore, MethodRateOfChange, MethodSeasonal:
	default:
		return fmt.Errorf("anomaly: unknown method %q (want zscore, roc or seasonal)", c.Method)
	}
	if c.Sensitivity < 0 {
		return fmt.Errorf("anomaly: negative sensitivity %g", c.Sensitivity)
	}
	if c.HalfLife < 0 || c.Season < 0 {
		return fmt.Errorf("anomaly: negative duration (half_life %s, season %s)", c.HalfLife, c.Season)
	}
	if c.Buckets < 0 || c.MinSamples < 0 || c.MaxSeries < 0 {
		return fmt.Errorf("anomaly: negative bound (buckets %d, min_samples %d, max_series %d)",
			c.Buckets, c.MinSamples, c.MaxSeries)
	}
	return nil
}

// Score is one sample's verdict.
type Score struct {
	// Value is the observed sample.
	Value float64
	// Baseline is what the detector expected instead.
	Baseline float64
	// Score is the signed deviation in EWMA standard deviations.
	Score float64
	// Warm reports whether the series has enough history to be judged.
	Warm bool
	// Anomalous is Warm && |Score| >= Sensitivity.
	Anomalous bool
}

// ewma is an exponentially-weighted mean/variance pair. decay is applied
// per update with a weight derived from the inter-sample gap, so the
// half-life holds regardless of the sample cadence.
type ewma struct {
	mean, variance float64
	n              int
}

func (e *ewma) update(v, alpha float64) {
	if e.n == 0 {
		e.mean = v
		e.n = 1
		return
	}
	diff := v - e.mean
	incr := alpha * diff
	e.mean += incr
	e.variance = (1 - alpha) * (e.variance + diff*incr)
	e.n++
}

// score returns the signed deviation of v from the baseline in standard
// deviations. The sigma floor keeps a near-constant series from turning
// rounding noise into infinite scores while still letting a genuinely
// flat series flag any real movement.
func (e *ewma) score(v float64) float64 {
	sigma := math.Sqrt(e.variance)
	if floor := 1e-9 + 1e-3*math.Abs(e.mean); sigma < floor {
		sigma = floor
	}
	return (v - e.mean) / sigma
}

type seriesState struct {
	lastT     int64 // unix nanoseconds of the newest accepted sample
	lastV     float64
	lastScore Score // verdict of the newest accepted sample, for re-eval
	total     int   // samples accepted, for warm-up
	base      ewma
	// roc only: fast EWMA of the per-second rate — the smoothed trend
	// that base then baselines.
	trend ewma
	// seasonal only: one baseline per phase bucket.
	buckets []ewma
}

// Detector scores streaming samples, keyed by series fingerprint. All
// methods are safe for concurrent use.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	series  map[uint64]*seriesState
	dropped uint64
}

// NewDetector validates cfg and returns a detector with empty state.
func NewDetector(cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg.withDefaults(), series: map[uint64]*seriesState{}}, nil
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// outlierDamp shrinks the learning rate for samples already judged
// anomalous. Without it a detector absorbs the anomaly it just flagged:
// one big deviation inflates the EWMA variance enough that the very next
// sample of the same ramp scores "normal", and a rule's For-hold never
// completes. Damped (not zero) updates still let the baseline converge
// if the new regime is permanent — it just takes ~10x longer.
const outlierDamp = 0.1

// alpha converts the gap between two samples into an EWMA weight such
// that weight decays by half every HalfLife.
func (d *Detector) alpha(dt time.Duration) float64 {
	return alphaFor(dt, d.cfg.HalfLife)
}

func alphaFor(dt, halfLife time.Duration) float64 {
	return 1 - math.Exp2(-dt.Seconds()/halfLife.Seconds())
}

// Observe scores one sample of the series identified by fp at time t and
// folds it into the baseline. Samples at or before the series' newest
// timestamp are scored against the current baseline but do not update it,
// so re-evaluating a tick is idempotent. New series beyond MaxSeries are
// dropped unscored (never anomalous) and counted in Stats().Dropped.
func (d *Detector) Observe(fp uint64, t time.Time, v float64) Score {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.series[fp]
	if !ok {
		if len(d.series) >= d.cfg.MaxSeries {
			d.dropped++
			return Score{Value: v, Baseline: v}
		}
		st = &seriesState{}
		if d.cfg.Method == MethodSeasonal {
			st.buckets = make([]ewma, d.cfg.Buckets)
		}
		d.series[fp] = st
	}
	if st.total > 0 && t.UnixNano() == st.lastT && v == st.lastV {
		// Exact re-evaluation of the newest sample (a re-run tick):
		// return the recorded verdict so timelines are reproducible.
		return st.lastScore
	}
	var sc Score
	switch d.cfg.Method {
	case MethodRateOfChange:
		sc = d.observeRate(st, t, v)
	case MethodSeasonal:
		sc = d.observeSeasonal(st, t, v)
	default:
		sc = d.observeValue(st, t, v)
	}
	if t.UnixNano() == st.lastT && v == st.lastV {
		st.lastScore = sc
	}
	return sc
}

func (d *Detector) observeValue(st *seriesState, t time.Time, v float64) Score {
	ts := t.UnixNano()
	if st.total == 0 {
		st.base.update(v, 0)
		st.lastT, st.lastV, st.total = ts, v, 1
		return Score{Value: v, Baseline: v}
	}
	sc := d.verdict(st, v, st.base.score(v), st.base.mean)
	if ts > st.lastT {
		a := d.alpha(time.Duration(ts - st.lastT))
		if sc.Anomalous {
			a *= outlierDamp
		}
		st.base.update(v, a)
		st.lastT, st.lastV = ts, v
		st.total++
	}
	return sc
}

func (d *Detector) observeRate(st *seriesState, t time.Time, v float64) Score {
	ts := t.UnixNano()
	if st.total == 0 {
		st.lastT, st.lastV, st.total = ts, v, 1
		return Score{Value: v, Baseline: v}
	}
	if ts <= st.lastT {
		// No forward gap, no rate: neutral verdict rather than a zero-dt
		// division.
		return Score{Value: v, Baseline: st.lastV, Warm: st.total >= d.cfg.MinSamples}
	}
	dt := time.Duration(ts - st.lastT)
	rate := (v - st.lastV) / dt.Seconds()
	// Smooth the instantaneous slope with a fast EWMA (HalfLife/8): one
	// noisy step barely moves it, a sustained ramp pulls it to the true
	// slope within a few samples. The slow baseline then tracks the
	// smoothed trend's normal mean/variance, so a ramp scores against
	// trend noise (small) instead of step noise (large) — that is what
	// lets a drift far below any static threshold reach high sigmas
	// within seconds.
	st.trend.update(rate, alphaFor(dt, d.cfg.HalfLife/8))
	var sc Score
	if st.base.n == 0 {
		st.base.update(st.trend.mean, 0)
		sc = Score{Value: v, Baseline: st.lastV}
	} else {
		sc = d.verdict(st, v, st.base.score(st.trend.mean), st.lastV+st.base.mean*dt.Seconds())
		a := d.alpha(dt)
		if sc.Anomalous {
			a *= outlierDamp
		}
		st.base.update(st.trend.mean, a)
	}
	st.lastT, st.lastV = ts, v
	st.total++
	return sc
}

func (d *Detector) observeSeasonal(st *seriesState, t time.Time, v float64) Score {
	ts := t.UnixNano()
	width := d.cfg.Season.Nanoseconds() / int64(d.cfg.Buckets)
	if width <= 0 {
		width = 1
	}
	idx := int((ts / width) % int64(d.cfg.Buckets))
	if idx < 0 {
		idx += d.cfg.Buckets
	}
	b := &st.buckets[idx]
	if b.n == 0 {
		b.update(v, 0)
		if ts > st.lastT || st.total == 0 {
			st.lastT, st.lastV = ts, v
			st.total++
		}
		return Score{Value: v, Baseline: v}
	}
	sc := d.verdict(st, v, b.score(v), b.mean)
	// A bucket must have been visited at least twice before its variance
	// means anything; the global warm-up still applies on top.
	sc.Warm = sc.Warm && b.n >= 2
	sc.Anomalous = sc.Anomalous && sc.Warm
	if ts > st.lastT {
		// Seasonal buckets are revisited once per cycle, so time-decayed
		// weights would forget a whole season in a few visits; a fixed
		// learning rate keeps roughly the last five cycles in play.
		a := 0.2
		if sc.Anomalous {
			a *= outlierDamp
		}
		b.update(v, a)
		st.lastT, st.lastV = ts, v
		st.total++
	}
	return sc
}

func (d *Detector) verdict(st *seriesState, v, score, baseline float64) Score {
	warm := st.total >= d.cfg.MinSamples
	return Score{
		Value:     v,
		Baseline:  baseline,
		Score:     score,
		Warm:      warm,
		Anomalous: warm && math.Abs(score) >= d.cfg.Sensitivity,
	}
}

// DetectorStats is a point-in-time snapshot for the self-metrics.
type DetectorStats struct {
	// Series currently tracked.
	Series int
	// Dropped counts samples for new series refused at the MaxSeries
	// bound.
	Dropped uint64
	// Saturated reports the bound is reached: new series are no longer
	// scored and the ShastamonAnomalyDetectorSaturated meta-rule should
	// fire.
	Saturated bool
}

// Stats snapshots the detector's memory-bound accounting.
func (d *Detector) Stats() DetectorStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DetectorStats{
		Series:    len(d.series),
		Dropped:   d.dropped,
		Saturated: len(d.series) >= d.cfg.MaxSeries,
	}
}
