#!/bin/sh
# Repo verification gate: vet, the race-enabled test suite, and a chaos
# soak — the fault-injection tests repeated and shuffled to shake out
# order dependence in the recovery paths.
# Run before sending a change; CI runs the same commands.
set -eux

cd "$(dirname "$0")"

go vet ./...
go test -race ./...
go test -race -run Chaos -count=2 -shuffle=on ./internal/core/...

# Smoke-run the tracked benchmark families (C1/C2/C5/E4/E7) and refresh
# BENCH_ingest.json; full numbers come from `./bench.sh` without args.
./bench.sh short
