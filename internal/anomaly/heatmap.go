package anomaly

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Heatmap is a node × time-bucket density grid — the CloudHeatMap-style
// view (node on the y axis, time on the x axis, error density as shade)
// the paper's operators use to spot a cabinet going bad before any
// single rule fires. It is JSON-shaped for the omnid endpoint and
// rendered to a terminal by RenderHeatmap.
type Heatmap struct {
	// Query is the aggregation that produced the grid.
	Query string `json:"query"`
	// StepSeconds is the bucket width.
	StepSeconds int64 `json:"step_seconds"`
	// Times holds the bucket start times (unix seconds), ascending.
	Times []int64 `json:"times"`
	// Nodes holds the row keys sorted by descending row total, so the
	// loudest node renders first.
	Nodes []string `json:"nodes"`
	// Values is [node][time] density; rows align with Nodes, columns
	// with Times.
	Values [][]float64 `json:"values"`
	// Max is the largest cell, the top of the shade ramp.
	Max float64 `json:"max"`
}

// Cell bundles one series point during grid assembly.
type Cell struct {
	Node  string
	Time  time.Time
	Value float64
}

// MaxHeatmapBuckets caps the time axis of one heatmap request. A grid is
// rendered one character per bucket; past a couple thousand columns the
// request is no longer a dashboard panel but an accidental export, and
// the per-row allocations grow with it.
const MaxHeatmapBuckets = 2048

// ValidateHeatmapWindow checks a since/step pair before any query runs:
// both must be positive, the step must fit inside the window, and the
// resulting bucket count must stay under MaxHeatmapBuckets. The returned
// error text is user-facing (the omnid endpoint's 400 body).
func ValidateHeatmapWindow(since, step time.Duration) error {
	if since <= 0 {
		return fmt.Errorf("since: want a positive duration like 30m, got %s", since)
	}
	if step <= 0 {
		return fmt.Errorf("step: want a positive duration like 2m, got %s", step)
	}
	if step > since {
		return fmt.Errorf("step %s exceeds the %s window; want step <= since", step, since)
	}
	if buckets := int64(since / step); buckets > MaxHeatmapBuckets {
		return fmt.Errorf("%s window at %s step makes %d buckets; max %d — widen the step or narrow the window",
			since, step, buckets, MaxHeatmapBuckets)
	}
	return nil
}

// BuildHeatmap assembles a grid from per-(node, bucket) cells over
// [start, end) at the given step. Buckets with no cell stay zero; cells
// for unknown buckets are clamped to the nearest. Rows are sorted by
// descending total so the noisiest nodes lead.
func BuildHeatmap(query string, start, end time.Time, step time.Duration, cells []Cell) Heatmap {
	if step <= 0 {
		step = time.Minute
	}
	h := Heatmap{Query: query, StepSeconds: int64(step.Seconds())}
	if h.StepSeconds <= 0 {
		h.StepSeconds = 1
	}
	for t := start; t.Before(end); t = t.Add(step) {
		h.Times = append(h.Times, t.Unix())
	}
	if len(h.Times) == 0 {
		h.Times = []int64{start.Unix()}
	}

	rows := map[string][]float64{}
	for _, c := range cells {
		row, ok := rows[c.Node]
		if !ok {
			row = make([]float64, len(h.Times))
			rows[c.Node] = row
		}
		idx := int((c.Time.Unix() - h.Times[0]) / h.StepSeconds)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(row) {
			idx = len(row) - 1
		}
		row[idx] += c.Value
		if row[idx] > h.Max {
			h.Max = row[idx]
		}
	}

	totals := map[string]float64{}
	for node, row := range rows {
		for _, v := range row {
			totals[node] += v
		}
		h.Nodes = append(h.Nodes, node)
	}
	sort.Slice(h.Nodes, func(i, j int) bool {
		if totals[h.Nodes[i]] != totals[h.Nodes[j]] {
			return totals[h.Nodes[i]] > totals[h.Nodes[j]]
		}
		return h.Nodes[i] < h.Nodes[j]
	})
	for _, node := range h.Nodes {
		h.Values = append(h.Values, rows[node])
	}
	return h
}

// shades is the density ramp, blank through solid.
const shades = " .:-=+*#%@"

// RenderHeatmap draws the grid as terminal text: one row per node, one
// shade character per time bucket, with a time axis and a scale legend.
func RenderHeatmap(h Heatmap) string {
	var b strings.Builder
	fmt.Fprintf(&b, "error heatmap — %s (step %s)\n", h.Query, time.Duration(h.StepSeconds)*time.Second)
	if len(h.Nodes) == 0 {
		b.WriteString("(no matching errors in range)\n")
		return b.String()
	}
	wide := 0
	for _, n := range h.Nodes {
		if len(n) > wide {
			wide = len(n)
		}
	}
	for i, node := range h.Nodes {
		fmt.Fprintf(&b, "%-*s |", wide, node)
		for _, v := range h.Values[i] {
			b.WriteByte(shade(v, h.Max))
		}
		total := 0.0
		for _, v := range h.Values[i] {
			total += v
		}
		fmt.Fprintf(&b, "| %.0f\n", total)
	}
	if len(h.Times) > 0 {
		first := time.Unix(h.Times[0], 0).UTC()
		last := time.Unix(h.Times[len(h.Times)-1], 0).UTC()
		fmt.Fprintf(&b, "%-*s  %s%*s\n", wide, "", first.Format("15:04"),
			len(h.Times), last.Format("15:04"))
	}
	fmt.Fprintf(&b, "scale: '%s' 0 → %.0f errors/bucket\n", shades, h.Max)
	return b.String()
}

func shade(v, max float64) byte {
	if v <= 0 || max <= 0 {
		return shades[0]
	}
	idx := 1 + int(v/max*float64(len(shades)-2))
	if idx >= len(shades) {
		idx = len(shades) - 1
	}
	return shades[idx]
}
