package alertmanager

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shastamon/internal/labels"
)

func apiManager(t *testing.T) (*Manager, *clock, *httptest.Server) {
	t.Helper()
	slack := &fakeReceiver{name: "slack"}
	m, ck := newTestManager(t, &Route{Receiver: "slack", GroupWait: time.Second}, slack)
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return m, ck, srv
}

func TestAPIListAlerts(t *testing.T) {
	m, _, srv := apiManager(t)
	m.Receive(alert("alertname", "Leak", "severity", "critical"))
	resp, err := http.Get(srv.URL + "/api/v2/alerts")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out []struct {
		Labels   map[string]string `json:"labels"`
		Status   Status            `json:"status"`
		Receiver string            `json:"receiver"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Labels["alertname"] != "Leak" || out[0].Status != StatusFiring || out[0].Receiver != "slack" {
		t.Fatalf("%+v", out)
	}
}

func TestAPISilenceLifecycle(t *testing.T) {
	m, ck, srv := apiManager(t)
	body := fmt.Sprintf(`{"matchers":{"alertname":"Noisy"},"endsAt":%q,"comment":"maintenance","createdBy":"op"}`,
		ck.Now().Add(time.Hour).Format(time.RFC3339))
	resp, err := http.Post(srv.URL+"/api/v2/silences", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var created map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&created)
	resp.Body.Close()
	id := created["silenceID"]
	if id == "" {
		t.Fatalf("%v", created)
	}
	if st := m.AlertStatus(alert("alertname", "Noisy")); st != StatusSuppressed {
		t.Fatalf("status %s", st)
	}
	// List silences over HTTP.
	r2, _ := http.Get(srv.URL + "/api/v2/silences")
	var listed []struct {
		ID string `json:"id"`
	}
	_ = json.NewDecoder(r2.Body).Decode(&listed)
	r2.Body.Close()
	if len(listed) != 1 || listed[0].ID != id {
		t.Fatalf("%+v", listed)
	}
	// Delete it.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/v2/silences/"+id, nil)
	r3, _ := http.DefaultClient.Do(req)
	r3.Body.Close()
	if r3.StatusCode != 204 {
		t.Fatalf("delete status %d", r3.StatusCode)
	}
	if st := m.AlertStatus(alert("alertname", "Noisy")); st != StatusFiring {
		t.Fatalf("status after delete: %s", st)
	}
	// Deleting again: 404.
	r4, _ := http.DefaultClient.Do(req)
	r4.Body.Close()
	if r4.StatusCode != 404 {
		t.Fatalf("re-delete status %d", r4.StatusCode)
	}
}

func TestAPIBadSilenceRequests(t *testing.T) {
	_, _, srv := apiManager(t)
	for _, body := range []string{"{", `{}`, `{"matchers":{"a":"b"}}`} {
		resp, err := http.Post(srv.URL+"/api/v2/silences", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("%q: status %d", body, resp.StatusCode)
		}
	}
}

func TestAlertsListingDedups(t *testing.T) {
	slack := &fakeReceiver{name: "slack"}
	snow := &fakeReceiver{name: "servicenow"}
	route := &Route{
		Receiver:  "slack",
		GroupWait: time.Second,
		Routes: []*Route{
			{Receiver: "servicenow", Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")}, GroupWait: time.Second, Continue: true},
			{Receiver: "slack", Matchers: labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")}, GroupWait: time.Second},
		},
	}
	m, _ := newTestManager(t, route, slack, snow)
	// One alert in two groups (both routes) must list once.
	m.Receive(alert("alertname", "X", "severity", "critical"))
	if got := m.Alerts(); len(got) != 1 {
		t.Fatalf("%+v", got)
	}
}
