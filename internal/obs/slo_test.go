package obs

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramExemplar(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat", "h", LatencyBuckets, "rule")
	hv.With("leak").ObserveWithExemplar(62, 1646272077000, "trace_id", "t-1")
	hv.With("leak").Observe(3) // plain observation, no exemplar

	fams := reg.Gather()
	if got := Value(fams, "lat_count", "rule", "leak"); got != 2 {
		t.Fatalf("count = %v, want 2", got)
	}
	var seen []string
	for _, f := range fams {
		for _, m := range f.Metrics {
			if m.Exemplar != nil {
				seen = append(seen, m.Labels.Get("le"))
				if m.Exemplar.Labels.Get("trace_id") != "t-1" || m.Exemplar.Value != 62 ||
					m.Exemplar.Timestamp != 1646272077000 {
					t.Fatalf("exemplar = %+v", m.Exemplar)
				}
			}
		}
	}
	// 62 lands in the le=75 bucket and only there.
	if len(seen) != 1 || seen[0] != "75" {
		t.Fatalf("exemplar buckets = %v, want [75]", seen)
	}
}

func TestQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 3, 3, 3, 10} {
		h.Observe(v)
	}
	fams := reg.Gather()
	// Rank 5 of 10 falls in the (2,4] bucket of 6 observations.
	p50 := Quantile(fams, "lat", 0.50)
	if p50 < 2 || p50 > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", p50)
	}
	// Rank 10 falls in +Inf: the largest finite bound is returned.
	if max := Quantile(fams, "lat", 1.0); max != 4 {
		t.Fatalf("p100 = %v, want 4 (largest finite bound)", max)
	}
	if q := Quantile(fams, "lat", 0.0); q < 0 || q > 1 {
		t.Fatalf("p0 = %v, want within the first bucket", q)
	}
	if q := Quantile(nil, "lat", 0.5); !math.IsNaN(q) {
		t.Fatalf("empty quantile = %v, want NaN", q)
	}
}

func TestQuantileFiltersChildren(t *testing.T) {
	reg := NewRegistry()
	hv := reg.HistogramVec("lat", "h", []float64{10, 100}, "rule")
	hv.With("fast").Observe(5)
	hv.With("slow").Observe(50)
	fams := reg.Gather()
	if q := Quantile(fams, "lat", 0.99, "rule", "fast"); q > 10 {
		t.Fatalf("fast p99 = %v, want <= 10", q)
	}
	if q := Quantile(fams, "lat", 0.99, "rule", "slow"); q <= 10 {
		t.Fatalf("slow p99 = %v, want > 10", q)
	}
}

func TestSLOObserveAndBurn(t *testing.T) {
	reg := NewRegistry()
	s := NewSLO(reg, SLOConfig{Target: 30 * time.Second, Objective: 0.95})
	s.Observe("leak", 10*time.Second)
	s.Observe("leak", 20*time.Second)
	s.Observe("leak", 62*time.Second) // breach
	s.Observe("switch", time.Second)

	rep := s.Report()
	if len(rep.Rules) != 2 || rep.TargetSeconds != 30 {
		t.Fatalf("report = %+v", rep)
	}
	leak := rep.Rules[0]
	if leak.Rule != "leak" || leak.Events != 3 || leak.Breached != 1 {
		t.Fatalf("leak = %+v", leak)
	}
	// breach fraction 1/3 over allowed 0.05 => ~6.67.
	if leak.BurnRate < 6.6 || leak.BurnRate > 6.7 {
		t.Fatalf("burn = %v, want ~6.67", leak.BurnRate)
	}
	if leak.Max != 62 || leak.P50 != 20 || leak.P95 != 62 {
		t.Fatalf("percentiles = %+v", leak)
	}

	fams := reg.Gather()
	if got := Value(fams, Namespace+"slo_events_total", "rule", "leak", "outcome", "breached"); got != 1 {
		t.Fatalf("breached events = %v, want 1", got)
	}
	if got := Value(fams, Namespace+"slo_burn_rate", "rule", "switch"); got != 0 {
		t.Fatalf("switch burn = %v, want 0", got)
	}
	if got := Value(fams, Namespace+"slo_target_seconds"); got != 30 {
		t.Fatalf("target gauge = %v", got)
	}
}

func TestSLODefaultsAndNil(t *testing.T) {
	s := NewSLO(nil, SLOConfig{})
	if s.Config() != DefaultSLO {
		t.Fatalf("config = %+v, want defaults", s.Config())
	}
	var nilSLO *SLO
	nilSLO.Observe("r", time.Second) // must not panic
	if rep := nilSLO.Report(); len(rep.Rules) != 0 {
		t.Fatalf("nil report = %+v", rep)
	}
	if nilSLO.Config() != DefaultSLO {
		t.Fatal("nil Config must return defaults")
	}
	rec := httptest.NewRecorder()
	nilSLO.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 404 {
		t.Fatalf("nil handler -> %d, want 404", rec.Code)
	}
	// A 100% objective turns any breach into a capped burn.
	s2 := NewSLO(nil, SLOConfig{Target: time.Second, Objective: 1})
	s2.Observe("r", 2*time.Second)
	if b := s2.Report().Rules[0].BurnRate; b != math.MaxFloat64 {
		t.Fatalf("burn at 100%% objective = %v", b)
	}
}

func TestSLOHandler(t *testing.T) {
	s := NewSLO(nil, SLOConfig{})
	s.Observe("leak", 62*time.Second)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"leak"`) {
		t.Fatalf("handler -> %d: %s", rec.Code, rec.Body.String())
	}
	var rep SLOReport
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Objective != DefaultSLO.Objective {
		t.Fatalf("objective = %v", rep.Objective)
	}
}
