// Package resilience is the pipeline's stdlib-only fault-tolerance
// substrate: exponential backoff with jitter, bounded retry policies, and
// a half-open circuit breaker. Every dependency the pipeline talks to over
// a failure domain boundary (the Slack webhook, the ServiceNow event
// collector, the telemetry API, scrape targets, the Kafka broker) wraps
// its calls in one of these primitives so a misbehaving dependency
// degrades its own stage instead of killing the process — the paper's
// pipeline is only useful if leak and switch-offline alerts fire even
// while parts of the stack are down.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Policy describes a bounded retry loop with exponential backoff.
// The zero value takes the defaults documented on each field.
type Policy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 3).
	MaxAttempts int
	// Initial is the delay before the first retry (default 50ms).
	Initial time.Duration
	// Max caps the per-retry delay (default 5s).
	Max time.Duration
	// Factor multiplies the delay after each retry (default 2).
	Factor float64
	// Jitter randomizes each delay by ±Jitter fraction (default 0.2;
	// negative disables). Jitter decorrelates retry storms when many
	// clients fail together — the thundering-herd problem.
	Jitter float64
	// Sleep is swapped by tests; default time.Sleep.
	Sleep func(time.Duration)
	// Retriable classifies errors; nil retries everything.
	Retriable func(error) bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.Initial <= 0 {
		p.Initial = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Factor <= 1 {
		p.Factor = 2
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

var jitterMu sync.Mutex
var jitterRNG = rand.New(rand.NewSource(1))

// SeedJitter reseeds the jitter source — tests pin it for determinism.
func SeedJitter(seed int64) {
	jitterMu.Lock()
	jitterRNG = rand.New(rand.NewSource(seed))
	jitterMu.Unlock()
}

// Backoff returns the delay before retry number retry (0-based):
// Initial·Factor^retry capped at Max, jittered by ±Jitter.
func (p Policy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	d := float64(p.Initial)
	for i := 0; i < retry; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Jitter > 0 {
		jitterMu.Lock()
		f := 1 + p.Jitter*(2*jitterRNG.Float64()-1)
		jitterMu.Unlock()
		d *= f
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	return time.Duration(d)
}

// Retry runs fn up to MaxAttempts times, sleeping the policy's backoff
// between tries. It returns nil on the first success, the first
// non-retriable error immediately, or the last error annotated with the
// attempt count once the budget is spent.
func Retry(p Policy, fn func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.Sleep(p.Backoff(attempt - 1))
		}
		if err = fn(); err == nil {
			return nil
		}
		if p.Retriable != nil && !p.Retriable(err) {
			return err
		}
	}
	return fmt.Errorf("resilience: %d attempt(s): %w", p.MaxAttempts, err)
}

// State is a circuit breaker's position.
type State int32

// Breaker states. The numeric values are the exposition convention for
// the shastamon_breaker_state gauge: 0 closed (healthy), 1 half-open
// (probing), 2 open (failing fast).
const (
	Closed State = iota
	HalfOpen
	Open
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrOpen is returned by Allow/Do while the breaker is open: the caller
// must fail fast instead of hammering a dependency that is already down.
var ErrOpen = errors.New("resilience: circuit open")

// BreakerConfig configures a Breaker; zero values take defaults.
type BreakerConfig struct {
	// Name identifies the protected dependency in errors and metrics.
	Name string
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker (default 5).
	FailureThreshold int
	// OpenFor is how long the breaker stays open before letting a
	// half-open probe through (default 30s).
	OpenFor time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits
	// (default 1).
	HalfOpenProbes int
	// Now is the breaker's clock; tests and the simulated pipeline inject
	// their own (default time.Now).
	Now func() time.Time
}

// Breaker is a half-open circuit breaker: consecutive failures trip it
// open, open fails fast for OpenFor, then a bounded number of half-open
// probes decide between re-closing and re-opening.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probes   int

	trips int64 // closed->open transitions, for metrics
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 30 * time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// SetNow swaps the breaker's clock (the pipeline injects its simulated
// clock after construction).
func (b *Breaker) SetNow(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now != nil {
		b.cfg.Now = now
	}
}

// Name returns the protected dependency's name.
func (b *Breaker) Name() string { return b.cfg.Name }

// State reports the current state, advancing open->half-open when the
// open window has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(b.cfg.Now())
}

func (b *Breaker) stateLocked(now time.Time) State {
	if b.state == Open && !now.Before(b.openedAt.Add(b.cfg.OpenFor)) {
		b.state = HalfOpen
		b.probes = 0
	}
	return b.state
}

// StateAt is State at an explicit time.
func (b *Breaker) StateAt(now time.Time) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(now)
}

// StateValue renders the state as the gauge convention (0/1/2).
func (b *Breaker) StateValue() float64 { return float64(b.State()) }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow asks permission for one call at the breaker's clock. It returns
// ErrOpen (annotated with the dependency name) while open, and limits
// concurrent half-open probes.
func (b *Breaker) Allow() error { return b.AllowAt(b.cfg.Now()) }

// AllowAt is Allow at an explicit time — callers driven by a simulated
// clock (the vmagent's scrape timestamp) pass their own now.
func (b *Breaker) AllowAt(now time.Time) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case Open:
		return fmt.Errorf("%w: %s (retry after %s)", ErrOpen, b.cfg.Name,
			b.openedAt.Add(b.cfg.OpenFor).Sub(now))
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			return fmt.Errorf("%w: %s (half-open probe in flight)", ErrOpen, b.cfg.Name)
		}
		b.probes++
	}
	return nil
}

// Success records a successful call: half-open re-closes, closed resets
// the failure streak.
func (b *Breaker) Success() { b.SuccessAt(b.cfg.Now()) }

// SuccessAt is Success at an explicit time.
func (b *Breaker) SuccessAt(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stateLocked(now)
	b.state = Closed
	b.failures = 0
	b.probes = 0
}

// Failure records a failed call: a failed half-open probe re-opens
// immediately; closed opens once the streak reaches the threshold.
func (b *Breaker) Failure() { b.FailureAt(b.cfg.Now()) }

// FailureAt is Failure at an explicit time.
func (b *Breaker) FailureAt(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.stateLocked(now) {
	case HalfOpen:
		b.state = Open
		b.openedAt = now
		b.trips++
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.state = Open
			b.openedAt = now
			b.trips++
		}
	}
}

// Do guards fn with the breaker: Allow, run, record the outcome.
func (b *Breaker) Do(fn func() error) error {
	now := b.cfg.Now()
	if err := b.AllowAt(now); err != nil {
		return err
	}
	if err := fn(); err != nil {
		b.FailureAt(b.cfg.Now())
		return err
	}
	b.SuccessAt(b.cfg.Now())
	return nil
}
