package vmalert

import (
	"sync"
	"testing"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/labels"
	"shastamon/internal/promql"
	"shastamon/internal/tsdb"
)

type fakeNotifier struct {
	mu     sync.Mutex
	alerts []alertmanager.Alert
}

func (f *fakeNotifier) Receive(alerts ...alertmanager.Alert) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.alerts = append(f.alerts, alerts...)
}

func (f *fakeNotifier) all() []alertmanager.Alert {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]alertmanager.Alert(nil), f.alerts...)
}

type clock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *clock) Now() time.Time { c.mu.Lock(); defer c.mu.Unlock(); return c.t }
func (c *clock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func setup(t *testing.T, rules ...Rule) (*tsdb.DB, *VMAlert, *fakeNotifier, *clock) {
	t.Helper()
	db := tsdb.New()
	n := &fakeNotifier{}
	ck := &clock{t: time.Date(2022, 3, 3, 1, 0, 0, 0, time.UTC)}
	v, err := New(promql.NewEngine(db), n, ck.Now, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return db, v, n, ck
}

func TestValidation(t *testing.T) {
	db := tsdb.New()
	n := &fakeNotifier{}
	if _, err := New(nil, n, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(promql.NewEngine(db), n, nil, Rule{Name: "x", Expr: "(((("}); err == nil {
		t.Fatal("bad expr accepted")
	}
	if _, err := New(promql.NewEngine(db), n, nil, Rule{Name: "x", Expr: "up"}, Rule{Name: "x", Expr: "up"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestTemperatureAlertLifecycle(t *testing.T) {
	rule := Rule{
		Name:        "NodeOverTemp",
		Expr:        `node_temp_celsius > 75`,
		For:         time.Minute,
		Labels:      map[string]string{"severity": "critical"},
		Annotations: map[string]string{"summary": "{{ $labels.xname }} at {{ $value }}C"},
	}
	db, v, n, ck := setup(t, rule)
	hot := labels.FromStrings("xname", "x1000c0s0b0n0")

	// Hot sample appears.
	_ = db.AppendMetric("node_temp_celsius", hot, ck.Now().UnixMilli(), 90)
	sent, err := v.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 0 {
		t.Fatalf("fired before for: %+v", sent)
	}
	// Still hot a minute later.
	ck.Advance(61 * time.Second)
	_ = db.AppendMetric("node_temp_celsius", hot, ck.Now().UnixMilli(), 91)
	sent, err = v.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 {
		t.Fatalf("sent: %+v", sent)
	}
	a := sent[0]
	if a.Name() != "NodeOverTemp" || a.Labels.Get("severity") != "critical" {
		t.Fatalf("%+v", a)
	}
	if a.Annotations["summary"] != "x1000c0s0b0n0 at 91C" {
		t.Fatalf("annotation %q", a.Annotations["summary"])
	}
	// Cooldown: value drops below threshold -> resolution.
	ck.Advance(time.Minute)
	_ = db.AppendMetric("node_temp_celsius", hot, ck.Now().UnixMilli(), 50)
	sent, err = v.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || !sent[0].Resolved(ck.Now()) {
		t.Fatalf("resolve: %+v", sent)
	}
	if len(n.all()) != 2 {
		t.Fatalf("notifier: %d", len(n.all()))
	}
}

func TestUpZeroAlert(t *testing.T) {
	rule := Rule{Name: "TargetDown", Expr: `up == 0`, For: 0}
	db, v, _, ck := setup(t, rule)
	_ = db.AppendMetric("up", labels.FromStrings("job", "node", "instance", "http://a/metrics"), ck.Now().UnixMilli(), 0)
	_ = db.AppendMetric("up", labels.FromStrings("job", "node", "instance", "http://b/metrics"), ck.Now().UnixMilli(), 1)
	sent, err := v.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || sent[0].Labels.Get("instance") != "http://a/metrics" {
		t.Fatalf("%+v", sent)
	}
}

func TestAbsentRule(t *testing.T) {
	rule := Rule{Name: "NoTelemetry", Expr: `absent(node_temp_celsius{xname="x9"})`, For: 0}
	_, v, _, _ := setup(t, rule)
	sent, err := v.EvalOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(sent) != 1 || sent[0].Labels.Get("xname") != "x9" {
		t.Fatalf("%+v", sent)
	}
}

func TestRunLoop(t *testing.T) {
	rule := Rule{Name: "X", Expr: `up == 0`}
	_, v, _, _ := setup(t, rule)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- v.Run(time.Millisecond, stop) }()
	deadline := time.After(2 * time.Second)
	for v.Evals() < 3 {
		select {
		case <-deadline:
			t.Fatal("too slow")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRecordingRules(t *testing.T) {
	db, v, _, ck := setup(t)
	if err := v.AddRecordingRules(db, RecordingRule{
		Record: "cluster:node_temp:avg",
		Expr:   `avg(node_temp_celsius)`,
		Labels: map[string]string{"cluster": "perlmutter"},
	}); err != nil {
		t.Fatal(err)
	}
	_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x1"), ck.Now().UnixMilli(), 40)
	_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x2"), ck.Now().UnixMilli(), 60)
	if _, err := v.EvalOnce(); err != nil {
		t.Fatal(err)
	}
	eng := promql.NewEngine(db)
	vec, err := eng.Query(`cluster:node_temp:avg`, ck.Now().UnixMilli())
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != 1 || vec[0].V != 50 || vec[0].Labels.Get("cluster") != "perlmutter" {
		t.Fatalf("%+v", vec)
	}
	// Subsequent rounds append more points.
	ck.Advance(time.Minute)
	_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x1"), ck.Now().UnixMilli(), 42)
	if _, err := v.EvalOnce(); err != nil {
		t.Fatal(err)
	}
	sel := []*labels.Matcher{labels.MustMatcher(labels.MatchEqual, tsdb.MetricNameLabel, "cluster:node_temp:avg")}
	data := db.Select(sel, 0, ck.Now().UnixMilli())
	if len(data) != 1 || len(data[0].Samples) != 2 {
		t.Fatalf("%+v", data)
	}
}

func TestRecordingRuleValidation(t *testing.T) {
	db, v, _, _ := setup(t)
	if err := v.AddRecordingRules(nil, RecordingRule{Record: "x", Expr: "up"}); err == nil {
		t.Fatal("nil db accepted")
	}
	if err := v.AddRecordingRules(db, RecordingRule{Record: "", Expr: "up"}); err == nil {
		t.Fatal("unnamed rule accepted")
	}
	if err := v.AddRecordingRules(db, RecordingRule{Record: "x", Expr: "(("}); err == nil {
		t.Fatal("bad expr accepted")
	}
}

// An alerting rule can consume a recording rule's output in the same
// round (recordings run first).
func TestAlertOnRecordedMetric(t *testing.T) {
	db, v, n, ck := setup(t)
	_ = v.AddRecordingRules(db, RecordingRule{Record: "cluster:max_temp", Expr: `max(node_temp_celsius)`})
	v2, err := New(promql.NewEngine(db), n, ck.Now,
		Rule{Name: "ClusterHot", Expr: `max(node_temp_celsius) > 80`})
	if err != nil {
		t.Fatal(err)
	}
	_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x1"), ck.Now().UnixMilli(), 95)
	if _, err := v.EvalOnce(); err != nil {
		t.Fatal(err)
	}
	sent, err := v2.EvalOnce()
	if err != nil || len(sent) != 1 {
		t.Fatalf("%v %v", sent, err)
	}
}
