// Durability for the log store: every accepted push is appended to a
// per-shard WAL before the batch returns, sealed chunks spill to immutable
// disk files, and a checkpoint snapshots stream state so replay stays
// bounded by the checkpoint interval. EnableDurability also runs recovery:
// checkpoint restore plus WAL replay, tolerant of torn tails and corrupt
// spill files.
//
// Data layout under the store's directory:
//
//	wal/shard-NN/00000001.wal   per-shard segmented log (see internal/wal)
//	chunks/cNNNNNNNN.chk        sealed-chunk spill files (see chunkenc)
//	checkpoint.json             last checkpoint: streams, spill refs, head
//	CLEAN                       marker: last shutdown checkpointed cleanly
package loki

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"shastamon/internal/chunkenc"
	"shastamon/internal/labels"
	"shastamon/internal/resilience"
	"shastamon/internal/tenant"
	"shastamon/internal/wal"
)

const (
	checkpointFile = "checkpoint.json"
	cleanMarker    = "CLEAN"
	chunksDirName  = "chunks"
	walDirName     = "wal"
)

// durability is the per-store durable state hung off Store.dur (nil for a
// memory-only store).
type durability struct {
	dir string
	d   *wal.Durable
	opt wal.StoreOptions

	// armed is false during recovery so replayed pushes are not re-logged.
	armed    atomic.Bool
	chunkSeq atomic.Int64
}

// RecoveryInfo summarises what EnableDurability reconstructed.
type RecoveryInfo struct {
	// Clean is true when the previous shutdown left a CLEAN marker and
	// recovery was a checkpoint load with no WAL replay.
	Clean bool
	// Checkpoint is true when a checkpoint file was restored.
	Checkpoint bool
	// Streams is the stream count after recovery.
	Streams int
	// Replayed is the number of WAL records re-applied.
	Replayed int
	// Corrupt counts WAL records and spill files dropped as corrupt.
	Corrupt int
}

// checkpoint JSON shapes. Head entries are carried as the binary WAL
// entry codec (base64 via encoding/json) — exact bytes, immune to the
// JSON string escaping that would mangle non-UTF-8 log lines.
type ckptStream struct {
	Labels [][2]string `json:"labels"`
	Tenant string      `json:"tenant,omitempty"` // empty = default tenant
	LastTS int64       `json:"last_ts"`
	Chunks []string    `json:"chunks,omitempty"` // spill file basenames
	Head   []byte      `json:"head,omitempty"`
}

type ckptFile struct {
	Version int            `json:"version"`
	Cuts    map[string]int `json:"cuts"` // shard dir -> first WAL segment not covered
	Streams []ckptStream   `json:"streams"`
}

// EnableDurability attaches a WAL + checkpoint + spill directory to the
// store and runs recovery from whatever dir already holds. It must be
// called before any pushes. The breaker name is "wal:logs".
func (s *Store) EnableDurability(dir string, opt wal.StoreOptions) (RecoveryInfo, error) {
	if s.dur != nil {
		return RecoveryInfo{}, fmt.Errorf("loki: durability already enabled")
	}
	if err := os.MkdirAll(filepath.Join(dir, chunksDirName), 0o755); err != nil {
		return RecoveryInfo{}, err
	}
	dur := &durability{dir: dir, opt: opt}
	s.dur = dur

	info, corrupt, err := s.recover(dir)
	if err != nil {
		s.dur = nil
		return info, err
	}
	d, err := wal.NewDurable(filepath.Join(dir, walDirName), "wal:logs", len(s.shards), opt)
	if err != nil {
		s.dur = nil
		return info, err
	}
	dur.d = d
	d.AddCorrupt(int64(corrupt))
	d.AddReplayed(int64(info.Replayed))
	dur.chunkSeq.Store(maxChunkSeq(filepath.Join(dir, chunksDirName)))
	dur.armed.Store(true)
	info.Streams = int(s.streamCount.Load())
	info.Corrupt = corrupt
	return info, nil
}

// WALStats snapshots the durability counters; zero for a memory-only
// store.
func (s *Store) WALStats() wal.DurableStats {
	if s.dur == nil || s.dur.d == nil {
		return wal.DurableStats{}
	}
	return s.dur.d.Stats()
}

// WALBreaker exposes the degradation breaker (nil when memory-only) for
// the united breaker-state gauge and clock injection.
func (s *Store) WALBreaker() *resilience.Breaker {
	if s.dur == nil || s.dur.d == nil {
		return nil
	}
	return s.dur.d.Breaker()
}

// --- record codec -----------------------------------------------------

// walPrefixFor caches the encoded [type][labels] prefix on the stream;
// called under st.mu. Non-default tenants ride in the record's label set
// as the reserved __tenant__ label, so old WALs (no such label) replay
// into the default namespace unchanged.
func (st *stream) walPrefixFor() []byte {
	if st.walPrefix == nil {
		ls := st.labels
		if st.tenant != "" && st.tenant != tenant.DefaultID {
			ls = ls.With(tenant.ReservedLabel, st.tenant)
		}
		st.walPrefix = wal.AppendLabels([]byte{wal.RecLogStream}, ls)
	}
	return st.walPrefix
}

func appendEntries(buf []byte, entries []Entry) []byte {
	buf = wal.AppendUvarint(buf, uint64(len(entries)))
	var prev int64
	for i, e := range entries {
		if i == 0 {
			buf = wal.AppendVarint(buf, e.Timestamp)
		} else {
			buf = wal.AppendVarint(buf, e.Timestamp-prev)
		}
		prev = e.Timestamp
		buf = wal.AppendUvarint(buf, uint64(len(e.Line)))
		buf = append(buf, e.Line...)
	}
	return buf
}

func readEntries(buf []byte) ([]Entry, []byte, error) {
	count, buf, err := wal.ReadUvarint(buf)
	if err != nil || count > 1<<24 {
		return nil, nil, fmt.Errorf("loki: wal record entry count: %w", wal.ErrCorrupt)
	}
	out := make([]Entry, 0, count)
	var ts int64
	for i := uint64(0); i < count; i++ {
		var delta int64
		if delta, buf, err = wal.ReadVarint(buf); err != nil {
			return nil, nil, err
		}
		if i == 0 {
			ts = delta
		} else {
			ts += delta
		}
		var ln uint64
		if ln, buf, err = wal.ReadUvarint(buf); err != nil || ln > uint64(len(buf)) {
			return nil, nil, fmt.Errorf("loki: wal record line: %w", wal.ErrCorrupt)
		}
		out = append(out, Entry{Timestamp: ts, Line: string(buf[:ln])})
		buf = buf[ln:]
	}
	return out, buf, nil
}

func decodeLogRecord(payload []byte) (string, PushStream, error) {
	if len(payload) == 0 || payload[0] != wal.RecLogStream {
		return "", PushStream{}, fmt.Errorf("loki: wal record type: %w", wal.ErrCorrupt)
	}
	ls, rest, err := wal.ReadLabels(payload[1:])
	if err != nil {
		return "", PushStream{}, err
	}
	entries, _, err := readEntries(rest)
	if err != nil {
		return "", PushStream{}, err
	}
	tid := tenant.DefaultID
	if v := ls.Get(tenant.ReservedLabel); v != "" {
		tid = v
		ls = ls.Without(tenant.ReservedLabel)
	}
	return tid, PushStream{Labels: ls, Entries: entries}, nil
}

// --- spill ------------------------------------------------------------

// parseSpillName returns the sequence number of a cNNNNNNNN.chk spill
// file name, ok=false for foreign files.
func parseSpillName(name string) (int64, bool) {
	if !strings.HasPrefix(name, "c") || !strings.HasSuffix(name, ".chk") {
		return 0, false
	}
	n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, "c"), ".chk"), 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func maxChunkSeq(dir string) int64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var max int64
	for _, e := range ents {
		if n, ok := parseSpillName(e.Name()); ok && n > max {
			max = n
		}
	}
	return max
}

// spillChunk writes one sealed chunk to a new spill file and drops its
// payloads from memory. Called under the owning stream's mutex.
func (s *Store) spillChunk(c *chunkenc.Chunk) error {
	dur := s.dur
	if hook := dur.opt.FaultHook; hook != nil {
		if err := hook("spill"); err != nil {
			return err
		}
	}
	path := filepath.Join(dur.dir, chunksDirName, fmt.Sprintf("c%08d.chk", dur.chunkSeq.Add(1)))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if dur.opt.WrapWriter != nil {
		w = dur.opt.WrapWriter(f)
	}
	offs, err := c.WriteSpill(w)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return err
	}
	if err := c.MarkSpilled(path, offs); err != nil {
		os.Remove(path)
		return err
	}
	dur.d.AddSpilled(1)
	return nil
}

// maybeSpillSealed spills a just-sealed chunk at ingest time, best
// effort: a failure degrades the store (breaker) but the chunk simply
// stays resident — the next healthy checkpoint spills it. Called under
// st.mu.
func (s *Store) maybeSpillSealed(c *chunkenc.Chunk) {
	dur := s.dur
	if dur == nil || dur.d == nil || !dur.armed.Load() || dur.d.Degraded() {
		return
	}
	if err := s.spillChunk(c); err != nil {
		dur.d.ReportError()
	}
}

// --- checkpoint -------------------------------------------------------

// Checkpoint atomically snapshots the store: per shard it blocks stream
// lookup (shard write-lock) and drains in-flight pushes (every stream
// mutex — WAL appends happen under them), rotates the shard's WAL so the
// snapshot covers exactly the old segments, then snapshots every stream.
// The checkpoint file is written via tmp+rename; only then are covered
// WAL segments and orphaned spill files deleted. Any failure leaves the
// previous checkpoint and all WAL segments in place — recovery is never
// worse than before the attempt.
func (s *Store) Checkpoint() error {
	dur := s.dur
	if dur == nil || dur.d == nil || !dur.armed.Load() {
		return nil
	}
	if hook := dur.opt.FaultHook; hook != nil {
		if err := hook("checkpoint"); err != nil {
			dur.d.ReportError()
			return err
		}
	}
	ck := ckptFile{Version: 1, Cuts: map[string]int{}}
	refs := map[string]bool{}
	// Sequence high-water mark before any shard is snapshotted: once a
	// shard's locks are released, concurrent pushes can seal + spill new
	// chunks the refs set never saw. Those carry a higher sequence, so the
	// GC below only touches files at or below this mark.
	seqMark := dur.chunkSeq.Load()
	for i, sh := range s.shards {
		sh.mu.Lock()
		for _, st := range sh.ordered {
			st.mu.Lock()
		}
		cut, err := dur.d.Log(i).Rotate()
		if err == nil {
			ck.Cuts[wal.ShardDirName(i)] = cut
			for _, st := range sh.ordered {
				var cs ckptStream
				if cs, err = s.snapshotStream(st, refs); err != nil {
					break
				}
				ck.Streams = append(ck.Streams, cs)
			}
		}
		for _, st := range sh.ordered {
			st.mu.Unlock()
		}
		sh.mu.Unlock()
		if err != nil {
			// Already-rotated shards are harmless: their extra segments
			// stay on disk and replay alongside everything else.
			dur.d.ReportError()
			return err
		}
	}

	if err := writeFileAtomic(filepath.Join(dur.dir, checkpointFile), &ck, dur.opt.WrapWriter); err != nil {
		dur.d.ReportError()
		return err
	}
	dur.d.AddCheckpoints(1)
	dur.d.ReportSuccess()

	// Truncation: everything below the cut is covered by the snapshot.
	for i := range s.shards {
		_ = dur.d.Log(i).DropBefore(ck.Cuts[wal.ShardDirName(i)])
	}
	_ = dur.d.RemoveDormantShards()
	gcSpills(filepath.Join(dur.dir, chunksDirName), refs, seqMark)
	return nil
}

// snapshotStream captures one stream under its (held) mutex, spilling any
// resident sealed chunks so the checkpoint can reference them by file.
func (s *Store) snapshotStream(st *stream, refs map[string]bool) (ckptStream, error) {
	cs := ckptStream{LastTS: st.lastTS}
	if st.tenant != "" && st.tenant != tenant.DefaultID {
		cs.Tenant = st.tenant
	}
	for _, l := range st.labels {
		cs.Labels = append(cs.Labels, [2]string{l.Name, l.Value})
	}
	for _, c := range st.chunks {
		if !c.Spilled() {
			if err := s.spillChunk(c); err != nil {
				return cs, err
			}
		}
		base := filepath.Base(c.SpillPath())
		refs[base] = true
		cs.Chunks = append(cs.Chunks, base)
	}
	if st.head != nil && st.head.Entries() > 0 {
		entries, err := st.head.All(math.MinInt64, math.MaxInt64)
		if err != nil {
			return cs, err
		}
		converted := make([]Entry, len(entries))
		for i, e := range entries {
			converted[i] = Entry{Timestamp: e.Timestamp, Line: e.Line}
		}
		cs.Head = appendEntries(nil, converted)
	}
	return cs, nil
}

func writeFileAtomic(path string, v any, wrap func(io.Writer) io.Writer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	var w io.Writer = f
	if wrap != nil {
		w = wrap(f)
	}
	err = json.NewEncoder(w).Encode(v)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// gcSpills removes spill files no checkpoint references: chunks deleted
// by retention plus spills orphaned by a crash between spill and
// checkpoint. Files with a sequence above maxSeq are left alone — they
// were spilled after the snapshot's refs were collected (a concurrent
// push sealing a chunk behind an already-released shard lock) and are
// still live even though no checkpoint references them yet.
func gcSpills(dir string, refs map[string]bool, maxSeq int64) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if refs[e.Name()] {
			continue
		}
		if seq, ok := parseSpillName(e.Name()); ok && seq <= maxSeq {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// --- recovery ---------------------------------------------------------

// recover rebuilds the store from dir: checkpoint restore, then WAL
// replay of every shard directory present (handles shard-count changes
// across restarts), with corrupt records counted and repaired. A CLEAN
// marker (written by Shutdown after a final checkpoint) skips the WAL
// scan entirely.
func (s *Store) recover(dir string) (RecoveryInfo, int, error) {
	var info RecoveryInfo
	corrupt := 0
	walRoot := filepath.Join(dir, walDirName)

	clean := false
	if _, err := os.Stat(filepath.Join(dir, cleanMarker)); err == nil {
		clean = true
	}

	ck, ok, err := readCheckpoint(filepath.Join(dir, checkpointFile))
	if err != nil {
		// A corrupt checkpoint (torn rename never happens, but a chaos
		// writer can produce one) falls back to WAL-only recovery.
		corrupt++
		ok, clean = false, false
	}
	if ok {
		info.Checkpoint = true
		n, err := s.restoreCheckpoint(ck)
		corrupt += n
		if err != nil {
			return info, corrupt, err
		}
		// Segments below each cut are covered by the snapshot.
		for shardDir, cut := range ck.Cuts {
			_ = wal.DropSegmentsBefore(filepath.Join(walRoot, shardDir), cut)
		}
	}

	if clean {
		// Shutdown guaranteed the checkpoint covers every append: no
		// replay needed. The fresh log will restart numbering at segment
		// 1, so stale cuts would prune those segments as "covered" on the
		// next dirty recovery. Clear them BEFORE deleting the WAL and
		// marker: a crash after the rewrite re-enters this path (marker
		// still present, cuts already empty), while the old order could
		// crash into stale cuts with no marker — the exact data-loss case
		// the rewrite exists to prevent.
		info.Clean = true
		if ok && len(ck.Cuts) > 0 {
			ck.Cuts = map[string]int{}
			if werr := writeFileAtomic(filepath.Join(dir, checkpointFile), &ck, s.dur.opt.WrapWriter); werr != nil {
				return info, corrupt, werr
			}
		}
		// Consume the marker so a later crash replays.
		_ = os.RemoveAll(walRoot)
		_ = os.Remove(filepath.Join(dir, cleanMarker))
		return info, corrupt, nil
	}
	_ = os.Remove(filepath.Join(dir, cleanMarker))

	shardDirs, err := os.ReadDir(walRoot)
	if err != nil && !os.IsNotExist(err) {
		return info, corrupt, err
	}
	var names []string
	for _, e := range shardDirs {
		if e.IsDir() && strings.HasPrefix(e.Name(), "shard-") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		st, err := wal.Replay(filepath.Join(walRoot, name), true, func(payload []byte) error {
			tid, ps, err := decodeLogRecord(payload)
			if err != nil {
				corrupt++
				return nil // skip the record, keep replaying
			}
			if err := s.pushStreamTenant(s.tenantStateFor(tid), ps); err != nil {
				// Validation rediscovers the same discards as the
				// original push (OOO vs checkpointed lastTS, limits);
				// never fatal for replay.
				_ = err
			}
			info.Replayed++
			return nil
		})
		if err != nil {
			return info, corrupt, err
		}
		corrupt += st.Corrupt
	}
	return info, corrupt, nil
}

func readCheckpoint(path string) (ckptFile, bool, error) {
	var ck ckptFile
	buf, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ck, false, nil
	}
	if err != nil {
		return ck, false, err
	}
	if err := json.Unmarshal(buf, &ck); err != nil {
		return ck, false, fmt.Errorf("loki: corrupt checkpoint: %w", err)
	}
	return ck, true, nil
}

// restoreCheckpoint rebuilds streams from a checkpoint; corrupt spill
// files are skipped (counted), everything else is restored exactly.
// Counters are derived from the restored state, not persisted — the push
// path's atomics race the snapshot, derived values cannot.
func (s *Store) restoreCheckpoint(ck ckptFile) (corrupt int, err error) {
	for _, cs := range ck.Streams {
		ls := make(labels.Labels, 0, len(cs.Labels))
		for _, pair := range cs.Labels {
			ls = append(ls, labels.Label{Name: pair[0], Value: pair[1]})
		}
		tid := cs.Tenant
		if tid == "" {
			tid = tenant.DefaultID
		}
		st, _, err := s.getOrCreateStream(s.tenantStateFor(tid), labels.New(ls...))
		if err != nil {
			return corrupt, fmt.Errorf("loki: checkpoint restore: %w", err)
		}
		sh := s.shardFor(st.fp)
		st.mu.Lock()
		for _, base := range cs.Chunks {
			c, err := chunkenc.OpenSpill(filepath.Join(s.dur.dir, chunksDirName, base))
			if err != nil {
				corrupt++
				continue
			}
			st.chunks = append(st.chunks, c)
			sh.entries.Add(int64(c.Entries()))
			sh.rawBytes.Add(int64(c.RawBytes()))
		}
		if len(cs.Head) > 0 {
			entries, _, err := readEntries(cs.Head)
			if err != nil {
				corrupt++
			} else {
				for _, e := range entries {
					if _, aerr := st.append(e, s.limits.ChunkOptions); aerr == nil {
						sh.entries.Add(1)
						sh.rawBytes.Add(int64(len(e.Line)))
					}
				}
			}
		}
		st.lastTS = cs.LastTS
		st.mu.Unlock()
	}
	return corrupt, nil
}

// --- shutdown ---------------------------------------------------------

// Shutdown checkpoints, closes the WAL and — when no append raced the
// final snapshot — leaves a CLEAN marker so the next start skips replay.
// The store remains usable afterwards, but in memory-only mode.
func (s *Store) Shutdown() error {
	dur := s.dur
	if dur == nil || dur.d == nil || !dur.armed.Load() {
		return nil
	}
	// CLEAN asserts the final checkpoint covers every append, so the
	// baseline is taken before the checkpoint starts: an append racing
	// onto a post-rotation segment after its shard unlocks lands between
	// baseline and after, suppressing the marker. (A checkpoint-covered
	// append also suppresses it — a false negative, which merely costs a
	// replay; a false positive would lose the record.) Shutdown is
	// expected to run with ingest quiesced; the counters are the guard.
	base := dur.d.Stats()
	err := s.Checkpoint()
	dur.armed.Store(false)
	if cerr := dur.d.Close(); err == nil {
		err = cerr
	}
	after := dur.d.Stats()
	if err == nil && after.Appends == base.Appends && after.Errors == base.Errors && after.Skipped == base.Skipped {
		if f, ferr := os.Create(filepath.Join(dur.dir, cleanMarker)); ferr == nil {
			f.Close()
		}
	}
	return err
}
