package grafana

import (
	"encoding/json"
	"fmt"
)

// This file exports dashboards in the Grafana dashboard-model JSON shape
// operators check into git and import into a real Grafana: a top-level
// dashboard object with a panels array, each panel carrying its datasource
// and query targets.

type exportTarget struct {
	Expr  string `json:"expr"`
	RefID string `json:"refId"`
}

type exportDatasource struct {
	Type string `json:"type"`
	UID  string `json:"uid"`
}

type exportPanel struct {
	ID         int              `json:"id"`
	Title      string           `json:"title"`
	Type       string           `json:"type"` // "logs" or "timeseries"
	Datasource exportDatasource `json:"datasource"`
	Targets    []exportTarget   `json:"targets"`
	GridPos    map[string]int   `json:"gridPos"`
}

type exportDashboard struct {
	Title         string        `json:"title"`
	SchemaVersion int           `json:"schemaVersion"`
	Panels        []exportPanel `json:"panels"`
	Tags          []string      `json:"tags,omitempty"`
}

// ExportJSON renders the dashboard as Grafana dashboard-model JSON.
// Loki-backed panels reference a datasource uid "loki"; metric panels
// reference "victoriametrics". Panels lay out two per row.
func ExportJSON(d Dashboard) ([]byte, error) {
	out := exportDashboard{
		Title:         d.Title,
		SchemaVersion: 36,
		Tags:          []string{"shastamon", "perlmutter"},
	}
	for i, p := range d.Panels {
		ep := exportPanel{
			ID:    i + 1,
			Title: p.Title,
			Targets: []exportTarget{{
				Expr:  p.Query,
				RefID: string(rune('A' + i%26)),
			}},
			GridPos: map[string]int{
				"h": 8, "w": 12,
				"x": (i % 2) * 12,
				"y": (i / 2) * 8,
			},
		}
		switch p.Source {
		case SourceLokiLogs:
			ep.Type = "logs"
			ep.Datasource = exportDatasource{Type: "loki", UID: "loki"}
		case SourceLokiMetric:
			ep.Type = "timeseries"
			ep.Datasource = exportDatasource{Type: "loki", UID: "loki"}
		case SourceMetrics:
			ep.Type = "timeseries"
			ep.Datasource = exportDatasource{Type: "prometheus", UID: "victoriametrics"}
		case SourceSelfStat:
			// Computed panels export their real-Grafana expression: a real
			// deployment has histogram_quantile and vector division even
			// though the embedded engine doesn't.
			ep.Type = "timeseries"
			ep.Datasource = exportDatasource{Type: "prometheus", UID: "victoriametrics"}
			if p.GrafanaExpr != "" {
				ep.Targets[0].Expr = p.GrafanaExpr
			}
		default:
			return nil, fmt.Errorf("grafana: panel %q: unknown source %d", p.Title, p.Source)
		}
		if p.GrafanaType != "" {
			ep.Type = p.GrafanaType
		}
		out.Panels = append(out.Panels, ep)
	}
	return json.MarshalIndent(out, "", "  ")
}
