// Package redfish models the DMTF Redfish events the Shasta hardware
// pushes to the hardware management service: the CrayAlerts registry
// (CabinetLeakDetected, PowerDown, ...) in the exact nested JSON shape the
// paper's Fig. 2 shows being pulled from the Telemetry API.
package redfish

import (
	"encoding/json"
	"fmt"
	"time"
)

// Severity levels used by the CrayAlerts registry.
const (
	SeverityOK       = "OK"
	SeverityWarning  = "Warning"
	SeverityCritical = "Critical"
)

// Well-known CrayAlerts message IDs exercised by the paper.
const (
	MsgCabinetLeakDetected = "CrayAlerts.1.0.CabinetLeakDetected"
	MsgPowerDown           = "CrayAlerts.1.0.ResourcePowerStateChanged"
	MsgTelemetry           = "CrayTelemetry.1.0.Sensor"
)

// Origin is the OriginOfCondition link of an event.
type Origin struct {
	OdataID string `json:"@odata.id"`
}

// Event is one Redfish event, field-for-field the structure in Fig. 2.
type Event struct {
	EventTimestamp    string   `json:"EventTimestamp"`
	Severity          string   `json:"Severity"`
	Message           string   `json:"Message"`
	MessageID         string   `json:"MessageId"`
	MessageArgs       []string `json:"MessageArgs,omitempty"`
	OriginOfCondition *Origin  `json:"OriginOfCondition,omitempty"`
}

// Record groups the events of one source; Context carries the component
// xname ("x1203c1b0" in the paper's example).
type Record struct {
	Context string  `json:"Context"`
	Events  []Event `json:"Events"`
}

// Payload is the envelope the Telemetry API serves: {"metrics":
// {"messages": [...records...]}}.
type Payload struct {
	Metrics struct {
		Messages []Record `json:"messages"`
	} `json:"metrics"`
}

// NewPayload wraps records into the Telemetry API envelope.
func NewPayload(records ...Record) Payload {
	var p Payload
	p.Metrics.Messages = records
	return p
}

// Marshal renders the payload as JSON.
func (p Payload) Marshal() ([]byte, error) { return json.Marshal(p) }

// ParsePayload decodes the Telemetry API envelope.
func ParsePayload(data []byte) (Payload, error) {
	var p Payload
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("redfish: bad payload: %w", err)
	}
	return p, nil
}

// Timestamp parses an event's ISO 8601 timestamp.
func (e Event) Timestamp() (time.Time, error) {
	return time.Parse(time.RFC3339, e.EventTimestamp)
}

// LeakEvent builds the CabinetLeakDetected event of the paper's case study
// A: sensor is "A" or "B" (the redundant pair), zone "Front" or "Rear".
func LeakEvent(ts time.Time, sensor, zone string) Event {
	return Event{
		EventTimestamp: ts.UTC().Format(time.RFC3339),
		Severity:       SeverityWarning,
		Message: fmt.Sprintf(
			"Sensor '%s' of the redundant leak sensors in the '%s' cabinet zone has detected a leak.",
			sensor, zone),
		MessageID:         MsgCabinetLeakDetected,
		MessageArgs:       []string{fmt.Sprintf("%s, %s", sensor, zone)},
		OriginOfCondition: &Origin{OdataID: "/redfish/v1/Chassis/Enclosure"},
	}
}

// PowerEvent builds a ResourcePowerStateChanged event (state "On"/"Off").
func PowerEvent(ts time.Time, resource, state string) Event {
	sev := SeverityOK
	if state == "Off" {
		sev = SeverityCritical
	}
	return Event{
		EventTimestamp:    ts.UTC().Format(time.RFC3339),
		Severity:          sev,
		Message:           fmt.Sprintf("The power state of resource '%s' changed to '%s'.", resource, state),
		MessageID:         MsgPowerDown,
		MessageArgs:       []string{resource, state},
		OriginOfCondition: &Origin{OdataID: "/redfish/v1/Chassis/" + resource},
	}
}
