// Package obs is the pipeline's self-monitoring substrate: a stdlib-only
// instrumentation layer every component registers its own telemetry
// against. A Registry holds atomic counters, gauges and fixed-bucket
// histograms and renders them in the Prometheus text exposition format via
// promtext, so the pipeline's own /metrics endpoint can be scraped by the
// in-process vmagent and land in the OMNI TSDB next to Shasta telemetry —
// the monitoring system on its own single pane of glass. The trace half of
// the package (trace.go) follows individual events stage by stage through
// the pipeline.
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"shastamon/internal/labels"
	"shastamon/internal/promtext"
)

// Namespace prefixes every metric the pipeline registers about itself.
const Namespace = "shastamon_"

// DefBuckets are the default histogram bounds, tuned for the in-process
// latencies this simulator sees (sub-microsecond to seconds).
var DefBuckets = []float64{
	1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// LatencyBuckets are bounds for end-to-end detection latencies — seconds
// to minutes, dominated by rule `for:` hold times and group waits rather
// than in-process work.
var LatencyBuckets = []float64{
	0.5, 1, 2.5, 5, 10, 15, 30, 45, 60, 75, 90, 120, 180, 300, 600, 900,
}

// Gatherer yields a snapshot of metric families; Registry implements it,
// and so do composite holders like core.Pipeline.
type Gatherer interface {
	Gather() []promtext.Family
}

// collector is one registered metric family.
type collector interface {
	family() promtext.Family
}

// Registry is a set of named metrics. Registration is done once at
// component construction; the hot-path operations (Inc, Add, Set, Observe)
// are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	names    map[string]bool
	ordered  []collector
	collects []func() []promtext.Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(name string, c collector) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	r.ordered = append(r.ordered, c)
}

// Collect registers a callback producing families computed at gather time —
// for state that already has its own accounting (store Stats snapshots,
// consumer-group lag) and would be wasteful to double-count.
func (r *Registry) Collect(fn func() []promtext.Family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

// Gather snapshots every registered metric. Families appear in
// registration order; Collect callbacks append after them.
func (r *Registry) Gather() []promtext.Family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ordered := append([]collector(nil), r.ordered...)
	collects := append([]func() []promtext.Family(nil), r.collects...)
	r.mu.Unlock()
	out := make([]promtext.Family, 0, len(ordered))
	for _, c := range ordered {
		out = append(out, c.family())
	}
	for _, fn := range collects {
		out = append(out, fn()...)
	}
	return out
}

// Handler serves the registry in text exposition format.
func (r *Registry) Handler() http.Handler { return Handler(r) }

// Handler serves the union of the given gatherers as one exposition page.
func Handler(gs ...Gatherer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var fams []promtext.Family
		for _, g := range gs {
			if g != nil {
				fams = append(fams, g.Gather()...)
			}
		}
		_ = promtext.Write(w, fams)
	})
}

// Value sums, across the given families, every sample of the named metric
// whose labels include all of the given name/value pairs. It is the
// assertion helper tests and benchmark reports use.
func Value(fams []promtext.Family, metric string, pairs ...string) float64 {
	if len(pairs)%2 != 0 {
		panic("obs.Value: odd number of label pair arguments")
	}
	var sum float64
	for _, f := range fams {
		for _, m := range f.Metrics {
			if m.Name != metric {
				continue
			}
			ok := true
			for i := 0; i < len(pairs); i += 2 {
				if m.Labels.Get(pairs[i]) != pairs[i+1] {
					ok = false
					break
				}
			}
			if ok {
				sum += m.Value
			}
		}
	}
	return sum
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the named histogram
// from its _bucket samples across the given families, in the
// histogram_quantile style: linear interpolation inside the bucket the
// rank falls in, with the largest finite bound returned when it falls in
// +Inf. Like Value, the optional label pairs filter which children are
// summed. Returns NaN when the histogram has no observations.
func Quantile(fams []promtext.Family, metric string, q float64, pairs ...string) float64 {
	if len(pairs)%2 != 0 {
		panic("obs.Quantile: odd number of label pair arguments")
	}
	// Sum cumulative counts per upper bound across matching children.
	cum := map[float64]float64{}
	for _, f := range fams {
		for _, m := range f.Metrics {
			if m.Name != metric+"_bucket" {
				continue
			}
			ok := true
			for i := 0; i < len(pairs); i += 2 {
				if m.Labels.Get(pairs[i]) != pairs[i+1] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			le, err := strconv.ParseFloat(m.Labels.Get("le"), 64)
			if err != nil {
				continue
			}
			cum[le] += m.Value
		}
	}
	bounds := make([]float64, 0, len(cum))
	for b := range cum {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	if len(bounds) == 0 {
		return math.NaN()
	}
	total := cum[bounds[len(bounds)-1]] // +Inf sorts last
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range bounds {
		c := cum[b]
		if rank <= c {
			if math.IsInf(b, +1) {
				return prevBound // rank beyond the last finite bucket
			}
			inBucket := c - prevCum
			if inBucket <= 0 {
				return b
			}
			return prevBound + (b-prevBound)*(rank-prevCum)/inBucket
		}
		prevBound, prevCum = b, c
	}
	return prevBound
}

// GathererFunc adapts a function to the Gatherer interface.
type GathererFunc func() []promtext.Family

// Gather implements Gatherer.
func (f GathererFunc) Gather() []promtext.Family { return f() }

// Fam builds a one-sample family — the convenience Collect callbacks use
// when deriving families from an existing stats snapshot. typ is "counter"
// or "gauge"; labelPairs is an alternating name/value list.
func Fam(typ, name, help string, v float64, labelPairs ...string) promtext.Family {
	m := promtext.Metric{Name: name, Value: v}
	if len(labelPairs) > 0 {
		m.Labels = labels.FromStrings(labelPairs...)
	}
	return promtext.Family{Name: name, Help: help, Type: typ,
		Metrics: []promtext.Metric{m}}
}

// Sample appends one more sample to a family built with Fam — for families
// that expose several label sets of the same metric.
func Sample(f promtext.Family, v float64, labelPairs ...string) promtext.Family {
	m := promtext.Metric{Name: f.Name, Value: v}
	if len(labelPairs) > 0 {
		m.Labels = labels.FromStrings(labelPairs...)
	}
	f.Metrics = append(f.Metrics, m)
	return f
}

// ---- float64 atomics ----

type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64)  { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) value() float64 { return math.Float64frombits(f.bits.Load()) }

// ---- counters ----

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds v; negative deltas are a programming error and are dropped.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.v.add(v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.value() }

type counterEntry struct {
	name, help string
	c          *Counter
}

func (e *counterEntry) family() promtext.Family {
	return promtext.Family{Name: e.name, Help: e.help, Type: "counter",
		Metrics: []promtext.Metric{{Name: e.name, Value: e.c.Value()}}}
}

// Counter registers and returns a labelless counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &counterEntry{name: name, help: help, c: c})
	return c
}

// ---- gauges ----

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.v.set(v) }

// Add adds v (may be negative).
func (g *Gauge) Add(v float64) { g.v.add(v) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.value() }

type gaugeEntry struct {
	name, help string
	g          *Gauge
	fn         func() float64 // set for GaugeFunc
}

func (e *gaugeEntry) family() promtext.Family {
	v := 0.0
	if e.fn != nil {
		v = e.fn()
	} else {
		v = e.g.Value()
	}
	return promtext.Family{Name: e.name, Help: e.help, Type: "gauge",
		Metrics: []promtext.Metric{{Name: e.name, Value: v}}}
}

// Gauge registers and returns a labelless gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, &gaugeEntry{name: name, help: help, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at gather time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeEntry{name: name, help: help, fn: fn})
}

// ---- histograms ----

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in increasing order; a final +Inf bucket is implicit. Each
// bucket retains the most recent exemplar recorded into it, so a scrape
// can link a slow observation to its trace.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; non-cumulative per bucket
	sum    atomicFloat
	total  atomic.Uint64
	ex     []atomic.Pointer[promtext.Exemplar] // len(bounds)+1, latest per bucket
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
		ex:     make([]atomic.Pointer[promtext.Exemplar], len(b)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
}

// ObserveWithExemplar records one observation and attaches an exemplar
// (label pairs such as "trace_id", id) to the bucket it lands in. tsMillis
// is the observation time in milliseconds since epoch (0 to omit).
func (h *Histogram) ObserveWithExemplar(v float64, tsMillis int64, labelPairs ...string) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.total.Add(1)
	ex := &promtext.Exemplar{Value: v, Timestamp: tsMillis}
	if len(labelPairs) > 0 {
		ex.Labels = labels.FromStrings(labelPairs...)
	}
	h.ex[i].Store(ex)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.value() }

// metrics renders the _bucket/_sum/_count triplet with base labels.
func (h *Histogram) metrics(name string, base labels.Labels) []promtext.Metric {
	out := make([]promtext.Metric, 0, len(h.bounds)+3)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := strconv.FormatFloat(b, 'g', -1, 64)
		out = append(out, promtext.Metric{Name: name + "_bucket",
			Labels: base.With("le", le), Value: float64(cum),
			Exemplar: h.ex[i].Load()})
	}
	cum += h.counts[len(h.bounds)].Load()
	out = append(out, promtext.Metric{Name: name + "_bucket",
		Labels: base.With("le", "+Inf"), Value: float64(cum),
		Exemplar: h.ex[len(h.bounds)].Load()})
	out = append(out, promtext.Metric{Name: name + "_sum", Labels: base, Value: h.Sum()})
	out = append(out, promtext.Metric{Name: name + "_count", Labels: base, Value: float64(cum)})
	return out
}

type histogramEntry struct {
	name, help string
	h          *Histogram
}

func (e *histogramEntry) family() promtext.Family {
	return promtext.Family{Name: e.name, Help: e.help, Type: "histogram",
		Metrics: e.h.metrics(e.name, nil)}
}

// Histogram registers and returns a labelless histogram. Nil or empty
// buckets take DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	r.register(name, &histogramEntry{name: name, help: help, h: h})
	return h
}

// ---- vectors (labelled children) ----

const keySep = '\xff'

func childKey(values []string) string {
	n := 0
	for _, v := range values {
		n += len(v) + 1
	}
	b := make([]byte, 0, n)
	for _, v := range values {
		b = append(b, v...)
		b = append(b, keySep)
	}
	return string(b)
}

type vec[T any] struct {
	name, help string
	labelNames []string
	mu         sync.RWMutex
	children   map[string]*child[T]
	mk         func() *T
}

type child[T any] struct {
	lbls labels.Labels
	v    *T
}

func newVec[T any](name, help string, labelNames []string, mk func() *T) *vec[T] {
	if len(labelNames) == 0 {
		panic(fmt.Sprintf("obs: vector metric %q needs label names", name))
	}
	return &vec[T]{name: name, help: help, labelNames: labelNames,
		children: map[string]*child[T]{}, mk: mk}
}

func (v *vec[T]) with(values []string) *T {
	if len(values) != len(v.labelNames) {
		panic(fmt.Sprintf("obs: metric %q expects %d label values, got %d",
			v.name, len(v.labelNames), len(values)))
	}
	key := childKey(values)
	v.mu.RLock()
	c, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return c.v
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.v
	}
	ls := make(labels.Labels, 0, len(values))
	for i, val := range values {
		ls = append(ls, labels.Label{Name: v.labelNames[i], Value: val})
	}
	c = &child[T]{lbls: labels.New(ls...), v: v.mk()}
	v.children[key] = c
	return c.v
}

// sortedChildren returns children ordered by label string for
// deterministic exposition.
func (v *vec[T]) sortedChildren() []*child[T] {
	v.mu.RLock()
	out := make([]*child[T], 0, len(v.children))
	for _, c := range v.children {
		out = append(out, c)
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].lbls.String() < out[j].lbls.String() })
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ v *vec[Counter] }

// With returns the child counter for the given label values (created on
// first use), in the order the label names were registered.
func (cv *CounterVec) With(values ...string) *Counter { return cv.v.with(values) }

func (cv *CounterVec) family() promtext.Family {
	f := promtext.Family{Name: cv.v.name, Help: cv.v.help, Type: "counter"}
	for _, c := range cv.v.sortedChildren() {
		f.Metrics = append(f.Metrics, promtext.Metric{Name: cv.v.name, Labels: c.lbls, Value: c.v.Value()})
	}
	return f
}

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	cv := &CounterVec{v: newVec(name, help, labelNames, func() *Counter { return &Counter{} })}
	r.register(name, cv)
	return cv
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ v *vec[Gauge] }

// With returns the child gauge for the given label values.
func (gv *GaugeVec) With(values ...string) *Gauge { return gv.v.with(values) }

func (gv *GaugeVec) family() promtext.Family {
	f := promtext.Family{Name: gv.v.name, Help: gv.v.help, Type: "gauge"}
	for _, c := range gv.v.sortedChildren() {
		f.Metrics = append(f.Metrics, promtext.Metric{Name: gv.v.name, Labels: c.lbls, Value: c.v.Value()})
	}
	return f
}

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	gv := &GaugeVec{v: newVec(name, help, labelNames, func() *Gauge { return &Gauge{} })}
	r.register(name, gv)
	return gv
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct {
	v       *vec[Histogram]
	buckets []float64
}

// With returns the child histogram for the given label values.
func (hv *HistogramVec) With(values ...string) *Histogram { return hv.v.with(values) }

func (hv *HistogramVec) family() promtext.Family {
	f := promtext.Family{Name: hv.v.name, Help: hv.v.help, Type: "histogram"}
	for _, c := range hv.v.sortedChildren() {
		f.Metrics = append(f.Metrics, c.v.metrics(hv.v.name, c.lbls)...)
	}
	return f
}

// HistogramVec registers a labelled histogram family. Nil buckets take
// DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	hv := &HistogramVec{buckets: buckets}
	hv.v = newVec(name, help, labelNames, func() *Histogram { return newHistogram(hv.buckets) })
	r.register(name, hv)
	return hv
}
