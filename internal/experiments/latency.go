package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"shastamon/internal/alertmanager"
	"shastamon/internal/core"
	"shastamon/internal/labels"
	"shastamon/internal/obs"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
)

// LatencyScenarioResult is one scenario row of the detection-latency
// benchmark: the SLO reservoir percentiles for one alert rule.
type LatencyScenarioResult struct {
	Scenario   string  `json:"scenario"`
	Rule       string  `json:"rule"`
	Events     int64   `json:"events"`
	P50Seconds float64 `json:"p50_seconds"`
	P95Seconds float64 `json:"p95_seconds"`
	MaxSeconds float64 `json:"max_seconds"`
	BurnRate   float64 `json:"burn_rate"`
}

// LatencyReport is the full benchmark artifact bench.sh writes to
// BENCH_latency.json.
type LatencyReport struct {
	SLOTargetSeconds float64                 `json:"slo_target_seconds"`
	SLOObjective     float64                 `json:"slo_objective"`
	Scenarios        []LatencyScenarioResult `json:"scenarios"`
	// EarlyWarning is the predictive-vs-reactive benchmark (see
	// earlywarn.go), tracked in the same artifact so one file holds the
	// whole detection-latency story.
	EarlyWarning *EarlyWarnReport `json:"early_warning,omitempty"`
}

// runLatency drives both case-study failure modes through the pipeline on
// the simulated clock and reads the end-to-end detection latencies
// (Redfish emit / fabric event -> first successful delivery) back from
// the SLO tracker: three staggered cabinet leaks (for:1m rules, so
// ~60-75s each) and one switch-offline event (for:0, detected on the next
// poll tick).
func runLatency() (LatencyReport, error) {
	// Group per fault (Context for leaks, xname for switches), not per
	// alertname: with the default alertname grouping the second and third
	// leaks would wait out the 5m GroupInterval behind the first
	// notification, measuring Alertmanager batching instead of detection.
	critical := labels.Selector{labels.MustMatcher(labels.MatchEqual, "severity", "critical")}
	gw := time.Nanosecond
	route := &alertmanager.Route{
		Receiver:  "slack",
		GroupWait: gw,
		GroupBy:   []string{"alertname", "Context", "xname"},
		Routes: []*alertmanager.Route{
			{Receiver: "servicenow", Matchers: critical, GroupWait: gw, Continue: true},
			{Receiver: "slack", Matchers: critical, GroupWait: gw},
		},
	}
	p, err := core.New(core.Options{
		Cluster:  clusterConfig(),
		LogRules: []ruler.Rule{LeakRule, SwitchRule},
		Route:    route,
	})
	if err != nil {
		return LatencyReport{}, err
	}
	defer p.Close()

	t0 := LeakTime
	if err := p.Tick(t0.Add(-time.Minute)); err != nil {
		return LatencyReport{}, err
	}
	// Staggered leaks in three different cabinets: each Context is its own
	// alert group, so each closes out its own latency observation.
	leaks := []struct {
		xname string
		off   time.Duration
	}{
		{"x1203c1b0", 0},
		{"x1102c3b0", 7 * time.Second},
		{"x1002c5b0", 13 * time.Second},
	}
	for _, l := range leaks {
		if err := p.Cluster.InjectLeak(l.xname, "A", "Front", t0.Add(l.off)); err != nil {
			return LatencyReport{}, err
		}
	}
	// A switch drops partway through; the fabric monitor picks it up on
	// the next poll, so its detection latency is one tick, not a rule hold.
	if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
		return LatencyReport{}, err
	}
	// A 5s operational tick grid over the rule holds plus delivery slack.
	for ts := t0; !ts.After(t0.Add(2 * time.Minute)); ts = ts.Add(5 * time.Second) {
		if err := p.Tick(ts); err != nil {
			return LatencyReport{}, err
		}
	}

	rep := p.SLOReport()
	out := LatencyReport{SLOTargetSeconds: rep.TargetSeconds, SLOObjective: rep.Objective}
	scenario := map[string]string{
		LeakRule.Name:   "cabinet_leak",
		SwitchRule.Name: "switch_offline",
	}
	for _, r := range rep.Rules {
		name, ok := scenario[r.Rule]
		if !ok {
			name = r.Rule
		}
		out.Scenarios = append(out.Scenarios, LatencyScenarioResult{
			Scenario:   name,
			Rule:       r.Rule,
			Events:     r.Events,
			P50Seconds: r.P50,
			P95Seconds: r.P95,
			MaxSeconds: r.Max,
			BurnRate:   r.BurnRate,
		})
	}
	if len(out.Scenarios) != 2 {
		return out, fmt.Errorf("latency: expected 2 scenarios, got %d (%+v)", len(out.Scenarios), out.Scenarios)
	}
	// Sanity-bound the numbers so the benchmark fails loudly if the
	// pipeline regresses: leak detection is dominated by the 1m rule hold,
	// switch detection by one 5s tick.
	for _, s := range out.Scenarios {
		switch s.Scenario {
		case "cabinet_leak":
			if s.Events != int64(len(leaks)) || s.MaxSeconds < 60 || s.MaxSeconds > obs.DefaultSLO.Target.Seconds() {
				return out, fmt.Errorf("latency: leak scenario out of bounds: %+v", s)
			}
		case "switch_offline":
			if s.Events != 1 || s.MaxSeconds > 30 {
				return out, fmt.Errorf("latency: switch scenario out of bounds: %+v", s)
			}
		}
	}
	return out, nil
}

// Latency prints the detection-latency benchmark as a human-readable
// table: how long the pipeline takes from the instant a fault is emitted
// to the alert reaching a receiver, per scenario.
func Latency(w io.Writer) error {
	rep, err := runLatency()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Detection latency (emit -> first delivery), SLO %.0f%% within %.0fs:\n",
		rep.SLOObjective*100, rep.SLOTargetSeconds)
	fmt.Fprintf(w, "%-16s %-24s %7s %8s %8s %8s %6s\n",
		"scenario", "rule", "events", "p50(s)", "p95(s)", "max(s)", "burn")
	for _, s := range rep.Scenarios {
		fmt.Fprintf(w, "%-16s %-24s %7d %8.1f %8.1f %8.1f %6.2f\n",
			s.Scenario, s.Rule, s.Events, s.P50Seconds, s.P95Seconds, s.MaxSeconds, s.BurnRate)
	}
	return nil
}

// LatencyJSON writes the same benchmark as a pure-JSON artifact for
// bench.sh (BENCH_latency.json), with the early-warning race embedded.
func LatencyJSON(w io.Writer) error {
	rep, err := runLatency()
	if err != nil {
		return err
	}
	ew, err := runEarlyWarn()
	if err != nil {
		return err
	}
	rep.EarlyWarning = &ew
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
