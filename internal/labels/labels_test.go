package labels

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	ls := New(Label{"b", "2"}, Label{"a", "1"}, Label{"b", "3"})
	want := Labels{{"a", "1"}, {"b", "3"}}
	if !ls.Equal(want) {
		t.Fatalf("got %v want %v", ls, want)
	}
}

func TestFromStrings(t *testing.T) {
	ls := FromStrings("cluster", "perlmutter", "app", "fm")
	if ls[0].Name != "app" || ls[1].Name != "cluster" {
		t.Fatalf("not sorted: %v", ls)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd args")
		}
	}()
	FromStrings("only-one")
}

func TestGetHasMap(t *testing.T) {
	ls := FromStrings("a", "1", "b", "2")
	if ls.Get("a") != "1" || ls.Get("missing") != "" {
		t.Fatal("Get wrong")
	}
	if !ls.Has("b") || ls.Has("c") {
		t.Fatal("Has wrong")
	}
	m := ls.Map()
	if len(m) != 2 || m["b"] != "2" {
		t.Fatalf("Map wrong: %v", m)
	}
}

func TestWithInsertReplaceAppend(t *testing.T) {
	ls := FromStrings("b", "2", "d", "4")
	cases := []struct {
		name, value string
		want        Labels
	}{
		{"a", "1", FromStrings("a", "1", "b", "2", "d", "4")},
		{"b", "9", FromStrings("b", "9", "d", "4")},
		{"c", "3", FromStrings("b", "2", "c", "3", "d", "4")},
		{"e", "5", FromStrings("b", "2", "d", "4", "e", "5")},
	}
	for _, c := range cases {
		got := ls.With(c.name, c.value)
		if !got.Equal(c.want) {
			t.Errorf("With(%s,%s) = %v, want %v", c.name, c.value, got, c.want)
		}
	}
	// Original untouched.
	if !ls.Equal(FromStrings("b", "2", "d", "4")) {
		t.Fatal("With mutated receiver")
	}
}

func TestWithoutKeep(t *testing.T) {
	ls := FromStrings("a", "1", "b", "2", "c", "3")
	if got := ls.Without("b"); !got.Equal(FromStrings("a", "1", "c", "3")) {
		t.Fatalf("Without: %v", got)
	}
	if got := ls.Keep("b", "zz"); !got.Equal(FromStrings("b", "2")) {
		t.Fatalf("Keep: %v", got)
	}
}

func TestFingerprintDistinguishesBoundaries(t *testing.T) {
	// "ab"+"c" must differ from "a"+"bc".
	a := New(Label{"ab", "c"})
	b := New(Label{"a", "bc"})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint collision on boundary shift")
	}
	if a.Fingerprint() != a.Copy().Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
}

func TestFingerprintSeeded(t *testing.T) {
	ls := FromStrings("app", "fm", "cluster", "perlmutter")
	// Seeding with the FNV offset basis is the identity: the tenant layer
	// relies on this to keep default-tenant fingerprints byte-identical.
	if ls.FingerprintSeeded(14695981039346656037) != ls.Fingerprint() {
		t.Fatal("offset-basis seed diverges from plain Fingerprint")
	}
	s1, s2 := Seed("hpc-a"), Seed("hpc-b")
	if s1 == s2 {
		t.Fatal("distinct strings share a seed")
	}
	if ls.FingerprintSeeded(s1) == ls.FingerprintSeeded(s2) {
		t.Fatal("distinct seeds share a fingerprint")
	}
	if ls.FingerprintSeeded(s1) != ls.Copy().FingerprintSeeded(s1) {
		t.Fatal("seeded fingerprint not deterministic")
	}
}

func TestString(t *testing.T) {
	ls := FromStrings("app", "fm", "cluster", "perlmutter")
	got := ls.String()
	want := `{app="fm", cluster="perlmutter"}`
	if got != want {
		t.Fatalf("got %s want %s", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := FromStrings("ok", "v").Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Labels{{Name: "", Value: "v"}}
	if bad.Validate() == nil {
		t.Fatal("empty name accepted")
	}
	bad = Labels{{Name: `a=b`, Value: "v"}}
	if bad.Validate() == nil {
		t.Fatal("name with = accepted")
	}
}

func TestMatcherTypes(t *testing.T) {
	cases := []struct {
		t    MatchType
		val  string
		in   string
		want bool
	}{
		{MatchEqual, "x", "x", true},
		{MatchEqual, "x", "y", false},
		{MatchNotEqual, "x", "y", true},
		{MatchNotEqual, "x", "x", false},
		{MatchRegexp, "x.*", "xyz", true},
		{MatchRegexp, "x.*", "axyz", false}, // anchored
		{MatchNotRegexp, "x.*", "abc", true},
		{MatchNotRegexp, "x.*", "x", false},
	}
	for _, c := range cases {
		m, err := NewMatcher(c.t, "l", c.val)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Matches(c.in); got != c.want {
			t.Errorf("%s %q on %q: got %v", c.t, c.val, c.in, got)
		}
	}
}

func TestMatcherBadRegexp(t *testing.T) {
	if _, err := NewMatcher(MatchRegexp, "l", "("); err == nil {
		t.Fatal("bad regexp accepted")
	}
}

func TestMatchLabelsAbsentLabel(t *testing.T) {
	ls := FromStrings("a", "1")
	// != on absent label matches (empty string != "x").
	m := MustMatcher(MatchNotEqual, "b", "x")
	if !MatchLabels(ls, []*Matcher{m}) {
		t.Fatal("!= on absent label should match")
	}
	// = on absent label fails unless value is "".
	m2 := MustMatcher(MatchEqual, "b", "")
	if !MatchLabels(ls, []*Matcher{m2}) {
		t.Fatal(`= "" on absent label should match`)
	}
}

func TestSelectorString(t *testing.T) {
	s := Selector{MustMatcher(MatchEqual, "app", "fm"), MustMatcher(MatchRegexp, "x", "y.*")}
	want := `{app="fm", x=~"y.*"}`
	if s.String() != want {
		t.Fatalf("got %s", s.String())
	}
	if !s.Matches(FromStrings("app", "fm", "x", "yz")) {
		t.Fatal("selector should match")
	}
}

func TestBuilder(t *testing.T) {
	base := FromStrings("a", "1", "b", "2")
	got := NewBuilder(base).Set("c", "3").Del("a").Set("b", "9").Labels()
	if !got.Equal(FromStrings("b", "9", "c", "3")) {
		t.Fatalf("builder: %v", got)
	}
	// Set after Del restores.
	got = NewBuilder(base).Del("a").Set("a", "x").Labels()
	if got.Get("a") != "x" {
		t.Fatalf("set-after-del: %v", got)
	}
}

// Property: New output is always sorted and unique.
func TestPropertyNewSorted(t *testing.T) {
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		pairs := make([]Label, 0, n)
		for i := 0; i < n; i++ {
			pairs = append(pairs, Label{names[i], values[i]})
		}
		ls := New(pairs...)
		if !sort.SliceIsSorted(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name }) {
			return false
		}
		for i := 1; i < len(ls); i++ {
			if ls[i].Name == ls[i-1].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fingerprints of permuted constructions agree.
func TestPropertyFingerprintOrderIndependent(t *testing.T) {
	f := func(a, b, c string) bool {
		l1 := New(Label{"x", a}, Label{"y", b}, Label{"z", c})
		l2 := New(Label{"z", c}, Label{"x", a}, Label{"y", b})
		return l1.Fingerprint() == l2.Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: With then Get round-trips, and keeps sorting.
func TestPropertyWithGet(t *testing.T) {
	f := func(k, v string) bool {
		if k == "" || strings.ContainsAny(k, `={}" ,`) {
			return true // skip invalid names
		}
		base := FromStrings("m", "1", "zz", "2")
		got := base.With(k, v)
		return got.Get(k) == v && sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Name < got[j].Name })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFingerprint(b *testing.B) {
	ls := FromStrings("cluster", "perlmutter", "data_type", "redfish_event", "Context", "x1203c1b0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ls.Fingerprint()
	}
}

func BenchmarkMatchLabels(b *testing.B) {
	ls := FromStrings("cluster", "perlmutter", "data_type", "redfish_event", "Context", "x1203c1b0")
	sel := Selector{
		MustMatcher(MatchEqual, "cluster", "perlmutter"),
		MustMatcher(MatchRegexp, "Context", "x1.*"),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !sel.Matches(ls) {
			b.Fatal("no match")
		}
	}
}
