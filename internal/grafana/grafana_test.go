package grafana

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"shastamon/internal/labels"
	"shastamon/internal/logql"
	"shastamon/internal/loki"
	"shastamon/internal/promql"
	"shastamon/internal/tsdb"
)

const leakLine = `{"Severity":"Warning","MessageId":"CrayAlerts.1.0.CabinetLeakDetected","Message":"Sensor 'A' of the redundant leak sensors in the 'Front' cabinet zone has detected a leak."}`

func testRenderer(t *testing.T) (*loki.Store, *tsdb.DB, *Renderer, time.Time) {
	t.Helper()
	store := loki.NewStore(loki.DefaultLimits())
	db := tsdb.New()
	r := NewRenderer(logql.NewEngine(store), promql.NewEngine(db))
	eventTime := time.Date(2022, 3, 3, 1, 47, 57, 0, time.UTC)
	return store, db, r, eventTime
}

func pushLeak(t *testing.T, store *loki.Store, ts time.Time) {
	t.Helper()
	ls := labels.FromStrings("Context", "x1203c1b0", "cluster", "perlmutter", "data_type", "redfish_event")
	if err := store.Push([]loki.PushStream{{Labels: ls, Entries: []loki.Entry{{Timestamp: ts.UnixNano(), Line: leakLine}}}}); err != nil {
		t.Fatal(err)
	}
}

// Fig. 4: the Redfish event listed in a Grafana log panel.
func TestRenderLogTableFig4(t *testing.T) {
	store, _, r, eventTime := testRenderer(t)
	pushLeak(t, store, eventTime)
	p := Panel{Title: "Redfish events", Query: `{data_type="redfish_event"}`, Source: SourceLokiLogs}
	out, err := r.RenderPanel(p, eventTime.Add(-time.Hour), eventTime.Add(time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(1 entries)", "2022-03-03 01:47:57", "x1203c1b0", "CabinetLeakDetected"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLogTableTruncation(t *testing.T) {
	store, _, r, base := testRenderer(t)
	ls := labels.FromStrings("app", "x")
	var entries []loki.Entry
	for i := 0; i < 30; i++ {
		entries = append(entries, loki.Entry{Timestamp: base.Add(time.Duration(i) * time.Second).UnixNano(), Line: "l"})
	}
	_ = store.Push([]loki.PushStream{{Labels: ls, Entries: entries}})
	p := Panel{Title: "t", Query: `{app="x"}`, Source: SourceLokiLogs, MaxRows: 5}
	out, err := r.RenderPanel(p, base, base.Add(time.Hour), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "truncated") || strings.Count(out, "\n") > 8 {
		t.Fatalf("truncation missing:\n%s", out)
	}
}

// Fig. 5: the count_over_time query stepping from 0 to 1 at the event.
func TestRenderChartFig5(t *testing.T) {
	store, _, r, eventTime := testRenderer(t)
	pushLeak(t, store, eventTime)
	p := Panel{
		Title:  "LeakDetected metric",
		Query:  `sum(count_over_time({data_type="redfish_event"} |= "CabinetLeakDetected" | json [60m])) by (severity, cluster, context, message_id, message)`,
		Source: SourceLokiMetric,
	}
	out, err := r.RenderPanel(p, eventTime.Add(-30*time.Minute), eventTime.Add(30*time.Minute), 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("no data points:\n%s", out)
	}
	// The legend carries the grouped labels.
	if !strings.Contains(out, `severity="Warning"`) {
		t.Fatalf("legend missing labels:\n%s", out)
	}
}

func TestRenderMetricsChart(t *testing.T) {
	_, db, r, base := testRenderer(t)
	for i := 0; i <= 10; i++ {
		_ = db.AppendMetric("node_temp_celsius", labels.FromStrings("xname", "x1"), base.Add(time.Duration(i)*time.Minute).UnixMilli(), float64(40+i))
	}
	p := Panel{Title: "temps", Query: `node_temp_celsius`, Source: SourceMetrics, Width: 40, Height: 8}
	out, err := r.RenderPanel(p, base, base.Add(10*time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "temps") || !strings.Contains(out, "*") {
		t.Fatalf("chart:\n%s", out)
	}
}

func TestRenderEmptyChart(t *testing.T) {
	_, _, r, base := testRenderer(t)
	p := Panel{Title: "empty", Query: `up`, Source: SourceMetrics}
	out, err := r.RenderPanel(p, base, base.Add(time.Minute), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("%s", out)
	}
}

func TestRenderDashboard(t *testing.T) {
	store, _, r, eventTime := testRenderer(t)
	pushLeak(t, store, eventTime)
	d := Dashboard{
		Title: "Perlmutter Leak Detection",
		Panels: []Panel{
			{Title: "events", Query: `{data_type="redfish_event"}`, Source: SourceLokiLogs},
			{Title: "count", Query: `sum(count_over_time({data_type="redfish_event"}[60m]))`, Source: SourceLokiMetric},
		},
	}
	out, err := r.RenderDashboard(d, eventTime.Add(-time.Hour), eventTime.Add(time.Hour), 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== Perlmutter Leak Detection ==") || !strings.Contains(out, "-- events") || !strings.Contains(out, "-- count") {
		t.Fatalf("%s", out)
	}
}

func TestRenderDashboardBadQuery(t *testing.T) {
	_, _, r, base := testRenderer(t)
	d := Dashboard{Title: "x", Panels: []Panel{{Title: "bad", Query: `{{{`, Source: SourceLokiLogs}}}
	if _, err := r.RenderDashboard(d, base, base.Add(time.Minute), time.Second); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestCSVExport(t *testing.T) {
	store, _, r, eventTime := testRenderer(t)
	pushLeak(t, store, eventTime)
	p := Panel{Query: `sum(count_over_time({data_type="redfish_event"}[60m]))`, Source: SourceLokiMetric}
	out, err := r.CSV(p, eventTime, eventTime.Add(10*time.Minute), 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "timestamp,series,value" || len(lines) != 4 {
		t.Fatalf("%s", out)
	}
	if !strings.HasSuffix(lines[1], ",1") {
		t.Fatalf("value: %s", lines[1])
	}
	// Log panels cannot export CSV.
	if _, err := r.CSV(Panel{Query: `{a="b"}`, Source: SourceLokiLogs}, eventTime, eventTime, time.Second); err == nil {
		t.Fatal("log CSV accepted")
	}
}

func TestExportJSON(t *testing.T) {
	d := Dashboard{
		Title: "Perlmutter Ops",
		Panels: []Panel{
			{Title: "events", Query: `{data_type="redfish_event"}`, Source: SourceLokiLogs},
			{Title: "leaks", Query: `sum(count_over_time({data_type="redfish_event"}[60m]))`, Source: SourceLokiMetric},
			{Title: "temps", Query: `avg(cray_telemetry_temperature)`, Source: SourceMetrics},
		},
	}
	data, err := ExportJSON(d)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Title         string `json:"title"`
		SchemaVersion int    `json:"schemaVersion"`
		Panels        []struct {
			Type       string `json:"type"`
			Datasource struct {
				UID string `json:"uid"`
			} `json:"datasource"`
			Targets []struct {
				Expr string `json:"expr"`
			} `json:"targets"`
			GridPos map[string]int `json:"gridPos"`
		} `json:"panels"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Title != "Perlmutter Ops" || out.SchemaVersion == 0 || len(out.Panels) != 3 {
		t.Fatalf("%s", data)
	}
	if out.Panels[0].Type != "logs" || out.Panels[0].Datasource.UID != "loki" {
		t.Fatalf("%+v", out.Panels[0])
	}
	if out.Panels[2].Datasource.UID != "victoriametrics" || out.Panels[2].Targets[0].Expr == "" {
		t.Fatalf("%+v", out.Panels[2])
	}
	// Two-per-row layout.
	if out.Panels[1].GridPos["x"] != 12 || out.Panels[2].GridPos["y"] != 8 {
		t.Fatalf("layout: %+v", out.Panels)
	}
	// Unknown source errors.
	if _, err := ExportJSON(Dashboard{Panels: []Panel{{Source: Source(99)}}}); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestRenderChartNegativeValues(t *testing.T) {
	_, db, r, base := testRenderer(t)
	for i, v := range []float64{-10, 0, 10} {
		_ = db.AppendMetric("delta_t", labels.FromStrings("xname", "x1"), base.Add(time.Duration(i)*time.Minute).UnixMilli(), v)
	}
	p := Panel{Title: "deltas", Query: `delta_t`, Source: SourceMetrics, Width: 30, Height: 6}
	out, err := r.RenderPanel(p, base, base.Add(2*time.Minute), time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// The y axis must span below zero.
	if !strings.Contains(out, "-10.00") {
		t.Fatalf("axis missing negatives:\n%s", out)
	}
}
