package vmagent

import (
	"sort"

	"shastamon/internal/obs"
	"shastamon/internal/promtext"
)

// Metrics lazily builds the agent's self-monitoring registry, derived at
// gather time from Stats().
func (a *Agent) Metrics() *obs.Registry {
	a.obsOnce.Do(func() {
		reg := obs.NewRegistry()
		reg.Collect(func() []promtext.Family {
			st := a.Stats()
			fams := []promtext.Family{
				obs.Fam("counter", obs.Namespace+"vmagent_scrapes_total",
					"Scrape attempts across all jobs and targets.", float64(st.Scrapes)),
				obs.Fam("counter", obs.Namespace+"vmagent_scrape_failures_total",
					"Scrapes that failed (target down or unparsable).", float64(st.Failures)),
				obs.Fam("counter", obs.Namespace+"vmagent_scrapes_skipped_total",
					"Scrapes suppressed by an open per-target breaker.", float64(st.Skipped)),
				obs.Fam("counter", obs.Namespace+"vmagent_samples_scraped_total",
					"Samples written to the TSDB from scrapes.", float64(st.Samples)),
			}
			stale := a.StalenessSeconds()
			targets := make([]string, 0, len(stale))
			for t := range stale {
				targets = append(targets, t)
			}
			sort.Strings(targets)
			f := promtext.Family{Name: obs.Namespace + "scrape_staleness_seconds", Type: "gauge",
				Help: "Scrape-timestamp seconds since the target last scraped successfully (0 = fresh)."}
			for _, t := range targets {
				f = obs.Sample(f, stale[t], "target", t)
			}
			return append(fams, f)
		})
		a.obsReg = reg
	})
	return a.obsReg
}
