package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{Initial: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	SeedJitter(7)
	p := Policy{Initial: 100 * time.Millisecond, Max: time.Second, Jitter: 0.5}
	for i := 0; i < 100; i++ {
		d := p.Backoff(0)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered backoff %v outside ±50%% of 100ms", d)
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(Policy{
		MaxAttempts: 4, Initial: time.Millisecond, Jitter: -1,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	if len(slept) != 2 || slept[0] != time.Millisecond || slept[1] != 2*time.Millisecond {
		t.Fatalf("slept = %v", slept)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	calls := 0
	base := errors.New("down")
	err := Retry(Policy{MaxAttempts: 3, Initial: time.Microsecond, Sleep: func(time.Duration) {}},
		func() error { calls++; return base })
	if calls != 3 || !errors.Is(err, base) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	err := Retry(Policy{
		MaxAttempts: 5, Sleep: func(time.Duration) {},
		Retriable: func(err error) bool { return !errors.Is(err, perm) },
	}, func() error { calls++; return perm })
	if calls != 1 || !errors.Is(err, perm) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
}

// fakeClock drives breaker tests deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(BreakerConfig{Name: "dep", FailureThreshold: 3, OpenFor: 10 * time.Second, Now: clk.now})

	// Closed: failures below threshold keep it closed.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Failure()
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
	// Third consecutive failure opens it.
	b.Failure()
	if b.State() != Open || b.Trips() != 1 {
		t.Fatalf("state = %v trips = %d", b.State(), b.Trips())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("allow while open: %v", err)
	}

	// After the open window one probe is admitted, a second is rejected.
	clk.advance(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted")
	}

	// Failed probe re-opens; successful probe after another window closes.
	b.Failure()
	if b.State() != Open || b.Trips() != 2 {
		t.Fatalf("state = %v trips = %d", b.State(), b.Trips())
	}
	clk.advance(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Success()
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
	// A success resets the failure streak: two failures stay closed again.
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("streak not reset: %v", b.State())
	}
}

func TestBreakerDo(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(BreakerConfig{Name: "d", FailureThreshold: 1, OpenFor: time.Minute, Now: clk.now})
	boom := errors.New("boom")
	if err := b.Do(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatal(err)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker ran fn: %v", err)
	}
	clk.advance(2 * time.Minute)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestBreakerStateValues(t *testing.T) {
	// The gauge convention the dashboards document: 0/1/2.
	if Closed.String() != "closed" || HalfOpen.String() != "half-open" || Open.String() != "open" {
		t.Fatal("state strings")
	}
	if float64(Closed) != 0 || float64(HalfOpen) != 1 || float64(Open) != 2 {
		t.Fatal("state values")
	}
}
