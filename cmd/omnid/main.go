// Command omnid runs the full monitoring pipeline against the simulated
// Perlmutter system on wall-clock time: hardware telemetry and syslog flow
// through Kafka and the Telemetry API into Loki and the TSDB; the Ruler
// and vmalert evaluate the case-study rules; alerts fan out to the
// in-process Slack webhook and ServiceNow instance. A small status server
// exposes the warehouse and notification state.
//
//	omnid -listen 127.0.0.1:8080 -interval 1s -leak-after 5s
//
// Endpoints:
//
//	GET /status              pipeline counters as JSON
//	GET /slack               messages received by the Slack webhook
//	GET /servicenow/alerts   ServiceNow alerts
//	GET /servicenow/incidents
//	GET /query/logs?q=...    LogQL log query over the last hour
//	GET /query/metrics?q=... PromQL instant query
//	GET /api/v1/heatmap      node × time error-density grid (JSON); params
//	                         since=30m step=2m, format=render for the
//	                         terminal shading
//	GET /debug/dlq           quarantined (dead-letter) records, logcli style
//	POST /debug/dlq/replay?topic=...  replay a topic's DLQ onto the source topic
//
// With -metrics (default on), the same listener additionally serves:
//
//	GET /metrics             shastamon_* self-metrics (Prometheus text, with
//	                         exemplar trace IDs on the detection-latency buckets)
//	GET /debug/trace/        event traces; /debug/trace/{id} for one, and
//	                         /debug/trace/{id}?format=waterfall for the
//	                         plain-text timed-span waterfall
//	GET /debug/slo           detection-latency SLO report (per-rule burn
//	                         rate, p50/p95/max) as JSON
//	GET /debug/queries       queries executing right now, with running stats
//	POST /debug/queries/{id}/kill  cancel a runaway query mid-scan
//	GET /debug/slowlog       recent slow / limit-breached queries (JSON)
//	GET /debug/pprof/        net/http/pprof profiles
//
// With -meta-alerts, the built-in self-monitoring rule pack (core.MetaRules)
// is evaluated over the pipeline's own shastamon_* series and delivered
// through the same Alertmanager -> Slack/ServiceNow path as hardware alerts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/experiments"
	"shastamon/internal/frontend"
	"shastamon/internal/ruler"
	"shastamon/internal/shasta"
	"shastamon/internal/syslogd"
	"shastamon/internal/tenant"
	"shastamon/internal/vmalert"
	"shastamon/internal/wal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8080", "status server address")
	interval := flag.Duration("interval", time.Second, "pipeline tick interval")
	leakAfter := flag.Duration("leak-after", 10*time.Second, "inject a cabinet leak after this long (0 disables)")
	switchAfter := flag.Duration("switch-after", 20*time.Second, "take a switch offline after this long (0 disables)")
	syslogRate := flag.Int("syslog-rate", 20, "synthetic syslog messages per tick")
	rulesPath := flag.String("rules", "", "JSON rule file (see core.RuleFile); default: the paper's two case-study rules")
	metrics := flag.Bool("metrics", true, "serve /metrics, /debug/trace/, /debug/slo, /debug/queries, /debug/slowlog and /debug/pprof/ on the status listener")
	metaAlerts := flag.Bool("meta-alerts", false, "evaluate the built-in self-monitoring rule pack (SLO burn, stuck breakers, DLQ growth, stage errors, scrape staleness)")
	dataDir := flag.String("data-dir", "", "durable warehouse directory (WAL, sealed-chunk spill, checkpoints); empty runs memory-only")
	walFsync := flag.String("wal-fsync", "interval", "WAL fsync policy: always (sync every append), interval (lazy, default), never")
	walSegment := flag.Int("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = 4 MiB default)")
	checkpointEvery := flag.Duration("checkpoint-every", time.Minute, "how often the tick checkpoints the stores to bound WAL replay")
	splitInterval := flag.Duration("split-interval", 0, "query frontend time-split interval (0 = 5m default, negative disables splitting)")
	cacheBytes := flag.Int("result-cache-bytes", 0, "query results cache budget in bytes (0 = 32 MiB default, negative disables)")
	queryConcurrency := flag.Int("query-concurrency", 0, "max concurrently executing range queries per engine (0 = 2×GOMAXPROCS)")
	queryQueueDepth := flag.Int("query-queue-depth", 0, "max range queries waiting per engine before 429 rejection (0 = 64 default)")
	noShardFanout := flag.Bool("no-shard-fanout", false, "disable per-shard query fan-out inside each time split")
	tenantTokens := map[string]string{} // bearer token -> tenant ID
	flag.Func("tenant-token", "tenant:token bearer credential for the push and query APIs (repeatable; any -tenant-token switches them to authenticated mode)",
		func(v string) error {
			id, tok, err := tenant.ParseTokenFlag(v)
			if err != nil {
				return err
			}
			tenantTokens[tok] = id
			return nil
		})
	tenantMaxStreams := flag.Int("tenant-max-streams", 0, "per-tenant live stream/series limit (0 = unlimited)")
	tenantIngestRate := flag.Int("tenant-ingest-rate", 0, "per-tenant log ingest rate limit in bytes/second (0 = unlimited)")
	tenantQueryConcurrency := flag.Int("tenant-query-concurrency", 0, "per-tenant concurrently executing range queries (0 = the engine-wide -query-concurrency)")
	flag.Parse()

	fsync, err := wal.ParseFsyncPolicy(*walFsync)
	if err != nil {
		log.Fatal(err)
	}

	logRules := []ruler.Rule{experiments.LeakRule, experiments.SwitchRule}
	var metricRules []vmalert.Rule
	if *rulesPath != "" {
		logRules, metricRules, err = core.LoadRules(*rulesPath)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded %d log rules and %d metric rules from %s", len(logRules), len(metricRules), *rulesPath)
	}
	var overrides *tenant.Overrides
	if *tenantMaxStreams > 0 || *tenantIngestRate > 0 || *tenantQueryConcurrency > 0 {
		overrides = &tenant.Overrides{Defaults: tenant.Limits{
			MaxStreams:          *tenantMaxStreams,
			IngestRateBytes:     *tenantIngestRate,
			MaxQueryConcurrency: *tenantQueryConcurrency,
		}}
	}
	auth := tenant.NewAuth(tenantTokens)

	p, err := core.New(core.Options{
		LogRules:     logRules,
		MetricRules:  metricRules,
		GroupWait:    time.Second,
		MetaAlerts:   *metaAlerts,
		TenantLimits: overrides,
		TenantTokens: tenantTokens,
		DataDir:      *dataDir,
		WAL: wal.StoreOptions{Options: wal.Options{
			Fsync:        fsync,
			SegmentBytes: *walSegment,
		}},
		CheckpointEvery: *checkpointEvery,
		Frontend: frontend.Config{
			SplitInterval: *splitInterval,
			CacheBytes:    *cacheBytes,
			MaxConcurrent: *queryConcurrency,
			MaxQueueDepth: *queryQueueDepth,
			NoShardFanout: *noShardFanout,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	if *dataDir != "" {
		rec, _ := p.Warehouse.Recovery()
		log.Printf("durable warehouse at %s: clean=%v replayed=%d record(s), %d corrupt record(s) dropped",
			*dataDir, rec.Logs.Clean && rec.Metrics.Clean, rec.Replayed(), rec.Corrupt())
	}

	hosts := make([]string, 0, 16)
	for i, n := range p.Cluster.Nodes() {
		if i >= 16 {
			break
		}
		hosts = append(hosts, n.String())
	}
	gen := syslogd.NewGenerator(time.Now().UnixNano(), hosts...)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Fault injection timers.
	start := time.Now()
	if *leakAfter > 0 {
		time.AfterFunc(*leakAfter, func() {
			if err := p.Cluster.InjectLeak("x1203c1b0", "A", "Front", time.Now()); err != nil {
				log.Println("leak injection:", err)
				return
			}
			log.Println("injected leak at x1203c1b0")
		})
	}
	if *switchAfter > 0 {
		time.AfterFunc(*switchAfter, func() {
			if err := p.Cluster.SetSwitchState("x1002c1r7b0", shasta.SwitchUnknown); err != nil {
				log.Println("switch fault:", err)
				return
			}
			log.Println("switch x1002c1r7b0 -> UNKNOWN")
		})
	}

	// Synthetic syslog source.
	go func() {
		t := time.NewTicker(*interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case now := <-t.C:
				for i := 0; i < *syslogRate; i++ {
					if err := p.SyslogAggregator.Ingest(gen.Next(now)); err != nil {
						log.Println("syslog:", err)
					}
				}
			}
		}
	}()

	// Status server.
	mux := newStatusMux(p, serverOpts{metrics: *metrics, auth: auth, start: start})

	srv := &http.Server{Addr: *listen, Handler: mux}
	go func() {
		log.Printf("omnid status server on http://%s", *listen)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	log.Printf("pipeline running (tick %s); Ctrl-C to stop", *interval)
	if err := p.Run(ctx, *interval); err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	fmt.Println("bye")
}
