// Command genload drives synthetic telemetry through the OMNI warehouse
// and reports sustained ingest rates — the load generator behind the C1
// (400k msgs/s) and C2 (400 GB/day) claim experiments, exposed as a
// standalone tool for parameter sweeps.
//
//	genload -duration 5s -mix logs
//	genload -duration 5s -mix mixed -hosts 512 -batch 256
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shastamon/internal/core"
	"shastamon/internal/labels"
	"shastamon/internal/loki"
	"shastamon/internal/omni"
	"shastamon/internal/syslogd"
)

func main() {
	duration := flag.Duration("duration", 3*time.Second, "how long to push load")
	mix := flag.String("mix", "mixed", "workload: logs, metrics, or mixed")
	hosts := flag.Int("hosts", 128, "distinct syslog hosts (stream cardinality)")
	batch := flag.Int("batch", 128, "entries per push batch")
	flag.Parse()

	hostnames := make([]string, *hosts)
	for i := range hostnames {
		hostnames[i] = fmt.Sprintf("nid%06d", i+1)
	}
	wh := omni.New(omni.Config{})
	gen := syslogd.NewGenerator(1, hostnames...)

	start := time.Now()
	deadline := start.Add(*duration)
	wh.RateWindowReset(start)
	ts := int64(0)
	var logs, samples int64
	metricLabels := make([]labels.Labels, *hosts)
	for i := range metricLabels {
		metricLabels[i] = labels.FromStrings("xname", hostnames[i])
	}
	for time.Now().Before(deadline) {
		if *mix == "logs" || *mix == "mixed" {
			b := make([]loki.PushStream, 0, *batch)
			for i := 0; i < *batch; i++ {
				ts += 1e6
				b = append(b, core.SyslogToLoki(gen.Next(time.Unix(0, ts)), "perlmutter"))
			}
			if err := wh.IngestLogs(b); err != nil {
				fmt.Fprintln(os.Stderr, "genload:", err)
				os.Exit(1)
			}
			logs += int64(*batch)
		}
		if *mix == "metrics" || *mix == "mixed" {
			for i := 0; i < *batch; i++ {
				ts += 1e6
				if err := wh.IngestMetric("cray_telemetry_temperature", metricLabels[i%*hosts], ts/1e6, 45); err != nil {
					fmt.Fprintln(os.Stderr, "genload:", err)
					os.Exit(1)
				}
			}
			samples += int64(*batch)
		}
	}
	elapsed := time.Since(start)
	if err := wh.Logs.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "genload:", err)
		os.Exit(1)
	}
	st := wh.Stats()
	fmt.Printf("duration:        %s\n", elapsed.Round(time.Millisecond))
	fmt.Printf("log entries:     %d (%.0f/s)\n", logs, float64(logs)/elapsed.Seconds())
	fmt.Printf("metric samples:  %d (%.0f/s)\n", samples, float64(samples)/elapsed.Seconds())
	fmt.Printf("total rate:      %.0f messages/s (paper OMNI claim: 400,000/s)\n", wh.RateWindow(time.Now()))
	fmt.Printf("log bytes:       %d raw, %d compressed in store\n", st.LogBytes, st.LogStore.CompressedBytes)
	fmt.Printf("projected:       %.0f GB/day raw (paper: Perlmutter >400 GB/day)\n",
		float64(st.LogBytes)/elapsed.Seconds()*86400/1e9)
	fmt.Printf("streams/chunks:  %d/%d\n", st.LogStore.Streams, st.LogStore.Chunks)
}
